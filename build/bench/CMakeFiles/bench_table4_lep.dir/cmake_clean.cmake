file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_lep.dir/bench_table4_lep.cpp.o"
  "CMakeFiles/bench_table4_lep.dir/bench_table4_lep.cpp.o.d"
  "bench_table4_lep"
  "bench_table4_lep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_lep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
