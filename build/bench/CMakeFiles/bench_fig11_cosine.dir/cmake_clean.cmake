file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cosine.dir/bench_fig11_cosine.cpp.o"
  "CMakeFiles/bench_fig11_cosine.dir/bench_fig11_cosine.cpp.o.d"
  "bench_fig11_cosine"
  "bench_fig11_cosine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cosine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
