file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_zeroshot.dir/bench_table3_zeroshot.cpp.o"
  "CMakeFiles/bench_table3_zeroshot.dir/bench_table3_zeroshot.cpp.o.d"
  "bench_table3_zeroshot"
  "bench_table3_zeroshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_zeroshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
