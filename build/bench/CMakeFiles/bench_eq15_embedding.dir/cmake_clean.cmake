file(REMOVE_RECURSE
  "CMakeFiles/bench_eq15_embedding.dir/bench_eq15_embedding.cpp.o"
  "CMakeFiles/bench_eq15_embedding.dir/bench_eq15_embedding.cpp.o.d"
  "bench_eq15_embedding"
  "bench_eq15_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq15_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
