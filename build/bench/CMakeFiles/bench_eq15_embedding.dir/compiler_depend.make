# Empty compiler generated dependencies file for bench_eq15_embedding.
# This may be replaced when dependencies are built.
