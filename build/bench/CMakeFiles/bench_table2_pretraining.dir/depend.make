# Empty dependencies file for bench_table2_pretraining.
# This may be replaced when dependencies are built.
