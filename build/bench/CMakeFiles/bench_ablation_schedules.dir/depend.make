# Empty dependencies file for bench_ablation_schedules.
# This may be replaced when dependencies are built.
