file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_schedules.dir/bench_ablation_schedules.cpp.o"
  "CMakeFiles/bench_ablation_schedules.dir/bench_ablation_schedules.cpp.o.d"
  "bench_ablation_schedules"
  "bench_ablation_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
