file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_config.dir/bench_fig14_config.cpp.o"
  "CMakeFiles/bench_fig14_config.dir/bench_fig14_config.cpp.o.d"
  "bench_fig14_config"
  "bench_fig14_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
