# Empty dependencies file for bench_fig09_ppl_curves.
# This may be replaced when dependencies are built.
