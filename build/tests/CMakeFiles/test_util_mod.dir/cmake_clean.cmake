file(REMOVE_RECURSE
  "CMakeFiles/test_util_mod.dir/test_util_mod.cc.o"
  "CMakeFiles/test_util_mod.dir/test_util_mod.cc.o.d"
  "test_util_mod"
  "test_util_mod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_mod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
