# Empty dependencies file for test_util_mod.
# This may be replaced when dependencies are built.
