# Empty dependencies file for test_channels.
# This may be replaced when dependencies are built.
