
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_interleaved.cc" "tests/CMakeFiles/test_interleaved.dir/test_interleaved.cc.o" "gcc" "tests/CMakeFiles/test_interleaved.dir/test_interleaved.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/optimus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pipesim/CMakeFiles/optimus_pipesim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/optimus_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/optimus_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/optimus_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/optimus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/optimus_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/optimus_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/optimus_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/optimus_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/optimus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
