# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_tensor "/root/repo/build/tests/test_tensor")
set_tests_properties(test_tensor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;27;optimus_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_nn "/root/repo/build/tests/test_nn")
set_tests_properties(test_nn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;28;optimus_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_compress "/root/repo/build/tests/test_compress")
set_tests_properties(test_compress PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;29;optimus_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_schedule "/root/repo/build/tests/test_schedule")
set_tests_properties(test_schedule PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;30;optimus_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_data "/root/repo/build/tests/test_data")
set_tests_properties(test_data PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;31;optimus_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_parallel "/root/repo/build/tests/test_parallel")
set_tests_properties(test_parallel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;32;optimus_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_simnet "/root/repo/build/tests/test_simnet")
set_tests_properties(test_simnet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;33;optimus_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cluster "/root/repo/build/tests/test_cluster")
set_tests_properties(test_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;34;optimus_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_pipesim "/root/repo/build/tests/test_pipesim")
set_tests_properties(test_pipesim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;35;optimus_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;36;optimus_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_util_mod "/root/repo/build/tests/test_util_mod")
set_tests_properties(test_util_mod PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;37;optimus_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_interleaved "/root/repo/build/tests/test_interleaved")
set_tests_properties(test_interleaved PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;38;optimus_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_failure_modes "/root/repo/build/tests/test_failure_modes")
set_tests_properties(test_failure_modes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;39;optimus_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_channels "/root/repo/build/tests/test_channels")
set_tests_properties(test_channels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;40;optimus_add_test;/root/repo/tests/CMakeLists.txt;0;")
