file(REMOVE_RECURSE
  "CMakeFiles/train_lm.dir/train_lm.cpp.o"
  "CMakeFiles/train_lm.dir/train_lm.cpp.o.d"
  "train_lm"
  "train_lm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_lm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
