# Empty compiler generated dependencies file for train_lm.
# This may be replaced when dependencies are built.
