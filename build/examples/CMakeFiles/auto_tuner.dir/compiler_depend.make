# Empty compiler generated dependencies file for auto_tuner.
# This may be replaced when dependencies are built.
