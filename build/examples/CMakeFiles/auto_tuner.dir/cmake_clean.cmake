file(REMOVE_RECURSE
  "CMakeFiles/auto_tuner.dir/auto_tuner.cpp.o"
  "CMakeFiles/auto_tuner.dir/auto_tuner.cpp.o.d"
  "auto_tuner"
  "auto_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
