# Empty compiler generated dependencies file for optimus_compress.
# This may be replaced when dependencies are built.
