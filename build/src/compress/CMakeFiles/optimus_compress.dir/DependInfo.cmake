
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/compressor.cc" "src/compress/CMakeFiles/optimus_compress.dir/compressor.cc.o" "gcc" "src/compress/CMakeFiles/optimus_compress.dir/compressor.cc.o.d"
  "/root/repo/src/compress/error_feedback.cc" "src/compress/CMakeFiles/optimus_compress.dir/error_feedback.cc.o" "gcc" "src/compress/CMakeFiles/optimus_compress.dir/error_feedback.cc.o.d"
  "/root/repo/src/compress/powersgd.cc" "src/compress/CMakeFiles/optimus_compress.dir/powersgd.cc.o" "gcc" "src/compress/CMakeFiles/optimus_compress.dir/powersgd.cc.o.d"
  "/root/repo/src/compress/quantize.cc" "src/compress/CMakeFiles/optimus_compress.dir/quantize.cc.o" "gcc" "src/compress/CMakeFiles/optimus_compress.dir/quantize.cc.o.d"
  "/root/repo/src/compress/topk.cc" "src/compress/CMakeFiles/optimus_compress.dir/topk.cc.o" "gcc" "src/compress/CMakeFiles/optimus_compress.dir/topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/optimus_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/optimus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
