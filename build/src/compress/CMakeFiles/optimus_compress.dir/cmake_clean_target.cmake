file(REMOVE_RECURSE
  "liboptimus_compress.a"
)
