file(REMOVE_RECURSE
  "CMakeFiles/optimus_compress.dir/compressor.cc.o"
  "CMakeFiles/optimus_compress.dir/compressor.cc.o.d"
  "CMakeFiles/optimus_compress.dir/error_feedback.cc.o"
  "CMakeFiles/optimus_compress.dir/error_feedback.cc.o.d"
  "CMakeFiles/optimus_compress.dir/powersgd.cc.o"
  "CMakeFiles/optimus_compress.dir/powersgd.cc.o.d"
  "CMakeFiles/optimus_compress.dir/quantize.cc.o"
  "CMakeFiles/optimus_compress.dir/quantize.cc.o.d"
  "CMakeFiles/optimus_compress.dir/topk.cc.o"
  "CMakeFiles/optimus_compress.dir/topk.cc.o.d"
  "liboptimus_compress.a"
  "liboptimus_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
