file(REMOVE_RECURSE
  "liboptimus_util.a"
)
