file(REMOVE_RECURSE
  "CMakeFiles/optimus_util.dir/cli.cc.o"
  "CMakeFiles/optimus_util.dir/cli.cc.o.d"
  "CMakeFiles/optimus_util.dir/csv_writer.cc.o"
  "CMakeFiles/optimus_util.dir/csv_writer.cc.o.d"
  "CMakeFiles/optimus_util.dir/logging.cc.o"
  "CMakeFiles/optimus_util.dir/logging.cc.o.d"
  "CMakeFiles/optimus_util.dir/random.cc.o"
  "CMakeFiles/optimus_util.dir/random.cc.o.d"
  "CMakeFiles/optimus_util.dir/stats.cc.o"
  "CMakeFiles/optimus_util.dir/stats.cc.o.d"
  "CMakeFiles/optimus_util.dir/table_printer.cc.o"
  "CMakeFiles/optimus_util.dir/table_printer.cc.o.d"
  "liboptimus_util.a"
  "liboptimus_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
