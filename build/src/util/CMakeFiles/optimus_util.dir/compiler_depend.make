# Empty compiler generated dependencies file for optimus_util.
# This may be replaced when dependencies are built.
