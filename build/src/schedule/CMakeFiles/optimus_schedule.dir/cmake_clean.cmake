file(REMOVE_RECURSE
  "CMakeFiles/optimus_schedule.dir/interleaved.cc.o"
  "CMakeFiles/optimus_schedule.dir/interleaved.cc.o.d"
  "CMakeFiles/optimus_schedule.dir/schedule.cc.o"
  "CMakeFiles/optimus_schedule.dir/schedule.cc.o.d"
  "liboptimus_schedule.a"
  "liboptimus_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
