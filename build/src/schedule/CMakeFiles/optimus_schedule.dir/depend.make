# Empty dependencies file for optimus_schedule.
# This may be replaced when dependencies are built.
