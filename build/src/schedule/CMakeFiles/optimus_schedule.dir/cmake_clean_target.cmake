file(REMOVE_RECURSE
  "liboptimus_schedule.a"
)
