file(REMOVE_RECURSE
  "CMakeFiles/optimus_tensor.dir/matmul.cc.o"
  "CMakeFiles/optimus_tensor.dir/matmul.cc.o.d"
  "CMakeFiles/optimus_tensor.dir/tensor.cc.o"
  "CMakeFiles/optimus_tensor.dir/tensor.cc.o.d"
  "liboptimus_tensor.a"
  "liboptimus_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
