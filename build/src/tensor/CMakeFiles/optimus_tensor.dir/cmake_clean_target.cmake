file(REMOVE_RECURSE
  "liboptimus_tensor.a"
)
