file(REMOVE_RECURSE
  "CMakeFiles/optimus_data.dir/corpus.cc.o"
  "CMakeFiles/optimus_data.dir/corpus.cc.o.d"
  "CMakeFiles/optimus_data.dir/dataset.cc.o"
  "CMakeFiles/optimus_data.dir/dataset.cc.o.d"
  "CMakeFiles/optimus_data.dir/zeroshot.cc.o"
  "CMakeFiles/optimus_data.dir/zeroshot.cc.o.d"
  "liboptimus_data.a"
  "liboptimus_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
