# Empty compiler generated dependencies file for optimus_data.
# This may be replaced when dependencies are built.
