file(REMOVE_RECURSE
  "liboptimus_data.a"
)
