file(REMOVE_RECURSE
  "liboptimus_parallel.a"
)
