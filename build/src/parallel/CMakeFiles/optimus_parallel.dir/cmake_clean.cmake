file(REMOVE_RECURSE
  "CMakeFiles/optimus_parallel.dir/channels.cc.o"
  "CMakeFiles/optimus_parallel.dir/channels.cc.o.d"
  "CMakeFiles/optimus_parallel.dir/data_parallel.cc.o"
  "CMakeFiles/optimus_parallel.dir/data_parallel.cc.o.d"
  "CMakeFiles/optimus_parallel.dir/stage_module.cc.o"
  "CMakeFiles/optimus_parallel.dir/stage_module.cc.o.d"
  "CMakeFiles/optimus_parallel.dir/tensor_parallel.cc.o"
  "CMakeFiles/optimus_parallel.dir/tensor_parallel.cc.o.d"
  "CMakeFiles/optimus_parallel.dir/trainer3d.cc.o"
  "CMakeFiles/optimus_parallel.dir/trainer3d.cc.o.d"
  "liboptimus_parallel.a"
  "liboptimus_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
