
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/channels.cc" "src/parallel/CMakeFiles/optimus_parallel.dir/channels.cc.o" "gcc" "src/parallel/CMakeFiles/optimus_parallel.dir/channels.cc.o.d"
  "/root/repo/src/parallel/data_parallel.cc" "src/parallel/CMakeFiles/optimus_parallel.dir/data_parallel.cc.o" "gcc" "src/parallel/CMakeFiles/optimus_parallel.dir/data_parallel.cc.o.d"
  "/root/repo/src/parallel/stage_module.cc" "src/parallel/CMakeFiles/optimus_parallel.dir/stage_module.cc.o" "gcc" "src/parallel/CMakeFiles/optimus_parallel.dir/stage_module.cc.o.d"
  "/root/repo/src/parallel/tensor_parallel.cc" "src/parallel/CMakeFiles/optimus_parallel.dir/tensor_parallel.cc.o" "gcc" "src/parallel/CMakeFiles/optimus_parallel.dir/tensor_parallel.cc.o.d"
  "/root/repo/src/parallel/trainer3d.cc" "src/parallel/CMakeFiles/optimus_parallel.dir/trainer3d.cc.o" "gcc" "src/parallel/CMakeFiles/optimus_parallel.dir/trainer3d.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/optimus_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/optimus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/optimus_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/optimus_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/optimus_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/optimus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
