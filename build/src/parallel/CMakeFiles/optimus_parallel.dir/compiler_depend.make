# Empty compiler generated dependencies file for optimus_parallel.
# This may be replaced when dependencies are built.
