file(REMOVE_RECURSE
  "liboptimus_simnet.a"
)
