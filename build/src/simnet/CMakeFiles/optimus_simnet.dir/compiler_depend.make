# Empty compiler generated dependencies file for optimus_simnet.
# This may be replaced when dependencies are built.
