file(REMOVE_RECURSE
  "CMakeFiles/optimus_simnet.dir/cost_model.cc.o"
  "CMakeFiles/optimus_simnet.dir/cost_model.cc.o.d"
  "liboptimus_simnet.a"
  "liboptimus_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
