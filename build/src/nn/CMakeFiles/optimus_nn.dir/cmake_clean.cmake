file(REMOVE_RECURSE
  "CMakeFiles/optimus_nn.dir/activation.cc.o"
  "CMakeFiles/optimus_nn.dir/activation.cc.o.d"
  "CMakeFiles/optimus_nn.dir/attention.cc.o"
  "CMakeFiles/optimus_nn.dir/attention.cc.o.d"
  "CMakeFiles/optimus_nn.dir/block.cc.o"
  "CMakeFiles/optimus_nn.dir/block.cc.o.d"
  "CMakeFiles/optimus_nn.dir/embedding.cc.o"
  "CMakeFiles/optimus_nn.dir/embedding.cc.o.d"
  "CMakeFiles/optimus_nn.dir/gpt.cc.o"
  "CMakeFiles/optimus_nn.dir/gpt.cc.o.d"
  "CMakeFiles/optimus_nn.dir/layernorm.cc.o"
  "CMakeFiles/optimus_nn.dir/layernorm.cc.o.d"
  "CMakeFiles/optimus_nn.dir/linear.cc.o"
  "CMakeFiles/optimus_nn.dir/linear.cc.o.d"
  "CMakeFiles/optimus_nn.dir/loss.cc.o"
  "CMakeFiles/optimus_nn.dir/loss.cc.o.d"
  "CMakeFiles/optimus_nn.dir/optimizer.cc.o"
  "CMakeFiles/optimus_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/optimus_nn.dir/param.cc.o"
  "CMakeFiles/optimus_nn.dir/param.cc.o.d"
  "liboptimus_nn.a"
  "liboptimus_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
