
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cc" "src/nn/CMakeFiles/optimus_nn.dir/activation.cc.o" "gcc" "src/nn/CMakeFiles/optimus_nn.dir/activation.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/optimus_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/optimus_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/block.cc" "src/nn/CMakeFiles/optimus_nn.dir/block.cc.o" "gcc" "src/nn/CMakeFiles/optimus_nn.dir/block.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/optimus_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/optimus_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/gpt.cc" "src/nn/CMakeFiles/optimus_nn.dir/gpt.cc.o" "gcc" "src/nn/CMakeFiles/optimus_nn.dir/gpt.cc.o.d"
  "/root/repo/src/nn/layernorm.cc" "src/nn/CMakeFiles/optimus_nn.dir/layernorm.cc.o" "gcc" "src/nn/CMakeFiles/optimus_nn.dir/layernorm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/optimus_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/optimus_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/optimus_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/optimus_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/optimus_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/optimus_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/param.cc" "src/nn/CMakeFiles/optimus_nn.dir/param.cc.o" "gcc" "src/nn/CMakeFiles/optimus_nn.dir/param.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/optimus_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/optimus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
