# Empty compiler generated dependencies file for optimus_nn.
# This may be replaced when dependencies are built.
