file(REMOVE_RECURSE
  "liboptimus_nn.a"
)
