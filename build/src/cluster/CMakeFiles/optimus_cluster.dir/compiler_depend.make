# Empty compiler generated dependencies file for optimus_cluster.
# This may be replaced when dependencies are built.
