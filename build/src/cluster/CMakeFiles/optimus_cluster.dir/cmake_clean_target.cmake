file(REMOVE_RECURSE
  "liboptimus_cluster.a"
)
