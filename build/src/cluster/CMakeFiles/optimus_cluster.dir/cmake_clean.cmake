file(REMOVE_RECURSE
  "CMakeFiles/optimus_cluster.dir/hardware.cc.o"
  "CMakeFiles/optimus_cluster.dir/hardware.cc.o.d"
  "CMakeFiles/optimus_cluster.dir/mapping.cc.o"
  "CMakeFiles/optimus_cluster.dir/mapping.cc.o.d"
  "CMakeFiles/optimus_cluster.dir/model_spec.cc.o"
  "CMakeFiles/optimus_cluster.dir/model_spec.cc.o.d"
  "liboptimus_cluster.a"
  "liboptimus_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
