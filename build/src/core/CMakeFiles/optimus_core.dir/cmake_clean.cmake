file(REMOVE_RECURSE
  "CMakeFiles/optimus_core.dir/auto_tuner.cc.o"
  "CMakeFiles/optimus_core.dir/auto_tuner.cc.o.d"
  "CMakeFiles/optimus_core.dir/performance_experiment.cc.o"
  "CMakeFiles/optimus_core.dir/performance_experiment.cc.o.d"
  "CMakeFiles/optimus_core.dir/presets.cc.o"
  "CMakeFiles/optimus_core.dir/presets.cc.o.d"
  "CMakeFiles/optimus_core.dir/quality_experiment.cc.o"
  "CMakeFiles/optimus_core.dir/quality_experiment.cc.o.d"
  "liboptimus_core.a"
  "liboptimus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
