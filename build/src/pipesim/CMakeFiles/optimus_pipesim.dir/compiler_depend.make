# Empty compiler generated dependencies file for optimus_pipesim.
# This may be replaced when dependencies are built.
