
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipesim/pipe_model.cc" "src/pipesim/CMakeFiles/optimus_pipesim.dir/pipe_model.cc.o" "gcc" "src/pipesim/CMakeFiles/optimus_pipesim.dir/pipe_model.cc.o.d"
  "/root/repo/src/pipesim/throughput_model.cc" "src/pipesim/CMakeFiles/optimus_pipesim.dir/throughput_model.cc.o" "gcc" "src/pipesim/CMakeFiles/optimus_pipesim.dir/throughput_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/optimus_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/optimus_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/optimus_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/optimus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
