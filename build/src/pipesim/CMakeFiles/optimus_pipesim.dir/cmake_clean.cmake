file(REMOVE_RECURSE
  "CMakeFiles/optimus_pipesim.dir/pipe_model.cc.o"
  "CMakeFiles/optimus_pipesim.dir/pipe_model.cc.o.d"
  "CMakeFiles/optimus_pipesim.dir/throughput_model.cc.o"
  "CMakeFiles/optimus_pipesim.dir/throughput_model.cc.o.d"
  "liboptimus_pipesim.a"
  "liboptimus_pipesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_pipesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
