file(REMOVE_RECURSE
  "liboptimus_pipesim.a"
)
