/**
 * @file
 * Table 3 reproduction: zero-shot probe accuracies under the
 * technique ladder. The paper's LAMBADA / PIQA / MathQA /
 * WinoGrande / RACE are replaced by the five synthetic probes of
 * matching format (cloze, 2-way continuation, 4-way MCQ, 2-way
 * coreference-style substitution, 4-way passage completion).
 *
 * Paper anchor: CB and CB+FE accuracies are comparable to the
 * baseline on every task; CB+FE+SC shows marginal degradation.
 */

#include "bench_util.hh"

using namespace optimus;
using namespace optimus::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    banner("Table 3 -- zero-shot task accuracy",
           "Table 3 (five zero-shot tasks, no fine-tuning)");

    QualityRunConfig config = standardQualityConfig(args);
    config.zeroShotExamples =
        static_cast<int>(args.getInt("examples", 64));

    const auto ladder = presets::ablationLadder();
    std::vector<QualityResult> results;
    for (const auto &preset : ladder)
        results.push_back(runQualityExperiment(config, preset));

    std::vector<std::string> header{"Task"};
    for (const auto &preset : ladder)
        header.push_back(preset.name);
    TablePrinter table(header);
    const char *tasks[] = {"cloze", "pair2", "mcq4", "coref2",
                           "passage4"};
    const char *counterparts[] = {"LAMBADA", "PIQA", "MathQA",
                                  "WinoGrande", "RACE"};
    for (size_t t = 0; t < 5; ++t) {
        std::vector<std::string> cells{std::string(tasks[t]) + " (" +
                                       counterparts[t] + "-like)"};
        for (const auto &result : results) {
            cells.push_back(TablePrinter::fmtPercent(
                result.zeroShot.at(tasks[t])));
        }
        table.addRow(cells);
    }
    table.print();
    std::printf("\npaper: CB / CB+FE comparable to baseline on all "
                "tasks; CB+FE+SC marginally lower\n");
    return 0;
}
