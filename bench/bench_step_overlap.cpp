/**
 * @file
 * Training-step benchmark for the bucketed gradient reduction
 * engine: full Trainer3d iterations under the three DP reduce
 * schedules (legacy sequential, bucketed barriered, bucketed
 * overlapped) at several (D, P, M) grid points, with the per-phase
 * wall-time breakdown from IterationStats. Writes BENCH_step.json.
 *
 * The three schedules are bitwise identical in results (asserted in
 * --smoke mode by comparing every parameter of every replica after
 * the run), so the comparison isolates pure scheduling cost: how
 * much reduce time the overlapped queue hides behind backward, and
 * what the engine's bucketing saves over the legacy per-parameter
 * walk.
 *
 * Usage: bench_step_overlap [--iters 3] [--reps 5]
 *        [--bucket-kb 256] [--dp-compress] [--smoke]
 * --smoke shrinks the run to one tiny grid point with an identity
 * check, for ctest / sanitizer jobs. Thread count comes from
 * OPTIMUS_THREADS (default: hardware).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "data/corpus.hh"
#include "data/dataset.hh"
#include "parallel/trainer3d.hh"
#include "runtime/runtime.hh"
#include "tensor/arena.hh"
#include "util/cli.hh"

using namespace optimus;

namespace
{

struct GridPoint
{
    int d, p, m;
};

/** Mean per-step timing of one (point, mode) measurement. */
struct ModeTiming
{
    double step = 0.0;
    StepPhaseTimes phases;
};

double
seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

GptConfig
benchModel(bool smoke)
{
    GptConfig model;
    if (smoke) {
        model.vocab = 24;
        model.hidden = 16;
        model.layers = 4;
        model.heads = 2;
        model.seqLen = 8;
    } else {
        // Small per-step token count relative to the parameter
        // count, so the reduce phase is a meaningful slice of the
        // step rather than vanishing behind the GEMMs.
        model.vocab = 64;
        model.hidden = 64;
        model.layers = 8;
        model.heads = 4;
        model.seqLen = 8;
    }
    model.seed = 77;
    return model;
}

Trainer3dConfig
makeConfig(const GptConfig &model, const GridPoint &point,
           DpReduceMode mode, int64_t bucket_bytes, bool compress,
           int micro_batch)
{
    Trainer3dConfig config;
    config.model = model;
    config.dataParallel = point.d;
    config.pipelineStages = point.p;
    config.microBatches = point.m;
    config.microBatchSize = micro_batch;
    config.reduceMode = mode;
    config.bucketBytes = bucket_bytes;
    if (compress) {
        config.dp.enabled = true;
        config.dp.stageFraction = 0.75;
    }
    return config;
}

LmDataset
benchData(const GptConfig &model)
{
    CorpusConfig cc;
    cc.vocab = model.vocab;
    cc.totalTokens = 20000;
    cc.seed = 5;
    SyntheticCorpus corpus(cc);
    return {corpus.train(), model.seqLen};
}

/**
 * One measurement repetition: run @p iters consecutive iterations,
 * timing each one individually, and fold the fastest into @p best.
 * All iterations of a mode perform identical work, so the minimum
 * over every sample is the sharpest available estimate of the
 * mode's noise floor; the phase breakdown kept is the one from the
 * winning iteration.
 */
void
measureRep(Trainer3d &trainer, const LmDataset &data, Rng &rng,
           int iters, ModeTiming &best)
{
    for (int it = 0; it < iters; ++it) {
        const double t0 = seconds();
        const IterationStats stats =
            trainer.trainIteration(data, rng);
        const double step = seconds() - t0;
        if (step < best.step) {
            best.step = step;
            best.phases = stats.phases;
        }
    }
}

/** Exact float mismatch count across two trainers' parameters. */
int64_t
bitwiseMismatch(Trainer3d &a, Trainer3d &b)
{
    int64_t mismatches = 0;
    for (int d = 0; d < a.config().dataParallel; ++d) {
        for (int p = 0; p < a.config().pipelineStages; ++p) {
            const auto pa = a.stage(d, p).params();
            const auto pb = b.stage(d, p).params();
            for (size_t j = 0; j < pa.size(); ++j) {
                if (std::memcmp(pa[j]->value.data(),
                                pb[j]->value.data(),
                                sizeof(float) *
                                    pa[j]->value.size()) != 0)
                    ++mismatches;
            }
        }
    }
    return mismatches;
}

const char *
modeName(DpReduceMode mode)
{
    switch (mode) {
      case DpReduceMode::Sequential:
        return "sequential";
      case DpReduceMode::Barriered:
        return "barriered";
      case DpReduceMode::Overlapped:
        return "overlapped";
    }
    return "?";
}

void
printTimingJson(FILE *f, const char *name, const ModeTiming &t,
                const char *tail)
{
    std::fprintf(f,
                 "      \"%s\": {\"step\": %.6f, "
                 "\"forward_backward\": %.6f, \"dp_reduce\": %.6f, "
                 "\"dp_reduce_busy\": %.6f, \"overlap_hidden\": "
                 "%.6f, \"emb_sync\": %.6f, \"optimizer\": "
                 "%.6f}%s\n",
                 name, t.step, t.phases.forwardBackward,
                 t.phases.dpReduce, t.phases.dpReduceBusy,
                 t.phases.overlapHidden, t.phases.embSync,
                 t.phases.optimizer, tail);
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const bool smoke = args.getBool("smoke", false);
    const int iters =
        static_cast<int>(args.getInt("iters", smoke ? 2 : 3));
    const int reps =
        static_cast<int>(args.getInt("reps", smoke ? 2 : 9));
    const int64_t bucket_bytes =
        args.getInt("bucket-kb", 256) * 1024;
    const bool compress = args.getBool("dp-compress", false);

    const GptConfig model = benchModel(smoke);
    const LmDataset data = benchData(model);

    std::vector<GridPoint> points;
    if (smoke)
        points = {{2, 2, 2}};
    else
        points = {{1, 2, 4}, {2, 2, 4}, {2, 4, 4}, {4, 2, 2}};

    const DpReduceMode modes[] = {DpReduceMode::Sequential,
                                  DpReduceMode::Barriered,
                                  DpReduceMode::Overlapped};

    std::printf("=== training-step overlap benchmark ===\n");
    std::printf(
        "pool threads: %d  iters: %d  reps: %d  bucket: %lld KiB  "
        "dp-compress: %d%s\n\n",
        runtimeThreads(), iters, reps,
        static_cast<long long>(bucket_bytes / 1024), compress,
        smoke ? "  [smoke]" : "");

    FILE *f = std::fopen("BENCH_step.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_step.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"step_overlap\",\n");
    std::fprintf(f, "  \"threads\": %d,\n", runtimeThreads());
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"dp_compress\": %s,\n",
                 compress ? "true" : "false");
    std::fprintf(f, "  \"unit\": \"seconds/step\",\n");
    std::fprintf(f, "  \"points\": [\n");

    bool identity_ok = true;
    for (size_t pi = 0; pi < points.size(); ++pi) {
        const GridPoint &point = points[pi];
        std::printf("D=%d P=%d M=%d\n", point.d, point.p, point.m);

        // One trainer per mode; identical seeds and data streams,
        // so every mode performs the same arithmetic. Repetitions
        // are interleaved across the modes so clock drift (thermal,
        // frequency) biases every mode equally instead of whichever
        // happened to be measured last.
        std::vector<std::unique_ptr<Trainer3d>> trainers;
        std::vector<Rng> rngs;
        std::vector<ModeTiming> timings(3);
        for (const DpReduceMode mode : modes) {
            trainers.push_back(std::make_unique<Trainer3d>(
                makeConfig(model, point, mode, bucket_bytes,
                           compress, smoke ? 2 : 1)));
            rngs.emplace_back(11);
            // Warm-up: two steps, matching the arena layer's warmup
            // definition — the first sizes the arenas (and spins up
            // the pool, binds buckets), the second finishes any
            // lazily-built persistent state whose placement kept
            // step one's slabs from rewinding. From step three on,
            // heapAllocs must stay flat (echoed below).
            trainers.back()->trainIteration(data, rngs.back());
            trainers.back()->trainIteration(data, rngs.back());
            timings[trainers.size() - 1].step = 1e30;
        }
        // Steady-state allocation deltas over the measured reps:
        // with arenas on (OPTIMUS_ARENA default) heapAllocs must
        // stay +0 here — the same contract alloc_gate enforces —
        // while arenaHits counts the recycled-tensor traffic.
        const int64_t heap_before = mem::heapAllocs();
        const int64_t hits_before = mem::arenaHits();
        for (int rep = 0; rep < reps; ++rep) {
            for (size_t mi = 0; mi < trainers.size(); ++mi)
                measureRep(*trainers[mi], data, rngs[mi], iters,
                           timings[mi]);
        }
        const int64_t heap_delta = mem::heapAllocs() - heap_before;
        const int64_t hits_delta = mem::arenaHits() - hits_before;
        for (size_t mi = 0; mi < trainers.size(); ++mi) {
            const ModeTiming &t = timings[mi];
            std::printf("  %-10s step %8.3f ms  (fb %7.3f  reduce "
                        "%7.3f  busy %7.3f  hidden %7.3f)\n",
                        modeName(modes[mi]), 1e3 * t.step,
                        1e3 * t.phases.forwardBackward,
                        1e3 * t.phases.dpReduce,
                        1e3 * t.phases.dpReduceBusy,
                        1e3 * t.phases.overlapHidden);
        }

        // Every mode must have produced bit-identical parameters.
        const int64_t mismatch =
            bitwiseMismatch(*trainers[0], *trainers[1]) +
            bitwiseMismatch(*trainers[0], *trainers[2]);
        if (mismatch != 0) {
            identity_ok = false;
            std::fprintf(stderr,
                         "IDENTITY VIOLATION: %lld tensors differ "
                         "across reduce modes at D=%d P=%d M=%d\n",
                         static_cast<long long>(mismatch), point.d,
                         point.p, point.m);
        }

        const double speedup =
            timings[2].step > 0.0 ? timings[1].step / timings[2].step
                                  : 1.0;
        std::printf("  overlap speedup vs barriered: %.3fx\n",
                    speedup);
        std::printf("  mem: steady-state heapAllocs +%lld  "
                    "arenaHits +%lld\n\n",
                    static_cast<long long>(heap_delta),
                    static_cast<long long>(hits_delta));

        std::fprintf(f, "    {\"d\": %d, \"p\": %d, \"m\": %d,\n",
                     point.d, point.p, point.m);
        printTimingJson(f, "sequential", timings[0], ",");
        printTimingJson(f, "barriered", timings[1], ",");
        printTimingJson(f, "overlapped", timings[2], ",");
        std::fprintf(f,
                     "      \"overlap_speedup\": %.3f, "
                     "\"steady_heap_allocs\": %lld, "
                     "\"identity_ok\": %s}%s\n",
                     speedup, static_cast<long long>(heap_delta),
                     mismatch == 0 ? "true" : "false",
                     pi + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"mem\": {\"arena\": %s, \"heap_allocs\": %lld, "
                 "\"arena_hits\": %lld, \"heap_fallbacks\": %lld, "
                 "\"peak_bytes\": %lld}\n}\n",
                 arenaEnabled() ? "true" : "false",
                 static_cast<long long>(mem::heapAllocs()),
                 static_cast<long long>(mem::arenaHits()),
                 static_cast<long long>(mem::heapFallbacks()),
                 static_cast<long long>(mem::peakBytes()));
    std::fclose(f);

    std::printf("mem: arena=%d lifetime heapAllocs=%lld "
                "arenaHits=%lld fallbacks=%lld peakBytes=%lld\n",
                arenaEnabled() ? 1 : 0,
                static_cast<long long>(mem::heapAllocs()),
                static_cast<long long>(mem::arenaHits()),
                static_cast<long long>(mem::heapFallbacks()),
                static_cast<long long>(mem::peakBytes()));

    std::printf("results written to BENCH_step.json\n");
    if (!identity_ok) {
        std::fprintf(stderr,
                     "FAILED: reduce modes are not bitwise equal\n");
        return 1;
    }
    return 0;
}
