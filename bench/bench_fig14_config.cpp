/**
 * @file
 * Fig 14 reproduction: tensor/pipeline configuration sensitivity on
 * GPT-9.2B (80 layers) with data parallelism fixed at 4, sweeping
 * TP8/PP4, TP4/PP8, TP2/PP16 on 128 GPUs.
 *
 * Paper anchors: Optimus-CC gives at least 19.2% speedup in every
 * configuration; CB's advantage grows with more pipeline ways,
 * SC's with fewer (more parameters per GPU).
 */

#include "bench_util.hh"

using namespace optimus;
using namespace optimus::bench;

int
main()
{
    banner("Fig 14 -- TP/PP configuration sensitivity",
           "Fig 14 (GPT-9.2B, DP=4 fixed, 128 GPUs)");

    const GptModelSpec model = GptModelSpec::gpt9_2b();
    const HardwareConfig hw = HardwareConfig::a100Cluster();
    TrainingPlan plan;

    TablePrinter table({"Config", "Baseline (days)", "CB", "CB+FE",
                        "CB+FE+SC", "Total speedup"});
    struct Marginal
    {
        std::string config;
        double cbGain;
        double scGain;
    };
    std::vector<Marginal> marginals;
    for (const auto &[tp, pp] :
         {std::pair{8, 4}, {4, 8}, {2, 16}}) {
        ParallelConfig parallel{tp, pp, 4};
        const auto rows = runPerformanceAblation(
            hw, model, parallel, plan, presets::ablationLadder());
        char label[32];
        std::snprintf(label, sizeof(label), "TP%d/PP%d", tp, pp);
        table.addRow(
            {label, TablePrinter::fmt(rows[0].trainingDays),
             TablePrinter::fmt(rows[1].trainingDays),
             TablePrinter::fmt(rows[2].trainingDays),
             TablePrinter::fmt(rows[3].trainingDays),
             TablePrinter::fmtPercent(rows[3].speedup)});
        marginals.push_back(
            {label,
             rows[0].trainingDays / rows[1].trainingDays - 1.0,
             rows[2].trainingDays / rows[3].trainingDays - 1.0});
    }
    table.print();

    std::printf("\nper-technique marginal gains "
                "(paper: CB grows with PP ways, SC shrinks):\n");
    TablePrinter trend({"Config", "CB marginal", "SC marginal"});
    for (const auto &m : marginals)
        trend.addRow({m.config, TablePrinter::fmtPercent(m.cbGain),
                      TablePrinter::fmtPercent(m.scGain)});
    trend.print();
    std::printf("\npaper: >= 19.2%% total speedup in every "
                "configuration\n");
    return 0;
}
