/**
 * @file
 * Fig 14 reproduction: tensor/pipeline configuration sensitivity on
 * GPT-9.2B (80 layers) with data parallelism fixed at 4, sweeping
 * TP8/PP4, TP4/PP8, TP2/PP16 on 128 GPUs.
 *
 * Paper anchors: Optimus-CC gives at least 19.2% speedup in every
 * configuration; CB's advantage grows with more pipeline ways,
 * SC's with fewer (more parameters per GPU).
 */

#include "bench_util.hh"

#include "compress/powersgd.hh"
#include "runtime/runtime.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

using namespace optimus;
using namespace optimus::bench;

int
main()
{
    banner("Fig 14 -- TP/PP configuration sensitivity",
           "Fig 14 (GPT-9.2B, DP=4 fixed, 128 GPUs)");

    const GptModelSpec model = GptModelSpec::gpt9_2b();
    const HardwareConfig hw = HardwareConfig::a100Cluster();
    TrainingPlan plan;

    TablePrinter table({"Config", "Baseline (days)", "CB", "CB+FE",
                        "CB+FE+SC", "Total speedup"});
    struct Marginal
    {
        std::string config;
        double cbGain;
        double scGain;
    };
    std::vector<Marginal> marginals;
    for (const auto &[tp, pp] :
         {std::pair{8, 4}, {4, 8}, {2, 16}}) {
        ParallelConfig parallel{tp, pp, 4};
        const auto rows = runPerformanceAblation(
            hw, model, parallel, plan, presets::ablationLadder());
        char label[32];
        std::snprintf(label, sizeof(label), "TP%d/PP%d", tp, pp);
        table.addRow(
            {label, TablePrinter::fmt(rows[0].trainingDays),
             TablePrinter::fmt(rows[1].trainingDays),
             TablePrinter::fmt(rows[2].trainingDays),
             TablePrinter::fmt(rows[3].trainingDays),
             TablePrinter::fmtPercent(rows[3].speedup)});
        marginals.push_back(
            {label,
             rows[0].trainingDays / rows[1].trainingDays - 1.0,
             rows[2].trainingDays / rows[3].trainingDays - 1.0});
    }
    table.print();

    std::printf("\nper-technique marginal gains "
                "(paper: CB grows with PP ways, SC shrinks):\n");
    TablePrinter trend({"Config", "CB marginal", "SC marginal"});
    for (const auto &m : marginals)
        trend.addRow({m.config, TablePrinter::fmtPercent(m.cbGain),
                      TablePrinter::fmtPercent(m.scGain)});
    trend.print();
    std::printf("\npaper: >= 19.2%% total speedup in every "
                "configuration\n");

    // Measured leg: the ablation ladder above is the analytic A100
    // model only. Run the real CB kernel (PowerSGD compress, paper
    // rank 16) on the pipeline-boundary activation each config
    // actually ships — [microbatch*seq x hidden/TP] — at every
    // SIMD dispatch tier, so BENCH_fig14.json captures SIMD at
    // model scale (per-config boundary shapes), not just the
    // kernel-scale sweeps in BENCH_compress.json.
    std::printf("\nmeasured CB kernel at each config's boundary "
                "shape (GB/s, best of 3):\n");
    const std::vector<simd::Tier> tiers = supportedTiers();
    const int64_t micro_batch = 8;
    const int64_t rows = micro_batch * model.seqLen;
    struct TierRow
    {
        std::string config;
        int64_t rows;
        int64_t cols;
        std::vector<std::pair<simd::Tier, double>> rates;
    };
    std::vector<TierRow> tierRows;
    const simd::Tier auto_tier = simd::tier();
    std::vector<std::string> header{"Config", "Boundary shape"};
    for (simd::Tier t : tiers)
        header.push_back(simd::tierName(t));
    TablePrinter measured(header);
    Rng rng(21);
    for (const auto &[tp, pp] :
         {std::pair{8, 4}, {4, 8}, {2, 16}}) {
        const int64_t cols = model.hidden / tp;
        Tensor boundary = Tensor::randn({rows, cols}, rng);
        PowerSgdCompressor comp(16, 7);
        Tensor out;
        TierRow row;
        char label[32];
        std::snprintf(label, sizeof(label), "TP%d/PP%d", tp, pp);
        row.config = label;
        row.rows = rows;
        row.cols = cols;
        std::vector<std::string> cells{label};
        char shape[32];
        std::snprintf(shape, sizeof(shape), "%lld x %lld",
                      static_cast<long long>(rows),
                      static_cast<long long>(cols));
        cells.emplace_back(shape);
        for (simd::Tier t : tiers) {
            simd::setTier(t);
            const double secs = bestSeconds(3, [&] {
                comp.reset();
                comp.compress(boundary, out);
            });
            const double gbps =
                static_cast<double>(rows) * cols * 4 / secs / 1e9;
            row.rates.emplace_back(t, gbps);
            cells.push_back(TablePrinter::fmt(gbps, 2));
        }
        simd::setTier(auto_tier);
        measured.addRow(cells);
        tierRows.push_back(row);
    }
    measured.print();

    FILE *f = std::fopen("BENCH_fig14.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_fig14.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig14\",\n");
    std::fprintf(f, "  \"threads\": %d,\n", runtimeThreads());
    std::fprintf(f, "  \"unit\": \"GB/s\",\n");
    std::fprintf(f, "  \"kernel\": \"powersgd(r=16) compress\",\n");
    std::fprintf(f, "  \"configs\": [\n");
    for (size_t i = 0; i < tierRows.size(); ++i) {
        const TierRow &r = tierRows[i];
        std::fprintf(f,
                     "    {\"config\": \"%s\", \"rows\": %lld, "
                     "\"cols\": %lld, \"tiers\": {",
                     r.config.c_str(),
                     static_cast<long long>(r.rows),
                     static_cast<long long>(r.cols));
        for (size_t j = 0; j < r.rates.size(); ++j)
            std::fprintf(f, "\"%s\": %.2f%s",
                         simd::tierName(r.rates[j].first),
                         r.rates[j].second,
                         j + 1 < r.rates.size() ? ", " : "");
        std::fprintf(f, "}}%s\n",
                     i + 1 < tierRows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nper-tier results written to BENCH_fig14.json\n");
    return 0;
}
