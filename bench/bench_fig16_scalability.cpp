/**
 * @file
 * Fig 16 reproduction: scalability of Optimus-CC over the model
 * ladder 2.5B -> 8.3B -> 39B -> 175B, tensor parallelism fixed at 8
 * and GPU count grown with model size.
 *
 * Paper anchor: the speedup holds (and grows) up to 175B because
 * (a) larger models are more communication-bound and (b) the
 * compression kernels get *more* efficient at larger sizes.
 */

#include "bench_util.hh"

using namespace optimus;
using namespace optimus::bench;

int
main()
{
    banner("Fig 16 -- scalability over model size",
           "Fig 16 (TP fixed at 8, GPUs grow with the model)");

    TrainingPlan plan;
    TablePrinter table({"Model", "GPUs", "TP/PP/DP",
                        "Baseline (days)", "Opt-CC (days)",
                        "Speedup"});

    struct Point
    {
        GptModelSpec model;
        int pipeline;
        int data;
    };
    // Pipeline depth grows with the model; DP fixed at 4 as in the
    // main experiments. Layer counts divide the pipeline depths.
    const Point points[] = {
        {GptModelSpec::gpt2_5b(), 4, 4},  // 128 GPUs
        {GptModelSpec::gpt8_3b(), 4, 4},  // 128 GPUs
        {GptModelSpec::gpt39b(), 8, 4},   // 256 GPUs
        {GptModelSpec::gpt175b(), 16, 4}, // 512 GPUs
    };

    double prev_speedup = 0.0;
    for (const auto &point : points) {
        ParallelConfig parallel{8, point.pipeline, point.data};
        HardwareConfig hw = HardwareConfig::a100Cluster();
        hw.nodes = parallel.totalGpus() / hw.gpusPerNode;
        MappedWorkload w(hw, point.model, parallel, plan);
        const double base =
            trainingDays(w, OptimusCcPolicy::baseline());
        const double opt = trainingDays(w, OptimusCcPolicy::cbFeSc());
        char layout[32];
        std::snprintf(layout, sizeof(layout), "%d/%d/%d",
                      parallel.tensor, parallel.pipeline,
                      parallel.data);
        table.addRow({point.model.name,
                      std::to_string(parallel.totalGpus()), layout,
                      TablePrinter::fmt(base),
                      TablePrinter::fmt(opt),
                      TablePrinter::fmtPercent(base / opt - 1.0)});
        prev_speedup = base / opt - 1.0;
    }
    table.print();
    std::printf("\npaper: the speedup is sustained up to 175B "
                "(largest model still > the small ones);\n"
                "measured largest-model speedup: %+.1f%%\n",
                prev_speedup * 100.0);
    return 0;
}
