/**
 * @file
 * Fig 3 reproduction: the motivational experiment.
 *
 * Left half (time): execution-time breakdown of GPT-2.5B on the
 * simulated 128-GPU cluster for Baseline, naive DP compression,
 * naive CB compression, Opt-CC, and Opt-CC with top-k -- the
 * CPI-stack methodology of Section 3 (disable one component at a
 * time).
 *
 * Right half (quality): the same configurations trained for real at
 * miniature scale; naive compression must visibly damage validation
 * perplexity while Opt-CC must hold the baseline's.
 *
 * Paper anchors: baseline 8.00 days -> Opt-CC 6.97 days at 125K
 * iterations; naive variants raise PPL, Opt-CC does not, and the
 * top-k variant is worse than the low-rank one.
 */

#include "bench_util.hh"

using namespace optimus;
using namespace optimus::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    banner("Fig 3 -- motivational breakdown and naive-compression "
           "quality",
           "Section 3, Fig 3 (GPT-2.5B, 125K iterations)");

    const std::vector<TechniquePreset> configs = {
        presets::baseline(), presets::naiveDp(), presets::naiveCb(),
        presets::cbFe(), presets::cbTopk()};

    // ---- Time side: simulated 128-GPU cluster, 125K iterations.
    TrainingPlan plan;
    plan.iterations = 125000;
    const auto rows = runPerformanceAblation(
        HardwareConfig::a100Cluster(), GptModelSpec::gpt2_5b(),
        ParallelConfig{}, plan, configs);

    TablePrinter time_table({"Config", "Days", "FWD", "BWD",
                             "Inter-stage", "DP", "EMB"});
    for (const auto &row : rows) {
        time_table.addRow(
            {row.config, TablePrinter::fmt(row.trainingDays),
             TablePrinter::fmt(row.breakdown.fwdCompute),
             TablePrinter::fmt(row.breakdown.bwdCompute),
             TablePrinter::fmt(row.breakdown.interStage),
             TablePrinter::fmt(row.breakdown.dpComm),
             TablePrinter::fmt(row.breakdown.embComm)});
    }
    std::printf("execution time, 125K iterations "
                "(paper: baseline 8.00 days, Opt-CC 6.97 days):\n");
    time_table.print();

    // ---- Quality side: real training at miniature scale.
    const QualityRunConfig qc = standardQualityConfig(args);
    std::printf("\nvalidation PPL after %d iterations "
                "(floor %.2f; paper: naive variants rise, Opt-CC "
                "matches baseline, top-k worse than low-rank):\n",
                qc.iterations, perplexityFloor(qc));

    TablePrinter ppl_table({"Config", "Val PPL", "vs baseline"});
    double baseline_ppl = 0.0;
    for (const auto &preset : configs) {
        const auto result = runQualityExperiment(qc, preset);
        if (preset.name == "Baseline")
            baseline_ppl = result.finalPerplexity;
        ppl_table.addRow(
            {preset.name,
             TablePrinter::fmt(result.finalPerplexity, 3),
             TablePrinter::fmtPercent(
                 result.finalPerplexity / baseline_ppl - 1.0)});
    }
    ppl_table.print();
    return 0;
}
