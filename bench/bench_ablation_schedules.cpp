/**
 * @file
 * Design-choice ablation: pipeline schedule families. The paper's
 * implementation runs interleaved 1F1B (Section 8); this harness
 * quantifies what that choice buys on the simulated cluster, and
 * shows that Optimus-CC's compressed backpropagation composes with
 * every schedule.
 *
 * Known trade-off reproduced: interleaving divides the warm-up
 * bubble by the chunk count but multiplies the number of inter-node
 * hops, so its benefit shrinks (and eventually inverts) as
 * communication gets more expensive -- which is precisely why
 * compressing the inter-stage traffic and interleaving are
 * complementary.
 */

#include "bench_util.hh"

using namespace optimus;
using namespace optimus::bench;

int
main()
{
    banner("Ablation -- pipeline schedule families",
           "Section 8 (interleaved scheduling) / Section 2.1");

    for (auto model :
         {GptModelSpec::gpt8_3b(), GptModelSpec::gpt2_5b()}) {
        MappedWorkload w(HardwareConfig::a100Cluster(), model,
                         ParallelConfig{}, TrainingPlan{});

        TablePrinter table({"Schedule", "Baseline (days)",
                            "CB (days)", "CB gain",
                            "In-flight stashes"});
        const double to_days =
            static_cast<double>(TrainingPlan{}.iterations) / 86400.0;

        // Plain schedules through the generic simulator.
        for (auto kind :
             {ScheduleKind::GPipe, ScheduleKind::OneFOneB}) {
            auto base_spec =
                buildCostSpec(w, OptimusCcPolicy::baseline());
            base_spec.schedule = kind;
            auto cb_spec = buildCostSpec(w, OptimusCcPolicy::cbOnly());
            cb_spec.schedule = kind;
            const double base =
                simulatePipeline(base_spec).iterationTime * to_days;
            const double cb =
                simulatePipeline(cb_spec).iterationTime * to_days;
            // Peak in-flight micro-batch stashes on stage 0: the
            // whole mini-batch for GPipe, the pipeline depth for
            // 1F1B -- the memory reason GPipe is not usable here
            // even where its raw timing looks competitive.
            const int stash = kind == ScheduleKind::GPipe
                                  ? base_spec.microBatches
                                  : base_spec.stages;
            table.addRow({kind == ScheduleKind::GPipe ? "GPipe"
                                                      : "1F1B",
                          TablePrinter::fmt(base),
                          TablePrinter::fmt(cb),
                          TablePrinter::fmtPercent(base / cb - 1.0),
                          std::to_string(stash)});
        }

        // Interleaved with 2 and 4 chunks.
        for (int chunks : {2, 4}) {
            if (model.layers % (4 * chunks) != 0)
                continue;
            const double base =
                simulateInterleaved(buildInterleavedCostSpec(
                    w, OptimusCcPolicy::baseline(), chunks)) *
                to_days;
            const double cb =
                simulateInterleaved(buildInterleavedCostSpec(
                    w, OptimusCcPolicy::cbOnly(), chunks)) *
                to_days;
            char label[32];
            std::snprintf(label, sizeof(label),
                          "interleaved (v=%d)", chunks);
            table.addRow({label, TablePrinter::fmt(base),
                          TablePrinter::fmt(cb),
                          TablePrinter::fmtPercent(base / cb - 1.0),
                          std::to_string(4 + chunks)});
        }

        std::printf("%s (230K iterations):\n", model.name.c_str());
        table.print();
        std::printf("\n");
    }
    std::printf(
        "notes: GPipe's raw timing hides backward messages inside "
        "its phase overlap but\nstashes the whole mini-batch "
        "(infeasible memory at these scales); 1F1B and\n"
        "interleaved are the practical schedules. Interleaving "
        "shrinks the bubble and\nputs *more* backward hops on the "
        "critical path, so CB's gain grows with it --\nthe two "
        "techniques are complementary, which is why the paper "
        "uses both.\n");
    return 0;
}
