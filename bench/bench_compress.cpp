/**
 * @file
 * Compression-kernel microbenchmark: throughput of the hot paths
 * the SIMD dispatch layer vectorizes — PowerSGD Gram-Schmidt
 * (orthonormalizeColumns), full PowerSGD compress, top-k selection,
 * ternary and one-bit quantization — at every supported dispatch
 * tier, forced via simd::setTier exactly like OPTIMUS_SIMD would.
 * Writes BENCH_compress.json (Melem/s, best of --reps) so the
 * per-tier speedups are diffable across PRs.
 *
 * Usage: bench_compress [--elems 1048576] [--reps 5]
 * Thread count comes from OPTIMUS_THREADS (default: hardware).
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "compress/powersgd.hh"
#include "compress/quantize.hh"
#include "compress/topk.hh"
#include "runtime/runtime.hh"
#include "tensor/simd.hh"
#include "tensor/tensor.hh"
#include "util/cli.hh"
#include "util/random.hh"

using namespace optimus;

namespace
{

double
seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-reps Melem/s for one kernel over n elements. */
double
measure(int64_t n, int reps, const std::function<void()> &fn)
{
    fn(); // warm-up
    double best_rate = 0.0;
    for (int r = 0; r < reps; ++r) {
        const double t0 = seconds();
        fn();
        const double dt = seconds() - t0;
        const double rate = static_cast<double>(n) / dt * 1e-6;
        if (rate > best_rate)
            best_rate = rate;
    }
    return best_rate;
}

struct KernelRow
{
    std::string kernel;
    int64_t n;
    std::vector<std::pair<simd::Tier, double>> rates;
};

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const int64_t n = args.getInt("elems", 1 << 20);
    const int reps = static_cast<int>(args.getInt("reps", 5));

    const simd::Tier auto_tier = simd::tier();
    std::vector<simd::Tier> tiers;
    for (simd::Tier t : {simd::Tier::Scalar, simd::Tier::Avx2,
                         simd::Tier::Avx512})
        if (simd::supported(t))
            tiers.push_back(t);

    std::printf("=== compression kernel microbenchmark ===\n");
    std::printf("pool threads: %d, dispatch tier: %s, n: %lld\n\n",
                runtimeThreads(), simd::tierName(auto_tier),
                static_cast<long long>(n));

    Rng rng(11);
    Tensor flat = Tensor::randn({n}, rng);
    // Square-ish matrix for the PowerSGD paths.
    const int64_t side = 1024;
    Tensor mat = Tensor::randn({side, side}, rng);
    Tensor tall = Tensor::randn({n / 8, 8}, rng);

    std::vector<KernelRow> rows;
    auto addRow = [&](const char *kernel, int64_t elems,
                      const std::function<void()> &fn) {
        KernelRow row;
        row.kernel = kernel;
        row.n = elems;
        std::printf("%-22s", kernel);
        for (simd::Tier t : tiers) {
            simd::setTier(t);
            const double rate = measure(elems, reps, fn);
            row.rates.emplace_back(t, rate);
            std::printf("  %s %9.1f", simd::tierName(t), rate);
        }
        simd::setTier(auto_tier);
        std::printf("  Melem/s\n");
        rows.push_back(row);
    };

    Tensor out;
    TopKCompressor topk(0.01);
    addRow("topk(0.01)", n, [&] { topk.compress(flat, out); });

    TernaryCompressor ternary(123);
    addRow("ternary", n, [&] {
        ternary.reset();
        ternary.compress(flat, out);
    });

    OneBitCompressor onebit;
    addRow("onebit", n, [&] { onebit.compress(flat, out); });

    addRow("orthonormalize[8]", tall.size(), [&] {
        Tensor work = tall;
        orthonormalizeColumns(work);
    });

    PowerSgdCompressor powersgd(4, 99);
    addRow("powersgd(r=4)", mat.size(), [&] {
        powersgd.reset();
        powersgd.compress(mat, out);
    });

    FILE *f = std::fopen("BENCH_compress.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_compress.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"compress\",\n");
    std::fprintf(f, "  \"threads\": %d,\n", runtimeThreads());
    std::fprintf(f, "  \"tier\": \"%s\",\n",
                 simd::tierName(auto_tier));
    std::fprintf(f, "  \"unit\": \"Melem/s\",\n  \"kernels\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const KernelRow &r = rows[i];
        std::fprintf(f, "    {\"kernel\": \"%s\", \"n\": %lld, ",
                     r.kernel.c_str(),
                     static_cast<long long>(r.n));
        std::fprintf(f, "\"tiers\": {");
        for (size_t j = 0; j < r.rates.size(); ++j)
            std::fprintf(f, "\"%s\": %.1f%s",
                         simd::tierName(r.rates[j].first),
                         r.rates[j].second,
                         j + 1 < r.rates.size() ? ", " : "");
        std::fprintf(f, "}}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nresults written to BENCH_compress.json\n");
    return 0;
}
