/**
 * @file
 * Shared configuration for the per-table / per-figure benchmark
 * harnesses, so every bench reports numbers from the same standard
 * miniature-scale quality setup and the same paper-scale simulated
 * cluster. Every harness prints the paper's value next to the
 * measured one; EXPERIMENTS.md records both.
 */

#ifndef OPTIMUS_BENCH_BENCH_UTIL_HH
#define OPTIMUS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "core/optimus.hh"
#include "util/cli.hh"
#include "util/table_printer.hh"

namespace optimus::bench
{

/**
 * The standard miniature quality run used by all quality benches:
 * D=2 x P=2 (3D grid with T=1; tensor parallelism is exact and
 * quality-neutral), 300 iterations, corpus with a known entropy
 * floor. `--iters N` rescales for quick smoke runs.
 */
inline QualityRunConfig
standardQualityConfig(const CliArgs &args)
{
    QualityRunConfig config;
    config.iterations = static_cast<int>(args.getInt("iters", 300));
    return config;
}

/** Deeper-pipeline variant for epilogue-sensitive experiments. */
inline QualityRunConfig
deepPipelineQualityConfig(const CliArgs &args)
{
    QualityRunConfig config = standardQualityConfig(args);
    config.pipelineStages = 4;
    config.microBatches = 8;
    config.dataParallel = 1;
    return config;
}

/** Print a standard experiment banner. */
inline void
banner(const char *experiment, const char *paper_ref)
{
    std::printf("=== %s ===\n", experiment);
    std::printf("reproduces: %s\n\n", paper_ref);
}

/** "x.xx (paper: y.yy)" cell helper. */
inline std::string
withPaper(double measured, const char *paper_value, int precision = 2)
{
    char buf[80];
    std::snprintf(buf, sizeof(buf), "%.*f (paper %s)", precision,
                  measured, paper_value);
    return buf;
}

} // namespace optimus::bench

#endif // OPTIMUS_BENCH_BENCH_UTIL_HH
