/**
 * @file
 * Shared configuration for the per-table / per-figure benchmark
 * harnesses, so every bench reports numbers from the same standard
 * miniature-scale quality setup and the same paper-scale simulated
 * cluster. Every harness prints the paper's value next to the
 * measured one; EXPERIMENTS.md records both.
 */

#ifndef OPTIMUS_BENCH_BENCH_UTIL_HH
#define OPTIMUS_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/optimus.hh"
#include "tensor/simd.hh"
#include "util/cli.hh"
#include "util/table_printer.hh"

namespace optimus::bench
{

/**
 * The standard miniature quality run used by all quality benches:
 * D=2 x P=2 (3D grid with T=1; tensor parallelism is exact and
 * quality-neutral), 300 iterations, corpus with a known entropy
 * floor. `--iters N` rescales for quick smoke runs.
 */
inline QualityRunConfig
standardQualityConfig(const CliArgs &args)
{
    QualityRunConfig config;
    config.iterations = static_cast<int>(args.getInt("iters", 300));
    return config;
}

/** Deeper-pipeline variant for epilogue-sensitive experiments. */
inline QualityRunConfig
deepPipelineQualityConfig(const CliArgs &args)
{
    QualityRunConfig config = standardQualityConfig(args);
    config.pipelineStages = 4;
    config.microBatches = 8;
    config.dataParallel = 1;
    return config;
}

/** Print a standard experiment banner. */
inline void
banner(const char *experiment, const char *paper_ref)
{
    std::printf("=== %s ===\n", experiment);
    std::printf("reproduces: %s\n\n", paper_ref);
}

/** "x.xx (paper: y.yy)" cell helper. */
inline std::string
withPaper(double measured, const char *paper_value, int precision = 2)
{
    char buf[80];
    std::snprintf(buf, sizeof(buf), "%.*f (paper %s)", precision,
                  measured, paper_value);
    return buf;
}

/** Monotonic wall-clock seconds (for best-of-reps timing). */
inline double
wallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Best-of-@p reps wall seconds for one call of @p fn, after one
 * unmeasured warm-up call (arena sizing, scratch ratchets, warm
 * compressor state). Best-of, not mean: the shared box's scheduling
 * noise is strictly additive.
 */
inline double
bestSeconds(int reps, const std::function<void()> &fn)
{
    fn();
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const double t0 = wallSeconds();
        fn();
        const double dt = wallSeconds() - t0;
        if (dt < best)
            best = dt;
    }
    return best;
}

/**
 * Dispatch tiers this host supports, scalar first — the per-tier
 * sweep order every BENCH_*.json uses (forced via simd::setTier,
 * exactly like OPTIMUS_SIMD would resolve them).
 */
inline std::vector<simd::Tier>
supportedTiers()
{
    std::vector<simd::Tier> tiers;
    for (simd::Tier t : {simd::Tier::Scalar, simd::Tier::Avx2,
                         simd::Tier::Avx512})
        if (simd::supported(t))
            tiers.push_back(t);
    return tiers;
}

} // namespace optimus::bench

#endif // OPTIMUS_BENCH_BENCH_UTIL_HH
