/**
 * @file
 * Fig 15 reproduction: compression and decompression throughput of
 * the inter-stage PowerSGD path, versus rank and model size.
 *
 * Two parts:
 *  - a google-benchmark microbenchmark of *our actual CPU kernels*
 *    (compress = two GEMMs + Gram-Schmidt; decompress = one GEMM),
 *    establishing the same qualitative trends on real hardware;
 *  - the calibrated A100 kernel model evaluated at the paper's
 *    shapes, to compare against the paper's absolute anchors
 *    (8.3B rank 16: compression 98.37 GB/s, decompression
 *    8.32 TB/s, both far above the 25 GB/s interconnect).
 */

#include <benchmark/benchmark.h>

#include "compress/powersgd.hh"
#include "pipesim/throughput_model.hh"
#include "tensor/matmul.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"
#include "util/table_printer.hh"

using namespace optimus;

namespace
{

/** Compress an [m x n] message at the given rank. */
void
BM_PowerSgdCompress(benchmark::State &state)
{
    const auto m = state.range(0);
    const auto n = state.range(1);
    const int rank = static_cast<int>(state.range(2));
    Rng rng(1);
    Tensor input = Tensor::randn({m, n}, rng);
    PowerSgdCompressor comp(rank, 7);
    Tensor out;
    for (auto _ : state) {
        comp.compress(input, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * m * n * 4);
}

/** Decompression alone: P_hat * Q^T. */
void
BM_PowerSgdDecompress(benchmark::State &state)
{
    const auto m = state.range(0);
    const auto n = state.range(1);
    const int rank = static_cast<int>(state.range(2));
    Rng rng(1);
    Tensor p = Tensor::randn({m, rank}, rng);
    Tensor q = Tensor::randn({n, rank}, rng);
    for (auto _ : state) {
        Tensor out = matmulNT(p, q);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * m * n * 4);
}

} // namespace

// Size sweep at fixed rank (throughput grows with size) and rank
// sweep at fixed size (compression throughput falls with rank).
BENCHMARK(BM_PowerSgdCompress)
    ->Args({256, 128, 8})
    ->Args({1024, 256, 8})
    ->Args({4096, 256, 8})
    ->Args({1024, 256, 2})
    ->Args({1024, 256, 32});
BENCHMARK(BM_PowerSgdDecompress)
    ->Args({1024, 256, 8})
    ->Args({4096, 256, 8});

int
main(int argc, char **argv)
{
    std::printf("=== Fig 15 -- compression/decompression throughput "
                "===\n\n");

    // Calibrated A100 kernel model at the paper's shapes.
    CompressionKernelModel kernel;
    TablePrinter table({"Shape", "Rank", "Compress (GB/s)",
                        "Decompress (GB/s)"});
    struct Shape
    {
        const char *name;
        double m, n;
    };
    // micro-batch 8 x seq 1024 rows; hidden columns.
    const Shape shapes[] = {{"GPT-8.3B boundary", 8192, 3072},
                            {"GPT-175B boundary", 8192, 12288}};
    for (const auto &shape : shapes) {
        for (int rank : {4, 16, 64, 256}) {
            table.addRow(
                {shape.name, std::to_string(rank),
                 TablePrinter::fmt(kernel.compressThroughput(
                                       shape.m, shape.n, rank) /
                                       1e9,
                                   1),
                 TablePrinter::fmt(kernel.decompressThroughput(
                                       shape.m, shape.n, rank) /
                                       1e9,
                                   1)});
        }
    }
    table.print();
    std::printf(
        "\npaper anchors (8.3B, rank 16): compress 98.37 GB/s, "
        "decompress 8320 GB/s;\ninterconnect 25 GB/s (red line) -- "
        "both sides must stay above it.\ntrends: throughput rises "
        "with size, compression falls with rank\n(orthogonalization "
        "~80%% of cost).\n\nCPU kernel microbenchmarks "
        "(google-benchmark):\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
