/**
 * @file
 * Fig 15 reproduction: compression and decompression throughput of
 * the inter-stage PowerSGD path, versus rank and model size.
 *
 * Two parts:
 *  - a google-benchmark microbenchmark of *our actual CPU kernels*
 *    (compress = two GEMMs + Gram-Schmidt; decompress = one GEMM),
 *    establishing the same qualitative trends on real hardware;
 *  - the calibrated A100 kernel model evaluated at the paper's
 *    shapes, to compare against the paper's absolute anchors
 *    (8.3B rank 16: compression 98.37 GB/s, decompression
 *    8.32 TB/s, both far above the 25 GB/s interconnect).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "compress/powersgd.hh"
#include "pipesim/throughput_model.hh"
#include "runtime/runtime.hh"
#include "tensor/matmul.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"
#include "util/table_printer.hh"

using namespace optimus;

namespace
{

/** Compress an [m x n] message at the given rank. */
void
BM_PowerSgdCompress(benchmark::State &state)
{
    const auto m = state.range(0);
    const auto n = state.range(1);
    const int rank = static_cast<int>(state.range(2));
    Rng rng(1);
    Tensor input = Tensor::randn({m, n}, rng);
    PowerSgdCompressor comp(rank, 7);
    Tensor out;
    for (auto _ : state) {
        comp.compress(input, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * m * n * 4);
}

/** Decompression alone: P_hat * Q^T. */
void
BM_PowerSgdDecompress(benchmark::State &state)
{
    const auto m = state.range(0);
    const auto n = state.range(1);
    const int rank = static_cast<int>(state.range(2));
    Rng rng(1);
    Tensor p = Tensor::randn({m, rank}, rng);
    Tensor q = Tensor::randn({n, rank}, rng);
    for (auto _ : state) {
        Tensor out = matmulNT(p, q);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * m * n * 4);
}

} // namespace

// Size sweep at fixed rank (throughput grows with size) and rank
// sweep at fixed size (compression throughput falls with rank).
BENCHMARK(BM_PowerSgdCompress)
    ->Args({256, 128, 8})
    ->Args({1024, 256, 8})
    ->Args({4096, 256, 8})
    ->Args({1024, 256, 2})
    ->Args({1024, 256, 32});
BENCHMARK(BM_PowerSgdDecompress)
    ->Args({1024, 256, 8})
    ->Args({4096, 256, 8});

int
main(int argc, char **argv)
{
    std::printf("=== Fig 15 -- compression/decompression throughput "
                "===\n\n");

    // Calibrated A100 kernel model at the paper's shapes.
    CompressionKernelModel kernel;
    TablePrinter table({"Shape", "Rank", "Compress (GB/s)",
                        "Decompress (GB/s)"});
    struct Shape
    {
        const char *name;
        double m, n;
    };
    // micro-batch 8 x seq 1024 rows; hidden columns.
    const Shape shapes[] = {{"GPT-8.3B boundary", 8192, 3072},
                            {"GPT-175B boundary", 8192, 12288}};
    for (const auto &shape : shapes) {
        for (int rank : {4, 16, 64, 256}) {
            table.addRow(
                {shape.name, std::to_string(rank),
                 TablePrinter::fmt(kernel.compressThroughput(
                                       shape.m, shape.n, rank) /
                                       1e9,
                                   1),
                 TablePrinter::fmt(kernel.decompressThroughput(
                                       shape.m, shape.n, rank) /
                                       1e9,
                                   1)});
        }
    }
    table.print();
    std::printf(
        "\npaper anchors (8.3B, rank 16): compress 98.37 GB/s, "
        "decompress 8320 GB/s;\ninterconnect 25 GB/s (red line) -- "
        "both sides must stay above it.\ntrends: throughput rises "
        "with size, compression falls with rank\n(orthogonalization "
        "~80%% of cost).\n");

    // Per-tier legs at the paper's model-scale boundary shapes: the
    // google-benchmark sweep below runs whatever tier the dispatch
    // resolves, so BENCH_fig15.json additionally records our real
    // compress/decompress kernels at every SIMD tier (forced via
    // simd::setTier) on the fig 15 anchor shapes — SIMD at model
    // scale, complementing BENCH_compress.json's kernel scale.
    std::printf("\nmeasured CPU kernels per SIMD tier at the anchor "
                "shapes (GB/s, best of 3):\n");
    const std::vector<simd::Tier> tiers = bench::supportedTiers();
    const simd::Tier auto_tier = simd::tier();
    const int rank16 = 16;
    struct TierRow
    {
        std::string kernel;
        std::string shape;
        std::vector<std::pair<simd::Tier, double>> rates;
    };
    std::vector<TierRow> tierRows;
    std::vector<std::string> header{"Kernel", "Shape"};
    for (simd::Tier t : tiers)
        header.push_back(simd::tierName(t));
    TablePrinter measured(header);
    Rng rng(1);
    for (const auto &shape : shapes) {
        const int64_t m = static_cast<int64_t>(shape.m);
        const int64_t n = static_cast<int64_t>(shape.n);
        Tensor input = Tensor::randn({m, n}, rng);
        Tensor p_hat = Tensor::randn({m, rank16}, rng);
        Tensor q_hat = Tensor::randn({n, rank16}, rng);
        PowerSgdCompressor comp(rank16, 7);
        Tensor out;
        const double bytes = static_cast<double>(m) * n * 4;
        char label[48];
        std::snprintf(label, sizeof(label), "%lld x %lld r16",
                      static_cast<long long>(m),
                      static_cast<long long>(n));
        const auto addRow = [&](const char *kernel,
                                const std::function<void()> &fn) {
            TierRow row;
            row.kernel = kernel;
            row.shape = label;
            std::vector<std::string> cells{kernel, label};
            for (simd::Tier t : tiers) {
                simd::setTier(t);
                const double gbps =
                    bytes / bench::bestSeconds(3, fn) / 1e9;
                row.rates.emplace_back(t, gbps);
                cells.push_back(TablePrinter::fmt(gbps, 2));
            }
            simd::setTier(auto_tier);
            measured.addRow(cells);
            tierRows.push_back(row);
        };
        addRow("compress", [&] {
            comp.reset();
            comp.compress(input, out);
        });
        addRow("decompress", [&] {
            Tensor dec = matmulNT(p_hat, q_hat);
            benchmark::DoNotOptimize(dec.data());
        });
    }
    measured.print();

    FILE *f = std::fopen("BENCH_fig15.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_fig15.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig15\",\n");
    std::fprintf(f, "  \"threads\": %d,\n", runtimeThreads());
    std::fprintf(f, "  \"unit\": \"GB/s\",\n  \"kernels\": [\n");
    for (size_t i = 0; i < tierRows.size(); ++i) {
        const TierRow &r = tierRows[i];
        std::fprintf(f,
                     "    {\"kernel\": \"%s\", \"shape\": \"%s\", "
                     "\"tiers\": {",
                     r.kernel.c_str(), r.shape.c_str());
        for (size_t j = 0; j < r.rates.size(); ++j)
            std::fprintf(f, "\"%s\": %.2f%s",
                         simd::tierName(r.rates[j].first),
                         r.rates[j].second,
                         j + 1 < r.rates.size() ? ", " : "");
        std::fprintf(f, "}}%s\n",
                     i + 1 < tierRows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nper-tier results written to BENCH_fig15.json\n"
                "\nCPU kernel microbenchmarks (google-benchmark):\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
