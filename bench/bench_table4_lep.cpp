/**
 * @file
 * Table 4 reproduction: the lazy-error-propagation ablation.
 * Compressed backpropagation with and without LEP is compared on
 * the zero-shot probes (and on perplexity, which the paper reports
 * via Fig 9 / Table 2).
 *
 * Paper anchor: CB (Non-LEP) has the lowest accuracies across the
 * board; CB (LEP) is comparable to the baseline. Both use
 * epilogue-only compression (without it, CB diverged in the paper).
 */

#include "bench_util.hh"

using namespace optimus;
using namespace optimus::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    banner("Table 4 -- effect of lazy error propagation",
           "Table 4 (GPT-2.5B zero-shot, CB with/without LEP)");

    // Deeper pipeline and more micro-batches: more compressed
    // messages per channel, a sharper LEP effect.
    QualityRunConfig config = deepPipelineQualityConfig(args);
    config.zeroShotExamples =
        static_cast<int>(args.getInt("examples", 64));

    const std::vector<TechniquePreset> configs = {
        presets::baseline(), presets::cbNoLep(), presets::cb()};

    // Direct measurement of Section 5.1's mathematical claim: LEP
    // makes the accumulated weight gradient a strictly better
    // approximation of the exact one.
    std::printf("accumulated-gradient approximation error "
                "||G* - G|| / ||G|| (lower is better):\n");
    TablePrinter grad_table({"Config", "Gradient rel. error"});
    for (const auto &preset :
         {presets::cbNoLep(), presets::cb()}) {
        grad_table.addRow(
            {preset.name,
             TablePrinter::fmt(
                 gradientApproximationError(config, preset), 4)});
    }
    grad_table.print();
    std::printf("\n");

    std::vector<QualityResult> results;
    for (const auto &preset : configs)
        results.push_back(runQualityExperiment(config, preset));

    TablePrinter table({"Task", "Baseline", "CB (Non-LEP)",
                        "CB (LEP)"});
    const char *tasks[] = {"cloze", "pair2", "mcq4", "coref2",
                           "passage4"};
    for (const char *task : tasks) {
        std::vector<std::string> cells{task};
        for (const auto &result : results)
            cells.push_back(
                TablePrinter::fmtPercent(result.zeroShot.at(task)));
        table.addRow(cells);
    }
    table.print();

    std::printf("\nvalidation PPL: baseline %.3f, non-LEP %.3f, "
                "LEP %.3f (floor %.2f)\n",
                results[0].finalPerplexity,
                results[1].finalPerplexity,
                results[2].finalPerplexity,
                perplexityFloor(config));
    std::printf("paper: Non-LEP brings the lowest accuracies; LEP "
                "restores baseline-comparable quality\n");
    return 0;
}
