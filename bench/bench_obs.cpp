/**
 * @file
 * Observability overhead benchmark: full Trainer3d iterations on
 * the overlapped+compressed bench_step_overlap workload, first with
 * everything off, then with the span tracer recording to a file,
 * then with the telemetry rings + compression-health probes live —
 * reporting each per-step overhead ratio. A ServeEngine wave is
 * measured the same way (telemetry off vs on). Writes
 * BENCH_obs.json (tracing plus `rings`/`probes` columns) and leaves
 * the recorded trace (BENCH_obs_trace.json) behind for Perfetto /
 * tracesum.
 *
 * --smoke shrinks the run for ctest and turns on the validation
 * gates: the written trace must parse, its per-phase totals must
 * reconcile with the summed StepPhaseTimes to <1%, and — when the
 * pool has an idle worker to drain buckets into
 * (OPTIMUS_THREADS >= D+1) — at least one dpReduce bucket span must
 * temporally overlap a backward span.
 *
 * --hold-scrape SECONDS keeps the process alive after the runs
 * until the exporter (OPTIMUS_METRICS_PORT) has served at least one
 * scrape or the deadline passes — the CI hook for curling a live
 * /metrics endpoint.
 *
 * Usage: bench_obs [--iters 3] [--reps 5] [--bucket-kb 64]
 *        [--smoke] [--hold-scrape SECONDS]
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "data/corpus.hh"
#include "data/dataset.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/probes.hh"
#include "obs/promexport.hh"
#include "obs/rings.hh"
#include "obs/trace.hh"
#include "obs/tracesum.hh"
#include "parallel/trainer3d.hh"
#include "runtime/runtime.hh"
#include "serve/engine.hh"
#include "util/cli.hh"

using namespace optimus;

namespace
{

const char *kTracePath = "BENCH_obs_trace.json";

GptConfig
benchModel(bool smoke)
{
    GptConfig model;
    if (smoke) {
        model.vocab = 24;
        model.hidden = 16;
        model.layers = 4;
        model.heads = 2;
        model.seqLen = 8;
    } else {
        model.vocab = 64;
        model.hidden = 64;
        model.layers = 8;
        model.heads = 4;
        model.seqLen = 8;
    }
    model.seed = 77;
    return model;
}

LmDataset
benchData(const GptConfig &model)
{
    CorpusConfig cc;
    cc.vocab = model.vocab;
    cc.totalTokens = 20000;
    cc.seed = 5;
    SyntheticCorpus corpus(cc);
    return {corpus.train(), model.seqLen};
}

/** The 2-stage / 2-replica compressed overlapped-reduce workload. */
Trainer3dConfig
makeConfig(const GptConfig &model, int64_t bucket_bytes, bool smoke,
           const std::string &trace_path)
{
    Trainer3dConfig config;
    config.model = model;
    config.dataParallel = 2;
    config.pipelineStages = 2;
    config.microBatches = smoke ? 2 : 4;
    config.microBatchSize = 2;
    config.reduceMode = DpReduceMode::Overlapped;
    config.bucketBytes = bucket_bytes;
    config.cb.enabled = true;
    config.dp.enabled = true;
    config.dp.stageFraction = 0.75;
    config.tracePath = trace_path;
    return config;
}

struct RunResult
{
    double bestStep = 1e30;
    double meanStep = 0.0;
    int iterations = 0;
    StepPhaseTimes phaseSum;
};

/**
 * Run warmup + reps*iters iterations and keep the best (noise
 * floor) and mean per-step time. Every iteration's phase breakdown
 * is accumulated so a traced run can be reconciled against the
 * trace file, which covers all of the trainer's iterations.
 */
RunResult
measure(Trainer3d &trainer, const LmDataset &data, Rng &rng,
        int reps, int iters)
{
    RunResult result;
    double total = 0.0;
    const auto fold = [&](bool timed) {
        const int64_t t0 = obs::nowNs();
        const IterationStats stats = trainer.trainIteration(data, rng);
        const double step = obs::secondsBetween(t0, obs::nowNs());
        ++result.iterations;
        result.phaseSum.forwardBackward +=
            stats.phases.forwardBackward;
        result.phaseSum.dpReduce += stats.phases.dpReduce;
        result.phaseSum.dpReduceBusy += stats.phases.dpReduceBusy;
        result.phaseSum.overlapHidden += stats.phases.overlapHidden;
        result.phaseSum.embSync += stats.phases.embSync;
        result.phaseSum.optimizer += stats.phases.optimizer;
        result.phaseSum.total += stats.phases.total;
        if (timed) {
            total += step;
            result.bestStep = std::min(result.bestStep, step);
        }
    };
    fold(false); // warm-up: bucket binding, pool spin-up, allocator
    for (int rep = 0; rep < reps; ++rep) {
        for (int it = 0; it < iters; ++it)
            fold(true);
    }
    result.meanStep = total / (reps * iters);
    return result;
}

/** Relative error with an absolute floor for near-zero phases. */
bool
reconciles(double trace_s, double timer_s)
{
    return std::abs(trace_s - timer_s) <= 0.01 * timer_s + 2e-6;
}

/** Deterministic request mix with prompt lengths 3..6. */
std::vector<std::vector<int32_t>>
servePrompts(int count, int64_t vocab)
{
    std::vector<std::vector<int32_t>> prompts;
    for (int r = 0; r < count; ++r) {
        std::vector<int32_t> prompt;
        for (int t = 0; t < 3 + r % 4; ++t)
            prompt.push_back(static_cast<int32_t>(
                (7 * r + 3 * t + 1) % vocab));
        prompts.push_back(std::move(prompt));
    }
    return prompts;
}

/**
 * Best-of-reps wall time of one closed-loop serving wave (submit
 * the whole mix, drain) on a 2-stage lossy-boundary engine — the
 * workload whose boundary transfers feed the serve health probes.
 */
struct ServeWaveResult
{
    double bestSeconds = 1e30;
    obs::CompressionHealth health;
};

ServeWaveResult
measureServeWave(bool smoke, int reps)
{
    GptConfig model = benchModel(smoke);
    model.seqLen = smoke ? 16 : 64;
    serve::ServeConfig config;
    config.model = model;
    config.pipelineStages = 2;
    config.maxSequences = smoke ? 4 : 8;
    config.maxBatchTokens = smoke ? 16 : 64;
    config.boundary.kind = CompressorKind::TopK;
    config.boundary.topkFraction = 0.5;
    serve::ServeEngine engine(config);
    const auto prompts =
        servePrompts(smoke ? 6 : 12, model.vocab);
    const int64_t max_new = smoke ? 4 : 8;

    const auto wave = [&]() {
        for (const auto &prompt : prompts)
            engine.submit(prompt, max_new);
        engine.drain();
    };
    wave(); // warmup: arenas, ring/vector capacities
    ServeWaveResult result;
    for (int rep = 0; rep < reps; ++rep) {
        const int64_t t0 = obs::nowNs();
        wave();
        result.bestSeconds =
            std::min(result.bestSeconds,
                     obs::secondsBetween(t0, obs::nowNs()));
    }
    result.health = engine.boundaryHealth();
    return result;
}

/**
 * Smoke gate: some bucket-reduce span must run concurrently with a
 * backward span (the overlap the engine exists to create). Checked
 * on the in-memory events of the run's trace.
 */
bool
anyBucketOverlapsBackward(const std::vector<obs::TraceEvent> &events)
{
    std::vector<const obs::TraceEvent *> buckets, backwards;
    for (const auto &e : events) {
        if (e.phase != 'X')
            continue;
        if (std::strcmp(e.category, "reduce") == 0)
            buckets.push_back(&e);
        else if (std::strcmp(e.category, "compute") == 0 &&
                 std::strcmp(e.name, "backward") == 0)
            backwards.push_back(&e);
    }
    for (const auto *bucket : buckets) {
        for (const auto *backward : backwards) {
            if (bucket->beginNs < backward->endNs &&
                backward->beginNs < bucket->endNs)
                return true;
        }
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const bool smoke = args.getBool("smoke", false);
    const int iters =
        static_cast<int>(args.getInt("iters", smoke ? 2 : 3));
    const int reps =
        static_cast<int>(args.getInt("reps", smoke ? 2 : 5));
    const int64_t bucket_bytes = args.getInt("bucket-kb", 64) * 1024;

    const GptConfig model = benchModel(smoke);
    const LmDataset data = benchData(model);

    std::printf("=== observability overhead benchmark ===\n");
    std::printf("pool threads: %d  iters: %d  reps: %d  bucket: "
                "%lld KiB%s\n\n",
                runtimeThreads(), iters, reps,
                static_cast<long long>(bucket_bytes / 1024),
                smoke ? "  [smoke]" : "");

    // Tracing disabled first: the flag is process-global, so the
    // two states cannot interleave the way bench_step_overlap's
    // modes do.
    RunResult off;
    {
        Trainer3d trainer(makeConfig(model, bucket_bytes, smoke, ""));
        Rng rng(11);
        off = measure(trainer, data, rng, reps, iters);
    }

    // Tracing enabled: the trainer owns the process trace and its
    // destructor writes the file.
    RunResult on;
    {
        Trainer3d trainer(
            makeConfig(model, bucket_bytes, smoke, kTracePath));
        Rng rng(11);
        on = measure(trainer, data, rng, reps, iters);
    }
    const std::vector<obs::TraceEvent> events = obs::traceEvents();

    // Telemetry run: rings + health probes live (tracing back off).
    RunResult tel;
    obs::CompressionHealth pp_health, dp_health;
    {
        obs::enableMetrics(true);
        obs::enableProbes(true);
        Trainer3d trainer(makeConfig(model, bucket_bytes, smoke, ""));
        Rng rng(11);
        tel = measure(trainer, data, rng, reps, iters);
        pp_health = trainer.ppHealth();
        dp_health = trainer.dpHealth();
        obs::enableProbes(false);
        obs::enableMetrics(false);
    }

    // Serving wave, telemetry off then on.
    const ServeWaveResult serve_off = measureServeWave(smoke, reps);
    obs::enableMetrics(true);
    obs::enableProbes(true);
    const ServeWaveResult serve_on = measureServeWave(smoke, reps);
    obs::enableProbes(false);
    obs::enableMetrics(false);

    const double overhead =
        off.bestStep > 0.0 ? on.bestStep / off.bestStep : 1.0;
    const double tel_overhead =
        off.bestStep > 0.0 ? tel.bestStep / off.bestStep : 1.0;
    const double serve_overhead =
        serve_off.bestSeconds > 0.0
            ? serve_on.bestSeconds / serve_off.bestSeconds
            : 1.0;
    std::printf("tracing off:  best %8.3f ms  mean %8.3f ms\n",
                1e3 * off.bestStep, 1e3 * off.meanStep);
    std::printf("tracing on:   best %8.3f ms  mean %8.3f ms\n",
                1e3 * on.bestStep, 1e3 * on.meanStep);
    std::printf("telemetry on: best %8.3f ms  mean %8.3f ms\n",
                1e3 * tel.bestStep, 1e3 * tel.meanStep);
    std::printf("overhead (best-over-best): tracing %.3fx, "
                "telemetry %.3fx, %zu events\n",
                overhead, tel_overhead, events.size());
    std::printf("serve wave: off %8.3f ms  on %8.3f ms "
                "(%.3fx)\n\n",
                1e3 * serve_off.bestSeconds,
                1e3 * serve_on.bestSeconds, serve_overhead);

    const obs::TraceSummary summary =
        obs::summarizeTraceFile(kTracePath);
    bool ok = true;
    if (!summary.valid ||
        summary.steps != static_cast<int64_t>(on.iterations)) {
        ok = false;
        std::fprintf(stderr,
                     "FAILED: %s invalid or wrong step count "
                     "(%lld vs %d)\n",
                     kTracePath,
                     static_cast<long long>(summary.steps),
                     on.iterations);
    } else {
        std::fputs(obs::renderTraceSummary(summary).c_str(), stdout);
    }

    if (ok && smoke) {
        // Reconciliation gate: trace vs the timers it mirrors.
        const struct
        {
            const char *name;
            double traceSeconds;
            double timerSeconds;
        } rows[] = {
            {"forwardBackward", summary.forwardBackward,
             on.phaseSum.forwardBackward},
            {"dpReduce", summary.dpReduce, on.phaseSum.dpReduce},
            {"dpReduceBusy", summary.dpReduceBusy,
             on.phaseSum.dpReduceBusy},
            {"embSync", summary.embSync, on.phaseSum.embSync},
            {"optimizer", summary.optimizer, on.phaseSum.optimizer},
            {"total", summary.total, on.phaseSum.total},
        };
        for (const auto &row : rows) {
            if (!reconciles(row.traceSeconds, row.timerSeconds)) {
                ok = false;
                std::fprintf(stderr,
                             "FAILED: %s does not reconcile: trace "
                             "%.6f s vs timers %.6f s\n",
                             row.name, row.traceSeconds,
                             row.timerSeconds);
            }
        }

        // Overlap gate: needs a worker free to drain buckets while
        // the replica chunks occupy the others.
        const bool can_overlap = runtimeThreads() >= 2 + 1;
        const bool overlapped = anyBucketOverlapsBackward(events);
        std::printf("bucket/backward overlap: %s%s\n",
                    overlapped ? "yes" : "no",
                    can_overlap ? "" : " (not required at this "
                                       "thread count)");
        if (can_overlap && !overlapped) {
            ok = false;
            std::fprintf(stderr,
                         "FAILED: no dpReduce bucket span overlaps "
                         "a backward span despite %d pool threads\n",
                         runtimeThreads());
        }
    }

    FILE *f = std::fopen("BENCH_obs.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_obs.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"obs_overhead\",\n");
    std::fprintf(f, "  \"threads\": %d,\n", runtimeThreads());
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"unit\": \"seconds/step\",\n");
    std::fprintf(f,
                 "  \"tracing_off\": {\"best\": %.6f, \"mean\": "
                 "%.6f},\n",
                 off.bestStep, off.meanStep);
    std::fprintf(f,
                 "  \"tracing_on\": {\"best\": %.6f, \"mean\": "
                 "%.6f},\n",
                 on.bestStep, on.meanStep);
    std::fprintf(f, "  \"overhead_ratio\": %.4f,\n", overhead);
    std::fprintf(f,
                 "  \"rings\": {\"step_off\": %.6f, \"step_on\": "
                 "%.6f, \"step_ratio\": %.4f,\n"
                 "    \"serve_wave_off\": %.6f, \"serve_wave_on\": "
                 "%.6f, \"serve_wave_ratio\": %.4f},\n",
                 off.bestStep, tel.bestStep, tel_overhead,
                 serve_off.bestSeconds, serve_on.bestSeconds,
                 serve_overhead);
    std::fprintf(f,
                 "  \"probes\": {\"pp_relerr\": %.6f, "
                 "\"pp_wire_ratio\": %.4f,\n"
                 "    \"dp_relerr\": %.6f, \"dp_wire_ratio\": "
                 "%.4f,\n"
                 "    \"serve_relerr\": %.6f, \"serve_wire_ratio\": "
                 "%.4f, \"alerts\": %lld},\n",
                 pp_health.relError(), pp_health.wireRatio(),
                 dp_health.relError(), dp_health.wireRatio(),
                 serve_on.health.relError(),
                 serve_on.health.wireRatio(),
                 static_cast<long long>(
                     obs::AlertLog::instance().raisedTotal()));
    std::fprintf(f, "  \"trace_events\": %zu,\n", events.size());
    std::fprintf(f, "  \"trace_spans\": %lld,\n",
                 static_cast<long long>(summary.spans));
    std::fprintf(f, "  \"trace_path\": \"%s\",\n", kTracePath);
    std::fprintf(f, "  \"valid\": %s\n}\n", ok ? "true" : "false");
    std::fclose(f);

    std::printf("results written to BENCH_obs.json (trace: %s)\n",
                kTracePath);

    // CI hook: stay alive until the exporter has served a scrape
    // (or the deadline passes) so `curl /metrics` sees live data.
    const double hold = args.getDouble("hold-scrape", 0.0);
    if (hold > 0.0) {
        obs::maybeStartMetricsServerFromEnv();
        if (obs::metricsServerPort() < 0) {
            std::fprintf(stderr,
                         "FAILED: --hold-scrape without a running "
                         "exporter (set OPTIMUS_METRICS_PORT)\n");
            return 1;
        }
        std::printf("holding for a scrape on port %d (max %.0f "
                    "s)...\n",
                    obs::metricsServerPort(), hold);
        std::fflush(stdout);
        // Wait for a scrape issued AFTER the hold began: earlier
        // scrapes may predate the telemetry phase and therefore
        // show empty rings — the hold exists so a scraper can see
        // the finished run.
        const int64_t base = obs::metricsScrapeCount();
        const int64_t deadline =
            obs::nowNs() + static_cast<int64_t>(hold * 1e9);
        timespec ts{0, 50 * 1000 * 1000};
        while (obs::metricsScrapeCount() <= base &&
               obs::nowNs() < deadline)
            nanosleep(&ts, nullptr);
        std::printf("exporter served %lld scrape(s)\n",
                    static_cast<long long>(
                        obs::metricsScrapeCount()));
        if (obs::metricsScrapeCount() <= base)
            return 1;
    }
    return ok ? 0 : 1;
}
