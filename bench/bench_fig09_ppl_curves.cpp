/**
 * @file
 * Fig 9 reproduction: validation perplexity curves over training
 * for Baseline / CB / CB+FE / CB+FE+SC.
 *
 * Paper anchor: CB and CB+FE curves sit on top of the baseline
 * (sometimes below it at a given sample); CB+FE+SC tracks slightly
 * above. Writes fig09_ppl_curves.csv for replotting.
 */

#include "bench_util.hh"
#include "util/csv_writer.hh"

using namespace optimus;
using namespace optimus::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    banner("Fig 9 -- validation perplexity curves",
           "Fig 9 (GPT-8.3B pretraining curves)");

    QualityRunConfig config = standardQualityConfig(args);
    config.evalEvery =
        std::max(10, config.iterations / 10);

    const auto ladder = presets::ablationLadder();
    std::vector<QualityResult> results;
    for (const auto &preset : ladder)
        results.push_back(runQualityExperiment(config, preset));

    // Align on the sampling grid of the first run.
    std::vector<std::string> header{"iteration"};
    for (const auto &preset : ladder)
        header.push_back(preset.name);
    CsvWriter csv("fig09_ppl_curves.csv", header);

    TablePrinter table(header);
    for (size_t k = 0; k < results[0].pplCurve.size(); ++k) {
        std::vector<std::string> cells{
            std::to_string(results[0].pplCurve[k].first)};
        std::vector<double> row{
            static_cast<double>(results[0].pplCurve[k].first)};
        for (const auto &result : results) {
            cells.push_back(
                TablePrinter::fmt(result.pplCurve[k].second, 3));
            row.push_back(result.pplCurve[k].second);
        }
        table.addRow(cells);
        csv.writeRow(row);
    }
    std::printf("PPL floor: %.2f; paper: CB and CB+FE overlap the "
                "baseline curve, CB+FE+SC sits slightly above\n\n",
                perplexityFloor(config));
    table.print();
    std::printf("\ncurves written to fig09_ppl_curves.csv\n");
    return 0;
}
