/**
 * @file
 * Fig 12 reproduction: peak per-GPU memory of compressed
 * backpropagation, with and without lazy error propagation.
 *
 * Paper-scale side: the analytic memory model (weights, gradients,
 * optimizer states, stashed activations, compression workspace,
 * LEP buffer). Paper anchor: CB adds 5-10% over the baseline; LEP
 * adds ~1% more.
 *
 * Miniature side: the engine's actually-measured buffer bytes
 * (compressor warm state and LEP error tensors) after a real run.
 */

#include "bench_util.hh"

using namespace optimus;
using namespace optimus::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    banner("Fig 12 -- memory overhead of CB and LEP",
           "Fig 12 (peak per-GPU memory)");

    std::printf("paper-scale analytic model (GB per GPU):\n");
    TablePrinter table({"Model", "Baseline", "CB",
                        "CB overhead", "CB+LEP", "LEP overhead"});
    for (auto model :
         {GptModelSpec::gpt2_5b(), GptModelSpec::gpt8_3b()}) {
        MappedWorkload w(HardwareConfig::a100Cluster(), model,
                         ParallelConfig{}, TrainingPlan{});
        const double base =
            estimateMemory(w, false, false, 16).total();
        const double cb = estimateMemory(w, true, false, 16).total();
        const double cb_lep =
            estimateMemory(w, true, true, 16).total();
        table.addRow({model.name, TablePrinter::fmt(base / 1e9),
                      TablePrinter::fmt(cb / 1e9),
                      TablePrinter::fmtPercent(cb / base - 1.0),
                      TablePrinter::fmt(cb_lep / 1e9),
                      TablePrinter::fmtPercent(cb_lep / cb - 1.0)});
    }
    table.print();
    std::printf("paper: CB overhead 5-10%%; LEP adds ~1%%\n\n");

    // Miniature side: measured bytes from a real instrumented run.
    QualityRunConfig config = standardQualityConfig(args);
    config.iterations = std::min(config.iterations, 40);
    std::printf("miniature-scale measured buffers "
                "(%d iterations, real engine):\n",
                config.iterations);
    TablePrinter measured({"Config", "Params (KB)",
                           "Compressor state (KB)",
                           "LEP buffers (KB)"});
    for (const auto &preset :
         {presets::baseline(), presets::cbNoLep(), presets::cb()}) {
        const auto result = runQualityExperiment(config, preset);
        measured.addRow(
            {preset.name,
             TablePrinter::fmt(result.parameterBytes / 1e3, 1),
             TablePrinter::fmt(result.compressorStateBytes / 1e3, 1),
             TablePrinter::fmt(result.lepBufferBytes / 1e3, 1)});
    }
    measured.print();
    return 0;
}
