/**
 * @file
 * Fig 13 reproduction: the speed/quality trade-off of selective
 * stage compression versus adjusting the compression rank, on
 * GPT-2.5B.
 *
 * Left: sweep the fraction of stages compressed (speedup from the
 * cluster simulator, PPL from real miniature training).
 * Middle: sweep the rank instead.
 * Right: the paper's conclusion -- SC dominates rank-adjustment
 * (higher speedup at comparable PPL), and very large ranks *lose*
 * speed because compression cost explodes (Section 9.6).
 */

#include "bench_util.hh"

using namespace optimus;
using namespace optimus::bench;

namespace
{

double
scSpeedup(double stage_fraction, int rank)
{
    MappedWorkload w(HardwareConfig::a100Cluster(),
                     GptModelSpec::gpt2_5b(), ParallelConfig{},
                     TrainingPlan{});
    OptimusCcPolicy base = OptimusCcPolicy::baseline();
    OptimusCcPolicy policy = base;
    policy.sc = stage_fraction > 0.0;
    policy.scStageFraction = stage_fraction;
    policy.dpRank = rank;
    return trainingDays(w, base) / trainingDays(w, policy) - 1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    banner("Fig 13 -- selective stage compression vs rank tuning",
           "Fig 13 (GPT-2.5B speed/PPL trade-off)");

    QualityRunConfig config = standardQualityConfig(args);
    config.pipelineStages = 4;
    config.dataParallel = 2;
    config.microBatches = 4;
    config.microBatchSize = 1;

    // ---- Left: stage-fraction sweep at fixed rank.
    std::printf("selective stage compression sweep "
                "(rank fixed; paper: smooth PPL/speed knob):\n");
    TablePrinter left({"Stages compressed", "Speedup (sim)",
                       "Val PPL (measured)"});
    for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        TechniquePreset preset = presets::baseline();
        preset.name = "sc";
        if (fraction > 0.0) {
            preset.dp.enabled = true;
            preset.dp.stageFraction = fraction;
            preset.dp.spec.rank = 2;
        }
        const auto result = runQualityExperiment(config, preset);
        char label[16];
        std::snprintf(label, sizeof(label), "%.0f%%",
                      fraction * 100.0);
        left.addRow({label,
                     TablePrinter::fmtPercent(
                         scSpeedup(fraction, 128)),
                     TablePrinter::fmt(result.finalPerplexity, 3)});
    }
    left.print();

    // ---- Middle: rank sweep with all stages compressed.
    // Perf side uses paper-scale ranks; quality side scales the
    // rank to the miniature matrices (rank r on hidden-32 matrices
    // plays the role of rank 32*r at hidden 1920).
    std::printf("\nrank sweep (all stages compressed; paper: "
                "non-linear, and rank 512 loses speed too):\n");
    TablePrinter middle({"Rank (paper-scale)", "Speedup (sim)",
                         "Val PPL (measured, scaled rank)"});
    const std::pair<int, int> ranks[] = {
        {32, 1}, {64, 2}, {128, 4}, {512, 12}};
    for (const auto &[paper_rank, mini_rank] : ranks) {
        TechniquePreset preset = presets::baseline();
        preset.name = "rank";
        preset.dp.enabled = true;
        preset.dp.stageFraction = 1.0;
        preset.dp.spec.rank = mini_rank;
        const auto result = runQualityExperiment(config, preset);
        middle.addRow({std::to_string(paper_rank),
                       TablePrinter::fmtPercent(
                           scSpeedup(1.0, paper_rank)),
                       TablePrinter::fmt(result.finalPerplexity,
                                         3)});
    }
    middle.print();

    std::printf("\npaper (right plot): SC points dominate "
                "rank-tuning points toward the upper-left\n"
                "(more speedup at the same or better PPL); high "
                "ranks pay heavy compression cost.\n");
    return 0;
}
