/**
 * @file
 * Continuous-batching serving benchmark: a closed-loop load
 * generator submits a fixed request mix to the ServeEngine twice —
 * once serialized (maxSequences = 1: every request decoded alone)
 * and once continuously batched on a 2-stage pipeline — and
 * reports tokens/s for both plus per-request latency percentiles
 * (p50/p95/p99 via the engine's always-on Log2Histogram). A traced
 * wave is recorded to BENCH_serve_trace.json for Perfetto /
 * tracesum, and the results land in BENCH_serve.json.
 *
 * --smoke shrinks the run for ctest and turns on the validation
 * gates: every request must complete with its full token budget,
 * every batched output must be bitwise identical to the
 * single-request full-recompute oracle (referenceGreedyDecode),
 * the recorded trace must contain serve.step/serve.decode spans,
 * and — when the pool has at least two workers to batch across —
 * batched throughput must be strictly higher than unbatched.
 *
 * Usage: bench_serve [--requests 24] [--max-new 32] [--reps 3]
 *        [--smoke]
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/clock.hh"
#include "obs/trace.hh"
#include "runtime/runtime.hh"
#include "serve/engine.hh"
#include "util/cli.hh"

using namespace optimus;

namespace
{

const char *kTracePath = "BENCH_serve_trace.json";

GptConfig
benchModel(bool smoke)
{
    GptConfig model;
    if (smoke) {
        model.vocab = 24;
        model.hidden = 16;
        model.layers = 4;
        model.heads = 2;
        model.seqLen = 16;
    } else {
        model.vocab = 64;
        model.hidden = 64;
        model.layers = 8;
        model.heads = 4;
        model.seqLen = 64;
    }
    model.seed = 77;
    return model;
}

/** Deterministic request mix with prompt lengths 3..6. */
std::vector<std::vector<int32_t>>
benchPrompts(int count, int64_t vocab)
{
    std::vector<std::vector<int32_t>> prompts;
    for (int r = 0; r < count; ++r) {
        std::vector<int32_t> prompt;
        for (int t = 0; t < 3 + r % 4; ++t)
            prompt.push_back(static_cast<int32_t>(
                (7 * r + 3 * t + 1) % vocab));
        prompts.push_back(std::move(prompt));
    }
    return prompts;
}

serve::ServeConfig
makeConfig(const GptConfig &model, bool batched)
{
    serve::ServeConfig config;
    config.model = model;
    config.pipelineStages = 2;
    config.maxSequences = batched ? 8 : 1;
    config.maxBatchTokens = batched ? 64 : model.seqLen;
    return config;
}

struct RunResult
{
    double bestSeconds = 1e30;
    int64_t tokensPerWave = 0;
    int64_t p50Us = 0;
    int64_t p95Us = 0;
    int64_t p99Us = 0;
};

/**
 * Closed-loop load: submit the whole mix, drain, repeat. One
 * untimed warmup wave sizes the slot arenas and capacities; the
 * best of @p reps timed waves is the noise floor.
 */
RunResult
measure(serve::ServeEngine &engine,
        const std::vector<std::vector<int32_t>> &prompts,
        int64_t max_new, int reps)
{
    RunResult result;
    const auto wave = [&]() {
        const int64_t before = engine.tokensGenerated();
        for (const auto &prompt : prompts)
            engine.submit(prompt, max_new);
        engine.drain();
        return engine.tokensGenerated() - before;
    };
    wave(); // warmup: arenas, ring/vector capacities, pool spin-up
    for (int rep = 0; rep < reps; ++rep) {
        const int64_t t0 = obs::nowNs();
        result.tokensPerWave = wave();
        const double s = obs::secondsBetween(t0, obs::nowNs());
        if (s < result.bestSeconds)
            result.bestSeconds = s;
    }
    result.p50Us = engine.latencyUs().percentile(50);
    result.p95Us = engine.latencyUs().percentile(95);
    result.p99Us = engine.latencyUs().percentile(99);
    return result;
}

/** The smoke trace must contain serving spans of both kinds. */
bool
hasServeSpans(const std::vector<obs::TraceEvent> &events)
{
    bool step = false, decode = false;
    for (const auto &e : events) {
        if (e.phase != 'X' ||
            std::strcmp(e.category, "serve") != 0)
            continue;
        if (std::strcmp(e.name, "serve.step") == 0)
            step = true;
        else if (std::strcmp(e.name, "serve.decode") == 0)
            decode = true;
    }
    return step && decode;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const bool smoke = args.getBool("smoke", false);
    const int requests =
        static_cast<int>(args.getInt("requests", smoke ? 6 : 24));
    const int reps =
        static_cast<int>(args.getInt("reps", smoke ? 2 : 3));
    const GptConfig model = benchModel(smoke);
    const int64_t max_new = args.getInt("max-new", smoke ? 8 : 32);

    const auto prompts = benchPrompts(requests, model.vocab);

    std::printf("=== continuous-batching serving benchmark ===\n");
    std::printf("pool threads: %d  requests: %d  max-new: %lld  "
                "reps: %d%s\n\n",
                runtimeThreads(), requests,
                static_cast<long long>(max_new), reps,
                smoke ? "  [smoke]" : "");

    // Serialized baseline: one slot, so every request is decoded
    // alone (no cross-sequence batching to parallelize over).
    serve::ServeEngine unbatched(makeConfig(model, false));
    const RunResult serial =
        measure(unbatched, prompts, max_new, reps);

    // Continuous batching over the 2-stage pipeline.
    serve::ServeEngine batched(makeConfig(model, true));
    std::map<int64_t, std::vector<int32_t>> outputs;
    batched.setFinishCallback(
        [&outputs](const serve::FinishedRequest &done) {
            outputs[done.id] = std::vector<int32_t>(
                done.tokens.begin() + done.promptLen,
                done.tokens.end());
        });
    const RunResult cont = measure(batched, prompts, max_new, reps);

    // One traced wave for the artifact (outside the timed runs:
    // tracing reads the clock per span).
    obs::startTracing();
    for (const auto &prompt : prompts)
        batched.submit(prompt, max_new);
    batched.drain();
    obs::stopTracing();
    const bool trace_written = obs::writeTrace(kTracePath);
    const std::vector<obs::TraceEvent> events = obs::traceEvents();

    const double serial_tps =
        serial.tokensPerWave / serial.bestSeconds;
    const double cont_tps = cont.tokensPerWave / cont.bestSeconds;
    std::printf("unbatched: %8.3f ms/wave  %10.0f tok/s\n",
                1e3 * serial.bestSeconds, serial_tps);
    std::printf("batched:   %8.3f ms/wave  %10.0f tok/s  "
                "(%.2fx)\n",
                1e3 * cont.bestSeconds, cont_tps,
                cont_tps / serial_tps);
    std::printf("batched request latency: p50 %lld us  p95 %lld us"
                "  p99 %lld us\n\n",
                static_cast<long long>(cont.p50Us),
                static_cast<long long>(cont.p95Us),
                static_cast<long long>(cont.p99Us));

    bool ok = true;
    const int64_t expected_tokens =
        static_cast<int64_t>(requests) * max_new;
    if (serial.tokensPerWave != expected_tokens ||
        cont.tokensPerWave != expected_tokens) {
        ok = false;
        std::fprintf(stderr,
                     "FAILED: wave produced %lld/%lld tokens, "
                     "expected %lld\n",
                     static_cast<long long>(serial.tokensPerWave),
                     static_cast<long long>(cont.tokensPerWave),
                     static_cast<long long>(expected_tokens));
    }

    if (smoke) {
        // Bitwise gate: continuous batching must reproduce the
        // single-request full-recompute oracle for every request
        // of every wave. Ids ascend in submission order and the
        // map iterates in id order, so entry w * requests + r is
        // wave w's instance of prompt r.
        std::vector<const std::vector<int32_t> *> all_waves;
        for (const auto &entry : outputs)
            all_waves.push_back(&entry.second);
        const size_t waves = all_waves.size() / prompts.size();
        for (size_t r = 0; r < prompts.size(); ++r) {
            const std::vector<int32_t> expect =
                serve::referenceGreedyDecode(model, prompts[r],
                                             max_new);
            for (size_t w = 0; w < waves; ++w) {
                const auto &got =
                    *all_waves[w * prompts.size() + r];
                if (got != expect) {
                    ok = false;
                    std::fprintf(stderr,
                                 "FAILED: request %zu wave %zu "
                                 "diverges from the full-recompute "
                                 "oracle\n",
                                 r, w);
                }
            }
        }

        if (!trace_written || !hasServeSpans(events)) {
            ok = false;
            std::fprintf(stderr,
                         "FAILED: %s missing or lacks serve.step/"
                         "serve.decode spans\n",
                         kTracePath);
        }

        // Throughput gate: batching across sequences is the only
        // parallelism single-token decode has, so with >= 2 pool
        // workers the batched wave must win.
        if (runtimeThreads() >= 2 && cont_tps <= serial_tps) {
            ok = false;
            std::fprintf(stderr,
                         "FAILED: batched %.0f tok/s is not above "
                         "unbatched %.0f tok/s with %d threads\n",
                         cont_tps, serial_tps, runtimeThreads());
        }
    }

    FILE *f = std::fopen("BENCH_serve.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_serve.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"serve\",\n");
    std::fprintf(f, "  \"threads\": %d,\n", runtimeThreads());
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"requests\": %d,\n", requests);
    std::fprintf(f, "  \"max_new_tokens\": %lld,\n",
                 static_cast<long long>(max_new));
    std::fprintf(f, "  \"pipeline_stages\": 2,\n");
    std::fprintf(f, "  \"tokens_per_wave\": %lld,\n",
                 static_cast<long long>(cont.tokensPerWave));
    std::fprintf(f,
                 "  \"unbatched\": {\"seconds\": %.6f, "
                 "\"tokens_per_s\": %.1f},\n",
                 serial.bestSeconds, serial_tps);
    std::fprintf(f,
                 "  \"batched\": {\"seconds\": %.6f, "
                 "\"tokens_per_s\": %.1f},\n",
                 cont.bestSeconds, cont_tps);
    std::fprintf(f, "  \"speedup\": %.4f,\n",
                 cont_tps / serial_tps);
    std::fprintf(f,
                 "  \"latency_us\": {\"p50\": %lld, \"p95\": %lld, "
                 "\"p99\": %lld},\n",
                 static_cast<long long>(cont.p50Us),
                 static_cast<long long>(cont.p95Us),
                 static_cast<long long>(cont.p99Us));
    std::fprintf(f, "  \"trace_path\": \"%s\",\n", kTracePath);
    std::fprintf(f, "  \"valid\": %s\n}\n", ok ? "true" : "false");
    std::fclose(f);

    std::printf("results written to BENCH_serve.json (trace: %s)\n",
                kTracePath);
    return ok ? 0 : 1;
}
