/**
 * @file
 * Table 2 reproduction: pretraining time and validation perplexity
 * for Baseline / CB / CB+FE / CB+FE+SC on GPT-8.3B and GPT-2.5B.
 *
 * Time comes from the paper-scale cluster simulator (230K
 * iterations, TP8/DP4/PP4 on 128 A100s); perplexity from real
 * miniature-scale training under the same technique presets.
 *
 * Paper anchors:
 *   8.3B: 37.27 d -> +7.01% (CB) -> +13.49% (CB+FE) -> +44.91%
 *         (CB+FE+SC); PPL 8.10 / 8.10 / 8.10 / 8.20
 *   2.5B: 14.72 d -> +8.00% -> +15.09% -> +17.29%;
 *         PPL 9.31 / 9.31 / 9.31 / 9.55
 */

#include "bench_util.hh"

using namespace optimus;
using namespace optimus::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    banner("Table 2 -- pretraining speedup and validation PPL",
           "Table 2 (230K iterations, 128 GPUs)");

    const auto ladder = presets::ablationLadder();

    // ---- Quality: one miniature training run per preset, shared
    // by both model rows (the techniques, not the scale, decide
    // whether PPL survives).
    const QualityRunConfig qc = standardQualityConfig(args);
    std::printf("miniature-scale PPL after %d iterations "
                "(floor %.2f):\n",
                qc.iterations, perplexityFloor(qc));
    std::vector<double> ppl;
    TablePrinter ppl_table({"Config", "Val PPL", "vs baseline"});
    for (const auto &preset : ladder) {
        const auto result = runQualityExperiment(qc, preset);
        ppl.push_back(result.finalPerplexity);
        ppl_table.addRow(
            {preset.name, TablePrinter::fmt(result.finalPerplexity, 3),
             TablePrinter::fmtPercent(
                 result.finalPerplexity / ppl[0] - 1.0)});
    }
    ppl_table.print();

    // ---- Time: simulated at paper scale for both models.
    struct PaperRow
    {
        GptModelSpec model;
        const char *days[4];
        const char *speedups[4];
    };
    const PaperRow paper_rows[] = {
        {GptModelSpec::gpt8_3b(),
         {"37.27", "34.83", "32.84", "25.72"},
         {"-", "+7.01%", "+13.49%", "+44.91%"}},
        {GptModelSpec::gpt2_5b(),
         {"14.72", "13.63", "12.79", "12.55"},
         {"-", "+8.00%", "+15.09%", "+17.29%"}},
    };

    for (const auto &paper : paper_rows) {
        const auto rows = runPerformanceAblation(
            HardwareConfig::a100Cluster(), paper.model,
            ParallelConfig{}, TrainingPlan{}, ladder);
        std::printf("\n%s:\n", paper.model.name.c_str());
        TablePrinter table({"Config", "Days (paper)",
                            "Speedup (paper)"});
        for (size_t i = 0; i < rows.size(); ++i) {
            char days[64], speedup[64];
            std::snprintf(days, sizeof(days), "%.2f (%s)",
                          rows[i].trainingDays, paper.days[i]);
            std::snprintf(speedup, sizeof(speedup), "%+.2f%% (%s)",
                          rows[i].speedup * 100.0,
                          paper.speedups[i]);
            table.addRow({rows[i].config, days, speedup});
        }
        table.print();
    }
    return 0;
}
