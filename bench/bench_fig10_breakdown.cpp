/**
 * @file
 * Fig 10 reproduction: execution-time breakdown of GPT-8.3B and
 * GPT-2.5B in ablation of the techniques (CPI-stack methodology).
 *
 * Paper anchors (8.3B): CB cuts the exposed backward inter-stage
 * time by 78.57% (the remainder is forward traffic); FE cuts the
 * embedding-sync time by ~40% (analytic 42.9% at D=4); with all
 * techniques the total communication overhead drops by 63.29%.
 */

#include "bench_util.hh"

using namespace optimus;
using namespace optimus::bench;

int
main()
{
    banner("Fig 10 -- breakdown in ablation of the techniques",
           "Fig 10 (128 GPUs, CPI-stack ablation)");

    for (auto model :
         {GptModelSpec::gpt8_3b(), GptModelSpec::gpt2_5b()}) {
        const auto rows = runPerformanceAblation(
            HardwareConfig::a100Cluster(), model, ParallelConfig{},
            TrainingPlan{}, presets::ablationLadder());

        std::printf("%s (seconds per iteration):\n",
                    model.name.c_str());
        TablePrinter table({"Config", "FWD", "BWD", "Inter-stage",
                            "DP", "EMB", "Total"});
        for (const auto &row : rows) {
            table.addRow(
                {row.config,
                 TablePrinter::fmt(row.breakdown.fwdCompute),
                 TablePrinter::fmt(row.breakdown.bwdCompute),
                 TablePrinter::fmt(row.breakdown.interStage),
                 TablePrinter::fmt(row.breakdown.dpComm),
                 TablePrinter::fmt(row.breakdown.embComm),
                 TablePrinter::fmt(row.breakdown.total)});
        }
        table.print();

        const auto &base = rows[0].breakdown;
        const auto &cb = rows[1].breakdown;
        const auto &cbfe = rows[2].breakdown;
        const auto &full = rows[3].breakdown;
        const double inter_cut = 1.0 - cb.interStage /
                                           base.interStage;
        const double emb_cut = 1.0 - cbfe.embComm / cb.embComm;
        const double comm_base =
            base.interStage + base.dpComm + base.embComm;
        const double comm_full =
            full.interStage + full.dpComm + full.embComm;
        std::printf(
            "  CB inter-stage reduction: %.2f%% (paper 78.57%%)\n"
            "  FE embedding-sync reduction: %.2f%% (paper ~40%%, "
            "analytic 42.9%% @ D=4 time ratio)\n"
            "  total comm overhead reduction (CB+FE+SC): %.2f%% "
            "(paper 63.29%% on 8.3B)\n\n",
            inter_cut * 100.0, emb_cut * 100.0,
            (1.0 - comm_full / comm_base) * 100.0);
    }
    return 0;
}
