/**
 * @file
 * GEMM kernel microbenchmark tracking the perf trajectory of the
 * execution runtime. Measures GFLOP/s of the naive reference kernel
 * and of the blocked kernel at every supported SIMD dispatch tier
 * (scalar / avx2 / avx512 — forced via simd::setTier, the same
 * switch OPTIMUS_SIMD drives), single-threaded and on the full
 * pool, at square sizes 64..1024. Writes BENCH_gemm.json so the
 * numbers are diffable across PRs; the top-level fields keep their
 * historical meaning (the auto-dispatched kernel) and a per-tier
 * breakdown rides alongside.
 *
 * Usage: bench_gemm [--max-size 1024] [--reps 3]
 * Thread count comes from OPTIMUS_THREADS (default: hardware).
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/runtime.hh"
#include "tensor/matmul.hh"
#include "tensor/simd.hh"
#include "tensor/tensor.hh"
#include "util/cli.hh"
#include "util/random.hh"
#include "util/table_printer.hh"

using namespace optimus;

namespace
{

using Kernel = void (*)(float *, const float *, const float *,
                        int64_t, int64_t, int64_t, bool);

double
seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-reps GFLOP/s for one kernel at size n. */
double
measure(Kernel kernel, const Tensor &a, const Tensor &b, Tensor &c,
        int reps)
{
    const int64_t n = a.rows();
    const double flops = 2.0 * n * n * n;
    // Warm-up run primes caches and the thread pool.
    kernel(c.data(), a.data(), b.data(), n, n, n, false);
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const double t0 = seconds();
        kernel(c.data(), a.data(), b.data(), n, n, n, false);
        const double dt = seconds() - t0;
        const double gflops = flops / dt * 1e-9;
        if (gflops > best)
            best = gflops;
    }
    return best;
}

void
blockedSerial(float *c, const float *a, const float *b, int64_t m,
              int64_t k, int64_t n, bool accumulate)
{
    SerialRegion serial;
    gemm(c, a, b, m, k, n, accumulate);
}

struct TierNumbers
{
    simd::Tier tier;
    double serial = 0.0, threaded = 0.0;
};

struct Row
{
    int64_t size;
    double naive;
    std::vector<TierNumbers> tiers;

    const TierNumbers &
    forTier(simd::Tier t) const
    {
        for (const TierNumbers &tn : tiers)
            if (tn.tier == t)
                return tn;
        return tiers.front();
    }
};

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const int64_t max_size = args.getInt("max-size", 1024);
    const int reps = static_cast<int>(args.getInt("reps", 3));

    const simd::Tier auto_tier = simd::tier();
    std::vector<simd::Tier> tiers;
    for (simd::Tier t : {simd::Tier::Scalar, simd::Tier::Avx2,
                         simd::Tier::Avx512})
        if (simd::supported(t))
            tiers.push_back(t);

    std::printf("=== GEMM kernel microbenchmark ===\n");
    std::printf("pool threads: %d, dispatch tier: %s\n\n",
                runtimeThreads(), simd::tierName(auto_tier));

    std::vector<Row> rows;
    Rng rng(7);
    for (int64_t n = 64; n <= max_size; n *= 2) {
        Tensor a = Tensor::randn({n, n}, rng);
        Tensor b = Tensor::randn({n, n}, rng);
        Tensor c({n, n});
        Row row;
        row.size = n;
        row.naive = measure(gemmReference, a, b, c, reps);
        std::printf("%5lld: naive %7.2f\n",
                    static_cast<long long>(n), row.naive);
        for (simd::Tier t : tiers) {
            simd::setTier(t);
            TierNumbers tn;
            tn.tier = t;
            tn.serial = measure(blockedSerial, a, b, c, reps);
            tn.threaded = measure(gemm, a, b, c, reps);
            row.tiers.push_back(tn);
            std::printf("       %-6s 1t %7.2f (%.2fx)  %dt %7.2f "
                        "(%.2fx)\n",
                        simd::tierName(t), tn.serial,
                        tn.serial / row.naive, runtimeThreads(),
                        tn.threaded, tn.threaded / row.naive);
        }
        simd::setTier(auto_tier);
        rows.push_back(row);
    }

    FILE *f = std::fopen("BENCH_gemm.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_gemm.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"gemm\",\n");
    std::fprintf(f, "  \"threads\": %d,\n", runtimeThreads());
    std::fprintf(f, "  \"tier\": \"%s\",\n",
                 simd::tierName(auto_tier));
    std::fprintf(f, "  \"unit\": \"GFLOP/s\",\n  \"sizes\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        const TierNumbers &active = r.forTier(auto_tier);
        std::fprintf(f,
                     "    {\"n\": %lld, \"naive\": %.3f, "
                     "\"blocked_1thread\": %.3f, "
                     "\"blocked_pool\": %.3f, "
                     "\"speedup_1thread\": %.3f, "
                     "\"speedup_pool\": %.3f,\n     \"tiers\": {",
                     static_cast<long long>(r.size), r.naive,
                     active.serial, active.threaded,
                     active.serial / r.naive,
                     active.threaded / r.naive);
        for (size_t j = 0; j < r.tiers.size(); ++j) {
            const TierNumbers &tn = r.tiers[j];
            std::fprintf(f,
                         "\"%s\": {\"blocked_1thread\": %.3f, "
                         "\"blocked_pool\": %.3f}%s",
                         simd::tierName(tn.tier), tn.serial,
                         tn.threaded,
                         j + 1 < r.tiers.size() ? ", " : "");
        }
        std::fprintf(f, "}}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nresults written to BENCH_gemm.json\n");
    return 0;
}
