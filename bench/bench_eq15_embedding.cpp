/**
 * @file
 * Section 6 (Eq. 15/16) reproduction: the analytic cost of fused
 * embedding synchronization, validated three ways:
 *
 *  1. closed forms: C_emb = V(3D-2)/D vs C_fused = V(2D-1)/D, and
 *     the improvement 42.9% at D=4 approaching 50% as D grows;
 *  2. the real engine's per-iteration traffic bookkeeping matches
 *     the closed forms exactly;
 *  3. the fused path is *numerically identical* to the baseline
 *     path (max parameter delta after training both ways).
 */

#include <cmath>

#include "bench_util.hh"
#include "data/corpus.hh"
#include "parallel/trainer3d.hh"

using namespace optimus;
using namespace optimus::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    banner("Eq 15/16 -- fused embedding synchronization cost",
           "Section 6 (cost model + exactness)");

    // ---- 1. Closed forms across D.
    std::printf("analytic traffic per rank (V = 1):\n");
    TablePrinter analytic({"D", "Baseline V(3D-2)/D",
                           "Fused V(2D-1)/D", "Time improvement"});
    for (int d : {2, 4, 8, 16, 64}) {
        const double base = embSyncTrafficBaseline(1.0, d);
        const double fused = embSyncTrafficFused(1.0, d);
        analytic.addRow({std::to_string(d),
                         TablePrinter::fmt(base, 4),
                         TablePrinter::fmt(fused, 4),
                         TablePrinter::fmtPercent(base / fused - 1.0)});
    }
    analytic.print();
    std::printf("paper: 42.9%% at D=4, approaching 50%% as D "
                "grows\n\n");

    // ---- 2 & 3. The real engine.
    QualityRunConfig qc = standardQualityConfig(args);
    qc.iterations = std::min(qc.iterations, 30);
    qc.dataParallel = 4;

    Trainer3dConfig tc;
    tc.model = qc.model;
    tc.dataParallel = qc.dataParallel;
    tc.pipelineStages = qc.pipelineStages;
    tc.microBatches = qc.microBatches;
    tc.microBatchSize = qc.microBatchSize;
    tc.learningRate = qc.learningRate;

    SyntheticCorpus corpus(qc.corpus);
    LmDataset data(corpus.train(), qc.model.seqLen);

    double measured_base = 0.0, measured_fused = 0.0;
    double table_bytes = 0.0;
    std::vector<std::unique_ptr<Trainer3d>> trainers;
    for (bool fused : {false, true}) {
        tc.fusedEmbeddingSync = fused;
        auto trainer = std::make_unique<Trainer3d>(tc);
        Rng rng(qc.dataSeed);
        EmbSyncVolume volume;
        for (int it = 0; it < qc.iterations; ++it)
            volume = trainer->trainIteration(data, rng).embVolume;
        (fused ? measured_fused : measured_base) =
            volume.trafficBytes;
        table_bytes = static_cast<double>(volume.tableBytes);
        trainers.push_back(std::move(trainer));
    }

    const int d = tc.dataParallel;
    std::printf("engine bookkeeping (table V = %.0f bytes, D = %d):\n",
                table_bytes, d);
    std::printf("  baseline traffic %.0f bytes "
                "(closed form %.0f)\n",
                measured_base,
                table_bytes * (3.0 * d - 2.0) / d);
    std::printf("  fused traffic    %.0f bytes "
                "(closed form %.0f)\n",
                measured_fused,
                table_bytes * (2.0 * d - 1.0) / d);

    // Exactness: compare every same-named parameter.
    float worst = 0.0f;
    for (int p = 0; p < tc.pipelineStages; ++p) {
        const auto a = trainers[0]->stage(0, p).params();
        const auto b = trainers[1]->stage(0, p).params();
        for (size_t j = 0; j < a.size(); ++j) {
            for (int64_t i = 0; i < a[j]->size(); ++i) {
                worst = std::max(worst,
                                 std::fabs(a[j]->value[i] -
                                           b[j]->value[i]));
            }
        }
    }
    std::printf("  max parameter delta after %d iterations: %.2e "
                "(paper: mathematically identical)\n",
                qc.iterations, worst);
    return 0;
}
