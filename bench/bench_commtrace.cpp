/**
 * @file
 * Trace-vs-analytic consistency benchmark for the communication
 * transport layer: runs the real miniature trainer with tracing on
 * at each Fig 10 configuration point (the technique-preset ladder),
 * replays the recorded trace through the paper-scale cluster's link
 * classes (pipesim/trace_replay.hh), and compares the per-category
 * volumes and times against the analytic closed forms the
 * performance pillar uses. Writes BENCH_commtrace.json.
 *
 * The gates (all exact, not approximate):
 *   - inter-stage exact bytes equal the counting formula
 *     D * (P-1) * M * 4 * mbs * seqLen * hidden per iteration;
 *   - p2p traffic equals on-wire bytes (alpha-beta identity);
 *   - DP traffic equals ringAllReduceTraffic(wire bytes, D) --
 *     bitwise, because ring traffic is linear in V and D is a power
 *     of two here;
 *   - per-iteration embedding-sync traffic equals Eq 15 (baseline)
 *     or Eq 16 (fused) exactly;
 *   - replayed per-category seconds equal an independent
 *     canonical-order walk through the same alpha-beta functions.
 *
 * Usage: bench_commtrace [--iters 3] [--smoke]
 * --smoke shrinks the model and exits 1 on any gate violation, for
 * ctest / sanitizer jobs. Thread count comes from OPTIMUS_THREADS.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/mapping.hh"
#include "comm/transport.hh"
#include "core/performance_experiment.hh"
#include "core/presets.hh"
#include "data/corpus.hh"
#include "data/dataset.hh"
#include "parallel/trainer3d.hh"
#include "pipesim/trace_replay.hh"
#include "runtime/runtime.hh"
#include "simnet/cost_model.hh"
#include "util/cli.hh"

using namespace optimus;

namespace
{

GptConfig
benchModel(bool smoke)
{
    GptConfig model;
    model.vocab = 24;
    model.hidden = smoke ? 16 : 32;
    model.layers = 4;
    model.heads = smoke ? 2 : 4;
    model.seqLen = 8;
    model.seed = 77;
    return model;
}

Trainer3dConfig
makeConfig(const GptConfig &model, const TechniquePreset &preset,
           bool smoke)
{
    Trainer3dConfig config;
    config.model = model;
    // D is kept a power of two so the ring-traffic linearity gate
    // holds bitwise (V/D divisions are exact in double).
    config.dataParallel = 2;
    config.pipelineStages = smoke ? 2 : 4;
    config.microBatches = 4;
    config.microBatchSize = 2;
    config.cb = preset.cb;
    config.dp = preset.dp;
    config.fusedEmbeddingSync = preset.fusedEmbeddingSync;
    config.traceCommunication = true;
    return config;
}

LmDataset
benchData(const GptConfig &model)
{
    CorpusConfig cc;
    cc.vocab = model.vocab;
    cc.totalTokens = 6000;
    cc.seed = 5;
    SyntheticCorpus corpus(cc);
    return {corpus.train(), model.seqLen};
}

struct GateReport
{
    int checked = 0;
    int failed = 0;

    void expect(bool ok, const char *what, const std::string &where)
    {
        ++checked;
        if (!ok) {
            ++failed;
            std::fprintf(stderr, "GATE VIOLATION [%s] %s\n",
                         where.c_str(), what);
        }
    }
};

void
printCategoryJson(FILE *f, const char *name,
                  const ReplayCategory &cat, const char *tail)
{
    std::fprintf(f,
                 "      \"%s\": {\"events\": %lld, \"exact_bytes\": "
                 "%lld, \"wire_bytes\": %lld, \"traffic_bytes\": "
                 "%.3f, \"seconds\": %.9e}%s\n",
                 name, static_cast<long long>(cat.events),
                 static_cast<long long>(cat.exactBytes),
                 static_cast<long long>(cat.wireBytes),
                 cat.trafficBytes, cat.seconds, tail);
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const bool smoke = args.getBool("smoke", false);
    const int iters =
        static_cast<int>(args.getInt("iters", smoke ? 2 : 3));

    const GptConfig model = benchModel(smoke);
    const LmDataset data = benchData(model);
    const std::vector<TechniquePreset> ladder =
        presets::ablationLadder();

    // Paper-scale link classes (Table 1 cluster): the bridge prices
    // the miniature trainer's real traffic with the same LinkSpecs
    // the analytic simulator uses.
    const HardwareConfig hw;
    const GptModelSpec paper_model;
    const ParallelConfig paper_parallel;
    const TrainingPlan paper_plan;
    const MappedWorkload workload(hw, paper_model, paper_parallel,
                                  paper_plan);
    const LinkSpec p2p = workload.p2pLink();
    const LinkSpec coll = workload.collectiveLink();
    const TraceReplayer replayer(p2p, coll);

    std::printf("=== comm trace replay benchmark ===\n");
    std::printf("pool threads: %d  iters: %d  presets: %zu%s\n\n",
                runtimeThreads(), iters, ladder.size(),
                smoke ? "  [smoke]" : "");

    FILE *f = std::fopen("BENCH_commtrace.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_commtrace.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"commtrace\",\n");
    std::fprintf(f, "  \"threads\": %d,\n", runtimeThreads());
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"iterations\": %d,\n", iters);
    std::fprintf(f, "  \"p2p_link\": {\"bandwidth\": %.6e, "
                    "\"latency\": %.6e},\n",
                 p2p.bandwidth, p2p.latency);
    std::fprintf(f, "  \"collective_link\": {\"bandwidth\": %.6e, "
                    "\"latency\": %.6e},\n",
                 coll.bandwidth, coll.latency);
    std::fprintf(f, "  \"points\": [\n");

    GateReport gates;
    for (size_t pi = 0; pi < ladder.size(); ++pi) {
        const TechniquePreset &preset = ladder[pi];
        const Trainer3dConfig tc = makeConfig(model, preset, smoke);
        Trainer3d trainer(tc);
        Rng rng(11);
        for (int it = 0; it < iters; ++it)
            trainer.trainIteration(data, rng);
        const CommTrace &trace = *trainer.trace();
        const ReplayResult replay = replayer.replay(trace);

        // Gate 1: inter-stage exact bytes by the counting formula.
        const int64_t boundary = 4LL * tc.microBatchSize *
                                 model.seqLen * model.hidden;
        const int64_t expect_is = static_cast<int64_t>(iters) *
                                  tc.dataParallel *
                                  (tc.pipelineStages - 1) *
                                  tc.microBatches * boundary;
        gates.expect(replay.interStage.exactBytes == expect_is,
                     "inter-stage exact bytes != D*(P-1)*M*payload",
                     preset.name);

        // Gate 2: p2p traffic is exactly the on-wire bytes.
        gates.expect(
            replay.interStage.trafficBytes ==
                static_cast<double>(replay.interStage.wireBytes),
            "p2p traffic != wire bytes", preset.name);

        // Gate 3: DP ring traffic linearity (every DP event spans
        // the D replicas).
        gates.expect(
            replay.dpReduce.trafficBytes ==
                ringAllReduceTraffic(
                    static_cast<double>(replay.dpReduce.wireBytes),
                    tc.dataParallel),
            "dp traffic != ringAllReduceTraffic(wire, D)",
            preset.name);

        // Gate 4: per-iteration embedding-sync traffic lands on the
        // paper's closed form (Eq 15 baseline / Eq 16 fused).
        const int64_t table_bytes =
            4LL * model.vocab * model.hidden;
        for (int it = 0; it < iters; ++it) {
            const ReplayResult one = replayer.replay(trace, it);
            const double expect_emb =
                preset.fusedEmbeddingSync
                    ? embSyncTrafficFused(
                          static_cast<double>(table_bytes),
                          tc.dataParallel)
                    : embSyncTrafficBaseline(
                          static_cast<double>(table_bytes),
                          tc.dataParallel);
            gates.expect(one.embSync.trafficBytes == expect_emb,
                         "emb sync traffic != Eq 15/16 closed form",
                         preset.name);
        }

        // Gate 5: replayed seconds equal an independent
        // canonical-order walk through the same alpha-beta
        // functions, accumulated per category exactly as the
        // replayer does.
        double walk_seconds[4] = {0.0, 0.0, 0.0, 0.0};
        for (const CommEvent &ev : trace.sorted()) {
            const int c = static_cast<int>(ev.phase);
            if (ev.verb == CommVerb::P2pSend)
                walk_seconds[c] += p2pTime(
                    static_cast<double>(ev.wireBytes), p2p);
            else
                walk_seconds[c] += ringAllReduceTime(
                    static_cast<double>(ev.wireBytes), ev.ranks,
                    coll);
        }
        gates.expect(
            replay.interStage.seconds == walk_seconds[0] &&
                replay.dpReduce.seconds == walk_seconds[1] &&
                replay.embSync.seconds == walk_seconds[2] &&
                replay.other.seconds == walk_seconds[3],
            "replayed seconds != independent recomputation",
            preset.name);

        std::printf(
            "%-14s events %5lld  IS %.2f KiB -> %.2f KiB  DP %.2f "
            "KiB  EMB traffic %.0f B  comm %.3f ms\n",
            preset.name.c_str(),
            static_cast<long long>(trace.size()),
            replay.interStage.exactBytes / 1024.0,
            replay.interStage.wireBytes / 1024.0,
            replay.dpReduce.wireBytes / 1024.0,
            replay.embSync.trafficBytes,
            1e3 * replay.totalSeconds());

        std::fprintf(f, "    {\"preset\": \"%s\",\n",
                     preset.name.c_str());
        std::fprintf(f, "      \"trace_events\": %lld,\n",
                     static_cast<long long>(trace.size()));
        printCategoryJson(f, "inter_stage", replay.interStage, ",");
        printCategoryJson(f, "dp_reduce", replay.dpReduce, ",");
        printCategoryJson(f, "emb_sync", replay.embSync, ",");
        std::fprintf(f,
                     "      \"analytic\": {\"inter_stage_exact\": "
                     "%lld, \"emb_traffic_per_iter\": %.3f},\n",
                     static_cast<long long>(expect_is),
                     preset.fusedEmbeddingSync
                         ? embSyncTrafficFused(
                               static_cast<double>(table_bytes),
                               tc.dataParallel)
                         : embSyncTrafficBaseline(
                               static_cast<double>(table_bytes),
                               tc.dataParallel));
        std::fprintf(f, "      \"total_seconds\": %.9e}%s\n",
                     replay.totalSeconds(),
                     pi + 1 < ladder.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"gates_checked\": %d,\n", gates.checked);
    std::fprintf(f, "  \"gates_failed\": %d\n}\n", gates.failed);
    std::fclose(f);

    std::printf("\n%d/%d consistency gates passed; results written "
                "to BENCH_commtrace.json\n",
                gates.checked - gates.failed, gates.checked);
    if (gates.failed != 0) {
        std::fprintf(stderr, "FAILED: %d consistency gates\n",
                     gates.failed);
        return 1;
    }
    return 0;
}
