/**
 * @file
 * Fig 11 reproduction: the empirical check of Eq. 14's independence
 * conditions. During an instrumented compressed-backpropagation
 * run, per-send statistics are collected on every channel: the mean
 * of the compression error, the mean of the activation difference
 * between consecutive micro-batches, and their cosine similarity.
 *
 * Paper anchor: all three series hover around zero, which is what
 * makes lazy error propagation's gradient approximation unbiased.
 * Writes fig11_channel_stats.csv with the raw series.
 */

#include <cmath>

#include "bench_util.hh"
#include "util/csv_writer.hh"
#include "util/stats.hh"

using namespace optimus;
using namespace optimus::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    banner("Fig 11 -- error / activation-difference independence",
           "Fig 11 (Eq. 14 conditions measured during training)");

    QualityRunConfig config = deepPipelineQualityConfig(args);
    config.instrument = true;

    const auto result = runQualityExperiment(config, presets::cb());

    RunningStat err_mean, act_mean, cosine;
    CsvWriter csv("fig11_channel_stats.csv",
                  {"send", "error_mean", "activation_diff_mean",
                   "cosine"});
    int64_t index = 0;
    for (const auto &rec : result.channelStats) {
        err_mean.add(rec.errorMean);
        act_mean.add(rec.activationDiffMean);
        cosine.add(rec.cosine);
        csv.writeRow({static_cast<double>(index++), rec.errorMean,
                      rec.activationDiffMean, rec.cosine});
    }

    TablePrinter table({"Series", "Mean", "Std", "Max |value|"});
    auto row = [&table](const char *name, const RunningStat &s) {
        table.addRow({name, TablePrinter::fmt(s.mean(), 5),
                      TablePrinter::fmt(s.stddev(), 5),
                      TablePrinter::fmt(
                          std::max(std::fabs(s.min()),
                                   std::fabs(s.max())),
                          5)});
    };
    row("avg(eps^(i))            [paper: ~0]", err_mean);
    row("avg(Y^(i) - Y^(i+n))    [paper: ~0]", act_mean);
    row("cos(eps, Y diff)        [paper: ~0]", cosine);
    table.print();

    std::printf("\n%zu compressed sends instrumented; raw series in "
                "fig11_channel_stats.csv\n",
                result.channelStats.size());
    std::printf("Eq. 14 holds when all three series stay near zero; "
                "final PPL %.3f vs floor %.2f\n",
                result.finalPerplexity, perplexityFloor(config));
    return 0;
}
