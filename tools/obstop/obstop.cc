/**
 * @file
 * obstop: live terminal dashboard over the Optimus metrics exporter.
 * Reads the Prometheus text exposition either from a running
 * process's HTTP listener (--port, see OPTIMUS_METRICS_PORT) or
 * from a metrics.prom dump (--file, see OPTIMUS_METRICS_DUMP), and
 * renders every time-series ring as a stats row plus a sparkline
 * built from the raw-series `# ring` exposition comments.
 *
 * Usage: obstop --port 9184 [--interval 1.0]
 *        obstop --file metrics.prom --once
 *
 * --once renders a single snapshot and exits (the CI artifact
 * mode); otherwise the dashboard refreshes until interrupted.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <string>
#include <vector>

#include "obs/clock.hh"
#include "util/cli.hh"

namespace
{

struct RingView
{
    std::map<std::string, double> stats; // last/min/max/mean/p99/...
    std::vector<double> series;          // oldest -> newest
};

struct Snapshot
{
    bool valid = false;
    std::map<std::string, RingView> rings;
    std::map<std::string, long long> scalars; // counters and gauges
    std::vector<std::string> alerts;          // rendered alert lines
};

/** One-shot HTTP GET of /metrics from the local exporter. */
std::string
scrape(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    const char request[] =
        "GET /metrics HTTP/1.1\r\nHost: localhost\r\n"
        "Connection: close\r\n\r\n";
    if (::send(fd, request, sizeof(request) - 1, 0) < 0) {
        ::close(fd);
        return "";
    }
    std::string response;
    char buffer[4096];
    for (;;) {
        const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
        if (got <= 0)
            break;
        response.append(buffer, static_cast<size_t>(got));
    }
    ::close(fd);
    const size_t body = response.find("\r\n\r\n");
    return body == std::string::npos ? "" : response.substr(body + 4);
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return "";
    std::string text;
    char buffer[4096];
    size_t got;
    while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
        text.append(buffer, got);
    std::fclose(f);
    return text;
}

/** Split the exposition text into lines (no trailing '\n'). */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    size_t begin = 0;
    while (begin < text.size()) {
        size_t end = text.find('\n', begin);
        if (end == std::string::npos)
            end = text.size();
        lines.push_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
    return lines;
}

/**
 * Parse the exporter's Prometheus text (see
 * src/obs/promexport.cc): stat-labeled optimus_ring gauges, raw
 * series in `# ring` comments, plain scalars, `# alert` comments.
 */
Snapshot
parse(const std::string &text)
{
    Snapshot snap;
    for (const std::string &line : splitLines(text)) {
        if (line.rfind("# ring ", 0) == 0) {
            // "# ring NAME FIRSTINDEX v0 v1 ..."
            char name[128] = {0};
            int consumed = 0;
            long long first = 0;
            if (std::sscanf(line.c_str(), "# ring %127s %lld%n",
                            name, &first, &consumed) < 2)
                continue;
            RingView &ring = snap.rings[name];
            ring.series.clear();
            const char *cursor = line.c_str() + consumed;
            char *end = nullptr;
            for (;;) {
                const double v = std::strtod(cursor, &end);
                if (end == cursor)
                    break;
                ring.series.push_back(v);
                cursor = end;
            }
            snap.valid = true;
            continue;
        }
        if (line.rfind("# alert ", 0) == 0) {
            snap.alerts.push_back(line.substr(2));
            continue;
        }
        if (line.empty() || line[0] == '#')
            continue;
        if (line.rfind("optimus_ring{", 0) == 0) {
            char name[128] = {0};
            char stat[32] = {0};
            double value = 0.0;
            if (std::sscanf(line.c_str(),
                            "optimus_ring{ring=\"%127[^\"]\","
                            "stat=\"%31[^\"]\"} %lf",
                            name, stat, &value) == 3) {
                snap.rings[name].stats[stat] = value;
                snap.valid = true;
            }
            continue;
        }
        char metric[160] = {0};
        long long value = 0;
        if (std::sscanf(line.c_str(), "%159s %lld", metric,
                        &value) == 2 &&
            std::strncmp(metric, "optimus_", 8) == 0) {
            snap.scalars[metric] = value;
            snap.valid = true;
        }
    }
    return snap;
}

/** Unicode block sparkline of the newest @p width samples. */
std::string
sparkline(const std::vector<double> &series, size_t width)
{
    static const char *kBlocks[] = {"\xe2\x96\x81", "\xe2\x96\x82",
                                    "\xe2\x96\x83", "\xe2\x96\x84",
                                    "\xe2\x96\x85", "\xe2\x96\x86",
                                    "\xe2\x96\x87", "\xe2\x96\x88"};
    if (series.empty())
        return "";
    const size_t n = series.size() > width ? width : series.size();
    const size_t offset = series.size() - n;
    double lo = series[offset], hi = series[offset];
    for (size_t i = offset; i < series.size(); ++i) {
        lo = series[i] < lo ? series[i] : lo;
        hi = series[i] > hi ? series[i] : hi;
    }
    std::string out;
    for (size_t i = offset; i < series.size(); ++i) {
        const double unit =
            hi > lo ? (series[i] - lo) / (hi - lo) : 0.0;
        int level = static_cast<int>(unit * 7.0 + 0.5);
        level = level < 0 ? 0 : (level > 7 ? 7 : level);
        out += kBlocks[level];
    }
    return out;
}

void
render(const Snapshot &snap, bool clear)
{
    if (clear)
        std::fputs("\x1b[H\x1b[2J", stdout);
    std::printf("%-28s %12s %12s %12s %12s %7s  %s\n", "ring",
                "last", "mean", "p99", "max", "count", "trend");
    for (const auto &[name, ring] : snap.rings) {
        const auto stat = [&ring](const char *key) {
            const auto it = ring.stats.find(key);
            return it == ring.stats.end() ? 0.0 : it->second;
        };
        std::printf("%-28s %12.5g %12.5g %12.5g %12.5g %7.0f  %s\n",
                    name.c_str(), stat("last"), stat("mean"),
                    stat("p99"), stat("max"), stat("count"),
                    sparkline(ring.series, 32).c_str());
    }
    if (!snap.scalars.empty())
        std::printf("\n");
    for (const auto &[name, value] : snap.scalars) {
        if (name.rfind("optimus_ring", 0) == 0)
            continue;
        std::printf("%-44s %lld\n", name.c_str(), value);
    }
    if (!snap.alerts.empty())
        std::printf("\nalerts:\n");
    for (const std::string &alert : snap.alerts)
        std::printf("  %s\n", alert.c_str());
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace optimus;

    const CliArgs args(argc, argv);
    const std::string file = args.getString("file");
    const long port = args.getInt("port", -1);
    if (args.has("help") || (file.empty() && port < 0)) {
        std::fprintf(
            stderr,
            "usage: %s --port PORT [--interval SECONDS] [--once]\n"
            "       %s --file metrics.prom [--once]\n"
            "Renders the Optimus telemetry rings (exporter scrape "
            "or metrics.prom dump) as a terminal dashboard.\n",
            args.program().c_str(), args.program().c_str());
        return args.has("help") ? 0 : 2;
    }
    const bool once = args.getBool("once");
    const double interval = args.getDouble("interval", 1.0);

    for (;;) {
        const std::string text =
            file.empty() ? scrape(static_cast<int>(port))
                         : readFile(file);
        const Snapshot snap = parse(text);
        if (!snap.valid) {
            std::fprintf(stderr,
                         "obstop: no optimus metrics from %s\n",
                         file.empty() ? "exporter" : file.c_str());
            return 1;
        }
        render(snap, !once);
        if (once)
            return 0;
        // Sleep via the obs clock: the dashboard has no determinism
        // contract, but one timing idiom keeps OBS01 meaningful.
        const int64_t until = obs::nowNs() +
                              static_cast<int64_t>(interval * 1e9);
        timespec ts{0, 50 * 1000 * 1000};
        while (obs::nowNs() < until)
            nanosleep(&ts, nullptr);
    }
}
