/**
 * @file
 * tracesum: summarize an Optimus span trace (the Chrome trace-event
 * JSON written via Trainer3dConfig::tracePath / OPTIMUS_TRACE) as a
 * per-category wall-time table. The phase rows reconcile with the
 * trainer's StepPhaseTimes because both are derived from the same
 * obs::nowNs() readings.
 *
 * Usage: tracesum TRACE.json
 *        tracesum --trace TRACE.json
 */

#include <cstdio>
#include <string>

#include "obs/tracesum.hh"
#include "util/cli.hh"

int
main(int argc, char **argv)
{
    using namespace optimus;

    const CliArgs args(argc, argv);
    std::string path = args.getString("trace");
    if (path.empty() && !args.positional().empty())
        path = args.positional().front();
    if (path.empty() || args.has("help")) {
        std::fprintf(stderr,
                     "usage: %s [--trace] TRACE.json\n"
                     "Summarizes a span trace written via "
                     "OPTIMUS_TRACE or Trainer3dConfig::tracePath.\n",
                     args.program().c_str());
        return path.empty() && !args.has("help") ? 2 : 0;
    }

    const obs::TraceSummary summary = obs::summarizeTraceFile(path);
    if (!summary.valid) {
        std::fprintf(stderr,
                     "tracesum: no spans found in %s (missing file "
                     "or not a span trace)\n",
                     path.c_str());
        return 1;
    }
    std::fputs(obs::renderTraceSummary(summary).c_str(), stdout);
    return 0;
}
