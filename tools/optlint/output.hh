/**
 * @file
 * optlint report writers: the human/stderr and JSON formats carried
 * over from the single-TU analyzer, plus SARIF 2.1.0 for GitHub
 * code scanning upload.
 */

#ifndef OPTLINT_OUTPUT_HH
#define OPTLINT_OUTPUT_HH

#include <string>
#include <vector>

#include "rules.hh"

namespace optlint
{

/** `file:line: [RULE] message` lines + a count, on stderr. */
void printHuman(const std::vector<Violation> &violations);

/** The stable `{"violations": [...], "count": N}` JSON on stdout. */
void printJson(const std::vector<Violation> &violations);

/**
 * Write a SARIF 2.1.0 log to @p path: one run, tool.driver.rules
 * from the kRules catalogue, one result per violation. Returns
 * false when the file cannot be written.
 */
bool writeSarif(const std::vector<Violation> &violations,
                const std::string &path);

} // namespace optlint

#endif // OPTLINT_OUTPUT_HH
