/**
 * @file
 * optlint semantic IR: a lightweight whole-repo model built in two
 * passes (see DESIGN.md section 7).
 *
 * Pass 1 (`buildFileIr`, parallelized by the driver) walks each
 * lexed TU once and extracts:
 *   - function definitions (free functions and class methods) with
 *     parameter lists, block-local declarations, and body token
 *     ranges;
 *   - per-function *direct* effect summaries: writes to non-local
 *     state, writes through by-reference/pointer parameters, heap
 *     allocation, clock reads, byte-counter mutation, and whether
 *     the body synchronizes (locks/atomics);
 *   - call sites with single-identifier argument names preserved so
 *     parameter-write effects can be mapped through call chains;
 *   - parallel-region lambda sites (`parallelFor`,
 *     `parallelReduceSum`, `TaskGroup`/pool `submit`) with capture
 *     mode and chunk-local declarations.
 *
 * Pass 2 (`linkProgram`) resolves call edges across every TU by
 * unqualified name (overloads and same-named methods merge — the
 * summaries are conservative unions) and propagates effects over
 * the call graph to a fixpoint, so a shared-state write three calls
 * deep is visible at the call site inside a parallel body.
 *
 * Known soundness limits, by design (each is documented in
 * DESIGN.md section 7): instance-member writes (`foo_ += x`,
 * `obj.field += x`) are treated as the disjoint-per-object pattern
 * and do not propagate; writes guarded by locks/atomics in the same
 * body are treated as synchronized; calls through function pointers
 * and constructors invoked via declarations are not edges.
 */

#ifndef OPTLINT_IR_HH
#define OPTLINT_IR_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hh"

namespace optlint
{

/** Transitive-closure-able facts about one function. */
struct Effects
{
    bool writesGlobal = false;   ///< unsynchronized non-local write
    bool allocates = false;      ///< heap allocation on some path
    bool takesClock = false;     ///< reads a raw or sanctioned clock
    bool touchesBytes = false;   ///< mutates a *bytes* counter
    /** Indices of by-ref / pointer parameters the function writes
     * (directly or by forwarding them to a writing callee). */
    std::set<int> writesParams;
    /** Human-readable provenance for reports: where the global
     * write / allocation actually happens, possibly via a chain. */
    std::string globalEvidence;
    std::string allocEvidence;
};

/** One call site inside a function or parallel-region body. */
struct CallSite
{
    std::string callee;   ///< unqualified name
    bool isMember = false; ///< invoked via `.` or `->`
    /** Per-argument identifier names: "name" when the argument is a
     * bare identifier or `&identifier`, "" otherwise. */
    std::vector<std::string> argIdents;
    int line = 0;
    size_t tokIndex = 0;
};

/** A function definition discovered in pass 1. */
struct FunctionDef
{
    std::string name;     ///< unqualified (last path component)
    std::string qualName; ///< as written, e.g. `Foo::bar`
    int fileIndex = -1;   ///< into Program::files
    int line = 0;         ///< line of the definition header
    size_t bodyBegin = 0; ///< token index of the opening `{`
    size_t bodyEnd = 0;   ///< token index of the matching `}`
    std::vector<std::string> paramNames;
    std::vector<bool> paramByRef; ///< `&` or `*` in the declarator
    std::set<std::string> locals; ///< params + block-locals
    bool synchronized = false;    ///< body locks or uses atomics
    bool isHot = false;           ///< in the ALLOC01 hot-path set
    /** Declared setup-/instrumentation-only (`optlint:coldfn`):
     * allocation effects are not folded into hot callers. */
    bool isColdSetup = false;
    /** Defined inside a class/struct body. Unknown identifiers in
     * such a method are (almost always) data members, so writes to
     * them follow the disjoint-per-object rule instead of being
     * treated as shared-state writes. */
    bool inClass = false;
    Effects direct;
    Effects total; ///< fixpoint over the call graph
    std::vector<CallSite> calls;
};

/** A parallel-region lambda site discovered in pass 1. */
struct LambdaSite
{
    enum class Kind
    {
        ParallelFor,
        ParallelReduce,
        Submit,
    };
    Kind kind = Kind::ParallelFor;
    int fileIndex = -1;
    int line = 0;          ///< line of the primitive call
    size_t capBegin = 0;   ///< token index of `[`
    size_t bodyBegin = 0;  ///< token index of `{`
    size_t bodyEnd = 0;    ///< token index of matching `}`
    bool byRefDefault = false;         ///< capture list has bare `&`
    std::set<std::string> refCaptures; ///< explicit `&name` captures
    bool capturesByRef() const
    {
        return byRefDefault || !refCaptures.empty();
    }
    std::set<std::string> locals; ///< lambda params + block-locals
};

/** Pass-1 output for one TU. */
struct FileIr
{
    std::vector<FunctionDef> functions;
    std::vector<LambdaSite> parallelSites;
};

/** The linked whole-repo model. */
struct Program
{
    std::vector<const LexedFile *> files;
    std::vector<FunctionDef> functions;
    std::vector<LambdaSite> parallelSites;
    /** unqualified name -> indices into `functions` */
    std::multimap<std::string, size_t> byName;

    const LexedFile &fileOf(const FunctionDef &f) const
    {
        return *files[static_cast<size_t>(f.fileIndex)];
    }
    const LexedFile &fileOf(const LambdaSite &s) const
    {
        return *files[static_cast<size_t>(s.fileIndex)];
    }
};

/** Pass 1: extract the per-TU IR (thread-safe; no shared state). */
FileIr buildFileIr(const LexedFile &file);

/**
 * Pass 2: link the per-TU IRs into one Program, resolve intra-repo
 * call edges by name, mark the ALLOC01 hot-path set (default hot
 * files plus `optlint:hot` annotations), and propagate effect
 * summaries over the call graph to fixpoint.
 */
Program linkProgram(const std::vector<const LexedFile *> &files,
                    std::vector<FileIr> &&irs);

/**
 * Scan tokens [begin, end) for call sites (used for both function
 * bodies and parallel-region lambda bodies).
 */
std::vector<CallSite> scanCalls(const std::vector<Token> &t,
                                size_t begin, size_t end);

/** Debug dump of the linked IR (the `--dump-ir` mode). */
void dumpProgram(const Program &program);

} // namespace optlint

#endif // OPTLINT_IR_HH
