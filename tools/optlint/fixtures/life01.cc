// Seeded LIFE01 violations: by-reference lambda captures escaping
// the frame that owns them — a TaskGroup submit with no wait()
// before return, and a by-ref lambda parked in a member callback
// slot. Scan-only (see det_hazards.cc).

#include <cstdint>
#include <functional>

namespace optimus
{
struct TaskGroup
{
    void wait();
};
struct ThreadPool
{
    void submit(TaskGroup &, std::function<void()>);
};
} // namespace optimus

void consume(int64_t);

void
fireAndForget(optimus::ThreadPool &pool, optimus::TaskGroup &group)
{
    int64_t frames = 0;
    pool.submit(group, [&] { ++frames; }); // optlint:expect(LIFE01)
}

void
submitThenWait(optimus::ThreadPool &pool, optimus::TaskGroup &group)
{
    int64_t frames = 0;
    pool.submit(group, [&] { ++frames; });
    group.wait(); // joins before the frame dies: sanctioned
    consume(frames);
}

struct DeferredNotifier
{
    std::function<void()> onDone_;

    void arm()
    {
        int64_t armed = 1;
        onDone_ = [&] { consume(armed); }; // optlint:expect(LIFE01)
    }
};

void
localCallbackIsFine()
{
    int64_t token = 7;
    std::function<void()> runNow = [&] { consume(token); };
    runNow(); // invoked inside the owning frame: sanctioned
}
