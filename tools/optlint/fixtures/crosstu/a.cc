// Cross-TU THR02 case: the parallelFor body below calls
// remoteBump(), declared here but *defined* in b.cc, which in turn
// calls chainWrite() defined in c.cc — the shared-state write is
// two translation units and two call-graph hops away, so only the
// linked whole-program pass can see it. Scan-only.

#include <cstdint>

namespace optimus
{
void parallelFor(int64_t, int64_t, int64_t, void *);
} // namespace optimus

void remoteBump(int64_t);
void remoteLockedBump(int64_t);

void
tallyRemote(const float *x, int64_t n)
{
    optimus::parallelFor(0, n, 128, [&](int64_t lo, int64_t hi) {
        if (x[lo] > 0.0f)
            remoteBump(hi - lo); // optlint:expect(THR02)
    });
}

// The synchronized cross-TU path must stay silent.
void
tallyRemoteLocked(const float *x, int64_t n)
{
    optimus::parallelFor(0, n, 128, [&](int64_t lo, int64_t hi) {
        if (x[lo] > 0.0f)
            remoteLockedBump(hi - lo);
    });
}
