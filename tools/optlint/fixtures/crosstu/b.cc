// Middle hop of the cross-TU THR02 chain: remoteBump() itself
// writes nothing shared — it just forwards to chainWrite() in c.cc.
// Effect propagation has to carry the write back through this TU.
// Scan-only.

#include <cstdint>
#include <mutex>

void chainWrite(int64_t);

extern std::mutex g_chainMu;
extern int64_t g_lockedTotal;

void
remoteBump(int64_t n)
{
    chainWrite(n);
}

void
remoteLockedBump(int64_t n)
{
    std::lock_guard<std::mutex> lock(g_chainMu);
    g_lockedTotal += n; // synchronized: sanctioned shared write
}
