// Final hop of the cross-TU THR02 chain: the actual shared-state
// write that must propagate through b.cc to the parallel body in
// a.cc. Scan-only.

#include <cstdint>
#include <mutex>

std::mutex g_chainMu;
int64_t g_lockedTotal = 0;
int64_t g_chainTotal = 0;

void
chainWrite(int64_t n)
{
    g_chainTotal += n;
}
