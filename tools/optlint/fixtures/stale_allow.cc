// Seeded SUP01 violations: optlint:allow comments whose rule no
// longer fires on any line they cover. The --audit-suppressions
// mode must flag exactly the stale ones and leave live suppressions
// alone. Scan-only (see det_hazards.cc).

#include <cstdlib>

int
liveSuppression()
{
    // The allow below suppresses a real DET01, so it is NOT stale.
    return std::rand(); // optlint:allow(DET01) fixture exercises a live allow
}

int
staleInlineSuppression()
{
    int clean = 0; // optlint:allow(DET01) nothing fires here — optlint:expect(SUP01)
    return clean;
}

// optlint:allow(COM01) stale own-line form — optlint:expect(SUP01)
int g_plainCounter = 0;
