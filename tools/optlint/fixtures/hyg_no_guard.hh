// optlint:expect(HYG02) -- this header deliberately has no guard.

namespace fixture
{
int unguarded();
} // namespace fixture
