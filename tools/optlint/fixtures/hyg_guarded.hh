// A properly guarded header must produce no HYG02 finding.

#ifndef OPTLINT_FIXTURE_HYG_GUARDED_HH
#define OPTLINT_FIXTURE_HYG_GUARDED_HH

namespace fixture
{
int guarded();
} // namespace fixture

#endif // OPTLINT_FIXTURE_HYG_GUARDED_HH
