// Seeded determinism-rule violations. Never compiled — optlint
// fixtures are scan-only inputs for the --self-test mode; every
// violating line carries an expect annotation that the analyzer
// must reproduce exactly (no misses, no spurious findings).

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>
#include <unordered_set>

int
libcRandom()
{
    return rand(); // optlint:expect(DET01)
}

void
libcSeed()
{
    srand(42); // optlint:expect(DET01)
}

unsigned
hardwareEntropy()
{
    std::random_device rd; // optlint:expect(DET02)
    return rd();
}

long
wallClockSeed()
{
    long t = time(nullptr); // optlint:expect(DET03)
    auto now =
        std::chrono::system_clock::now(); // optlint:expect(DET03,OBS01)
    return t + now.time_since_epoch().count();
}

int
unorderedIteration()
{
    std::unordered_map<int, int> m; // optlint:expect(DET04)
    std::unordered_set<int> s;      // optlint:expect(DET04)
    int total = 0;
    for (auto &kv : m)
        total += kv.second;
    return total + static_cast<int>(s.size());
}

double
stdEngine()
{
    std::mt19937 gen(7); // optlint:expect(DET05)
    std::default_random_engine e; // optlint:expect(DET05)
    return static_cast<double>(gen() + e());
}

// Names that merely *contain* banned substrings, member accesses,
// and banned names inside string literals must not fire.
struct Sampler
{
    int rand;
};

int
noFalsePositives(const Sampler &s)
{
    int time_budget = 3; // identifier, not a call
    int grand_total = s.rand + 1; // member access, not ::rand
    const char *msg = "call rand() and srand() and time()"; // strings
    return time_budget + grand_total + static_cast<int>(msg[0]);
}
