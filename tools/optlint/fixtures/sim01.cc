// SIM01 fixture: raw x86 intrinsics outside the sanctioned kernel
// files (tensor/simd*, tensor/gemm_kernels*). Fixture files live
// outside those paths, so the exemption does not apply here.

float
rawVectorCode(const float *x)
{
    __m256 acc = _mm256_setzero_ps();   // optlint:expect(SIM01)
    acc = _mm256_loadu_ps(x);           // optlint:expect(SIM01)
    __m512d wide = _mm512_setzero_pd(); // optlint:expect(SIM01)
    __mmask16 lanes = 0xffff;           // optlint:expect(SIM01)
    _mm_prefetch(x, 0);                 // optlint:expect(SIM01)

    // Identifiers that merely resemble intrinsics are not flagged:
    // no digit or underscore after the _mm / __m prefix.
    int _mmap_hint = 0;
    int __matrix = 0;
    int mm256 = 0;

    // optlint:allow(SIM01) sanctioned one-off with justification.
    __m128 narrow;

    (void)acc;
    (void)wide;
    (void)lanes;
    (void)narrow;
    return static_cast<float>(_mmap_hint + __matrix + mm256);
}
