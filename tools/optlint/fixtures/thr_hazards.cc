// Seeded threading-rule violations: order-dependent accumulation
// into shared state from inside parallelFor bodies. Scan-only (see
// det_hazards.cc).

#include <cstdint>

namespace optimus
{
void parallelFor(int64_t, int64_t, int64_t, void *);
double parallelReduceSum(int64_t, int64_t, int64_t, void *);
} // namespace optimus

double
racySum(const float *x, int64_t n)
{
    double total = 0.0;
    int64_t hits = 0;
    optimus::parallelFor(0, n, 64, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            total += x[i]; // optlint:expect(THR01)
            if (x[i] > 0.0f)
                ++hits; // optlint:expect(THR01)
        }
    });
    return total + static_cast<double>(hits);
}

double
racyScale(float *x, int64_t n, double norm)
{
    optimus::parallelFor(0, n, 64, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            norm *= 0.5; // optlint:expect(THR01)
    });
    return norm;
}

// The sanctioned patterns must stay silent: chunk-local partials,
// disjoint indexed stores, and parallelReduceSum reductions.
double
cleanKernels(float *y, const float *x, int64_t n)
{
    optimus::parallelFor(0, n, 64, [&](int64_t lo, int64_t hi) {
        double row_acc = 0.0;
        for (int64_t i = lo; i < hi; ++i) {
            row_acc += x[i];        // lambda-local accumulator
            y[i] += x[i] * 2.0f;    // disjoint indexed store
        }
        y[lo] = static_cast<float>(row_acc);
    });
    return optimus::parallelReduceSum(
        0, n, 64, [&](int64_t lo, int64_t hi) {
            double s = 0.0;
            for (int64_t i = lo; i < hi; ++i)
                s += x[i];
            return s;
        });
}
