// Seeded hygiene-rule violations: banned libc functions and float
// accumulators in loops. Scan-only (see det_hazards.cc).

#include <cstdio>
#include <cstdlib>
#include <cstring>

void
bannedFunctions(char *dst, const char *src)
{
    strcpy(dst, src);            // optlint:expect(HYG01)
    strcat(dst, src);            // optlint:expect(HYG01)
    sprintf(dst, "%s", src);     // optlint:expect(HYG01)
    int v = atoi(src);           // optlint:expect(HYG01)
    double d = atof(src);        // optlint:expect(HYG01)
    (void)v;
    (void)d;
}

void
boundedAlternativesAreFine(char *dst, size_t cap, const char *src)
{
    snprintf(dst, cap, "%s", src);
    long v = strtol(src, nullptr, 10);
    (void)v;
}

float
floatAccumulator(const float *x, long n)
{
    float acc = 0.0f;
    for (long i = 0; i < n; ++i)
        acc += x[i]; // optlint:expect(HYG03)
    return acc;
}

float
floatAccumulatorWhile(const float *x, long n)
{
    float drift = 0.0f;
    long i = 0;
    while (i < n) {
        drift -= x[i]; // optlint:expect(HYG03)
        ++i;
    }
    return drift;
}

double
doubleAccumulatorIsFine(const float *x, long n)
{
    double acc = 0.0;
    float last = 0.0f;
    for (long i = 0; i < n; ++i) {
        acc += x[i];
        last = x[i]; // plain assignment, not accumulation
    }
    return acc + last;
}
