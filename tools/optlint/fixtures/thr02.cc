// Seeded THR02 violations: functions reachable from a parallelFor
// body that transitively write shared (non-chunk-local) state. The
// single-TU cases live here; the cross-TU chain is under crosstu/.
// Scan-only (see det_hazards.cc).

#include <cstdint>
#include <mutex>

namespace optimus
{
void parallelFor(int64_t, int64_t, int64_t, void *);
} // namespace optimus

int64_t g_hits = 0;
int64_t g_locked = 0;
std::mutex g_mu;

void
recordHit(int64_t n)
{
    g_hits += n; // a direct global write: the effect to propagate
}

void
lockedRecord(int64_t n)
{
    std::lock_guard<std::mutex> lock(g_mu);
    g_locked += n; // synchronized: sanctioned, must not propagate
}

void
accumulateInto(double &dst, double v)
{
    dst += v; // writes by-ref parameter 0
}

void
tally(const float *x, int64_t n)
{
    optimus::parallelFor(0, n, 256, [&](int64_t lo, int64_t hi) {
        if (x[lo] > 0.0f)
            recordHit(hi - lo); // optlint:expect(THR02)
    });
}

double
sharedThroughParam(const float *x, int64_t n)
{
    double total = 0.0;
    optimus::parallelFor(0, n, 256, [&](int64_t lo, int64_t hi) {
        (void)x;
        accumulateInto(total, 1.0); // optlint:expect(THR02)
        (void)hi;
        (void)lo;
    });
    return total;
}

// The sanctioned shapes must stay silent: a synchronized callee and
// a writing callee whose by-ref argument is chunk-local.
double
cleanCallees(const float *x, int64_t n)
{
    optimus::parallelFor(0, n, 256, [&](int64_t lo, int64_t hi) {
        double local = 0.0;
        accumulateInto(local, static_cast<double>(x[lo]));
        lockedRecord(hi - lo);
    });
    return 0.0;
}
