// COM01 fixture: hand-maintained byte counters outside the comm
// transport layer. Fixture files live outside src/comm/, so the path
// exemption does not apply here.

struct Volume
{
    long exactBytes = 0;
    long wireBytes = 0;
};

long
foldCounters(long n)
{
    Volume v;
    long totalBytes = 0;
    v.exactBytes += n;   // optlint:expect(COM01)
    v.wireBytes -= n;    // optlint:expect(COM01)
    totalBytes += 4 * n; // optlint:expect(COM01)
    ++totalBytes;        // optlint:expect(COM01)

    // Identifiers without "bytes" are not byte counters.
    long events = 0;
    events += 1;
    ++events;

    // Plain assignment is a view, not bookkeeping.
    long snapshotBytes = v.exactBytes;

    // optlint:allow(COM01) sanctioned event-derived view-merge.
    v.exactBytes += snapshotBytes;

    return totalBytes + events + v.exactBytes + v.wireBytes;
}
