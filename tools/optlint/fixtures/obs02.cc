/**
 * OBS02 fixture: ad-hoc telemetry emission in what poses as library
 * code (the fixture path contains none of the exempt substrings).
 * Annotated lines must be flagged; everything else must stay clean.
 */

#include <cstdio>
#include <iostream>

struct FakeSink
{
    // Identifiers that merely share the names: declarations and
    // member access are not emission calls.
    int printf = 0;
    int cerr = 0;
};

void
emitsDirectly(double loss, long step)
{
    printf("step %ld loss %f\n", step, loss); // optlint:expect(OBS02)
    std::fprintf(stderr, "loss=%f\n", loss);  // optlint:expect(OBS02)
    std::fputs("telemetry\n", stdout);        // optlint:expect(OBS02)
    puts("done");                             // optlint:expect(OBS02)
    putchar('\n');                            // optlint:expect(OBS02)
}

void
emitsThroughStreams(double ratio)
{
    std::cout << "ratio " << ratio << "\n"; // optlint:expect(OBS02)
    std::cerr << "ratio " << ratio << "\n"; // optlint:expect(OBS02)
    std::clog << "ratio " << ratio << "\n"; // optlint:expect(OBS02)
}

void
sanctionedEcho(double value)
{
    // The escape hatch for a deliberate human-facing line (the
    // step-summary echo pattern).
    std::fprintf(stderr, "alert value=%f\n", // optlint:allow(OBS02)
                 value);
}

int
noFalsePositives(FakeSink &sink)
{
    // Member access, bare identifiers not called, and snprintf into
    // a buffer are all clean.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%d", sink.printf);
    int (*printf_hook)(const char *) = nullptr;
    return sink.cerr + (printf_hook == nullptr ? 1 : 0) + buf[0];
}
