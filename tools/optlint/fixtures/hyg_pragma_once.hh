// #pragma once is an accepted alternative to a classic guard.

#pragma once

namespace fixture
{
int pragmaGuarded();
} // namespace fixture
