// Every violation in this file carries a suppression comment, so
// the self-test expects ZERO findings here. If the suppression
// machinery regresses, these lines surface as SPURIOUS.

#include <cstdlib>
#include <unordered_set>

int
justifiedLibcRandom()
{
    // Same-line suppression.
    return rand(); // optlint:allow(DET01) fixture: suppression demo
}

// optlint:allow(DET04) own-line suppression covers the next line.
std::unordered_set<int> gMembershipOnly;

void
justifiedBanned(char *dst, const char *src)
{
    strcpy(dst, src); // optlint:allow(HYG01) fixture: suppression demo
}

float
justifiedFloatAcc(const float *x, long n)
{
    float acc = 0.0f;
    for (long i = 0; i < n; ++i)
        acc += x[i]; // optlint:allow(HYG03) fixture: suppression demo
    return acc;
}
