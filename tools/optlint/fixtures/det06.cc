// Seeded DET06 violations: floating-point accumulation into a
// by-reference capture inside parallelReduceSum / TaskGroup submit
// bodies, where the reduction order depends on the schedule.
// parallelFor bodies are THR01's territory and stay out of scope
// here. Scan-only (see det_hazards.cc).

#include <cstdint>
#include <functional>

namespace optimus
{
double parallelReduceSum(int64_t, int64_t, int64_t, void *);
struct TaskGroup
{
    void wait();
};
struct ThreadPool
{
    void submit(TaskGroup &, std::function<void()>);
};
} // namespace optimus

double
capturedReduce(const float *x, int64_t n)
{
    double acc = 0.0;
    optimus::parallelReduceSum(0, n, 1024, [&](int64_t lo, int64_t hi) {
        double part = 0.0;
        for (int64_t i = lo; i < hi; ++i)
            part += x[i];
        acc += part; // optlint:expect(DET06)
        return part;
    });
    return acc;
}

double
capturedSubmit(optimus::ThreadPool &pool, optimus::TaskGroup &group,
               const float *x, int64_t n)
{
    double sum = 0.0;
    pool.submit(group, [&] {
        for (int64_t i = 0; i < n; ++i)
            sum += x[i]; // optlint:expect(DET06)
    });
    group.wait();
    return sum;
}

// The sanctioned shape: a chunk-local partial returned through the
// primitive's own combiner never trips the rule.
double
cleanReduce(const float *x, int64_t n)
{
    return optimus::parallelReduceSum(
        0, n, 1024, [&](int64_t lo, int64_t hi) {
            double s = 0.0;
            for (int64_t i = lo; i < hi; ++i)
                s += x[i];
            return s;
        });
}
