/**
 * OBS01 fixture: raw timing primitives in what poses as production
 * source (the fixture path contains none of the exempt substrings).
 * Annotated lines must be flagged; everything else must stay clean.
 */

#include <chrono> // includes are preprocessor lines: never flagged
#include <ctime>

struct Stopwatch
{
    // An identifier that merely shares the name: neither the
    // declaration nor access through ./-> is a std::chrono use.
    int chrono = 0;
};

double
rawChronoInterval()
{
    const auto t0 =
        std::chrono::steady_clock::now(); // optlint:expect(OBS01)
    const auto t1 =
        std::chrono::steady_clock::now(); // optlint:expect(OBS01)
    return std::chrono::duration<double>( // optlint:expect(OBS01)
               t1 - t0)
        .count();
}

long
rawPosixClocks()
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts); // optlint:expect(OBS01)
    timeval tv;
    gettimeofday(&tv, nullptr); // optlint:expect(OBS01)
    return ts.tv_nsec + tv.tv_usec;
}

long
sanctionedRawClock()
{
    timespec ts;
    // The escape hatch for code that genuinely needs the raw
    // primitive (e.g. interfacing with a foreign API).
    clock_gettime(CLOCK_MONOTONIC, &ts); // optlint:allow(OBS01)
    return ts.tv_nsec;
}

int
noFalsePositives(const Stopwatch &sw)
{
    // Prefix match ("chronology") and member access are both clean,
    // as is a function pointer named gettimeofday not being called.
    const int chronology = sw.chrono;
    long (*gettimeofday_hook)() = nullptr;
    return chronology + (gettimeofday_hook == nullptr ? 1 : 0);
}
