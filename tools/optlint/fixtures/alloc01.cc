// Seeded ALLOC01 violations: heap allocation — direct or through a
// callee — inside functions marked hot via the optlint:hot
// annotation (the real tree also hot-marks the SIMD/GEMM kernel TUs
// by path). Scan-only (see det_hazards.cc).

#include <cstdint>
#include <vector>

void
appendScratch(std::vector<float> &buf, float v)
{
    buf.push_back(v); // allocates; fine here — this helper is cold
}

// optlint:hot
float
hotWithDirectAlloc(const float *x, int64_t n) // optlint:expect(ALLOC01)
{
    float *copy = new float[static_cast<size_t>(n)];
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        copy[i] = x[i];
        acc += copy[i];
    }
    delete[] copy;
    return static_cast<float>(acc);
}

// optlint:hot
float
hotWithTransitiveAlloc(std::vector<float> &scratch, // optlint:expect(ALLOC01)
                       const float *x, int64_t n)
{
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        appendScratch(scratch, x[i]);
        acc += x[i];
    }
    return static_cast<float>(acc);
}

// optlint:hot
float
hotAllocationFree(const float *x, const float *y, int64_t n)
{
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i)
        acc += static_cast<double>(x[i]) * y[i];
    return static_cast<float>(acc);
}

std::vector<float> &
ratchetScratch(std::vector<float> &buf, int64_t n)
{
    // optlint:coldalloc — warmup capacity ratchet; the steady state
    // re-enters with sufficient capacity and never allocates.
    if (static_cast<int64_t>(buf.size()) < n)
        buf.resize(static_cast<size_t>(n));
    return buf;
}

// optlint:hot
float
hotWithColdallocRatchet(std::vector<float> &scratch, const float *x,
                        int64_t n)
{
    ratchetScratch(scratch, n);
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        scratch[static_cast<size_t>(i)] = x[i];
        acc += x[i];
    }
    return static_cast<float>(acc);
}

// optlint:hot
float
hotWithInlineColdalloc(std::vector<float> &scratch, const float *x,
                       int64_t n)
{
    scratch.clear();
    for (int64_t i = 0; i < n; ++i)
        scratch.push_back(x[i]); // optlint:coldalloc capacity ratchet
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i)
        acc += scratch[static_cast<size_t>(i)];
    return static_cast<float>(acc);
}

// optlint:coldfn — setup-only layout build; hot callers cache it.
std::vector<float>
buildLayout(int64_t n)
{
    std::vector<float> layout;
    for (int64_t i = 0; i < n; ++i)
        layout.push_back(static_cast<float>(i));
    return layout;
}

// optlint:hot
float
hotWithColdfnSetup(std::vector<float> &cache, const float *x,
                   int64_t n)
{
    if (cache.empty())
        cache = buildLayout(n);
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i)
        acc += static_cast<double>(x[i]) * cache[size_t(i)];
    return static_cast<float>(acc);
}
