// Seeded ALLOC01 violations: heap allocation — direct or through a
// callee — inside functions marked hot via the optlint:hot
// annotation (the real tree also hot-marks the SIMD/GEMM kernel TUs
// by path). Scan-only (see det_hazards.cc).

#include <cstdint>
#include <vector>

void
appendScratch(std::vector<float> &buf, float v)
{
    buf.push_back(v); // allocates; fine here — this helper is cold
}

// optlint:hot
float
hotWithDirectAlloc(const float *x, int64_t n) // optlint:expect(ALLOC01)
{
    float *copy = new float[static_cast<size_t>(n)];
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        copy[i] = x[i];
        acc += copy[i];
    }
    delete[] copy;
    return static_cast<float>(acc);
}

// optlint:hot
float
hotWithTransitiveAlloc(std::vector<float> &scratch, // optlint:expect(ALLOC01)
                       const float *x, int64_t n)
{
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        appendScratch(scratch, x[i]);
        acc += x[i];
    }
    return static_cast<float>(acc);
}

// optlint:hot
float
hotAllocationFree(const float *x, const float *y, int64_t n)
{
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i)
        acc += static_cast<double>(x[i]) * y[i];
    return static_cast<float>(acc);
}
