#include "rules.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace optlint
{

const RuleInfo kRules[] = {
    {"DET01", "call to rand()/srand()/rand_r() — all randomness must "
              "flow through optimus::Rng (src/util/random)"},
    {"DET02", "std::random_device — nondeterministic hardware entropy "
              "breaks reproducible reruns"},
    {"DET03", "wall-clock seed source (time(), chrono::system_clock) — "
              "results must not depend on when they run"},
    {"DET04", "std::unordered_map/unordered_set — iteration order "
              "varies across standard libraries; use ordered "
              "containers or justify membership-only use"},
    {"DET05", "std:: random engine (mt19937 etc.) — the generated "
              "stream is not stable across standard libraries; use "
              "optimus::Rng"},
    {"DET06", "floating-point accumulation into a by-reference "
              "capture inside a parallelReduceSum/TaskGroup body — "
              "reduction order then depends on the schedule; return "
              "chunk partials or use parallelReduceSum's combiner"},
    {"THR01", "compound assignment to shared (non-chunk-local) state "
              "inside a parallelFor body — order-dependent "
              "accumulation; route reductions through "
              "parallelReduceSum"},
    {"THR02", "function reachable from a parallelFor/TaskGroup body "
              "transitively writes non-chunk-local shared state — "
              "the interprocedural THR01 (effect summaries "
              "propagated over the call graph)"},
    {"LIFE01", "lambda capturing locals by reference escapes into a "
               "deferred TaskGroup submit or a stored callback — the "
               "captures dangle once the frame returns"},
    {"ALLOC01", "transitive heap allocation inside a hot-path "
                "function (SIMD/GEMM kernel TUs plus optlint:hot "
                "annotations) — steady-state kernels must be "
                "allocation-free"},
    {"HYG01", "banned unsafe/locale-dependent libc function "
              "(strcpy/strcat/sprintf/gets/atoi/atol/atof) — use "
              "bounded/checked alternatives"},
    {"HYG02", "header without include guard or #pragma once"},
    {"HYG03", "float accumulator in a loop — accumulate in double "
              "(chunk-order-stable precision), cast once at the end"},
    {"COM01", "direct mutation of a byte counter outside the comm "
              "transport layer — every reported byte must derive "
              "from transport CommEvents (fold via CommVolume); see "
              "DESIGN.md section 4d"},
    {"OBS01", "direct std::chrono / clock_gettime timing outside "
              "src/obs and src/util — all timestamps must flow "
              "through obs::nowNs() so spans, counters, and phase "
              "timers share one clock (see DESIGN.md section 4e)"},
    {"OBS02", "direct printf/std::cout/std::cerr telemetry emission "
              "from library code — metrics and health signals must "
              "flow through the obs registries (rings, counters, "
              "alerts) so the exporter and dashboards see them; "
              "text output belongs to util/logging and the CLIs "
              "(see DESIGN.md section 11)"},
    {"SIM01", "raw SIMD intrinsic (_mm*/__m*/__mmask*) outside the "
              "sanctioned kernel files — vector code must live in "
              "src/tensor/simd* or src/tensor/gemm_kernels* behind "
              "the dispatch API so every call site honors the "
              "OPTIMUS_SIMD tier (see DESIGN.md section 8)"},
    {"SUP01", "stale optlint:allow comment — the named rule no "
              "longer fires on any line the suppression covers; "
              "delete it (found by --audit-suppressions)"},
};

const size_t kRuleCount = std::size(kRules);

namespace
{

/** Paths (substring match) exempt from the DET family. */
const char *kDetExemptPaths[] = {"util/random."};

/**
 * Paths (substring match) exempt from COM01: the transport layer
 * itself (where byte math is supposed to live) and the trace
 * replayer (which folds recorded events into its categories).
 */
const char *kComExemptPaths[] = {"comm/", "pipesim/trace_replay."};

bool
pathDetExempt(const std::string &path)
{
    for (const char *p : kDetExemptPaths) {
        if (path.find(p) != std::string::npos)
            return true;
    }
    return false;
}

bool
pathComExempt(const std::string &path)
{
    for (const char *p : kComExemptPaths) {
        if (path.find(p) != std::string::npos)
            return true;
    }
    return false;
}

/**
 * Paths (substring match) exempt from SIM01: the dispatch layer's
 * kernel files — the only translation units allowed to spell raw
 * intrinsics. Everything else goes through the simd:: wrappers or
 * the GEMM panel descriptors.
 */
const char *kSimExemptPaths[] = {"tensor/simd.",
                                 "tensor/simd_internal.",
                                 "tensor/gemm_kernels."};

bool
pathSimExempt(const std::string &path)
{
    for (const char *p : kSimExemptPaths) {
        if (path.find(p) != std::string::npos)
            return true;
    }
    return false;
}

/**
 * Paths (substring match) exempt from OBS01: the clock's home
 * (src/obs), the utility layer beneath it, and the measurement
 * harnesses (benches/tests/examples time whatever they like).
 */
const char *kObsExemptPaths[] = {"obs/", "util/", "bench", "tests",
                                 "examples"};

bool
pathObsExempt(const std::string &path)
{
    for (const char *p : kObsExemptPaths) {
        if (path.find(p) != std::string::npos)
            return true;
    }
    return false;
}

/**
 * Paths (substring match) exempt from OBS02: the obs layer itself
 * (the exporter and the step-summary sink print by design), the
 * logging sink, and every human-facing surface — CLIs, benches,
 * tests, examples.
 */
const char *kObs02ExemptPaths[] = {"obs/",  "util/logging.", "tools",
                                   "bench", "tests",         "examples"};

bool
pathObs02Exempt(const std::string &path)
{
    for (const char *p : kObs02ExemptPaths) {
        if (path.find(p) != std::string::npos)
            return true;
    }
    return false;
}

void
addViolation(std::vector<Violation> &out, const LexedFile &f, int line,
             const char *rule, std::string message)
{
    out.push_back({f.path, line, rule, std::move(message)});
}

/**
 * SIM01 target: an x86 vector intrinsic or vector-register type.
 * Matches `_mm...` calls (`_mm_`, `_mm256_`, `_mm512_`), `__m128`/
 * `__m256`/`__m512` (with d/i suffixes) and `__mmask*`.
 */
bool
isSimdIntrinsicIdent(const std::string &id)
{
    if (id.size() > 3 && id.compare(0, 3, "_mm") == 0 &&
        (id[3] == '_' || (id[3] >= '0' && id[3] <= '9')))
        return true;
    if (id.size() > 3 && id.compare(0, 3, "__m") == 0 &&
        (id[3] >= '0' && id[3] <= '9'))
        return true;
    if (id.rfind("__mmask", 0) == 0)
        return true;
    return false;
}

/** DET01..DET05 + HYG01 + OBS01 + SIM01: single-token patterns. */
void
checkTokenBans(const LexedFile &f, std::vector<Violation> &out)
{
    static const std::set<std::string> kLibcRand = {"rand", "srand",
                                                    "rand_r"};
    static const std::set<std::string> kEngines = {
        "mt19937",      "mt19937_64",  "minstd_rand",
        "minstd_rand0", "ranlux24",    "ranlux48",
        "knuth_b",      "default_random_engine"};
    static const std::set<std::string> kBannedFns = {
        "strcpy", "strcat", "sprintf", "vsprintf",
        "gets",   "atoi",   "atol",    "atoll",
        "atof"};

    static const std::set<std::string> kEmitFns = {
        "printf", "fprintf", "vfprintf", "fputs", "puts", "putchar"};
    static const std::set<std::string> kEmitStreams = {"cout", "cerr",
                                                       "clog"};

    const bool det_exempt = pathDetExempt(f.path);
    const bool obs_exempt = pathObsExempt(f.path);
    const bool obs02_exempt = pathObs02Exempt(f.path);
    const bool sim_exempt = pathSimExempt(f.path);
    const auto &t = f.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const std::string &id = t[i].text;
        if (isMemberAccess(t, i))
            continue;
        if (!det_exempt) {
            if (kLibcRand.count(id) && nextIs(t, i, "(")) {
                addViolation(out, f, t[i].line, "DET01",
                             "call to " + id + "()");
            } else if (id == "random_device") {
                addViolation(out, f, t[i].line, "DET02",
                             "std::random_device");
            } else if (id == "system_clock") {
                addViolation(out, f, t[i].line, "DET03",
                             "chrono::system_clock (use steady_clock "
                             "for intervals; never seed from it)");
            } else if (id == "time" && nextIs(t, i, "(")) {
                addViolation(out, f, t[i].line, "DET03",
                             "call to time()");
            } else if (id == "unordered_map" ||
                       id == "unordered_set") {
                addViolation(out, f, t[i].line, "DET04",
                             "std::" + id);
            } else if (kEngines.count(id)) {
                addViolation(out, f, t[i].line, "DET05",
                             "std::" + id);
            }
        }
        if (kBannedFns.count(id) && nextIs(t, i, "(")) {
            addViolation(out, f, t[i].line, "HYG01",
                         "banned function " + id + "()");
        }
        if (!obs_exempt) {
            // std::chrono is always used as a namespace qualifier,
            // so requiring `::` skips declarations of identifiers
            // that merely share the name.
            if (id == "chrono" && nextIs(t, i, "::")) {
                addViolation(out, f, t[i].line, "OBS01",
                             "std::chrono (use obs::nowNs())");
            } else if ((id == "clock_gettime" ||
                        id == "gettimeofday") &&
                       nextIs(t, i, "(")) {
                addViolation(out, f, t[i].line, "OBS01",
                             "call to " + id + "() (use "
                             "obs::nowNs())");
            }
        }
        if (!obs02_exempt) {
            if (kEmitFns.count(id) && nextIs(t, i, "(")) {
                addViolation(out, f, t[i].line, "OBS02",
                             "call to " + id + "() (route telemetry "
                             "through obs:: or text through "
                             "util/logging)");
            } else if (kEmitStreams.count(id) &&
                       ((i > 0 && t[i - 1].kind == TokKind::Punct &&
                         t[i - 1].text == "::") ||
                        nextIs(t, i, "<<"))) {
                // `std::cout`/`cout <<` are stream uses; a local
                // that merely shares the name is not.
                addViolation(out, f, t[i].line, "OBS02",
                             "std::" + id + " stream emission (route "
                             "telemetry through obs:: or text "
                             "through util/logging)");
            }
        }
        if (!sim_exempt && isSimdIntrinsicIdent(id)) {
            addViolation(out, f, t[i].line, "SIM01",
                         "raw intrinsic " + id +
                             " (route through tensor/simd.hh)");
        }
    }
}

/** HYG02: headers need `#pragma once` or an #ifndef/#define guard. */
void
checkIncludeGuard(const LexedFile &f, std::vector<Violation> &out)
{
    if (!f.isHeader)
        return;
    std::string prev_ifndef;
    for (const PpLine &pp : f.pp) {
        std::stringstream ss(pp.text.substr(1));
        std::string directive, arg;
        ss >> directive >> arg;
        if (directive == "pragma" && arg == "once")
            return;
        if (directive == "ifndef") {
            prev_ifndef = arg;
        } else if (directive == "define" && !prev_ifndef.empty() &&
                   arg == prev_ifndef) {
            return;
        }
    }
    addViolation(out, f, 1, "HYG02",
                 "header has no include guard or #pragma once");
}

/**
 * THR01: inside a `parallelFor` lambda, compound assignment or
 * increment of an identifier that is neither a lambda parameter nor
 * declared inside the lambda is an order-dependent write to shared
 * state. Indexed stores (`c[i] += ...`) are exempt: disjoint-output
 * indexing is the pool's documented contract and cannot be validated
 * lexically. `parallelReduceSum` bodies are exempt by design — their
 * local partial sums are the sanctioned accumulation pattern (DET06
 * covers the captured-accumulator hazard there).
 */
void
checkParallelForWrites(const LexedFile &f, const Program &program,
                       std::vector<Violation> &out)
{
    const auto &t = f.tokens;
    for (const LambdaSite &site : program.parallelSites) {
        if (&program.fileOf(site) != &f ||
            site.kind != LambdaSite::Kind::ParallelFor)
            continue;
        for (size_t k = site.bodyBegin + 1; k < site.bodyEnd; ++k) {
            std::string target;
            if (isCompoundAssign(t[k])) {
                if (t[k - 1].kind == TokKind::Ident)
                    target = t[k - 1].text;
                else
                    continue; // indexed / parenthesized store
            } else if (t[k].kind == TokKind::Punct &&
                       (t[k].text == "++" || t[k].text == "--")) {
                if (t[k - 1].kind == TokKind::Ident)
                    target = t[k - 1].text;
                else if (t[k + 1].kind == TokKind::Ident)
                    target = t[k + 1].text;
                else
                    continue;
            } else {
                continue;
            }
            if (site.locals.count(target) || isMemberAccess(t, k - 1))
                continue;
            addViolation(out, f, t[k].line, "THR01",
                         "write to shared '" + target +
                             "' inside parallelFor body (use "
                             "parallelReduceSum or chunk-local "
                             "state)");
        }
    }
}

/**
 * HYG03: a `float` (not double) scalar that receives `+=`/`-=`
 * inside a loop accumulates rounding error linearly and, worse,
 * makes the result depend on summation order. The project-wide rule
 * is: accumulate in double, convert once.
 */
void
checkFloatAccumulators(const LexedFile &f, std::vector<Violation> &out)
{
    const auto &t = f.tokens;
    // Pass 1: scalar float/double declarations, in token order. The
    // accumulator check below resolves a name to its *nearest
    // preceding* declaration, which approximates lexical scoping
    // well enough to keep same-named variables in sibling functions
    // from cross-contaminating.
    std::map<std::string, std::vector<std::pair<size_t, bool>>> decls;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident ||
            (t[i].text != "float" && t[i].text != "double"))
            continue;
        const bool is_float = t[i].text == "float";
        size_t j = i + 1;
        bool pointer = false;
        while (j < t.size() && t[j].kind == TokKind::Punct &&
               (t[j].text == "*" || t[j].text == "&")) {
            pointer = pointer || t[j].text == "*";
            ++j;
        }
        if (!pointer && j < t.size() && t[j].kind == TokKind::Ident &&
            (nextIs(t, j, "=") || nextIs(t, j, ";")))
            decls[t[j].text].emplace_back(j, is_float);
    }
    if (decls.empty())
        return;

    // Pass 2: loop body ranges (brace-delimited for/while bodies and
    // single-statement bodies up to ';').
    std::vector<std::pair<size_t, size_t>> loops;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident ||
            (t[i].text != "for" && t[i].text != "while") ||
            !nextIs(t, i, "("))
            continue;
        const size_t close = matchBracket(t, i + 1, "(", ")");
        if (close >= t.size())
            continue;
        size_t body_begin = close + 1;
        size_t body_end;
        if (body_begin < t.size() && t[body_begin].text == "{") {
            body_end = matchBracket(t, body_begin, "{", "}");
        } else {
            body_end = body_begin;
            while (body_end < t.size() && t[body_end].text != ";")
                ++body_end;
        }
        loops.emplace_back(body_begin, body_end);
    }

    // Pass 3: += / -= on a float-declared var inside any loop range.
    for (size_t k = 0; k < t.size(); ++k) {
        if (!(t[k].kind == TokKind::Punct &&
              (t[k].text == "+=" || t[k].text == "-=")))
            continue;
        if (k == 0 || t[k - 1].kind != TokKind::Ident)
            continue;
        const auto d = decls.find(t[k - 1].text);
        if (d == decls.end())
            continue;
        // Nearest declaration before this use decides the type.
        bool declared_float = false;
        bool found = false;
        for (const auto &[idx, is_float] : d->second) {
            if (idx < k) {
                declared_float = is_float;
                found = true;
            }
        }
        if (!found || !declared_float)
            continue;
        if (isMemberAccess(t, k - 1))
            continue;
        const bool in_loop =
            std::any_of(loops.begin(), loops.end(),
                        [k](const std::pair<size_t, size_t> &r) {
                            return k > r.first && k < r.second;
                        });
        if (in_loop) {
            addViolation(out, f, t[k].line, "HYG03",
                         "float accumulator '" + t[k - 1].text +
                             "' in loop (accumulate in double)");
        }
    }
}

/**
 * COM01: compound assignment or increment of an identifier whose
 * name contains "bytes" is hand-maintained byte bookkeeping, which
 * the comm transport layer made obsolete: components fold the
 * CommEvents the transport returns (CommVolume::add) so every
 * reported byte is provably derived from the event stream. Unlike
 * THR01, member-access targets *are* flagged — `stats.fooBytes += x`
 * is exactly the pattern the rule exists to catch. The transport
 * layer and the trace replayer are exempt by path; the few
 * sanctioned view-fold sites carry `optlint:allow(COM01)` with a
 * justification.
 */
void
checkByteCounterWrites(const LexedFile &f, std::vector<Violation> &out)
{
    if (pathComExempt(f.path))
        return;
    const auto &t = f.tokens;
    for (size_t k = 0; k < t.size(); ++k) {
        std::string target;
        if (isCompoundAssign(t[k])) {
            if (k > 0 && t[k - 1].kind == TokKind::Ident)
                target = t[k - 1].text;
        } else if (t[k].kind == TokKind::Punct &&
                   (t[k].text == "++" || t[k].text == "--")) {
            if (k > 0 && t[k - 1].kind == TokKind::Ident)
                target = t[k - 1].text;
            else if (k + 1 < t.size() &&
                     t[k + 1].kind == TokKind::Ident)
                target = t[k + 1].text;
        }
        if (target.empty())
            continue;
        std::string lower = target;
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(std::tolower(c));
                       });
        if (lower.find("bytes") == std::string::npos)
            continue;
        addViolation(out, f, t[k].line, "COM01",
                     "byte counter '" + target +
                         "' mutated outside the comm transport "
                         "layer (fold transport CommEvents via "
                         "CommVolume instead)");
    }
}

// -----------------------------------------------------------------
// Semantic rules (consume the linked IR).
// -----------------------------------------------------------------

/**
 * THR02: a call inside a parallel-region body to a function whose
 * transitive effect summary writes shared state — either an
 * unsynchronized non-local write anywhere in its call closure, or a
 * write through a by-reference parameter that this call site binds
 * to a non-chunk-local identifier.
 */
void
checkTransitiveParallelWrites(const Program &program,
                              std::vector<Violation> &out)
{
    std::set<std::string> reported; // file:line:callee dedup
    for (const LambdaSite &site : program.parallelSites) {
        const LexedFile &f = program.fileOf(site);
        const std::vector<CallSite> calls =
            scanCalls(f.tokens, site.bodyBegin + 1, site.bodyEnd);
        for (const CallSite &c : calls) {
            auto range = program.byName.equal_range(c.callee);
            for (auto it = range.first; it != range.second; ++it) {
                const FunctionDef &g = program.functions[it->second];
                const std::string key = f.path + ":" +
                                        std::to_string(c.line) + ":" +
                                        c.callee;
                if (g.total.writesGlobal) {
                    if (reported.insert(key).second)
                        addViolation(
                            out, f, c.line, "THR02",
                            "call to '" + g.qualName +
                                "' inside a parallel body "
                                "transitively writes shared state "
                                "(" + g.total.globalEvidence + ")");
                    break;
                }
                bool flagged = false;
                for (int wp : g.total.writesParams) {
                    const size_t ai = static_cast<size_t>(wp);
                    if (ai >= c.argIdents.size())
                        continue;
                    const std::string &a = c.argIdents[ai];
                    if (a.empty() || site.locals.count(a))
                        continue;
                    if (!a.empty() && a.back() == '_')
                        continue; // member: disjoint-object pattern
                    if (!(site.byRefDefault ||
                          site.refCaptures.count(a)))
                        continue; // copied capture — writes the copy
                    if (reported.insert(key).second) {
                        addViolation(
                            out, f, c.line, "THR02",
                            "'" + g.qualName +
                                "' writes through parameter '" +
                                (ai < g.paramNames.size()
                                     ? g.paramNames[ai]
                                     : "?") +
                                "' bound to captured '" + a +
                                "' inside a parallel body");
                        flagged = true;
                    }
                    break;
                }
                if (flagged)
                    break;
            }
        }
    }
}

/**
 * DET06: `+=`/`-=` on a by-reference-captured float/double inside a
 * parallelReduceSum or TaskGroup-submitted lambda. parallelFor
 * bodies are THR01's territory; the reduce/submit bodies were the
 * blind spot — a captured accumulator there races AND makes the
 * reduction order schedule-dependent.
 */
void
checkCapturedFpAccumulation(const Program &program,
                            std::vector<Violation> &out)
{
    for (const LambdaSite &site : program.parallelSites) {
        if (site.kind == LambdaSite::Kind::ParallelFor ||
            !site.capturesByRef())
            continue;
        const LexedFile &f = program.fileOf(site);
        const auto &t = f.tokens;
        // Scalar fp declarations before the lambda (HYG03-style
        // nearest-preceding resolution).
        std::set<std::string> fp_names;
        for (size_t i = 0; i + 1 < site.capBegin; ++i) {
            if (t[i].kind != TokKind::Ident ||
                (t[i].text != "float" && t[i].text != "double"))
                continue;
            size_t j = i + 1;
            bool pointer = false;
            while (j < t.size() && t[j].kind == TokKind::Punct &&
                   (t[j].text == "*" || t[j].text == "&")) {
                pointer = pointer || t[j].text == "*";
                ++j;
            }
            if (!pointer && j < site.capBegin &&
                t[j].kind == TokKind::Ident &&
                (nextIs(t, j, "=") || nextIs(t, j, ";")))
                fp_names.insert(t[j].text);
        }
        if (fp_names.empty())
            continue;
        for (size_t k = site.bodyBegin + 1; k < site.bodyEnd; ++k) {
            if (!(t[k].kind == TokKind::Punct &&
                  (t[k].text == "+=" || t[k].text == "-=")))
                continue;
            if (t[k - 1].kind != TokKind::Ident ||
                isMemberAccess(t, k - 1))
                continue;
            const std::string &target = t[k - 1].text;
            if (site.locals.count(target) || !fp_names.count(target))
                continue;
            if (!(site.byRefDefault || site.refCaptures.count(target)))
                continue;
            const char *where =
                site.kind == LambdaSite::Kind::ParallelReduce
                    ? "parallelReduceSum"
                    : "TaskGroup submit";
            addViolation(out, f, t[k].line, "DET06",
                         "floating-point accumulation into captured "
                         "'" + target + "' inside a " + where +
                             " body — reduction order depends on "
                             "the schedule");
        }
    }
}

/**
 * LIFE01 part 1: a by-reference lambda submitted to a TaskGroup in
 * a function that never wait()s afterwards — the task can outlive
 * every captured local.
 */
void
checkEscapingSubmits(const Program &program,
                     std::vector<Violation> &out)
{
    for (const LambdaSite &site : program.parallelSites) {
        if (site.kind != LambdaSite::Kind::Submit ||
            !site.capturesByRef())
            continue;
        const LexedFile &f = program.fileOf(site);
        // Locate the enclosing function definition.
        const FunctionDef *host = nullptr;
        for (const FunctionDef &fn : program.functions) {
            if (&program.fileOf(fn) != &f)
                continue;
            if (fn.bodyBegin < site.capBegin &&
                site.bodyEnd < fn.bodyEnd &&
                (!host || fn.bodyBegin > host->bodyBegin))
                host = &fn;
        }
        if (!host)
            continue; // parse blind spot — do not guess
        const auto &t = f.tokens;
        bool waited = false;
        for (size_t k = site.bodyEnd; k < host->bodyEnd; ++k) {
            if (t[k].kind == TokKind::Ident && t[k].text == "wait" &&
                nextIs(t, k, "(")) {
                waited = true;
                break;
            }
        }
        if (!waited) {
            addViolation(out, f, site.line, "LIFE01",
                         "by-reference lambda submitted to a "
                         "TaskGroup with no wait() before '" +
                             host->qualName +
                             "' returns — captured locals dangle");
        }
    }
}

/**
 * LIFE01 part 2: a by-reference lambda stored into a non-local
 * callback slot (member/global assignment, or push_back into a
 * non-local container) — deferred invocation outlives the frame.
 */
void
checkStoredCallbacks(const Program &program,
                     std::vector<Violation> &out)
{
    for (const FunctionDef &fn : program.functions) {
        const LexedFile &f = program.fileOf(fn);
        const auto &t = f.tokens;
        for (size_t k = fn.bodyBegin + 1; k + 1 < fn.bodyEnd; ++k) {
            if (!(t[k].kind == TokKind::Punct &&
                  (t[k].text == "=" || t[k].text == "(")) ||
                !(t[k + 1].kind == TokKind::Punct &&
                  t[k + 1].text == "["))
                continue;
            const size_t cap = k + 1;
            const size_t cap_end = matchBracket(t, cap, "[", "]");
            if (cap_end >= fn.bodyEnd)
                continue;
            bool by_ref = false;
            for (size_t m = cap + 1; m < cap_end; ++m) {
                if (t[m].kind == TokKind::Punct && t[m].text == "&")
                    by_ref = true;
            }
            if (!by_ref)
                continue;
            std::string sink;
            bool escapes = false;
            if (t[k].text == "=") {
                // `slot = [&]...` — escaping when `slot` is a
                // member (trailing underscore or member access) or
                // an identifier that is not function-local.
                if (t[k - 1].kind != TokKind::Ident)
                    continue;
                sink = t[k - 1].text;
                const bool member = isMemberAccess(t, k - 1) ||
                                    (!sink.empty() &&
                                     sink.back() == '_');
                escapes = member || !fn.locals.count(sink);
            } else {
                // `sink.push_back([&]...)` — escaping when the
                // receiver is a member or not function-local.
                if (k < 3 || t[k - 1].kind != TokKind::Ident ||
                    (t[k - 1].text != "push_back" &&
                     t[k - 1].text != "emplace_back"))
                    continue;
                if (!isMemberAccess(t, k - 2) ||
                    t[k - 3].kind != TokKind::Ident)
                    continue;
                sink = t[k - 3].text;
                const bool member = !sink.empty() &&
                                    sink.back() == '_';
                escapes = member || !fn.locals.count(sink);
            }
            if (escapes) {
                addViolation(out, f, t[cap].line, "LIFE01",
                             "by-reference lambda stored into "
                             "non-local '" + sink +
                                 "' — captured locals dangle after "
                                 "'" + fn.qualName + "' returns");
            }
        }
    }
}

/**
 * ALLOC01: a hot-path function (SIMD/GEMM kernel TUs by default,
 * plus `optlint:hot` annotations) that allocates on some path —
 * directly or through any callee. Reported at the definition.
 */
void
checkHotPathAllocations(const Program &program,
                        std::vector<Violation> &out)
{
    for (const FunctionDef &fn : program.functions) {
        if (!fn.isHot || fn.isColdSetup || !fn.total.allocates)
            continue;
        const LexedFile &f = program.fileOf(fn);
        addViolation(out, f, fn.line, "ALLOC01",
                     "hot-path function '" + fn.qualName +
                         "' allocates on a steady-state path (" +
                         fn.total.allocEvidence + ")");
    }
}

} // namespace

std::vector<Violation>
runAllRules(const Program &program)
{
    std::vector<Violation> out;
    for (const LexedFile *f : program.files) {
        checkTokenBans(*f, out);
        checkIncludeGuard(*f, out);
        checkParallelForWrites(*f, program, out);
        checkFloatAccumulators(*f, out);
        checkByteCounterWrites(*f, out);
    }
    checkTransitiveParallelWrites(program, out);
    checkCapturedFpAccumulation(program, out);
    checkEscapingSubmits(program, out);
    checkStoredCallbacks(program, out);
    checkHotPathAllocations(program, out);

    std::sort(out.begin(), out.end(),
              [](const Violation &a, const Violation &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const Violation &a, const Violation &b) {
                              return a.file == b.file &&
                                     a.line == b.line &&
                                     a.rule == b.rule &&
                                     a.message == b.message;
                          }),
              out.end());
    return out;
}

std::vector<Violation>
filterSuppressed(const std::vector<Violation> &raw,
                 const Program &program)
{
    std::map<std::string, const LexedFile *> by_path;
    for (const LexedFile *f : program.files)
        by_path[f->path] = f;
    std::vector<Violation> out;
    for (const Violation &v : raw) {
        const auto f = by_path.find(v.file);
        if (f != by_path.end()) {
            const auto it = f->second->allow.find(v.line);
            if (it != f->second->allow.end() &&
                it->second.count(v.rule))
                continue;
        }
        out.push_back(v);
    }
    return out;
}

std::vector<Violation>
auditSuppressions(const std::vector<Violation> &raw,
                  const Program &program)
{
    std::set<std::pair<std::string, std::pair<int, std::string>>> live;
    for (const Violation &v : raw)
        live.insert({v.file, {v.line, v.rule}});
    std::vector<Violation> out;
    for (const LexedFile *f : program.files) {
        for (const AllowRecord &rec : f->allowRecords) {
            bool fires = live.count({f->path, {rec.line, rec.rule}});
            if (!fires && rec.ownLine)
                fires = live.count(
                    {f->path, {rec.line + 1, rec.rule}});
            if (fires)
                continue;
            out.push_back(
                {f->path, rec.line, "SUP01",
                 "stale suppression: optlint:allow(" + rec.rule +
                     ") matches no " + rec.rule +
                     " finding on the line(s) it covers"});
        }
    }
    return out;
}

} // namespace optlint
