/**
 * @file
 * optlint — the project's repo-specific static analyzer, grown from
 * a single-TU token linter into a two-pass whole-repo semantic
 * analyzer (DESIGN.md section 7).
 *
 * Pass 1 lexes every translation unit and extracts a lightweight IR
 * (function definitions, effect summaries, call sites, parallel
 * lambda sites); it is embarrassingly parallel and the driver fans
 * it out over --jobs threads. Pass 2 links the per-TU IRs, resolves
 * call edges across TUs, and propagates effect summaries to a
 * fixpoint; the rule engine then runs with whole-program context.
 *
 * Modes:
 *   optlint [--json] [--sarif FILE] [--root DIR] [--jobs N] PATH...
 *   optlint --audit-suppressions [--root DIR] PATH...
 *   optlint --self-test FIXTURE_DIR
 *   optlint --dump-ir [--root DIR] PATH...
 *   optlint --list-rules
 *
 * Exit codes: 0 clean, 1 findings, 2 usage/io error.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "ir.hh"
#include "lexer.hh"
#include "output.hh"
#include "rules.hh"

namespace optlint
{

namespace
{

/** Wall-clock timings of the two analysis passes, for the CI log. */
struct PassTimes
{
    long pass1Ms = 0;
    long pass2Ms = 0;
    unsigned jobs = 1;
};

long
msSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<long>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

/**
 * Pass 1 over @p files: lex + per-TU IR extraction, fanned out over
 * @p jobs threads (each file is independent; workers claim indices
 * off an atomic counter and write into preallocated slots).
 * Returns false if any file cannot be read.
 */
bool
runPass1(const std::vector<fs::path> &files, const fs::path &root,
         unsigned jobs, std::vector<LexedFile> &lexed,
         std::vector<FileIr> &irs)
{
    lexed.resize(files.size());
    irs.resize(files.size());
    std::atomic<size_t> next{0};
    std::atomic<bool> ok{true};
    auto worker = [&] {
        for (size_t i = next.fetch_add(1); i < files.size();
             i = next.fetch_add(1)) {
            if (!lexFile(files[i], displayPath(files[i], root),
                         lexed[i])) {
                std::fprintf(stderr, "optlint: cannot read %s\n",
                             files[i].string().c_str());
                ok.store(false);
                continue;
            }
            irs[i] = buildFileIr(lexed[i]);
        }
    };
    if (jobs <= 1 || files.size() <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        const unsigned n = std::min<unsigned>(
            jobs, static_cast<unsigned>(files.size()));
        pool.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            pool.emplace_back(worker);
        for (std::thread &th : pool)
            th.join();
    }
    return ok.load();
}

/** Lex + link one program over @p files. */
bool
analyze(const std::vector<fs::path> &files, const fs::path &root,
        unsigned jobs, std::vector<LexedFile> &lexed,
        Program &program, PassTimes &times)
{
    times.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<FileIr> irs;
    if (!runPass1(files, root, jobs, lexed, irs))
        return false;
    times.pass1Ms = msSince(t0);

    const auto t1 = std::chrono::steady_clock::now();
    std::vector<const LexedFile *> ptrs;
    ptrs.reserve(lexed.size());
    for (const LexedFile &f : lexed)
        ptrs.push_back(&f);
    program = linkProgram(ptrs, std::move(irs));
    times.pass2Ms = msSince(t1);
    return true;
}

/**
 * Self-test: every `optlint:expect(RULE)` annotation in the fixture
 * set must be flagged, and nothing else may be. Each top-level
 * fixture file is analyzed as its own program; each top-level
 * fixture *directory* is analyzed as one multi-TU program, which is
 * how the cross-TU call-graph cases (fixtures/crosstu) exercise
 * pass 2. Expected findings are compared against the filtered rule
 * findings plus the --audit-suppressions findings, so SUP01
 * fixtures validate the audit path too.
 */
int
runSelfTest(const fs::path &fixture_dir)
{
    if (!fs::is_directory(fixture_dir)) {
        std::fprintf(stderr, "optlint: no fixtures under %s\n",
                     fixture_dir.string().c_str());
        return 2;
    }
    // One "unit" = one program: a single file or a whole subdir.
    std::vector<std::vector<fs::path>> units;
    std::vector<fs::path> entries;
    for (const auto &entry : fs::directory_iterator(fixture_dir))
        entries.push_back(entry.path());
    std::sort(entries.begin(), entries.end());
    for (const fs::path &p : entries) {
        if (fs::is_regular_file(p) && isSourceFile(p)) {
            units.push_back({p});
        } else if (fs::is_directory(p)) {
            std::vector<fs::path> group;
            collectFiles(p, group);
            std::sort(group.begin(), group.end());
            if (!group.empty())
                units.push_back(std::move(group));
        }
    }
    if (units.empty()) {
        std::fprintf(stderr, "optlint: no fixtures under %s\n",
                     fixture_dir.string().c_str());
        return 2;
    }

    int mismatches = 0;
    size_t expected_total = 0, file_total = 0;
    for (const std::vector<fs::path> &unit : units) {
        std::vector<LexedFile> lexed;
        Program program;
        PassTimes times;
        if (!analyze(unit, fixture_dir, 1, lexed, program, times))
            return 2;
        file_total += unit.size();

        const std::vector<Violation> raw = runAllRules(program);
        std::vector<Violation> found = filterSuppressed(raw, program);
        const std::vector<Violation> stale =
            auditSuppressions(raw, program);
        found.insert(found.end(), stale.begin(), stale.end());

        // Compare per file so mismatch reports name the fixture.
        for (const LexedFile &f : lexed) {
            std::set<std::pair<int, std::string>> got, want;
            for (const Violation &v : found) {
                if (v.file == f.path)
                    got.insert({v.line, v.rule});
            }
            for (const auto &[line, rules] : f.expect) {
                for (const std::string &r : rules)
                    want.insert({line, r});
            }
            expected_total += want.size();
            for (const auto &w : want) {
                if (!got.count(w)) {
                    std::fprintf(stderr, "MISSED   %s:%d %s\n",
                                 f.path.c_str(), w.first,
                                 w.second.c_str());
                    ++mismatches;
                }
            }
            for (const auto &g : got) {
                if (!want.count(g)) {
                    std::fprintf(stderr, "SPURIOUS %s:%d %s\n",
                                 f.path.c_str(), g.first,
                                 g.second.c_str());
                    ++mismatches;
                }
            }
        }
    }
    std::fprintf(stderr,
                 "optlint self-test: %zu expected findings across %zu "
                 "fixture files, %d mismatch(es)\n",
                 expected_total, file_total, mismatches);
    return mismatches == 0 ? 0 : 1;
}

} // namespace

} // namespace optlint

int
main(int argc, char **argv)
{
    using namespace optlint;

    bool json = false;
    bool audit = false;
    bool dump_ir = false;
    std::string sarif_path;
    fs::path root = fs::current_path();
    unsigned jobs = std::max(1u, std::thread::hardware_concurrency());
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--sarif" && i + 1 < argc) {
            sarif_path = argv[++i];
        } else if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = static_cast<unsigned>(
                std::max(1, std::atoi(argv[++i])));
        } else if (arg == "--audit-suppressions") {
            audit = true;
        } else if (arg == "--dump-ir") {
            dump_ir = true;
        } else if (arg == "--self-test" && i + 1 < argc) {
            return runSelfTest(argv[++i]);
        } else if (arg == "--list-rules") {
            for (size_t r = 0; r < kRuleCount; ++r)
                std::printf("%s  %s\n", kRules[r].id,
                            kRules[r].summary);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: optlint [--json] [--sarif FILE] [--root DIR] "
                "[--jobs N] PATH...\n"
                "       optlint --audit-suppressions [--root DIR] "
                "PATH...\n"
                "       optlint --self-test FIXTURE_DIR\n"
                "       optlint --dump-ir [--root DIR] PATH...\n"
                "       optlint --list-rules\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "optlint: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        std::fprintf(stderr,
                     "optlint: no paths given (try --help)\n");
        return 2;
    }

    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        const fs::path abs =
            fs::path(p).is_absolute() ? fs::path(p) : root / p;
        if (!fs::exists(abs)) {
            std::fprintf(stderr, "optlint: path not found: %s\n",
                         abs.string().c_str());
            return 2;
        }
        collectFiles(abs, files);
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<LexedFile> lexed;
    Program program;
    PassTimes times;
    if (!analyze(files, root, jobs, lexed, program, times))
        return 2;

    if (dump_ir) {
        dumpProgram(program);
        return 0;
    }

    const std::vector<Violation> raw = runAllRules(program);
    const std::vector<Violation> findings =
        audit ? auditSuppressions(raw, program)
              : filterSuppressed(raw, program);

    std::fprintf(stderr,
                 "optlint: %zu file(s), pass1 %ld ms (%u thread%s), "
                 "pass2 %ld ms\n",
                 files.size(), times.pass1Ms, times.jobs,
                 times.jobs == 1 ? "" : "s", times.pass2Ms);

    if (!sarif_path.empty() && !writeSarif(findings, sarif_path)) {
        std::fprintf(stderr, "optlint: cannot write SARIF to %s\n",
                     sarif_path.c_str());
        return 2;
    }
    if (json)
        printJson(findings);
    else if (!findings.empty())
        printHuman(findings);
    else
        std::fprintf(stderr, "optlint: %zu file(s) clean%s\n",
                     files.size(),
                     audit ? " (no stale suppressions)" : "");
    return findings.empty() ? 0 : 1;
}
