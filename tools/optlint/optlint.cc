/**
 * @file
 * optlint — the project's in-repo static analyzer for determinism,
 * threading, and hygiene invariants (see DESIGN.md section 7 for the
 * rule catalogue and rationale).
 *
 * The checker is a lightweight C++ tokenizer, not a compiler
 * front-end: it strips comments/strings/preprocessor lines, keeps
 * line numbers, and pattern-matches token sequences. That is enough
 * to enforce the project's invariants mechanically while staying
 * dependency-free and fast (whole repo in milliseconds), at the cost
 * of being a heuristic — which is why every rule has a suppression
 * escape hatch:
 *
 *     some_flagged_code();  // optlint:allow(RULE) why it is safe
 *
 * A suppression comment on its own line applies to the next line.
 *
 * Modes:
 *   optlint [--json] [--root DIR] PATH...   scan, exit 1 on findings
 *   optlint --self-test FIXTURE_DIR         verify the rule engine
 *       flags exactly the `// optlint:expect(RULE)` annotations in
 *       the fixture files (both directions: no misses, no spurious
 *       findings), exit 1 on any mismatch
 *   optlint --list-rules                    print the rule catalogue
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace optlint
{

namespace fs = std::filesystem;

/** One finding: a rule violated at a file:line. */
struct Violation
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

/** Token kinds the rules care about. */
enum class TokKind
{
    Ident,
    Number,
    String,
    Punct,
};

struct Token
{
    TokKind kind;
    std::string text;
    int line = 0;
};

/** A preprocessor directive (continuations joined, comments kept). */
struct PpLine
{
    int line = 0;
    std::string text;
};

/**
 * A lexed translation unit: token stream, preprocessor directives,
 * and the per-line `optlint:allow` / `optlint:expect` annotations.
 */
struct LexedFile
{
    std::string path;    // display path (relative to --root)
    bool isHeader = false;
    std::vector<Token> tokens;
    std::vector<PpLine> pp;
    std::map<int, std::set<std::string>> allow;
    std::map<int, std::set<std::string>> expect;
};

namespace
{

/** Parse `optlint:allow(A,B)` / `optlint:expect(A)` out of a comment. */
void
parseAnnotations(LexedFile &out, const std::string &comment,
                 int line, bool own_line)
{
    static const struct
    {
        const char *tag;
        bool is_allow;
    } kTags[] = {{"optlint:allow(", true}, {"optlint:expect(", false}};

    for (const auto &tag : kTags) {
        size_t pos = comment.find(tag.tag);
        while (pos != std::string::npos) {
            const size_t open = pos + std::strlen(tag.tag);
            const size_t close = comment.find(')', open);
            if (close == std::string::npos)
                break;
            std::stringstream list(comment.substr(open, close - open));
            std::string rule;
            while (std::getline(list, rule, ',')) {
                rule.erase(std::remove_if(rule.begin(), rule.end(),
                                          [](unsigned char c) {
                                              return std::isspace(c);
                                          }),
                           rule.end());
                if (rule.empty())
                    continue;
                auto &dest = tag.is_allow ? out.allow : out.expect;
                dest[line].insert(rule);
                // A suppression alone on its line covers the next
                // line too (the usual place for long justifications).
                // Expectations stay line-exact so the self-test
                // cross-check is unambiguous.
                if (own_line && tag.is_allow)
                    dest[line + 1].insert(rule);
            }
            pos = comment.find(tag.tag, close);
        }
    }
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Tokenize one file. Strings and character literals become single
 * String tokens; comments and preprocessor lines are captured out of
 * band. Good enough for pattern rules; not a conforming lexer.
 */
bool
lexFile(const fs::path &file, const std::string &display,
        LexedFile &out)
{
    std::ifstream in(file, std::ios::binary);
    if (!in)
        return false;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string src = buffer.str();

    out.path = display;
    const std::string ext = file.extension().string();
    out.isHeader = ext == ".hh" || ext == ".h" || ext == ".hpp";

    const size_t n = src.size();
    size_t i = 0;
    int line = 1;
    bool line_has_code = false;

    // Multi-char punctuators, longest first.
    static const char *kPunct3[] = {"<<=", ">>=", "...", "->*"};
    static const char *kPunct2[] = {"+=", "-=", "*=", "/=", "%=",
                                    "&=", "|=", "^=", "++", "--",
                                    "::", "->", "<<", ">>", "<=",
                                    ">=", "==", "!=", "&&", "||"};

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            line_has_code = false;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            const size_t eol = src.find('\n', i);
            const size_t end = eol == std::string::npos ? n : eol;
            parseAnnotations(out, src.substr(i, end - i), line,
                             !line_has_code);
            i = end;
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const size_t close = src.find("*/", i + 2);
            const size_t end =
                close == std::string::npos ? n : close + 2;
            parseAnnotations(out, src.substr(i, end - i), line,
                             !line_has_code);
            line += static_cast<int>(
                std::count(src.begin() + static_cast<long>(i),
                           src.begin() + static_cast<long>(end),
                           '\n'));
            i = end;
            continue;
        }
        // Preprocessor directive: '#' as first code on the line.
        if (c == '#' && !line_has_code) {
            PpLine pp;
            pp.line = line;
            size_t j = i;
            while (j < n) {
                if (src[j] == '\n') {
                    if (!pp.text.empty() && pp.text.back() == '\\') {
                        pp.text.pop_back();
                        ++line;
                        ++j;
                        continue;
                    }
                    break;
                }
                pp.text.push_back(src[j]);
                ++j;
            }
            out.pp.push_back(std::move(pp));
            i = j;
            continue;
        }
        line_has_code = true;
        // String / char literal (escape-aware; raw strings are
        // handled well enough by the escape rule for this codebase).
        if (c == '"' || c == '\'') {
            const char quote = c;
            size_t j = i + 1;
            while (j < n && src[j] != quote) {
                if (src[j] == '\\')
                    ++j;
                ++j;
            }
            out.tokens.push_back({TokKind::String, "", line});
            i = j < n ? j + 1 : n;
            continue;
        }
        // Identifier / keyword.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t j = i;
            while (j < n && isIdentChar(src[j]))
                ++j;
            out.tokens.push_back(
                {TokKind::Ident, src.substr(i, j - i), line});
            i = j;
            continue;
        }
        // Number (digits plus the usual suffix soup).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t j = i;
            while (j < n && (isIdentChar(src[j]) || src[j] == '.' ||
                             ((src[j] == '+' || src[j] == '-') &&
                              (src[j - 1] == 'e' || src[j - 1] == 'E'))))
                ++j;
            out.tokens.push_back({TokKind::Number, "", line});
            i = j;
            continue;
        }
        // Punctuation, longest match first.
        auto tryPunct = [&](const char *const *table, size_t count,
                            size_t len) {
            for (size_t t = 0; t < count; ++t) {
                if (i + len <= n &&
                    src.compare(i, len, table[t]) == 0) {
                    out.tokens.push_back(
                        {TokKind::Punct, table[t], line});
                    i += len;
                    return true;
                }
            }
            return false;
        };
        if (tryPunct(kPunct3, std::size(kPunct3), 3))
            continue;
        if (tryPunct(kPunct2, std::size(kPunct2), 2))
            continue;
        out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return true;
}

// ---------------------------------------------------------------------
// Rule catalogue
// ---------------------------------------------------------------------

struct RuleInfo
{
    const char *id;
    const char *summary;
};

const RuleInfo kRules[] = {
    {"DET01", "call to rand()/srand()/rand_r() — all randomness must "
              "flow through optimus::Rng (src/util/random)"},
    {"DET02", "std::random_device — nondeterministic hardware entropy "
              "breaks reproducible reruns"},
    {"DET03", "wall-clock seed source (time(), chrono::system_clock) — "
              "results must not depend on when they run"},
    {"DET04", "std::unordered_map/unordered_set — iteration order "
              "varies across standard libraries; use ordered "
              "containers or justify membership-only use"},
    {"DET05", "std:: random engine (mt19937 etc.) — the generated "
              "stream is not stable across standard libraries; use "
              "optimus::Rng"},
    {"THR01", "compound assignment to shared (non-chunk-local) state "
              "inside a parallelFor body — order-dependent "
              "accumulation; route reductions through "
              "parallelReduceSum"},
    {"HYG01", "banned unsafe/locale-dependent libc function "
              "(strcpy/strcat/sprintf/gets/atoi/atol/atof) — use "
              "bounded/checked alternatives"},
    {"HYG02", "header without include guard or #pragma once"},
    {"HYG03", "float accumulator in a loop — accumulate in double "
              "(chunk-order-stable precision), cast once at the end"},
    {"COM01", "direct mutation of a byte counter outside the comm "
              "transport layer — every reported byte must derive "
              "from transport CommEvents (fold via CommVolume); see "
              "DESIGN.md section 4d"},
    {"OBS01", "direct std::chrono / clock_gettime timing outside "
              "src/obs and src/util — all timestamps must flow "
              "through obs::nowNs() so spans, counters, and phase "
              "timers share one clock (see DESIGN.md section 4e)"},
    {"SIM01", "raw SIMD intrinsic (_mm*/__m*/__mmask*) outside the "
              "sanctioned kernel files — vector code must live in "
              "src/tensor/simd* or src/tensor/gemm_kernels* behind "
              "the dispatch API so every call site honors the "
              "OPTIMUS_SIMD tier (see DESIGN.md section 8)"},
};

/** Paths (substring match) exempt from the DET family. */
const char *kDetExemptPaths[] = {"util/random."};

/**
 * Paths (substring match) exempt from COM01: the transport layer
 * itself (where byte math is supposed to live) and the trace
 * replayer (which folds recorded events into its categories).
 */
const char *kComExemptPaths[] = {"comm/", "pipesim/trace_replay."};

bool
pathDetExempt(const std::string &path)
{
    for (const char *p : kDetExemptPaths) {
        if (path.find(p) != std::string::npos)
            return true;
    }
    return false;
}

bool
pathComExempt(const std::string &path)
{
    for (const char *p : kComExemptPaths) {
        if (path.find(p) != std::string::npos)
            return true;
    }
    return false;
}

/**
 * Paths (substring match) exempt from SIM01: the dispatch layer's
 * kernel files — the only translation units allowed to spell raw
 * intrinsics. Everything else goes through the simd:: wrappers or
 * the GEMM panel descriptors.
 */
const char *kSimExemptPaths[] = {"tensor/simd.",
                                 "tensor/simd_internal.",
                                 "tensor/gemm_kernels."};

bool
pathSimExempt(const std::string &path)
{
    for (const char *p : kSimExemptPaths) {
        if (path.find(p) != std::string::npos)
            return true;
    }
    return false;
}

/**
 * Paths (substring match) exempt from OBS01: the clock's home
 * (src/obs), the utility layer beneath it, and the measurement
 * harnesses (benches/tests/examples time whatever they like).
 */
const char *kObsExemptPaths[] = {"obs/", "util/", "bench", "tests",
                                 "examples"};

bool
pathObsExempt(const std::string &path)
{
    for (const char *p : kObsExemptPaths) {
        if (path.find(p) != std::string::npos)
            return true;
    }
    return false;
}

void
addViolation(std::vector<Violation> &out, const LexedFile &f, int line,
             const char *rule, std::string message)
{
    // Central suppression check.
    auto it = f.allow.find(line);
    if (it != f.allow.end() && it->second.count(rule))
        return;
    out.push_back({f.path, line, rule, std::move(message)});
}

bool
isMemberAccess(const std::vector<Token> &t, size_t i)
{
    return i > 0 && t[i - 1].kind == TokKind::Punct &&
           (t[i - 1].text == "." || t[i - 1].text == "->");
}

bool
nextIs(const std::vector<Token> &t, size_t i, const char *text)
{
    return i + 1 < t.size() && t[i + 1].text == text;
}

/**
 * SIM01 target: an x86 vector intrinsic or vector-register type.
 * Matches `_mm...` calls (`_mm_`, `_mm256_`, `_mm512_`), `__m128`/
 * `__m256`/`__m512` (with d/i suffixes) and `__mmask*`.
 */
bool
isSimdIntrinsicIdent(const std::string &id)
{
    if (id.size() > 3 && id.compare(0, 3, "_mm") == 0 &&
        (id[3] == '_' || (id[3] >= '0' && id[3] <= '9')))
        return true;
    if (id.size() > 3 && id.compare(0, 3, "__m") == 0 &&
        (id[3] >= '0' && id[3] <= '9'))
        return true;
    if (id.rfind("__mmask", 0) == 0)
        return true;
    return false;
}

/** DET01..DET05 + HYG01 + OBS01 + SIM01: single-token patterns. */
void
checkTokenBans(const LexedFile &f, std::vector<Violation> &out)
{
    static const std::set<std::string> kLibcRand = {"rand", "srand",
                                                    "rand_r"};
    static const std::set<std::string> kEngines = {
        "mt19937",      "mt19937_64",  "minstd_rand",
        "minstd_rand0", "ranlux24",    "ranlux48",
        "knuth_b",      "default_random_engine"};
    static const std::set<std::string> kBannedFns = {
        "strcpy", "strcat", "sprintf", "vsprintf",
        "gets",   "atoi",   "atol",    "atoll",
        "atof"};

    const bool det_exempt = pathDetExempt(f.path);
    const bool obs_exempt = pathObsExempt(f.path);
    const bool sim_exempt = pathSimExempt(f.path);
    const auto &t = f.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const std::string &id = t[i].text;
        if (isMemberAccess(t, i))
            continue;
        if (!det_exempt) {
            if (kLibcRand.count(id) && nextIs(t, i, "(")) {
                addViolation(out, f, t[i].line, "DET01",
                             "call to " + id + "()");
            } else if (id == "random_device") {
                addViolation(out, f, t[i].line, "DET02",
                             "std::random_device");
            } else if (id == "system_clock") {
                addViolation(out, f, t[i].line, "DET03",
                             "chrono::system_clock (use steady_clock "
                             "for intervals; never seed from it)");
            } else if (id == "time" && nextIs(t, i, "(")) {
                addViolation(out, f, t[i].line, "DET03",
                             "call to time()");
            } else if (id == "unordered_map" ||
                       id == "unordered_set") {
                addViolation(out, f, t[i].line, "DET04",
                             "std::" + id);
            } else if (kEngines.count(id)) {
                addViolation(out, f, t[i].line, "DET05",
                             "std::" + id);
            }
        }
        if (kBannedFns.count(id) && nextIs(t, i, "(")) {
            addViolation(out, f, t[i].line, "HYG01",
                         "banned function " + id + "()");
        }
        if (!obs_exempt) {
            // std::chrono is always used as a namespace qualifier,
            // so requiring `::` skips declarations of identifiers
            // that merely share the name.
            if (id == "chrono" && nextIs(t, i, "::")) {
                addViolation(out, f, t[i].line, "OBS01",
                             "std::chrono (use obs::nowNs())");
            } else if ((id == "clock_gettime" ||
                        id == "gettimeofday") &&
                       nextIs(t, i, "(")) {
                addViolation(out, f, t[i].line, "OBS01",
                             "call to " + id + "() (use "
                             "obs::nowNs())");
            }
        }
        if (!sim_exempt && isSimdIntrinsicIdent(id)) {
            addViolation(out, f, t[i].line, "SIM01",
                         "raw intrinsic " + id +
                             " (route through tensor/simd.hh)");
        }
    }
}

/** HYG02: headers need `#pragma once` or an #ifndef/#define guard. */
void
checkIncludeGuard(const LexedFile &f, std::vector<Violation> &out)
{
    if (!f.isHeader)
        return;
    std::string prev_ifndef;
    for (const PpLine &pp : f.pp) {
        std::stringstream ss(pp.text.substr(1));
        std::string directive, arg;
        ss >> directive >> arg;
        if (directive == "pragma" && arg == "once")
            return;
        if (directive == "ifndef") {
            prev_ifndef = arg;
        } else if (directive == "define" && !prev_ifndef.empty() &&
                   arg == prev_ifndef) {
            return;
        }
    }
    addViolation(out, f, 1, "HYG02",
                 "header has no include guard or #pragma once");
}

/** Type keywords that can start a local declaration. */
bool
isTypeKeyword(const std::string &s)
{
    static const std::set<std::string> kTypes = {
        "float",    "double",   "int",      "long",     "short",
        "unsigned", "signed",   "bool",     "char",     "auto",
        "size_t",   "ssize_t",  "int8_t",   "int16_t",  "int32_t",
        "int64_t",  "uint8_t",  "uint16_t", "uint32_t", "uint64_t",
        "intptr_t", "uintptr_t", "ptrdiff_t"};
    return kTypes.count(s) != 0;
}

/** Heuristic: an uppercase-initial identifier is a class type. */
bool
looksLikeTypeName(const std::string &s)
{
    return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
}

bool
isStatementBoundary(const std::vector<Token> &t, size_t i)
{
    if (i == 0)
        return true;
    const Token &p = t[i - 1];
    return p.kind == TokKind::Punct &&
           (p.text == ";" || p.text == "{" || p.text == "}" ||
            p.text == "(" || p.text == ",");
}

/**
 * Collect identifiers declared in tokens [begin, end): lambda
 * parameters and block-local variables. Pointer declarators are
 * excluded on purpose — `float *p` makes p chunk-local but *p is
 * not, and the write through it is what the caller wants to inspect.
 */
std::set<std::string>
collectLocalDecls(const std::vector<Token> &t, size_t begin, size_t end)
{
    std::set<std::string> locals;
    for (size_t i = begin; i < end; ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const bool type_start =
            isTypeKeyword(t[i].text) || looksLikeTypeName(t[i].text);
        if (!type_start || !isStatementBoundary(t, i))
            continue;
        // Skip over the (possibly multi-keyword) type and cv
        // qualifiers: `const unsigned long long x`, `Tensor &q`.
        size_t j = i;
        bool pointer = false;
        while (j < end &&
               ((t[j].kind == TokKind::Ident &&
                 (isTypeKeyword(t[j].text) || t[j].text == "const" ||
                  t[j].text == "constexpr" ||
                  looksLikeTypeName(t[j].text))) ||
                (t[j].kind == TokKind::Punct &&
                 (t[j].text == "*" || t[j].text == "&" ||
                  t[j].text == "::")))) {
            if (t[j].text == "*")
                pointer = true;
            ++j;
        }
        if (j >= end || t[j].kind != TokKind::Ident)
            continue;
        // The declarator must be followed by an init/terminator.
        if (!(nextIs(t, j, "=") || nextIs(t, j, ";") ||
              nextIs(t, j, ",") || nextIs(t, j, "(") ||
              nextIs(t, j, "[") || nextIs(t, j, "{") ||
              nextIs(t, j, ")") || nextIs(t, j, ":")))
            continue;
        if (!pointer)
            locals.insert(t[j].text);
        i = j;
    }
    return locals;
}

/** Index of the matching closer for the opener at t[open]. */
size_t
matchBracket(const std::vector<Token> &t, size_t open,
             const char *open_text, const char *close_text)
{
    int depth = 0;
    for (size_t i = open; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Punct)
            continue;
        if (t[i].text == open_text)
            ++depth;
        else if (t[i].text == close_text && --depth == 0)
            return i;
    }
    return t.size();
}

bool
isCompoundAssign(const Token &tok)
{
    static const std::set<std::string> kOps = {
        "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
    return tok.kind == TokKind::Punct && kOps.count(tok.text) != 0;
}

/**
 * THR01: inside a `parallelFor` lambda, compound assignment or
 * increment of an identifier that is neither a lambda parameter nor
 * declared inside the lambda is an order-dependent write to shared
 * state. Indexed stores (`c[i] += ...`) are exempt: disjoint-output
 * indexing is the pool's documented contract and cannot be validated
 * lexically. `parallelReduceSum` bodies are exempt by design — their
 * local partial sums are the sanctioned accumulation pattern.
 */
void
checkParallelForWrites(const LexedFile &f, std::vector<Violation> &out)
{
    const auto &t = f.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident || t[i].text != "parallelFor" ||
            !nextIs(t, i, "("))
            continue;
        // Find the lambda capture: a '[' in argument position.
        size_t cap = i + 2;
        while (cap < t.size() &&
               !(t[cap].text == "[" && t[cap].kind == TokKind::Punct &&
                 t[cap - 1].kind == TokKind::Punct &&
                 (t[cap - 1].text == "(" || t[cap - 1].text == ",")))
            ++cap;
        if (cap >= t.size())
            continue;
        const size_t cap_end = matchBracket(t, cap, "[", "]");
        size_t body = cap_end + 1;
        while (body < t.size() && t[body].text != "{")
            ++body;
        const size_t body_end = matchBracket(t, body, "{", "}");
        if (body_end >= t.size())
            continue;

        // Params + block-locals count as chunk-local.
        const std::set<std::string> locals =
            collectLocalDecls(t, cap_end + 1, body_end);

        for (size_t k = body + 1; k < body_end; ++k) {
            std::string target;
            if (isCompoundAssign(t[k])) {
                if (t[k - 1].kind == TokKind::Ident)
                    target = t[k - 1].text;
                else
                    continue; // indexed / parenthesized store
            } else if (t[k].kind == TokKind::Punct &&
                       (t[k].text == "++" || t[k].text == "--")) {
                if (t[k - 1].kind == TokKind::Ident)
                    target = t[k - 1].text;
                else if (t[k + 1].kind == TokKind::Ident)
                    target = t[k + 1].text;
                else
                    continue;
            } else {
                continue;
            }
            if (locals.count(target) || isMemberAccess(t, k - 1))
                continue;
            addViolation(out, f, t[k].line, "THR01",
                         "write to shared '" + target +
                             "' inside parallelFor body (use "
                             "parallelReduceSum or chunk-local "
                             "state)");
        }
        i = body_end;
    }
}

/**
 * HYG03: a `float` (not double) scalar that receives `+=`/`-=`
 * inside a loop accumulates rounding error linearly and, worse,
 * makes the result depend on summation order. The project-wide rule
 * is: accumulate in double, convert once.
 */
void
checkFloatAccumulators(const LexedFile &f, std::vector<Violation> &out)
{
    const auto &t = f.tokens;
    // Pass 1: scalar float/double declarations, in token order. The
    // accumulator check below resolves a name to its *nearest
    // preceding* declaration, which approximates lexical scoping
    // well enough to keep same-named variables in sibling functions
    // from cross-contaminating.
    std::map<std::string, std::vector<std::pair<size_t, bool>>> decls;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident ||
            (t[i].text != "float" && t[i].text != "double"))
            continue;
        const bool is_float = t[i].text == "float";
        size_t j = i + 1;
        bool pointer = false;
        while (j < t.size() && t[j].kind == TokKind::Punct &&
               (t[j].text == "*" || t[j].text == "&")) {
            pointer = pointer || t[j].text == "*";
            ++j;
        }
        if (!pointer && j < t.size() && t[j].kind == TokKind::Ident &&
            (nextIs(t, j, "=") || nextIs(t, j, ";")))
            decls[t[j].text].emplace_back(j, is_float);
    }
    if (decls.empty())
        return;

    // Pass 2: loop body ranges (brace-delimited for/while bodies and
    // single-statement bodies up to ';').
    std::vector<std::pair<size_t, size_t>> loops;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident ||
            (t[i].text != "for" && t[i].text != "while") ||
            !nextIs(t, i, "("))
            continue;
        const size_t close = matchBracket(t, i + 1, "(", ")");
        if (close >= t.size())
            continue;
        size_t body_begin = close + 1;
        size_t body_end;
        if (body_begin < t.size() && t[body_begin].text == "{") {
            body_end = matchBracket(t, body_begin, "{", "}");
        } else {
            body_end = body_begin;
            while (body_end < t.size() && t[body_end].text != ";")
                ++body_end;
        }
        loops.emplace_back(body_begin, body_end);
    }

    // Pass 3: += / -= on a float-declared var inside any loop range.
    for (size_t k = 0; k < t.size(); ++k) {
        if (!(t[k].kind == TokKind::Punct &&
              (t[k].text == "+=" || t[k].text == "-=")))
            continue;
        if (k == 0 || t[k - 1].kind != TokKind::Ident)
            continue;
        const auto d = decls.find(t[k - 1].text);
        if (d == decls.end())
            continue;
        // Nearest declaration before this use decides the type.
        bool declared_float = false;
        bool found = false;
        for (const auto &[idx, is_float] : d->second) {
            if (idx < k) {
                declared_float = is_float;
                found = true;
            }
        }
        if (!found || !declared_float)
            continue;
        if (isMemberAccess(t, k - 1))
            continue;
        const bool in_loop =
            std::any_of(loops.begin(), loops.end(),
                        [k](const std::pair<size_t, size_t> &r) {
                            return k > r.first && k < r.second;
                        });
        if (in_loop) {
            addViolation(out, f, t[k].line, "HYG03",
                         "float accumulator '" + t[k - 1].text +
                             "' in loop (accumulate in double)");
        }
    }
}

/**
 * COM01: compound assignment or increment of an identifier whose
 * name contains "bytes" is hand-maintained byte bookkeeping, which
 * the comm transport layer made obsolete: components fold the
 * CommEvents the transport returns (CommVolume::add) so every
 * reported byte is provably derived from the event stream. Unlike
 * THR01, member-access targets *are* flagged — `stats.fooBytes += x`
 * is exactly the pattern the rule exists to catch. The transport
 * layer and the trace replayer are exempt by path; the few
 * sanctioned view-fold sites carry `optlint:allow(COM01)` with a
 * justification.
 */
void
checkByteCounterWrites(const LexedFile &f, std::vector<Violation> &out)
{
    if (pathComExempt(f.path))
        return;
    const auto &t = f.tokens;
    for (size_t k = 0; k < t.size(); ++k) {
        std::string target;
        if (isCompoundAssign(t[k])) {
            if (k > 0 && t[k - 1].kind == TokKind::Ident)
                target = t[k - 1].text;
        } else if (t[k].kind == TokKind::Punct &&
                   (t[k].text == "++" || t[k].text == "--")) {
            if (k > 0 && t[k - 1].kind == TokKind::Ident)
                target = t[k - 1].text;
            else if (k + 1 < t.size() &&
                     t[k + 1].kind == TokKind::Ident)
                target = t[k + 1].text;
        }
        if (target.empty())
            continue;
        std::string lower = target;
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(std::tolower(c));
                       });
        if (lower.find("bytes") == std::string::npos)
            continue;
        addViolation(out, f, t[k].line, "COM01",
                     "byte counter '" + target +
                         "' mutated outside the comm transport "
                         "layer (fold transport CommEvents via "
                         "CommVolume instead)");
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".hh" ||
           ext == ".h" || ext == ".hpp";
}

void
collectFiles(const fs::path &root, std::vector<fs::path> &out)
{
    if (fs::is_regular_file(root)) {
        if (isSourceFile(root))
            out.push_back(root);
        return;
    }
    if (!fs::is_directory(root))
        return;
    for (const auto &entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && isSourceFile(entry.path()))
            out.push_back(entry.path());
    }
}

std::string
displayPath(const fs::path &p, const fs::path &root)
{
    std::error_code ec;
    const fs::path rel = fs::relative(p, root, ec);
    if (ec || rel.empty() || rel.native()[0] == '.')
        return p.generic_string();
    return rel.generic_string();
}

void
runRules(const LexedFile &f, std::vector<Violation> &out)
{
    checkTokenBans(f, out);
    checkIncludeGuard(f, out);
    checkParallelForWrites(f, out);
    checkFloatAccumulators(f, out);
    checkByteCounterWrites(f, out);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

void
printHuman(const std::vector<Violation> &violations)
{
    for (const Violation &v : violations) {
        std::fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(),
                     v.line, v.rule.c_str(), v.message.c_str());
    }
    std::fprintf(stderr, "optlint: %zu violation(s)\n",
                 violations.size());
}

void
printJson(const std::vector<Violation> &violations)
{
    std::printf("{\n  \"violations\": [");
    for (size_t i = 0; i < violations.size(); ++i) {
        const Violation &v = violations[i];
        std::printf("%s\n    {\"file\": \"%s\", \"line\": %d, "
                    "\"rule\": \"%s\", \"message\": \"%s\"}",
                    i ? "," : "", jsonEscape(v.file).c_str(), v.line,
                    v.rule.c_str(), jsonEscape(v.message).c_str());
    }
    std::printf("\n  ],\n  \"count\": %zu\n}\n", violations.size());
}

/**
 * Self-test: every `optlint:expect(RULE)` annotation in the fixture
 * set must be flagged, and nothing else may be. This is the rule
 * engine's own regression suite (wired into ctest).
 */
int
runSelfTest(const fs::path &fixture_dir)
{
    std::vector<fs::path> files;
    collectFiles(fixture_dir, files);
    if (files.empty()) {
        std::fprintf(stderr, "optlint: no fixtures under %s\n",
                     fixture_dir.string().c_str());
        return 2;
    }
    std::sort(files.begin(), files.end());

    int mismatches = 0;
    size_t expected_total = 0;
    for (const fs::path &file : files) {
        LexedFile lexed;
        if (!lexFile(file, displayPath(file, fixture_dir), lexed)) {
            std::fprintf(stderr, "optlint: cannot read %s\n",
                         file.string().c_str());
            return 2;
        }
        std::vector<Violation> found;
        runRules(lexed, found);

        std::set<std::pair<int, std::string>> got, want;
        for (const Violation &v : found)
            got.insert({v.line, v.rule});
        for (const auto &[line, rules] : lexed.expect) {
            for (const std::string &r : rules)
                want.insert({line, r});
        }
        expected_total += want.size();
        for (const auto &w : want) {
            if (!got.count(w)) {
                std::fprintf(stderr, "MISSED   %s:%d %s\n",
                             lexed.path.c_str(), w.first,
                             w.second.c_str());
                ++mismatches;
            }
        }
        for (const auto &g : got) {
            if (!want.count(g)) {
                std::fprintf(stderr, "SPURIOUS %s:%d %s\n",
                             lexed.path.c_str(), g.first,
                             g.second.c_str());
                ++mismatches;
            }
        }
    }
    std::fprintf(stderr,
                 "optlint self-test: %zu expected findings across %zu "
                 "fixture files, %d mismatch(es)\n",
                 expected_total, files.size(), mismatches);
    return mismatches == 0 ? 0 : 1;
}

} // namespace

} // namespace optlint

int
main(int argc, char **argv)
{
    using namespace optlint;

    bool json = false;
    fs::path root = fs::current_path();
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--self-test" && i + 1 < argc) {
            return runSelfTest(argv[++i]);
        } else if (arg == "--list-rules") {
            for (const RuleInfo &r : kRules)
                std::printf("%s  %s\n", r.id, r.summary);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: optlint [--json] [--root DIR] PATH...\n"
                "       optlint --self-test FIXTURE_DIR\n"
                "       optlint --list-rules\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "optlint: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        std::fprintf(stderr,
                     "optlint: no paths given (try --help)\n");
        return 2;
    }

    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        const fs::path abs =
            fs::path(p).is_absolute() ? fs::path(p) : root / p;
        if (!fs::exists(abs)) {
            std::fprintf(stderr, "optlint: path not found: %s\n",
                         abs.string().c_str());
            return 2;
        }
        collectFiles(abs, files);
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Violation> violations;
    for (const fs::path &file : files) {
        LexedFile lexed;
        if (!lexFile(file, displayPath(file, root), lexed)) {
            std::fprintf(stderr, "optlint: cannot read %s\n",
                         file.string().c_str());
            return 2;
        }
        runRules(lexed, violations);
    }

    if (json)
        printJson(violations);
    else if (!violations.empty())
        printHuman(violations);
    else
        std::fprintf(stderr, "optlint: %zu file(s) clean\n",
                     files.size());
    return violations.empty() ? 0 : 1;
}
