#include "lexer.hh"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

namespace optlint
{

namespace
{

/**
 * Parse `optlint:allow(A,B)` / `optlint:expect(A)` / `optlint:hot`
 * / `optlint:coldalloc` out of a comment.
 */
void
parseAnnotations(LexedFile &out, const std::string &comment, int line,
                 bool own_line)
{
    static const struct
    {
        const char *tag;
        bool is_allow;
    } kTags[] = {{"optlint:allow(", true}, {"optlint:expect(", false}};

    for (const auto &tag : kTags) {
        size_t pos = comment.find(tag.tag);
        while (pos != std::string::npos) {
            const size_t open = pos + std::strlen(tag.tag);
            const size_t close = comment.find(')', open);
            if (close == std::string::npos)
                break;
            std::stringstream list(comment.substr(open, close - open));
            std::string rule;
            while (std::getline(list, rule, ',')) {
                rule.erase(std::remove_if(rule.begin(), rule.end(),
                                          [](unsigned char c) {
                                              return std::isspace(c);
                                          }),
                           rule.end());
                if (rule.empty())
                    continue;
                auto &dest = tag.is_allow ? out.allow : out.expect;
                dest[line].insert(rule);
                // A suppression alone on its line covers the next
                // line too (the usual place for long justifications).
                // Expectations stay line-exact so the self-test
                // cross-check is unambiguous.
                if (own_line && tag.is_allow)
                    dest[line + 1].insert(rule);
                if (tag.is_allow)
                    out.allowRecords.push_back({line, rule, own_line});
            }
            pos = comment.find(tag.tag, close);
        }
    }

    // `optlint:hot` extends the ALLOC01 hot-path set to the function
    // defined on this line (or the next, for own-line comments).
    size_t hot = comment.find("optlint:hot");
    if (hot != std::string::npos) {
        out.hotLines.insert(line);
        if (own_line)
            out.hotLines.insert(line + 1);
    }

    // `optlint:coldfn` declares the function defined on this line
    // (or the next, for own-line comments) setup-/instrumentation-
    // only: its allocations never fold into hot callers.
    size_t coldfn = comment.find("optlint:coldfn");
    if (coldfn != std::string::npos) {
        out.coldfnLines.insert(line);
        if (own_line)
            out.coldfnLines.insert(line + 1);
    }

    // `optlint:coldalloc` declares the allocation on this line (or
    // the following statement, for own-line comments) a warmup-only
    // capacity ratchet that the steady state never executes.
    size_t cold = comment.find("optlint:coldalloc");
    if (cold != std::string::npos) {
        out.coldallocLines.insert(line);
        if (own_line) {
            for (int span = 1; span <= 3; ++span)
                out.coldallocLines.insert(line + span);
        }
    }
}

} // namespace

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
lexFile(const fs::path &file, const std::string &display,
        LexedFile &out)
{
    std::ifstream in(file, std::ios::binary);
    if (!in)
        return false;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string src = buffer.str();

    out.path = display;
    const std::string ext = file.extension().string();
    out.isHeader = ext == ".hh" || ext == ".h" || ext == ".hpp";

    const size_t n = src.size();
    size_t i = 0;
    int line = 1;
    bool line_has_code = false;

    // Multi-char punctuators, longest first.
    static const char *kPunct3[] = {"<<=", ">>=", "...", "->*"};
    static const char *kPunct2[] = {"+=", "-=", "*=", "/=", "%=",
                                    "&=", "|=", "^=", "++", "--",
                                    "::", "->", "<<", ">>", "<=",
                                    ">=", "==", "!=", "&&", "||"};

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            line_has_code = false;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            const size_t eol = src.find('\n', i);
            const size_t end = eol == std::string::npos ? n : eol;
            parseAnnotations(out, src.substr(i, end - i), line,
                             !line_has_code);
            i = end;
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const size_t close = src.find("*/", i + 2);
            const size_t end =
                close == std::string::npos ? n : close + 2;
            parseAnnotations(out, src.substr(i, end - i), line,
                             !line_has_code);
            line += static_cast<int>(
                std::count(src.begin() + static_cast<long>(i),
                           src.begin() + static_cast<long>(end),
                           '\n'));
            i = end;
            continue;
        }
        // Preprocessor directive: '#' as first code on the line.
        if (c == '#' && !line_has_code) {
            PpLine pp;
            pp.line = line;
            size_t j = i;
            while (j < n) {
                if (src[j] == '\n') {
                    if (!pp.text.empty() && pp.text.back() == '\\') {
                        pp.text.pop_back();
                        ++line;
                        ++j;
                        continue;
                    }
                    break;
                }
                pp.text.push_back(src[j]);
                ++j;
            }
            out.pp.push_back(std::move(pp));
            i = j;
            continue;
        }
        line_has_code = true;
        // String / char literal (escape-aware; raw strings are
        // handled well enough by the escape rule for this codebase).
        if (c == '"' || c == '\'') {
            const char quote = c;
            size_t j = i + 1;
            while (j < n && src[j] != quote) {
                if (src[j] == '\\')
                    ++j;
                ++j;
            }
            out.tokens.push_back({TokKind::String, "", line});
            i = j < n ? j + 1 : n;
            continue;
        }
        // Identifier / keyword.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t j = i;
            while (j < n && isIdentChar(src[j]))
                ++j;
            out.tokens.push_back(
                {TokKind::Ident, src.substr(i, j - i), line});
            i = j;
            continue;
        }
        // Number (digits plus the usual suffix soup).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t j = i;
            while (j < n && (isIdentChar(src[j]) || src[j] == '.' ||
                             ((src[j] == '+' || src[j] == '-') &&
                              (src[j - 1] == 'e' || src[j - 1] == 'E'))))
                ++j;
            out.tokens.push_back({TokKind::Number, "", line});
            i = j;
            continue;
        }
        // Punctuation, longest match first.
        auto tryPunct = [&](const char *const *table, size_t count,
                            size_t len) {
            for (size_t t = 0; t < count; ++t) {
                if (i + len <= n &&
                    src.compare(i, len, table[t]) == 0) {
                    out.tokens.push_back(
                        {TokKind::Punct, table[t], line});
                    i += len;
                    return true;
                }
            }
            return false;
        };
        if (tryPunct(kPunct3, std::size(kPunct3), 3))
            continue;
        if (tryPunct(kPunct2, std::size(kPunct2), 2))
            continue;
        out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return true;
}

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".hh" ||
           ext == ".h" || ext == ".hpp";
}

void
collectFiles(const fs::path &root, std::vector<fs::path> &out)
{
    if (fs::is_regular_file(root)) {
        if (isSourceFile(root))
            out.push_back(root);
        return;
    }
    if (!fs::is_directory(root))
        return;
    for (const auto &entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && isSourceFile(entry.path()))
            out.push_back(entry.path());
    }
}

std::string
displayPath(const fs::path &p, const fs::path &root)
{
    std::error_code ec;
    const fs::path rel = fs::relative(p, root, ec);
    if (ec || rel.empty() || rel.native()[0] == '.')
        return p.generic_string();
    return rel.generic_string();
}

bool
isMemberAccess(const std::vector<Token> &t, size_t i)
{
    return i > 0 && t[i - 1].kind == TokKind::Punct &&
           (t[i - 1].text == "." || t[i - 1].text == "->");
}

bool
nextIs(const std::vector<Token> &t, size_t i, const char *text)
{
    return i + 1 < t.size() && t[i + 1].text == text;
}

bool
isTypeKeyword(const std::string &s)
{
    static const std::set<std::string> kTypes = {
        "float",    "double",   "int",      "long",     "short",
        "unsigned", "signed",   "bool",     "char",     "auto",
        "size_t",   "ssize_t",  "int8_t",   "int16_t",  "int32_t",
        "int64_t",  "uint8_t",  "uint16_t", "uint32_t", "uint64_t",
        "intptr_t", "uintptr_t", "ptrdiff_t"};
    return kTypes.count(s) != 0;
}

bool
looksLikeTypeName(const std::string &s)
{
    return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
}

bool
isStatementBoundary(const std::vector<Token> &t, size_t i)
{
    if (i == 0)
        return true;
    const Token &p = t[i - 1];
    return p.kind == TokKind::Punct &&
           (p.text == ";" || p.text == "{" || p.text == "}" ||
            p.text == "(" || p.text == ",");
}

bool
isCompoundAssign(const Token &tok)
{
    static const std::set<std::string> kOps = {
        "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
    return tok.kind == TokKind::Punct && kOps.count(tok.text) != 0;
}

size_t
matchBracket(const std::vector<Token> &t, size_t open,
             const char *open_text, const char *close_text)
{
    int depth = 0;
    for (size_t i = open; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Punct)
            continue;
        if (t[i].text == open_text)
            ++depth;
        else if (t[i].text == close_text && --depth == 0)
            return i;
    }
    return t.size();
}

size_t
skipAngles(const std::vector<Token> &t, size_t i, size_t end)
{
    int depth = 0;
    size_t j = i;
    while (j < end) {
        if (t[j].kind == TokKind::Punct) {
            if (t[j].text == "<") {
                ++depth;
            } else if (t[j].text == ">") {
                if (--depth == 0)
                    return j + 1;
            } else if (t[j].text == ">>") {
                depth -= 2;
                if (depth <= 0)
                    return j + 1;
            } else if (t[j].text == ";" || t[j].text == "{") {
                return i; // not a template argument list after all
            }
        }
        ++j;
    }
    return i;
}

std::set<std::string>
collectLocalDecls(const std::vector<Token> &t, size_t begin, size_t end)
{
    std::set<std::string> locals;
    for (size_t i = begin; i < end; ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const bool type_start =
            isTypeKeyword(t[i].text) || looksLikeTypeName(t[i].text) ||
            t[i].text == "const" || t[i].text == "constexpr" ||
            (t[i].text == "std" && nextIs(t, i, "::"));
        if (!type_start || !isStatementBoundary(t, i))
            continue;
        // Skip over the (possibly multi-keyword, possibly qualified,
        // possibly templated) type and cv qualifiers: `const unsigned
        // long long x`, `Tensor &q`, `std::function<void()> fn`.
        // Note: `static T x` never reaches here with `static` as the
        // boundary token, so function-local statics are deliberately
        // NOT collected — they are shared state, not locals.
        size_t j = i;
        bool pointer = false;
        while (j < end) {
            if (t[j].kind == TokKind::Ident &&
                (isTypeKeyword(t[j].text) || t[j].text == "const" ||
                 t[j].text == "constexpr" ||
                 looksLikeTypeName(t[j].text) || t[j].text == "std" ||
                 (j > begin && t[j - 1].kind == TokKind::Punct &&
                  t[j - 1].text == "::"))) {
                ++j;
                continue;
            }
            if (t[j].kind == TokKind::Punct) {
                if (t[j].text == "*" || t[j].text == "&" ||
                    t[j].text == "::") {
                    pointer = pointer || t[j].text == "*";
                    ++j;
                    continue;
                }
                if (t[j].text == "<") {
                    const size_t after = skipAngles(t, j, end);
                    if (after != j) {
                        j = after;
                        continue;
                    }
                }
            }
            break;
        }
        if (j >= end || t[j].kind != TokKind::Ident)
            continue;
        // The declarator must be followed by an init/terminator.
        if (!(nextIs(t, j, "=") || nextIs(t, j, ";") ||
              nextIs(t, j, ",") || nextIs(t, j, "(") ||
              nextIs(t, j, "[") || nextIs(t, j, "{") ||
              nextIs(t, j, ")") || nextIs(t, j, ":")))
            continue;
        if (!pointer)
            locals.insert(t[j].text);
        i = j;
    }
    return locals;
}

} // namespace optlint
