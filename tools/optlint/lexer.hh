/**
 * @file
 * optlint lexing layer: tokens, annotations, and the shared
 * token-pattern helpers every rule builds on.
 *
 * The lexer strips comments/strings/preprocessor lines into a flat
 * token stream with line numbers, and captures the `optlint:allow`,
 * `optlint:expect`, `optlint:hot`, and `optlint:coldalloc`
 * annotations out of band. It is
 * deliberately not a conforming C++ lexer — just enough structure
 * for pattern rules and the lightweight IR in ir.hh.
 */

#ifndef OPTLINT_LEXER_HH
#define OPTLINT_LEXER_HH

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace optlint
{

namespace fs = std::filesystem;

/** Token kinds the rules care about. */
enum class TokKind
{
    Ident,
    Number,
    String,
    Punct,
};

struct Token
{
    TokKind kind;
    std::string text;
    int line = 0;
};

/** A preprocessor directive (continuations joined, comments kept). */
struct PpLine
{
    int line = 0;
    std::string text;
};

/**
 * One `optlint:allow(RULE)` annotation as written: the line it sits
 * on and whether it was alone on its line (in which case it also
 * covers the next line). Kept separately from the flattened `allow`
 * map so `--audit-suppressions` can reason about the annotation as
 * the author wrote it, not the lines it expands to.
 */
struct AllowRecord
{
    int line = 0;
    std::string rule;
    bool ownLine = false;
};

/**
 * A lexed translation unit: token stream, preprocessor directives,
 * and the per-line annotations.
 */
struct LexedFile
{
    std::string path;    // display path (relative to --root)
    bool isHeader = false;
    std::vector<Token> tokens;
    std::vector<PpLine> pp;
    std::map<int, std::set<std::string>> allow;
    std::map<int, std::set<std::string>> expect;
    std::vector<AllowRecord> allowRecords;
    /** Lines covered by an `optlint:hot` annotation (the annotation
     * line itself plus, for own-line comments, the next line). */
    std::set<int> hotLines;
    /**
     * Lines covered by an `optlint:coldfn` annotation (same window
     * as hotLines). A function whose definition header falls on a
     * covered line is setup-, warmup-, or instrumentation-only: its
     * allocation effects are declared off the steady-state path and
     * are not folded into hot callers by ALLOC01 propagation.
     */
    std::set<int> coldfnLines;
    /**
     * Lines covered by an `optlint:coldalloc` annotation: the
     * annotation line plus, for own-line comments, the next three
     * lines (justifications and ratchet statements often wrap). Allocation
     * facts on covered lines are warmup-only by declaration and are
     * not recorded as direct allocation effects, so ALLOC01 sees
     * through capacity ratchets that the steady state never hits.
     */
    std::set<int> coldallocLines;
};

bool lexFile(const fs::path &file, const std::string &display,
             LexedFile &out);

bool isSourceFile(const fs::path &p);
void collectFiles(const fs::path &root, std::vector<fs::path> &out);
std::string displayPath(const fs::path &p, const fs::path &root);

// ---------------------------------------------------------------
// Token-pattern helpers shared by the rule engine and the IR
// builder.
// ---------------------------------------------------------------

bool isIdentChar(char c);
bool isMemberAccess(const std::vector<Token> &t, size_t i);
bool nextIs(const std::vector<Token> &t, size_t i, const char *text);
bool isTypeKeyword(const std::string &s);
bool looksLikeTypeName(const std::string &s);
bool isStatementBoundary(const std::vector<Token> &t, size_t i);
bool isCompoundAssign(const Token &tok);

/** Index of the matching closer for the opener at t[open]. */
size_t matchBracket(const std::vector<Token> &t, size_t open,
                    const char *open_text, const char *close_text);

/**
 * Skip a balanced template-argument list starting at t[i] == "<".
 * Returns the index one past the closing ">" (handles ">>" closing
 * two levels). Returns `i` unchanged when the list never closes
 * before @p end or a `;`/`{` proves it was a comparison after all.
 */
size_t skipAngles(const std::vector<Token> &t, size_t i, size_t end);

/**
 * Collect identifiers declared in tokens [begin, end): lambda
 * parameters and block-local variables. Pointer declarators are
 * excluded on purpose — `float *p` makes p chunk-local but *p is
 * not, and the write through it is what the caller wants to
 * inspect. Function-local `static` declarations are excluded too:
 * a static local is shared across every thread that enters the
 * function, which is exactly the distinction the effect rules need.
 */
std::set<std::string> collectLocalDecls(const std::vector<Token> &t,
                                        size_t begin, size_t end);

} // namespace optlint

#endif // OPTLINT_LEXER_HH
