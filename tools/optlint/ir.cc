#include "ir.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace optlint
{

namespace
{

/** C++ keywords that can precede `(` without being a call or def. */
bool
isKeyword(const std::string &s)
{
    static const std::set<std::string> kKeywords = {
        "if",       "for",      "while",    "switch",   "return",
        "sizeof",   "catch",    "new",      "delete",   "throw",
        "case",     "do",       "else",     "goto",     "alignof",
        "decltype", "typeid",   "noexcept", "alignas",  "operator",
        "static_assert",        "co_await", "co_return", "co_yield",
        "defined",  "assert",   "static_cast",
        "dynamic_cast",         "reinterpret_cast",     "const_cast"};
    return kKeywords.count(s) != 0;
}

/**
 * Call edges never created: the deterministic parallel primitives
 * (their lambda bodies are analyzed inline as part of the enclosing
 * function / as parallel sites) and Meyers-singleton accessors.
 */
bool
isIgnoredCallee(const std::string &s)
{
    static const std::set<std::string> kIgnored = {
        "parallelFor", "parallelReduceSum", "submit", "instance"};
    return kIgnored.count(s) != 0;
}

/** Functions from the C/C++ runtime known to allocate. */
bool
isAllocatingLibCall(const std::string &s)
{
    static const std::set<std::string> kAlloc = {
        "malloc",        "calloc",      "realloc",
        "strdup",        "aligned_alloc", "posix_memalign",
        "make_unique",   "make_shared", "to_string"};
    return kAlloc.count(s) != 0;
}

/** Member verbs on standard containers that (may) allocate. */
bool
isAllocatingMemberVerb(const std::string &s)
{
    static const std::set<std::string> kVerbs = {
        "push_back", "emplace_back", "emplace", "resize",
        "reserve",   "insert",       "append",  "substr"};
    return kVerbs.count(s) != 0;
}

/**
 * Types whose by-value construction owns heap storage. Tensor is
 * deliberately absent since the workspace-arena memory model: its
 * storage is drawn from the recycling arenas on the step path, and
 * the steady-state heap contract is enforced at runtime by the
 * alloc_gate test rather than syntactically.
 */
bool
isOwningContainerType(const std::string &s)
{
    static const std::set<std::string> kTypes = {
        "vector",       "string",        "map",
        "set",          "multimap",      "multiset",
        "deque",        "list",          "stringstream",
        "ostringstream", "istringstream"};
    return kTypes.count(s) != 0;
}

/** Tokens whose presence marks a body as lock/atomic synchronized. */
bool
isSyncMarker(const std::string &s)
{
    static const std::set<std::string> kSync = {
        "lock_guard",  "unique_lock", "scoped_lock",
        "shared_lock", "atomic",      "mutex",
        "fetch_add",   "fetch_sub",   "condition_variable",
        "call_once",   "compare_exchange_strong",
        "compare_exchange_weak"};
    return kSync.count(s) != 0;
}

bool
endsWithUnderscore(const std::string &s)
{
    return !s.empty() && s.back() == '_';
}

/**
 * Parse the parameter list in t[(open, close)): names and by-ref /
 * pointer flags, in declaration order. Unnamed parameters get "".
 */
void
parseParams(const std::vector<Token> &t, size_t open, size_t close,
            std::vector<std::string> &names,
            std::vector<bool> &by_ref)
{
    size_t begin = open + 1;
    if (begin >= close)
        return;
    int paren = 0, brace = 0, bracket = 0, angle = 0;
    auto flush = [&](size_t b, size_t e) {
        if (b >= e)
            return;
        bool ref = false;
        size_t eq = e;
        for (size_t k = b; k < e; ++k) {
            if (t[k].kind != TokKind::Punct)
                continue;
            if (t[k].text == "&" || t[k].text == "&&" ||
                t[k].text == "*")
                ref = true;
            else if (t[k].text == "=" && eq == e)
                eq = k;
        }
        // The declarator name is the last identifier before any
        // default-argument `=`, excluding bare type keywords
        // (unnamed parameters like `int64_t`).
        std::string name;
        for (size_t k = b; k < eq; ++k) {
            if (t[k].kind == TokKind::Ident)
                name = t[k].text;
        }
        if (isTypeKeyword(name) || name == "const" || name == "void")
            name.clear();
        names.push_back(name);
        by_ref.push_back(ref);
    };
    size_t item = begin;
    for (size_t k = begin; k < close; ++k) {
        if (t[k].kind != TokKind::Punct)
            continue;
        const std::string &p = t[k].text;
        if (p == "(")
            ++paren;
        else if (p == ")")
            --paren;
        else if (p == "{")
            ++brace;
        else if (p == "}")
            --brace;
        else if (p == "[")
            ++bracket;
        else if (p == "]")
            --bracket;
        else if (p == "<")
            ++angle;
        else if (p == ">")
            angle = angle > 0 ? angle - 1 : 0;
        else if (p == ">>")
            angle = angle > 1 ? angle - 2 : 0;
        else if (p == "," && paren == 0 && brace == 0 &&
                 bracket == 0 && angle == 0) {
            flush(item, k);
            item = k + 1;
        }
    }
    flush(item, close);
}

/**
 * Resolve the written identifier for a compound assignment or
 * increment token at t[k]. Returns "" when the target is indexed,
 * parenthesized, or otherwise not a plain identifier.
 * @param deref set when the write goes through `*ident`.
 * @param member set when the target is a member access (`x.y`).
 */
std::string
writeTarget(const std::vector<Token> &t, size_t k, bool &deref,
            bool &member)
{
    deref = false;
    member = false;
    size_t pos = 0;
    if (isCompoundAssign(t[k])) {
        if (k == 0 || t[k - 1].kind != TokKind::Ident)
            return "";
        pos = k - 1;
    } else if (t[k].kind == TokKind::Punct &&
               (t[k].text == "++" || t[k].text == "--")) {
        if (k > 0 && t[k - 1].kind == TokKind::Ident)
            pos = k - 1;
        else if (k + 1 < t.size() && t[k + 1].kind == TokKind::Ident)
            pos = k + 1;
        else
            return "";
    } else {
        return "";
    }
    member = isMemberAccess(t, pos);
    deref = pos > 0 && t[pos - 1].kind == TokKind::Punct &&
            t[pos - 1].text == "*";
    return t[pos].text;
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    return out;
}

/**
 * Scan a function body for direct effects. `locals` must already
 * hold parameters + block-local declarations.
 */
void
scanDirectEffects(const LexedFile &f, FunctionDef &fn)
{
    const auto &t = f.tokens;
    // Allocation facts on coldalloc-annotated lines are declared
    // warmup-only (capacity ratchets) and stay out of the summary.
    const auto cold = [&f](int line) {
        return f.coldallocLines.count(line) != 0;
    };
    for (size_t k = fn.bodyBegin + 1; k < fn.bodyEnd; ++k) {
        const Token &tk = t[k];
        if (tk.kind == TokKind::Ident) {
            const std::string &id = tk.text;
            if (isSyncMarker(id))
                fn.synchronized = true;
            // Allocation markers.
            if (cold(tk.line)) {
                // fallthrough: clock/global markers still scan.
            } else if (id == "new" && !isMemberAccess(t, k)) {
                fn.direct.allocates = true;
                if (fn.direct.allocEvidence.empty())
                    fn.direct.allocEvidence =
                        "operator new at " + f.path + ":" +
                        std::to_string(tk.line);
            } else if ((isAllocatingLibCall(id) && nextIs(t, k, "(")) ||
                       (isAllocatingLibCall(id) && nextIs(t, k, "<"))) {
                fn.direct.allocates = true;
                if (fn.direct.allocEvidence.empty())
                    fn.direct.allocEvidence =
                        id + "() at " + f.path + ":" +
                        std::to_string(tk.line);
            } else if (isAllocatingMemberVerb(id) &&
                       isMemberAccess(t, k) && nextIs(t, k, "(")) {
                fn.direct.allocates = true;
                if (fn.direct.allocEvidence.empty())
                    fn.direct.allocEvidence =
                        "." + id + "() at " + f.path + ":" +
                        std::to_string(tk.line);
            } else if (isOwningContainerType(id) &&
                       !isMemberAccess(t, k)) {
                // `vector<float> buf(n)` / `std::string s;` — a
                // by-value owning-container declaration. References,
                // pointers, and nested-name uses stay silent.
                size_t j = k + 1;
                if (j < fn.bodyEnd && t[j].kind == TokKind::Punct &&
                    t[j].text == "<") {
                    const size_t after = skipAngles(t, j, fn.bodyEnd);
                    j = after == j ? fn.bodyEnd : after;
                }
                if (j < fn.bodyEnd && t[j].kind == TokKind::Ident &&
                    !isTypeKeyword(t[j].text)) {
                    fn.direct.allocates = true;
                    if (fn.direct.allocEvidence.empty())
                        fn.direct.allocEvidence =
                            id + " storage at " + f.path + ":" +
                            std::to_string(tk.line);
                }
            }
            // Clock markers.
            if ((id == "chrono" && nextIs(t, k, "::")) ||
                ((id == "clock_gettime" || id == "gettimeofday" ||
                  id == "nowNs" || id == "time") &&
                 nextIs(t, k, "(")))
                fn.direct.takesClock = true;
            continue;
        }
        // Write targets.
        bool deref = false, member = false;
        const std::string target = writeTarget(t, k, deref, member);
        if (target.empty())
            continue;
        if (toLower(target).find("bytes") != std::string::npos)
            fn.direct.touchesBytes = true;
        if (member)
            continue; // disjoint-per-object pattern, see ir.hh
        // Parameters first: they are also in `locals`, but a write
        // through a by-ref parameter is an effect the caller maps.
        const auto p = std::find(fn.paramNames.begin(),
                                 fn.paramNames.end(), target);
        if (p != fn.paramNames.end()) {
            const size_t idx = static_cast<size_t>(
                p - fn.paramNames.begin());
            if (fn.paramByRef[idx] || deref)
                fn.direct.writesParams.insert(static_cast<int>(idx));
            continue;
        }
        if (fn.locals.count(target))
            continue;
        if (endsWithUnderscore(target))
            continue; // member naming convention
        if (deref)
            continue; // pointer into unknown storage
        if (fn.inClass)
            continue; // unknown name in an in-class method: a field
        fn.direct.writesGlobal = true;
        if (fn.direct.globalEvidence.empty())
            fn.direct.globalEvidence = "writes '" + target + "' at " +
                                       f.path + ":" +
                                       std::to_string(tk.line);
    }
    // A body that takes a lock (or goes through atomics) is the
    // sanctioned synchronized pattern: its shared writes are
    // deliberate and ordered, so they do not propagate as hazards.
    if (fn.synchronized) {
        fn.direct.writesGlobal = false;
        fn.direct.globalEvidence.clear();
        fn.direct.writesParams.clear();
    }
}

/**
 * Token ranges of class/struct/union bodies (`class X ... { ... }`),
 * used to classify function definitions as in-class methods. Enum
 * bodies match too, which is harmless — no function definitions live
 * inside them.
 */
std::vector<std::pair<size_t, size_t>>
classBodyRanges(const std::vector<Token> &t)
{
    std::vector<std::pair<size_t, size_t>> ranges;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident ||
            (t[i].text != "class" && t[i].text != "struct" &&
             t[i].text != "union"))
            continue;
        // Walk past the name and any base clause to the body brace;
        // a `;` or `(` first means forward declaration / elaborated
        // type in a signature — not a definition.
        size_t j = i + 1;
        while (j < t.size() &&
               !(t[j].kind == TokKind::Punct &&
                 (t[j].text == "{" || t[j].text == ";" ||
                  t[j].text == "(" || t[j].text == ")")))
            ++j;
        if (j >= t.size() || t[j].text != "{")
            continue;
        const size_t close = matchBracket(t, j, "{", "}");
        if (close < t.size())
            ranges.emplace_back(j, close);
        // Do not skip past the body: nested classes get ranges too.
    }
    return ranges;
}

/**
 * Find function definitions. The pattern is `name (params) [const
 * noexcept override final] [-> type] [: ctor-inits] {`; bodies are
 * skipped so statement-level `keyword (...) {` sequences inside a
 * body are never re-considered.
 */
void
findFunctions(const LexedFile &f, FileIr &out)
{
    const auto &t = f.tokens;
    const std::vector<std::pair<size_t, size_t>> classes =
        classBodyRanges(t);
    for (size_t i = 1; i < t.size(); ++i) {
        if (!(t[i].kind == TokKind::Punct && t[i].text == "("))
            continue;
        if (t[i - 1].kind != TokKind::Ident)
            continue;
        const std::string &name = t[i - 1].text;
        if (isKeyword(name) || isTypeKeyword(name))
            continue;
        if (i >= 2 && t[i - 2].kind == TokKind::Punct &&
            (t[i - 2].text == "." || t[i - 2].text == "->"))
            continue; // member-access call, not a definition
        const size_t close = matchBracket(t, i, "(", ")");
        if (close >= t.size())
            continue;
        size_t j = close + 1;
        while (j < t.size() && t[j].kind == TokKind::Ident &&
               (t[j].text == "const" || t[j].text == "noexcept" ||
                t[j].text == "override" || t[j].text == "final"))
            ++j;
        if (j < t.size() && t[j].kind == TokKind::Punct &&
            t[j].text == "->") {
            // Trailing return type: skip to the body or declaration
            // terminator.
            ++j;
            while (j < t.size() &&
                   !(t[j].kind == TokKind::Punct &&
                     (t[j].text == "{" || t[j].text == ";" ||
                      t[j].text == "(")))
                ++j;
        }
        bool is_def = false;
        if (j < t.size() && t[j].kind == TokKind::Punct &&
            t[j].text == "{") {
            is_def = true;
        } else if (j < t.size() && t[j].kind == TokKind::Punct &&
                   t[j].text == ":") {
            // Constructor member-init list: `name(arg), name{arg}`
            // items separated by commas, then the body brace.
            ++j;
            while (j < t.size()) {
                while (j < t.size() &&
                       (t[j].kind == TokKind::Ident ||
                        (t[j].kind == TokKind::Punct &&
                         t[j].text == "::")))
                    ++j;
                if (j >= t.size() || t[j].kind != TokKind::Punct)
                    break;
                if (t[j].text == "(")
                    j = matchBracket(t, j, "(", ")") + 1;
                else if (t[j].text == "{")
                    j = matchBracket(t, j, "{", "}") + 1;
                else
                    break;
                if (j < t.size() && t[j].kind == TokKind::Punct &&
                    t[j].text == ",") {
                    ++j;
                    continue;
                }
                break;
            }
            is_def = j < t.size() && t[j].kind == TokKind::Punct &&
                     t[j].text == "{";
        }
        if (!is_def)
            continue;
        const size_t body_end = matchBracket(t, j, "{", "}");
        if (body_end >= t.size())
            continue;

        FunctionDef fn;
        fn.name = name;
        fn.qualName = name;
        // Re-assemble a `Foo::bar` qualified name when present.
        size_t q = i - 1;
        while (q >= 2 && t[q - 1].kind == TokKind::Punct &&
               t[q - 1].text == "::" &&
               t[q - 2].kind == TokKind::Ident) {
            fn.qualName = t[q - 2].text + "::" + fn.qualName;
            q -= 2;
        }
        fn.line = t[i - 1].line;
        fn.bodyBegin = j;
        fn.bodyEnd = body_end;
        for (const auto &[cb, ce] : classes) {
            if (j > cb && body_end < ce) {
                fn.inClass = true;
                break;
            }
        }
        parseParams(t, i, close, fn.paramNames, fn.paramByRef);
        fn.locals = collectLocalDecls(t, j + 1, body_end);
        for (const std::string &p : fn.paramNames) {
            if (!p.empty())
                fn.locals.insert(p);
        }
        scanDirectEffects(f, fn);
        fn.calls = scanCalls(t, j + 1, body_end);
        out.functions.push_back(std::move(fn));
        i = body_end;
    }
}

/**
 * Find parallel-region lambda sites: `parallelFor(...)`,
 * `parallelReduceSum(...)`, and `submit(...)` calls whose argument
 * list contains a lambda.
 */
void
findParallelSites(const LexedFile &f, FileIr &out)
{
    const auto &t = f.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident || !nextIs(t, i, "("))
            continue;
        LambdaSite::Kind kind;
        if (t[i].text == "parallelFor")
            kind = LambdaSite::Kind::ParallelFor;
        else if (t[i].text == "parallelReduceSum")
            kind = LambdaSite::Kind::ParallelReduce;
        else if (t[i].text == "submit")
            kind = LambdaSite::Kind::Submit;
        else
            continue;
        // Find the lambda capture: a '[' in argument position,
        // strictly inside this call's parentheses (a `submit(...)`
        // declaration or lambda-free call is not a site).
        const size_t call_close = matchBracket(t, i + 1, "(", ")");
        if (call_close >= t.size())
            continue;
        size_t cap = i + 2;
        while (cap < call_close &&
               !(t[cap].text == "[" && t[cap].kind == TokKind::Punct &&
                 t[cap - 1].kind == TokKind::Punct &&
                 (t[cap - 1].text == "(" || t[cap - 1].text == ",")))
            ++cap;
        if (cap >= call_close)
            continue;
        const size_t cap_end = matchBracket(t, cap, "[", "]");
        size_t body = cap_end + 1;
        while (body < call_close && t[body].text != "{")
            ++body;
        const size_t body_end = matchBracket(t, body, "{", "}");
        if (body >= call_close || body_end >= t.size())
            continue;

        LambdaSite site;
        site.kind = kind;
        site.line = t[i].line;
        site.capBegin = cap;
        site.bodyBegin = body;
        site.bodyEnd = body_end;
        for (size_t k = cap + 1; k < cap_end; ++k) {
            if (t[k].kind == TokKind::Punct && t[k].text == "&") {
                if (k + 1 < cap_end &&
                    t[k + 1].kind == TokKind::Ident)
                    site.refCaptures.insert(t[k + 1].text);
                else
                    site.byRefDefault = true;
            }
        }
        site.locals = collectLocalDecls(t, cap_end + 1, body_end);
        out.parallelSites.push_back(std::move(site));
        i = body_end;
    }
}

/** Default ALLOC01 hot-path files: the SIMD/GEMM kernel TUs. */
bool
pathIsDefaultHot(const std::string &path)
{
    static const char *kHotPaths[] = {"tensor/simd.",
                                      "tensor/simd_internal.",
                                      "tensor/gemm_kernels."};
    for (const char *p : kHotPaths) {
        if (path.find(p) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

std::vector<CallSite>
scanCalls(const std::vector<Token> &t, size_t begin, size_t end)
{
    std::vector<CallSite> out;
    for (size_t k = begin; k < end; ++k) {
        if (t[k].kind != TokKind::Ident || !nextIs(t, k, "("))
            continue;
        const std::string &name = t[k].text;
        if (isKeyword(name) || isTypeKeyword(name) ||
            isIgnoredCallee(name))
            continue;
        // `Type name(...)` is a declaration, not a call.
        if (k > 0 && t[k - 1].kind == TokKind::Ident &&
            !isKeyword(t[k - 1].text))
            continue;
        const size_t close = matchBracket(t, k + 1, "(", ")");
        if (close >= t.size() || close > end)
            continue;
        CallSite c;
        c.callee = name;
        c.isMember = isMemberAccess(t, k);
        c.line = t[k].line;
        c.tokIndex = k;
        // Collect per-argument identifier names (top-level commas).
        int paren = 0, brace = 0, bracket = 0;
        size_t item = k + 2;
        auto flush = [&](size_t b, size_t e) {
            if (b == k + 2 && e == b) // zero-arg call
                return;
            if (e == b + 1 && t[b].kind == TokKind::Ident)
                c.argIdents.push_back(t[b].text);
            else if (e == b + 2 && t[b].kind == TokKind::Punct &&
                     t[b].text == "&" &&
                     t[b + 1].kind == TokKind::Ident)
                c.argIdents.push_back(t[b + 1].text);
            else
                c.argIdents.push_back("");
        };
        for (size_t m = k + 2; m < close; ++m) {
            if (t[m].kind != TokKind::Punct)
                continue;
            const std::string &p = t[m].text;
            if (p == "(")
                ++paren;
            else if (p == ")")
                --paren;
            else if (p == "{")
                ++brace;
            else if (p == "}")
                --brace;
            else if (p == "[")
                ++bracket;
            else if (p == "]")
                --bracket;
            else if (p == "," && paren == 0 && brace == 0 &&
                     bracket == 0) {
                flush(item, m);
                item = m + 1;
            }
        }
        flush(item, close);
        out.push_back(std::move(c));
    }
    return out;
}

FileIr
buildFileIr(const LexedFile &file)
{
    FileIr ir;
    findFunctions(file, ir);
    findParallelSites(file, ir);
    return ir;
}

Program
linkProgram(const std::vector<const LexedFile *> &files,
            std::vector<FileIr> &&irs)
{
    Program p;
    p.files = files;
    for (size_t fi = 0; fi < irs.size(); ++fi) {
        const LexedFile &lf = *files[fi];
        const bool default_hot = pathIsDefaultHot(lf.path);
        for (FunctionDef &fn : irs[fi].functions) {
            fn.fileIndex = static_cast<int>(fi);
            fn.isHot = default_hot || lf.hotLines.count(fn.line) ||
                       lf.hotLines.count(fn.line - 1) ||
                       lf.hotLines.count(fn.line - 2);
            fn.isColdSetup = lf.coldfnLines.count(fn.line) ||
                             lf.coldfnLines.count(fn.line - 1) ||
                             lf.coldfnLines.count(fn.line - 2);
            fn.total = fn.direct;
            p.functions.push_back(std::move(fn));
        }
        for (LambdaSite &s : irs[fi].parallelSites) {
            s.fileIndex = static_cast<int>(fi);
            p.parallelSites.push_back(std::move(s));
        }
    }
    for (size_t i = 0; i < p.functions.size(); ++i)
        p.byName.emplace(p.functions[i].name, i);

    // Effect propagation to fixpoint. Each pass folds every resolved
    // callee's summary into the caller; the iteration count is
    // bounded by the longest acyclic call chain (cycles converge
    // because effects only ever turn on).
    bool changed = true;
    int guard = 0;
    while (changed && ++guard < 64) {
        changed = false;
        for (FunctionDef &fn : p.functions) {
            for (const CallSite &c : fn.calls) {
                auto range = p.byName.equal_range(c.callee);
                for (auto it = range.first; it != range.second;
                     ++it) {
                    const FunctionDef &g = p.functions[it->second];
                    if (&g == &fn)
                        continue;
                    if (g.total.writesGlobal && !fn.synchronized &&
                        !fn.total.writesGlobal) {
                        fn.total.writesGlobal = true;
                        fn.total.globalEvidence =
                            "via " + g.qualName + ": " +
                            g.total.globalEvidence;
                        changed = true;
                    }
                    // Allocation effects stop at coldfn boundaries:
                    // a setup-only callee allocating is precisely
                    // the declared-cold case ALLOC01 sees through.
                    if (g.total.allocates && !g.isColdSetup &&
                        !fn.total.allocates) {
                        fn.total.allocates = true;
                        fn.total.allocEvidence =
                            "via " + g.qualName + ": " +
                            g.total.allocEvidence;
                        changed = true;
                    }
                    if (g.total.takesClock &&
                        !fn.total.takesClock) {
                        fn.total.takesClock = true;
                        changed = true;
                    }
                    if (g.total.touchesBytes &&
                        !fn.total.touchesBytes) {
                        fn.total.touchesBytes = true;
                        changed = true;
                    }
                    // Map written-parameter effects through the
                    // argument identifiers at this call site.
                    for (int wp : g.total.writesParams) {
                        const size_t ai = static_cast<size_t>(wp);
                        if (ai >= c.argIdents.size())
                            continue;
                        const std::string &a = c.argIdents[ai];
                        if (a.empty() || fn.locals.count(a))
                            continue;
                        const auto pit =
                            std::find(fn.paramNames.begin(),
                                      fn.paramNames.end(), a);
                        if (pit != fn.paramNames.end()) {
                            const size_t idx = static_cast<size_t>(
                                pit - fn.paramNames.begin());
                            if (fn.paramByRef[idx] &&
                                !fn.synchronized &&
                                fn.total.writesParams
                                    .insert(static_cast<int>(idx))
                                    .second)
                                changed = true;
                            continue;
                        }
                        if (endsWithUnderscore(a) || fn.inClass)
                            continue;
                        if (!fn.synchronized &&
                            !fn.total.writesGlobal) {
                            fn.total.writesGlobal = true;
                            fn.total.globalEvidence =
                                "writes '" + a + "' via " +
                                g.qualName + "()";
                            changed = true;
                        }
                    }
                }
            }
        }
    }
    return p;
}

void
dumpProgram(const Program &program)
{
    for (const FunctionDef &fn : program.functions) {
        const LexedFile &f = program.fileOf(fn);
        std::string params;
        for (int wp : fn.total.writesParams) {
            const size_t i = static_cast<size_t>(wp);
            params += " writes-param:" +
                      (i < fn.paramNames.size() ? fn.paramNames[i]
                                                : "?");
        }
        std::string evidence;
        if (!fn.total.globalEvidence.empty())
            evidence = "  <" + fn.total.globalEvidence + ">";
        else if (!fn.total.allocEvidence.empty())
            evidence = "  <" + fn.total.allocEvidence + ">";
        std::printf(
            "%s:%d %s%s%s%s%s%s%s%s%s%s\n", f.path.c_str(),
            fn.line, fn.qualName.c_str(),
            fn.isHot ? " [hot]" : "",
            fn.isColdSetup ? " [coldfn]" : "",
            fn.synchronized ? " [sync]" : "",
            fn.total.writesGlobal ? " writes-global" : "",
            params.c_str(),
            fn.total.allocates ? " allocates" : "",
            fn.total.takesClock ? " takes-clock" : "",
            fn.total.touchesBytes ? " touches-bytes" : "",
            evidence.c_str());
    }
    std::printf("-- %zu function(s), %zu parallel site(s)\n",
                program.functions.size(),
                program.parallelSites.size());
}

} // namespace optlint
