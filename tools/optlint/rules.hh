/**
 * @file
 * optlint rule engine: the token-pattern rules carried over from
 * the single-TU analyzer plus the semantic rules that consume the
 * whole-repo IR (THR02 / LIFE01 / ALLOC01 / DET06), suppression
 * filtering, and the `--audit-suppressions` stale-allow check.
 */

#ifndef OPTLINT_RULES_HH
#define OPTLINT_RULES_HH

#include <string>
#include <vector>

#include "ir.hh"
#include "lexer.hh"

namespace optlint
{

/** One finding: a rule violated at a file:line. */
struct Violation
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

struct RuleInfo
{
    const char *id;
    const char *summary;
};

/** The rule catalogue (shared by --list-rules and SARIF output). */
extern const RuleInfo kRules[];
extern const size_t kRuleCount;

/**
 * Run every rule — token rules per file, semantic rules over the
 * linked program — and return the RAW findings, i.e. before any
 * `optlint:allow` filtering. Sorted by (file, line, rule) and
 * deduplicated.
 */
std::vector<Violation> runAllRules(const Program &program);

/** Drop findings covered by an `optlint:allow` on their line. */
std::vector<Violation>
filterSuppressed(const std::vector<Violation> &raw,
                 const Program &program);

/**
 * SUP01: `optlint:allow` annotations whose rule no longer fires on
 * any line they cover. @p raw must be unfiltered findings so a live
 * suppression can be recognized as live.
 */
std::vector<Violation>
auditSuppressions(const std::vector<Violation> &raw,
                  const Program &program);

} // namespace optlint

#endif // OPTLINT_RULES_HH
