#include "output.hh"

#include <cstdio>
#include <fstream>

namespace optlint
{

namespace
{

/** Escape for embedding in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
printHuman(const std::vector<Violation> &violations)
{
    for (const Violation &v : violations) {
        std::fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(),
                     v.line, v.rule.c_str(), v.message.c_str());
    }
    std::fprintf(stderr, "optlint: %zu violation(s)\n",
                 violations.size());
}

void
printJson(const std::vector<Violation> &violations)
{
    std::printf("{\n  \"violations\": [");
    for (size_t i = 0; i < violations.size(); ++i) {
        const Violation &v = violations[i];
        std::printf("%s\n    {\"file\": \"%s\", \"line\": %d, "
                    "\"rule\": \"%s\", \"message\": \"%s\"}",
                    i ? "," : "", jsonEscape(v.file).c_str(), v.line,
                    v.rule.c_str(), jsonEscape(v.message).c_str());
    }
    std::printf("\n  ],\n  \"count\": %zu\n}\n", violations.size());
}

bool
writeSarif(const std::vector<Violation> &violations,
           const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;

    out << "{\n"
           "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
           "  \"version\": \"2.1.0\",\n"
           "  \"runs\": [\n"
           "    {\n"
           "      \"tool\": {\n"
           "        \"driver\": {\n"
           "          \"name\": \"optlint\",\n"
           "          \"informationUri\": "
           "\"https://example.invalid/optlint\",\n"
           "          \"rules\": [";
    for (size_t i = 0; i < kRuleCount; ++i) {
        const RuleInfo &r = kRules[i];
        out << (i ? "," : "") << "\n            {\"id\": \""
            << r.id << "\", \"shortDescription\": {\"text\": \""
            << jsonEscape(r.summary) << "\"}}";
    }
    out << "\n          ]\n"
           "        }\n"
           "      },\n"
           "      \"results\": [";
    for (size_t i = 0; i < violations.size(); ++i) {
        const Violation &v = violations[i];
        out << (i ? "," : "") << "\n        {\n"
            << "          \"ruleId\": \"" << jsonEscape(v.rule)
            << "\",\n"
            << "          \"level\": \"error\",\n"
            << "          \"message\": {\"text\": \""
            << jsonEscape(v.message) << "\"},\n"
            << "          \"locations\": [\n"
            << "            {\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \""
            << jsonEscape(v.file)
            << "\"}, \"region\": {\"startLine\": " << v.line
            << "}}}\n"
            << "          ]\n"
            << "        }";
    }
    out << "\n      ]\n"
           "    }\n"
           "  ]\n"
           "}\n";
    return static_cast<bool>(out);
}

} // namespace optlint
