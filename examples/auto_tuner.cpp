/**
 * @file
 * Auto-tuner demo: the paper's Section 9.4 future work, implemented.
 * Jointly searches the selective-stage-compression fraction and the
 * PowerSGD rank, scoring speed on the paper-scale simulator and
 * quality via the reduced-gradient error on the real miniature
 * engine, then reports the Pareto frontier and the fastest setting
 * within a quality budget.
 *
 * Usage: auto_tuner [--model 8.3b|2.5b] [--max-error 0.5]
 */

#include <cstdio>

#include "core/auto_tuner.hh"
#include "core/optimus.hh"
#include "util/cli.hh"
#include "util/table_printer.hh"

using namespace optimus;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const GptModelSpec model = args.getString("model", "8.3b") == "2.5b"
                                   ? GptModelSpec::gpt2_5b()
                                   : GptModelSpec::gpt8_3b();

    MappedWorkload workload(HardwareConfig::a100Cluster(), model,
                            ParallelConfig{}, TrainingPlan{});
    QualityRunConfig quality;
    quality.pipelineStages = 4;
    quality.dataParallel = 2;

    TuneRequest request;
    request.maxGradientError = args.getDouble("max-error", 0.5);

    std::printf("auto-tuning SC fraction x rank for %s "
                "(gradient-error budget %.2f)...\n\n",
                model.name.c_str(), request.maxGradientError);
    const TuneResult result =
        autoTuneSelectiveCompression(workload, quality, request);

    TablePrinter table({"Stages", "Rank", "Speedup", "Grad error",
                        "Pareto"});
    for (const auto &c : result.candidates) {
        char stages[16];
        std::snprintf(stages, sizeof(stages), "%.0f%%",
                      c.stageFraction * 100.0);
        table.addRow({stages, std::to_string(c.rank),
                      TablePrinter::fmtPercent(c.speedup),
                      TablePrinter::fmt(c.gradientError, 3),
                      c.onFrontier ? "*" : ""});
    }
    table.print();

    if (result.foundFeasible) {
        std::printf("\nselected: %.0f%% of stages at rank %d -> "
                    "%+.2f%% speedup at gradient error %.3f\n",
                    result.best.stageFraction * 100.0,
                    result.best.rank, result.best.speedup * 100.0,
                    result.best.gradientError);
    } else {
        std::printf("\nno candidate meets the error budget; "
                    "loosen --max-error or add smaller fractions\n");
    }
    return 0;
}
