/**
 * @file
 * Compression laboratory: run every compressor in the library on
 * the same synthetic gradient matrices and compare reconstruction
 * error, payload size, and wall-clock cost of our actual kernels --
 * the experiment one runs before picking a compressor for a new
 * traffic class, mirroring the paper's Section 2.3 survey.
 *
 * Also demonstrates error feedback: the same lossy compressor's
 * *accumulated* error stays bounded once residuals are fed back.
 *
 * Usage: compression_lab [--rows N] [--cols N] [--steps N]
 */

#include <chrono>
#include <cstdio>

#include "compress/error_feedback.hh"
#include "compress/powersgd.hh"
#include "tensor/matmul.hh"
#include "util/cli.hh"
#include "util/random.hh"
#include "util/table_printer.hh"

using namespace optimus;

namespace
{

/** Synthetic "gradient": low-rank signal + noise, like real ones. */
Tensor
syntheticGradient(int64_t rows, int64_t cols, Rng &rng)
{
    Tensor a = Tensor::randn({rows, 4}, rng);
    Tensor b = Tensor::randn({4, cols}, rng);
    Tensor grad = matmul(a, b);
    Tensor noise = Tensor::randn({rows, cols}, rng, 0.0f, 0.3f);
    grad.add(noise);
    return grad;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const int64_t rows = args.getInt("rows", 256);
    const int64_t cols = args.getInt("cols", 128);
    const int steps = static_cast<int>(args.getInt("steps", 20));

    Rng rng(7);
    std::printf("compressor shoot-out on [%lld x %lld] synthetic "
                "gradients (%d steps each)\n\n",
                static_cast<long long>(rows),
                static_cast<long long>(cols), steps);

    std::vector<CompressorSpec> specs;
    for (int rank : {2, 8, 32}) {
        CompressorSpec spec;
        spec.kind = CompressorKind::PowerSgd;
        spec.rank = rank;
        specs.push_back(spec);
    }
    for (double fraction : {0.01, 0.1}) {
        CompressorSpec spec;
        spec.kind = CompressorKind::TopK;
        spec.topkFraction = fraction;
        specs.push_back(spec);
    }
    specs.push_back({CompressorKind::Ternary, 0, 0.0, 1});
    specs.push_back({CompressorKind::OneBit, 0, 0.0, 1});

    TablePrinter table({"Compressor", "Payload", "Rel. error",
                        "Rel. error (EF)", "us/msg"});
    const int64_t raw_bytes = 4 * rows * cols;
    for (const auto &spec : specs) {
        // Plain channel.
        auto plain = makeCompressor(spec);
        // Error-feedback channel: judge the error of the *sum* of
        // deliveries against the sum of inputs (what the optimizer
        // integrates).
        ErrorFeedbackCompressor ef(makeCompressor(spec));

        double err_sum = 0.0;
        Tensor input_total({rows, cols});
        Tensor ef_total({rows, cols});
        int64_t payload = 0;
        double micros = 0.0;
        for (int step = 0; step < steps; ++step) {
            Tensor grad = syntheticGradient(rows, cols, rng);
            Tensor out;
            const auto t0 = std::chrono::steady_clock::now();
            payload = plain->compress(grad, out);
            const auto t1 = std::chrono::steady_clock::now();
            micros +=
                std::chrono::duration<double, std::micro>(t1 - t0)
                    .count();
            err_sum += sub(grad, out).norm() / grad.norm();

            Tensor ef_out;
            ef.compress(grad, ef_out);
            input_total.add(grad);
            ef_total.add(ef_out);
        }
        const double ef_err =
            sub(input_total, ef_total).norm() / input_total.norm();
        char payload_str[32];
        std::snprintf(payload_str, sizeof(payload_str), "%.1f%%",
                      100.0 * payload / raw_bytes);
        table.addRow({spec.describe(), payload_str,
                      TablePrinter::fmt(err_sum / steps, 3),
                      TablePrinter::fmt(ef_err, 3),
                      TablePrinter::fmt(micros / steps, 1)});
    }
    table.print();

    std::printf(
        "\nNotes: 'Rel. error (EF)' is the error of the integrated "
        "stream with\nerror feedback -- residuals re-enter later "
        "messages, so the integral is\nfar more accurate than any "
        "single message (the LEP principle).\n");
    return 0;
}
