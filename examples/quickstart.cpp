/**
 * @file
 * Quickstart: exercise both pillars of the library in one minute.
 *
 *  1. Quality: train the miniature GPT with the real 3D-parallel
 *     engine, once without compression and once with Optimus-CC's
 *     compressed backpropagation + fused embedding sync, and show
 *     that the validation perplexity matches while inter-stage
 *     traffic shrinks.
 *
 *  2. Performance: ask the paper-scale simulator what the same
 *     techniques buy on GPT-8.3B across 128 A100s.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/optimus.hh"
#include "util/table_printer.hh"

using namespace optimus;

int
main()
{
    std::printf("Optimus-CC reproduction v%s -- quickstart\n\n",
                kVersionString);

    // ---- Pillar 1: real training, miniature scale ----
    QualityRunConfig qc;
    qc.iterations = 150; // ~10s on one CPU core
    std::printf("[1/2] training miniature GPT (D=%d, P=%d, %d iters; "
                "PPL floor %.2f)...\n",
                qc.dataParallel, qc.pipelineStages, qc.iterations,
                perplexityFloor(qc));

    TablePrinter quality({"Config", "Val PPL", "Inter-stage saved"});
    for (const auto &preset :
         {presets::baseline(), presets::cbFe()}) {
        const auto result = runQualityExperiment(qc, preset);
        quality.addRow({preset.name,
                        TablePrinter::fmt(result.finalPerplexity),
                        TablePrinter::fmtPercent(
                            result.interStageSaving())});
    }
    quality.print();

    // ---- Pillar 2: paper-scale performance model ----
    std::printf("\n[2/2] simulating GPT-8.3B on 128 A100s "
                "(TP8/DP4/PP4, 230K iterations)...\n");
    const auto rows = runPerformanceAblation(
        HardwareConfig::a100Cluster(), GptModelSpec::gpt8_3b(),
        ParallelConfig{}, TrainingPlan{}, presets::ablationLadder());

    TablePrinter perf({"Config", "Iter (s)", "Days", "Speedup"});
    for (const auto &row : rows) {
        perf.addRow({row.config,
                     TablePrinter::fmt(row.iterationSeconds),
                     TablePrinter::fmt(row.trainingDays),
                     TablePrinter::fmtPercent(row.speedup)});
    }
    perf.print();

    std::printf("\nDone. See bench/ for the per-table and per-figure "
                "reproductions.\n");
    return 0;
}
