/**
 * @file
 * Full training CLI for the miniature GPT on the synthetic corpus,
 * with every Optimus-CC knob exposed. Prints a perplexity curve and
 * (optionally) writes it to CSV.
 *
 * Examples:
 *   train_lm --iters 400
 *   train_lm --cb --fe --sc --sc-fraction 0.75 --iters 400
 *   train_lm --cb --no-lep --cb-rank 2          # Table 4 ablation
 *   train_lm --dp-compress --dp-rank 2          # naive DP
 *   train_lm --pipeline 4 --data 2 --micro-batches 8
 *   train_lm --csv curve.csv
 */

#include <cstdio>

#include "core/optimus.hh"
#include "util/cli.hh"
#include "util/csv_writer.hh"
#include "util/table_printer.hh"

using namespace optimus;

namespace
{

void
printUsage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  model/schedule:\n"
        "    --hidden N         model width (default 32)\n"
        "    --layers N         transformer blocks (default 4)\n"
        "    --pipeline N       pipeline stages (default 2)\n"
        "    --data N           data-parallel replicas (default 2)\n"
        "    --micro-batches N  micro-batches per iter (default 4)\n"
        "    --iters N          training iterations (default 300)\n"
        "    --lr X             Adam learning rate (default 5e-3)\n"
        "    --eval-every N     PPL curve cadence (default 50)\n"
        "  Optimus-CC techniques:\n"
        "    --cb               compressed backpropagation\n"
        "    --cb-rank N        CB PowerSGD rank (default 2)\n"
        "    --no-lep           disable lazy error propagation\n"
        "    --no-epilogue      compress every backward message\n"
        "    --cb-topk          top-k instead of low-rank for CB\n"
        "    --fe               fused embedding synchronization\n"
        "    --sc               selective stage compression (DP)\n"
        "    --sc-fraction X    compressed stage fraction (0.75)\n"
        "    --dp-compress      compress DP traffic on all stages\n"
        "    --dp-rank N        DP PowerSGD rank (default 2)\n"
        "  output:\n"
        "    --csv PATH         write the PPL curve as CSV\n"
        "    --zero-shot N      evaluate N zero-shot examples/task\n",
        prog);
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    if (args.has("help")) {
        printUsage(argv[0]);
        return 0;
    }

    QualityRunConfig config;
    config.model.hidden = args.getInt("hidden", 32);
    config.model.layers = args.getInt("layers", 4);
    config.pipelineStages =
        static_cast<int>(args.getInt("pipeline", 2));
    config.dataParallel = static_cast<int>(args.getInt("data", 2));
    config.microBatches =
        static_cast<int>(args.getInt("micro-batches", 4));
    config.iterations = static_cast<int>(args.getInt("iters", 300));
    config.learningRate =
        static_cast<float>(args.getDouble("lr", 5e-3));
    config.evalEvery =
        static_cast<int>(args.getInt("eval-every", 50));
    config.zeroShotExamples =
        static_cast<int>(args.getInt("zero-shot", 0));

    TechniquePreset preset;
    preset.name = "custom";
    if (args.getBool("cb")) {
        preset.cb.enabled = true;
        preset.cb.lazyErrorPropagation = !args.getBool("no-lep");
        preset.cb.epilogueOnly = !args.getBool("no-epilogue");
        preset.cb.spec.kind = args.getBool("cb-topk")
                                  ? CompressorKind::TopK
                                  : CompressorKind::PowerSgd;
        preset.cb.spec.rank =
            static_cast<int>(args.getInt("cb-rank", 2));
    }
    preset.fusedEmbeddingSync = args.getBool("fe");
    if (args.getBool("sc") || args.getBool("dp-compress")) {
        preset.dp.enabled = true;
        preset.dp.stageFraction =
            args.getBool("dp-compress")
                ? 1.0
                : args.getDouble("sc-fraction", 0.75);
        preset.dp.spec.rank =
            static_cast<int>(args.getInt("dp-rank", 2));
    }

    std::printf("training %lld-param miniature GPT "
                "(D=%d, P=%d, M=%d, %d iters; PPL floor %.2f)\n",
                static_cast<long long>(config.model.paramCount()),
                config.dataParallel, config.pipelineStages,
                config.microBatches, config.iterations,
                perplexityFloor(config));
    std::printf("techniques: CB=%s (lep=%s, epilogue=%s, %s) "
                "FE=%s SC=%s (fraction %.2f)\n",
                preset.cb.enabled ? "on" : "off",
                preset.cb.lazyErrorPropagation ? "on" : "off",
                preset.cb.epilogueOnly ? "on" : "off",
                preset.cb.spec.describe().c_str(),
                preset.fusedEmbeddingSync ? "on" : "off",
                preset.dp.enabled ? "on" : "off",
                preset.dp.stageFraction);

    const auto result = runQualityExperiment(config, preset);

    TablePrinter curve({"Iteration", "Val PPL"});
    for (const auto &[it, ppl] : result.pplCurve)
        curve.addRow({std::to_string(it), TablePrinter::fmt(ppl, 3)});
    curve.print();

    std::printf("final validation PPL: %.3f\n",
                result.finalPerplexity);
    std::printf("inter-stage traffic saved: %.1f%%  "
                "(%.2f MB -> %.2f MB per run)\n",
                result.interStageSaving() * 100.0,
                result.interStageBytesExact / 1e6,
                result.interStageBytes / 1e6);

    if (!result.zeroShot.empty()) {
        TablePrinter zs({"Task", "Accuracy"});
        for (const auto &[name, acc] : result.zeroShot)
            zs.addRow({name, TablePrinter::fmtPercent(acc)});
        zs.print();
    }

    const std::string csv_path = args.getString("csv");
    if (!csv_path.empty()) {
        CsvWriter csv(csv_path, {"iteration", "val_ppl"});
        for (const auto &[it, ppl] : result.pplCurve)
            csv.writeRow({static_cast<double>(it), ppl});
        std::printf("curve written to %s\n", csv_path.c_str());
    }
    return 0;
}
