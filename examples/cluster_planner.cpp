/**
 * @file
 * Parallel-configuration planner: given a paper-scale model and a
 * GPU budget, sweep the feasible tensor/pipeline splits (data
 * parallelism fixed, as in Fig 14) and report the projected
 * training time for the baseline and for full Optimus-CC -- the
 * workflow a practitioner would use the performance model for.
 *
 * Examples:
 *   cluster_planner                      # GPT-9.2B on 128 GPUs
 *   cluster_planner --model 175b --gpus 512
 *   cluster_planner --model 2.5b --data 8
 */

#include <cstdio>
#include <string>

#include "core/optimus.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table_printer.hh"

using namespace optimus;

namespace
{

GptModelSpec
pickModel(const std::string &name)
{
    if (name == "2.5b")
        return GptModelSpec::gpt2_5b();
    if (name == "8.3b")
        return GptModelSpec::gpt8_3b();
    if (name == "9.2b")
        return GptModelSpec::gpt9_2b();
    if (name == "39b")
        return GptModelSpec::gpt39b();
    if (name == "175b")
        return GptModelSpec::gpt175b();
    fatal("unknown model '%s' (try 2.5b, 8.3b, 9.2b, 39b, 175b)",
          name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const GptModelSpec model =
        pickModel(args.getString("model", "9.2b"));
    const int data = static_cast<int>(args.getInt("data", 4));
    const int gpus = static_cast<int>(args.getInt("gpus", 128));

    HardwareConfig hw = HardwareConfig::a100Cluster();
    hw.nodes = gpus / hw.gpusPerNode;
    TrainingPlan plan;

    std::printf("planning %s (%.1fB params) on %d GPUs, DP=%d\n\n",
                model.name.c_str(), model.paramCount() / 1e9, gpus,
                data);

    TablePrinter table({"Config", "Baseline days", "Opt-CC days",
                        "Speedup"});
    double best_days = 1e300;
    std::string best_config;
    for (int tp = hw.gpusPerNode; tp >= 1; tp /= 2) {
        const int pp = gpus / (tp * data);
        if (pp < 1 || tp * pp * data != gpus)
            continue;
        if (model.layers % pp != 0)
            continue;
        ParallelConfig parallel{tp, pp, data};
        MappedWorkload w(hw, model, parallel, plan);
        const double base =
            trainingDays(w, OptimusCcPolicy::baseline());
        const double opt = trainingDays(w, OptimusCcPolicy::cbFeSc());
        char label[32];
        std::snprintf(label, sizeof(label), "TP%d/PP%d", tp, pp);
        table.addRow({label, TablePrinter::fmt(base),
                      TablePrinter::fmt(opt),
                      TablePrinter::fmtPercent(base / opt - 1.0)});
        if (opt < best_days) {
            best_days = opt;
            best_config = label;
        }
    }
    table.print();

    if (best_config.empty()) {
        std::printf("\nno feasible TP/PP split for this GPU budget "
                    "(layer count must divide pipeline depth)\n");
        return 1;
    }
    std::printf("\nrecommended: %s with Optimus-CC "
                "(%.2f days for %lld iterations)\n",
                best_config.c_str(), best_days,
                static_cast<long long>(plan.iterations));
    return 0;
}
