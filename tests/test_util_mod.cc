/**
 * @file
 * Tests for the util module: RNG determinism and statistics, stats
 * helpers, the table printer, CSV escaping, and CLI parsing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/cli.hh"
#include "util/csv_writer.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table_printer.hh"

namespace optimus
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.nextU64() == b.nextU64())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedResetsTheStream)
{
    Rng rng(7);
    const uint64_t first = rng.nextU64();
    rng.nextU64();
    rng.seed(7);
    EXPECT_EQ(rng.nextU64(), first);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeWithoutBias)
{
    Rng rng(4);
    int counts[7] = {0};
    for (int i = 0; i < 14000; ++i)
        ++counts[rng.uniformInt(7)];
    for (int c : counts)
        EXPECT_NEAR(c, 2000, 250);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(5);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(3.0, 2.0);
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, CategoricalFollowsWeights)
{
    Rng rng(6);
    const double weights[3] = {1.0, 2.0, 7.0};
    int counts[3] = {0};
    for (int i = 0; i < 10000; ++i)
        ++counts[rng.categorical(weights, 3)];
    EXPECT_NEAR(counts[0] / 10000.0, 0.1, 0.02);
    EXPECT_NEAR(counts[1] / 10000.0, 0.2, 0.02);
    EXPECT_NEAR(counts[2] / 10000.0, 0.7, 0.02);
}

TEST(Stats, MeanStdCosine)
{
    const std::vector<float> a{1.0f, 2.0f, 3.0f, 4.0f};
    EXPECT_DOUBLE_EQ(mean(a), 2.5);
    EXPECT_NEAR(stddev(a), std::sqrt(1.25), 1e-9);

    const std::vector<float> b{2.0f, 4.0f, 6.0f, 8.0f};
    EXPECT_NEAR(cosineSimilarity(a, b), 1.0, 1e-6);

    const std::vector<float> c{-1.0f, -2.0f, -3.0f, -4.0f};
    EXPECT_NEAR(cosineSimilarity(a, c), -1.0, 1e-6);

    const std::vector<float> zero{0.0f, 0.0f, 0.0f, 0.0f};
    EXPECT_DOUBLE_EQ(cosineSimilarity(a, zero), 0.0);
}

TEST(Stats, OrthogonalVectorsHaveZeroCosine)
{
    const std::vector<float> a{1.0f, 0.0f};
    const std::vector<float> b{0.0f, 5.0f};
    EXPECT_NEAR(cosineSimilarity(a, b), 0.0, 1e-9);
}

TEST(Stats, RunningStatMatchesBatch)
{
    Rng rng(8);
    RunningStat rs;
    std::vector<float> values;
    for (int i = 0; i < 500; ++i) {
        const float x = static_cast<float>(rng.normal(1.0, 3.0));
        values.push_back(x);
        rs.add(x);
    }
    EXPECT_EQ(rs.count(), 500u);
    EXPECT_NEAR(rs.mean(), mean(values), 1e-4);
    EXPECT_NEAR(rs.stddev(), stddev(values), 1e-3);
    EXPECT_LE(rs.min(), rs.mean());
    EXPECT_GE(rs.max(), rs.mean());

    rs.reset();
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter table({"Name", "Value"});
    table.addRow({"a", "1"});
    table.addRow({"longer", "22.5"});
    const std::string out = table.render();
    // Header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // Numbers are right-aligned: "22.5" at line end.
    EXPECT_NE(out.find("22.5\n"), std::string::npos);
    // Labels left-aligned: line starts with "a" padded.
    EXPECT_NE(out.find("\na      "), std::string::npos);
}

TEST(TablePrinter, FormatHelpers)
{
    EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
    EXPECT_EQ(TablePrinter::fmtPercent(0.1234, 1), "+12.3%");
    EXPECT_EQ(TablePrinter::fmtPercent(-0.05, 0), "-5%");
}

TEST(CsvWriter, EscapesSpecialCells)
{
    const std::string path = "/tmp/optimus_test_csv.csv";
    {
        CsvWriter csv(path, {"a", "b"});
        csv.writeRow(std::vector<std::string>{"plain",
                                              "with,comma"});
        csv.writeRow(std::vector<std::string>{"with\"quote", "x"});
        csv.writeRow({1.5, 2.25});
    }
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    EXPECT_NE(content.find("a,b\n"), std::string::npos);
    EXPECT_NE(content.find("plain,\"with,comma\"\n"),
              std::string::npos);
    EXPECT_NE(content.find("\"with\"\"quote\",x\n"),
              std::string::npos);
    EXPECT_NE(content.find("1.5,2.25\n"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Cli, ParsesFlagForms)
{
    // Note: a bare `--switch` followed by a non-flag token would
    // consume it as a value (documented `--name value` form), so
    // positional arguments precede bare switches here.
    const char *argv[] = {"prog", "--alpha", "3",       "--beta=x",
                          "pos1", "--gamma", "2.5",     "--switch"};
    CliArgs args(8, argv);
    EXPECT_EQ(args.getInt("alpha"), 3);
    EXPECT_EQ(args.getString("beta"), "x");
    EXPECT_TRUE(args.getBool("switch"));
    EXPECT_DOUBLE_EQ(args.getDouble("gamma"), 2.5);
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "pos1");
    EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, DefaultsWhenAbsent)
{
    const char *argv[] = {"prog"};
    CliArgs args(1, argv);
    EXPECT_FALSE(args.has("missing"));
    EXPECT_EQ(args.getInt("missing", 9), 9);
    EXPECT_EQ(args.getString("missing", "d"), "d");
    EXPECT_FALSE(args.getBool("missing", false));
    EXPECT_TRUE(args.getBool("missing", true));
}

TEST(Cli, BooleanValueForms)
{
    const char *argv[] = {"prog", "--on=true", "--off=false",
                          "--one=1", "--zero=0"};
    CliArgs args(5, argv);
    EXPECT_TRUE(args.getBool("on"));
    EXPECT_FALSE(args.getBool("off"));
    EXPECT_TRUE(args.getBool("one"));
    EXPECT_FALSE(args.getBool("zero"));
}

TEST(Log2Histogram, BucketBoundaries)
{
    // Bucket 0 holds {0} (and clamped negatives); bucket b >= 1
    // holds [2^(b-1), 2^b - 1].
    EXPECT_EQ(Log2Histogram::bucketIndex(0), 0);
    EXPECT_EQ(Log2Histogram::bucketIndex(-5), 0);
    EXPECT_EQ(Log2Histogram::bucketIndex(1), 1);
    EXPECT_EQ(Log2Histogram::bucketIndex(2), 2);
    EXPECT_EQ(Log2Histogram::bucketIndex(3), 2);
    EXPECT_EQ(Log2Histogram::bucketIndex(4), 3);
    EXPECT_EQ(Log2Histogram::bucketIndex(1023), 10);
    EXPECT_EQ(Log2Histogram::bucketIndex(1024), 11);
    EXPECT_EQ(Log2Histogram::bucketUpperBound(0), 0);
    EXPECT_EQ(Log2Histogram::bucketUpperBound(1), 1);
    EXPECT_EQ(Log2Histogram::bucketUpperBound(11), 2047);
    // Boundaries agree: every upper bound lands in its own bucket.
    for (int b = 0; b < 20; ++b) {
        EXPECT_EQ(
            Log2Histogram::bucketIndex(
                Log2Histogram::bucketUpperBound(b)),
            b);
    }
}

TEST(Log2Histogram, CountsMinMaxAndMerge)
{
    Log2Histogram h;
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 0);
    h.add(0);
    h.add(3);
    h.add(100);
    EXPECT_EQ(h.count(), 3);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 100);
    EXPECT_EQ(h.bucketCount(Log2Histogram::bucketIndex(0)), 1);
    EXPECT_EQ(h.bucketCount(Log2Histogram::bucketIndex(3)), 1);
    EXPECT_EQ(h.bucketCount(Log2Histogram::bucketIndex(100)), 1);

    Log2Histogram other;
    other.add(3);
    other.add(5000);
    h.merge(other);
    EXPECT_EQ(h.count(), 5);
    EXPECT_EQ(h.max(), 5000);
    EXPECT_EQ(h.bucketCount(Log2Histogram::bucketIndex(3)), 2);

    h.reset();
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.max(), 0);
}

TEST(Log2Histogram, PercentileWalksBuckets)
{
    Log2Histogram h;
    EXPECT_EQ(h.percentile(50.0), 0);
    // 9 observations of 10 and one of 10000: the p50 sits in 10's
    // bucket (upper bound 15); the p99/p100 clamp to the observed
    // max rather than the tail bucket's huge upper bound.
    for (int i = 0; i < 9; ++i)
        h.add(10);
    h.add(10000);
    EXPECT_EQ(h.percentile(50.0),
              Log2Histogram::bucketUpperBound(
                  Log2Histogram::bucketIndex(10)));
    EXPECT_EQ(h.percentile(100.0), 10000);
    EXPECT_EQ(h.percentile(99.9), 10000);
    // A single observation answers every percentile with itself.
    Log2Histogram one;
    one.add(7);
    EXPECT_EQ(one.percentile(0.0), 7);
    EXPECT_EQ(one.percentile(50.0), 7);
    EXPECT_EQ(one.percentile(100.0), 7);
}

TEST(Stats, NearestRankPercentile)
{
    EXPECT_EQ(percentile({}, 50.0), 0.0);
    EXPECT_EQ(percentile({4.0}, 50.0), 4.0);
    // Nearest-rank on {1..10}: p50 -> 5, p90 -> 9, p100 -> 10.
    std::vector<double> v;
    for (int i = 10; i >= 1; --i)
        v.push_back(static_cast<double>(i));
    EXPECT_EQ(percentile(v, 50.0), 5.0);
    EXPECT_EQ(percentile(v, 90.0), 9.0);
    EXPECT_EQ(percentile(v, 100.0), 10.0);
    EXPECT_EQ(percentile(v, 0.0), 1.0);
}

} // namespace
} // namespace optimus
