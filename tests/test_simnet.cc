/**
 * @file
 * Tests for the communication cost models: alpha-beta p2p, ring
 * all-reduce closed forms, and the Eq 15/16 embedding-sync costs.
 */

#include <gtest/gtest.h>

#include "simnet/cost_model.hh"

namespace optimus
{
namespace
{

TEST(CostModel, P2pIsAlphaPlusBeta)
{
    LinkSpec link{1e9, 5e-6};
    EXPECT_DOUBLE_EQ(p2pTime(0.0, link), 5e-6);
    EXPECT_DOUBLE_EQ(p2pTime(1e9, link), 5e-6 + 1.0);
    // Double the bytes, roughly double the time.
    EXPECT_NEAR(p2pTime(2e9, link), 2.0 * p2pTime(1e9, link), 1e-5);
}

TEST(CostModel, RingTrafficClosedForm)
{
    // 2V(R-1)/R per Thakur et al.
    EXPECT_DOUBLE_EQ(ringAllReduceTraffic(100.0, 1), 0.0);
    EXPECT_DOUBLE_EQ(ringAllReduceTraffic(100.0, 2), 100.0);
    EXPECT_DOUBLE_EQ(ringAllReduceTraffic(100.0, 4), 150.0);
    // Approaches 2V as R grows.
    EXPECT_NEAR(ringAllReduceTraffic(100.0, 1000), 199.8, 0.01);
}

TEST(CostModel, RingTimeIncludesStepLatencies)
{
    LinkSpec link{1e9, 1e-3};
    // R=4: 6 steps of latency + traffic/bw.
    const double expect = 6 * 1e-3 + 150.0 / 1e9;
    EXPECT_NEAR(ringAllReduceTime(100.0, 4, link), expect, 1e-12);
    EXPECT_DOUBLE_EQ(ringAllReduceTime(100.0, 1, link), 0.0);
}

TEST(CostModel, EmbeddingSyncMatchesEq15)
{
    // C_emb = V (3D-2)/D.
    const double v = 1000.0;
    for (int d : {1, 2, 4, 8, 64}) {
        EXPECT_NEAR(embSyncTrafficBaseline(v, d),
                    v * (3.0 * d - 2.0) / d, 1e-9)
            << "D=" << d;
    }
}

TEST(CostModel, FusedEmbeddingSyncMatchesEq16)
{
    // C_fused = V (2D-1)/D.
    const double v = 1000.0;
    for (int d : {1, 2, 4, 8, 64}) {
        EXPECT_NEAR(embSyncTrafficFused(v, d),
                    v * (2.0 * d - 1.0) / d, 1e-9)
            << "D=" << d;
    }
}

TEST(CostModel, FusedSavingApproachesFiftyPercent)
{
    const double v = 1.0;
    // D=4: paper quotes 42.9% improvement.
    const double saving4 = 1.0 - embSyncTrafficFused(v, 4) /
                                     embSyncTrafficBaseline(v, 4);
    EXPECT_NEAR(saving4, 0.30, 0.005); // traffic saving at D=4

    // The *time improvement* quoted in the paper is
    // baseline/fused - 1 = (3D-2)/(2D-1) - 1 = 42.9% at D=4.
    const double speedup4 = embSyncTrafficBaseline(v, 4) /
                                embSyncTrafficFused(v, 4) -
                            1.0;
    EXPECT_NEAR(speedup4, 3.0 / 7.0, 1e-9); // 42.86%

    // As D -> inf, baseline/fused -> 3/2 (50% improvement).
    const double speedup_inf = embSyncTrafficBaseline(v, 10000) /
                                   embSyncTrafficFused(v, 10000) -
                               1.0;
    EXPECT_NEAR(speedup_inf, 0.5, 1e-3);
}

TEST(CostModel, FusedNeverWorseThanBaseline)
{
    for (int d : {1, 2, 3, 4, 7, 16, 128}) {
        EXPECT_LE(embSyncTrafficFused(1.0, d),
                  embSyncTrafficBaseline(1.0, d) + 1e-12)
            << "D=" << d;
    }
}

} // namespace
} // namespace optimus
