/**
 * @file
 * The blocked multi-threaded GEMM against the naive reference
 * oracle: all six matmul entry points, shapes that stress the
 * blocking edges, and bitwise determinism under threading.
 */

#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/runtime.hh"
#include "tensor/matmul.hh"
#include "tensor/simd.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

using namespace optimus;

namespace
{

// Force a multi-threaded pool before its lazy construction so the
// determinism tests actually exercise pooled execution. Runs at
// static-init time, ahead of any parallelFor call.
const bool kForceThreads = [] {
    ::setenv("OPTIMUS_THREADS", "4", 0);
    return true;
}();

/** Oracle C = op(A) * op(B) via gemmReference on explicit copies. */
Tensor
oracle(const Tensor &a, const Tensor &b, bool trans_a, bool trans_b)
{
    Tensor at = trans_a ? a.transposed() : a;
    Tensor bt = trans_b ? b.transposed() : b;
    Tensor c({at.rows(), bt.cols()});
    gemmReference(c.data(), at.data(), bt.data(), at.rows(),
                  at.cols(), bt.cols(), false);
    return c;
}

/**
 * Shapes chosen to hit the blocking edge cases: degenerate 1xN and
 * Nx1, odd sizes that divide neither the MC/KC/NC blocks nor the
 * register tile, and sizes one past a block boundary.
 */
struct Shape
{
    int64_t m, k, n;
};

const Shape kShapes[] = {
    {1, 1, 1},   {1, 7, 1},    {1, 64, 300},  {300, 64, 1},
    {5, 3, 2},   {7, 13, 9},   {33, 65, 17},  {64, 256, 128},
    {65, 257, 129}, {130, 40, 70}, {16, 512, 24},
};

float
tolFor(int64_t k)
{
    // Entries are sums of k products of N(0,1) draws (magnitude
    // ~sqrt(k)); the blocked kernel reassociates across KC blocks
    // and register tiles, so allow a few ULP at that magnitude.
    return 1e-5f * static_cast<float>(k < 16 ? 16 : k);
}

std::vector<simd::Tier>
supportedTiers()
{
    std::vector<simd::Tier> tiers;
    for (simd::Tier t : {simd::Tier::Scalar, simd::Tier::Avx2,
                         simd::Tier::Avx512})
        if (simd::supported(t))
            tiers.push_back(t);
    return tiers;
}

/**
 * Sizes that divide no vector width: 63/65 straddle every lane
 * count, 1 forces the single-row/column paths, and the primes make
 * both the packing tails and the ragged register-tile edges fire in
 * each tier's kernels.
 */
const Shape kTailShapes[] = {
    {63, 63, 63}, {65, 65, 65}, {1, 5, 63},   {63, 1, 65},
    {1, 1, 1},    {31, 47, 97}, {13, 29, 101},
};

} // namespace

TEST(Matmul, MatchesReferenceNN)
{
    ASSERT_TRUE(kForceThreads);
    Rng rng(11);
    for (const Shape &s : kShapes) {
        Tensor a = Tensor::randn({s.m, s.k}, rng);
        Tensor b = Tensor::randn({s.k, s.n}, rng);
        Tensor c = matmul(a, b);
        EXPECT_TRUE(c.allClose(oracle(a, b, false, false),
                               tolFor(s.k)))
            << s.m << "x" << s.k << "x" << s.n;
    }
}

TEST(Matmul, MatchesReferenceTN)
{
    Rng rng(12);
    for (const Shape &s : kShapes) {
        Tensor a = Tensor::randn({s.k, s.m}, rng);
        Tensor b = Tensor::randn({s.k, s.n}, rng);
        Tensor c = matmulTN(a, b);
        EXPECT_TRUE(c.allClose(oracle(a, b, true, false),
                               tolFor(s.k)))
            << s.m << "x" << s.k << "x" << s.n;
    }
}

TEST(Matmul, MatchesReferenceNT)
{
    Rng rng(13);
    for (const Shape &s : kShapes) {
        Tensor a = Tensor::randn({s.m, s.k}, rng);
        Tensor b = Tensor::randn({s.n, s.k}, rng);
        Tensor c = matmulNT(a, b);
        EXPECT_TRUE(c.allClose(oracle(a, b, false, true),
                               tolFor(s.k)))
            << s.m << "x" << s.k << "x" << s.n;
    }
}

TEST(Matmul, AccumulateFormsMatchReference)
{
    Rng rng(14);
    for (const Shape &s : kShapes) {
        Tensor a = Tensor::randn({s.m, s.k}, rng);
        Tensor b = Tensor::randn({s.k, s.n}, rng);
        Tensor init = Tensor::randn({s.m, s.n}, rng);

        Tensor c = init;
        matmulAcc(c, a, b);
        Tensor expect = oracle(a, b, false, false);
        expect.add(init);
        EXPECT_TRUE(c.allClose(expect, tolFor(s.k)))
            << "Acc " << s.m << "x" << s.k << "x" << s.n;

        Tensor at = a.transposed(); // [k x m]
        Tensor c_tn = init;
        matmulAccTN(c_tn, at, b);
        EXPECT_TRUE(c_tn.allClose(expect, tolFor(s.k)))
            << "AccTN " << s.m << "x" << s.k << "x" << s.n;

        Tensor bt = b.transposed(); // [n x k]
        Tensor c_nt = init;
        matmulAccNT(c_nt, a, bt);
        EXPECT_TRUE(c_nt.allClose(expect, tolFor(s.k)))
            << "AccNT " << s.m << "x" << s.k << "x" << s.n;
    }
}

TEST(Matmul, RawGemmOverwriteAndAccumulate)
{
    Rng rng(15);
    Tensor a = Tensor::randn({37, 41}, rng);
    Tensor b = Tensor::randn({41, 29}, rng);
    Tensor c = Tensor::full({37, 29}, 123.0f);
    // Overwrite mode must ignore prior contents.
    gemm(c.data(), a.data(), b.data(), 37, 41, 29, false);
    EXPECT_TRUE(c.allClose(oracle(a, b, false, false), tolFor(41)));
    // A second accumulate pass doubles every entry.
    gemm(c.data(), a.data(), b.data(), 37, 41, 29, true);
    Tensor twice = oracle(a, b, false, false);
    twice.scale(2.0f);
    EXPECT_TRUE(c.allClose(twice, 2.0f * tolFor(41)));
}

TEST(Matmul, DeterministicBytesUnderThreading)
{
    ASSERT_GE(runtimeThreads(), 1);
    Rng rng(16);
    // Big enough that the row panels actually span several chunks.
    Tensor a = Tensor::randn({300, 257}, rng);
    Tensor b = Tensor::randn({257, 190}, rng);

    Tensor c1 = matmul(a, b);
    Tensor c2 = matmul(a, b);
    ASSERT_EQ(c1.size(), c2.size());
    EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(),
                             sizeof(float) * c1.size()));

    // Forced-serial execution must also be bitwise identical to the
    // pooled run: the chunk decomposition is thread-count-invariant.
    SerialRegion serial;
    Tensor c3 = matmul(a, b);
    EXPECT_EQ(0, std::memcmp(c1.data(), c3.data(),
                             sizeof(float) * c1.size()));
}

TEST(MatmulTiers, TailShapesMatchReferenceEveryTier)
{
    ASSERT_TRUE(kForceThreads);
    const simd::Tier initial = simd::tier();
    Rng rng(31);
    for (const Shape &s : kTailShapes) {
        Tensor a = Tensor::randn({s.m, s.k}, rng);
        Tensor b = Tensor::randn({s.k, s.n}, rng);
        Tensor want = oracle(a, b, false, false);
        for (simd::Tier t : supportedTiers()) {
            simd::setTier(t);
            Tensor c = matmul(a, b);
            EXPECT_TRUE(c.allClose(want, tolFor(s.k)))
                << simd::tierName(t) << " " << s.m << "x" << s.k
                << "x" << s.n;
        }
    }
    simd::setTier(initial);
}

TEST(MatmulTiers, AllVariantsDispatchEveryTier)
{
    // One ragged shape through all six entry points per tier: the
    // dispatch happens inside gemmBlocked, so every variant must
    // produce oracle-close results no matter the forced tier.
    const simd::Tier initial = simd::tier();
    const Shape s{63, 65, 33};
    Rng rng(32);
    Tensor a = Tensor::randn({s.m, s.k}, rng);
    Tensor b = Tensor::randn({s.k, s.n}, rng);
    Tensor init = Tensor::randn({s.m, s.n}, rng);
    Tensor expect = oracle(a, b, false, false);
    Tensor expect_acc = expect;
    expect_acc.add(init);

    for (simd::Tier t : supportedTiers()) {
        simd::setTier(t);
        const char *name = simd::tierName(t);
        const float tol = tolFor(s.k);
        EXPECT_TRUE(matmul(a, b).allClose(expect, tol)) << name;
        EXPECT_TRUE(matmulTN(a.transposed(), b).allClose(expect,
                                                         tol))
            << name;
        EXPECT_TRUE(matmulNT(a, b.transposed()).allClose(expect,
                                                         tol))
            << name;
        Tensor c = init;
        matmulAcc(c, a, b);
        EXPECT_TRUE(c.allClose(expect_acc, tol)) << name;
        Tensor c_tn = init;
        matmulAccTN(c_tn, a.transposed(), b);
        EXPECT_TRUE(c_tn.allClose(expect_acc, tol)) << name;
        Tensor c_nt = init;
        matmulAccNT(c_nt, a, b.transposed());
        EXPECT_TRUE(c_nt.allClose(expect_acc, tol)) << name;
    }
    simd::setTier(initial);
}

TEST(MatmulTiers, BitwiseSelfConsistentPerTierAcrossThreading)
{
    // Per-tier determinism contract: within one tier the result is
    // bitwise identical run-to-run and pooled-vs-serial; across
    // tiers results agree only to tolerance (reductions round in a
    // different order per vector width).
    const simd::Tier initial = simd::tier();
    Rng rng(33);
    Tensor a = Tensor::randn({130, 131}, rng);
    Tensor b = Tensor::randn({131, 63}, rng);

    std::vector<Tensor> per_tier;
    for (simd::Tier t : supportedTiers()) {
        simd::setTier(t);
        Tensor c1 = matmul(a, b);
        Tensor c2 = matmul(a, b);
        EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(),
                                 sizeof(float) * c1.size()))
            << simd::tierName(t) << " rerun";
        {
            SerialRegion serial;
            Tensor c3 = matmul(a, b);
            EXPECT_EQ(0, std::memcmp(c1.data(), c3.data(),
                                     sizeof(float) * c1.size()))
                << simd::tierName(t) << " serial";
        }
        per_tier.push_back(c1);
    }
    for (size_t i = 1; i < per_tier.size(); ++i)
        EXPECT_TRUE(per_tier[i].allClose(per_tier[0], tolFor(131)));
    simd::setTier(initial);
}

TEST(Matmul, TransposedVariantsShareOneKernel)
{
    // TN/NT paths must not silently depend on transposed() copies:
    // cross-check TN against NT through the identity
    // (A^T B)^T = B^T A.
    Rng rng(17);
    Tensor a = Tensor::randn({70, 33}, rng);
    Tensor b = Tensor::randn({70, 45}, rng);
    Tensor tn = matmulTN(a, b);             // [33 x 45]
    Tensor nt = matmulNT(b.transposed(), a.transposed()); // [45 x 33]
    EXPECT_TRUE(tn.allClose(nt.transposed(), tolFor(70)));
}
