/**
 * @file
 * Tests for the paper-scale model specs, hardware config, workload
 * mapping, and the Fig 12 memory model.
 */

#include <gtest/gtest.h>

#include "cluster/mapping.hh"

namespace optimus
{
namespace
{

TEST(ModelSpec, ParamCountsMatchPaperNames)
{
    // Table 1's models: 2.5B and 8.3B within a few percent.
    EXPECT_NEAR(GptModelSpec::gpt2_5b().paramCount() / 1e9, 2.5,
                0.25);
    EXPECT_NEAR(GptModelSpec::gpt8_3b().paramCount() / 1e9, 8.3,
                0.5);
    // Fig 14's 9.2B (80 layers).
    EXPECT_NEAR(GptModelSpec::gpt9_2b().paramCount() / 1e9, 9.2,
                0.5);
    // GPT-3 175B.
    EXPECT_NEAR(GptModelSpec::gpt175b().paramCount() / 1e9, 175.0,
                10.0);
}

TEST(ModelSpec, FlopsScaleWithModelSize)
{
    const double f25 = GptModelSpec::gpt2_5b().flopsPerSequence();
    const double f83 = GptModelSpec::gpt8_3b().flopsPerSequence();
    // Training FLOPs scale roughly with parameter count (6N per
    // token, x recompute overhead).
    EXPECT_NEAR(f83 / f25,
                static_cast<double>(
                    GptModelSpec::gpt8_3b().paramCount()) /
                    GptModelSpec::gpt2_5b().paramCount(),
                0.7);
    EXPECT_DOUBLE_EQ(
        GptModelSpec::gpt2_5b().forwardFlopsPerSequence(), f25 / 4.0);
}

TEST(Hardware, ClusterShapeMatchesTable1)
{
    const auto hw = HardwareConfig::a100Cluster();
    EXPECT_EQ(hw.totalGpus(), 128);
    EXPECT_EQ(hw.nodes, 16);
    EXPECT_EQ(hw.gpusPerNode, 8);
    EXPECT_DOUBLE_EQ(hw.infinibandBytesPerSec, 25e9);
}

TEST(Hardware, MfuSaturatesWithWidth)
{
    const auto hw = HardwareConfig::a100Cluster();
    const double narrow = hw.achievedFlops(240);   // 1920 / tp8
    const double wide = hw.achievedFlops(1536);    // 12288 / tp8
    EXPECT_LT(narrow, wide);
    EXPECT_LT(wide, hw.gpuPeakFlops * hw.gpuMaxEfficiency);
}

TEST(Mapping, MicroBatchCountMatchesTable1)
{
    // 512 global / (DP4 x micro 8) = 16 micro-batches.
    TrainingPlan plan;
    ParallelConfig parallel;
    EXPECT_EQ(plan.microBatches(parallel), 16);
}

TEST(Mapping, StageTimesAndVolumes)
{
    const auto hw = HardwareConfig::a100Cluster();
    ParallelConfig parallel;
    TrainingPlan plan;
    MappedWorkload w(hw, GptModelSpec::gpt8_3b(), parallel, plan);

    // Backward (+recompute) is 3x forward.
    EXPECT_NEAR(w.stageBackwardTime(), 3.0 * w.stageForwardTime(),
                1e-12);
    // Boundary message: 8 seqs x 1024 x 3072 x 2B fp16 ~ 50.3 MB.
    EXPECT_NEAR(w.interStageMessageBytes(), 8.0 * 1024 * 3072 * 2,
                1.0);
    // Per-GPU DP gradients: ~8.3B/32 params x 4B (stage > 0 has no
    // position table).
    EXPECT_NEAR(w.dpGradBytesPerStage(1),
                GptModelSpec::gpt8_3b().paramCount() / 32.0 * 4.0,
                0.1e9);
    // Stage 0 additionally carries the position embedding.
    EXPECT_GT(w.dpGradBytesPerStage(0), w.dpGradBytesPerStage(1));
}

TEST(Mapping, DeeperPipelinesShrinkStageTime)
{
    const auto hw = HardwareConfig::a100Cluster();
    TrainingPlan plan;
    ParallelConfig p4{8, 4, 4};
    ParallelConfig p8{4, 8, 4};
    MappedWorkload w4(hw, GptModelSpec::gpt9_2b(), p4, plan);
    MappedWorkload w8(hw, GptModelSpec::gpt9_2b(), p8, plan);
    // Twice the stages, half the per-stage FLOPs -- but tp dropped
    // from 8 to 4, so per-GPU work is equal; per-GPU width doubles,
    // so MFU improves and stage time shrinks.
    EXPECT_LT(w8.stageForwardTime(), w4.stageForwardTime());
}

TEST(Memory, CbOverheadIsFiveToTenPercent)
{
    // Fig 12: compression buffers add 5-10%, LEP adds ~1% more.
    const auto hw = HardwareConfig::a100Cluster();
    ParallelConfig parallel;
    TrainingPlan plan;
    for (auto model :
         {GptModelSpec::gpt2_5b(), GptModelSpec::gpt8_3b()}) {
        MappedWorkload w(hw, model, parallel, plan);
        const double base =
            estimateMemory(w, false, false, 16).total();
        const double cb = estimateMemory(w, true, false, 16).total();
        const double cb_lep =
            estimateMemory(w, true, true, 16).total();
        const double cb_overhead = cb / base - 1.0;
        const double lep_overhead = cb_lep / cb - 1.0;
        EXPECT_GT(cb_overhead, 0.03) << model.name;
        EXPECT_LT(cb_overhead, 0.15) << model.name;
        EXPECT_GT(lep_overhead, 0.001) << model.name;
        EXPECT_LT(lep_overhead, 0.03) << model.name;
    }
}

TEST(Memory, ComponentsArePositiveAndSum)
{
    const auto hw = HardwareConfig::a100Cluster();
    ParallelConfig parallel;
    TrainingPlan plan;
    MappedWorkload w(hw, GptModelSpec::gpt8_3b(), parallel, plan);
    const auto est = estimateMemory(w, true, true, 16);
    EXPECT_GT(est.weights, 0.0);
    EXPECT_GT(est.gradients, 0.0);
    EXPECT_GT(est.optimizerStates, 0.0);
    EXPECT_GT(est.activations, 0.0);
    EXPECT_GT(est.cbWorkspace, 0.0);
    EXPECT_GT(est.lepBuffer, 0.0);
    EXPECT_NEAR(est.total(),
                est.weights + est.gradients + est.optimizerStates +
                    est.activations + est.cbWorkspace +
                    est.lepBuffer,
                1.0);
    // Optimizer states dominate weights 6:1 (fp32 m, v, master vs
    // fp16 weights).
    EXPECT_NEAR(est.optimizerStates / est.weights, 6.0, 1e-9);
}

} // namespace
} // namespace optimus
