/**
 * @file
 * Unit tests for the Tensor container and GEMM kernels.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/matmul.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace optimus
{
namespace
{

TEST(Tensor, ZeroInitializedAndShaped)
{
    Tensor t = Tensor::zeros(3, 4);
    EXPECT_EQ(t.rank(), 2);
    EXPECT_EQ(t.rows(), 3);
    EXPECT_EQ(t.cols(), 4);
    EXPECT_EQ(t.size(), 12);
    for (int64_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FromValuesAndAt)
{
    Tensor t = Tensor::fromValues({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
    EXPECT_EQ(t.at(0, 0), 1.0f);
    EXPECT_EQ(t.at(0, 1), 2.0f);
    EXPECT_EQ(t.at(1, 0), 3.0f);
    EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(Tensor, ElementwiseOps)
{
    Tensor a = Tensor::fromValues({3}, {1.0f, 2.0f, 3.0f});
    Tensor b = Tensor::fromValues({3}, {0.5f, 0.5f, 0.5f});
    a.add(b);
    EXPECT_FLOAT_EQ(a[0], 1.5f);
    a.sub(b);
    EXPECT_FLOAT_EQ(a[0], 1.0f);
    a.scale(2.0f);
    EXPECT_FLOAT_EQ(a[2], 6.0f);
    a.addScaled(b, 4.0f);
    EXPECT_FLOAT_EQ(a[1], 6.0f);
}

TEST(Tensor, Reductions)
{
    Tensor t = Tensor::fromValues({4}, {1.0f, -2.0f, 3.0f, -4.0f});
    EXPECT_DOUBLE_EQ(t.sum(), -2.0);
    EXPECT_FLOAT_EQ(t.maxAbs(), 4.0f);
    EXPECT_NEAR(t.norm(), std::sqrt(1.0 + 4.0 + 9.0 + 16.0), 1e-6);
}

TEST(Tensor, SliceAndSetRows)
{
    Tensor t = Tensor::fromValues({3, 2},
                                  {1, 2, 3, 4, 5, 6});
    Tensor mid = t.sliceRows(1, 2);
    EXPECT_EQ(mid.rows(), 1);
    EXPECT_FLOAT_EQ(mid.at(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(mid.at(0, 1), 4.0f);

    Tensor repl = Tensor::fromValues({1, 2}, {9, 8});
    t.setRows(0, repl);
    EXPECT_FLOAT_EQ(t.at(0, 0), 9.0f);
    EXPECT_FLOAT_EQ(t.at(0, 1), 8.0f);
}

TEST(Tensor, Transpose)
{
    Tensor t = Tensor::fromValues({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor tt = t.transposed();
    EXPECT_EQ(tt.rows(), 3);
    EXPECT_EQ(tt.cols(), 2);
    EXPECT_FLOAT_EQ(tt.at(0, 1), 4.0f);
    EXPECT_FLOAT_EQ(tt.at(2, 0), 3.0f);
}

TEST(Tensor, ReshapedPreservesData)
{
    Tensor t = Tensor::fromValues({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor r = t.reshaped({3, 2});
    EXPECT_EQ(r.rows(), 3);
    EXPECT_FLOAT_EQ(r.at(2, 1), 6.0f);
}

TEST(Tensor, AllClose)
{
    Tensor a = Tensor::full({4}, 1.0f);
    Tensor b = Tensor::full({4}, 1.0f + 5e-6f);
    EXPECT_TRUE(a.allClose(b, 1e-5f));
    EXPECT_FALSE(a.allClose(b, 1e-6f));
}

TEST(Tensor, RandnStatistics)
{
    Rng rng(11);
    Tensor t = Tensor::randn({200, 50}, rng, 1.0f, 2.0f);
    double sum = t.sum();
    const double mean = sum / t.size();
    EXPECT_NEAR(mean, 1.0, 0.05);
    double var = 0.0;
    for (int64_t i = 0; i < t.size(); ++i)
        var += (t[i] - mean) * (t[i] - mean);
    var /= t.size();
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Matmul, SmallKnownProduct)
{
    Tensor a = Tensor::fromValues({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor b = Tensor::fromValues({3, 2}, {7, 8, 9, 10, 11, 12});
    Tensor c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, TransposeVariantsAgree)
{
    Rng rng(3);
    Tensor a = Tensor::randn({5, 7}, rng);
    Tensor b = Tensor::randn({5, 4}, rng);
    // A^T * B via explicit transpose vs matmulTN.
    Tensor expect = matmul(a.transposed(), b);
    Tensor got = matmulTN(a, b);
    EXPECT_TRUE(expect.allClose(got, 1e-5f));

    Tensor c = Tensor::randn({6, 7}, rng);
    Tensor expect_nt = matmul(a, c.transposed());
    Tensor got_nt = matmulNT(a, c);
    EXPECT_TRUE(expect_nt.allClose(got_nt, 1e-5f));
}

TEST(Matmul, AccumulateVariants)
{
    Rng rng(5);
    Tensor a = Tensor::randn({3, 4}, rng);
    Tensor b = Tensor::randn({4, 2}, rng);
    Tensor c = Tensor::full({3, 2}, 1.0f);
    Tensor expect = add(matmul(a, b), c);
    matmulAcc(c, a, b);
    EXPECT_TRUE(expect.allClose(c, 1e-5f));
}

TEST(Matmul, IdentityIsNeutral)
{
    Rng rng(6);
    Tensor a = Tensor::randn({4, 4}, rng);
    Tensor eye = Tensor::zeros(4, 4);
    for (int i = 0; i < 4; ++i)
        eye.at(i, i) = 1.0f;
    EXPECT_TRUE(matmul(a, eye).allClose(a, 1e-6f));
    EXPECT_TRUE(matmul(eye, a).allClose(a, 1e-6f));
}

// Shape sweep: (m, k, n) parameterized consistency of gemm against a
// naive reference.
class MatmulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MatmulShapes, MatchesNaiveReference)
{
    const auto [m, k, n] = GetParam();
    Rng rng(100 + m * 7 + k * 3 + n);
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor c = matmul(a, b);

    for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
            double acc = 0.0;
            for (int p = 0; p < k; ++p)
                acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
            EXPECT_NEAR(c.at(i, j), acc, 1e-3)
                << "at (" << i << "," << j << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1),
                      std::make_tuple(1, 8, 3),
                      std::make_tuple(7, 1, 5),
                      std::make_tuple(8, 8, 8),
                      std::make_tuple(13, 17, 11),
                      std::make_tuple(32, 64, 16)));

} // namespace
} // namespace optimus
