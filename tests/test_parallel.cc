/**
 * @file
 * The core distribution-correctness tests: pipeline-parallel,
 * data-parallel, and tensor-parallel execution must reproduce
 * monolithic training; fused embedding synchronization must be
 * exact; compressed backpropagation must obey its telescoping
 * identity; replicas must never diverge.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "data/corpus.hh"
#include "data/dataset.hh"
#include "nn/optimizer.hh"
#include "parallel/data_parallel.hh"
#include "parallel/tensor_parallel.hh"
#include "parallel/trainer3d.hh"

namespace optimus
{
namespace
{

GptConfig
tinyModel()
{
    GptConfig config;
    config.vocab = 24;
    config.hidden = 16;
    config.layers = 4;
    config.heads = 2;
    config.seqLen = 8;
    config.seed = 77;
    return config;
}

LmDataset
tinyData(int64_t seq_len)
{
    CorpusConfig cc;
    cc.vocab = 24;
    cc.totalTokens = 6000;
    cc.seed = 5;
    SyntheticCorpus corpus(cc);
    return {corpus.train(), seq_len};
}

Trainer3dConfig
baseTrainerConfig()
{
    Trainer3dConfig config;
    config.model = tinyModel();
    config.dataParallel = 1;
    config.pipelineStages = 1;
    config.microBatches = 4;
    config.microBatchSize = 2;
    config.learningRate = 1e-3f;
    config.useAdam = true;
    return config;
}

/** Max abs parameter difference between two trainers' replica 0. */
float
paramDelta(Trainer3d &a, Trainer3d &b)
{
    float worst = 0.0f;
    const int pa = a.config().pipelineStages;
    const int pb = b.config().pipelineStages;

    // Collect all unique params in construction order per trainer.
    auto collect = [](Trainer3d &t, int p_ways) {
        std::vector<ParamPtr> all;
        for (int p = 0; p < p_ways; ++p) {
            for (const auto &param : t.stage(0, p).params())
                all.push_back(param);
        }
        return all;
    };
    auto pa_list = collect(a, pa);
    auto pb_list = collect(b, pb);

    // Match by parameter name: partitioning changes grouping but
    // names are stable. Embedding copies share names; compare all
    // same-named pairs.
    for (const auto &x : pa_list) {
        for (const auto &y : pb_list) {
            if (x->name != y->name)
                continue;
            EXPECT_EQ(x->size(), y->size());
            for (int64_t i = 0; i < x->size(); ++i) {
                const float d = std::fabs(x->value[i] - y->value[i]);
                if (d > worst)
                    worst = d;
            }
        }
    }
    return worst;
}

TEST(StageModule, PartitionedInitMatchesMonolithic)
{
    const GptConfig config = tinyModel();
    GptModel mono(config);
    StageModule s0(config, 0, 2);
    StageModule s1(config, 1, 2);

    // Same-named params have identical initial values.
    auto mono_params = mono.params();
    auto check = [&mono_params](const StageModule &stage) {
        for (const auto &p : stage.params()) {
            bool found = false;
            for (const auto &mp : mono_params) {
                if (mp->name != p->name)
                    continue;
                found = true;
                EXPECT_TRUE(mp->value.allClose(p->value, 0.0f))
                    << p->name;
            }
            EXPECT_TRUE(found) << p->name;
        }
    };
    check(s0);
    check(s1);
}

TEST(StageModule, ForwardComposesToMonolithicForward)
{
    const GptConfig config = tinyModel();
    GptModel mono(config);
    StageModule s0(config, 0, 2);
    StageModule s1(config, 1, 2);

    Rng rng(1);
    std::vector<int32_t> tokens(2 * config.seqLen);
    for (auto &t : tokens)
        t = static_cast<int32_t>(rng.uniformInt(config.vocab));

    Tensor mono_logits = mono.forward(tokens, 2);
    Tensor h = s0.forwardTokens(tokens, 2);
    Tensor pipe_logits = s1.forwardHidden(h);
    EXPECT_TRUE(mono_logits.allClose(pipe_logits, 1e-5f));
}

TEST(Equivalence, PipelineMatchesMonolithicTraining)
{
    // P=2 and P=4 pipelined training with no compression must track
    // the P=1 run almost exactly (float reassociation only).
    auto run = [](int stages) {
        Trainer3dConfig config = baseTrainerConfig();
        config.pipelineStages = stages;
        Trainer3d trainer(config);
        LmDataset data = tinyData(config.model.seqLen);
        Rng rng(42); // identical data order across runs
        double loss = 0.0;
        for (int it = 0; it < 5; ++it)
            loss = trainer.trainIteration(data, rng).loss;
        return std::make_pair(loss, trainer.validatePerplexity(
                                         tinyData(8)));
    };

    const auto [loss1, ppl1] = run(1);
    const auto [loss2, ppl2] = run(2);
    const auto [loss4, ppl4] = run(4);
    EXPECT_NEAR(loss1, loss2, 1e-4);
    EXPECT_NEAR(loss1, loss4, 1e-4);
    EXPECT_NEAR(ppl1, ppl2, 0.01 * ppl1);
    EXPECT_NEAR(ppl1, ppl4, 0.01 * ppl1);
}

TEST(Equivalence, DataParallelMatchesSingleWorker)
{
    // D workers with exact all-reduce == one worker consuming the
    // same D*M micro-batches.
    auto run = [](int d_ways, int micro_batches) {
        Trainer3dConfig config = baseTrainerConfig();
        config.dataParallel = d_ways;
        config.microBatches = micro_batches;
        Trainer3d trainer(config);
        LmDataset data = tinyData(config.model.seqLen);
        Rng rng(43);
        double loss = 0.0;
        for (int it = 0; it < 4; ++it)
            loss = trainer.trainIteration(data, rng).loss;
        return loss;
    };
    // D=2 x M=2 and D=1 x M=4 consume identical sample streams.
    const double split = run(2, 2);
    const double mono = run(1, 4);
    EXPECT_NEAR(split, mono, 1e-4);
}

TEST(Equivalence, ReplicasNeverDivergeWithoutCompression)
{
    Trainer3dConfig config = baseTrainerConfig();
    config.dataParallel = 3;
    config.pipelineStages = 2;
    Trainer3d trainer(config);
    LmDataset data = tinyData(config.model.seqLen);
    Rng rng(44);
    for (int it = 0; it < 4; ++it)
        trainer.trainIteration(data, rng);
    EXPECT_LT(trainer.replicaDivergence(), 1e-6f);
}

TEST(Equivalence, ReplicasNeverDivergeWithCompression)
{
    // The distributed PowerSGD protocol hands every replica the
    // same reconstruction, so even lossy DP compression must not
    // cause divergence.
    Trainer3dConfig config = baseTrainerConfig();
    config.dataParallel = 2;
    config.pipelineStages = 2;
    config.dp.enabled = true;
    config.dp.stageFraction = 1.0;
    config.dp.spec.rank = 2;
    config.cb.enabled = true;
    config.cb.spec.rank = 2;
    Trainer3d trainer(config);
    LmDataset data = tinyData(config.model.seqLen);
    Rng rng(45);
    for (int it = 0; it < 4; ++it)
        trainer.trainIteration(data, rng);
    EXPECT_LT(trainer.replicaDivergence(), 1e-5f);
}

TEST(ReduceMode, OverlappedDegeneratesToSequentialAtD1)
{
    // Overlapped scheduling hides bucket reduction behind the other
    // replicas' backward; with one replica there is nothing to hide
    // behind and the task-queue round trip measured as pure
    // overhead (0.978x at d=1 p=2 m=4), so the trainer falls back
    // to the bitwise-identical sequential reduction.
    Trainer3dConfig config = baseTrainerConfig();
    config.reduceMode = DpReduceMode::Overlapped;

    config.dataParallel = 1;
    Trainer3d degenerate(config);
    EXPECT_EQ(degenerate.effectiveReduceMode(),
              DpReduceMode::Sequential);

    config.dataParallel = 2;
    Trainer3d overlapped(config);
    EXPECT_EQ(overlapped.effectiveReduceMode(),
              DpReduceMode::Overlapped);

    // Barriered mode is an explicit engine request; it is honored
    // as configured even at D == 1.
    config.dataParallel = 1;
    config.reduceMode = DpReduceMode::Barriered;
    Trainer3d barriered(config);
    EXPECT_EQ(barriered.effectiveReduceMode(),
              DpReduceMode::Barriered);

    // The short-circuit changes scheduling only: a D=1 trainer
    // configured Overlapped trains bit-for-bit like one configured
    // Sequential.
    auto digest = [](DpReduceMode mode) {
        Trainer3dConfig c = baseTrainerConfig();
        c.dataParallel = 1;
        c.pipelineStages = 2;
        c.reduceMode = mode;
        Trainer3d trainer(c);
        LmDataset data = tinyData(c.model.seqLen);
        Rng rng(46);
        double sum = 0.0;
        for (int it = 0; it < 3; ++it)
            trainer.trainIteration(data, rng);
        for (const auto &p : trainer.stage(0, 0).params())
            for (int64_t i = 0; i < p->size(); ++i)
                sum += p->value[i];
        return sum;
    };
    EXPECT_EQ(digest(DpReduceMode::Overlapped),
              digest(DpReduceMode::Sequential));
}

TEST(EmbeddingSync, FusedEqualsBaseline)
{
    // Identical runs differing only in fused vs baseline embedding
    // synchronization must produce identical parameters: the fusion
    // is mathematically lossless (Section 6).
    auto run = [](bool fused) {
        Trainer3dConfig config = baseTrainerConfig();
        config.dataParallel = 2;
        config.pipelineStages = 2;
        config.fusedEmbeddingSync = fused;
        auto trainer = std::make_unique<Trainer3d>(config);
        LmDataset data = tinyData(config.model.seqLen);
        Rng rng(46);
        for (int it = 0; it < 4; ++it)
            trainer->trainIteration(data, rng);
        return trainer;
    };
    auto base = run(false);
    auto fused = run(true);
    EXPECT_LT(paramDelta(*base, *fused), 1e-5f);
}

TEST(EmbeddingSync, VolumesMatchEq15And16)
{
    // Traffic bookkeeping must match the closed forms: baseline
    // V(3D-2)/D, fused V(2D-1)/D.
    const int d_ways = 4;
    Trainer3dConfig config = baseTrainerConfig();
    config.dataParallel = d_ways;
    config.pipelineStages = 2;

    config.fusedEmbeddingSync = false;
    Trainer3d base(config);
    config.fusedEmbeddingSync = true;
    Trainer3d fused(config);

    LmDataset data = tinyData(config.model.seqLen);
    Rng rng1(47), rng2(47);
    const auto stats_base = base.trainIteration(data, rng1);
    const auto stats_fused = fused.trainIteration(data, rng2);

    const double v =
        static_cast<double>(stats_base.embVolume.tableBytes);
    EXPECT_NEAR(stats_base.embVolume.trafficBytes,
                v * (3.0 * d_ways - 2) / d_ways, 1.0);
    EXPECT_NEAR(stats_fused.embVolume.trafficBytes,
                v * (2.0 * d_ways - 1) / d_ways, 1.0);
    // Improvement approaches the analytic ratio (42.9% at D=4).
    const double saving = 1.0 - stats_fused.embVolume.trafficBytes /
                                    stats_base.embVolume.trafficBytes;
    EXPECT_NEAR(saving, 1.0 - (2.0 * d_ways - 1) / (3.0 * d_ways - 2),
                1e-6);
}

TEST(CompressedBackprop, ReducesInterStageTraffic)
{
    Trainer3dConfig config = baseTrainerConfig();
    config.pipelineStages = 4;
    config.microBatches = 4;
    config.cb.enabled = true;
    config.cb.epilogueOnly = false; // compress everything
    config.cb.spec.rank = 2;
    Trainer3d trainer(config);
    LmDataset data = tinyData(config.model.seqLen);
    Rng rng(48);
    const auto stats = trainer.trainIteration(data, rng);
    EXPECT_LT(stats.interStageBytes, stats.interStageBytesExact);
}

TEST(CompressedBackprop, EpilogueOnlyCompressesOnlyEpilogue)
{
    Trainer3dConfig config = baseTrainerConfig();
    config.pipelineStages = 4;
    config.microBatches = 8;
    config.cb.enabled = true;
    config.cb.epilogueOnly = true;
    config.cb.spec.rank = 2;
    Trainer3d trainer(config);
    LmDataset data = tinyData(config.model.seqLen);
    Rng rng(49);
    trainer.trainIteration(data, rng);

    // Channel from stage s compresses exactly
    // epilogueBackwardCount(P, M, s) messages per iteration (all
    // but the receiver's warm-up-overlapped ones).
    for (int s = 1; s < 4; ++s) {
        auto &ch = trainer.channel(0, s);
        EXPECT_EQ(ch.compressedSends(),
                  epilogueBackwardCount(4, 8, s))
            << "stage " << s;
        EXPECT_LT(ch.compressedSends(), 8);
        EXPECT_EQ(ch.totalSends(), 8);
    }
}

TEST(CompressedBackprop, LazyErrorIsBoundedAcrossIterations)
{
    // With LEP the stored error equals the most recent compression
    // residual; across many iterations it must stay bounded (no
    // accumulation blow-up).
    Trainer3dConfig config = baseTrainerConfig();
    config.pipelineStages = 2;
    config.microBatches = 4;
    config.cb.enabled = true;
    config.cb.epilogueOnly = false;
    config.cb.spec.rank = 2;
    Trainer3d trainer(config);
    LmDataset data = tinyData(config.model.seqLen);
    Rng rng(50);
    double first_norm = 0.0, last_norm = 0.0;
    for (int it = 0; it < 8; ++it) {
        trainer.trainIteration(data, rng);
        const double n = trainer.channel(0, 1).storedError().norm();
        if (it == 0)
            first_norm = n;
        last_norm = n;
    }
    EXPECT_GT(first_norm, 0.0);
    EXPECT_LT(last_norm, 100.0 * first_norm + 1.0);
}

TEST(SelectiveStage, SelectsEarliestStages)
{
    DpCompressionConfig config;
    config.enabled = true;
    config.stageFraction = 0.75;
    // P=4 at 75%: stages 0,1,2 compressed, stage 3 exact.
    EXPECT_TRUE(stageSelectedForCompression(config, 0, 4));
    EXPECT_TRUE(stageSelectedForCompression(config, 1, 4));
    EXPECT_TRUE(stageSelectedForCompression(config, 2, 4));
    EXPECT_FALSE(stageSelectedForCompression(config, 3, 4));

    config.stageFraction = 0.0;
    EXPECT_FALSE(stageSelectedForCompression(config, 0, 4));
    config.stageFraction = 1.0;
    EXPECT_TRUE(stageSelectedForCompression(config, 3, 4));
    config.enabled = false;
    EXPECT_FALSE(stageSelectedForCompression(config, 0, 4));
}

TEST(SelectiveStage, CompressedStagesSendFewerBytes)
{
    Trainer3dConfig config = baseTrainerConfig();
    config.dataParallel = 2;
    config.pipelineStages = 2;
    config.dp.enabled = true;
    config.dp.stageFraction = 0.5; // stage 0 only
    config.dp.spec.rank = 2;
    Trainer3d trainer(config);
    LmDataset data = tinyData(config.model.seqLen);
    Rng rng(51);
    const auto stats = trainer.trainIteration(data, rng);
    EXPECT_LT(stats.dpVolume.actualBytes, stats.dpVolume.exactBytes);
}

TEST(AllReduce, AverageAndSum)
{
    Tensor a = Tensor::fromValues({2}, {1.0f, 2.0f});
    Tensor b = Tensor::fromValues({2}, {3.0f, 6.0f});
    std::vector<Tensor *> list{&a, &b};
    allReduceAverage(list);
    EXPECT_FLOAT_EQ(a[0], 2.0f);
    EXPECT_FLOAT_EQ(b[1], 4.0f);
    EXPECT_TRUE(a.allClose(b, 0.0f));

    Tensor c = Tensor::fromValues({1}, {1.0f});
    Tensor d = Tensor::fromValues({1}, {2.0f});
    std::vector<Tensor *> list2{&c, &d};
    allReduceSum(list2);
    EXPECT_FLOAT_EQ(c[0], 3.0f);
    EXPECT_FLOAT_EQ(d[0], 3.0f);
}

TEST(TensorParallel, ColumnParallelMatchesSerial)
{
    Rng rng(52);
    Linear full("tp", 12, 8, rng, 0.4f);
    ColumnParallelLinear split(full, 4);

    Tensor x = Tensor::randn({5, 12}, rng);
    Tensor y_full = full.forward(x);
    Tensor y_split = split.forward(x);
    EXPECT_TRUE(y_full.allClose(y_split, 1e-5f));

    Tensor dy = Tensor::randn({5, 8}, rng);
    Tensor dx_full = full.backward(dy);
    Tensor dx_split = split.backward(dy);
    EXPECT_TRUE(dx_full.allClose(dx_split, 1e-5f));
    EXPECT_TRUE(full.weight()->grad.allClose(
        split.gatherWeightGrad(), 1e-5f));
    EXPECT_TRUE(full.bias()->grad.allClose(split.gatherBiasGrad(),
                                           1e-5f));
}

TEST(TensorParallel, RowParallelMatchesSerial)
{
    Rng rng(53);
    Linear full("tp", 12, 8, rng, 0.4f);
    RowParallelLinear split(full, 3);

    Tensor x = Tensor::randn({5, 12}, rng);
    Tensor y_full = full.forward(x);
    Tensor y_split = split.forward(x);
    EXPECT_TRUE(y_full.allClose(y_split, 1e-5f));

    Tensor dy = Tensor::randn({5, 8}, rng);
    Tensor dx_full = full.backward(dy);
    Tensor dx_split = split.backward(dy);
    EXPECT_TRUE(dx_full.allClose(dx_split, 1e-5f));
    EXPECT_TRUE(full.weight()->grad.allClose(
        split.gatherWeightGrad(), 1e-4f));
    EXPECT_TRUE(full.bias()->grad.allClose(split.biasGrad(), 1e-5f));
}

TEST(TensorParallel, ComposedColumnRowMatchesMlp)
{
    // Megatron MLP pattern: column-parallel fc1 then row-parallel
    // fc2 needs no communication between them; verify end-to-end.
    Rng rng(54);
    Linear fc1("fc1", 8, 16, rng, 0.4f);
    Linear fc2("fc2", 16, 8, rng, 0.4f);
    ColumnParallelLinear col(fc1, 2);
    RowParallelLinear row(fc2, 2);

    Tensor x = Tensor::randn({4, 8}, rng);
    Tensor serial = fc2.forward(fc1.forward(x));
    Tensor parallel_out = row.forward(col.forward(x));
    EXPECT_TRUE(serial.allClose(parallel_out, 1e-5f));

    Tensor dy = Tensor::randn({4, 8}, rng);
    Tensor dx_serial = fc1.backward(fc2.backward(dy));
    Tensor dx_parallel = col.backward(row.backward(dy));
    EXPECT_TRUE(dx_serial.allClose(dx_parallel, 1e-5f));
}

/**
 * Property sweep: for every (D, P, M) grid shape, two iterations of
 * uncompressed 3D-parallel training produce the same loss stream as
 * the monolithic (D=1, P=1) run over the same sample stream, and
 * replicas stay identical.
 */
class GridEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GridEquivalence, MatchesMonolithicLossStream)
{
    const auto [d_ways, p_ways, m_count] = GetParam();

    auto run = [](int d, int p, int m) {
        Trainer3dConfig config = baseTrainerConfig();
        config.dataParallel = d;
        config.pipelineStages = p;
        config.microBatches = m;
        Trainer3d trainer(config);
        LmDataset data = tinyData(config.model.seqLen);
        Rng rng(91);
        std::vector<double> losses;
        for (int it = 0; it < 2; ++it)
            losses.push_back(trainer.trainIteration(data, rng).loss);
        return std::make_pair(losses, trainer.replicaDivergence());
    };

    // The reference consumes the same total micro-batch stream:
    // D x M micro-batches per iteration on one worker.
    const auto [reference, ref_div] = run(1, 1, d_ways * m_count);
    const auto [grid, grid_div] = run(d_ways, p_ways, m_count);
    ASSERT_EQ(reference.size(), grid.size());
    for (size_t i = 0; i < reference.size(); ++i)
        EXPECT_NEAR(reference[i], grid[i], 2e-4) << "iteration " << i;
    EXPECT_LT(grid_div, 1e-6f);
    EXPECT_EQ(ref_div, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GridEquivalence,
    ::testing::Values(std::make_tuple(1, 2, 4),
                      std::make_tuple(1, 4, 4),
                      std::make_tuple(2, 1, 4),
                      std::make_tuple(2, 2, 2),
                      std::make_tuple(3, 2, 2),
                      std::make_tuple(2, 4, 3),
                      std::make_tuple(4, 1, 2)));

TEST(Trainer, LossDecreasesOverTraining)
{
    Trainer3dConfig config = baseTrainerConfig();
    config.dataParallel = 2;
    config.pipelineStages = 2;
    config.learningRate = 3e-3f;
    Trainer3d trainer(config);
    LmDataset data = tinyData(config.model.seqLen);
    Rng rng(55);

    // Per-batch losses are noisy; compare head/tail window means.
    std::vector<double> losses;
    for (int it = 0; it < 60; ++it)
        losses.push_back(trainer.trainIteration(data, rng).loss);
    double head = 0.0, tail = 0.0;
    for (int i = 0; i < 5; ++i) {
        head += losses[i];
        tail += losses[losses.size() - 1 - i];
    }
    EXPECT_LT(tail / 5.0, head / 5.0 - 0.1);
}

TEST(Trainer, MemoryAccountingTracksBuffers)
{
    Trainer3dConfig config = baseTrainerConfig();
    config.pipelineStages = 2;
    config.cb.enabled = true;
    config.cb.epilogueOnly = false;
    config.cb.spec.rank = 2;
    Trainer3d trainer(config);
    EXPECT_EQ(trainer.lepBufferBytes(), 0);
    LmDataset data = tinyData(config.model.seqLen);
    Rng rng(56);
    trainer.trainIteration(data, rng);
    EXPECT_GT(trainer.lepBufferBytes(), 0);
    EXPECT_GT(trainer.compressorStateBytes(), 0);
    EXPECT_GT(trainer.parameterBytes(), 0);
}

} // namespace
} // namespace optimus
