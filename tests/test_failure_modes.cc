/**
 * @file
 * Failure-injection tests: invalid configurations and out-of-contract
 * calls must die loudly (panic/abort for internal contract breaches,
 * fatal/exit(1) for user errors) instead of corrupting results.
 */

#include <gtest/gtest.h>

#include "compress/compressor.hh"
#include "data/corpus.hh"
#include "data/dataset.hh"
#include "parallel/stage_module.hh"
#include "schedule/schedule.hh"
#include "tensor/matmul.hh"
#include "util/cli.hh"

namespace optimus
{
namespace
{

using FailureDeathTest = ::testing::Test;

TEST(FailureDeathTest, TensorOutOfBoundsAccessDies)
{
    Tensor t = Tensor::zeros(2, 3);
    EXPECT_DEATH(t.at(2, 0), "assertion");
    EXPECT_DEATH(t.at(0, 3), "assertion");
    EXPECT_DEATH(t.at(-1, 0), "assertion");
}

TEST(FailureDeathTest, TensorRankMisuseDies)
{
    Tensor t = Tensor::zeros(6);
    EXPECT_DEATH(t.rows(), "assertion");
    EXPECT_DEATH(t.at(0, 0), "assertion");
}

#ifdef OPTIMUS_BOUNDS_CHECK
// Checked builds (Debug and the sanitizer CI jobs) also police the
// flat fast path and full shape agreement in elementwise ops.
TEST(FailureDeathTest, FlatIndexOutOfBoundsDiesWhenChecked)
{
    Tensor t = Tensor::zeros(2, 3);
    EXPECT_DEATH(t[6], "out of range");
    EXPECT_DEATH(t[-1], "out of range");
    const Tensor &ct = t;
    EXPECT_DEATH(ct[100], "out of range");
}

TEST(FailureDeathTest, ElementwiseShapeMismatchDiesWhenChecked)
{
    Tensor a = Tensor::zeros(2, 8);
    Tensor b = Tensor::zeros(4, 4); // same size, different shape
    EXPECT_DEATH(a.add(b), "shape mismatch");
    EXPECT_DEATH(a.sub(b), "shape mismatch");
    EXPECT_DEATH(a.addScaled(b, 0.5f), "shape mismatch");
    EXPECT_DEATH(a.addProduct(b, b), "shape mismatch");
}
#endif

TEST(FailureDeathTest, MatmulShapeMismatchDies)
{
    Tensor a = Tensor::zeros(2, 3);
    Tensor b = Tensor::zeros(4, 2);
    EXPECT_DEATH(matmul(a, b), "assertion");
}

TEST(FailureDeathTest, ReshapeSizeMismatchDies)
{
    Tensor t = Tensor::zeros(2, 3);
    EXPECT_DEATH(t.reshaped({4, 2}), "assertion");
}

TEST(FailureDeathTest, ScheduleRejectsInvalidShape)
{
    EXPECT_DEATH(PipelineSchedule::oneFOneB(0, 4), "assertion");
    EXPECT_DEATH(PipelineSchedule::oneFOneB(4, 0), "assertion");
    EXPECT_DEATH(warmupDepth(4, 8, 4), "assertion");
    EXPECT_DEATH(isEpilogueBackward(4, 8, 0, 0), "assertion");
}

TEST(FailureDeathTest, StageModuleRejectsIndivisibleLayers)
{
    GptConfig config;
    config.layers = 4;
    EXPECT_DEATH(StageModule(config, 0, 3), "assertion");
}

TEST(FailureDeathTest, CorpusRejectsInvalidMasses)
{
    CorpusConfig config;
    config.bigramMass = 0.8;
    config.trigramBoost = 0.3; // sums over 1
    EXPECT_DEATH(SyntheticCorpus{config}, "assertion");
}

TEST(FailureDeathTest, DatasetRejectsTooShortStream)
{
    std::vector<int32_t> tiny{1, 2, 3};
    EXPECT_DEATH(LmDataset(tiny, 8), "assertion");
}

TEST(FailureDeathTest, CliRejectsMalformedNumbers)
{
    const char *argv[] = {"prog", "--n=abc"};
    CliArgs args(2, argv);
    EXPECT_EXIT(args.getInt("n"), ::testing::ExitedWithCode(1),
                "expects an integer");
    EXPECT_EXIT(args.getDouble("n"), ::testing::ExitedWithCode(1),
                "expects a number");
}

TEST(FailureDeathTest, CompressorParseRejectsUnknownName)
{
    EXPECT_EXIT(parseCompressorKind("gzip"),
                ::testing::ExitedWithCode(1), "unknown compressor");
}

TEST(FailureDeathTest, ScheduleParseRejectsUnknownName)
{
    EXPECT_EXIT(parseScheduleKind("dapple"),
                ::testing::ExitedWithCode(1), "unknown schedule");
}

TEST(FailureDeathTest, TopKRejectsInvalidFraction)
{
    CompressorSpec spec;
    spec.kind = CompressorKind::TopK;
    spec.topkFraction = 0.0;
    EXPECT_DEATH(makeCompressor(spec), "assertion");
    spec.topkFraction = 1.5;
    EXPECT_DEATH(makeCompressor(spec), "assertion");
}

} // namespace
} // namespace optimus
