/**
 * @file
 * The execution runtime: full coverage of parallelFor / reduce
 * semantics, chunk-boundary determinism, nested inlining, and the
 * serial-region guard.
 */

#include <algorithm>
#include <atomic>
#include <mutex>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/runtime.hh"

using namespace optimus;

namespace
{

const bool kForceThreads = [] {
    ::setenv("OPTIMUS_THREADS", "4", 0);
    return true;
}();

} // namespace

TEST(Runtime, PoolRespectsEnvironment)
{
    ASSERT_TRUE(kForceThreads);
    EXPECT_GE(runtimeThreads(), 1);
    EXPECT_LE(runtimeThreads(), 256);
}

TEST(Runtime, ParallelForCoversRangeExactlyOnce)
{
    const int64_t n = 10007; // prime: every grain leaves a ragged tail
    for (int64_t grain : {1, 7, 64, 4096, 20000}) {
        std::vector<std::atomic<int>> hits(n);
        for (auto &h : hits)
            h.store(0);
        parallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i)
                hits[i].fetch_add(1);
        });
        for (int64_t i = 0; i < n; ++i)
            ASSERT_EQ(1, hits[i].load()) << "grain " << grain;
    }
}

TEST(Runtime, ParallelForEmptyAndReversedRanges)
{
    bool ran = false;
    parallelFor(5, 5, 1, [&](int64_t, int64_t) { ran = true; });
    parallelFor(9, 3, 1, [&](int64_t, int64_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(Runtime, ReduceChunkBoundariesDependOnlyOnGrain)
{
    // parallelFor may coalesce chunks when it runs inline (plain
    // loops cannot observe the decomposition), but reductions see
    // exactly ceil(range/grain) chunks at grain-aligned boundaries
    // in every execution mode — that is the determinism contract.
    auto boundaries = [](bool serial) {
        std::vector<std::pair<int64_t, int64_t>> out;
        std::mutex m;
        auto body = [&](int64_t lo, int64_t hi) {
            std::lock_guard<std::mutex> lock(m);
            out.emplace_back(lo, hi);
            return 0.0;
        };
        if (serial) {
            SerialRegion guard;
            parallelReduceSum(0, 1000, 17, body);
        } else {
            parallelReduceSum(0, 1000, 17, body);
        }
        std::sort(out.begin(), out.end());
        return out;
    };
    const auto pooled = boundaries(false);
    ASSERT_EQ(59u, pooled.size()); // ceil(1000 / 17)
    EXPECT_EQ(pooled, boundaries(true));
    for (size_t c = 0; c < pooled.size(); ++c) {
        EXPECT_EQ(static_cast<int64_t>(c) * 17, pooled[c].first);
        EXPECT_EQ(std::min<int64_t>(1000, (c + 1) * 17),
                  pooled[c].second);
    }
}

TEST(Runtime, ReduceSumMatchesSerialAndIsDeterministic)
{
    const int64_t n = 5000;
    std::vector<double> values(n);
    for (int64_t i = 0; i < n; ++i)
        values[i] = 1.0 / (1.0 + i);

    auto body = [&](int64_t lo, int64_t hi) {
        double s = 0.0;
        for (int64_t i = lo; i < hi; ++i)
            s += values[i];
        return s;
    };
    const double pooled = parallelReduceSum(0, n, 64, body);
    const double again = parallelReduceSum(0, n, 64, body);
    EXPECT_EQ(pooled, again);

    SerialRegion guard;
    const double serial = parallelReduceSum(0, n, 64, body);
    EXPECT_EQ(pooled, serial);
}

TEST(Runtime, NestedParallelForRunsInline)
{
    // A nested region must execute on the worker that issued it
    // (no deadlock, no cross-worker interleaving).
    std::atomic<int> outer_chunks{0};
    std::atomic<int> inner_total{0};
    parallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            outer_chunks.fetch_add(1);
            EXPECT_TRUE(ThreadPool::inParallelRegion() ||
                        runtimeThreads() == 1);
            parallelFor(0, 100, 10, [&](int64_t l2, int64_t h2) {
                inner_total.fetch_add(
                    static_cast<int>(h2 - l2));
            });
        }
    });
    EXPECT_EQ(8, outer_chunks.load());
    EXPECT_EQ(800, inner_total.load());
}

TEST(Runtime, SerialRegionRestoresState)
{
    EXPECT_FALSE(ThreadPool::inParallelRegion());
    {
        SerialRegion guard;
        EXPECT_TRUE(ThreadPool::inParallelRegion());
    }
    EXPECT_FALSE(ThreadPool::inParallelRegion());
}

TEST(Runtime, BackToBackRegionsReuseWorkers)
{
    // Hammer the pool with many small jobs to shake out epoch /
    // wakeup races.
    std::vector<int64_t> sums(64);
    for (int iter = 0; iter < 200; ++iter) {
        parallelFor(0, 64, 4, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i)
                sums[i] += i;
        });
    }
    for (int64_t i = 0; i < 64; ++i)
        EXPECT_EQ(200 * i, sums[i]);
}

TEST(TaskGroup, RunsAllTasksAndCounts)
{
    TaskGroup group;
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i)
        group.run([&done] { done.fetch_add(1); });
    group.wait();
    EXPECT_EQ(64, done.load());
    EXPECT_EQ(64, group.submitted());
}

TEST(TaskGroup, IsReusableAcrossRounds)
{
    TaskGroup group;
    std::atomic<int> done{0};
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 8; ++i)
            group.run([&done] { done.fetch_add(1); });
        group.wait();
        EXPECT_EQ(8 * (round + 1), done.load());
    }
    EXPECT_EQ(40, group.submitted());
}

TEST(TaskGroup, TasksSeeParallelRegionAndNestInline)
{
    // A task body must run with inParallelRegion() set so nested
    // parallel regions decompose inline, keeping the determinism
    // contract independent of which thread picks the task up.
    TaskGroup group;
    std::atomic<int> in_region{0};
    std::atomic<int64_t> nested_sum{0};
    group.run([&] {
        if (ThreadPool::inParallelRegion())
            in_region.fetch_add(1);
        parallelFor(0, 100, 7, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i)
                nested_sum.fetch_add(i);
        });
    });
    group.wait();
    EXPECT_EQ(1, in_region.load());
    EXPECT_EQ(4950, nested_sum.load());
}

TEST(TaskGroup, TasksRunConcurrentlyWithParallelFor)
{
    // Submit tasks, then immediately run a parallelFor job: workers
    // must both finish the job (it outranks tasks) and drain the
    // queue without deadlock.
    TaskGroup group;
    std::atomic<int> task_done{0};
    std::vector<int64_t> touched(256, 0);
    for (int i = 0; i < 16; ++i)
        group.run([&task_done] { task_done.fetch_add(1); });
    parallelFor(0, 256, 16, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            touched[i] = i;
    });
    group.wait();
    EXPECT_EQ(16, task_done.load());
    for (int64_t i = 0; i < 256; ++i)
        EXPECT_EQ(i, touched[i]);
}
