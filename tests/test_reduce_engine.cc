/**
 * @file
 * Tests for the bucketed, backward-overlapped gradient reduction
 * engine: bucket layout (capacity packing, oversized parameters,
 * exclusion), reduction correctness, bitwise identity of the
 * Sequential / Barriered / Overlapped trainer paths, and the
 * IterationStats phase timers. Run at OPTIMUS_THREADS in {1, 4, 8}
 * via the ctest registrations in tests/CMakeLists.txt.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "data/corpus.hh"
#include "data/dataset.hh"
#include "parallel/reduce_engine.hh"
#include "parallel/trainer3d.hh"
#include "runtime/runtime.hh"

namespace optimus
{
namespace
{

ParamPtr
makeParam(const std::string &name, std::vector<int64_t> shape,
          float grad_fill)
{
    auto p = std::make_shared<Param>(name, Tensor(shape));
    p->grad.fill(grad_fill);
    return p;
}

/** D aligned worker lists with per-worker distinct gradients. */
std::vector<std::vector<ParamPtr>>
makeWorkerParams(int workers,
                 const std::vector<std::vector<int64_t>> &shapes)
{
    std::vector<std::vector<ParamPtr>> lists(workers);
    for (int d = 0; d < workers; ++d) {
        for (size_t j = 0; j < shapes.size(); ++j) {
            lists[d].push_back(makeParam(
                "p" + std::to_string(j), shapes[j],
                static_cast<float>(d + 1) * (j + 1)));
        }
    }
    return lists;
}

ReduceEngineConfig
exactConfig(int workers, int64_t bucket_bytes)
{
    ReduceEngineConfig config;
    config.workers = workers;
    config.bucketBytes = bucket_bytes;
    return config;
}

TEST(BucketLayout, PacksGreedilyByCapacity)
{
    // 16-float buckets (64 bytes). Params of 8, 8, 8 floats: the
    // first two share a bucket, the third starts a new one.
    auto lists = makeWorkerParams(2, {{8}, {8}, {8}});
    ReduceEngine engine(exactConfig(2, 64));
    engine.bind(lists, {});

    const auto &buckets = engine.buckets();
    ASSERT_EQ(buckets.size(), 2u);
    EXPECT_EQ(buckets[0].params, (std::vector<size_t>{0, 1}));
    EXPECT_EQ(buckets[0].offsets, (std::vector<int64_t>{0, 8}));
    EXPECT_EQ(buckets[0].elems, 16);
    EXPECT_EQ(buckets[1].params, (std::vector<size_t>{2}));
    EXPECT_EQ(buckets[1].elems, 8);
    EXPECT_FALSE(buckets[0].compressed);
}

TEST(BucketLayout, OversizedParamGetsOwnBucket)
{
    // Bucket capacity 64 bytes = 16 floats; the 100-float param
    // exceeds it and must land alone, unsplit.
    auto lists = makeWorkerParams(2, {{4}, {100}, {4}});
    ReduceEngine engine(exactConfig(2, 64));
    engine.bind(lists, {});

    const auto &buckets = engine.buckets();
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_EQ(buckets[0].params, (std::vector<size_t>{0}));
    EXPECT_EQ(buckets[1].params, (std::vector<size_t>{1}));
    EXPECT_EQ(buckets[1].elems, 100);
    EXPECT_EQ(buckets[2].params, (std::vector<size_t>{2}));
}

TEST(BucketLayout, TinyParamAloneInBucket)
{
    auto lists = makeWorkerParams(2, {{1}});
    ReduceEngine engine(exactConfig(2, 1 << 20));
    engine.bind(lists, {});

    const auto &buckets = engine.buckets();
    ASSERT_EQ(buckets.size(), 1u);
    EXPECT_EQ(buckets[0].elems, 1);
    EXPECT_EQ(buckets[0].params, (std::vector<size_t>{0}));
}

TEST(BucketLayout, ExcludedParamsGetNoBucket)
{
    auto lists = makeWorkerParams(2, {{8}, {8}, {8}});
    std::vector<const Param *> excluded;
    for (int d = 0; d < 2; ++d)
        excluded.push_back(lists[d][1].get());
    ReduceEngine engine(exactConfig(2, 1 << 20));
    engine.bind(lists, excluded);

    const auto &buckets = engine.buckets();
    ASSERT_EQ(buckets.size(), 1u);
    EXPECT_EQ(buckets[0].params, (std::vector<size_t>{0, 2}));
    EXPECT_EQ(buckets[0].elems, 16);
}

TEST(ReduceEngineExact, AveragesAcrossWorkersBothModes)
{
    for (const bool overlap : {false, true}) {
        // Worker d's grad for param j is (d+1)*(j+1); the D=2 mean
        // for param j is 1.5*(j+1).
        auto lists = makeWorkerParams(2, {{6}, {10}, {3}});
        ReduceEngine engine(exactConfig(2, 32));
        engine.bind(lists, {});

        TaskGroup group;
        engine.beginIteration(group, overlap);
        engine.notifyReplicaDone();
        engine.notifyReplicaDone();
        engine.flush();
        group.wait();

        for (int d = 0; d < 2; ++d) {
            for (size_t j = 0; j < lists[d].size(); ++j) {
                const Tensor &g = lists[d][j]->grad;
                for (int64_t i = 0; i < g.size(); ++i)
                    ASSERT_FLOAT_EQ(g[i], 1.5f * (j + 1))
                        << "overlap=" << overlap << " d=" << d
                        << " j=" << j;
            }
        }

        double busy = 0.0;
        const ReduceVolume volume = engine.collect(&busy);
        EXPECT_EQ(volume.exactBytes, 4 * (6 + 10 + 3));
        EXPECT_EQ(volume.actualBytes, volume.exactBytes);
        EXPECT_GE(busy, 0.0);
    }
}

TEST(ReduceEngineCompressed, DedicatedBucketsAndState)
{
    // Rank-2 params with rows, cols >= 2 are compressible; the 1-D
    // param is not and must stay in an exact bucket.
    ReduceEngineConfig config = exactConfig(2, 1 << 20);
    config.dp.enabled = true;
    config.compressStage = true;
    config.seed = 9;
    // Matrices large enough that the rank-8 payload undercuts the
    // dense size (rank clamps to min(rows, cols) on tiny shapes).
    auto lists = makeWorkerParams(2, {{32, 32}, {7}, {24, 16}});
    ReduceEngine engine(config);
    engine.bind(lists, {});

    const auto &buckets = engine.buckets();
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_TRUE(buckets[0].compressed);
    EXPECT_FALSE(buckets[1].compressed);
    EXPECT_TRUE(buckets[2].compressed);

    TaskGroup group;
    engine.beginIteration(group, false);
    engine.flush();
    group.wait();

    const ReduceVolume volume = engine.collect();
    EXPECT_EQ(volume.exactBytes, 4 * (32 * 32 + 7 + 24 * 16));
    EXPECT_LT(volume.actualBytes, volume.exactBytes);
    // Warm Q matrices + residuals persist.
    EXPECT_GT(engine.stateBytes(), 0);
    const auto norms = engine.residualNorms();
    ASSERT_EQ(norms.size(), 2u);
    engine.reset();
    for (const double n : engine.residualNorms())
        EXPECT_EQ(n, 0.0);
}

GptConfig
tinyModel()
{
    GptConfig config;
    config.vocab = 24;
    config.hidden = 16;
    config.layers = 4;
    config.heads = 2;
    config.seqLen = 8;
    config.seed = 77;
    return config;
}

LmDataset
tinyData(int64_t seq_len)
{
    CorpusConfig cc;
    cc.vocab = 24;
    cc.totalTokens = 6000;
    cc.seed = 5;
    SyntheticCorpus corpus(cc);
    return {corpus.train(), seq_len};
}

Trainer3dConfig
gridConfig(DpReduceMode mode, bool compressed)
{
    Trainer3dConfig config;
    config.model = tinyModel();
    config.dataParallel = 2;
    config.pipelineStages = 2;
    config.microBatches = 2;
    config.microBatchSize = 2;
    config.learningRate = 1e-3f;
    config.useAdam = true;
    config.reduceMode = mode;
    // Small buckets so the tiny model still produces several
    // buckets per stage and exercises the packing logic.
    config.bucketBytes = 2048;
    if (compressed) {
        config.dp.enabled = true;
        config.dp.stageFraction = 0.75;
        config.dp.errorFeedback = true;
    }
    return config;
}

/**
 * Bitwise parameter comparison across every stage and replica.
 * Returns the count of differing floats (0 means bit-identical).
 */
int64_t
bitwiseMismatch(Trainer3d &a, Trainer3d &b)
{
    int64_t mismatches = 0;
    const int d_ways = a.config().dataParallel;
    const int p_ways = a.config().pipelineStages;
    for (int d = 0; d < d_ways; ++d) {
        for (int p = 0; p < p_ways; ++p) {
            const auto pa = a.stage(d, p).params();
            const auto pb = b.stage(d, p).params();
            EXPECT_EQ(pa.size(), pb.size());
            for (size_t j = 0; j < pa.size(); ++j) {
                const Tensor &ta = pa[j]->value;
                const Tensor &tb = pb[j]->value;
                EXPECT_EQ(ta.size(), tb.size());
                if (std::memcmp(ta.data(), tb.data(),
                                sizeof(float) * ta.size()) != 0) {
                    for (int64_t i = 0; i < ta.size(); ++i) {
                        if (std::memcmp(&ta.data()[i], &tb.data()[i],
                                        sizeof(float)) != 0)
                            ++mismatches;
                    }
                }
            }
        }
    }
    return mismatches;
}

/** 10 iterations under each reduce mode must match bit for bit. */
void
runIdentity(bool compressed)
{
    Trainer3d sequential(
        gridConfig(DpReduceMode::Sequential, compressed));
    Trainer3d barriered(
        gridConfig(DpReduceMode::Barriered, compressed));
    Trainer3d overlapped(
        gridConfig(DpReduceMode::Overlapped, compressed));

    LmDataset data = tinyData(tinyModel().seqLen);
    Rng rng_s(11), rng_b(11), rng_o(11);
    for (int it = 0; it < 10; ++it) {
        const auto ss = sequential.trainIteration(data, rng_s);
        const auto sb = barriered.trainIteration(data, rng_b);
        const auto so = overlapped.trainIteration(data, rng_o);
        ASSERT_EQ(ss.loss, sb.loss) << "iteration " << it;
        ASSERT_EQ(ss.loss, so.loss) << "iteration " << it;
        ASSERT_EQ(ss.dpVolume.exactBytes, so.dpVolume.exactBytes);
        ASSERT_EQ(ss.dpVolume.actualBytes, so.dpVolume.actualBytes);
    }
    EXPECT_EQ(bitwiseMismatch(sequential, barriered), 0);
    EXPECT_EQ(bitwiseMismatch(sequential, overlapped), 0);
    EXPECT_EQ(bitwiseMismatch(barriered, overlapped), 0);
}

TEST(ReduceModeIdentity, UncompressedBitwiseEqual)
{
    runIdentity(false);
}

TEST(ReduceModeIdentity, CompressedBitwiseEqual)
{
    runIdentity(true);
}

TEST(StepPhaseTimes, FieldsAreSane)
{
    for (const DpReduceMode mode :
         {DpReduceMode::Sequential, DpReduceMode::Overlapped}) {
        Trainer3d trainer(gridConfig(mode, false));
        LmDataset data = tinyData(tinyModel().seqLen);
        Rng rng(3);
        const IterationStats stats =
            trainer.trainIteration(data, rng);

        const StepPhaseTimes &t = stats.phases;
        EXPECT_GT(t.forwardBackward, 0.0);
        EXPECT_GE(t.dpReduce, 0.0);
        EXPECT_GE(t.dpReduceBusy, 0.0);
        EXPECT_GE(t.embSync, 0.0);
        EXPECT_GE(t.optimizer, 0.0);
        // total spans the replica loop through the optimizer.
        EXPECT_GE(t.total, t.forwardBackward);
        EXPECT_GE(t.total, t.dpReduce + t.embSync + t.optimizer);
        // hidden time is exactly the busy/exposed difference.
        EXPECT_DOUBLE_EQ(t.overlapHidden,
                         std::max(0.0, t.dpReduceBusy - t.dpReduce));
        if (mode == DpReduceMode::Sequential) {
            EXPECT_DOUBLE_EQ(t.dpReduceBusy, t.dpReduce);
        }
    }
}

} // namespace
} // namespace optimus
