/**
 * @file
 * Direct unit tests for BackwardChannel (compression policy, byte
 * accounting, instrumentation) and DataParallelReducer (exclusion,
 * compressibility, residual bookkeeping).
 */

#include <gtest/gtest.h>

#include "parallel/channels.hh"
#include "parallel/data_parallel.hh"
#include "util/random.hh"

namespace optimus
{
namespace
{

CbConfig
powerSgdCb(bool lep, bool epilogue_only, int rank = 2)
{
    CbConfig config;
    config.enabled = true;
    config.lazyErrorPropagation = lep;
    config.epilogueOnly = epilogue_only;
    config.spec.kind = CompressorKind::PowerSgd;
    config.spec.rank = rank;
    return config;
}

TEST(BackwardChannel, DisabledPassesThroughExactly)
{
    CbConfig config; // enabled = false
    BackwardChannel channel(config, 4, 1, 7);
    Rng rng(1);
    Tensor grad = Tensor::randn({8, 8}, rng);
    Tensor out = channel.send(grad, 0, 4);
    EXPECT_TRUE(out.allClose(grad, 0.0f));
    EXPECT_EQ(channel.bytesSent(), channel.bytesUncompressed());
    EXPECT_EQ(channel.compressedSends(), 0);
}

TEST(BackwardChannel, EpiloguePolicyControlsWhichSendsCompress)
{
    // P=4, channel 1->0, M=8: the receiver's warm-up is 3, so the
    // first 3 sends pass through exactly and the last 5 compress.
    BackwardChannel channel(powerSgdCb(true, true), 4, 1, 7);
    Rng rng(2);
    for (int m = 0; m < 8; ++m) {
        Tensor grad = Tensor::randn({16, 8}, rng);
        Tensor out = channel.send(grad, m, 8);
        if (m < 3) {
            EXPECT_TRUE(out.allClose(grad, 1e-6f)) << m;
        } else {
            EXPECT_FALSE(out.allClose(grad, 1e-6f)) << m;
        }
    }
    EXPECT_EQ(channel.compressedSends(), 5);
    EXPECT_EQ(channel.totalSends(), 8);
    EXPECT_LT(channel.bytesSent(), channel.bytesUncompressed());
}

TEST(BackwardChannel, UncompressedSendResolvesStoredError)
{
    // After a compressed send leaves an error behind, the next
    // *uncompressed* send delivers input + error exactly and clears
    // the buffer (lossless resolution).
    BackwardChannel channel(powerSgdCb(true, false), 2, 1, 7);
    Rng rng(3);
    Tensor g0 = Tensor::randn({8, 8}, rng);
    channel.send(g0, 0, 4); // compressed (epilogueOnly off)
    ASSERT_GT(channel.storedError().size(), 0);
    const Tensor err = channel.storedError();

    // Build a channel where the next message is *not* compressed:
    // epilogue-only with the next micro-batch inside warm-up is not
    // constructible on a 2-stage pipe, so emulate by a fresh
    // channel with epilogueOnly on (warm-up = 1 hidden message).
    BackwardChannel epi(powerSgdCb(true, true), 2, 1, 7);
    Tensor h0 = Tensor::randn({8, 8}, rng);
    Tensor out0 = epi.send(h0, 0, 4); // hidden -> exact
    EXPECT_TRUE(out0.allClose(h0, 0.0f));
    EXPECT_EQ(epi.storedError().size(), 0);
}

TEST(BackwardChannel, ByteAccountingMatchesPayloads)
{
    CbConfig config = powerSgdCb(true, false, 2);
    BackwardChannel channel(config, 2, 1, 7);
    Rng rng(4);
    Tensor grad = Tensor::randn({16, 8}, rng);
    channel.send(grad, 0, 1);
    // Compressed payload: rank * (rows + cols) * 4 bytes.
    EXPECT_EQ(channel.bytesSent(), 4 * 2 * (16 + 8));
    EXPECT_EQ(channel.bytesUncompressed(),
              4 * grad.size());
}

TEST(BackwardChannel, InstrumentationRecordsCompressedSendsOnly)
{
    BackwardChannel channel(powerSgdCb(true, true), 4, 1, 7);
    channel.enableInstrumentation(true);
    Rng rng(5);
    for (int m = 0; m < 8; ++m) {
        Tensor act = Tensor::randn({16, 8}, rng);
        channel.observeForward(act, m);
        Tensor grad = Tensor::randn({16, 8}, rng);
        channel.send(grad, m, 8);
    }
    // 5 compressed sends (see EpiloguePolicy test) -> 5 records.
    ASSERT_EQ(channel.sendStats().size(), 5u);
    for (const auto &rec : channel.sendStats()) {
        EXPECT_TRUE(rec.compressed);
        EXPECT_GE(rec.microBatch, 3);
        EXPECT_LE(std::abs(rec.cosine), 1.0);
    }
}

TEST(BackwardChannel, ResetClearsEverything)
{
    BackwardChannel channel(powerSgdCb(true, false), 2, 1, 7);
    Rng rng(6);
    Tensor grad = Tensor::randn({8, 8}, rng);
    channel.send(grad, 0, 2);
    channel.reset();
    EXPECT_EQ(channel.bytesSent(), 0);
    EXPECT_EQ(channel.totalSends(), 0);
    EXPECT_EQ(channel.storedError().size(), 0);
    EXPECT_EQ(channel.errorBufferBytes(), 0);
}

TEST(DataParallelReducer, CompressibleRequiresRealMatrix)
{
    Param matrix("w", Tensor::zeros(8, 8));
    Param vector_param("b", Tensor::zeros(8));
    Param skinny("s", Tensor::zeros(1, 8));
    EXPECT_TRUE(DataParallelReducer::compressible(matrix));
    EXPECT_FALSE(DataParallelReducer::compressible(vector_param));
    EXPECT_FALSE(DataParallelReducer::compressible(skinny));
}

TEST(DataParallelReducer, ExactReduceAveragesAndCountsBytes)
{
    DpCompressionConfig config; // disabled
    DataParallelReducer reducer(config, false, 2, 7);

    auto p0 = std::make_shared<Param>("w", Tensor::zeros(2, 2));
    auto p1 = std::make_shared<Param>("w", Tensor::zeros(2, 2));
    p0->grad.fill(1.0f);
    p1->grad.fill(3.0f);
    const auto volume = reducer.reduce({{p0}, {p1}}, {});
    EXPECT_FLOAT_EQ(p0->grad[0], 2.0f);
    EXPECT_FLOAT_EQ(p1->grad[0], 2.0f);
    EXPECT_EQ(volume.exactBytes, 16);
    EXPECT_EQ(volume.actualBytes, 16);
}

TEST(DataParallelReducer, ExclusionSkipsParams)
{
    DpCompressionConfig config;
    DataParallelReducer reducer(config, false, 2, 7);
    auto p0 = std::make_shared<Param>("w", Tensor::zeros(2, 2));
    auto p1 = std::make_shared<Param>("w", Tensor::zeros(2, 2));
    p0->grad.fill(1.0f);
    p1->grad.fill(3.0f);
    const auto volume =
        reducer.reduce({{p0}, {p1}}, {p0.get(), p1.get()});
    // Untouched: still different.
    EXPECT_FLOAT_EQ(p0->grad[0], 1.0f);
    EXPECT_FLOAT_EQ(p1->grad[0], 3.0f);
    EXPECT_EQ(volume.exactBytes, 0);
}

TEST(DataParallelReducer, CompressedReduceKeepsReplicasIdentical)
{
    DpCompressionConfig config;
    config.enabled = true;
    config.stageFraction = 1.0;
    config.spec.rank = 2;
    DataParallelReducer reducer(config, true, 3, 7);

    Rng rng(8);
    std::vector<std::vector<ParamPtr>> workers(3);
    for (int d = 0; d < 3; ++d) {
        auto p = std::make_shared<Param>("w", Tensor::zeros(12, 12));
        p->grad = Tensor::randn({12, 12}, rng);
        workers[d] = {p};
    }
    const auto volume = reducer.reduce(workers, {});
    EXPECT_LT(volume.actualBytes, volume.exactBytes);
    // All replicas hold the identical reconstruction.
    EXPECT_TRUE(workers[0][0]->grad.allClose(workers[1][0]->grad,
                                             0.0f));
    EXPECT_TRUE(workers[0][0]->grad.allClose(workers[2][0]->grad,
                                             0.0f));
    // Residuals are tracked per worker.
    const auto norms = reducer.residualNorms();
    ASSERT_EQ(norms.size(), 3u);
    for (double n : norms)
        EXPECT_GT(n, 0.0);
    EXPECT_GT(reducer.stateBytes(), 0);
}

TEST(DataParallelReducer, ErrorFeedbackConvergesOnConstantGradient)
{
    // With a constant gradient, error feedback makes the *average*
    // delivered reduction converge to the true mean.
    DpCompressionConfig config;
    config.enabled = true;
    config.spec.rank = 2;
    DataParallelReducer reducer(config, true, 2, 7);

    Rng rng(9);
    const Tensor truth = Tensor::randn({10, 10}, rng);
    Tensor delivered_sum({10, 10});
    const int steps = 40;
    auto p0 = std::make_shared<Param>("w", Tensor::zeros(10, 10));
    auto p1 = std::make_shared<Param>("w", Tensor::zeros(10, 10));
    for (int step = 0; step < steps; ++step) {
        p0->grad = truth;
        p1->grad = truth;
        reducer.reduce({{p0}, {p1}}, {});
        delivered_sum.add(p0->grad);
    }
    delivered_sum.scale(1.0f / steps);
    EXPECT_LT(sub(delivered_sum, truth).norm() / truth.norm(), 0.15);
}

} // namespace
} // namespace optimus
