/**
 * @file
 * Tests for pipeline schedules: structure, dependency feasibility,
 * bubble analytics, and epilogue classification.
 */

#include <gtest/gtest.h>

#include "schedule/schedule.hh"

namespace optimus
{
namespace
{

TEST(Schedule, OneFOneBStructure)
{
    const auto sched = PipelineSchedule::oneFOneB(4, 8);
    EXPECT_EQ(sched.stages(), 4);
    EXPECT_EQ(sched.microBatches(), 8);
    EXPECT_EQ(sched.opCount(), 2 * 4 * 8);

    // Every stage runs each micro-batch's forward and backward once.
    for (int s = 0; s < 4; ++s) {
        const auto &ops = sched.stageOps(s);
        EXPECT_EQ(ops.size(), 16u);
        std::vector<int> fwd(8, 0), bwd(8, 0);
        for (const auto &op : ops) {
            if (op.kind == PipeOpKind::Forward)
                ++fwd[op.microBatch];
            else
                ++bwd[op.microBatch];
        }
        for (int m = 0; m < 8; ++m) {
            EXPECT_EQ(fwd[m], 1);
            EXPECT_EQ(bwd[m], 1);
        }
    }
}

TEST(Schedule, OneFOneBWarmupDepths)
{
    // P=4: warmups are 3,2,1,0.
    EXPECT_EQ(warmupDepth(4, 8, 0), 3);
    EXPECT_EQ(warmupDepth(4, 8, 1), 2);
    EXPECT_EQ(warmupDepth(4, 8, 2), 1);
    EXPECT_EQ(warmupDepth(4, 8, 3), 0);
    // Clamped by micro-batch count.
    EXPECT_EQ(warmupDepth(8, 2, 0), 2);
}

TEST(Schedule, LastStageAlternatesImmediately)
{
    const auto sched = PipelineSchedule::oneFOneB(4, 4);
    const auto &ops = sched.stageOps(3);
    // No warmup: F0 B0 F1 B1 ...
    EXPECT_EQ(ops[0], (PipeOp{PipeOpKind::Forward, 3, 0}));
    EXPECT_EQ(ops[1], (PipeOp{PipeOpKind::Backward, 3, 0}));
    EXPECT_EQ(ops[2], (PipeOp{PipeOpKind::Forward, 3, 1}));
    EXPECT_EQ(ops[3], (PipeOp{PipeOpKind::Backward, 3, 1}));
}

TEST(Schedule, BackwardsExecuteInMicroBatchOrder)
{
    // Required by lazy error propagation: per-channel message order
    // is micro-batch order, for both schedule families.
    for (auto kind : {ScheduleKind::OneFOneB, ScheduleKind::GPipe}) {
        const auto sched = PipelineSchedule::make(kind, 4, 6);
        for (int s = 0; s < 4; ++s) {
            int expected = 0;
            for (const auto &op : sched.stageOps(s)) {
                if (op.kind != PipeOpKind::Backward)
                    continue;
                EXPECT_EQ(op.microBatch, expected) << "stage " << s;
                ++expected;
            }
        }
    }
}

class ScheduleValidity
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ScheduleValidity, OneFOneBIsDeadlockFree)
{
    const auto [p, m] = GetParam();
    const auto sched = PipelineSchedule::oneFOneB(p, m);
    EXPECT_TRUE(sched.validate());
    const auto order = sched.globalOrder();
    EXPECT_EQ(static_cast<int64_t>(order.size()), sched.opCount());
}

TEST_P(ScheduleValidity, GPipeIsDeadlockFree)
{
    const auto [p, m] = GetParam();
    const auto sched = PipelineSchedule::gpipe(p, m);
    EXPECT_TRUE(sched.validate());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ScheduleValidity,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8, 16),
                       ::testing::Values(1, 2, 4, 8, 32)));

TEST(Schedule, GlobalOrderRespectsDependencies)
{
    const auto sched = PipelineSchedule::oneFOneB(4, 8);
    const auto order = sched.globalOrder();

    auto position = [&order](PipeOpKind kind, int s, int m) {
        for (size_t i = 0; i < order.size(); ++i) {
            if (order[i].kind == kind && order[i].stage == s &&
                order[i].microBatch == m)
                return static_cast<int64_t>(i);
        }
        return static_cast<int64_t>(-1);
    };

    for (int m = 0; m < 8; ++m) {
        for (int s = 1; s < 4; ++s) {
            EXPECT_LT(position(PipeOpKind::Forward, s - 1, m),
                      position(PipeOpKind::Forward, s, m));
            EXPECT_LT(position(PipeOpKind::Backward, s, m),
                      position(PipeOpKind::Backward, s - 1, m));
        }
        EXPECT_LT(position(PipeOpKind::Forward, 3, m),
                  position(PipeOpKind::Backward, 3, m));
    }
}

TEST(Epilogue, CountsExcludeReceiverWarmup)
{
    // P=4, M=8: channel 1->0 compresses all but the receiver's 3
    // warm-up-overlapped messages; 2->1 all but 2; 3->2 all but 1.
    EXPECT_EQ(epilogueBackwardCount(4, 8, 1), 5);
    EXPECT_EQ(epilogueBackwardCount(4, 8, 2), 6);
    EXPECT_EQ(epilogueBackwardCount(4, 8, 3), 7);
}

TEST(Epilogue, EarlyMicroBatchesAreHidden)
{
    const int p = 4, m = 8;
    for (int s = 1; s < p; ++s) {
        const int hidden = m - epilogueBackwardCount(p, m, s);
        for (int mb = 0; mb < m; ++mb) {
            EXPECT_EQ(isEpilogueBackward(p, m, s, mb), mb >= hidden)
                << "stage " << s << " mb " << mb;
        }
    }
}

TEST(Epilogue, FewMicroBatchesLeavesNothingExposedToCompress)
{
    // M=1 with deep pipelines: the single message rides the ramp,
    // overlapped by the receiver's warm-up forward, on every
    // channel (every receiver has at least one warm-up forward).
    for (int s = 1; s < 8; ++s) {
        EXPECT_FALSE(isEpilogueBackward(8, 1, s, 0)) << s;
        EXPECT_EQ(epilogueBackwardCount(8, 1, s), 0) << s;
    }
}

TEST(Epilogue, FractionGrowsWithMoreMicroBatches)
{
    // The compressed fraction of channel 1->0 is (M - (P-1)) / M:
    // deeper steady states expose more backward messages.
    const int p = 4;
    double prev_fraction = 0.0;
    for (int m : {4, 8, 16, 64}) {
        const double fraction =
            static_cast<double>(epilogueBackwardCount(p, m, 1)) / m;
        EXPECT_GE(fraction, prev_fraction);
        prev_fraction = fraction;
    }
    EXPECT_NEAR(prev_fraction, 61.0 / 64.0, 1e-12);
}

TEST(Schedule, ParseKinds)
{
    EXPECT_EQ(parseScheduleKind("1f1b"), ScheduleKind::OneFOneB);
    EXPECT_EQ(parseScheduleKind("gpipe"), ScheduleKind::GPipe);
}

TEST(Schedule, SingleStageDegeneratesToSequential)
{
    const auto sched = PipelineSchedule::oneFOneB(1, 4);
    const auto &ops = sched.stageOps(0);
    ASSERT_EQ(ops.size(), 8u);
    // F0 B0 F1 B1 ... with warmup 0.
    for (int m = 0; m < 4; ++m) {
        EXPECT_EQ(ops[2 * m].kind, PipeOpKind::Forward);
        EXPECT_EQ(ops[2 * m + 1].kind, PipeOpKind::Backward);
        EXPECT_EQ(ops[2 * m].microBatch, m);
    }
}

} // namespace
} // namespace optimus
