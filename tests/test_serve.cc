/**
 * @file
 * Serving-path contracts: incremental KV-cache decode is bitwise
 * equal to full-sequence recompute, the continuous-batching engine
 * reproduces the single-request full-recompute oracle for every
 * request under any admission interleaving, Infer mode never
 * constructs stash storage, and pipelined serving traffic is
 * accounted in the InterStage CommEvent stream (exactly, and with
 * smaller wire bytes when a lossy boundary compressor is
 * installed). The ctest legs re-run this suite across
 * OPTIMUS_THREADS and OPTIMUS_SIMD=scalar.
 */

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "comm/transport.hh"
#include "nn/attention.hh"
#include "serve/engine.hh"
#include "tensor/arena.hh"

using namespace optimus;

namespace
{

GptConfig
tinyModel()
{
    GptConfig model;
    model.vocab = 24;
    model.hidden = 16;
    model.layers = 4;
    model.heads = 2;
    model.seqLen = 16;
    model.seed = 77;
    return model;
}

/** Deterministic activation fill (no RNG: reproducible per cell). */
void
fillCells(Tensor &t)
{
    float *d = t.data();
    for (int64_t i = 0; i < t.size(); ++i)
        d[i] = 0.1f * static_cast<float>((i * 31 + 7) % 13 - 6);
}

/** Deterministic prompt mix with lengths 3..5. */
std::vector<std::vector<int32_t>>
mixedPrompts(int count)
{
    std::vector<std::vector<int32_t>> prompts;
    for (int r = 0; r < count; ++r) {
        std::vector<int32_t> prompt;
        for (int t = 0; t < 3 + r % 3; ++t)
            prompt.push_back((7 * r + 3 * t + 1) % 24);
        prompts.push_back(std::move(prompt));
    }
    return prompts;
}

/** Collect per-request generated tokens keyed by request id. */
std::map<int64_t, std::vector<int32_t>>
attachCollector(serve::ServeEngine &engine)
{
    std::map<int64_t, std::vector<int32_t>> outputs;
    auto *out = &outputs;
    engine.setFinishCallback(
        [out](const serve::FinishedRequest &done) {
            (*out)[done.id] = std::vector<int32_t>(
                done.tokens.begin() + done.promptLen,
                done.tokens.end());
        });
    return outputs;
}

TEST(Serve, AttentionIncrementalMatchesRecompute)
{
    const int64_t hidden = 16, heads = 2, seq = 12;
    Rng rng(123);
    MultiHeadAttention attn("attn", hidden, heads, seq, rng);
    attn.setMode(Mode::Infer);

    Tensor x({seq, hidden});
    fillCells(x);

    // Plain Infer forward is the full-sequence recompute reference.
    const Tensor full = attn.forward(x);

    // Chunked prefill (5 rows at once) then single-token decode
    // must reproduce it bit for bit.
    KvCache cache;
    cache.ensure(seq, hidden);
    const int64_t prefill = 5;
    Tensor head({prefill, hidden});
    for (int64_t i = 0; i < prefill * hidden; ++i)
        head.data()[i] = x.data()[i];
    Tensor y = attn.forwardCached(head, cache);
    for (int64_t i = 0; i < prefill * hidden; ++i)
        ASSERT_EQ(full.data()[i], y.data()[i]) << "prefill row";

    for (int64_t r = prefill; r < seq; ++r) {
        Tensor row({1, hidden});
        for (int64_t c = 0; c < hidden; ++c)
            row.data()[c] = x.data()[r * hidden + c];
        Tensor yr = attn.forwardCached(row, cache);
        for (int64_t c = 0; c < hidden; ++c)
            ASSERT_EQ(full.data()[r * hidden + c], yr.data()[c])
                << "decode row " << r << " col " << c;
    }
    EXPECT_EQ(cache.len, seq);
}

TEST(Serve, EngineMatchesReferenceAcrossPipelineDepths)
{
    const GptConfig model = tinyModel();
    const std::vector<int32_t> prompt = {3, 1, 4, 1, 5};
    const int64_t max_new = 8;
    const std::vector<int32_t> expect =
        serve::referenceGreedyDecode(model, prompt, max_new);
    ASSERT_EQ(static_cast<int64_t>(expect.size()), max_new);

    for (int stages : {1, 2, 4}) {
        serve::ServeConfig config;
        config.model = model;
        config.pipelineStages = stages;
        config.maxSequences = 2;
        config.maxBatchTokens = 16;
        serve::ServeEngine engine(config);
        auto outputs = attachCollector(engine);

        const int64_t id = engine.submit(prompt, max_new);
        engine.drain();

        ASSERT_TRUE(engine.idle());
        ASSERT_EQ(engine.completedRequests(), 1);
        ASSERT_EQ(outputs.count(id), 1u);
        EXPECT_EQ(outputs[id], expect)
            << "pipelineStages=" << stages;
    }
}

TEST(Serve, BatchingIsInterleavingInvariant)
{
    const GptConfig model = tinyModel();
    const auto prompts = mixedPrompts(6);
    const int64_t max_new = 6;

    // Oracle: every request decoded alone by full recompute.
    std::vector<std::vector<int32_t>> expect;
    for (const auto &prompt : prompts)
        expect.push_back(
            serve::referenceGreedyDecode(model, prompt, max_new));

    serve::ServeConfig config;
    config.model = model;
    config.pipelineStages = 2;
    config.maxSequences = 3;
    config.maxBatchTokens = 12;

    // Arrival pattern A: everything up front.
    serve::ServeEngine burst(config);
    auto burst_out = attachCollector(burst);
    std::vector<int64_t> burst_ids;
    for (const auto &prompt : prompts)
        burst_ids.push_back(burst.submit(prompt, max_new));
    burst.drain();

    // Arrival pattern B: trickled between decode iterations.
    serve::ServeEngine trickle(config);
    auto trickle_out = attachCollector(trickle);
    std::vector<int64_t> trickle_ids;
    size_t next = 0;
    while (next < prompts.size() || !trickle.idle()) {
        if (next < prompts.size()) {
            trickle_ids.push_back(
                trickle.submit(prompts[next], max_new));
            ++next;
        }
        trickle.step();
        trickle.step();
    }

    ASSERT_EQ(burst.completedRequests(), 6);
    ASSERT_EQ(trickle.completedRequests(), 6);
    for (size_t r = 0; r < prompts.size(); ++r) {
        EXPECT_EQ(burst_out[burst_ids[r]], expect[r])
            << "burst request " << r;
        EXPECT_EQ(trickle_out[trickle_ids[r]], expect[r])
            << "trickled request " << r;
    }
}

TEST(Serve, InferForwardNeverStashes)
{
    const int64_t hidden = 16, heads = 2, seq = 8;
    Rng rng(5);
    MultiHeadAttention attn("attn", hidden, heads, seq, rng);
    Tensor x({seq, hidden});
    fillCells(x);

    // Train mode stashes one entry per forward.
    (void)attn.forward(x);
    EXPECT_EQ(attn.stashDepth(), 1u);
    attn.clearStash();

    // Infer mode never touches the stash...
    attn.setMode(Mode::Infer);
    (void)attn.forward(x);
    EXPECT_EQ(attn.stashDepth(), 0u);

    // ...and a warmed arena-scoped Infer forward allocates nothing:
    // no stash storage is constructed at all, so steady state is
    // pure workspace recycling (mem:: counters are process-wide).
    if (arenaEnabled()) {
        Workspace ws("test.infer");
        {
            WorkspaceScope scope(&ws);
            (void)attn.forward(x);
        }
        const int64_t heap_before = mem::heapAllocs();
        const int64_t hits_before = mem::arenaHits();
        {
            WorkspaceScope scope(&ws);
            (void)attn.forward(x);
        }
        EXPECT_EQ(mem::heapAllocs(), heap_before);
        EXPECT_GT(mem::arenaHits(), hits_before);
    }
}

TEST(Serve, PipelineBoundaryVolumeIsAccounted)
{
    const GptConfig model = tinyModel();
    InProcessTransport base;
    RecordingTransport recorder(base);

    serve::ServeConfig config;
    config.model = model;
    config.pipelineStages = 2;
    config.maxSequences = 2;
    config.maxBatchTokens = 16;
    config.transport = &recorder;
    serve::ServeEngine engine(config);

    const std::vector<int32_t> prompt = {3, 1, 4, 1, 5};
    const int64_t max_new = 6;
    engine.submit(prompt, max_new);
    engine.drain();

    // One boundary (P=2): the prefill moves promptLen rows once,
    // then each of the (max_new - 1) decode rounds moves one row.
    const int64_t prompt_len =
        static_cast<int64_t>(prompt.size());
    const int64_t rows = prompt_len + (max_new - 1);
    const CommVolume vol =
        recorder.trace().volume(CommPhase::InterStage);
    EXPECT_EQ(recorder.trace().count(CommPhase::InterStage),
              1 + (max_new - 1));
    EXPECT_EQ(vol.exactBytes,
              rows * model.hidden *
                  static_cast<int64_t>(sizeof(float)));
    EXPECT_EQ(vol.wireBytes, vol.exactBytes); // exact boundary
}

TEST(Serve, CompressedBoundaryShrinksWireBytes)
{
    const GptConfig model = tinyModel();
    InProcessTransport base;
    RecordingTransport recorder(base);

    serve::ServeConfig config;
    config.model = model;
    config.pipelineStages = 2;
    config.maxSequences = 2;
    config.maxBatchTokens = 16;
    config.transport = &recorder;
    config.boundary.kind = CompressorKind::TopK;
    config.boundary.topkFraction = 0.25;
    serve::ServeEngine engine(config);

    auto outputs = attachCollector(engine);
    const auto prompts = mixedPrompts(2);
    std::vector<int64_t> ids;
    for (const auto &prompt : prompts)
        ids.push_back(engine.submit(prompt, 6));
    engine.drain();

    // Lossy transfer trades bitwise identity for volume: every
    // request still completes with its full token budget, and the
    // recorded wire bytes must be strictly below exact.
    ASSERT_EQ(engine.completedRequests(), 2);
    for (int64_t id : ids)
        EXPECT_EQ(outputs[id].size(), 6u);
    const CommVolume vol =
        recorder.trace().volume(CommPhase::InterStage);
    EXPECT_GT(vol.exactBytes, 0);
    EXPECT_LT(vol.wireBytes, vol.exactBytes);
    for (const auto &event : recorder.trace().events()) {
        if (event.phase == CommPhase::InterStage) {
            EXPECT_EQ(static_cast<int>(event.compressor.kind),
                      static_cast<int>(CompressorKind::TopK));
        }
    }
}

} // namespace
