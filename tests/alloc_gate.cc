/**
 * @file
 * The zero-allocation steady-state gate (tier-1). Global operator
 * new/delete are replaced with counting wrappers; after a two-step
 * warmup the counter is armed around full training iterations and
 * the gate fails on ANY heap allocation made anywhere in the
 * process — tensor storage, containers, closures, pool tasks — on
 * the forward/backward/compress/reduce/update path, in every DP
 * reduce mode. This is the runtime enforcement of what optlint's
 * ALLOC01 hot set declares statically and what the coldalloc /
 * coldfn annotations promise is warmup-only.
 *
 * `--serve` gates the serving decode path instead: a pipelined
 * (P=2) continuous-batching ServeEngine is warmed with two full
 * request waves (slot arenas sized, every ring and vector capacity
 * ratcheted), then a third identical wave — admission, batched
 * decode, retirement — runs fully armed and must make zero heap
 * allocations.
 *
 * `--telemetry` re-runs both gates with the full observability
 * stack live: time-series rings, health probes sampling every step,
 * and the Prometheus exporter listening on an ephemeral port.
 *
 * Not a gtest binary on purpose: the harness itself must not
 * allocate between arming and checking.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "data/corpus.hh"
#include "data/dataset.hh"
#include "obs/metrics.hh"
#include "obs/probes.hh"
#include "obs/promexport.hh"
#include "parallel/trainer3d.hh"
#include "serve/engine.hh"
#include "tensor/arena.hh"

namespace
{

std::atomic<bool> g_armed{false};
std::atomic<long long> g_armedAllocs{0};

void *
countedAlloc(std::size_t n, std::size_t align)
{
    if (g_armed.load(std::memory_order_relaxed))
        g_armedAllocs.fetch_add(1, std::memory_order_relaxed);
    if (n == 0)
        n = 1;
    if (align > alignof(std::max_align_t)) {
        // aligned_alloc wants the size rounded to the alignment.
        const std::size_t rounded = (n + align - 1) / align * align;
        return std::aligned_alloc(align, rounded);
    }
    return std::malloc(n);
}

} // namespace

void *
operator new(std::size_t n)
{
    void *p = countedAlloc(n, 0);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    return countedAlloc(n, 0);
}

void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    return countedAlloc(n, 0);
}

void *
operator new(std::size_t n, std::align_val_t align)
{
    void *p = countedAlloc(n, static_cast<std::size_t>(align));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n, std::align_val_t align)
{
    return operator new(n, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace
{

using namespace optimus;

Trainer3dConfig
gateConfig(DpReduceMode mode)
{
    GptConfig model;
    model.vocab = 24;
    model.hidden = 16;
    model.layers = 4;
    model.heads = 2;
    model.seqLen = 8;
    model.seed = 77;

    Trainer3dConfig config;
    config.model = model;
    config.dataParallel = 2;
    config.pipelineStages = 2;
    config.microBatches = 2;
    config.microBatchSize = 2;
    config.useAdam = true;
    config.cb.enabled = true;
    config.cb.epilogueOnly = false;
    config.cb.spec.rank = 2;
    config.dp.enabled = true;
    config.dp.stageFraction = 1.0;
    config.dp.spec.rank = 2;
    config.reduceMode = mode;
    return config;
}

const char *
modeName(DpReduceMode mode)
{
    switch (mode) {
      case DpReduceMode::Sequential:
        return "sequential";
      case DpReduceMode::Barriered:
        return "barriered";
      case DpReduceMode::Overlapped:
        return "overlapped";
    }
    return "?";
}

/** @return armed allocation count over two post-warmup steps. */
long long
runGate(DpReduceMode mode, const LmDataset &data)
{
    Trainer3d trainer(gateConfig(mode));
    Rng rng(99);
    // Warmup: step one sizes the arenas and ratchets every scratch
    // capacity; step two builds lazily-constructed compressor warm
    // state (PowerSGD q matrices, per-parameter residuals).
    trainer.trainIteration(data, rng);
    trainer.trainIteration(data, rng);

    g_armedAllocs.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
    trainer.trainIteration(data, rng);
    trainer.trainIteration(data, rng);
    g_armed.store(false, std::memory_order_relaxed);
    return g_armedAllocs.load(std::memory_order_relaxed);
}

/** Deterministic prompt mix (lengths 3..5 over the gate vocab). */
std::vector<std::vector<int32_t>>
servePrompts()
{
    std::vector<std::vector<int32_t>> prompts;
    for (int r = 0; r < 6; ++r) {
        std::vector<int32_t> prompt;
        for (int t = 0; t < 3 + r % 3; ++t)
            prompt.push_back((7 * r + 3 * t + 1) % 24);
        prompts.push_back(std::move(prompt));
    }
    return prompts;
}

/**
 * @return armed allocation count over one full post-warmup request
 * wave (admission, batched pipelined decode, retirement).
 */
long long
runServeGate()
{
    serve::ServeConfig config;
    config.model.vocab = 24;
    config.model.hidden = 16;
    config.model.layers = 4;
    config.model.heads = 2;
    config.model.seqLen = 16;
    config.model.seed = 77;
    config.pipelineStages = 2;
    config.maxSequences = 4;
    config.maxBatchTokens = 16;
    serve::ServeEngine engine(config);

    const std::vector<std::vector<int32_t>> prompts = servePrompts();

    // Warmup: wave one sizes the slot arenas and ratchets every
    // token/ring capacity; wave two proves the shapes repeat. The
    // scheduler is deterministic, so wave three reuses exactly the
    // slot assignments (and therefore capacities) of wave one.
    for (int wave = 0; wave < 2; ++wave) {
        for (const auto &prompt : prompts)
            engine.submit(prompt, 8);
        engine.drain();
    }

    for (const auto &prompt : prompts)
        engine.submit(prompt, 8);
    g_armedAllocs.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
    engine.drain();
    g_armed.store(false, std::memory_order_relaxed);
    return g_armedAllocs.load(std::memory_order_relaxed);
}

/**
 * Full-telemetry gate: time-series rings, health probes with every
 * step sampled (OPTIMUS_PROBE_INTERVAL=1 equivalent), and an idle
 * exporter listener — the armed training step and serve wave must
 * still make zero heap allocations. Ring registration, alert-slot
 * setup, and the listener socket are warmup work by design.
 */
int
telemetryMain(const LmDataset &data)
{
    obs::enableMetrics(true);
    obs::enableProbes(true);
    obs::setProbeInterval(1);
    if (!obs::startMetricsServer(0))
        std::fprintf(stderr, "alloc_gate: warning: exporter "
                             "listener failed to start\n");
    const long long train_count =
        runGate(DpReduceMode::Overlapped, data);
    const long long serve_count = runServeGate();
    obs::stopMetricsServer();
    obs::enableProbes(false);
    obs::enableMetrics(false);
    obs::setProbeInterval(16);
    std::printf("alloc_gate: mode=telemetry  armed allocs=%lld "
                "(train step) / %lld (serve wave)\n",
                train_count, serve_count);
    if (train_count != 0 || serve_count != 0) {
        std::fprintf(stderr,
                     "alloc_gate: FAIL mode=telemetry: heap "
                     "allocation(s) with rings+probes+exporter "
                     "enabled\n");
        return 1;
    }
    std::printf("alloc_gate: PASS (zero steady-state heap "
                "allocations with rings, probes, and the exporter "
                "enabled)\n");
    return 0;
}

int
serveMain()
{
    const long long count = runServeGate();
    std::printf("alloc_gate: mode=serve      armed allocs=%lld "
                "(lifetime: heapAllocs=%lld arenaHits=%lld "
                "fallbacks=%lld peakBytes=%lld)\n",
                count, static_cast<long long>(mem::heapAllocs()),
                static_cast<long long>(mem::arenaHits()),
                static_cast<long long>(mem::heapFallbacks()),
                static_cast<long long>(mem::peakBytes()));
    if (count != 0) {
        std::fprintf(stderr,
                     "alloc_gate: FAIL mode=serve: %lld heap "
                     "allocation(s) in a steady-state request "
                     "wave\n",
                     count);
        return 1;
    }
    std::printf("alloc_gate: PASS (zero steady-state heap "
                "allocations on the serving decode path)\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (!arenaEnabled()) {
        std::printf("alloc_gate: OPTIMUS_ARENA=0, nothing to "
                    "enforce; skipping\n");
        return 0;
    }

    if (argc > 1 && std::strcmp(argv[1], "--serve") == 0)
        return serveMain();

    CorpusConfig cc;
    cc.vocab = 24;
    cc.totalTokens = 6000;
    cc.seed = 5;
    SyntheticCorpus corpus(cc);
    const LmDataset data(corpus.train(), 8);

    if (argc > 1 && std::strcmp(argv[1], "--telemetry") == 0)
        return telemetryMain(data);

    int failures = 0;
    for (const DpReduceMode mode :
         {DpReduceMode::Sequential, DpReduceMode::Barriered,
          DpReduceMode::Overlapped}) {
        const long long count = runGate(mode, data);
        const int64_t heap = mem::heapAllocs();
        std::printf("alloc_gate: mode=%-10s armed allocs=%lld "
                    "(lifetime: heapAllocs=%lld arenaHits=%lld "
                    "fallbacks=%lld peakBytes=%lld)\n",
                    modeName(mode), count,
                    static_cast<long long>(heap),
                    static_cast<long long>(mem::arenaHits()),
                    static_cast<long long>(mem::heapFallbacks()),
                    static_cast<long long>(mem::peakBytes()));
        if (count != 0) {
            std::fprintf(stderr,
                         "alloc_gate: FAIL mode=%s: %lld heap "
                         "allocation(s) in a steady-state step\n",
                         modeName(mode), count);
            ++failures;
        }
    }
    if (failures == 0)
        std::printf("alloc_gate: PASS (zero steady-state heap "
                    "allocations in all reduce modes)\n");
    return failures == 0 ? 0 : 1;
}
