/**
 * @file
 * Tests for the observability layer (src/obs): span nesting and
 * track assignment in the tracer, Chrome trace-event JSON export,
 * bitwise neutrality of span tracing on a full Trainer3d run (the
 * PR's acceptance gate, mirroring the CommTrace gate in
 * test_comm.cc), determinism of the metrics registry snapshot
 * against the thread-invariant CommTrace volumes, and the
 * tracesum-vs-StepPhaseTimes reconciliation (<1%), ring-buffer
 * wraparound and rollup arithmetic, compression-health probes
 * (hand-computed norms, bitwise neutrality of a probed run, exact
 * probe-vs-CommTrace byte reconciliation), the alert log's rate
 * limiter, the Prometheus exporter's text format and HTTP listener,
 * and the tracesum serve-wave summary. Run at OPTIMUS_THREADS in
 * {1, 4, 8} via tests/CMakeLists.txt.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "core/quality_experiment.hh"
#include "data/corpus.hh"
#include "data/dataset.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/probes.hh"
#include "obs/promexport.hh"
#include "obs/rings.hh"
#include "obs/trace.hh"
#include "obs/tracesum.hh"
#include "parallel/trainer3d.hh"
#include "runtime/runtime.hh"
#include "serve/engine.hh"

namespace optimus
{
namespace
{

/**
 * Tracing is one-trace-per-process; each test that records starts
 * from a clean slate (a prior test's trainer may have owned a
 * trace).
 */
void
resetTracing()
{
    obs::stopTracing();
    obs::clearTrace();
}

TEST(Tracer, DisabledPathEmitsNothing)
{
    resetTracing();
    ASSERT_FALSE(obs::tracingEnabled());
    {
        obs::ScopedSpan span("test", "noop");
    }
    obs::emitSpan("test", "noop", obs::nowNs(), obs::nowNs());
    obs::emitInstant("test", "noop");
    obs::emitCounter("test.noop", 1);
    EXPECT_TRUE(obs::traceEvents().empty());
}

TEST(Tracer, SpansNestAndCarryTracksAndArgs)
{
    resetTracing();
    obs::startTracing();
    ASSERT_TRUE(obs::tracingEnabled());
    {
        obs::ScopedSpan outer("test", "outer", 7, "arg", 42);
        obs::ScopedSpan inner("test", "inner");
        obs::emitInstant("test", "mark", 3);
        obs::emitCounter("test.counter", 11);
    }
    obs::stopTracing();

    const auto events = obs::traceEvents();
    const obs::TraceEvent *outer = nullptr;
    const obs::TraceEvent *inner = nullptr;
    const obs::TraceEvent *mark = nullptr;
    const obs::TraceEvent *counter = nullptr;
    for (const auto &e : events) {
        if (std::strcmp(e.name, "outer") == 0)
            outer = &e;
        else if (std::strcmp(e.name, "inner") == 0)
            inner = &e;
        else if (std::strcmp(e.name, "mark") == 0)
            mark = &e;
        else if (std::strcmp(e.name, "test.counter") == 0)
            counter = &e;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(mark, nullptr);
    ASSERT_NE(counter, nullptr);

    // The emitting thread is the one that called startTracing():
    // track 0.
    EXPECT_EQ(outer->track, 0);
    EXPECT_EQ(inner->track, 0);

    // Nesting: outer covers inner (both ScopedSpans close before
    // the block ends, inner first).
    EXPECT_LE(outer->beginNs, inner->beginNs);
    EXPECT_LE(inner->endNs, outer->endNs);
    EXPECT_GE(inner->endNs, inner->beginNs);

    EXPECT_EQ(outer->phase, 'X');
    EXPECT_EQ(outer->id, 7);
    ASSERT_NE(outer->argName0, nullptr);
    EXPECT_STREQ(outer->argName0, "arg");
    EXPECT_EQ(outer->argValue0, 42);

    EXPECT_EQ(mark->phase, 'i');
    EXPECT_EQ(mark->id, 3);
    EXPECT_EQ(counter->phase, 'C');
    EXPECT_EQ(counter->argValue0, 11);
}

TEST(Tracer, PooledParallelForRecordsRuntimeSpans)
{
    resetTracing();
    obs::startTracing();
    std::vector<double> sink(4096, 0.0);
    parallelFor(0, static_cast<int64_t>(sink.size()), 256,
                [&](int64_t lo, int64_t hi) {
                    for (int64_t i = lo; i < hi; ++i)
                        sink[i] = static_cast<double>(i) * 0.5;
                });
    obs::stopTracing();

    const auto events = obs::traceEvents();
    int parallel_for_spans = 0;
    int worker_chunk_spans = 0;
    for (const auto &e : events) {
        if (e.phase != 'X')
            continue;
        if (std::strcmp(e.name, "parallelFor") == 0) {
            ++parallel_for_spans;
            EXPECT_STREQ(e.category, "runtime");
            EXPECT_EQ(e.track, 0);
        } else if (std::strcmp(e.name, "chunks") == 0) {
            ++worker_chunk_spans;
            EXPECT_GT(e.track, 0); // pool workers sit on tracks >= 1
        }
    }
    if (runtimeThreads() > 1) {
        // The pooled path wraps the call on the issuing thread and
        // each worker's chunk walk on its own track.
        EXPECT_EQ(parallel_for_spans, 1);
        EXPECT_GE(worker_chunk_spans, 1);
    } else {
        // Single-threaded pools run parallelFor inline: the
        // top-level span is skipped by design (zero overhead, and
        // nothing concurrent to visualise).
        EXPECT_EQ(parallel_for_spans, 0);
        EXPECT_EQ(worker_chunk_spans, 0);
    }
}

TEST(Tracer, WriteTraceEmitsChromeJson)
{
    resetTracing();
    obs::startTracing();
    {
        obs::ScopedSpan span("test", "export", 1, "bytes", 64);
    }
    obs::emitCounter("test.export.counter", 5);
    obs::stopTracing();

    const std::string path =
        testing::TempDir() + "optimus_obs_export.json";
    ASSERT_TRUE(obs::writeTrace(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();
    const std::string json = text.str();

    // Chrome trace-event envelope with one event per line.
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("]}"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"export#1\""), std::string::npos);
    EXPECT_NE(json.find("\"bytes\":64"), std::string::npos);
}

GptConfig
tinyModel()
{
    GptConfig config;
    config.vocab = 24;
    config.hidden = 16;
    config.layers = 4;
    config.heads = 2;
    config.seqLen = 8;
    config.seed = 77;
    return config;
}

LmDataset
tinyData(int64_t seq_len)
{
    CorpusConfig cc;
    cc.vocab = 24;
    cc.totalTokens = 6000;
    cc.seed = 5;
    SyntheticCorpus corpus(cc);
    return {corpus.train(), seq_len};
}

/** Fully-compressed tiny grid on the overlapped engine path. */
Trainer3dConfig
tracedConfig(const std::string &trace_path)
{
    Trainer3dConfig config;
    config.model = tinyModel();
    config.dataParallel = 2;
    config.pipelineStages = 2;
    config.microBatches = 2;
    config.microBatchSize = 2;
    config.learningRate = 1e-3f;
    config.useAdam = true;
    config.reduceMode = DpReduceMode::Overlapped;
    config.bucketBytes = 2048;
    config.cb.enabled = true;
    config.dp.enabled = true;
    config.dp.stageFraction = 0.75;
    config.fusedEmbeddingSync = true;
    config.tracePath = trace_path;
    return config;
}

/** Exact float mismatch count across two trainers' parameters. */
int64_t
bitwiseMismatch(Trainer3d &a, Trainer3d &b)
{
    int64_t mismatches = 0;
    for (int d = 0; d < a.config().dataParallel; ++d) {
        for (int p = 0; p < a.config().pipelineStages; ++p) {
            const auto pa = a.stage(d, p).params();
            const auto pb = b.stage(d, p).params();
            EXPECT_EQ(pa.size(), pb.size());
            for (size_t j = 0; j < pa.size(); ++j) {
                const Tensor &ta = pa[j]->value;
                const Tensor &tb = pb[j]->value;
                EXPECT_EQ(ta.size(), tb.size());
                for (int64_t i = 0; i < ta.size(); ++i) {
                    if (std::memcmp(&ta.data()[i], &tb.data()[i],
                                    sizeof(float)) != 0)
                        ++mismatches;
                }
            }
        }
    }
    return mismatches;
}

TEST(TracedTrainer, SpanTracingIsBitwiseNeutral)
{
    // The acceptance gate: 5 iterations with span tracing on must
    // be bitwise identical to the untraced run at every
    // OPTIMUS_THREADS level ctest runs us at.
    resetTracing();
    const std::string path =
        testing::TempDir() + "optimus_obs_neutrality.json";
    {
        Trainer3d traced(tracedConfig(path));
        Trainer3d plain(tracedConfig(""));
        LmDataset data = tinyData(tinyModel().seqLen);
        Rng rng_t(11), rng_p(11);
        for (int it = 0; it < 5; ++it) {
            const auto st = traced.trainIteration(data, rng_t);
            const auto sp = plain.trainIteration(data, rng_p);
            ASSERT_EQ(st.loss, sp.loss) << "iteration " << it;
            ASSERT_EQ(st.dpVolume.actualBytes,
                      sp.dpVolume.actualBytes);
            ASSERT_EQ(st.interStageBytes, sp.interStageBytes);
        }
        EXPECT_EQ(bitwiseMismatch(traced, plain), 0);
    }
    // The owning trainer's destructor wrote the trace.
    EXPECT_FALSE(obs::tracingEnabled());
    const auto summary = obs::summarizeTraceFile(path);
    EXPECT_TRUE(summary.valid);
    EXPECT_GT(summary.spans, 0);
}

TEST(TraceSummary, ReconcilesWithStepPhaseTimes)
{
    resetTracing();
    const std::string path =
        testing::TempDir() + "optimus_obs_reconcile.json";
    StepPhaseTimes sum;
    {
        Trainer3d trainer(tracedConfig(path));
        LmDataset data = tinyData(tinyModel().seqLen);
        Rng rng(11);
        for (int it = 0; it < 5; ++it) {
            const auto stats = trainer.trainIteration(data, rng);
            sum.forwardBackward += stats.phases.forwardBackward;
            sum.dpReduce += stats.phases.dpReduce;
            sum.dpReduceBusy += stats.phases.dpReduceBusy;
            sum.overlapHidden += stats.phases.overlapHidden;
            sum.embSync += stats.phases.embSync;
            sum.optimizer += stats.phases.optimizer;
            sum.total += stats.phases.total;
        }
    }
    const obs::TraceSummary summary = obs::summarizeTraceFile(path);
    ASSERT_TRUE(summary.valid);
    EXPECT_EQ(summary.steps, 5);

    // Phase spans are emitted from the very clock readings that
    // build StepPhaseTimes, so the export's microsecond formatting
    // (3 decimals = ns resolution) is the only divergence. The
    // acceptance tolerance is <1% with a small absolute floor for
    // near-zero phases.
    const auto near = [](double trace_s, double timer_s) {
        return std::abs(trace_s - timer_s) <=
               0.01 * timer_s + 2e-6;
    };
    EXPECT_TRUE(near(summary.forwardBackward, sum.forwardBackward))
        << summary.forwardBackward << " vs " << sum.forwardBackward;
    EXPECT_TRUE(near(summary.dpReduce, sum.dpReduce))
        << summary.dpReduce << " vs " << sum.dpReduce;
    EXPECT_TRUE(near(summary.dpReduceBusy, sum.dpReduceBusy))
        << summary.dpReduceBusy << " vs " << sum.dpReduceBusy;
    EXPECT_TRUE(near(summary.overlapHidden, sum.overlapHidden))
        << summary.overlapHidden << " vs " << sum.overlapHidden;
    EXPECT_TRUE(near(summary.embSync, sum.embSync))
        << summary.embSync << " vs " << sum.embSync;
    EXPECT_TRUE(near(summary.optimizer, sum.optimizer))
        << summary.optimizer << " vs " << sum.optimizer;
    EXPECT_TRUE(near(summary.total, sum.total))
        << summary.total << " vs " << sum.total;

    // The rendered table carries every reconciled row.
    const std::string table = obs::renderTraceSummary(summary);
    EXPECT_NE(table.find("dpReduceBusy"), std::string::npos);
    EXPECT_NE(table.find("overlapHidden"), std::string::npos);
    EXPECT_NE(table.find("total(step)"), std::string::npos);
}

TEST(Metrics, SnapshotMatchesCommTraceAndIsDeterministic)
{
    resetTracing();
    auto &registry = obs::MetricsRegistry::instance();

    const auto runOnce = [&]() {
        registry.resetValues();
        obs::enableMetrics(true);
        Trainer3dConfig config = tracedConfig("");
        config.traceCommunication = true;
        Trainer3d trainer(config);
        LmDataset data = tinyData(tinyModel().seqLen);
        Rng rng(11);
        for (int it = 0; it < 3; ++it)
            trainer.trainIteration(data, rng);
        obs::enableMetrics(false);

        // Pin the semantic counters against the CommTrace, whose
        // thread-invariance test_comm.cc already locks down.
        const CommTrace *trace = trainer.trace();
        EXPECT_NE(trace, nullptr);
        if (trace != nullptr) {
            const auto snap = registry.counterSnapshot();
            const auto dp = trace->volume(CommPhase::DpReduce);
            const auto emb = trace->volume(CommPhase::EmbSync);
            EXPECT_EQ(snap.at("comm.dpReduce.events"),
                      trace->count(CommPhase::DpReduce));
            EXPECT_EQ(snap.at("comm.dpReduce.exactBytes"),
                      dp.exactBytes);
            EXPECT_EQ(snap.at("comm.dpReduce.wireBytes"),
                      dp.wireBytes);
            EXPECT_EQ(snap.at("comm.embSync.events"),
                      trace->count(CommPhase::EmbSync));
            EXPECT_EQ(snap.at("comm.embSync.wireBytes"),
                      emb.wireBytes);
            EXPECT_EQ(snap.at("trainer.iterations"), 3);
            EXPECT_GT(snap.at("reduce.buckets.reduced"), 0);
            EXPECT_GT(snap.at("runtime.parallelFor.calls"), 0);
            EXPECT_GT(snap.at("runtime.tasks.submitted"), 0);
            // The allocation observability gauges are published
            // every step; steady-state behavior is enforced by
            // test_arena / alloc_gate, presence is pinned here.
            EXPECT_GT(snap.at("mem.arenaHits"), 0);
            EXPECT_GE(snap.at("mem.heapAllocs"), 0);
        }
        auto snap = registry.counterSnapshot();
        // mem.* mirrors the process-lifetime tallies behind
        // mem::heapAllocs() et al. — cumulative across runs by
        // design, so they are excluded from the run-to-run
        // determinism comparison below.
        for (auto it = snap.begin(); it != snap.end();) {
            if (it->first.rfind("mem.", 0) == 0)
                it = snap.erase(it);
            else
                ++it;
        }
        return snap;
    };

    const auto first = runOnce();
    const std::string json_a = registry.snapshotJson();
    const std::string json_b = registry.snapshotJson();
    EXPECT_EQ(json_a, json_b); // export itself is deterministic

    // JSON export is sorted and integer-valued; spot-check shape.
    EXPECT_EQ(json_a.rfind("{", 0), 0u);
    EXPECT_NE(json_a.find("\"trainer.iterations\":3"),
              std::string::npos);
    EXPECT_LT(json_a.find("comm.dpReduce.events"),
              json_a.find("trainer.iterations"));

    // An identical second run reproduces the identical snapshot
    // (semantic counts, not scheduling accidents).
    const auto second = runOnce();
    EXPECT_EQ(first, second);
}

TEST(Rings, WraparoundKeepsNewestAndRollupIsExact)
{
    obs::Ring ring(8);
    EXPECT_EQ(ring.capacity(), 8);
    EXPECT_EQ(ring.size(), 0);
    for (int i = 0; i < 20; ++i)
        ring.push(static_cast<double>(i));

    // 20 pushes through capacity 8 retain exactly 12..19.
    EXPECT_EQ(ring.size(), 8);
    EXPECT_EQ(ring.totalPushed(), 20);
    EXPECT_EQ(ring.firstIndex(), 12);
    for (int64_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring.at(i), static_cast<double>(12 + i));

    const obs::RingRollup roll = ring.rollup();
    EXPECT_EQ(roll.count, 8);
    EXPECT_EQ(roll.total, 20);
    EXPECT_EQ(roll.min, 12.0);
    EXPECT_EQ(roll.max, 19.0);
    EXPECT_EQ(roll.mean, 15.5);
    EXPECT_EQ(roll.last, 19.0);
    // Nearest-rank p99 of an 8-sample window is the window max.
    EXPECT_EQ(roll.p99, 19.0);

    std::vector<double> window;
    ring.snapshot(window);
    ASSERT_EQ(window.size(), 8u);
    EXPECT_EQ(window.front(), 12.0);
    EXPECT_EQ(window.back(), 19.0);

    ring.reset();
    EXPECT_EQ(ring.size(), 0);
    EXPECT_EQ(ring.capacity(), 8);

    // Registry: find-or-create returns a stable reference and the
    // creation-time capacity wins over later requests.
    obs::Ring &a = obs::RingRegistry::instance().ring("test.ring", 4);
    obs::Ring &b =
        obs::RingRegistry::instance().ring("test.ring", 1024);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.capacity(), 4);
}

TEST(Probes, HealthArithmeticMatchesHandComputedNorms)
{
    // l2 helpers against hand-evaluated sums.
    const float a[4] = {3.0f, 4.0f, 0.0f, -2.0f};
    const float b[4] = {1.0f, 4.0f, 2.0f, 0.0f};
    EXPECT_EQ(obs::l2NormSq(a, 4), 29.0);       // 9+16+0+4
    EXPECT_EQ(obs::l2DiffNormSq(a, b, 4), 12.0); // 4+0+4+4

    obs::CompressionHealth h;
    h.sends = 4;
    h.compressedSends = 3;
    h.exactBytes = 4000;
    h.wireBytes = 1000;
    h.inputNormSq = 29.0;
    h.errNormSq = 12.0;
    h.residualNormSq = 16.0;
    h.cosineSum = 2.7;
    h.cosineCount = 3;
    EXPECT_EQ(h.wireRatio(), 0.25);
    EXPECT_EQ(h.relError(), std::sqrt(12.0 / 29.0));
    EXPECT_EQ(h.residualNorm(), 4.0);
    EXPECT_EQ(h.meanCosine(), 2.7 / 3.0);

    // Defaults: nothing moved / nothing sampled degrade to neutral.
    const obs::CompressionHealth empty;
    EXPECT_EQ(empty.wireRatio(), 1.0);
    EXPECT_EQ(empty.relError(), 0.0);
    EXPECT_EQ(empty.meanCosine(), 1.0);

    // merge() folds accumulators; delta() subtracts them but keeps
    // residualNormSq (state, not accumulation).
    obs::CompressionHealth sum = h;
    sum.merge(h);
    EXPECT_EQ(sum.sends, 8);
    EXPECT_EQ(sum.exactBytes, 8000);
    EXPECT_EQ(sum.inputNormSq, 58.0);
    EXPECT_EQ(sum.residualNormSq, 32.0);
    const obs::CompressionHealth window = sum.delta(h);
    EXPECT_EQ(window.sends, 4);
    EXPECT_EQ(window.wireBytes, 1000);
    EXPECT_EQ(window.errNormSq, 12.0);
    EXPECT_EQ(window.cosineCount, 3);
    EXPECT_EQ(window.residualNormSq, sum.residualNormSq);
}

TEST(Probes, SampledCadenceFollowsProbeStepBegin)
{
    obs::enableProbes(true);
    obs::setProbeInterval(4);
    obs::probeStepBegin(0);
    EXPECT_TRUE(obs::probeActive());
    obs::probeStepBegin(1);
    EXPECT_FALSE(obs::probeActive());
    obs::probeStepBegin(4);
    EXPECT_TRUE(obs::probeActive());

    // Disabling probes disarms the gate immediately, and a begin
    // while disabled stays disarmed.
    obs::enableProbes(false);
    EXPECT_FALSE(obs::probeActive());
    obs::probeStepBegin(0);
    EXPECT_FALSE(obs::probeActive());

    obs::setProbeInterval(0); // clamps to 1
    EXPECT_EQ(obs::probeInterval(), 1);
    obs::setProbeInterval(16);
}

TEST(Alerts, RateLimiterHoldsPerChannelAndKind)
{
    obs::AlertLog &log = obs::AlertLog::instance();
    log.reset();
    obs::probeThresholds().alertIntervalSteps = 10;

    EXPECT_TRUE(log.raise("dp", obs::AlertKind::RelError, 0, 0.97,
                          0.95));
    for (int64_t step = 1; step < 10; ++step) {
        EXPECT_FALSE(log.raise("dp", obs::AlertKind::RelError, step,
                               0.98, 0.95));
    }
    // A different kind (or channel) has its own slot.
    EXPECT_TRUE(log.raise("dp", obs::AlertKind::GradNorm, 1, 50.0,
                          10.0));
    EXPECT_TRUE(log.raise("pp", obs::AlertKind::RelError, 1, 0.99,
                          0.95));
    // The interval expires at lastStep + interval.
    EXPECT_TRUE(log.raise("dp", obs::AlertKind::RelError, 10, 0.96,
                          0.95));

    EXPECT_EQ(log.raisedTotal(), 4);
    const std::vector<obs::Alert> alerts = log.snapshot();
    ASSERT_EQ(alerts.size(), 4u);
    EXPECT_STREQ(alerts[0].channel, "dp");
    EXPECT_EQ(alerts[0].step, 0);
    EXPECT_EQ(alerts[0].value, 0.97);
    EXPECT_EQ(alerts[0].threshold, 0.95);
    EXPECT_STREQ(obs::alertKindName(alerts[1].kind), "gradNorm");
    log.reset();
    EXPECT_EQ(log.raisedTotal(), 0);
}

TEST(ProbedTrainer, ProbesAreBitwiseNeutralAndReconcile)
{
    // The probe acceptance gate: 5 probed iterations (every step
    // sampled, rings on) must be bitwise identical to the unprobed
    // run at every OPTIMUS_THREADS level ctest runs us at.
    resetTracing();
    obs::enableProbes(false);
    std::vector<double> plain_losses;
    Trainer3d plain(tracedConfig(""));
    {
        LmDataset data = tinyData(tinyModel().seqLen);
        Rng rng(11);
        for (int it = 0; it < 5; ++it)
            plain_losses.push_back(
                plain.trainIteration(data, rng).loss);
    }

    obs::RingRegistry::instance().resetValues();
    obs::enableMetrics(true);
    obs::enableProbes(true);
    obs::setProbeInterval(1);
    Trainer3dConfig probed_config = tracedConfig("");
    probed_config.traceCommunication = true;
    Trainer3d probed(probed_config);
    {
        LmDataset data = tinyData(tinyModel().seqLen);
        Rng rng(11);
        for (int it = 0; it < 5; ++it) {
            EXPECT_EQ(probed.trainIteration(data, rng).loss,
                      plain_losses[static_cast<size_t>(it)])
                << "iteration " << it;
        }
    }
    const obs::CompressionHealth pp = probed.ppHealth();
    const obs::CompressionHealth dp = probed.dpHealth();
    obs::enableProbes(false);
    obs::enableMetrics(false);
    obs::setProbeInterval(16);

    EXPECT_EQ(bitwiseMismatch(probed, plain), 0);

    // The probes actually observed the run...
    EXPECT_GT(pp.compressedSends, 0);
    EXPECT_GT(dp.compressedSends, 0);
    EXPECT_GT(pp.inputNormSq, 0.0);
    EXPECT_GT(dp.inputNormSq, 0.0);
    EXPECT_GT(pp.relError(), 0.0);
    EXPECT_LT(pp.relError(), 1.0);
    EXPECT_GT(dp.meanCosine(), 0.0);
    EXPECT_LE(dp.meanCosine(), 1.0);
    EXPECT_LT(dp.wireRatio(), 1.0);

    // ...and its byte totals reconcile with the CommTrace exactly:
    // both are folds over the same transport events.
    const CommTrace *trace = probed.trace();
    ASSERT_NE(trace, nullptr);
    const auto dp_volume = trace->volume(CommPhase::DpReduce);
    EXPECT_EQ(dp.exactBytes, dp_volume.exactBytes);
    EXPECT_EQ(dp.wireBytes, dp_volume.wireBytes);

    // The probe rings sampled every step.
    const obs::Ring *relerr =
        obs::RingRegistry::instance().find("probe.dp.relerr");
    ASSERT_NE(relerr, nullptr);
    EXPECT_EQ(relerr->totalPushed(), 5);
    const obs::Ring *gradnorm =
        obs::RingRegistry::instance().find("train.gradnorm");
    ASSERT_NE(gradnorm, nullptr);
    EXPECT_EQ(gradnorm->totalPushed(), 5);
    EXPECT_GT(gradnorm->rollup().min, 0.0);
}

TEST(Promexport, RendersExpositionFormatAndServesHttp)
{
    obs::RingRegistry::instance().resetValues();
    obs::Ring &ring =
        obs::RingRegistry::instance().ring("test.export.ring", 8);
    for (int i = 0; i < 3; ++i)
        ring.push(static_cast<double>(i) + 0.5);
    obs::AlertLog::instance().reset();
    obs::AlertLog::instance().raise("test", obs::AlertKind::RelError,
                                    7, 0.99, 0.95);

    const std::string text = obs::renderPrometheusText();
    EXPECT_NE(text.find("# TYPE optimus_ring gauge"),
              std::string::npos);
    EXPECT_NE(text.find("optimus_ring{ring=\"test.export.ring\","
                        "stat=\"last\"} 2.5"),
              std::string::npos);
    EXPECT_NE(text.find("# ring test.export.ring 0 0.5 1.5 2.5"),
              std::string::npos);
    EXPECT_NE(text.find("optimus_alerts_total 1"),
              std::string::npos);
    EXPECT_NE(text.find("# alert step=7 channel=test "
                        "kind=relError value=0.99 threshold=0.95"),
              std::string::npos);

    // Dump: atomic write, parseable back.
    const std::string path =
        testing::TempDir() + "optimus_obs_metrics.prom";
    ASSERT_TRUE(obs::writeMetricsProm(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream dumped;
    dumped << in.rdbuf();
    EXPECT_NE(dumped.str().find("# ring test.export.ring"),
              std::string::npos);

    // Live scrape over the loopback listener on an ephemeral port.
    ASSERT_TRUE(obs::startMetricsServer(0));
    const int port = obs::metricsServerPort();
    ASSERT_GT(port, 0);

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ASSERT_EQ(::connect(fd,
                        reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char request[] =
        "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n";
    ASSERT_GT(::send(fd, request, sizeof(request) - 1, 0), 0);
    std::string response;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        response.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    obs::stopMetricsServer();
    EXPECT_EQ(obs::metricsServerPort(), -1);

    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(
        response.find("Content-Type: text/plain; version=0.0.4"),
        std::string::npos);
    EXPECT_NE(response.find("optimus_ring{ring=\"test.export.ring"),
              std::string::npos);
    EXPECT_GE(obs::metricsScrapeCount(), 1);
    obs::AlertLog::instance().reset();
}

TEST(TraceSummaryServe, SummarizesWavesAndReconcilesBoundary)
{
    resetTracing();
    obs::startTracing();

    serve::ServeConfig config;
    config.model.vocab = 24;
    config.model.hidden = 16;
    config.model.layers = 4;
    config.model.heads = 2;
    config.model.seqLen = 16;
    config.model.seed = 77;
    config.pipelineStages = 2;
    config.maxSequences = 4;
    config.maxBatchTokens = 16;
    config.boundary.kind = CompressorKind::TopK;
    config.boundary.topkFraction = 0.5;
    serve::ServeEngine engine(config);
    for (int r = 0; r < 4; ++r) {
        std::vector<int32_t> prompt;
        for (int t = 0; t < 3 + r % 3; ++t)
            prompt.push_back((7 * r + 3 * t + 1) % 24);
        engine.submit(prompt, 4);
    }
    engine.drain();
    obs::stopTracing();

    const std::string path =
        testing::TempDir() + "optimus_obs_serve_trace.json";
    ASSERT_TRUE(obs::writeTrace(path));
    const obs::TraceSummary summary = obs::summarizeTraceFile(path);
    ASSERT_TRUE(summary.valid);

    // Every scheduler round traced as a wave; prefill and decode
    // phase seconds nest inside the wave spans.
    EXPECT_GT(summary.serveWaves, 0);
    EXPECT_EQ(summary.serveWaves,
              static_cast<int64_t>(summary.waves.size()));
    EXPECT_GT(summary.serveDecode, 0.0);
    EXPECT_GT(summary.servePrefill, 0.0);
    double wave_step = 0.0;
    int64_t wave_prefills = 0;
    for (const obs::ServeWave &wave : summary.waves) {
        wave_step += wave.stepSeconds;
        wave_prefills += wave.prefills;
        EXPECT_LE(wave.prefillSeconds + wave.decodeSeconds,
                  wave.stepSeconds + 1e-5);
    }
    EXPECT_EQ(wave_prefills, 4); // one prefill span per request
    EXPECT_NEAR(wave_step, summary.serveStep, 1e-9);

    // The per-verb comm rollup folds the same p2pSend events the
    // engine's probe volume does — exact byte reconciliation.
    const auto it = summary.commByVerb.find("interStage/p2pSend");
    ASSERT_NE(it, summary.commByVerb.end());
    const obs::CompressionHealth health = engine.boundaryHealth();
    EXPECT_EQ(static_cast<int64_t>(it->second.exactBytes),
              health.exactBytes);
    EXPECT_EQ(static_cast<int64_t>(it->second.wireBytes),
              health.wireBytes);
    EXPECT_EQ(it->second.spans, health.sends);

    const std::string table = obs::renderTraceSummary(summary);
    EXPECT_NE(table.find("serve waves"), std::string::npos);
    EXPECT_NE(table.find("decode"), std::string::npos);
    EXPECT_NE(table.find("interStage/p2pSend"), std::string::npos);
}

TEST(QualityExperiment, CollectsMetricsSnapshot)
{
    resetTracing();
    QualityRunConfig config;
    config.model.hidden = 16;
    config.model.heads = 2;
    config.iterations = 4;
    config.corpus.totalTokens = 6000;
    config.collectMetrics = true;
    const auto result =
        runQualityExperiment(config, presets::cb());
    EXPECT_FALSE(obs::metricsEnabled());
    ASSERT_FALSE(result.metrics.empty());
    EXPECT_EQ(result.metrics.at("trainer.iterations"), 4);
    EXPECT_GT(result.metrics.at("runtime.parallelFor.calls"), 0);
    EXPECT_GT(result.metrics.at("comm.dpReduce.events"), 0);
}

} // namespace
} // namespace optimus
