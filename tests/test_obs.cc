/**
 * @file
 * Tests for the observability layer (src/obs): span nesting and
 * track assignment in the tracer, Chrome trace-event JSON export,
 * bitwise neutrality of span tracing on a full Trainer3d run (the
 * PR's acceptance gate, mirroring the CommTrace gate in
 * test_comm.cc), determinism of the metrics registry snapshot
 * against the thread-invariant CommTrace volumes, and the
 * tracesum-vs-StepPhaseTimes reconciliation (<1%). Run at
 * OPTIMUS_THREADS in {1, 4, 8} via tests/CMakeLists.txt.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "core/quality_experiment.hh"
#include "data/corpus.hh"
#include "data/dataset.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "obs/tracesum.hh"
#include "parallel/trainer3d.hh"
#include "runtime/runtime.hh"

namespace optimus
{
namespace
{

/**
 * Tracing is one-trace-per-process; each test that records starts
 * from a clean slate (a prior test's trainer may have owned a
 * trace).
 */
void
resetTracing()
{
    obs::stopTracing();
    obs::clearTrace();
}

TEST(Tracer, DisabledPathEmitsNothing)
{
    resetTracing();
    ASSERT_FALSE(obs::tracingEnabled());
    {
        obs::ScopedSpan span("test", "noop");
    }
    obs::emitSpan("test", "noop", obs::nowNs(), obs::nowNs());
    obs::emitInstant("test", "noop");
    obs::emitCounter("test.noop", 1);
    EXPECT_TRUE(obs::traceEvents().empty());
}

TEST(Tracer, SpansNestAndCarryTracksAndArgs)
{
    resetTracing();
    obs::startTracing();
    ASSERT_TRUE(obs::tracingEnabled());
    {
        obs::ScopedSpan outer("test", "outer", 7, "arg", 42);
        obs::ScopedSpan inner("test", "inner");
        obs::emitInstant("test", "mark", 3);
        obs::emitCounter("test.counter", 11);
    }
    obs::stopTracing();

    const auto events = obs::traceEvents();
    const obs::TraceEvent *outer = nullptr;
    const obs::TraceEvent *inner = nullptr;
    const obs::TraceEvent *mark = nullptr;
    const obs::TraceEvent *counter = nullptr;
    for (const auto &e : events) {
        if (std::strcmp(e.name, "outer") == 0)
            outer = &e;
        else if (std::strcmp(e.name, "inner") == 0)
            inner = &e;
        else if (std::strcmp(e.name, "mark") == 0)
            mark = &e;
        else if (std::strcmp(e.name, "test.counter") == 0)
            counter = &e;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(mark, nullptr);
    ASSERT_NE(counter, nullptr);

    // The emitting thread is the one that called startTracing():
    // track 0.
    EXPECT_EQ(outer->track, 0);
    EXPECT_EQ(inner->track, 0);

    // Nesting: outer covers inner (both ScopedSpans close before
    // the block ends, inner first).
    EXPECT_LE(outer->beginNs, inner->beginNs);
    EXPECT_LE(inner->endNs, outer->endNs);
    EXPECT_GE(inner->endNs, inner->beginNs);

    EXPECT_EQ(outer->phase, 'X');
    EXPECT_EQ(outer->id, 7);
    ASSERT_NE(outer->argName0, nullptr);
    EXPECT_STREQ(outer->argName0, "arg");
    EXPECT_EQ(outer->argValue0, 42);

    EXPECT_EQ(mark->phase, 'i');
    EXPECT_EQ(mark->id, 3);
    EXPECT_EQ(counter->phase, 'C');
    EXPECT_EQ(counter->argValue0, 11);
}

TEST(Tracer, PooledParallelForRecordsRuntimeSpans)
{
    resetTracing();
    obs::startTracing();
    std::vector<double> sink(4096, 0.0);
    parallelFor(0, static_cast<int64_t>(sink.size()), 256,
                [&](int64_t lo, int64_t hi) {
                    for (int64_t i = lo; i < hi; ++i)
                        sink[i] = static_cast<double>(i) * 0.5;
                });
    obs::stopTracing();

    const auto events = obs::traceEvents();
    int parallel_for_spans = 0;
    int worker_chunk_spans = 0;
    for (const auto &e : events) {
        if (e.phase != 'X')
            continue;
        if (std::strcmp(e.name, "parallelFor") == 0) {
            ++parallel_for_spans;
            EXPECT_STREQ(e.category, "runtime");
            EXPECT_EQ(e.track, 0);
        } else if (std::strcmp(e.name, "chunks") == 0) {
            ++worker_chunk_spans;
            EXPECT_GT(e.track, 0); // pool workers sit on tracks >= 1
        }
    }
    if (runtimeThreads() > 1) {
        // The pooled path wraps the call on the issuing thread and
        // each worker's chunk walk on its own track.
        EXPECT_EQ(parallel_for_spans, 1);
        EXPECT_GE(worker_chunk_spans, 1);
    } else {
        // Single-threaded pools run parallelFor inline: the
        // top-level span is skipped by design (zero overhead, and
        // nothing concurrent to visualise).
        EXPECT_EQ(parallel_for_spans, 0);
        EXPECT_EQ(worker_chunk_spans, 0);
    }
}

TEST(Tracer, WriteTraceEmitsChromeJson)
{
    resetTracing();
    obs::startTracing();
    {
        obs::ScopedSpan span("test", "export", 1, "bytes", 64);
    }
    obs::emitCounter("test.export.counter", 5);
    obs::stopTracing();

    const std::string path =
        testing::TempDir() + "optimus_obs_export.json";
    ASSERT_TRUE(obs::writeTrace(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();
    const std::string json = text.str();

    // Chrome trace-event envelope with one event per line.
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("]}"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"export#1\""), std::string::npos);
    EXPECT_NE(json.find("\"bytes\":64"), std::string::npos);
}

GptConfig
tinyModel()
{
    GptConfig config;
    config.vocab = 24;
    config.hidden = 16;
    config.layers = 4;
    config.heads = 2;
    config.seqLen = 8;
    config.seed = 77;
    return config;
}

LmDataset
tinyData(int64_t seq_len)
{
    CorpusConfig cc;
    cc.vocab = 24;
    cc.totalTokens = 6000;
    cc.seed = 5;
    SyntheticCorpus corpus(cc);
    return {corpus.train(), seq_len};
}

/** Fully-compressed tiny grid on the overlapped engine path. */
Trainer3dConfig
tracedConfig(const std::string &trace_path)
{
    Trainer3dConfig config;
    config.model = tinyModel();
    config.dataParallel = 2;
    config.pipelineStages = 2;
    config.microBatches = 2;
    config.microBatchSize = 2;
    config.learningRate = 1e-3f;
    config.useAdam = true;
    config.reduceMode = DpReduceMode::Overlapped;
    config.bucketBytes = 2048;
    config.cb.enabled = true;
    config.dp.enabled = true;
    config.dp.stageFraction = 0.75;
    config.fusedEmbeddingSync = true;
    config.tracePath = trace_path;
    return config;
}

/** Exact float mismatch count across two trainers' parameters. */
int64_t
bitwiseMismatch(Trainer3d &a, Trainer3d &b)
{
    int64_t mismatches = 0;
    for (int d = 0; d < a.config().dataParallel; ++d) {
        for (int p = 0; p < a.config().pipelineStages; ++p) {
            const auto pa = a.stage(d, p).params();
            const auto pb = b.stage(d, p).params();
            EXPECT_EQ(pa.size(), pb.size());
            for (size_t j = 0; j < pa.size(); ++j) {
                const Tensor &ta = pa[j]->value;
                const Tensor &tb = pb[j]->value;
                EXPECT_EQ(ta.size(), tb.size());
                for (int64_t i = 0; i < ta.size(); ++i) {
                    if (std::memcmp(&ta.data()[i], &tb.data()[i],
                                    sizeof(float)) != 0)
                        ++mismatches;
                }
            }
        }
    }
    return mismatches;
}

TEST(TracedTrainer, SpanTracingIsBitwiseNeutral)
{
    // The acceptance gate: 5 iterations with span tracing on must
    // be bitwise identical to the untraced run at every
    // OPTIMUS_THREADS level ctest runs us at.
    resetTracing();
    const std::string path =
        testing::TempDir() + "optimus_obs_neutrality.json";
    {
        Trainer3d traced(tracedConfig(path));
        Trainer3d plain(tracedConfig(""));
        LmDataset data = tinyData(tinyModel().seqLen);
        Rng rng_t(11), rng_p(11);
        for (int it = 0; it < 5; ++it) {
            const auto st = traced.trainIteration(data, rng_t);
            const auto sp = plain.trainIteration(data, rng_p);
            ASSERT_EQ(st.loss, sp.loss) << "iteration " << it;
            ASSERT_EQ(st.dpVolume.actualBytes,
                      sp.dpVolume.actualBytes);
            ASSERT_EQ(st.interStageBytes, sp.interStageBytes);
        }
        EXPECT_EQ(bitwiseMismatch(traced, plain), 0);
    }
    // The owning trainer's destructor wrote the trace.
    EXPECT_FALSE(obs::tracingEnabled());
    const auto summary = obs::summarizeTraceFile(path);
    EXPECT_TRUE(summary.valid);
    EXPECT_GT(summary.spans, 0);
}

TEST(TraceSummary, ReconcilesWithStepPhaseTimes)
{
    resetTracing();
    const std::string path =
        testing::TempDir() + "optimus_obs_reconcile.json";
    StepPhaseTimes sum;
    {
        Trainer3d trainer(tracedConfig(path));
        LmDataset data = tinyData(tinyModel().seqLen);
        Rng rng(11);
        for (int it = 0; it < 5; ++it) {
            const auto stats = trainer.trainIteration(data, rng);
            sum.forwardBackward += stats.phases.forwardBackward;
            sum.dpReduce += stats.phases.dpReduce;
            sum.dpReduceBusy += stats.phases.dpReduceBusy;
            sum.overlapHidden += stats.phases.overlapHidden;
            sum.embSync += stats.phases.embSync;
            sum.optimizer += stats.phases.optimizer;
            sum.total += stats.phases.total;
        }
    }
    const obs::TraceSummary summary = obs::summarizeTraceFile(path);
    ASSERT_TRUE(summary.valid);
    EXPECT_EQ(summary.steps, 5);

    // Phase spans are emitted from the very clock readings that
    // build StepPhaseTimes, so the export's microsecond formatting
    // (3 decimals = ns resolution) is the only divergence. The
    // acceptance tolerance is <1% with a small absolute floor for
    // near-zero phases.
    const auto near = [](double trace_s, double timer_s) {
        return std::abs(trace_s - timer_s) <=
               0.01 * timer_s + 2e-6;
    };
    EXPECT_TRUE(near(summary.forwardBackward, sum.forwardBackward))
        << summary.forwardBackward << " vs " << sum.forwardBackward;
    EXPECT_TRUE(near(summary.dpReduce, sum.dpReduce))
        << summary.dpReduce << " vs " << sum.dpReduce;
    EXPECT_TRUE(near(summary.dpReduceBusy, sum.dpReduceBusy))
        << summary.dpReduceBusy << " vs " << sum.dpReduceBusy;
    EXPECT_TRUE(near(summary.overlapHidden, sum.overlapHidden))
        << summary.overlapHidden << " vs " << sum.overlapHidden;
    EXPECT_TRUE(near(summary.embSync, sum.embSync))
        << summary.embSync << " vs " << sum.embSync;
    EXPECT_TRUE(near(summary.optimizer, sum.optimizer))
        << summary.optimizer << " vs " << sum.optimizer;
    EXPECT_TRUE(near(summary.total, sum.total))
        << summary.total << " vs " << sum.total;

    // The rendered table carries every reconciled row.
    const std::string table = obs::renderTraceSummary(summary);
    EXPECT_NE(table.find("dpReduceBusy"), std::string::npos);
    EXPECT_NE(table.find("overlapHidden"), std::string::npos);
    EXPECT_NE(table.find("total(step)"), std::string::npos);
}

TEST(Metrics, SnapshotMatchesCommTraceAndIsDeterministic)
{
    resetTracing();
    auto &registry = obs::MetricsRegistry::instance();

    const auto runOnce = [&]() {
        registry.resetValues();
        obs::enableMetrics(true);
        Trainer3dConfig config = tracedConfig("");
        config.traceCommunication = true;
        Trainer3d trainer(config);
        LmDataset data = tinyData(tinyModel().seqLen);
        Rng rng(11);
        for (int it = 0; it < 3; ++it)
            trainer.trainIteration(data, rng);
        obs::enableMetrics(false);

        // Pin the semantic counters against the CommTrace, whose
        // thread-invariance test_comm.cc already locks down.
        const CommTrace *trace = trainer.trace();
        EXPECT_NE(trace, nullptr);
        if (trace != nullptr) {
            const auto snap = registry.counterSnapshot();
            const auto dp = trace->volume(CommPhase::DpReduce);
            const auto emb = trace->volume(CommPhase::EmbSync);
            EXPECT_EQ(snap.at("comm.dpReduce.events"),
                      trace->count(CommPhase::DpReduce));
            EXPECT_EQ(snap.at("comm.dpReduce.exactBytes"),
                      dp.exactBytes);
            EXPECT_EQ(snap.at("comm.dpReduce.wireBytes"),
                      dp.wireBytes);
            EXPECT_EQ(snap.at("comm.embSync.events"),
                      trace->count(CommPhase::EmbSync));
            EXPECT_EQ(snap.at("comm.embSync.wireBytes"),
                      emb.wireBytes);
            EXPECT_EQ(snap.at("trainer.iterations"), 3);
            EXPECT_GT(snap.at("reduce.buckets.reduced"), 0);
            EXPECT_GT(snap.at("runtime.parallelFor.calls"), 0);
            EXPECT_GT(snap.at("runtime.tasks.submitted"), 0);
            // The allocation observability gauges are published
            // every step; steady-state behavior is enforced by
            // test_arena / alloc_gate, presence is pinned here.
            EXPECT_GT(snap.at("mem.arenaHits"), 0);
            EXPECT_GE(snap.at("mem.heapAllocs"), 0);
        }
        auto snap = registry.counterSnapshot();
        // mem.* mirrors the process-lifetime tallies behind
        // mem::heapAllocs() et al. — cumulative across runs by
        // design, so they are excluded from the run-to-run
        // determinism comparison below.
        for (auto it = snap.begin(); it != snap.end();) {
            if (it->first.rfind("mem.", 0) == 0)
                it = snap.erase(it);
            else
                ++it;
        }
        return snap;
    };

    const auto first = runOnce();
    const std::string json_a = registry.snapshotJson();
    const std::string json_b = registry.snapshotJson();
    EXPECT_EQ(json_a, json_b); // export itself is deterministic

    // JSON export is sorted and integer-valued; spot-check shape.
    EXPECT_EQ(json_a.rfind("{", 0), 0u);
    EXPECT_NE(json_a.find("\"trainer.iterations\":3"),
              std::string::npos);
    EXPECT_LT(json_a.find("comm.dpReduce.events"),
              json_a.find("trainer.iterations"));

    // An identical second run reproduces the identical snapshot
    // (semantic counts, not scheduling accidents).
    const auto second = runOnce();
    EXPECT_EQ(first, second);
}

TEST(QualityExperiment, CollectsMetricsSnapshot)
{
    resetTracing();
    QualityRunConfig config;
    config.model.hidden = 16;
    config.model.heads = 2;
    config.iterations = 4;
    config.corpus.totalTokens = 6000;
    config.collectMetrics = true;
    const auto result =
        runQualityExperiment(config, presets::cb());
    EXPECT_FALSE(obs::metricsEnabled());
    ASSERT_FALSE(result.metrics.empty());
    EXPECT_EQ(result.metrics.at("trainer.iterations"), 4);
    EXPECT_GT(result.metrics.at("runtime.parallelFor.calls"), 0);
    EXPECT_GT(result.metrics.at("comm.dpReduce.events"), 0);
}

} // namespace
} // namespace optimus
