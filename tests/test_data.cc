/**
 * @file
 * Tests for the synthetic corpus, the LM dataset sampler, and the
 * zero-shot probe tasks.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "data/corpus.hh"
#include "data/dataset.hh"
#include "data/zeroshot.hh"

namespace optimus
{
namespace
{

CorpusConfig
smallCorpusConfig()
{
    CorpusConfig config;
    config.vocab = 16;
    config.totalTokens = 40000;
    config.preferredSuccessors = 4;
    config.seed = 3;
    return config;
}

TEST(Corpus, SplitSizesMatchValidationFraction)
{
    CorpusConfig config = smallCorpusConfig();
    config.validationFraction = 0.05;
    SyntheticCorpus corpus(config);
    EXPECT_EQ(static_cast<int64_t>(corpus.train().size()) +
                  static_cast<int64_t>(corpus.validation().size()),
              config.totalTokens);
    EXPECT_NEAR(static_cast<double>(corpus.validation().size()) /
                    config.totalTokens,
                0.05, 1e-3);
}

TEST(Corpus, TokensAreInRange)
{
    SyntheticCorpus corpus(smallCorpusConfig());
    for (int32_t t : corpus.train()) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, 16);
    }
}

TEST(Corpus, PreferredSetIsDistinctAndDeterministic)
{
    SyntheticCorpus corpus(smallCorpusConfig());
    for (int32_t prev = 0; prev < 16; ++prev) {
        const auto a = corpus.preferredSet(prev);
        const auto b = corpus.preferredSet(prev);
        EXPECT_EQ(a, b);
        EXPECT_EQ(a.size(), 4u);
        for (size_t i = 0; i < a.size(); ++i) {
            for (size_t j = i + 1; j < a.size(); ++j)
                EXPECT_NE(a[i], a[j]);
        }
    }
}

TEST(Corpus, TrueProbsFormADistribution)
{
    SyntheticCorpus corpus(smallCorpusConfig());
    for (int32_t prev2 : {0, 3, 7}) {
        for (int32_t prev1 : {1, 5, 11}) {
            double total = 0.0;
            for (int32_t next = 0; next < 16; ++next)
                total += corpus.trueProb(prev2, prev1, next);
            EXPECT_NEAR(total, 1.0, 1e-9);
        }
    }
}

TEST(Corpus, EmpiricalFrequenciesMatchTrueProbs)
{
    CorpusConfig config = smallCorpusConfig();
    SyntheticCorpus corpus(config);
    const auto &stream = corpus.train();
    // How often is the successor inside prev1's preferred set?
    // Expected mass: bigram + boost + uniform leak into the set.
    int64_t hits = 0, total = 0;
    for (size_t i = 2; i < stream.size(); ++i) {
        const auto set = corpus.preferredSet(stream[i - 1]);
        if (std::find(set.begin(), set.end(), stream[i]) !=
            set.end())
            ++hits;
        ++total;
    }
    const double expect =
        config.bigramMass + config.trigramBoost +
        (1.0 - config.bigramMass - config.trigramBoost) *
            config.preferredSuccessors / config.vocab;
    EXPECT_NEAR(static_cast<double>(hits) / total, expect, 0.02);

    // And the boosted successor specifically dominates within the
    // set: measured against any single other preferred member.
    int64_t boosted_hits = 0, pair_total = 0;
    for (size_t i = 2; i < stream.size(); ++i) {
        const int32_t boosted =
            corpus.boostedSuccessor(stream[i - 2], stream[i - 1]);
        if (stream[i] == boosted)
            ++boosted_hits;
        ++pair_total;
    }
    const double boosted_freq =
        static_cast<double>(boosted_hits) / pair_total;
    const double expect_boosted =
        config.trigramBoost + config.bigramMass / 4 +
        (1.0 - config.bigramMass - config.trigramBoost) / 16;
    EXPECT_NEAR(boosted_freq, expect_boosted, 0.02);
}

TEST(Corpus, EntropyFloorIsPositiveAndBelowUniform)
{
    SyntheticCorpus corpus(smallCorpusConfig());
    const double floor = corpus.entropyFloor();
    EXPECT_GT(floor, 0.0);
    EXPECT_LT(floor, std::log(16.0));
}

TEST(Corpus, BoostedSuccessorIsInPreferredSet)
{
    SyntheticCorpus corpus(smallCorpusConfig());
    for (int32_t prev2 : {0, 5, 9}) {
        for (int32_t prev1 : {2, 8, 15}) {
            const auto set = corpus.preferredSet(prev1);
            const int32_t boosted =
                corpus.boostedSuccessor(prev2, prev1);
            EXPECT_NE(std::find(set.begin(), set.end(), boosted),
                      set.end());
        }
    }
}

TEST(Dataset, SampleBatchShapesAndShift)
{
    SyntheticCorpus corpus(smallCorpusConfig());
    LmDataset data(corpus.train(), 8);
    Rng rng(1);
    const LmBatch batch = data.sampleBatch(4, rng);
    EXPECT_EQ(batch.batch, 4);
    EXPECT_EQ(batch.seq, 8);
    EXPECT_EQ(batch.tokens.size(), 32u);
    EXPECT_EQ(batch.targets.size(), 32u);
    // Targets are inputs shifted by one within each row.
    for (int64_t b = 0; b < 4; ++b) {
        for (int64_t j = 0; j + 1 < 8; ++j) {
            EXPECT_EQ(batch.targets[b * 8 + j],
                      batch.tokens[b * 8 + j + 1]);
        }
    }
}

TEST(Dataset, EvalBatchesAreDeterministicAndDisjoint)
{
    SyntheticCorpus corpus(smallCorpusConfig());
    LmDataset data(corpus.validation(), 8);
    const auto a = data.evalBatches(2);
    const auto b = data.evalBatches(2);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a[0].tokens, b[0].tokens);
    // Consecutive windows within a batch do not overlap.
    EXPECT_NE(a[0].tokens[0 * 8], a[0].tokens[1 * 8 + 0]);
}

/** Scorer that reproduces the corpus's true conditionals. */
class OracleScorer : public LmScorer
{
  public:
    OracleScorer(const SyntheticCorpus &corpus, int64_t seq_len)
        : corpus_(corpus), seqLen_(seq_len)
    {
    }

    Tensor
    scoreLogits(const std::vector<int32_t> &tokens,
                int64_t batch) override
    {
        const int64_t v = corpus_.config().vocab;
        Tensor logits({batch * seqLen_, v});
        for (int64_t b = 0; b < batch; ++b) {
            for (int64_t t = 0; t < seqLen_; ++t) {
                const int64_t row = b * seqLen_ + t;
                const int32_t prev1 = tokens[row];
                const int32_t prev2 =
                    t >= 1 ? tokens[row - 1] : 0;
                for (int32_t n = 0; n < v; ++n) {
                    logits.data()[row * v + n] = std::log(
                        corpus_.trueProb(prev2, prev1, n));
                }
            }
        }
        return logits;
    }

    int64_t seqLen() const override { return seqLen_; }
    int64_t vocab() const override { return corpus_.config().vocab; }

  private:
    const SyntheticCorpus &corpus_;
    int64_t seqLen_;
};

/** Scorer that knows nothing (uniform logits). */
class UniformScorer : public LmScorer
{
  public:
    UniformScorer(int64_t seq_len, int64_t vocab)
        : seqLen_(seq_len), vocab_(vocab)
    {
    }

    Tensor
    scoreLogits(const std::vector<int32_t> &tokens,
                int64_t batch) override
    {
        (void)tokens;
        return Tensor({batch * seqLen_, vocab_});
    }

    int64_t seqLen() const override { return seqLen_; }
    int64_t vocab() const override { return vocab_; }

  private:
    int64_t seqLen_;
    int64_t vocab_;
};

TEST(ZeroShot, SuiteHasFiveTasks)
{
    SyntheticCorpus corpus(smallCorpusConfig());
    ZeroShotSuiteConfig suite;
    suite.examplesPerTask = 16;
    const auto tasks = makeStandardZeroShotTasks(
        corpus.validation(), 8, 16, suite);
    ASSERT_EQ(tasks.size(), 5u);
    EXPECT_EQ(tasks[0].name(), "cloze");
    EXPECT_EQ(tasks[1].name(), "pair2");
    EXPECT_EQ(tasks[2].name(), "mcq4");
    EXPECT_EQ(tasks[3].name(), "coref2");
    EXPECT_EQ(tasks[4].name(), "passage4");
    for (const auto &t : tasks)
        EXPECT_EQ(t.exampleCount(), 16u);
}

TEST(ZeroShot, OracleBeatsUniformScorer)
{
    SyntheticCorpus corpus(smallCorpusConfig());
    ZeroShotSuiteConfig suite;
    suite.examplesPerTask = 48;
    auto tasks = makeStandardZeroShotTasks(corpus.validation(), 8,
                                           16, suite);
    OracleScorer oracle(corpus, 8);
    UniformScorer uniform(8, 8 + 8);

    for (auto &task : tasks) {
        const double acc_oracle = task.evaluate(oracle);
        if (task.name() == "cloze") {
            // Cloze oracle accuracy is the language's top-1
            // predictability; just require clearly above chance.
            EXPECT_GT(acc_oracle, 2.0 / 16.0) << task.name();
            continue;
        }
        EXPECT_GT(acc_oracle, 0.55) << task.name();
    }
}

TEST(ZeroShot, LikelihoodRankingPrefersRealContinuations)
{
    SyntheticCorpus corpus(smallCorpusConfig());
    ZeroShotSuiteConfig suite;
    suite.examplesPerTask = 48;
    auto tasks = makeStandardZeroShotTasks(corpus.validation(), 8,
                                           16, suite);
    OracleScorer oracle(corpus, 8);
    // pair2: 2-way choice; oracle should be right most of the time.
    EXPECT_GT(tasks[1].evaluate(oracle), 0.7);
    // passage4: longer endings are even easier to rank.
    EXPECT_GT(tasks[4].evaluate(oracle), 0.7);
}

TEST(ZeroShot, SequenceLogLikIsNegativeAndFinite)
{
    SyntheticCorpus corpus(smallCorpusConfig());
    OracleScorer oracle(corpus, 8);
    std::vector<int32_t> seq(corpus.validation().begin(),
                             corpus.validation().begin() + 8);
    const double ll =
        ZeroShotTask::sequenceLogLik(oracle, seq, 4, 8);
    EXPECT_LT(ll, 0.0);
    EXPECT_TRUE(std::isfinite(ll));
}

} // namespace
} // namespace optimus
