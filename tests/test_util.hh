/**
 * @file
 * Shared helpers for the test suite: finite-difference gradient
 * checking against the hand-written backward passes.
 */

#ifndef OPTIMUS_TESTS_TEST_UTIL_HH
#define OPTIMUS_TESTS_TEST_UTIL_HH

#include <cmath>
#include <functional>

#include "nn/layer.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace optimus::test
{

/**
 * Check d(sum(w .* layer(x)))/dx via central differences on a
 * sample of input coordinates.
 *
 * @return largest relative error over the sampled coordinates.
 */
inline double
inputGradError(Layer &layer, Tensor x, const Tensor &w, Rng &rng,
               int samples = 24, float eps = 1e-2f)
{
    layer.clearStash();
    Tensor y = layer.forward(x);
    Tensor dx = layer.backward(w);

    double worst = 0.0;
    for (int s = 0; s < samples; ++s) {
        const auto i =
            static_cast<int64_t>(rng.uniformInt(x.size()));
        const float saved = x[i];

        x[i] = saved + eps;
        layer.clearStash();
        Tensor yp = layer.forward(x);
        x[i] = saved - eps;
        layer.clearStash();
        Tensor ym = layer.forward(x);
        x[i] = saved;

        double fp = 0.0, fm = 0.0;
        for (int64_t j = 0; j < yp.size(); ++j) {
            fp += static_cast<double>(w[j]) * yp[j];
            fm += static_cast<double>(w[j]) * ym[j];
        }
        const double numeric = (fp - fm) / (2.0 * eps);
        const double analytic = dx[i];
        // Coordinates whose true gradient is (near-)zero produce
        // pure fp32 noise in the numeric estimate; skip them.
        if (std::fabs(numeric) < 1e-3 && std::fabs(analytic) < 1e-3)
            continue;
        const double denom =
            std::max({std::fabs(numeric), std::fabs(analytic), 1e-4});
        const double rel = std::fabs(numeric - analytic) / denom;
        if (rel > worst)
            worst = rel;
    }
    layer.clearStash();
    return worst;
}

/**
 * Check d(sum(w .* layer(x)))/dparam via central differences on a
 * sample of coordinates of every parameter.
 */
inline double
paramGradError(Layer &layer, const Tensor &x, const Tensor &w,
               Rng &rng, int samples_per_param = 12,
               float eps = 1e-2f)
{
    layer.clearStash();
    for (const auto &p : layer.params())
        p->zeroGrad();
    Tensor y = layer.forward(x);
    layer.backward(w);

    double worst = 0.0;
    for (const auto &p : dedupParams(layer.params())) {
        for (int s = 0; s < samples_per_param; ++s) {
            const auto i =
                static_cast<int64_t>(rng.uniformInt(p->size()));
            const float saved = p->value[i];

            p->value[i] = saved + eps;
            layer.clearStash();
            Tensor yp = layer.forward(x);
            p->value[i] = saved - eps;
            layer.clearStash();
            Tensor ym = layer.forward(x);
            p->value[i] = saved;

            double fp = 0.0, fm = 0.0;
            for (int64_t j = 0; j < yp.size(); ++j) {
                fp += static_cast<double>(w[j]) * yp[j];
                fm += static_cast<double>(w[j]) * ym[j];
            }
            const double numeric = (fp - fm) / (2.0 * eps);
            const double analytic = p->grad[i];
            if (std::fabs(numeric) < 1e-3 &&
                std::fabs(analytic) < 1e-3) {
                continue;
            }
            const double denom = std::max(
                {std::fabs(numeric), std::fabs(analytic), 1e-4});
            const double rel =
                std::fabs(numeric - analytic) / denom;
            if (rel > worst)
                worst = rel;
        }
    }
    layer.clearStash();
    return worst;
}

} // namespace optimus::test

#endif // OPTIMUS_TESTS_TEST_UTIL_HH
