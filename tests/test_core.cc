/**
 * @file
 * Tests of the public facade: preset catalogue consistency, the
 * quality-experiment runner, and the performance-ablation runner.
 */

#include <gtest/gtest.h>

#include "core/auto_tuner.hh"
#include "core/optimus.hh"

namespace optimus
{
namespace
{

/** A very small quality config so these tests stay fast. */
QualityRunConfig
fastQualityConfig()
{
    QualityRunConfig config;
    config.model.hidden = 16;
    config.model.heads = 2;
    config.iterations = 20;
    config.corpus.totalTokens = 6000;
    return config;
}

TEST(Presets, NamesMatchPaperColumns)
{
    EXPECT_EQ(presets::baseline().name, "Baseline");
    EXPECT_EQ(presets::cb().name, "CB");
    EXPECT_EQ(presets::cbFe().name, "CB+FE");
    EXPECT_EQ(presets::cbFeSc().name, "CB+FE+SC");
    EXPECT_EQ(presets::ablationLadder().size(), 4u);
}

TEST(Presets, QualityAndPerfSidesAgree)
{
    for (const auto &preset : presets::ablationLadder()) {
        EXPECT_EQ(preset.cb.enabled, preset.perf.cb) << preset.name;
        EXPECT_EQ(preset.fusedEmbeddingSync,
                  preset.perf.fusedEmbedding)
            << preset.name;
        EXPECT_EQ(preset.dp.enabled, preset.perf.sc) << preset.name;
    }
}

TEST(Presets, CbVariantsDifferOnlyInErrorHandling)
{
    const auto lep = presets::cb();
    const auto no_lep = presets::cbNoLep();
    EXPECT_TRUE(lep.cb.lazyErrorPropagation);
    EXPECT_FALSE(no_lep.cb.lazyErrorPropagation);
    EXPECT_EQ(lep.cb.spec.rank, no_lep.cb.spec.rank);

    const auto naive = presets::naiveCb();
    EXPECT_FALSE(naive.cb.lazyErrorPropagation);
    EXPECT_FALSE(naive.cb.epilogueOnly);

    const auto topk = presets::cbTopk();
    EXPECT_EQ(topk.cb.spec.kind, CompressorKind::TopK);
}

TEST(QualityExperiment, RunsAndReportsMetrics)
{
    const auto result = runQualityExperiment(fastQualityConfig(),
                                             presets::baseline());
    EXPECT_EQ(result.presetName, "Baseline");
    EXPECT_GT(result.finalPerplexity, 1.0);
    EXPECT_LT(result.finalPerplexity, 30.0);
    EXPECT_GT(result.parameterBytes, 0);
    EXPECT_EQ(result.interStageBytes, result.interStageBytesExact);
    EXPECT_DOUBLE_EQ(result.interStageSaving(), 0.0);
}

TEST(QualityExperiment, CompressionSavesInterStageBytes)
{
    const auto result = runQualityExperiment(fastQualityConfig(),
                                             presets::cb());
    EXPECT_GT(result.interStageSaving(), 0.3);
    EXPECT_LT(result.interStageSaving(), 1.0);
    EXPECT_GT(result.lepBufferBytes, 0);
}

TEST(QualityExperiment, CurveAndZeroShotWhenRequested)
{
    QualityRunConfig config = fastQualityConfig();
    config.evalEvery = 10;
    config.zeroShotExamples = 8;
    const auto result =
        runQualityExperiment(config, presets::baseline());
    EXPECT_GE(result.pplCurve.size(), 3u);
    EXPECT_EQ(result.zeroShot.size(), 5u);
    for (const auto &[name, acc] : result.zeroShot) {
        EXPECT_GE(acc, 0.0) << name;
        EXPECT_LE(acc, 1.0) << name;
    }
}

TEST(QualityExperiment, PerplexityFloorIsReachableBound)
{
    const auto config = fastQualityConfig();
    const double floor = perplexityFloor(config);
    EXPECT_GT(floor, 1.0);
    EXPECT_LT(floor, config.corpus.vocab);
    const auto result =
        runQualityExperiment(config, presets::baseline());
    EXPECT_GT(result.finalPerplexity, floor * 0.95);
}

TEST(QualityExperiment, GradientErrorOrderingMatchesSection51)
{
    // The paper's Section 5.1 claim, measured directly: lazy error
    // propagation makes the accumulated weight gradient a better
    // approximation of the exact gradient than discarding the
    // compression error.
    // Full-width miniature model: at toy widths the compressor
    // captures too little for the ordering to resolve.
    QualityRunConfig config;
    config.pipelineStages = 4;
    config.microBatches = 8;
    config.dataParallel = 1;

    TechniquePreset lep = presets::cb();
    TechniquePreset no_lep = presets::cbNoLep();
    const double err_lep = gradientApproximationError(config, lep, 3);
    const double err_no_lep =
        gradientApproximationError(config, no_lep, 3);
    EXPECT_GT(err_lep, 0.0);
    EXPECT_LT(err_lep, err_no_lep);

    // And the exact (uncompressed) configuration has zero error.
    EXPECT_NEAR(gradientApproximationError(config,
                                           presets::baseline(), 1),
                0.0, 1e-6);
}

TEST(QualityExperiment, EpilogueOnlyReducesGradientError)
{
    // Compressing fewer (only the exposed) messages injects less
    // error than compressing everything.
    QualityRunConfig config = fastQualityConfig();
    config.pipelineStages = 4;
    config.microBatches = 8;
    config.dataParallel = 1;

    TechniquePreset epilogue = presets::cb();
    TechniquePreset everything = presets::cb();
    everything.cb.epilogueOnly = false;
    EXPECT_LT(gradientApproximationError(config, epilogue, 3),
              gradientApproximationError(config, everything, 3));
}

TEST(PerformanceExperiment, AblationRowsAreConsistent)
{
    const auto rows = runPerformanceAblation(
        HardwareConfig::a100Cluster(), GptModelSpec::gpt8_3b(),
        ParallelConfig{}, TrainingPlan{},
        presets::ablationLadder());
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_DOUBLE_EQ(rows[0].speedup, 0.0);
    for (size_t i = 1; i < rows.size(); ++i) {
        EXPECT_GT(rows[i].speedup, rows[i - 1].speedup)
            << rows[i].config;
    }
    for (const auto &row : rows) {
        EXPECT_NEAR(row.trainingDays,
                    row.iterationSeconds * 230000 / 86400.0, 1e-9);
        EXPECT_NEAR(row.breakdown.total, row.iterationSeconds,
                    1e-9);
    }
}

TEST(AutoTuner, FindsFeasibleParetoPoint)
{
    MappedWorkload workload(HardwareConfig::a100Cluster(),
                            GptModelSpec::gpt8_3b(),
                            ParallelConfig{}, TrainingPlan{});
    QualityRunConfig quality = fastQualityConfig();
    quality.pipelineStages = 4;

    TuneRequest request;
    request.stageFractions = {0.5, 1.0};
    request.ranks = {64, 256};
    request.trials = 1;
    request.maxGradientError = 0.9;

    const TuneResult result =
        autoTuneSelectiveCompression(workload, quality, request);
    ASSERT_EQ(result.candidates.size(), 4u);
    ASSERT_TRUE(result.foundFeasible);
    EXPECT_GT(result.best.speedup, 0.0);
    EXPECT_LE(result.best.gradientError, 0.9);

    // Monotonicity: more stages compressed -> more speedup at the
    // same rank; higher rank -> less gradient error at the same
    // fraction.
    auto find = [&result](double f, int r) {
        for (const auto &c : result.candidates) {
            if (c.stageFraction == f && c.rank == r)
                return c;
        }
        return TuneCandidate{};
    };
    EXPECT_GT(find(1.0, 64).speedup, find(0.5, 64).speedup);
    EXPECT_LT(find(0.5, 256).gradientError,
              find(0.5, 64).gradientError);

    // At least one candidate sits on the Pareto frontier, and the
    // best is one of them.
    EXPECT_TRUE(result.best.onFrontier);
}

TEST(AutoTuner, ImpossibleBudgetReportsInfeasible)
{
    MappedWorkload workload(HardwareConfig::a100Cluster(),
                            GptModelSpec::gpt8_3b(),
                            ParallelConfig{}, TrainingPlan{});
    QualityRunConfig quality = fastQualityConfig();

    TuneRequest request;
    request.stageFractions = {1.0};
    request.ranks = {64};
    request.trials = 1;
    request.maxGradientError = 1e-9; // unreachable

    const TuneResult result =
        autoTuneSelectiveCompression(workload, quality, request);
    EXPECT_FALSE(result.foundFeasible);
}

TEST(PerformanceExperiment, BreakdownShrinksWhereExpected)
{
    const auto rows = runPerformanceAblation(
        HardwareConfig::a100Cluster(), GptModelSpec::gpt8_3b(),
        ParallelConfig{}, TrainingPlan{},
        presets::ablationLadder());
    // CB shrinks inter-stage time.
    EXPECT_LT(rows[1].breakdown.interStage,
              rows[0].breakdown.interStage);
    // FE shrinks embedding time by ~30% traffic (Eq 15 vs 16).
    EXPECT_LT(rows[2].breakdown.embComm, rows[1].breakdown.embComm);
    // SC shrinks DP time.
    EXPECT_LT(rows[3].breakdown.dpComm, rows[2].breakdown.dpComm);
    // Compute is untouched by any technique.
    EXPECT_NEAR(rows[3].breakdown.fwdCompute,
                rows[0].breakdown.fwdCompute, 1e-9);
}

} // namespace
} // namespace optimus
