/**
 * @file
 * Gradient-correctness tests: every hand-written backward is checked
 * against central finite differences, plus functional tests of the
 * loss, optimizers, and the monolithic GPT.
 */

#include <gtest/gtest.h>

#include "nn/activation.hh"
#include "nn/attention.hh"
#include "nn/block.hh"
#include "nn/embedding.hh"
#include "nn/gpt.hh"
#include "nn/layernorm.hh"
#include "nn/linear.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"
#include "test_util.hh"

namespace optimus
{
namespace
{

constexpr double kGradTol = 3e-2;

TEST(GradCheck, Linear)
{
    Rng rng(1);
    Linear layer("t", 6, 5, rng, 0.5f);
    Tensor x = Tensor::randn({4, 6}, rng);
    Tensor w = Tensor::randn({4, 5}, rng);
    EXPECT_LT(test::inputGradError(layer, x, w, rng), kGradTol);
    EXPECT_LT(test::paramGradError(layer, x, w, rng), kGradTol);
}

TEST(GradCheck, LayerNorm)
{
    Rng rng(2);
    LayerNorm layer("t", 8);
    Tensor x = Tensor::randn({5, 8}, rng, 0.0f, 2.0f);
    Tensor w = Tensor::randn({5, 8}, rng);
    EXPECT_LT(test::inputGradError(layer, x, w, rng), kGradTol);
    EXPECT_LT(test::paramGradError(layer, x, w, rng), kGradTol);
}

TEST(GradCheck, Gelu)
{
    Rng rng(3);
    Gelu layer;
    Tensor x = Tensor::randn({4, 6}, rng, 0.0f, 2.0f);
    Tensor w = Tensor::randn({4, 6}, rng);
    EXPECT_LT(test::inputGradError(layer, x, w, rng), kGradTol);
}

TEST(GradCheck, Relu)
{
    Rng rng(4);
    Relu layer;
    // Keep values away from the kink for finite differences.
    Tensor x = Tensor::randn({4, 6}, rng, 0.0f, 2.0f);
    for (int64_t i = 0; i < x.size(); ++i) {
        if (std::fabs(x[i]) < 0.1f)
            x[i] = 0.5f;
    }
    Tensor w = Tensor::randn({4, 6}, rng);
    EXPECT_LT(test::inputGradError(layer, x, w, rng), kGradTol);
}

TEST(GradCheck, Attention)
{
    Rng rng(5);
    MultiHeadAttention layer("t", 8, 2, 4, rng, 0.3f);
    // Two sequences of length 4.
    Tensor x = Tensor::randn({8, 8}, rng);
    Tensor w = Tensor::randn({8, 8}, rng);
    EXPECT_LT(test::inputGradError(layer, x, w, rng, 32), kGradTol);
    EXPECT_LT(test::paramGradError(layer, x, w, rng, 16), kGradTol);
}

TEST(GradCheck, TransformerBlock)
{
    Rng rng(6);
    TransformerBlock layer("t", 8, 2, 4, rng, 0.3f);
    Tensor x = Tensor::randn({8, 8}, rng);
    Tensor w = Tensor::randn({8, 8}, rng);
    EXPECT_LT(test::inputGradError(layer, x, w, rng, 32), kGradTol);
    EXPECT_LT(test::paramGradError(layer, x, w, rng, 12), kGradTol);
}

TEST(GradCheck, OutputHead)
{
    Rng rng(7);
    auto table = std::make_shared<Param>(
        "emb", Tensor::randn({10, 6}, rng, 0.0f, 0.5f));
    OutputHead head(table);
    Tensor x = Tensor::randn({4, 6}, rng);
    Tensor w = Tensor::randn({4, 10}, rng);
    EXPECT_LT(test::inputGradError(head, x, w, rng), kGradTol);
    EXPECT_LT(test::paramGradError(head, x, w, rng), kGradTol);
}

TEST(Embedding, ForwardLookupAndBackwardScatter)
{
    Rng rng(8);
    EmbeddingLayer emb("t", 8, 4, 6, rng, 0.5f);
    const std::vector<int32_t> tokens = {1, 3, 1, 0, 7, 2};
    Tensor y = emb.forward(tokens, 2, 3);
    EXPECT_EQ(y.rows(), 6);
    EXPECT_EQ(y.cols(), 4);

    // Row 0 = token 1 embedding + position 0 embedding.
    const Tensor &tok = emb.tokenTable()->value;
    const Tensor &pos = emb.positionTable()->value;
    for (int j = 0; j < 4; ++j)
        EXPECT_FLOAT_EQ(y.at(0, j), tok.at(1, j) + pos.at(0, j));

    Tensor dy = Tensor::full({6, 4}, 1.0f);
    emb.backward(dy);
    // Token 1 appears twice -> its grad row is 2.0 everywhere.
    for (int j = 0; j < 4; ++j) {
        EXPECT_FLOAT_EQ(emb.tokenTable()->grad.at(1, j), 2.0f);
        EXPECT_FLOAT_EQ(emb.tokenTable()->grad.at(5, j), 0.0f);
    }
    // Each position appears twice (two batch rows).
    for (int j = 0; j < 4; ++j)
        EXPECT_FLOAT_EQ(emb.positionTable()->grad.at(0, j), 2.0f);
}

TEST(Loss, MatchesManualCrossEntropy)
{
    SoftmaxCrossEntropy loss;
    Tensor logits = Tensor::fromValues(
        {2, 3}, {1.0f, 2.0f, 3.0f, 0.0f, 0.0f, 0.0f});
    const std::vector<int32_t> targets = {2, 0};
    const double nll = loss.forward(logits, targets);

    // Row 0: softmax(1,2,3)[2]; Row 1: softmax(0,0,0)[0] = 1/3.
    const double p0 = std::exp(3.0) /
        (std::exp(1.0) + std::exp(2.0) + std::exp(3.0));
    const double expect = -(std::log(p0) + std::log(1.0 / 3.0)) / 2.0;
    EXPECT_NEAR(nll, expect, 1e-6);

    Tensor g = loss.backward();
    // Gradient rows sum to zero (softmax minus one-hot).
    double row0 = g.at(0, 0) + g.at(0, 1) + g.at(0, 2);
    EXPECT_NEAR(row0, 0.0, 1e-6);
    EXPECT_LT(g.at(0, 2), 0.0f); // target coordinate is negative
}

TEST(Loss, GradientMatchesFiniteDifference)
{
    Rng rng(9);
    Tensor logits = Tensor::randn({3, 5}, rng);
    const std::vector<int32_t> targets = {0, 3, 4};

    SoftmaxCrossEntropy loss;
    loss.forward(logits, targets);
    Tensor g = loss.backward();

    const float eps = 1e-3f;
    for (int64_t i = 0; i < logits.size(); i += 3) {
        Tensor lp = logits, lm = logits;
        lp[i] += eps;
        lm[i] -= eps;
        const double fp = SoftmaxCrossEntropy::evaluate(lp, targets);
        const double fm = SoftmaxCrossEntropy::evaluate(lm, targets);
        EXPECT_NEAR((fp - fm) / (2 * eps), g[i], 2e-3);
    }
}

TEST(Loss, PerplexityIsExpOfNll)
{
    EXPECT_NEAR(SoftmaxCrossEntropy::perplexity(std::log(7.0)), 7.0,
                1e-9);
}

TEST(Gpt, EndToEndGradCheck)
{
    GptConfig config;
    config.vocab = 12;
    config.hidden = 8;
    config.layers = 2;
    config.heads = 2;
    config.seqLen = 4;
    config.seed = 31;
    GptModel model(config);

    Rng rng(10);
    std::vector<int32_t> tokens(8), targets(8);
    for (auto &t : tokens)
        t = static_cast<int32_t>(rng.uniformInt(config.vocab));
    for (auto &t : targets)
        t = static_cast<int32_t>(rng.uniformInt(config.vocab));

    for (const auto &p : model.params())
        p->zeroGrad();
    model.forwardBackward(tokens, targets, 2);

    // Spot-check several parameters end to end.
    const auto params = model.params();
    const float eps = 5e-3f;
    int checked = 0;
    for (size_t pi = 0; pi < params.size(); pi += 5) {
        Param &p = *params[pi];
        const auto i = static_cast<int64_t>(
            rng.uniformInt(p.size()));
        const float saved = p.value[i];
        p.value[i] = saved + eps;
        const double fp = model.evaluate(tokens, targets, 2);
        p.value[i] = saved - eps;
        const double fm = model.evaluate(tokens, targets, 2);
        p.value[i] = saved;
        const double numeric = (fp - fm) / (2.0 * eps);
        const double analytic = p.grad[i];
        const double denom = std::max(
            {std::fabs(numeric), std::fabs(analytic), 1e-3});
        EXPECT_LT(std::fabs(numeric - analytic) / denom, 5e-2)
            << "param " << p.name << " index " << i;
        ++checked;
    }
    EXPECT_GT(checked, 3);
}

TEST(Gpt, TiedEmbeddingAccumulatesBothPaths)
{
    GptConfig config;
    config.vocab = 10;
    config.hidden = 8;
    config.layers = 2;
    config.heads = 2;
    config.seqLen = 4;
    GptModel model(config);

    // Embedding table and head table are the same object.
    EXPECT_EQ(model.embedding().tokenTable().get(),
              model.head().tokenTable().get());

    // Unique param count excludes the duplicate.
    int64_t total = 0;
    for (const auto &p : model.params())
        total += p->size();
    EXPECT_EQ(total, config.paramCount());
}

TEST(Gpt, TrainingReducesLoss)
{
    GptConfig config;
    config.vocab = 16;
    config.hidden = 16;
    config.layers = 2;
    config.heads = 2;
    config.seqLen = 8;
    GptModel model(config);
    AdamOptimizer opt(model.params(), 3e-3f);

    Rng rng(12);
    // A tiny repeating "language": next = (token + 1) % 16.
    std::vector<int32_t> tokens(4 * 8), targets(4 * 8);
    for (size_t i = 0; i < tokens.size(); ++i) {
        tokens[i] = static_cast<int32_t>(i % 16);
        targets[i] = static_cast<int32_t>((i + 1) % 16);
    }

    const double first = model.forwardBackward(tokens, targets, 4);
    opt.step();
    opt.zeroGrad();
    double last = first;
    for (int it = 0; it < 60; ++it) {
        last = model.forwardBackward(tokens, targets, 4);
        opt.step();
        opt.zeroGrad();
    }
    EXPECT_LT(last, first * 0.5);
}

TEST(Attention, CausalMaskBlocksFutureTokens)
{
    // Changing a future token's representation must not change any
    // earlier position's output -- the causal-LM contract.
    Rng rng(21);
    MultiHeadAttention layer("t", 8, 2, 6, rng, 0.4f);
    Tensor x = Tensor::randn({6, 8}, rng); // one sequence of 6
    Tensor y1 = layer.forward(x);
    layer.clearStash();

    Tensor x2 = x;
    for (int64_t j = 0; j < 8; ++j)
        x2.at(5, j) += 1.0f; // perturb the last position only
    Tensor y2 = layer.forward(x2);
    layer.clearStash();

    for (int64_t t = 0; t < 5; ++t) {
        for (int64_t j = 0; j < 8; ++j)
            EXPECT_FLOAT_EQ(y1.at(t, j), y2.at(t, j))
                << "position " << t;
    }
    // And the perturbed position itself does change.
    EXPECT_FALSE(y1.sliceRows(5, 6).allClose(y2.sliceRows(5, 6),
                                             1e-4f));
}

TEST(Attention, BatchRowsAreIndependent)
{
    // Two sequences in one batch must not attend to each other.
    Rng rng(22);
    MultiHeadAttention layer("t", 8, 2, 4, rng, 0.4f);
    Tensor x = Tensor::randn({8, 8}, rng); // two sequences of 4
    Tensor y1 = layer.forward(x);
    layer.clearStash();

    Tensor x2 = x;
    for (int64_t j = 0; j < 8; ++j)
        x2.at(7, j) += 2.0f; // perturb second sequence only
    Tensor y2 = layer.forward(x2);
    layer.clearStash();

    // First sequence's outputs (rows 0..3) are untouched.
    EXPECT_TRUE(y1.sliceRows(0, 4).allClose(y2.sliceRows(0, 4),
                                            0.0f));
}

TEST(Gpt, LogitsAreCausal)
{
    // End-to-end causality: logits at position t depend only on
    // tokens <= t.
    GptConfig config;
    config.vocab = 12;
    config.hidden = 8;
    config.layers = 2;
    config.heads = 2;
    config.seqLen = 6;
    GptModel model(config);

    std::vector<int32_t> tokens = {1, 2, 3, 4, 5, 6};
    Tensor logits1 = model.forward(tokens, 1);
    model.clearStash();
    tokens[5] = 9; // change only the final token
    Tensor logits2 = model.forward(tokens, 1);
    model.clearStash();

    for (int64_t t = 0; t < 5; ++t) {
        for (int64_t v = 0; v < 12; ++v)
            EXPECT_FLOAT_EQ(logits1.at(t, v), logits2.at(t, v));
    }
}

TEST(Optimizer, SgdMatchesManualUpdate)
{
    auto p = std::make_shared<Param>(
        "w", Tensor::fromValues({2}, {1.0f, -2.0f}));
    p->grad = Tensor::fromValues({2}, {0.5f, 0.25f});
    SgdOptimizer opt({p}, 0.1f);
    opt.step();
    EXPECT_FLOAT_EQ(p->value[0], 1.0f - 0.1f * 0.5f);
    EXPECT_FLOAT_EQ(p->value[1], -2.0f - 0.1f * 0.25f);
}

TEST(Optimizer, MomentumAccumulates)
{
    auto p = std::make_shared<Param>("w", Tensor::zeros(1));
    SgdOptimizer opt({p}, 1.0f, 0.5f);
    p->grad = Tensor::fromValues({1}, {1.0f});
    opt.step(); // v=1, w=-1
    opt.step(); // v=0.5+1=1.5, w=-2.5
    EXPECT_FLOAT_EQ(p->value[0], -2.5f);
}

TEST(Optimizer, AdamFirstStepIsLrSized)
{
    auto p = std::make_shared<Param>("w", Tensor::zeros(1));
    AdamOptimizer opt({p}, 0.01f);
    p->grad = Tensor::fromValues({1}, {3.0f});
    opt.step();
    // With bias correction, the first Adam step is ~lr * sign(g).
    EXPECT_NEAR(p->value[0], -0.01, 1e-4);
}

TEST(Optimizer, DedupesTiedParams)
{
    auto p = std::make_shared<Param>("w", Tensor::zeros(2));
    SgdOptimizer opt({p, p, p}, 0.1f);
    EXPECT_EQ(opt.params().size(), 1u);
}

TEST(Layer, StashFifoSupportsPipelining)
{
    Rng rng(13);
    Linear layer("t", 3, 3, rng, 0.5f);
    Tensor x1 = Tensor::randn({2, 3}, rng);
    Tensor x2 = Tensor::randn({2, 3}, rng);

    // Two forwards queued, then two backwards in the same order.
    layer.forward(x1);
    layer.forward(x2);
    EXPECT_EQ(layer.stashDepth(), 2u);

    Tensor dy = Tensor::full({2, 3}, 1.0f);
    Tensor dx1 = layer.backward(dy);
    Tensor dx2 = layer.backward(dy);
    EXPECT_EQ(layer.stashDepth(), 0u);

    // Compare against single-shot execution.
    Linear ref("t", 3, 3, rng, 0.5f);
    // Copy parameters to make layers identical.
    ref.weight()->value = layer.weight()->value;
    ref.bias()->value = layer.bias()->value;
    ref.forward(x1);
    Tensor ref_dx1 = ref.backward(dy);
    EXPECT_TRUE(dx1.allClose(ref_dx1, 1e-6f));
}

} // namespace
} // namespace optimus
