/**
 * @file
 * The workspace-arena memory layer (DESIGN.md section 9): size-class
 * recycling across shape changes, scope install/restore, the
 * steady-state zero-heap-allocation metrics gate over full 3D
 * training steps in every reduce mode, and bitwise identity of
 * training with arenas on vs off. OPTIMUS_ARENA is latched once per
 * process, so the on/off A/B re-runs this binary in a child process
 * with the gate flipped and compares parameter digests.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "data/corpus.hh"
#include "data/dataset.hh"
#include "parallel/trainer3d.hh"
#include "tensor/arena.hh"
#include "tensor/tensor.hh"

namespace optimus
{
namespace
{

GptConfig
tinyModel()
{
    GptConfig config;
    config.vocab = 24;
    config.hidden = 16;
    config.layers = 4;
    config.heads = 2;
    config.seqLen = 8;
    config.seed = 77;
    return config;
}

LmDataset
tinyData(int64_t seq_len)
{
    CorpusConfig cc;
    cc.vocab = 24;
    cc.totalTokens = 6000;
    cc.seed = 5;
    SyntheticCorpus corpus(cc);
    return {corpus.train(), seq_len};
}

/**
 * A full-coverage 3D config: D=2 replicas, P=2 stages, compressed
 * backward channels and compressed (PowerSGD + error feedback) DP
 * reduction, so a step crosses every hot subsystem the arena layer
 * claims: forward/backward kernels, top-of-stack compressors, the
 * reduce engine, and the embedding synchronizer.
 */
Trainer3dConfig
fullConfig(DpReduceMode mode)
{
    Trainer3dConfig config;
    config.model = tinyModel();
    config.dataParallel = 2;
    config.pipelineStages = 2;
    config.microBatches = 2;
    config.microBatchSize = 2;
    config.useAdam = true;
    config.cb.enabled = true;
    config.cb.epilogueOnly = false;
    config.cb.spec.rank = 2;
    config.dp.enabled = true;
    config.dp.stageFraction = 1.0;
    config.dp.spec.rank = 2;
    config.reduceMode = mode;
    return config;
}

/** FNV-1a over the bit patterns of every parameter of @p trainer. */
uint64_t
paramDigest(Trainer3d &trainer)
{
    uint64_t h = 1469598103934665603ull;
    const auto fold = [&h](uint32_t bits) {
        for (int b = 0; b < 4; ++b) {
            h ^= (bits >> (8 * b)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    const int d_ways = trainer.config().dataParallel;
    const int p_ways = trainer.config().pipelineStages;
    for (int d = 0; d < d_ways; ++d) {
        for (int p = 0; p < p_ways; ++p) {
            for (const auto &param : trainer.stage(d, p).params()) {
                for (int64_t i = 0; i < param->size(); ++i) {
                    uint32_t bits;
                    static_assert(sizeof(bits) == sizeof(float));
                    const float v = param->value[i];
                    std::memcpy(&bits, &v, sizeof(bits));
                    fold(bits);
                }
            }
        }
    }
    return h;
}

/** Train @p iters steps on the full config and digest the params. */
uint64_t
trainedDigest(DpReduceMode mode, int iters)
{
    Trainer3d trainer(fullConfig(mode));
    LmDataset data = tinyData(tinyModel().seqLen);
    Rng rng(99);
    for (int i = 0; i < iters; ++i)
        trainer.trainIteration(data, rng);
    return paramDigest(trainer);
}

TEST(Workspace, RecyclesAcrossShapeChanges)
{
    if (!arenaEnabled())
        GTEST_SKIP() << "OPTIMUS_ARENA=0";
    Workspace ws("test");
    {
        WorkspaceScope scope(&ws);
        // Warm the arena with one [8 x 8] tensor, then cycle
        // through different shapes of the same size class: every
        // steady-state allocation must be an arena hit.
        { Tensor warm({8, 8}); }
        const WorkspaceStats warm_stats = ws.stats();
        EXPECT_GE(warm_stats.heapFallbacks, 1);
        for (int i = 0; i < 10; ++i) {
            Tensor a({8, 8});
            Tensor b({4, 16});
            Tensor c({64});
        }
        const WorkspaceStats stats = ws.stats();
        EXPECT_EQ(stats.heapFallbacks, warm_stats.heapFallbacks);
        EXPECT_GT(stats.arenaHits, warm_stats.arenaHits);
        EXPECT_EQ(stats.outstanding, 0);
    }
    EXPECT_TRUE(ws.reset());
}

TEST(Workspace, ResetDegradesToRecyclingWithLiveTensors)
{
    if (!arenaEnabled())
        GTEST_SKIP() << "OPTIMUS_ARENA=0";
    Workspace ws("test");
    WorkspaceScope scope(&ws);
    // A persistent tensor (compressor warm state, parked
    // activation) blocks the rewind; recycling must still be
    // heap-free afterwards.
    Tensor persistent({16, 16});
    { Tensor warm({16, 16}); }
    EXPECT_FALSE(ws.reset());
    const WorkspaceStats warm_stats = ws.stats();
    for (int i = 0; i < 10; ++i) {
        Tensor t({16, 16});
        EXPECT_FALSE(ws.reset());
    }
    EXPECT_EQ(ws.stats().heapFallbacks, warm_stats.heapFallbacks);
}

TEST(Workspace, ScopeRestoresOuterWorkspace)
{
    if (!arenaEnabled())
        GTEST_SKIP() << "OPTIMUS_ARENA=0";
    Workspace outer("outer");
    Workspace inner("inner");
    WorkspaceScope outer_scope(&outer);
    EXPECT_EQ(currentWorkspace(), &outer);
    {
        WorkspaceScope inner_scope(&inner);
        EXPECT_EQ(currentWorkspace(), &inner);
    }
    EXPECT_EQ(currentWorkspace(), &outer);
}

/**
 * The tentpole contract: after a two-step warmup, a full training
 * step performs zero heap allocations for tensor storage, in every
 * DP reduce mode. mem::heapAllocs() counts arena slab growth plus
 * every unscoped tensor allocation, so a zero delta means the whole
 * forward/backward/compress/reduce/update path ran out of the
 * arenas' recycled blocks.
 */
TEST(AllocGate, StepIsHeapFreeAfterWarmup)
{
    if (!arenaEnabled())
        GTEST_SKIP() << "OPTIMUS_ARENA=0";
    for (const DpReduceMode mode :
         {DpReduceMode::Sequential, DpReduceMode::Barriered,
          DpReduceMode::Overlapped}) {
        Trainer3d trainer(fullConfig(mode));
        LmDataset data = tinyData(tinyModel().seqLen);
        Rng rng(99);
        // Two warmup steps: the first sizes the arenas, the second
        // builds lazily-constructed compressor warm state.
        trainer.trainIteration(data, rng);
        trainer.trainIteration(data, rng);
        const int64_t before = mem::heapAllocs();
        for (int i = 0; i < 3; ++i)
            trainer.trainIteration(data, rng);
        EXPECT_EQ(mem::heapAllocs() - before, 0)
            << "reduce mode " << static_cast<int>(mode);
    }
}

TEST(AllocGate, ArenaHitsAccumulateOnTheStepPath)
{
    if (!arenaEnabled())
        GTEST_SKIP() << "OPTIMUS_ARENA=0";
    Trainer3d trainer(fullConfig(DpReduceMode::Overlapped));
    LmDataset data = tinyData(tinyModel().seqLen);
    Rng rng(99);
    trainer.trainIteration(data, rng);
    const int64_t before = mem::arenaHits();
    trainer.trainIteration(data, rng);
    EXPECT_GT(mem::arenaHits(), before);
}

/**
 * Training must be bitwise identical with arenas on and off: the
 * workspace layer moves storage, never values. The cross-mode leg
 * re-runs this binary with OPTIMUS_ARENA flipped (the gate latches
 * at first use, so one process cannot host both modes) and compares
 * digests through the child's stdout.
 */
TEST(AllocGate, ArenaVsHeapBitwiseIdentical)
{
    const uint64_t here = trainedDigest(DpReduceMode::Overlapped, 5);
    // Run-to-run determinism within this process's mode.
    EXPECT_EQ(here, trainedDigest(DpReduceMode::Overlapped, 5));

    if (std::getenv("OPTIMUS_ARENA_DIGEST_ONLY") != nullptr) {
        // Child invocation: report and stop (the parent compares).
        std::printf("ARENA_DIGEST %016llx\n",
                    static_cast<unsigned long long>(here));
        return;
    }

    // Resolve this binary's path here: the popen'd shell would
    // resolve /proc/self/exe to itself.
    char self[4096];
    const ssize_t len =
        readlink("/proc/self/exe", self, sizeof(self) - 1);
    ASSERT_GT(len, 0);
    self[len] = '\0';
    const std::string cmd =
        std::string("OPTIMUS_ARENA_DIGEST_ONLY=1 OPTIMUS_ARENA=") +
        (arenaEnabled() ? "0" : "1") + " '" + self +
        "' --gtest_filter=AllocGate.ArenaVsHeapBitwiseIdentical"
        " 2>/dev/null";
    FILE *child = popen(cmd.c_str(), "r");
    ASSERT_NE(child, nullptr);
    uint64_t other = 0;
    bool found = false;
    char line[256];
    while (std::fgets(line, sizeof(line), child)) {
        unsigned long long parsed = 0;
        if (std::sscanf(line, "ARENA_DIGEST %llx", &parsed) == 1) {
            other = parsed;
            found = true;
        }
    }
    const int status = pclose(child);
    ASSERT_EQ(status, 0);
    ASSERT_TRUE(found) << "child produced no digest";
    EXPECT_EQ(here, other);
}

/**
 * Sequential vs engine-backed reduce modes are bitwise identical
 * (the engine reorders work, not arithmetic); pinned here because
 * the arena layer gave each mode its own allocation plan.
 */
TEST(AllocGate, ReduceModesBitwiseIdenticalUnderArenas)
{
    const uint64_t seq = trainedDigest(DpReduceMode::Sequential, 3);
    EXPECT_EQ(seq, trainedDigest(DpReduceMode::Barriered, 3));
    EXPECT_EQ(seq, trainedDigest(DpReduceMode::Overlapped, 3));
}

} // namespace
} // namespace optimus
