/**
 * @file
 * Tests for the interleaved (multi-chunk) schedule and its timing
 * simulation: structure, dependency feasibility, the bubble
 * reduction that motivates interleaving, and degeneration to plain
 * 1F1B at one chunk.
 */

#include <gtest/gtest.h>

#include "pipesim/pipe_model.hh"
#include "schedule/interleaved.hh"

namespace optimus
{
namespace
{

TEST(Interleaved, EveryChunkMicrobatchPairRunsOnce)
{
    const auto sched = InterleavedSchedule::build(4, 2, 8);
    EXPECT_EQ(sched.virtualStages(), 8);
    EXPECT_EQ(sched.opCount(), 2 * 4 * 2 * 8);
    for (int r = 0; r < 4; ++r) {
        std::vector<std::vector<int>> fwd(2, std::vector<int>(8, 0));
        std::vector<std::vector<int>> bwd(2, std::vector<int>(8, 0));
        for (const auto &op : sched.rankOps(r)) {
            EXPECT_EQ(op.rank, r);
            if (op.kind == PipeOpKind::Forward)
                ++fwd[op.chunk][op.microBatch];
            else
                ++bwd[op.chunk][op.microBatch];
        }
        for (int c = 0; c < 2; ++c) {
            for (int m = 0; m < 8; ++m) {
                EXPECT_EQ(fwd[c][m], 1) << r << c << m;
                EXPECT_EQ(bwd[c][m], 1) << r << c << m;
            }
        }
    }
}

TEST(Interleaved, VirtualStagePlacement)
{
    // Virtual stage k = chunk * P + rank lives on rank k mod P.
    const VPipeOp op{PipeOpKind::Forward, 2, 1, 0};
    EXPECT_EQ(op.virtualStage(4), 6);
}

class InterleavedValidity
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(InterleavedValidity, IsDeadlockFree)
{
    const auto [p, v, m] = GetParam();
    const auto sched = InterleavedSchedule::build(p, v, m);
    EXPECT_TRUE(sched.validate())
        << "P=" << p << " v=" << v << " M=" << m;
    EXPECT_EQ(static_cast<int64_t>(sched.globalOrder().size()),
              sched.opCount());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, InterleavedValidity,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(8, 16)));

TEST(Interleaved, SingleChunkMatchesPlain1F1BTiming)
{
    // v = 1 must reproduce the plain 1F1B makespan exactly.
    PipeCostSpec plain;
    plain.stages = 4;
    plain.microBatches = 16;
    plain.fwdCompute = 1.0;
    plain.bwdCompute = 2.0;
    plain.fwdMsgTime = 0.0;
    plain.bwdMsgTime.assign(3, std::vector<double>(16, 0.0));
    plain.dpTime.assign(4, 0.0);

    InterleavedCostSpec inter;
    inter.ranks = 4;
    inter.chunks = 1;
    inter.microBatches = 16;
    inter.fwdComputePerChunk = 1.0;
    inter.bwdComputePerChunk = 2.0;
    inter.dpTime.assign(4, 0.0);

    EXPECT_NEAR(simulateInterleaved(inter),
                simulatePipeline(plain).iterationTime, 1e-9);
}

TEST(Interleaved, MoreChunksShrinkTheBubble)
{
    // Same total compute per rank; zero comm: the warm-up bubble is
    // (P-1)(f+b)/v, so iteration time falls toward M(f+b) as the
    // chunk count grows.
    auto iter_time = [](int chunks) {
        InterleavedCostSpec spec;
        spec.ranks = 4;
        spec.chunks = chunks;
        spec.microBatches = 16;
        spec.fwdComputePerChunk = 1.0 / chunks;
        spec.bwdComputePerChunk = 2.0 / chunks;
        spec.dpTime.assign(4, 0.0);
        return simulateInterleaved(spec);
    };
    const double ideal = 16 * 3.0; // compute only, no bubble
    const double v1 = iter_time(1);
    const double v2 = iter_time(2);
    const double v4 = iter_time(4);
    EXPECT_GT(v1, v2);
    EXPECT_GT(v2, v4);
    EXPECT_NEAR(v1 - ideal, 3 * 3.0, 1e-9);       // (P-1)(f+b)
    EXPECT_NEAR(v2 - ideal, 3 * 3.0 / 2, 1e-9);   // halved
    EXPECT_NEAR(v4 - ideal, 3 * 3.0 / 4, 1e-9);   // quartered
}

TEST(Interleaved, MoreChunksPayMoreCommunication)
{
    // Interleaving multiplies the number of hops; with non-zero
    // message cost there is a crossover where more chunks stop
    // helping -- the known interleaving trade-off.
    auto iter_time = [](int chunks, double msg) {
        InterleavedCostSpec spec;
        spec.ranks = 4;
        spec.chunks = chunks;
        spec.microBatches = 16;
        spec.fwdComputePerChunk = 1.0 / chunks;
        spec.bwdComputePerChunk = 2.0 / chunks;
        spec.fwdMsgTime = msg;
        spec.bwdMsgTime = msg;
        spec.dpTime.assign(4, 0.0);
        return simulateInterleaved(spec);
    };
    // Cheap messages: interleaving wins.
    EXPECT_LT(iter_time(4, 0.001), iter_time(1, 0.001));
    // Expensive messages: interleaving loses.
    EXPECT_GT(iter_time(4, 1.0), iter_time(1, 1.0));
}

TEST(Interleaved, BuilderUsesCompressedHopWhenCbOn)
{
    MappedWorkload w(HardwareConfig::a100Cluster(),
                     GptModelSpec::gpt8_3b(), ParallelConfig{},
                     TrainingPlan{});
    const auto base_spec =
        buildInterleavedCostSpec(w, OptimusCcPolicy::baseline(), 2);
    const auto cb_spec =
        buildInterleavedCostSpec(w, OptimusCcPolicy::cbOnly(), 2);
    EXPECT_LT(cb_spec.bwdMsgTime, base_spec.bwdMsgTime);
    EXPECT_NEAR(base_spec.fwdComputePerChunk,
                w.stageForwardTime() / 2, 1e-12);
    // And CB still speeds up the interleaved pipeline end to end.
    EXPECT_LT(simulateInterleaved(cb_spec),
              simulateInterleaved(base_spec));
}

} // namespace
} // namespace optimus
