/**
 * @file
 * Tests for the communication transport layer (comm/transport.hh)
 * and the trace-driven replay bridge (pipesim/trace_replay.hh):
 * verb-level correctness of InProcessTransport, event capture by
 * RecordingTransport, bitwise neutrality of tracing on a full
 * Trainer3d run, the analytic-vs-trace consistency gates (trace
 * volumes equal the counters the trainer reports; embedding-sync
 * trace traffic equals Eq 15/16 exactly for D in {2, 4, 8}; replayed
 * seconds equal an independent walk through the same alpha-beta
 * functions), and DP volume equality across the three reduce
 * schedules through the shared event path. Run at OPTIMUS_THREADS in
 * {1, 4, 8} via the ctest registrations in tests/CMakeLists.txt.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "comm/transport.hh"
#include "data/corpus.hh"
#include "data/dataset.hh"
#include "parallel/data_parallel.hh"
#include "parallel/trainer3d.hh"
#include "pipesim/trace_replay.hh"
#include "simnet/cost_model.hh"

namespace optimus
{
namespace
{

/** Rank-r tensor with a deterministic per-element pattern. */
Tensor
patternTensor(const std::vector<int64_t> &shape, int salt)
{
    Tensor t(shape);
    for (int64_t i = 0; i < t.size(); ++i)
        t.data()[i] = 0.25f * static_cast<float>((i + salt) % 7) -
                      0.5f * static_cast<float>(salt % 3);
    return t;
}

TEST(CommGroup, FromTensorsAndFinalize)
{
    Tensor a = patternTensor({6}, 1);
    Tensor b = patternTensor({6}, 2);
    CommGroup group = CommGroup::fromTensors({&a, &b});
    ASSERT_EQ(group.ranks, 2);
    ASSERT_EQ(group.segPtrs.size(), 1u);
    EXPECT_EQ(group.segPtrs[0][0], a.data());
    EXPECT_EQ(group.segPtrs[0][1], b.data());
    EXPECT_EQ(group.segLens, (std::vector<int64_t>{6}));
    EXPECT_EQ(group.segOffsets, (std::vector<int64_t>{0}));
    EXPECT_EQ(group.totalElems, 6);
}

TEST(InProcess, AllReduceMeanMatchesManual)
{
    InProcessTransport transport;
    transport.setIteration(3);
    const int ranks = 3;
    std::vector<Tensor> tensors;
    std::vector<Tensor *> ptrs;
    for (int d = 0; d < ranks; ++d)
        tensors.push_back(patternTensor({4, 5}, d));
    std::vector<Tensor> originals = tensors;
    for (auto &t : tensors)
        ptrs.push_back(&t);

    const CommEvent ev = transport.allReduceTensors(
        CommPhase::DpReduce, ptrs, ReduceOp::Mean);

    EXPECT_EQ(ev.iteration, 3);
    EXPECT_EQ(ev.phase, CommPhase::DpReduce);
    EXPECT_EQ(ev.verb, CommVerb::AllReduce);
    EXPECT_EQ(ev.ranks, ranks);
    EXPECT_EQ(ev.groups, 1);
    EXPECT_EQ(ev.exactBytes, 4 * 20);
    EXPECT_EQ(ev.wireBytes, ev.exactBytes);
    EXPECT_EQ(ev.compressor.kind, CompressorKind::None);

    for (int64_t i = 0; i < 20; ++i) {
        // The kernel's exact arithmetic: double accumulation in
        // rank order, one float cast of the scaled result.
        double acc = 0.0;
        for (int d = 0; d < ranks; ++d)
            acc += static_cast<double>(originals[d][i]);
        const float expect = static_cast<float>(acc / ranks);
        for (int d = 0; d < ranks; ++d)
            ASSERT_EQ(tensors[d][i], expect) << "i=" << i;
    }
}

TEST(InProcess, AllReduceSumMatchesManual)
{
    InProcessTransport transport;
    std::vector<Tensor> tensors;
    std::vector<Tensor *> ptrs;
    for (int d = 0; d < 2; ++d)
        tensors.push_back(patternTensor({9}, d + 5));
    std::vector<Tensor> originals = tensors;
    for (auto &t : tensors)
        ptrs.push_back(&t);

    transport.allReduceTensors(CommPhase::Other, ptrs, ReduceOp::Sum);
    for (int64_t i = 0; i < 9; ++i) {
        const float expect = static_cast<float>(
            static_cast<double>(originals[0][i]) + originals[1][i]);
        EXPECT_EQ(tensors[0][i], expect);
        EXPECT_EQ(tensors[1][i], expect);
    }
}

TEST(InProcess, GroupedCollectiveReducesEachGroup)
{
    InProcessTransport transport;
    // Two disjoint groups of identical geometry, as the baseline
    // embedding sync issues them.
    std::vector<Tensor> g0, g1;
    for (int d = 0; d < 2; ++d) {
        g0.push_back(patternTensor({8}, d));
        g1.push_back(patternTensor({8}, d + 9));
    }
    std::vector<Tensor> o0 = g0, o1 = g1;
    std::vector<CommGroup> groups;
    groups.push_back(CommGroup::fromTensors({&g0[0], &g0[1]}));
    groups.push_back(CommGroup::fromTensors({&g1[0], &g1[1]}));

    const CommEvent ev = transport.allReduceGrouped(
        CommPhase::EmbSync, groups, ReduceOp::Mean);
    EXPECT_EQ(ev.ranks, 2);
    EXPECT_EQ(ev.groups, 2);
    // Per-group logical message size, not multiplied by groups.
    EXPECT_EQ(ev.exactBytes, 4 * 8);

    for (int64_t i = 0; i < 8; ++i) {
        const float e0 = static_cast<float>(
            (static_cast<double>(o0[0][i]) + o0[1][i]) / 2.0);
        const float e1 = static_cast<float>(
            (static_cast<double>(o1[0][i]) + o1[1][i]) / 2.0);
        EXPECT_EQ(g0[0][i], e0);
        EXPECT_EQ(g0[1][i], e0);
        EXPECT_EQ(g1[0][i], e1);
        EXPECT_EQ(g1[1][i], e1);
    }
}

TEST(InProcess, BroadcastReplicatesRankZero)
{
    InProcessTransport transport;
    std::vector<Tensor> tensors;
    for (int d = 0; d < 3; ++d)
        tensors.push_back(patternTensor({7}, d));
    const Tensor root = tensors[0];
    CommGroup group = CommGroup::fromTensors(
        {&tensors[0], &tensors[1], &tensors[2]});

    const CommEvent ev =
        transport.broadcast(CommPhase::Other, group);
    EXPECT_EQ(ev.verb, CommVerb::Broadcast);
    EXPECT_EQ(ev.ranks, 3);
    EXPECT_EQ(ev.exactBytes, 4 * 7);
    for (int d = 0; d < 3; ++d) {
        EXPECT_EQ(std::memcmp(tensors[d].data(), root.data(),
                              sizeof(float) * 7),
                  0);
    }
}

TEST(InProcess, P2pSendIsPureAccounting)
{
    InProcessTransport transport;
    transport.setIteration(11);
    CompressorSpec spec{CompressorKind::PowerSgd, 4, 0.01, 42};
    const CommEvent ev = transport.p2pSend(
        CommPhase::InterStage, 2, 1, 0, 4096, 512, spec);
    EXPECT_EQ(ev.iteration, 11);
    EXPECT_EQ(ev.verb, CommVerb::P2pSend);
    EXPECT_EQ(ev.src, 2);
    EXPECT_EQ(ev.dst, 1);
    EXPECT_EQ(ev.replica, 0);
    EXPECT_EQ(ev.ranks, 2);
    EXPECT_EQ(ev.exactBytes, 4096);
    EXPECT_EQ(ev.wireBytes, 512);
    EXPECT_EQ(ev.compressor.kind, CompressorKind::PowerSgd);
    EXPECT_EQ(ev.compressor.rank, 4);
}

TEST(InProcess, CompressedReduceMatchesDirectProtocol)
{
    // The transport verb must be a pure wrapper: same seed, same
    // inputs => bitwise-identical reconstruction and the protocol's
    // own payload as wire bytes.
    const int workers = 2, rank = 2;
    std::vector<Tensor> a, b;
    for (int d = 0; d < workers; ++d) {
        a.push_back(patternTensor({12, 6}, d + 1));
        b.push_back(a.back());
    }
    std::vector<const Tensor *> in_a, in_b;
    for (int d = 0; d < workers; ++d) {
        in_a.push_back(&a[d]);
        in_b.push_back(&b[d]);
    }

    DistributedPowerSgd direct(workers, rank, 7);
    Tensor mean_direct({12, 6});
    const int64_t payload = direct.reduce(in_b, mean_direct);

    InProcessTransport transport;
    DistributedPowerSgd viaTransport(workers, rank, 7);
    Tensor mean_via({12, 6});
    const CommEvent ev = transport.allReduceCompressed(
        CommPhase::DpReduce, viaTransport, in_a, mean_via);

    EXPECT_EQ(ev.verb, CommVerb::AllReduceCompressed);
    EXPECT_EQ(ev.ranks, workers);
    EXPECT_EQ(ev.exactBytes, 4 * 12 * 6);
    EXPECT_EQ(ev.wireBytes, payload);
    EXPECT_EQ(ev.compressor.kind, CompressorKind::PowerSgd);
    EXPECT_EQ(ev.compressor.rank, rank);
    EXPECT_EQ(std::memcmp(mean_via.data(), mean_direct.data(),
                          sizeof(float) * mean_via.size()),
              0);
}

TEST(Recording, CapturesEveryEvent)
{
    InProcessTransport base;
    RecordingTransport recorder(base);
    recorder.setIteration(4);

    recorder.p2pSend(CommPhase::InterStage, 1, 0, 0, 100, 40,
                     CompressorSpec{});
    std::vector<Tensor> tensors;
    std::vector<Tensor *> ptrs;
    for (int d = 0; d < 2; ++d)
        tensors.push_back(patternTensor({5}, d));
    for (auto &t : tensors)
        ptrs.push_back(&t);
    recorder.allReduceTensors(CommPhase::DpReduce, ptrs,
                              ReduceOp::Mean);

    const CommTrace &trace = recorder.trace();
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.count(CommPhase::InterStage), 1);
    EXPECT_EQ(trace.count(CommPhase::DpReduce), 1);
    EXPECT_EQ(trace.count(CommPhase::InterStage, 4), 1);
    EXPECT_EQ(trace.count(CommPhase::InterStage, 5), 0);
    const CommVolume is = trace.volume(CommPhase::InterStage);
    EXPECT_EQ(is.exactBytes, 100);
    EXPECT_EQ(is.wireBytes, 40);
    const CommVolume dp = trace.volume(CommPhase::DpReduce);
    EXPECT_EQ(dp.exactBytes, 20);
    EXPECT_EQ(dp.wireBytes, 20);

    recorder.clearTrace();
    EXPECT_EQ(trace.size(), 0u);
}

GptConfig
tinyModel()
{
    GptConfig config;
    config.vocab = 24;
    config.hidden = 16;
    config.layers = 4;
    config.heads = 2;
    config.seqLen = 8;
    config.seed = 77;
    return config;
}

LmDataset
tinyData(int64_t seq_len)
{
    CorpusConfig cc;
    cc.vocab = 24;
    cc.totalTokens = 6000;
    cc.seed = 5;
    SyntheticCorpus corpus(cc);
    return {corpus.train(), seq_len};
}

/** Fully-compressed tiny grid (CB + DP compression + fused sync). */
Trainer3dConfig
tracedConfig(bool trace, DpReduceMode mode, bool fused)
{
    Trainer3dConfig config;
    config.model = tinyModel();
    config.dataParallel = 2;
    config.pipelineStages = 2;
    config.microBatches = 2;
    config.microBatchSize = 2;
    config.learningRate = 1e-3f;
    config.useAdam = true;
    config.reduceMode = mode;
    config.bucketBytes = 2048;
    config.cb.enabled = true;
    config.dp.enabled = true;
    config.dp.stageFraction = 0.75;
    config.fusedEmbeddingSync = fused;
    config.traceCommunication = trace;
    return config;
}

/** Exact float mismatch count across two trainers' parameters. */
int64_t
bitwiseMismatch(Trainer3d &a, Trainer3d &b)
{
    int64_t mismatches = 0;
    for (int d = 0; d < a.config().dataParallel; ++d) {
        for (int p = 0; p < a.config().pipelineStages; ++p) {
            const auto pa = a.stage(d, p).params();
            const auto pb = b.stage(d, p).params();
            EXPECT_EQ(pa.size(), pb.size());
            for (size_t j = 0; j < pa.size(); ++j) {
                const Tensor &ta = pa[j]->value;
                const Tensor &tb = pb[j]->value;
                EXPECT_EQ(ta.size(), tb.size());
                for (int64_t i = 0; i < ta.size(); ++i) {
                    if (std::memcmp(&ta.data()[i], &tb.data()[i],
                                    sizeof(float)) != 0)
                        ++mismatches;
                }
            }
        }
    }
    return mismatches;
}

TEST(TracedTrainer, RecordingIsBitwiseNeutral)
{
    // The acceptance gate: 5 iterations with tracing on must be
    // bitwise identical to the untraced run (same losses, same
    // parameters) at every OPTIMUS_THREADS level ctest runs us at.
    Trainer3d traced(
        tracedConfig(true, DpReduceMode::Overlapped, true));
    Trainer3d plain(
        tracedConfig(false, DpReduceMode::Overlapped, true));
    LmDataset data = tinyData(tinyModel().seqLen);
    Rng rng_t(11), rng_p(11);
    for (int it = 0; it < 5; ++it) {
        const auto st = traced.trainIteration(data, rng_t);
        const auto sp = plain.trainIteration(data, rng_p);
        ASSERT_EQ(st.loss, sp.loss) << "iteration " << it;
        ASSERT_EQ(st.dpVolume.actualBytes, sp.dpVolume.actualBytes);
        ASSERT_EQ(st.interStageBytes, sp.interStageBytes);
    }
    EXPECT_EQ(bitwiseMismatch(traced, plain), 0);
    ASSERT_NE(traced.trace(), nullptr);
    EXPECT_EQ(plain.trace(), nullptr);
    EXPECT_GT(traced.trace()->size(), 0u);
}

TEST(TracedTrainer, TraceVolumesMatchReportedCounters)
{
    // Consistency gate: the counters the trainer reports are views
    // over the event stream, so per-iteration trace volumes must
    // equal them to the exact integer byte.
    Trainer3d trainer(
        tracedConfig(true, DpReduceMode::Overlapped, false));
    LmDataset data = tinyData(tinyModel().seqLen);
    Rng rng(11);
    for (int it = 0; it < 5; ++it) {
        const IterationStats stats =
            trainer.trainIteration(data, rng);
        const CommTrace &trace = *trainer.trace();

        const CommVolume is =
            trace.volume(CommPhase::InterStage, it);
        EXPECT_EQ(is.wireBytes, stats.interStageBytes);
        EXPECT_EQ(is.exactBytes, stats.interStageBytesExact);

        const CommVolume dp = trace.volume(CommPhase::DpReduce, it);
        EXPECT_EQ(dp.wireBytes, stats.dpVolume.actualBytes);
        EXPECT_EQ(dp.exactBytes, stats.dpVolume.exactBytes);

        // The DP exact volume is the flat size of every reduced
        // parameter -- derivable from the model independently of
        // the events.
        int64_t reduced_elems = 0;
        const auto &params = trainer.stage(0, 0).params();
        const auto &params1 = trainer.stage(0, 1).params();
        for (const auto &p : params)
            reduced_elems += p->size();
        for (const auto &p : params1)
            reduced_elems += p->size();
        // Both stages hold one embedding table the synchronizer
        // owns; the reducer skips those.
        const int64_t table =
            static_cast<int64_t>(tinyModel().vocab) *
            tinyModel().hidden;
        reduced_elems -= 2 * table;
        EXPECT_EQ(dp.exactBytes, 4 * reduced_elems);

        // Baseline sync is two grouped collectives of the table
        // (D-way averages, then pairwise sums), each of logical
        // size V.
        const CommVolume emb = trace.volume(CommPhase::EmbSync, it);
        EXPECT_EQ(emb.exactBytes, 2 * stats.embVolume.tableBytes);
        // Eq 15 exactness straight off the recorded events.
        EXPECT_EQ(trace.trafficBytes(CommPhase::EmbSync, it),
                  stats.embVolume.trafficBytes);
    }
}

TEST(EmbSyncTrace, MatchesClosedFormsForD248)
{
    // Satellite gate: recorded on-wire traffic of both sync
    // variants lands exactly on the paper's closed forms (Eq 15
    // baseline, Eq 16 fused) for D in {2, 4, 8}.
    const int64_t rows = 24, cols = 16;
    const double table_bytes =
        static_cast<double>(4 * rows * cols);
    for (const int d_ways : {2, 4, 8}) {
        for (const bool fused : {false, true}) {
            std::vector<ParamPtr> first, last;
            for (int d = 0; d < d_ways; ++d) {
                auto f = std::make_shared<Param>(
                    "tok_first", Tensor({rows, cols}));
                auto l = std::make_shared<Param>(
                    "tok_last", Tensor({rows, cols}));
                f->grad = patternTensor({rows, cols}, d);
                l->grad = patternTensor({rows, cols}, d + 31);
                first.push_back(f);
                last.push_back(l);
            }
            InProcessTransport base;
            RecordingTransport recorder(base);
            EmbeddingSynchronizer sync(fused, &recorder);
            const EmbSyncVolume volume =
                sync.synchronize(first, last);

            const double expect =
                fused ? embSyncTrafficFused(table_bytes, d_ways)
                      : embSyncTrafficBaseline(table_bytes, d_ways);
            const double traced =
                recorder.trace().trafficBytes(CommPhase::EmbSync);
            EXPECT_EQ(traced, expect)
                << "D=" << d_ways << " fused=" << fused;
            EXPECT_EQ(volume.trafficBytes, expect);
            EXPECT_EQ(volume.tableBytes, 4 * rows * cols);
            EXPECT_EQ(recorder.trace().size(), fused ? 1u : 2u);
        }
    }
}

TEST(Replay, SecondsMatchIndependentRecomputation)
{
    // Record a real compressed run and replay it; the replayed
    // seconds must equal an independent canonical-order walk
    // through the same alpha-beta functions (model identity), and
    // the per-category volumes must equal the trace's own sums.
    Trainer3d trainer(
        tracedConfig(true, DpReduceMode::Overlapped, true));
    LmDataset data = tinyData(tinyModel().seqLen);
    Rng rng(11);
    for (int it = 0; it < 3; ++it)
        trainer.trainIteration(data, rng);
    const CommTrace &trace = *trainer.trace();

    const LinkSpec p2p{25e9, 5e-6};
    const LinkSpec coll{12.5e9, 7e-6};
    const TraceReplayer replayer(p2p, coll);
    const ReplayResult result = replayer.replay(trace);

    double expect_seconds[4] = {0.0, 0.0, 0.0, 0.0};
    double expect_traffic[4] = {0.0, 0.0, 0.0, 0.0};
    int64_t expect_wire[4] = {0, 0, 0, 0};
    for (const CommEvent &ev : trace.sorted()) {
        const int c = static_cast<int>(ev.phase);
        double s = 0.0;
        if (ev.verb == CommVerb::P2pSend)
            s = p2pTime(static_cast<double>(ev.wireBytes), p2p);
        else
            s = ringAllReduceTime(
                static_cast<double>(ev.wireBytes), ev.ranks, coll);
        expect_seconds[c] += s;
        expect_traffic[c] += commEventTraffic(ev);
        expect_wire[c] += ev.wireBytes;
    }
    const CommPhase phases[] = {CommPhase::InterStage,
                                CommPhase::DpReduce,
                                CommPhase::EmbSync, CommPhase::Other};
    for (const CommPhase phase : phases) {
        const int c = static_cast<int>(phase);
        const ReplayCategory &cat = result.category(phase);
        EXPECT_EQ(cat.seconds, expect_seconds[c])
            << commPhaseName(phase);
        EXPECT_EQ(cat.trafficBytes, expect_traffic[c]);
        EXPECT_EQ(cat.wireBytes, expect_wire[c]);
        EXPECT_EQ(cat.events, trace.count(phase));
        const CommVolume v = trace.volume(phase);
        EXPECT_EQ(cat.exactBytes, v.exactBytes);
    }
    EXPECT_GT(result.interStage.events, 0);
    EXPECT_GT(result.dpReduce.events, 0);
    EXPECT_GT(result.embSync.events, 0);
    EXPECT_EQ(result.totalSeconds(),
              expect_seconds[0] + expect_seconds[1] +
                  expect_seconds[2] + expect_seconds[3]);
}

TEST(ReduceModes, DpVolumesAgreeThroughSharedEventPath)
{
    // The legacy sequential reducer and the bucketed engine now
    // fold the same transport events, so their per-iteration DP
    // volumes (and the traces behind them) must be equal.
    Trainer3d sequential(
        tracedConfig(true, DpReduceMode::Sequential, false));
    Trainer3d barriered(
        tracedConfig(true, DpReduceMode::Barriered, false));
    Trainer3d overlapped(
        tracedConfig(true, DpReduceMode::Overlapped, false));
    LmDataset data = tinyData(tinyModel().seqLen);
    Rng rng_s(11), rng_b(11), rng_o(11);
    for (int it = 0; it < 5; ++it) {
        const auto ss = sequential.trainIteration(data, rng_s);
        const auto sb = barriered.trainIteration(data, rng_b);
        const auto so = overlapped.trainIteration(data, rng_o);
        ASSERT_EQ(ss.dpVolume.exactBytes, sb.dpVolume.exactBytes);
        ASSERT_EQ(ss.dpVolume.exactBytes, so.dpVolume.exactBytes);
        ASSERT_EQ(ss.dpVolume.actualBytes, sb.dpVolume.actualBytes);
        ASSERT_EQ(ss.dpVolume.actualBytes, so.dpVolume.actualBytes);

        const CommVolume vs =
            sequential.trace()->volume(CommPhase::DpReduce, it);
        const CommVolume vb =
            barriered.trace()->volume(CommPhase::DpReduce, it);
        const CommVolume vo =
            overlapped.trace()->volume(CommPhase::DpReduce, it);
        ASSERT_EQ(vs.exactBytes, vb.exactBytes);
        ASSERT_EQ(vs.exactBytes, vo.exactBytes);
        ASSERT_EQ(vs.wireBytes, vb.wireBytes);
        ASSERT_EQ(vs.wireBytes, vo.wireBytes);
    }
}

} // namespace
} // namespace optimus
