/**
 * @file
 * Tests for the pipeline-timing simulator: analytic sanity of the
 * 1F1B timeline, breakdown accounting, policy effects (CB / FE /
 * SC), and the compression-kernel throughput model.
 */

#include <gtest/gtest.h>

#include "pipesim/pipe_model.hh"

namespace optimus
{
namespace
{

/** Uniform spec with no communication at all. */
PipeCostSpec
computeOnlySpec(int stages, int micro_batches, double fwd, double bwd)
{
    PipeCostSpec spec;
    spec.stages = stages;
    spec.microBatches = micro_batches;
    spec.fwdCompute = fwd;
    spec.bwdCompute = bwd;
    spec.fwdMsgTime = 0.0;
    spec.bwdMsgTime.assign(stages - 1,
                           std::vector<double>(micro_batches, 0.0));
    spec.dpTime.assign(stages, 0.0);
    spec.embSyncTime = 0.0;
    return spec;
}

TEST(PipeSim, SingleStageIsSequential)
{
    PipeCostSpec spec = computeOnlySpec(1, 4, 1.0, 2.0);
    // One stage: 4 sequential (fwd + bwd) pairs.
    const auto result = simulatePipeline(spec);
    EXPECT_NEAR(result.iterationTime, 4 * 3.0, 1e-9);
}

TEST(PipeSim, OneFOneBMatchesAnalyticBubble)
{
    // Uniform stages, zero comm: iteration = (M + P - 1)(f + b).
    for (int p : {2, 4, 8}) {
        for (int m : {8, 16}) {
            PipeCostSpec spec = computeOnlySpec(p, m, 1.0, 2.0);
            const auto result = simulatePipeline(spec);
            EXPECT_NEAR(result.iterationTime, (m + p - 1) * 3.0,
                        1e-9)
                << "P=" << p << " M=" << m;
        }
    }
}

TEST(PipeSim, CommunicationDelaysIteration)
{
    PipeCostSpec spec = computeOnlySpec(4, 8, 1.0, 2.0);
    const double base = simulatePipeline(spec).iterationTime;

    spec.fwdMsgTime = 0.1;
    for (auto &channel : spec.bwdMsgTime)
        std::fill(channel.begin(), channel.end(), 0.1);
    const double with_comm = simulatePipeline(spec).iterationTime;
    EXPECT_GT(with_comm, base);
}

TEST(PipeSim, DpTimeExtendsReadiness)
{
    PipeCostSpec spec = computeOnlySpec(2, 4, 1.0, 2.0);
    const double base = simulatePipeline(spec).iterationTime;
    spec.dpTime[0] = 5.0;
    const auto result = simulatePipeline(spec);
    // Stage 0's reduction gates the next iteration directly.
    EXPECT_NEAR(result.iterationTime, base + 5.0, 1e-9);
}

TEST(PipeSim, LaterStageDpOverlapsRamp)
{
    // The same reduction on the last stage is partially hidden by
    // the next iteration's ramp.
    PipeCostSpec spec = computeOnlySpec(4, 8, 1.0, 2.0);
    const double base = simulatePipeline(spec).iterationTime;

    PipeCostSpec early = spec;
    early.dpTime[0] = 2.0;
    PipeCostSpec late = spec;
    late.dpTime[3] = 2.0;
    const double t_early = simulatePipeline(early).iterationTime;
    const double t_late = simulatePipeline(late).iterationTime;
    EXPECT_GT(t_early, base);
    EXPECT_LT(t_late, t_early);
}

TEST(PipeSim, EmbeddingSyncGatesFirstAndLastStage)
{
    PipeCostSpec spec = computeOnlySpec(4, 8, 1.0, 2.0);
    const double base = simulatePipeline(spec).iterationTime;
    spec.embSyncTime = 3.0;
    const auto result = simulatePipeline(spec);
    EXPECT_NEAR(result.iterationTime, base + 3.0, 1e-9);
    EXPECT_GT(result.embEnd, result.dpEnd[0]);
}

TEST(PipeSim, BreakdownComponentsSumToTotal)
{
    const auto hw = HardwareConfig::a100Cluster();
    ParallelConfig parallel;
    TrainingPlan plan;
    MappedWorkload w(hw, GptModelSpec::gpt8_3b(), parallel, plan);
    const auto spec = buildCostSpec(w, OptimusCcPolicy::baseline());
    const auto bd = computeBreakdown(spec);
    EXPECT_NEAR(bd.total,
                bd.fwdCompute + bd.bwdCompute + bd.interStage +
                    bd.dpComm + bd.embComm,
                1e-6);
    EXPECT_GT(bd.fwdCompute, 0.0);
    EXPECT_GT(bd.bwdCompute, 0.0);
    EXPECT_GT(bd.interStage, 0.0);
    EXPECT_GT(bd.dpComm, 0.0);
    EXPECT_GT(bd.embComm, 0.0);
}

TEST(Policy, PresetsMatchPaperColumns)
{
    const auto base = OptimusCcPolicy::baseline();
    EXPECT_FALSE(base.cb);
    EXPECT_FALSE(base.fusedEmbedding);
    EXPECT_FALSE(base.sc);

    const auto cb = OptimusCcPolicy::cbOnly();
    EXPECT_TRUE(cb.cb);
    EXPECT_FALSE(cb.fusedEmbedding);

    const auto cbfe = OptimusCcPolicy::cbFe();
    EXPECT_TRUE(cbfe.cb);
    EXPECT_TRUE(cbfe.fusedEmbedding);
    EXPECT_FALSE(cbfe.sc);

    const auto full = OptimusCcPolicy::cbFeSc();
    EXPECT_TRUE(full.cb && full.fusedEmbedding && full.sc);
    EXPECT_DOUBLE_EQ(full.scStageFraction, 0.75);
}

TEST(Policy, EachTechniqueMonotonicallyImproves)
{
    for (auto model :
         {GptModelSpec::gpt2_5b(), GptModelSpec::gpt8_3b()}) {
        const auto hw = HardwareConfig::a100Cluster();
        ParallelConfig parallel;
        TrainingPlan plan;
        MappedWorkload w(hw, model, parallel, plan);
        const double base =
            trainingDays(w, OptimusCcPolicy::baseline());
        const double cb = trainingDays(w, OptimusCcPolicy::cbOnly());
        const double cbfe = trainingDays(w, OptimusCcPolicy::cbFe());
        const double full =
            trainingDays(w, OptimusCcPolicy::cbFeSc());
        EXPECT_LT(cb, base) << model.name;
        EXPECT_LT(cbfe, cb) << model.name;
        EXPECT_LT(full, cbfe) << model.name;
    }
}

TEST(Policy, Table2SpeedupShapeReproduced)
{
    const auto hw = HardwareConfig::a100Cluster();
    ParallelConfig parallel;
    TrainingPlan plan;

    MappedWorkload w25(hw, GptModelSpec::gpt2_5b(), parallel, plan);
    MappedWorkload w83(hw, GptModelSpec::gpt8_3b(), parallel, plan);

    // Baseline days within 10% of the paper's Table 2.
    EXPECT_NEAR(trainingDays(w25, OptimusCcPolicy::baseline()),
                14.72, 1.5);
    EXPECT_NEAR(trainingDays(w83, OptimusCcPolicy::baseline()),
                37.27, 3.7);

    // SC's marginal gain is the largest contributor on 8.3B and the
    // smallest on 2.5B (the paper's headline asymmetry).
    auto marginal = [](const MappedWorkload &w) {
        const double cbfe = trainingDays(w, OptimusCcPolicy::cbFe());
        const double full =
            trainingDays(w, OptimusCcPolicy::cbFeSc());
        const double base =
            trainingDays(w, OptimusCcPolicy::baseline());
        const double cb = trainingDays(w, OptimusCcPolicy::cbOnly());
        return std::make_pair(cbfe / full - 1.0, // SC marginal
                              base / cb - 1.0);  // CB marginal
    };
    const auto [sc25, cb25] = marginal(w25);
    const auto [sc83, cb83] = marginal(w83);
    EXPECT_LT(sc25, cb25);          // 2.5B: SC smallest
    EXPECT_GT(sc83, cb83);          // 8.3B: SC largest
    EXPECT_GT(sc83, 3.0 * sc25);    // asymmetry is strong
}

TEST(PipeSim, EpilogueOnlyCbKeepsMostOfFullCbSpeedup)
{
    // The paper's claim (Section 5.2): restricting compression to
    // the epilogue costs little speed because the skipped messages
    // were hidden anyway.
    const auto hw = HardwareConfig::a100Cluster();
    ParallelConfig parallel;
    TrainingPlan plan;
    MappedWorkload w(hw, GptModelSpec::gpt8_3b(), parallel, plan);

    OptimusCcPolicy everything = OptimusCcPolicy::cbOnly();
    everything.cbEpilogueOnly = false;
    OptimusCcPolicy epilogue = OptimusCcPolicy::cbOnly();

    const double base = trainingDays(w, OptimusCcPolicy::baseline());
    const double t_all = trainingDays(w, everything);
    const double t_epi = trainingDays(w, epilogue);
    const double gain_all = base - t_all;
    const double gain_epi = base - t_epi;
    EXPECT_GT(gain_epi, 0.75 * gain_all);
}

TEST(Kernel, CompressionThroughputTrendsMatchFig15)
{
    CompressionKernelModel kernel;
    // Larger messages -> higher compression throughput (setup
    // amortizes).
    const double small = kernel.compressThroughput(1024, 1920, 16);
    const double large = kernel.compressThroughput(8192, 3072, 16);
    EXPECT_GT(large, small);

    // Higher rank -> lower compression throughput (orthogonalization
    // dominates).
    const double r4 = kernel.compressThroughput(8192, 3072, 4);
    const double r64 = kernel.compressThroughput(8192, 3072, 64);
    EXPECT_GT(r4, r64);

    // Decompression is orders of magnitude faster.
    const double comp = kernel.compressThroughput(8192, 3072, 16);
    const double decomp =
        kernel.decompressThroughput(8192, 3072, 16);
    EXPECT_GT(decomp, 20.0 * comp);
}

TEST(Kernel, ThroughputComfortablyExceedsInterconnect)
{
    // Fig 15's red line: compression must outrun the 25 GB/s wire
    // for the technique to be viable.
    CompressionKernelModel kernel;
    const double wire = 25e9;
    EXPECT_GT(kernel.compressThroughput(8192, 3072, 16), wire);
    EXPECT_GT(kernel.decompressThroughput(8192, 3072, 16), wire);
}

TEST(PipeSim, SchedulesAgreeWithoutCommAndDivergeWithIt)
{
    // With zero communication and uniform stages, 1F1B and GPipe
    // have the same makespan (M + P - 1 slots). With per-message
    // communication they differ: 1F1B pays the forward+backward
    // zig-zag dependency cycle every micro-batch, GPipe pays the
    // ramp twice -- either can win depending on the ratios.
    PipeCostSpec spec = computeOnlySpec(4, 16, 1.0, 2.0);
    const double t_1f1b0 = simulatePipeline(spec).iterationTime;
    PipeCostSpec gspec = spec;
    gspec.schedule = ScheduleKind::GPipe;
    const double t_gpipe0 = simulatePipeline(gspec).iterationTime;
    EXPECT_NEAR(t_1f1b0, t_gpipe0, 1e-9);

    spec.fwdMsgTime = 0.2;
    for (auto &channel : spec.bwdMsgTime)
        std::fill(channel.begin(), channel.end(), 0.2);
    gspec = spec;
    gspec.schedule = ScheduleKind::GPipe;
    const double t_1f1b = simulatePipeline(spec).iterationTime;
    const double t_gpipe = simulatePipeline(gspec).iterationTime;
    EXPECT_GT(t_1f1b, t_1f1b0);
    EXPECT_GT(t_gpipe, t_gpipe0);
}

} // namespace
} // namespace optimus
