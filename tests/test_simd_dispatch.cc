/**
 * @file
 * Tests for the runtime SIMD dispatch layer (src/tensor/simd.hh):
 * OPTIMUS_SIMD parsing and tier selection, and the per-tier
 * determinism contract on a full Trainer3d run — for every tier the
 * CPU supports, 5 iterations are bitwise reproducible (mirroring
 * the CommTrace/obs neutrality gates), bitwise invariant to the
 * thread count, and within documented tolerance of the Scalar
 * tier. Run at OPTIMUS_THREADS in {1, 4, 8} plus an
 * OPTIMUS_SIMD=scalar leg via tests/CMakeLists.txt.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "data/corpus.hh"
#include "data/dataset.hh"
#include "parallel/trainer3d.hh"
#include "runtime/runtime.hh"
#include "tensor/simd.hh"
#include "util/random.hh"

namespace optimus
{
namespace
{

// Force a multi-threaded pool before its lazy construction so the
// determinism tests actually exercise pooled execution (the ctest
// re-registrations override this with an explicit value).
const bool kForceThreads = [] {
    ::setenv("OPTIMUS_THREADS", "4", 0);
    return true;
}();

std::vector<simd::Tier>
supportedTiers()
{
    std::vector<simd::Tier> tiers;
    for (simd::Tier t : {simd::Tier::Scalar, simd::Tier::Avx2,
                         simd::Tier::Avx512})
        if (simd::supported(t))
            tiers.push_back(t);
    return tiers;
}

GptConfig
tinyModel()
{
    GptConfig config;
    config.vocab = 24;
    config.hidden = 16;
    config.layers = 4;
    config.heads = 2;
    config.seqLen = 8;
    config.seed = 77;
    return config;
}

LmDataset
tinyData(int64_t seq_len)
{
    CorpusConfig cc;
    cc.vocab = 24;
    cc.totalTokens = 6000;
    cc.seed = 5;
    SyntheticCorpus corpus(cc);
    return {corpus.train(), seq_len};
}

/** Fully-compressed tiny grid on the overlapped engine path — the
 * configuration that runs every SIMD-dispatched kernel (GEMM,
 * PowerSGD Gram-Schmidt, the quantizers behind the compressors). */
Trainer3dConfig
tinyConfig()
{
    Trainer3dConfig config;
    config.model = tinyModel();
    config.dataParallel = 2;
    config.pipelineStages = 2;
    config.microBatches = 2;
    config.microBatchSize = 2;
    config.learningRate = 1e-3f;
    config.useAdam = true;
    config.reduceMode = DpReduceMode::Overlapped;
    config.bucketBytes = 2048;
    config.cb.enabled = true;
    config.dp.enabled = true;
    config.dp.stageFraction = 0.75;
    config.fusedEmbeddingSync = true;
    return config;
}

/** Exact float mismatch count across two trainers' parameters. */
int64_t
bitwiseMismatch(Trainer3d &a, Trainer3d &b)
{
    int64_t mismatches = 0;
    for (int d = 0; d < a.config().dataParallel; ++d) {
        for (int p = 0; p < a.config().pipelineStages; ++p) {
            const auto pa = a.stage(d, p).params();
            const auto pb = b.stage(d, p).params();
            EXPECT_EQ(pa.size(), pb.size());
            for (size_t j = 0; j < pa.size(); ++j) {
                const Tensor &ta = pa[j]->value;
                const Tensor &tb = pb[j]->value;
                EXPECT_EQ(ta.size(), tb.size());
                for (int64_t i = 0; i < ta.size(); ++i) {
                    if (std::memcmp(&ta.data()[i], &tb.data()[i],
                                    sizeof(float)) != 0)
                        ++mismatches;
                }
            }
        }
    }
    return mismatches;
}

/** 5 tiny iterations under the active tier; returns the last loss. */
double
trainLosses(Trainer3d &trainer, const LmDataset &data, Rng &rng,
            double *per_iter = nullptr)
{
    double loss = 0.0;
    for (int it = 0; it < 5; ++it) {
        loss = trainer.trainIteration(data, rng).loss;
        if (per_iter != nullptr)
            per_iter[it] = loss;
    }
    return loss;
}

// Runs first: later tests overwrite the active tier via setTier,
// so the environment-resolution check must come before them.
TEST(SimdDispatch, EnvOverrideResolvesActiveTier)
{
    const char *env = std::getenv("OPTIMUS_SIMD");
    simd::Tier want;
    if (env != nullptr && *env != '\0' &&
        simd::parseTier(env, want) && simd::supported(want)) {
        EXPECT_EQ(simd::tier(), want) << "OPTIMUS_SIMD=" << env;
    } else {
        // Unset, unknown, or unsupported spellings resolve to the
        // widest supported tier.
        EXPECT_EQ(simd::tier(), simd::cap());
    }
}

TEST(SimdDispatch, ParseTierSpellings)
{
    simd::Tier t;
    EXPECT_TRUE(simd::parseTier("scalar", t));
    EXPECT_EQ(t, simd::Tier::Scalar);
    EXPECT_TRUE(simd::parseTier("avx2", t));
    EXPECT_EQ(t, simd::Tier::Avx2);
    EXPECT_TRUE(simd::parseTier("avx512", t));
    EXPECT_EQ(t, simd::Tier::Avx512);
    EXPECT_TRUE(simd::parseTier("auto", t));
    EXPECT_EQ(t, simd::cap());

    EXPECT_FALSE(simd::parseTier(nullptr, t));
    EXPECT_FALSE(simd::parseTier("", t));
    EXPECT_FALSE(simd::parseTier("AVX2", t));
    EXPECT_FALSE(simd::parseTier("sse", t));
}

TEST(SimdDispatch, TierNamesRoundTrip)
{
    for (simd::Tier t : {simd::Tier::Scalar, simd::Tier::Avx2,
                         simd::Tier::Avx512}) {
        simd::Tier parsed;
        ASSERT_TRUE(simd::parseTier(simd::tierName(t), parsed));
        EXPECT_EQ(parsed, t);
    }
}

TEST(SimdDispatch, ScalarAlwaysSupportedAndTiersAreOrdered)
{
    EXPECT_TRUE(simd::supported(simd::Tier::Scalar));
    EXPECT_TRUE(simd::supported(simd::cap()));
    // Tiers are cumulative: a CPU with AVX-512 kernels also runs
    // the AVX2 ones.
    if (simd::supported(simd::Tier::Avx512))
        EXPECT_TRUE(simd::supported(simd::Tier::Avx2));
}

TEST(SimdDispatch, SetTierSticksForSupportedTiers)
{
    const simd::Tier initial = simd::tier();
    for (simd::Tier t : supportedTiers()) {
        simd::setTier(t);
        EXPECT_EQ(simd::tier(), t);
    }
    simd::setTier(initial);
}

TEST(SimdDispatch, StridedKernelsBitwiseMatchGatheredContiguous)
{
    // The strided variants' contract (tensor/simd.hh): at EVERY
    // tier, a strided kernel must produce bit-for-bit what the
    // contiguous kernel produces on a gathered copy of the same
    // span. This is what makes the gather-free PowerSGD
    // Gram-Schmidt a pure data-movement optimization.
    Rng rng(55);
    const int64_t kSizes[] = {1, 2, 31, 32, 33, 63, 64, 65, 257};
    const int64_t kStrides[] = {1, 3, 5};
    for (int64_t n : kSizes) {
        for (int64_t stride : kStrides) {
            std::vector<float> xs(static_cast<size_t>(n * stride));
            std::vector<float> ys(xs.size());
            for (float &v : xs)
                v = static_cast<float>(rng.normal());
            for (float &v : ys)
                v = static_cast<float>(rng.normal());
            // Gathered copies of the strided spans.
            std::vector<float> xg(static_cast<size_t>(n));
            std::vector<float> yg(static_cast<size_t>(n));
            for (int64_t i = 0; i < n; ++i) {
                xg[i] = xs[i * stride];
                yg[i] = ys[i * stride];
            }
            for (simd::Tier t : supportedTiers()) {
                const double want =
                    simd::dotDouble(t, xg.data(), yg.data(), n);
                const double got = simd::dotDoubleStrided(
                    t, xs.data(), stride, ys.data(), stride, n);
                EXPECT_EQ(0, std::memcmp(&want, &got, sizeof want))
                    << simd::tierName(t) << " n=" << n
                    << " stride=" << stride;

                std::vector<float> yc = yg;
                std::vector<float> ysc = ys;
                simd::subScaled(t, yc.data(), xg.data(), 0.37f, n);
                simd::subScaledStrided(t, ysc.data(), stride,
                                       xs.data(), stride, 0.37f, n);
                std::vector<float> xc = xg;
                std::vector<float> xsc = xs;
                simd::scaleInPlace(t, xc.data(), 1.61f, n);
                simd::scaleStrided(t, xsc.data(), stride, 1.61f, n);
                for (int64_t i = 0; i < n; ++i) {
                    EXPECT_EQ(0, std::memcmp(&yc[i],
                                             &ysc[i * stride],
                                             sizeof(float)))
                        << simd::tierName(t) << " n=" << n;
                    EXPECT_EQ(0, std::memcmp(&xc[i],
                                             &xsc[i * stride],
                                             sizeof(float)))
                        << simd::tierName(t) << " n=" << n;
                }
            }
        }
    }
}

TEST(SimdDispatch, TrainerBitwiseIdenticalPerTier)
{
    ASSERT_TRUE(kForceThreads);
    const simd::Tier initial = simd::tier();
    LmDataset data = tinyData(tinyModel().seqLen);
    for (simd::Tier t : supportedTiers()) {
        simd::setTier(t);
        Trainer3d a(tinyConfig());
        Trainer3d b(tinyConfig());
        Rng rng_a(11), rng_b(11);
        for (int it = 0; it < 5; ++it) {
            const auto sa = a.trainIteration(data, rng_a);
            const auto sb = b.trainIteration(data, rng_b);
            ASSERT_EQ(sa.loss, sb.loss)
                << simd::tierName(t) << " iteration " << it;
        }
        EXPECT_EQ(bitwiseMismatch(a, b), 0) << simd::tierName(t);
    }
    simd::setTier(initial);
}

TEST(SimdDispatch, TrainerThreadGridInvariantPerTier)
{
    // Pooled vs forced-serial execution must agree bitwise in every
    // tier: kernel chunk grids are functions of the problem shape,
    // never of the worker count. Combined with the ctest legs at
    // OPTIMUS_THREADS in {1, 4, 8}, this pins full thread
    // invariance per tier.
    const simd::Tier initial = simd::tier();
    LmDataset data = tinyData(tinyModel().seqLen);
    for (simd::Tier t : supportedTiers()) {
        simd::setTier(t);
        Trainer3d pooled(tinyConfig());
        Rng rng_pooled(11);
        double pooled_losses[5];
        trainLosses(pooled, data, rng_pooled, pooled_losses);

        SerialRegion serial;
        Trainer3d inline_run(tinyConfig());
        Rng rng_inline(11);
        double inline_losses[5];
        trainLosses(inline_run, data, rng_inline, inline_losses);

        for (int it = 0; it < 5; ++it)
            ASSERT_EQ(pooled_losses[it], inline_losses[it])
                << simd::tierName(t) << " iteration " << it;
        EXPECT_EQ(bitwiseMismatch(pooled, inline_run), 0)
            << simd::tierName(t);
    }
    simd::setTier(initial);
}

TEST(SimdDispatch, TiersAgreeWithScalarToDocumentedTolerance)
{
    // Different tiers round reductions differently and agree only
    // to tolerance (DESIGN.md section 8): after 5 tiny iterations
    // the losses must match Scalar to 1% relative.
    const simd::Tier initial = simd::tier();
    LmDataset data = tinyData(tinyModel().seqLen);

    simd::setTier(simd::Tier::Scalar);
    Trainer3d scalar_run(tinyConfig());
    Rng rng_scalar(11);
    const double scalar_loss =
        trainLosses(scalar_run, data, rng_scalar);

    for (simd::Tier t : supportedTiers()) {
        if (t == simd::Tier::Scalar)
            continue;
        simd::setTier(t);
        Trainer3d run(tinyConfig());
        Rng rng(11);
        const double loss = trainLosses(run, data, rng);
        EXPECT_NEAR(loss, scalar_loss,
                    0.01 * std::fabs(scalar_loss))
            << simd::tierName(t);
    }
    simd::setTier(initial);
}

} // namespace
} // namespace optimus
