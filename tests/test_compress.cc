/**
 * @file
 * Tests for the compression stack: PowerSGD properties, distributed
 * PowerSGD reduction, top-k, quantizers, error feedback, and the
 * lazy-error-propagation buffer semantics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "compress/error_feedback.hh"
#include "compress/powersgd.hh"
#include "compress/quantize.hh"
#include "compress/topk.hh"
#include "runtime/runtime.hh"
#include "tensor/matmul.hh"
#include "tensor/simd.hh"
#include "util/random.hh"

namespace optimus
{
namespace
{

Tensor
lowRankMatrix(int64_t rows, int64_t cols, int rank, Rng &rng)
{
    Tensor a = Tensor::randn({rows, rank}, rng);
    Tensor b = Tensor::randn({rank, cols}, rng);
    return matmul(a, b);
}

TEST(Orthonormalize, ColumnsAreOrthonormal)
{
    Rng rng(1);
    Tensor m = Tensor::randn({12, 4}, rng);
    orthonormalizeColumns(m);
    for (int64_t a = 0; a < 4; ++a) {
        for (int64_t b = 0; b < 4; ++b) {
            double dot_val = 0.0;
            for (int64_t i = 0; i < 12; ++i)
                dot_val += static_cast<double>(m.at(i, a)) * m.at(i, b);
            EXPECT_NEAR(dot_val, a == b ? 1.0 : 0.0, 1e-5);
        }
    }
}

TEST(Orthonormalize, DegenerateColumnsBecomeZero)
{
    Rng rng(2);
    Tensor m({6, 3});
    // Columns 1 and 2 duplicate column 0.
    for (int64_t i = 0; i < 6; ++i) {
        const float v = static_cast<float>(rng.normal());
        m.at(i, 0) = v;
        m.at(i, 1) = v;
        m.at(i, 2) = 2.0f * v;
    }
    orthonormalizeColumns(m);
    for (int64_t i = 0; i < 6; ++i) {
        EXPECT_FLOAT_EQ(m.at(i, 1), 0.0f);
        EXPECT_FLOAT_EQ(m.at(i, 2), 0.0f);
    }
}

TEST(PowerSgd, ExactlyRecoversMatrixOfMatchingRank)
{
    Rng rng(3);
    Tensor m = lowRankMatrix(20, 16, 3, rng);
    PowerSgdCompressor comp(3, 7);
    Tensor out;
    // Warm-started power iteration converges over a few repeats of
    // the same matrix.
    for (int i = 0; i < 12; ++i)
        comp.compress(m, out);
    EXPECT_LT(sub(m, out).norm() / m.norm(), 1e-2);
}

TEST(PowerSgd, FullRankIsNearLossless)
{
    Rng rng(4);
    Tensor m = Tensor::randn({8, 8}, rng);
    PowerSgdCompressor comp(8, 7);
    Tensor out;
    for (int i = 0; i < 30; ++i)
        comp.compress(m, out);
    EXPECT_LT(sub(m, out).norm() / m.norm(), 0.05);
}

TEST(PowerSgd, PayloadBytesMatchFormula)
{
    PowerSgdCompressor comp(16, 1);
    EXPECT_EQ(comp.payloadBytes(100, 40), 4 * 16 * (100 + 40));
    // Rank clamps to min(rows, cols).
    EXPECT_EQ(comp.payloadBytes(8, 40), 4 * 8 * (8 + 40));
}

TEST(PowerSgd, CompressionReducesPayload)
{
    Rng rng(5);
    Tensor m = Tensor::randn({64, 64}, rng);
    PowerSgdCompressor comp(4, 7);
    Tensor out;
    const int64_t bytes = comp.compress(m, out);
    EXPECT_EQ(bytes, 4 * 4 * (64 + 64));
    EXPECT_LT(bytes, 4 * 64 * 64);
    EXPECT_EQ(out.rows(), 64);
    EXPECT_EQ(out.cols(), 64);
}

TEST(PowerSgd, ApproximationErrorDecreasesWithRank)
{
    Rng rng(6);
    Tensor m = Tensor::randn({32, 32}, rng);
    double prev_err = 1e9;
    for (int rank : {1, 4, 16, 32}) {
        PowerSgdCompressor comp(rank, 7);
        Tensor out;
        for (int i = 0; i < 8; ++i)
            comp.compress(m, out);
        const double err = sub(m, out).norm() / m.norm();
        EXPECT_LT(err, prev_err + 1e-9) << "rank " << rank;
        prev_err = err;
    }
}

TEST(DistributedPowerSgd, AllWorkersSeeSameMeanApproximation)
{
    Rng rng(7);
    const int workers = 4;
    std::vector<Tensor> grads;
    std::vector<const Tensor *> inputs;
    for (int d = 0; d < workers; ++d)
        grads.push_back(lowRankMatrix(16, 12, 2, rng));
    for (const auto &g : grads)
        inputs.push_back(&g);

    DistributedPowerSgd dps(workers, 4, 9);
    Tensor mean_out;
    for (int i = 0; i < 10; ++i)
        dps.reduce(inputs, mean_out);

    Tensor true_mean({16, 12});
    for (const auto &g : grads)
        true_mean.add(g);
    true_mean.scale(1.0f / workers);

    // Rank 4 >= sum of ranks is not guaranteed, but the mean of
    // four rank-2 matrices has rank <= 8; with rank 4 we only check
    // a sane approximation plus the exactness of the rank-8 case.
    EXPECT_LT(sub(true_mean, mean_out).norm() / true_mean.norm(),
              0.8);

    DistributedPowerSgd dps8(workers, 8, 9);
    Tensor mean_out8;
    for (int i = 0; i < 20; ++i)
        dps8.reduce(inputs, mean_out8);
    EXPECT_LT(sub(true_mean, mean_out8).norm() / true_mean.norm(),
              0.05);
}

TEST(TopK, KeepsLargestMagnitudes)
{
    Tensor m = Tensor::fromValues(
        {2, 4}, {0.1f, -5.0f, 0.2f, 3.0f, -0.3f, 0.05f, 4.0f, -1.0f});
    TopKCompressor comp(0.5); // keep 4 of 8
    Tensor out;
    comp.compress(m, out);
    EXPECT_FLOAT_EQ(out[1], -5.0f);
    EXPECT_FLOAT_EQ(out[3], 3.0f);
    EXPECT_FLOAT_EQ(out[6], 4.0f);
    EXPECT_FLOAT_EQ(out[7], -1.0f);
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    EXPECT_FLOAT_EQ(out[2], 0.0f);
    EXPECT_FLOAT_EQ(out[4], 0.0f);
    EXPECT_FLOAT_EQ(out[5], 0.0f);
}

TEST(TopK, PayloadScalesWithFraction)
{
    TopKCompressor comp(0.25);
    EXPECT_EQ(comp.keptCount(100), 25);
    EXPECT_EQ(comp.payloadBytes(10, 10), 25 * 8);
    // At least one element always survives.
    EXPECT_EQ(comp.keptCount(2), 1);
}

TEST(Ternary, OutputsAreTernaryAndUnbiased)
{
    Rng rng(8);
    Tensor m = Tensor::randn({40, 40}, rng);
    TernaryCompressor comp(11);
    Tensor out;
    comp.compress(m, out);

    const float scale = m.maxAbs();
    for (int64_t i = 0; i < out.size(); ++i) {
        const float v = out[i];
        EXPECT_TRUE(v == 0.0f || std::fabs(std::fabs(v) - scale) <
                                     1e-6f);
    }
    // Unbiasedness: E[out] == m elementwise; averaging many
    // independent compressions of the same tensor must converge to
    // it.
    Tensor avg({40, 40});
    const int reps = 64;
    for (int r = 0; r < reps; ++r) {
        Tensor o;
        comp.compress(m, o);
        avg.add(o);
    }
    avg.scale(1.0f / reps);
    Tensor err = sub(m, avg);
    EXPECT_NEAR(err.sum() / err.size(), 0.0, 0.03);
}

TEST(OneBit, ReconstructsSignWithTwoScales)
{
    Rng rng(9);
    Tensor m = Tensor::randn({30, 30}, rng);
    OneBitCompressor comp;
    Tensor out;
    comp.compress(m, out);
    float pos = 0.0f, neg = 0.0f;
    for (int64_t i = 0; i < m.size(); ++i) {
        if (m[i] >= 0.0f) {
            EXPECT_GE(out[i], 0.0f);
            pos = out[i];
        } else {
            EXPECT_LE(out[i], 0.0f);
            neg = out[i];
        }
    }
    EXPECT_GT(pos, 0.0f);
    EXPECT_LT(neg, 0.0f);
    EXPECT_EQ(comp.payloadBytes(30, 30), (900 + 7) / 8 + 8);
}

TEST(ErrorFeedback, ResidualIsExactCompressionError)
{
    Rng rng(10);
    Tensor m = Tensor::randn({16, 16}, rng);
    ErrorFeedbackCompressor ef(
        std::make_unique<PowerSgdCompressor>(2, 5));
    Tensor out;
    ef.compress(m, out);
    Tensor expect_residual = m;
    expect_residual.sub(out);
    EXPECT_TRUE(ef.residual().allClose(expect_residual, 1e-5f));
}

TEST(ErrorFeedback, TelescopesAcrossSteps)
{
    // sum of delivered messages + final residual == sum of inputs.
    Rng rng(11);
    ErrorFeedbackCompressor ef(
        std::make_unique<PowerSgdCompressor>(2, 5));
    Tensor delivered_sum({12, 12});
    Tensor input_sum({12, 12});
    Tensor out;
    for (int step = 0; step < 6; ++step) {
        Tensor m = Tensor::randn({12, 12}, rng);
        input_sum.add(m);
        ef.compress(m, out);
        delivered_sum.add(out);
    }
    Tensor lhs = delivered_sum;
    lhs.add(ef.residual());
    EXPECT_TRUE(lhs.allClose(input_sum, 1e-3f));
}

TEST(LazyErrorBuffer, StoresAndFoldsErrorWhenEnabled)
{
    Rng rng(12);
    LazyErrorBuffer lep(std::make_unique<PowerSgdCompressor>(2, 5),
                        true);
    Tensor g1 = Tensor::randn({10, 10}, rng);
    Tensor out1;
    lep.send(g1, out1);
    Tensor err1 = g1;
    err1.sub(out1);
    EXPECT_TRUE(lep.storedError().allClose(err1, 1e-5f));

    // Second send compresses (g2 + err1).
    Tensor g2 = Tensor::randn({10, 10}, rng);
    Tensor out2;
    lep.send(g2, out2);
    Tensor fed = g2;
    fed.add(err1);
    Tensor err2 = fed;
    err2.sub(out2);
    EXPECT_TRUE(lep.storedError().allClose(err2, 1e-5f));
}

TEST(LazyErrorBuffer, DisabledKeepsNoState)
{
    Rng rng(13);
    LazyErrorBuffer lep(std::make_unique<PowerSgdCompressor>(2, 5),
                        false);
    Tensor g = Tensor::randn({10, 10}, rng);
    Tensor out;
    lep.send(g, out);
    EXPECT_EQ(lep.storedError().size(), 0);
}

TEST(LazyErrorBuffer, TelescopingIdentityOverMicroBatches)
{
    // The LEP guarantee: sum(delivered) + stored error ==
    // sum(true gradients) -- the compression error never escapes
    // the mini-batch except as the final stored residual.
    Rng rng(14);
    LazyErrorBuffer lep(std::make_unique<PowerSgdCompressor>(2, 5),
                        true);
    Tensor true_sum({14, 10});
    Tensor delivered_sum({14, 10});
    Tensor out;
    for (int m = 0; m < 8; ++m) {
        Tensor g = Tensor::randn({14, 10}, rng);
        true_sum.add(g);
        lep.send(g, out);
        delivered_sum.add(out);
    }
    Tensor lhs = delivered_sum;
    lhs.add(lep.storedError());
    EXPECT_TRUE(lhs.allClose(true_sum, 1e-3f));
}

TEST(CompressorFactory, BuildsEveryKind)
{
    for (auto kind :
         {CompressorKind::None, CompressorKind::PowerSgd,
          CompressorKind::TopK, CompressorKind::Ternary,
          CompressorKind::OneBit}) {
        CompressorSpec spec;
        spec.kind = kind;
        auto comp = makeCompressor(spec);
        ASSERT_NE(comp, nullptr);
        Rng rng(15);
        Tensor m = Tensor::randn({8, 8}, rng);
        Tensor out;
        const int64_t bytes = comp->compress(m, out);
        EXPECT_GT(bytes, 0);
        EXPECT_EQ(out.size(), m.size());
    }
}

TEST(CompressorFactory, IdentityIsLossless)
{
    IdentityCompressor id;
    Rng rng(16);
    Tensor m = Tensor::randn({6, 6}, rng);
    Tensor out;
    const int64_t bytes = id.compress(m, out);
    EXPECT_TRUE(out.allClose(m, 0.0f));
    EXPECT_EQ(bytes, 4 * 36);
}

TEST(CompressorFactory, ParseNames)
{
    EXPECT_EQ(parseCompressorKind("none"), CompressorKind::None);
    EXPECT_EQ(parseCompressorKind("powersgd"),
              CompressorKind::PowerSgd);
    EXPECT_EQ(parseCompressorKind("topk"), CompressorKind::TopK);
    EXPECT_EQ(parseCompressorKind("ternary"),
              CompressorKind::Ternary);
    EXPECT_EQ(parseCompressorKind("onebit"), CompressorKind::OneBit);
}

// Parameterized property sweep: for every compressor kind, error
// feedback telescopes and payloads are smaller than raw.
class CompressorProperty
    : public ::testing::TestWithParam<CompressorKind>
{
};

TEST_P(CompressorProperty, ErrorFeedbackTelescopes)
{
    CompressorSpec spec;
    spec.kind = GetParam();
    spec.rank = 2;
    spec.topkFraction = 0.1;
    ErrorFeedbackCompressor ef(makeCompressor(spec));

    Rng rng(17);
    Tensor delivered_sum({10, 10});
    Tensor input_sum({10, 10});
    Tensor out;
    for (int step = 0; step < 5; ++step) {
        Tensor m = Tensor::randn({10, 10}, rng);
        input_sum.add(m);
        ef.compress(m, out);
        delivered_sum.add(out);
    }
    Tensor lhs = delivered_sum;
    if (ef.residual().size() == lhs.size())
        lhs.add(ef.residual());
    EXPECT_TRUE(lhs.allClose(input_sum, 1e-3f));
}

TEST_P(CompressorProperty, PayloadNotLargerThanRaw)
{
    CompressorSpec spec;
    spec.kind = GetParam();
    spec.rank = 2;
    spec.topkFraction = 0.1;
    auto comp = makeCompressor(spec);
    EXPECT_LE(comp->payloadBytes(64, 64), 4 * 64 * 64);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, CompressorProperty,
    ::testing::Values(CompressorKind::PowerSgd, CompressorKind::TopK,
                      CompressorKind::Ternary,
                      CompressorKind::OneBit));

// --------------------------------------------------------------------
// Edge cases: degenerate shapes and mid-stream reconfiguration must
// fail cleanly (clamp, skip, or reset) rather than hit UB. The
// ASan/UBSan and TSan CI jobs run these with bounds checking on.
// --------------------------------------------------------------------

TEST(PowerSgdEdge, RankLargerThanBothDimsClampsCleanly)
{
    Rng rng(20);
    Tensor m = Tensor::randn({4, 6}, rng);
    PowerSgdCompressor comp(/*rank=*/16, 3);
    Tensor out;
    const int64_t bytes = comp.compress(m, out);
    // Effective rank clamps to min(rows, cols) = 4.
    EXPECT_EQ(bytes, 4 * 4 * (4 + 6));
    EXPECT_EQ(comp.payloadBytes(4, 6), 4 * 4 * (4 + 6));
    EXPECT_EQ(out.rows(), 4);
    EXPECT_EQ(out.cols(), 6);
    // At clamped-full rank the warm-started iteration converges to
    // an (almost) exact reconstruction.
    for (int i = 0; i < 30; ++i)
        comp.compress(m, out);
    EXPECT_LT(sub(m, out).norm() / m.norm(), 0.05);
}

TEST(PowerSgdEdge, DistributedRankClampsToDims)
{
    Rng rng(21);
    const int workers = 2;
    std::vector<Tensor> grads;
    for (int d = 0; d < workers; ++d)
        grads.push_back(Tensor::randn({3, 10}, rng));
    std::vector<const Tensor *> inputs;
    for (const auto &g : grads)
        inputs.push_back(&g);
    DistributedPowerSgd dps(workers, /*rank=*/64, 5);
    Tensor mean_out;
    const int64_t bytes = dps.reduce(inputs, mean_out);
    EXPECT_EQ(bytes, 4 * 3 * (3 + 10));
    EXPECT_EQ(mean_out.rows(), 3);
    EXPECT_EQ(mean_out.cols(), 10);
}

TEST(TopKEdge, EmptyTensorKeepsNothing)
{
    TopKCompressor comp(0.5);
    // k clamps to 0 when there is nothing to keep.
    EXPECT_EQ(comp.keptCount(0), 0);
    Tensor empty = Tensor::zeros(0);
    Tensor out;
    const int64_t bytes = comp.compress(empty, out);
    EXPECT_EQ(bytes, 0);
    EXPECT_EQ(out.size(), 0);

    Tensor empty2d = Tensor::zeros(0, 5);
    const int64_t bytes2d = comp.compress(empty2d, out);
    EXPECT_EQ(bytes2d, 0);
    EXPECT_EQ(out.size(), 0);
    EXPECT_EQ(out.rows(), 0);
    EXPECT_EQ(out.cols(), 5);
}

TEST(TopKEdge, KeepAllFastPathIsExact)
{
    Rng rng(22);
    Tensor m = Tensor::randn({6, 9}, rng);
    TopKCompressor comp(1.0); // k == n: selection must be skipped
    Tensor out;
    const int64_t bytes = comp.compress(m, out);
    EXPECT_TRUE(out.allClose(m, 0.0f));
    EXPECT_EQ(bytes, m.size() * 8);
}

TEST(TopKEdge, TinyFractionKeepsAtLeastOne)
{
    Tensor m = Tensor::fromValues({1, 4}, {0.1f, -9.0f, 0.2f, 0.3f});
    TopKCompressor comp(1e-9);
    EXPECT_EQ(comp.keptCount(4), 1);
    Tensor out;
    comp.compress(m, out);
    EXPECT_FLOAT_EQ(out[1], -9.0f);
    EXPECT_FLOAT_EQ(out[0] + out[2] + out[3], 0.0f);
}

TEST(ErrorFeedbackEdge, ShapeChangeDropsStaleResidual)
{
    Rng rng(23);
    ErrorFeedbackCompressor ef(
        std::make_unique<PowerSgdCompressor>(2, 5));
    Tensor g1 = Tensor::randn({8, 8}, rng);
    Tensor out;
    ef.compress(g1, out);
    ASSERT_EQ(ef.residual().rows(), 8);

    // Same element count, different shape: the stale residual must
    // not be folded into the new stream.
    Tensor g2 = Tensor::randn({4, 16}, rng);
    ef.compress(g2, out);
    Tensor fresh = g2;
    fresh.sub(out);
    EXPECT_EQ(ef.residual().rows(), 4);
    EXPECT_EQ(ef.residual().cols(), 16);
    EXPECT_TRUE(ef.residual().allClose(fresh, 1e-5f));

    // Different element count as well: still clean.
    Tensor g3 = Tensor::randn({3, 5}, rng);
    ef.compress(g3, out);
    EXPECT_EQ(out.rows(), 3);
    EXPECT_EQ(out.cols(), 5);
}

TEST(ErrorFeedbackEdge, LazyBufferShapeChangeDropsStaleError)
{
    Rng rng(24);
    LazyErrorBuffer lep(std::make_unique<PowerSgdCompressor>(2, 5),
                        true);
    Tensor g1 = Tensor::randn({10, 4}, rng);
    Tensor out;
    lep.send(g1, out);
    ASSERT_EQ(lep.storedError().rows(), 10);

    Tensor g2 = Tensor::randn({5, 8}, rng);
    lep.send(g2, out);
    Tensor fresh = g2;
    fresh.sub(out);
    EXPECT_EQ(lep.storedError().rows(), 5);
    EXPECT_TRUE(lep.storedError().allClose(fresh, 1e-5f));
}

// ---------------------------------------------------------------
// SIMD dispatch tiers: tail sizes and the per-tier determinism
// contract for the compression hot paths (DESIGN.md section 8).
// ---------------------------------------------------------------

std::vector<simd::Tier>
supportedTiers()
{
    std::vector<simd::Tier> tiers;
    for (simd::Tier t : {simd::Tier::Scalar, simd::Tier::Avx2,
                         simd::Tier::Avx512})
        if (simd::supported(t))
            tiers.push_back(t);
    return tiers;
}

/** Sizes that divide no vector width: lane-count stragglers (63,
 * 65), degenerate 1/2, and primes past one block. */
const int64_t kTailSizes[] = {1, 2, 63, 64, 65, 127, 1031};

/**
 * The pre-dispatch Gram-Schmidt, verbatim: strided column walks
 * with chunked double partial sums combined in chunk order. The
 * Scalar tier of orthonormalizeColumns must reproduce this bitwise
 * — it now walks the columns in place through the strided simd::
 * kernels, which at Scalar are these exact loops, element for
 * element.
 */
void
referenceOrthonormalize(Tensor &m)
{
    constexpr int64_t kGrain = 2048;
    const int64_t rows = m.rows();
    const int64_t cols = m.cols();
    float *data = m.data();

    auto colDot = [&](int64_t ja, int64_t jb) {
        return parallelReduceSum(
            0, rows, kGrain, [&](int64_t lo, int64_t hi) {
                double s = 0.0;
                for (int64_t i = lo; i < hi; ++i)
                    s += static_cast<double>(data[i * cols + ja]) *
                         data[i * cols + jb];
                return s;
            });
    };

    for (int64_t j = 0; j < cols; ++j) {
        const double norm_before_sq = colDot(j, j);
        for (int64_t p = 0; p < j; ++p) {
            const double proj = colDot(j, p);
            parallelFor(0, rows, kGrain,
                        [&](int64_t lo, int64_t hi) {
                            for (int64_t i = lo; i < hi; ++i)
                                data[i * cols + j] -=
                                    static_cast<float>(proj) *
                                    data[i * cols + p];
                        });
        }
        const double norm_sq = colDot(j, j);
        const double norm = std::sqrt(norm_sq);
        if (norm < 1e-8 || norm_sq < 1e-10 * norm_before_sq) {
            parallelFor(0, rows, kGrain,
                        [&](int64_t lo, int64_t hi) {
                            for (int64_t i = lo; i < hi; ++i)
                                data[i * cols + j] = 0.0f;
                        });
        } else {
            const float inv = static_cast<float>(1.0 / norm);
            parallelFor(0, rows, kGrain,
                        [&](int64_t lo, int64_t hi) {
                            for (int64_t i = lo; i < hi; ++i)
                                data[i * cols + j] *= inv;
                        });
        }
    }
}

TEST(SimdTiers, ScalarOrthonormalizeBitExactWithPreDispatchCode)
{
    const simd::Tier initial = simd::tier();
    simd::setTier(simd::Tier::Scalar);
    Rng rng(30);
    const std::pair<int64_t, int64_t> shapes[] = {
        {12, 4}, {2048 + 37, 6}, {63, 3}, {1, 2}};
    for (const auto &s : shapes) {
        Tensor a = Tensor::randn({s.first, s.second}, rng);
        Tensor b = a;
        orthonormalizeColumns(a);
        referenceOrthonormalize(b);
        EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                                 sizeof(float) * a.size()))
            << s.first << "x" << s.second;
    }
    simd::setTier(initial);
}

TEST(SimdTiers, TernaryBitExactAcrossTiersOnTailSizes)
{
    // The ternary quantizer draws its RNG per element in index
    // order and compares against an IEEE division that is lane-
    // exact in every tier, so its output is bitwise identical
    // across tiers — not merely close.
    const simd::Tier initial = simd::tier();
    Rng rng(31);
    for (int64_t n : kTailSizes) {
        Tensor src = Tensor::randn({n}, rng);
        Tensor want;
        simd::setTier(simd::Tier::Scalar);
        TernaryCompressor scalar_q(7);
        scalar_q.compress(src, want);
        for (simd::Tier t : supportedTiers()) {
            simd::setTier(t);
            TernaryCompressor q(7);
            Tensor got;
            q.compress(src, got);
            ASSERT_EQ(got.size(), want.size());
            EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                                     sizeof(float) * want.size()))
                << simd::tierName(t) << " n=" << n;
        }
    }
    simd::setTier(initial);
}

TEST(SimdTiers, OneBitMatchesScalarOnTailSizes)
{
    const simd::Tier initial = simd::tier();
    Rng rng(32);
    for (int64_t n : kTailSizes) {
        Tensor src = Tensor::randn({n}, rng);
        Tensor want;
        simd::setTier(simd::Tier::Scalar);
        OneBitCompressor scalar_q;
        scalar_q.compress(src, want);
        for (simd::Tier t : supportedTiers()) {
            simd::setTier(t);
            OneBitCompressor q;
            Tensor got;
            q.compress(src, got);
            ASSERT_EQ(got.size(), want.size());
            // The two scales come from vector-width-dependent sums
            // (close, not bitwise); the sign pattern is exact.
            EXPECT_TRUE(got.allClose(want, 1e-5f))
                << simd::tierName(t) << " n=" << n;
            for (int64_t i = 0; i < n; ++i)
                EXPECT_EQ(std::signbit(got.data()[i]),
                          std::signbit(want.data()[i]))
                    << simd::tierName(t) << " n=" << n << " i=" << i;
        }
    }
    simd::setTier(initial);
}

TEST(SimdTiers, TopKMatchesScalarOnTailSizes)
{
    // Gaussian draws have distinct magnitudes, so the kept set is
    // unique and every tier must reproduce the Scalar output
    // bitwise (kept values are copies of the input, never
    // recomputed).
    const simd::Tier initial = simd::tier();
    Rng rng(33);
    for (int64_t n : kTailSizes) {
        Tensor src = Tensor::randn({n}, rng);
        for (double fraction : {0.01, 0.3, 1.0}) {
            Tensor want;
            simd::setTier(simd::Tier::Scalar);
            TopKCompressor scalar_k(fraction);
            scalar_k.compress(src, want);
            for (simd::Tier t : supportedTiers()) {
                simd::setTier(t);
                TopKCompressor topk(fraction);
                Tensor got;
                topk.compress(src, got);
                ASSERT_EQ(got.size(), want.size());
                EXPECT_EQ(0,
                          std::memcmp(got.data(), want.data(),
                                      sizeof(float) * want.size()))
                    << simd::tierName(t) << " n=" << n
                    << " fraction=" << fraction;
            }
        }
    }
    simd::setTier(initial);
}

TEST(SimdTiers, OrthonormalizePerTierDeterministicAndClose)
{
    // Per-tier contract on the Gram-Schmidt path: bitwise identical
    // pooled vs forced-serial within a tier, tolerance-close to
    // Scalar across tiers.
    const simd::Tier initial = simd::tier();
    Rng rng(34);
    Tensor base = Tensor::randn({2048 + 63, 5}, rng);

    std::vector<Tensor> per_tier;
    for (simd::Tier t : supportedTiers()) {
        simd::setTier(t);
        Tensor pooled = base;
        orthonormalizeColumns(pooled);
        Tensor serial_copy = base;
        {
            SerialRegion serial;
            orthonormalizeColumns(serial_copy);
        }
        EXPECT_EQ(0, std::memcmp(pooled.data(), serial_copy.data(),
                                 sizeof(float) * pooled.size()))
            << simd::tierName(t);
        per_tier.push_back(pooled);
    }
    for (size_t i = 1; i < per_tier.size(); ++i)
        EXPECT_TRUE(per_tier[i].allClose(per_tier[0], 1e-4f));
    simd::setTier(initial);
}

} // namespace
} // namespace optimus
