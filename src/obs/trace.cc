#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>

namespace optimus
{
namespace obs
{

std::atomic<bool> g_traceEnabled{false};

namespace
{

/** Per-thread append-only event log; owned by the registry so the
 * events survive thread exit. */
struct ThreadBuffer
{
    int track = 0;
    std::string name;
    std::vector<TraceEvent> events;
};

struct TracerState
{
    std::mutex mutex;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers;
    int nextAnonTrack = 1000;
    int64_t epochNs = 0;
};

TracerState &
state()
{
    static TracerState s;
    return s;
}

thread_local ThreadBuffer *t_buffer = nullptr;

/** The calling thread's buffer, registering an anonymous track on
 * first use. Registration locks; subsequent appends do not. */
ThreadBuffer &
threadBuffer()
{
    if (t_buffer == nullptr) {
        TracerState &s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        auto buffer = std::make_unique<ThreadBuffer>();
        buffer->track = s.nextAnonTrack++;
        buffer->name = "thread";
        t_buffer = buffer.get();
        s.buffers.push_back(std::move(buffer));
    }
    return *t_buffer;
}

// optlint:coldfn — tracing buffer write; every caller is gated on
// tracingEnabled(), which steady-state runs leave off.
void
append(const TraceEvent &event)
{
    threadBuffer().events.push_back(event);
}

} // namespace

void
startTracing()
{
    TracerState &s = state();
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        for (auto &buffer : s.buffers)
            buffer->events.clear();
        s.epochNs = nowNs();
    }
    setThreadTrack(0, "main");
    g_traceEnabled.store(true, std::memory_order_relaxed);
}

void
stopTracing()
{
    g_traceEnabled.store(false, std::memory_order_relaxed);
}

void
clearTrace()
{
    TracerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    for (auto &buffer : s.buffers)
        buffer->events.clear();
}

void
setThreadTrack(int track, const char *name)
{
    ThreadBuffer &buffer = threadBuffer();
    TracerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    buffer.track = track;
    buffer.name = name;
}

int64_t
traceEpochNs()
{
    TracerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.epochNs;
}

void
emitSpan(const char *category, const char *name, int64_t begin_ns,
         int64_t end_ns, int64_t id, const char *arg_name0,
         int64_t arg_value0, const char *arg_name1, int64_t arg_value1)
{
    if (!tracingEnabled())
        return;
    TraceEvent event;
    event.phase = 'X';
    event.category = category;
    event.name = name;
    event.beginNs = begin_ns;
    event.endNs = end_ns;
    event.id = id;
    event.argName0 = arg_name0;
    event.argValue0 = arg_value0;
    event.argName1 = arg_name1;
    event.argValue1 = arg_value1;
    append(event);
}

void
emitInstant(const char *category, const char *name, int64_t id)
{
    if (!tracingEnabled())
        return;
    TraceEvent event;
    event.phase = 'i';
    event.category = category;
    event.name = name;
    const int64_t now = nowNs();
    event.beginNs = now;
    event.endNs = now;
    event.id = id;
    append(event);
}

void
emitCounter(const char *name, int64_t value)
{
    if (!tracingEnabled())
        return;
    TraceEvent event;
    event.phase = 'C';
    event.category = "counter";
    event.name = name;
    const int64_t now = nowNs();
    event.beginNs = now;
    event.endNs = now;
    event.argName0 = "value";
    event.argValue0 = value;
    append(event);
}

std::vector<TraceEvent>
traceEvents()
{
    TracerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<TraceEvent> all;
    for (const auto &buffer : s.buffers) {
        for (const TraceEvent &event : buffer->events) {
            TraceEvent copy = event;
            copy.track = buffer->track;
            all.push_back(copy);
        }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.track != b.track)
                             return a.track < b.track;
                         return a.beginNs < b.beginNs;
                     });
    return all;
}

namespace
{

/** "name" or "name#id" into a caller-provided scratch buffer. */
const char *
eventLabel(const TraceEvent &event, char *scratch, size_t scratch_len)
{
    if (event.id < 0)
        return event.name;
    std::snprintf(scratch, scratch_len, "%s#%lld", event.name,
                  static_cast<long long>(event.id));
    return scratch;
}

} // namespace

bool
writeTrace(const std::string &path)
{
    TracerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);

    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr)
        return false;

    const double epoch_us = static_cast<double>(s.epochNs) * 1e-3;
    std::fprintf(out, "{\"traceEvents\":[\n");
    bool first = true;

    // Track metadata: thread names and a stable sort order.
    for (const auto &buffer : s.buffers) {
        if (buffer->events.empty())
            continue;
        std::fprintf(out,
                     "%s{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                     "\"name\":\"thread_name\",\"args\":{\"name\":"
                     "\"%s %d\"}},\n"
                     "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                     "\"name\":\"thread_sort_index\",\"args\":"
                     "{\"sort_index\":%d}}",
                     first ? "" : ",\n", buffer->track,
                     buffer->name.c_str(), buffer->track,
                     buffer->track, buffer->track);
        first = false;
    }

    char label[96];
    for (const auto &buffer : s.buffers) {
        for (const TraceEvent &event : buffer->events) {
            const double ts_us =
                static_cast<double>(event.beginNs) * 1e-3 - epoch_us;
            std::fprintf(out,
                         "%s{\"ph\":\"%c\",\"pid\":1,\"tid\":%d,"
                         "\"cat\":\"%s\",\"name\":\"%s\","
                         "\"ts\":%.3f",
                         first ? "" : ",\n", event.phase,
                         buffer->track, event.category,
                         eventLabel(event, label, sizeof(label)),
                         ts_us);
            first = false;
            if (event.phase == 'X') {
                const double dur_us =
                    static_cast<double>(event.endNs - event.beginNs) *
                    1e-3;
                std::fprintf(out, ",\"dur\":%.3f", dur_us);
            }
            if (event.phase == 'i')
                std::fprintf(out, ",\"s\":\"t\"");
            if (event.argName0 != nullptr || event.id >= 0) {
                std::fprintf(out, ",\"args\":{");
                bool first_arg = true;
                if (event.argName0 != nullptr) {
                    std::fprintf(out, "\"%s\":%lld", event.argName0,
                                 static_cast<long long>(
                                     event.argValue0));
                    first_arg = false;
                }
                if (event.argName1 != nullptr) {
                    std::fprintf(out, "%s\"%s\":%lld",
                                 first_arg ? "" : ",",
                                 event.argName1,
                                 static_cast<long long>(
                                     event.argValue1));
                    first_arg = false;
                }
                if (event.id >= 0) {
                    std::fprintf(out, "%s\"id\":%lld",
                                 first_arg ? "" : ",",
                                 static_cast<long long>(event.id));
                }
                std::fprintf(out, "}");
            }
            std::fprintf(out, "}");
        }
    }
    std::fprintf(out, "\n]}\n");
    const bool ok = std::fclose(out) == 0;
    return ok;
}

} // namespace obs
} // namespace optimus
