#include "obs/metrics.hh"

#include <cstdio>

namespace optimus
{
namespace obs
{

std::atomic<bool> g_metricsEnabled{false};

void
enableMetrics(bool on)
{
    g_metricsEnabled.store(on, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

// optlint:coldfn — slot registration is first-touch-only; the
// steady state resolves existing slots with a map find.
Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

// optlint:coldfn — first-touch registration, as counter() above.
Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

// optlint:coldfn — first-touch registration, as counter() above.
MetricHistogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<MetricHistogram>();
    return *slot;
}

std::map<std::string, int64_t>
MetricsRegistry::counterSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, int64_t> snapshot;
    for (const auto &[name, counter] : counters_)
        snapshot[name] = counter->value();
    for (const auto &[name, gauge] : gauges_)
        snapshot[name] = gauge->value();
    return snapshot;
}

namespace
{

void
appendJsonInt(std::string &out, const char *key, int64_t value,
              bool &first)
{
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer), "%s\"%s\":%lld",
                  first ? "" : ",", key,
                  static_cast<long long>(value));
    out += buffer;
    first = false;
}

} // namespace

std::string
MetricsRegistry::snapshotJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{";
    bool first = true;

    // counters_ / gauges_ / histograms_ are std::map, so each block
    // emits in sorted-key order; names are disjoint by convention.
    for (const auto &[name, counter] : counters_)
        appendJsonInt(out, name.c_str(), counter->value(), first);
    for (const auto &[name, gauge] : gauges_)
        appendJsonInt(out, name.c_str(), gauge->value(), first);
    for (const auto &[name, histogram] : histograms_) {
        const Log2Histogram snap = histogram->snapshot();
        out += first ? "" : ",";
        first = false;
        out += "\"" + name + "\":{";
        bool inner_first = true;
        appendJsonInt(out, "count", snap.count(), inner_first);
        appendJsonInt(out, "min", snap.min(), inner_first);
        appendJsonInt(out, "max", snap.max(), inner_first);
        appendJsonInt(out, "p50", snap.percentile(50.0), inner_first);
        appendJsonInt(out, "p99", snap.percentile(99.0), inner_first);
        out += ",\"buckets\":{";
        bool bucket_first = true;
        for (int b = 0; b < Log2Histogram::kBuckets; ++b) {
            if (snap.bucketCount(b) == 0)
                continue;
            char key[32];
            std::snprintf(key, sizeof(key), "%lld",
                          static_cast<long long>(
                              Log2Histogram::bucketUpperBound(b)));
            appendJsonInt(out, key, snap.bucketCount(b),
                          bucket_first);
        }
        out += "}}";
    }
    out += "}";
    return out;
}

void
MetricsRegistry::resetValues()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_)
        counter->reset();
    for (const auto &[name, gauge] : gauges_)
        gauge->reset();
    for (const auto &[name, histogram] : histograms_)
        histogram->reset();
}

} // namespace obs
} // namespace optimus
