#include "obs/rings.hh"

#include <algorithm>

#include "util/logging.hh"

namespace optimus
{
namespace obs
{

Ring::Ring(int64_t capacity)
{
    OPTIMUS_ASSERT(capacity >= 1);
    values_.reserve(static_cast<size_t>(capacity));
    values_.resize(static_cast<size_t>(capacity), 0.0);
}

// optlint:hot — sampled once per step; must stay allocation-free.
void
Ring::push(double v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    values_[static_cast<size_t>(
        pushed_ % static_cast<int64_t>(values_.size()))] = v;
    ++pushed_;
}

int64_t
Ring::capacity() const
{
    return static_cast<int64_t>(values_.size());
}

int64_t
Ring::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return std::min(pushed_, static_cast<int64_t>(values_.size()));
}

int64_t
Ring::totalPushed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pushed_;
}

int64_t
Ring::firstIndex() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t retained =
        std::min(pushed_, static_cast<int64_t>(values_.size()));
    return pushed_ - retained;
}

double
Ring::at(int64_t i) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t cap = static_cast<int64_t>(values_.size());
    const int64_t retained = std::min(pushed_, cap);
    OPTIMUS_ASSERT(i >= 0 && i < retained);
    return values_[static_cast<size_t>((pushed_ - retained + i) %
                                       cap)];
}

// optlint:coldfn — reporting path (exporter / dump / tests), never
// the step path; the p99 sorts a copied window.
RingRollup
Ring::rollup() const
{
    std::vector<double> window;
    snapshot(window);
    RingRollup roll;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        roll.total = pushed_;
    }
    roll.count = static_cast<int64_t>(window.size());
    if (window.empty())
        return roll;
    roll.last = window.back();
    double sum = 0.0;
    roll.min = window[0];
    roll.max = window[0];
    for (const double v : window) {
        sum += v;
        roll.min = std::min(roll.min, v);
        roll.max = std::max(roll.max, v);
    }
    roll.mean = sum / static_cast<double>(window.size());
    std::sort(window.begin(), window.end());
    // Nearest-rank: the ceil(p/100 * n)-th smallest sample.
    const size_t rank = static_cast<size_t>(
        (99 * window.size() + 99) / 100);
    roll.p99 = window[std::min(rank, window.size()) - 1];
    return roll;
}

void
Ring::snapshot(std::vector<double> &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t cap = static_cast<int64_t>(values_.size());
    const int64_t retained = std::min(pushed_, cap);
    out.clear();
    out.reserve(static_cast<size_t>(retained));
    for (int64_t i = 0; i < retained; ++i)
        out.push_back(values_[static_cast<size_t>(
            (pushed_ - retained + i) % cap)]);
}

void
Ring::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    pushed_ = 0;
}

RingRegistry &
RingRegistry::instance()
{
    static RingRegistry registry;
    return registry;
}

// optlint:coldfn — slot registration is first-touch-only; the
// steady state resolves existing slots with a map find.
Ring &
RingRegistry::ring(const std::string &name, int64_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = rings_[name];
    if (!slot)
        slot = std::make_unique<Ring>(capacity);
    return *slot;
}

std::vector<std::string>
RingRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(rings_.size());
    for (const auto &[name, ring] : rings_)
        out.push_back(name);
    return out;
}

const Ring *
RingRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = rings_.find(name);
    return it == rings_.end() ? nullptr : it->second.get();
}

void
RingRegistry::resetValues()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, ring] : rings_)
        ring->reset();
}

} // namespace obs
} // namespace optimus
