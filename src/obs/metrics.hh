/**
 * @file
 * Global metrics registry: named counters, gauges, and log2
 * histograms with deterministic snapshot export.
 *
 * The registry is the reporting path for "how much / how many"
 * questions (comm events and bytes per phase, buckets reduced,
 * parallelFor calls, trainer iterations) while the tracer answers
 * "when". Producers gate on metricsEnabled() — one relaxed atomic
 * load — and fold with relaxed atomic adds, so the disabled path is
 * a branch and the enabled path never takes a lock.
 *
 * Determinism contract: registered producers count *semantic* events
 * (calls, collectives, buckets), never scheduling accidents, so a
 * snapshot of the same workload is identical at any OPTIMUS_THREADS.
 * Snapshots export with sorted keys and integer values only.
 * Registration returns stable references: resetValues() zeroes
 * every metric but never removes one, so call sites may cache the
 * reference in a function-local static.
 */

#ifndef OPTIMUS_OBS_METRICS_HH
#define OPTIMUS_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/stats.hh"

namespace optimus
{
namespace obs
{

extern std::atomic<bool> g_metricsEnabled;

/** True while metrics collection is on (relaxed; hot-path gate). */
inline bool
metricsEnabled()
{
    return g_metricsEnabled.load(std::memory_order_relaxed);
}

/** Turn metrics collection on or off. */
void enableMetrics(bool on);

/** Monotonically increasing integer metric. */
class Counter
{
  public:
    void add(int64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }
    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/** Last-write-wins integer metric (e.g. a configured size). */
class Gauge
{
  public:
    void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/** Mutex-guarded Log2Histogram; observe() is off the hottest paths
 * (one call per comm event, not per element). */
class MetricHistogram
{
  public:
    void observe(int64_t v)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        histogram_.add(v);
    }

    Log2Histogram snapshot() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return histogram_;
    }

    void reset()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        histogram_.reset();
    }

  private:
    mutable std::mutex mutex_;
    Log2Histogram histogram_;
};

class MetricsRegistry
{
  public:
    /** The process-wide registry. */
    static MetricsRegistry &instance();

    /** Find-or-create by name; references stay valid forever. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    MetricHistogram &histogram(const std::string &name);

    /** All counter and gauge values by name (sorted by std::map). */
    std::map<std::string, int64_t> counterSnapshot() const;

    /**
     * Deterministic JSON export: sorted keys, integer values.
     * Histograms render as {"count", "min", "max", "p50", "p99",
     * "buckets": {"<upper-bound>": count, ...}} with zero buckets
     * omitted.
     */
    std::string snapshotJson() const;

    /** Zero every registered metric; never removes registrations. */
    void resetValues();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<MetricHistogram>>
        histograms_;
};

} // namespace obs
} // namespace optimus

#endif // OPTIMUS_OBS_METRICS_HH
