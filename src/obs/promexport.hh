/**
 * @file
 * Prometheus-text-format exporter over the obs registries.
 *
 * renderPrometheusText() serializes the metrics registry (counters,
 * gauges, log2 histograms), the ring registry, and the alert log
 * into Prometheus exposition format (text/plain; version=0.0.4):
 * metric names are the registry names with '.' mapped to '_' under
 * an `optimus_` prefix, rings export their windowed rollups as a
 * labeled `optimus_ring` gauge family, and each ring additionally
 * emits a `# ring <name> <firstIndex> <v0> <v1> ...` comment line —
 * invisible to scrapers, but enough for `obstop` to reconstruct
 * the raw series from either a live scrape or a metrics.prom dump.
 *
 * The optional HTTP listener is a single background thread serving
 * the rendered text to any GET; it exists for scrape/CI/obstop
 * convenience, not throughput. While it blocks in accept() it
 * allocates nothing, so an enabled-but-unscraped exporter keeps
 * the alloc_gate contract.
 */

#ifndef OPTIMUS_OBS_PROMEXPORT_HH
#define OPTIMUS_OBS_PROMEXPORT_HH

#include <cstdint>
#include <string>

namespace optimus
{
namespace obs
{

/** Render every registry into Prometheus exposition text. */
std::string renderPrometheusText();

/** Write renderPrometheusText() to @p path (atomically via a
 *  temp-file rename). @return false on I/O failure. */
bool writeMetricsProm(const std::string &path);

/**
 * Arrange for writeMetricsProm(@p path) to run at process exit and
 * on SIGINT/SIGTERM. The signal handler itself only does an
 * async-signal-safe hand-off (a self-pipe write); a watcher thread
 * performs the dump from normal thread context, restores the
 * default disposition, and re-raises, so the process still exits
 * with the conventional signal status.
 */
void installMetricsDump(const std::string &path);

/**
 * Start the HTTP listener on 127.0.0.1:@p port (0 picks an
 * ephemeral port; query it with metricsServerPort()). Idempotent
 * while running. @return false when the socket setup fails.
 */
bool startMetricsServer(int port);

/** Bound listener port, or -1 when the server is not running. */
int metricsServerPort();

/** Stop the listener thread and close the socket. Safe to call
 *  when the server never started. */
void stopMetricsServer();

/** Requests served since the listener started. */
int64_t metricsScrapeCount();

/**
 * Resolve the exporter env knobs once per process:
 * OPTIMUS_METRICS_PORT starts the listener on that port, and
 * OPTIMUS_METRICS_DUMP installs an at-exit/on-signal dump to the
 * given path. Idempotent; called from the trainer and serve-engine
 * constructors.
 */
void maybeStartMetricsServerFromEnv();

} // namespace obs
} // namespace optimus

#endif // OPTIMUS_OBS_PROMEXPORT_HH
