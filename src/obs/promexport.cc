#include "obs/promexport.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/probes.hh"
#include "obs/rings.hh"

namespace optimus
{
namespace obs
{

namespace
{

/** Registry name -> Prometheus metric name ('.' and other
 *  non-identifier characters become '_'; optimus_ prefix). */
std::string
promName(const std::string &name)
{
    std::string out = "optimus_";
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' ||
                        c == ':';
        out += ok ? c : '_';
    }
    return out;
}

void
appendLine(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendLine(std::string &out, const char *fmt, ...)
{
    char buffer[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buffer, sizeof(buffer), fmt, args);
    va_end(args);
    out += buffer;
}

void
renderCountersAndGauges(std::string &out)
{
    const MetricsRegistry &registry = MetricsRegistry::instance();
    for (const auto &[name, value] : registry.counterSnapshot()) {
        const std::string metric = promName(name);
        // Counters and gauges share the snapshot; exporting both as
        // gauge is always well-formed (a counter is a monotone
        // gauge to a scraper that never resets).
        appendLine(out, "# TYPE %s gauge\n", metric.c_str());
        appendLine(out, "%s %lld\n", metric.c_str(),
                   static_cast<long long>(value));
    }
}

void
renderRings(std::string &out)
{
    RingRegistry &registry = RingRegistry::instance();
    const std::vector<std::string> names = registry.names();
    if (names.empty())
        return;
    appendLine(out, "# TYPE optimus_ring gauge\n");
    std::vector<double> window;
    for (const std::string &name : names) {
        const Ring *ring = registry.find(name);
        if (!ring)
            continue;
        const RingRollup roll = ring->rollup();
        struct
        {
            const char *stat;
            double value;
        } stats[] = {
            {"last", roll.last},   {"min", roll.min},
            {"max", roll.max},     {"mean", roll.mean},
            {"p99", roll.p99},
            {"count", static_cast<double>(roll.count)},
            {"total", static_cast<double>(roll.total)},
        };
        for (const auto &s : stats) {
            appendLine(out,
                       "optimus_ring{ring=\"%s\",stat=\"%s\"} "
                       "%.10g\n",
                       name.c_str(), s.stat, s.value);
        }
        // Raw series as an exposition comment: scrapers skip '#'
        // lines, obstop parses them for sparklines. Same format in
        // a live scrape and a metrics.prom dump.
        appendLine(out, "# ring %s %lld", name.c_str(),
                   static_cast<long long>(ring->firstIndex()));
        ring->snapshot(window);
        for (const double v : window)
            appendLine(out, " %.10g", v);
        out += "\n";
    }
}

void
renderAlerts(std::string &out)
{
    AlertLog &log = AlertLog::instance();
    appendLine(out, "# TYPE optimus_alerts_total counter\n");
    appendLine(out, "optimus_alerts_total %lld\n",
               static_cast<long long>(log.raisedTotal()));
    for (const Alert &alert : log.snapshot()) {
        appendLine(out,
                   "# alert step=%lld channel=%s kind=%s "
                   "value=%.10g threshold=%.10g\n",
                   static_cast<long long>(alert.step),
                   alert.channel, alertKindName(alert.kind),
                   alert.value, alert.threshold);
    }
}

} // namespace

// optlint:coldfn — reporting path (scrape / dump), never the step
// path; free-form string building is fine here.
std::string
renderPrometheusText()
{
    std::string out;
    out.reserve(16 * 1024);
    renderCountersAndGauges(out);
    renderRings(out);
    renderAlerts(out);
    return out;
}

bool
writeMetricsProm(const std::string &path)
{
    const std::string text = renderPrometheusText();
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f)
        return false;
    const size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = written == text.size() && std::fclose(f) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

namespace
{

std::mutex g_dumpMutex;
std::string g_dumpPath;

void
dumpAtExit()
{
    std::lock_guard<std::mutex> lock(g_dumpMutex);
    if (!g_dumpPath.empty())
        writeMetricsProm(g_dumpPath);
}

/** Self-pipe to the dump watcher thread. The handler must not
 *  render (registry mutexes, malloc — none async-signal-safe; a
 *  signal landing inside malloc would self-deadlock), so it only
 *  write()s the signal number and returns; the watcher dumps from
 *  a normal thread context and then re-raises with the default
 *  disposition. */
int g_sigPipe[2] = {-1, -1};

void
dumpOnSignal(int sig)
{
    // async-signal-safe hand-off; termination happens when the
    // watcher re-raises after writing the dump.
    (void)!::write(g_sigPipe[1], &sig, sizeof(sig));
}

void
dumpWatcher()
{
    for (;;) {
        int sig = 0;
        const ssize_t n =
            ::read(g_sigPipe[0], &sig, sizeof(sig));
        if (n != static_cast<ssize_t>(sizeof(sig)))
            return;
        dumpAtExit();
        std::signal(sig, SIG_DFL);
        std::raise(sig);
    }
}

} // namespace

void
installMetricsDump(const std::string &path)
{
    std::lock_guard<std::mutex> lock(g_dumpMutex);
    const bool first = g_dumpPath.empty();
    g_dumpPath = path;
    if (!first)
        return;
    // Touch every registry the dump renders BEFORE registering the
    // atexit handler: __cxa_atexit runs in reverse registration
    // order, so a registry first constructed later (e.g. the ring
    // registry on the first telemetry sample) would otherwise be
    // destroyed before dumpAtExit reads it.
    MetricsRegistry::instance();
    RingRegistry::instance();
    AlertLog::instance();
    std::atexit(dumpAtExit);
    if (::pipe(g_sigPipe) == 0) {
        std::thread(dumpWatcher).detach();
        std::signal(SIGINT, dumpOnSignal);
        std::signal(SIGTERM, dumpOnSignal);
    }
}

namespace
{

std::mutex g_serverMutex;
std::thread g_serverThread;
std::atomic<int> g_listenFd{-1};
std::atomic<int> g_boundPort{-1};
std::atomic<int64_t> g_scrapes{0};

void
serveLoop(int listen_fd)
{
    for (;;) {
        const int client =
            ::accept(listen_fd, nullptr, nullptr);
        if (client < 0) {
            // The socket was closed by stopMetricsServer (or an
            // unrecoverable error hit); either way the thread is
            // done.
            return;
        }
        // Drain whatever request line arrived; the response is the
        // same for every path, so parsing would be theater.
        char request[1024];
        (void)::recv(client, request, sizeof(request), 0);

        const std::string body = renderPrometheusText();
        char header[160];
        const int header_len = std::snprintf(
            header, sizeof(header),
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4\r\n"
            "Content-Length: %zu\r\n"
            "Connection: close\r\n\r\n",
            body.size());
        (void)::send(client, header,
                     static_cast<size_t>(header_len), 0);
        size_t sent = 0;
        while (sent < body.size()) {
            const ssize_t n =
                ::send(client, body.data() + sent,
                       body.size() - sent, 0);
            if (n <= 0)
                break;
            sent += static_cast<size_t>(n);
        }
        ::close(client);
        g_scrapes.fetch_add(1, std::memory_order_relaxed);
    }
}

} // namespace

// optlint:coldfn — listener setup, once per process.
bool
startMetricsServer(int port)
{
    std::lock_guard<std::mutex> lock(g_serverMutex);
    if (g_listenFd.load(std::memory_order_relaxed) >= 0)
        return true;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
        ::close(fd);
        return false;
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        ::close(fd);
        return false;
    }

    g_listenFd.store(fd, std::memory_order_relaxed);
    g_boundPort.store(ntohs(addr.sin_port),
                      std::memory_order_relaxed);
    g_serverThread = std::thread(serveLoop, fd);
    // The listener thread must be joined before the global
    // std::thread object is destroyed at process exit, or the
    // destructor terminates; stopMetricsServer is idempotent, so
    // an explicit earlier stop is still fine.
    static bool exit_hook = false;
    if (!exit_hook) {
        exit_hook = true;
        std::atexit(stopMetricsServer);
    }
    return true;
}

int
metricsServerPort()
{
    return g_boundPort.load(std::memory_order_relaxed);
}

void
stopMetricsServer()
{
    std::lock_guard<std::mutex> lock(g_serverMutex);
    const int fd = g_listenFd.exchange(-1,
                                       std::memory_order_relaxed);
    if (fd < 0)
        return;
    // shutdown() wakes the blocked accept() so the thread observes
    // the close and exits.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    if (g_serverThread.joinable())
        g_serverThread.join();
    g_boundPort.store(-1, std::memory_order_relaxed);
}

int64_t
metricsScrapeCount()
{
    return g_scrapes.load(std::memory_order_relaxed);
}

// optlint:coldfn — once-per-process env resolution.
void
maybeStartMetricsServerFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        if (const char *port = std::getenv("OPTIMUS_METRICS_PORT")) {
            if (*port)
                startMetricsServer(static_cast<int>(
                    std::strtol(port, nullptr, 10)));
        }
        if (const char *path = std::getenv("OPTIMUS_METRICS_DUMP"))
            installMetricsDump(path);
    });
}

} // namespace obs
} // namespace optimus
