/**
 * @file
 * Time-series ring buffers: fixed-capacity per-metric sample
 * histories pushed at step / serve-iteration boundaries.
 *
 * The metrics registry answers "how many, in total"; the rings
 * answer "what did the last N steps look like" — loss, step
 * seconds, wire ratio, residual norms — without unbounded growth.
 * A Ring preallocates its value array at registration, so push()
 * is O(1) and allocation-free; producers register once through
 * RingRegistry::ring() (a coldfn, mirrors MetricsRegistry) and
 * cache the returned reference in a function-local static, so the
 * steady state touches no lock but the ring's own (uncontended:
 * one push per step, plus an occasional exporter read).
 *
 * Determinism contract: rings are observation only — value rings
 * (loss, ratios, norms) hold the same samples at any
 * OPTIMUS_THREADS, timing rings hold wall-clock and are exempt
 * from run-to-run comparison, and nothing reads a ring back into
 * the training or serving computation.
 */

#ifndef OPTIMUS_OBS_RINGS_HH
#define OPTIMUS_OBS_RINGS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace optimus
{
namespace obs
{

/** Windowed summary of a ring's retained samples. */
struct RingRollup
{
    /** Samples retained (<= capacity). */
    int64_t count = 0;
    /** Samples pushed over the ring's lifetime. */
    int64_t total = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    /** Nearest-rank 99th percentile of the retained window. */
    double p99 = 0.0;
    /** Most recent sample. */
    double last = 0.0;
};

/**
 * Fixed-capacity sample history. Thread-safe: push and reads take
 * the ring's mutex (once per step, never inside a kernel).
 */
class Ring
{
  public:
    explicit Ring(int64_t capacity);

    /** Append one sample, evicting the oldest at capacity. O(1),
     *  allocation-free. */
    void push(double v);

    int64_t capacity() const;
    /** Retained sample count (<= capacity). */
    int64_t size() const;
    /** Lifetime push count. */
    int64_t totalPushed() const;
    /** Global index of the oldest retained sample (total - size). */
    int64_t firstIndex() const;

    /** Retained sample @p i, oldest first (0 <= i < size()). */
    double at(int64_t i) const;

    /** Min/max/mean/p99 over the retained window. The p99 sorts a
     *  copy — reporting path only, not the step path. */
    RingRollup rollup() const;

    /** Copy the retained window, oldest first, into @p out. */
    void snapshot(std::vector<double> &out) const;

    /** Drop every sample (capacity is kept). */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::vector<double> values_;
    int64_t pushed_ = 0;
};

/**
 * Process-wide named-ring registry; mirrors MetricsRegistry.
 * References stay valid forever; resetValues() clears samples but
 * never removes a registration.
 */
class RingRegistry
{
  public:
    static constexpr int64_t kDefaultCapacity = 256;

    static RingRegistry &instance();

    /**
     * Find-or-create by name (coldfn: register during warmup and
     * cache the reference). @p capacity applies only at creation.
     */
    Ring &ring(const std::string &name,
               int64_t capacity = kDefaultCapacity);

    /** Registered names, sorted (std::map order). */
    std::vector<std::string> names() const;

    /** The named ring, or nullptr when never registered. */
    const Ring *find(const std::string &name) const;

    /** Clear every ring's samples; registrations persist. */
    void resetValues();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Ring>> rings_;
};

} // namespace obs
} // namespace optimus

#endif // OPTIMUS_OBS_RINGS_HH
