#include "obs/probes.hh"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/metrics.hh"

namespace optimus
{
namespace obs
{

std::atomic<bool> g_probesEnabled{false};
std::atomic<bool> g_probeActive{false};

namespace
{

/** Sampling stride for the expensive norm passes; armed per step
 *  by probeStepBegin(). Written from cold paths only. */
std::atomic<int> g_probeInterval{16};

} // namespace

void
enableProbes(bool on)
{
    g_probesEnabled.store(on, std::memory_order_relaxed);
    if (!on)
        g_probeActive.store(false, std::memory_order_relaxed);
}

int
probeInterval()
{
    return g_probeInterval.load(std::memory_order_relaxed);
}

void
setProbeInterval(int steps)
{
    g_probeInterval.store(steps < 1 ? 1 : steps,
                          std::memory_order_relaxed);
}

void
probeStepBegin(int64_t step)
{
    const int64_t stride = probeInterval();
    g_probeActive.store(probesEnabled() && step % stride == 0,
                        std::memory_order_relaxed);
}

namespace
{

double
envDouble(const char *name, double fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(value, &end);
    return end == value ? fallback : parsed;
}

} // namespace

ProbeThresholds &
probeThresholds()
{
    static ProbeThresholds thresholds;
    return thresholds;
}

// optlint:coldfn — once-per-process env resolution.
void
initTelemetryFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *telemetry = std::getenv("OPTIMUS_TELEMETRY");
        if (telemetry && telemetry[0] == '1') {
            enableMetrics(true);
            enableProbes(true);
        }
        const char *probes = std::getenv("OPTIMUS_PROBES");
        if (probes && probes[0] == '1')
            enableProbes(true);
        ProbeThresholds &t = probeThresholds();
        t.relErrMax =
            envDouble("OPTIMUS_PROBE_RELERR_MAX", t.relErrMax);
        t.gradNormMax =
            envDouble("OPTIMUS_PROBE_GRADNORM_MAX", t.gradNormMax);
        t.lossFactor =
            envDouble("OPTIMUS_PROBE_LOSS_FACTOR", t.lossFactor);
        t.alertIntervalSteps = static_cast<int64_t>(envDouble(
            "OPTIMUS_ALERT_INTERVAL",
            static_cast<double>(t.alertIntervalSteps)));
        setProbeInterval(static_cast<int>(
            envDouble("OPTIMUS_PROBE_INTERVAL",
                      static_cast<double>(probeInterval()))));
        // First-touch the alert sink and its counter here, while
        // allocation is still legal (cold path); the raise() path
        // then resolves the registered slot with a map find.
        AlertLog::instance();
        MetricsRegistry::instance().counter("obs.alerts");
    });
}

// optlint:hot — probe accumulation on the step path.
double
l2NormSq(const float *a, size_t n)
{
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i)
        sum += static_cast<double>(a[i]) * static_cast<double>(a[i]);
    return sum;
}

// optlint:hot — probe accumulation on the step path.
double
l2DiffNormSq(const float *a, const float *b, size_t n)
{
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double d =
            static_cast<double>(a[i]) - static_cast<double>(b[i]);
        sum += d * d;
    }
    return sum;
}

// The explicit this-> marks these folds as per-object member
// writes: merge() runs on caller-owned snapshots, never on state
// shared across parallel bodies.
void
CompressionHealth::merge(const CompressionHealth &other)
{
    this->sends += other.sends;
    this->compressedSends += other.compressedSends;
    // Event-derived view-merge, as ReduceVolume::operator+= — the
    // sources are transport events, never hand-counted bytes.
    this->exactBytes += other.exactBytes; // optlint:allow(COM01)
    this->wireBytes += other.wireBytes;   // optlint:allow(COM01)
    this->inputNormSq += other.inputNormSq;
    this->errNormSq += other.errNormSq;
    this->residualNormSq += other.residualNormSq;
    this->cosineSum += other.cosineSum;
    this->cosineCount += other.cosineCount;
}

CompressionHealth
CompressionHealth::delta(const CompressionHealth &prev) const
{
    CompressionHealth d;
    d.sends = sends - prev.sends;
    d.compressedSends = compressedSends - prev.compressedSends;
    // Event-derived view difference (cumulative snapshots of the
    // same transport-event folds).
    d.exactBytes = exactBytes - prev.exactBytes;
    d.wireBytes = wireBytes - prev.wireBytes;
    d.inputNormSq = inputNormSq - prev.inputNormSq;
    d.errNormSq = errNormSq - prev.errNormSq;
    d.residualNormSq = residualNormSq;
    d.cosineSum = cosineSum - prev.cosineSum;
    d.cosineCount = cosineCount - prev.cosineCount;
    return d;
}

double
CompressionHealth::wireRatio() const
{
    if (exactBytes <= 0)
        return 1.0;
    return static_cast<double>(wireBytes) /
           static_cast<double>(exactBytes);
}

double
CompressionHealth::relError() const
{
    if (inputNormSq <= 0.0)
        return 0.0;
    return std::sqrt(errNormSq / inputNormSq);
}

double
CompressionHealth::residualNorm() const
{
    return std::sqrt(residualNormSq);
}

double
CompressionHealth::meanCosine() const
{
    if (cosineCount <= 0)
        return 1.0;
    return cosineSum / static_cast<double>(cosineCount);
}

const char *
alertKindName(AlertKind kind)
{
    switch (kind) {
      case AlertKind::RelError:
        return "relError";
      case AlertKind::GradNorm:
        return "gradNorm";
      case AlertKind::LossDrift:
        return "lossDrift";
    }
    return "?";
}

AlertLog::AlertLog() = default;

AlertLog &
AlertLog::instance()
{
    static AlertLog log;
    return log;
}

// optlint:hot — threshold crossings fire on the step path; the
// ring and limiter are preallocated, so raising never allocates.
bool
AlertLog::raise(const char *channel, AlertKind kind, int64_t step,
                double value, double threshold)
{
    std::lock_guard<std::mutex> lock(mutex_);

    // Rate limit per (channel, kind): linear scan of a fixed table
    // (at most a handful of live keys; once per step, not per
    // element). A full table degrades to unlimited raising rather
    // than dropping alerts.
    LimitSlot *slot = nullptr;
    for (auto &candidate : limiter_) {
        if (!candidate.used) {
            if (!slot)
                slot = &candidate;
            continue;
        }
        if (candidate.kind == kind &&
            std::strncmp(candidate.channel, channel,
                         sizeof(candidate.channel)) == 0) {
            slot = &candidate;
            break;
        }
    }
    const int64_t interval = probeThresholds().alertIntervalSteps;
    if (slot && slot->used &&
        step - slot->lastStep < interval)
        return false;
    if (slot) {
        std::strncpy(slot->channel, channel,
                     sizeof(slot->channel) - 1);
        slot->channel[sizeof(slot->channel) - 1] = '\0';
        slot->kind = kind;
        slot->lastStep = step;
        slot->used = true;
    }

    Alert &alert = ring_[static_cast<size_t>(raised_ % kCapacity)];
    alert.step = step;
    alert.kind = kind;
    alert.value = value;
    alert.threshold = threshold;
    std::strncpy(alert.channel, channel, sizeof(alert.channel) - 1);
    alert.channel[sizeof(alert.channel) - 1] = '\0';
    ++raised_;

    if (metricsEnabled()) {
        static Counter &alerts =
            MetricsRegistry::instance().counter("obs.alerts");
        alerts.add(1);
    }
    return true;
}

int64_t
AlertLog::raisedTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return raised_;
}

std::vector<Alert>
AlertLog::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t retained = raised_ < kCapacity ? raised_
                                                 : kCapacity;
    std::vector<Alert> out;
    out.reserve(static_cast<size_t>(retained));
    for (int64_t i = 0; i < retained; ++i)
        out.push_back(ring_[static_cast<size_t>(
            (raised_ - retained + i) % kCapacity)]);
    return out;
}

void
AlertLog::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    raised_ = 0;
    for (auto &slot : limiter_)
        slot.used = false;
}

} // namespace obs
} // namespace optimus
