#include "obs/tracesum.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace optimus
{
namespace obs
{

namespace
{

/** Extract the string value of "key":"..." from one event line. */
bool
jsonString(const std::string &line, const std::string &key,
           std::string &out)
{
    const std::string marker = "\"" + key + "\":\"";
    const size_t at = line.find(marker);
    if (at == std::string::npos)
        return false;
    const size_t begin = at + marker.size();
    const size_t end = line.find('"', begin);
    if (end == std::string::npos)
        return false;
    out = line.substr(begin, end - begin);
    return true;
}

/** Extract the numeric value of "key":N from one event line. */
bool
jsonNumber(const std::string &line, const std::string &key,
           double &out)
{
    const std::string marker = "\"" + key + "\":";
    const size_t at = line.find(marker);
    if (at == std::string::npos)
        return false;
    out = std::strtod(line.c_str() + at + marker.size(), nullptr);
    return true;
}

struct StepAgg
{
    double forwardBackward = 0.0;
    double dpReduce = 0.0;
    double embSync = 0.0;
    double optimizer = 0.0;
    double total = 0.0;
    double busy = 0.0;
};

/** A serve.prefill span held back for wave assignment (its id is
 *  the sequence, not the wave; see TraceSummary). */
struct PendingPrefill
{
    double beginUs = 0.0;
    double durUs = 0.0;
};

bool
isCommCategory(const std::string &cat)
{
    return cat == "interStage" || cat == "dpReduce" ||
           cat == "embSync" || cat == "other";
}

} // namespace

TraceSummary
summarizeTrace(const std::string &json_text)
{
    TraceSummary summary;
    std::map<long long, StepAgg> step_aggs;
    std::map<long long, ServeWave> waves;
    // Wave intervals [begin, end) in trace microseconds, for
    // assigning prefill spans by time containment.
    std::map<long long, std::pair<double, double>> wave_spans;
    std::vector<PendingPrefill> prefills;

    std::istringstream stream(json_text);
    std::string line;
    while (std::getline(stream, line)) {
        if (line.find("\"ph\":\"X\"") == std::string::npos)
            continue;
        std::string cat, name;
        double dur_us = 0.0;
        if (!jsonString(line, "cat", cat) ||
            !jsonString(line, "name", name) ||
            !jsonNumber(line, "dur", dur_us)) {
            continue;
        }
        // Split the "name#id" label written for id-carrying spans.
        long long id = -1;
        const size_t hash = name.find('#');
        if (hash != std::string::npos) {
            id = std::strtoll(name.c_str() + hash + 1, nullptr, 10);
            name.resize(hash);
        }
        const double dur_s = dur_us * 1e-6;
        ++summary.spans;
        summary.categorySeconds[cat] += dur_s;
        ++summary.categorySpans[cat];

        if (cat == "phase" && id >= 0) {
            StepAgg &agg = step_aggs[id];
            if (name == "forwardBackward")
                agg.forwardBackward += dur_s;
            else if (name == "dpReduce")
                agg.dpReduce += dur_s;
            else if (name == "embSync")
                agg.embSync += dur_s;
            else if (name == "optimizer")
                agg.optimizer += dur_s;
            else if (name == "step")
                agg.total += dur_s;
        } else if (cat == "reduce") {
            double iter = -1.0;
            if (jsonNumber(line, "iter", iter) && iter >= 0.0)
                step_aggs[static_cast<long long>(iter)].busy += dur_s;
        } else if (cat == "serve" && id >= 0) {
            double ts_us = 0.0;
            jsonNumber(line, "ts", ts_us);
            double rows = 0.0;
            if (name == "serve.step") {
                ServeWave &wave = waves[id];
                wave.id = id;
                wave.stepSeconds += dur_s;
                wave_spans[id] = {ts_us, ts_us + dur_us};
            } else if (name == "serve.decode") {
                ServeWave &wave = waves[id];
                wave.id = id;
                wave.decodeSeconds += dur_s;
                if (jsonNumber(line, "rows", rows))
                    wave.decodeRows +=
                        static_cast<int64_t>(rows);
            } else if (name == "serve.prefill") {
                // id is the sequence id — hold for containment.
                prefills.push_back({ts_us, dur_us});
            }
        } else if (isCommCategory(cat)) {
            CommRollup &roll = summary.commByVerb[cat + "/" + name];
            ++roll.spans;
            roll.seconds += dur_s;
            double bytes = 0.0;
            // Event-derived folds: the span args being summed were
            // written from transport CommEvents at record time.
            if (jsonNumber(line, "exactBytes", bytes))
                roll.exactBytes += bytes; // optlint:allow(COM01)
            if (jsonNumber(line, "wireBytes", bytes))
                roll.wireBytes += bytes; // optlint:allow(COM01)
        }
    }

    // Assign each prefill to the wave whose serve.step interval
    // contains its start (the prefill runs inside the step span).
    for (const PendingPrefill &prefill : prefills) {
        for (const auto &[wave_id, interval] : wave_spans) {
            if (prefill.beginUs >= interval.first &&
                prefill.beginUs < interval.second) {
                ServeWave &wave = waves[wave_id];
                ++wave.prefills;
                wave.prefillSeconds += prefill.durUs * 1e-6;
                break;
            }
        }
    }
    summary.serveWaves = static_cast<int64_t>(waves.size());
    for (const auto &[wave_id, wave] : waves) {
        summary.serveStep += wave.stepSeconds;
        summary.servePrefill += wave.prefillSeconds;
        summary.serveDecode += wave.decodeSeconds;
        summary.waves.push_back(wave);
    }

    summary.steps = static_cast<int64_t>(step_aggs.size());
    for (const auto &[id, agg] : step_aggs) {
        summary.forwardBackward += agg.forwardBackward;
        summary.dpReduce += agg.dpReduce;
        summary.embSync += agg.embSync;
        summary.optimizer += agg.optimizer;
        summary.total += agg.total;
        summary.dpReduceBusy += agg.busy;
        const double hidden = agg.busy - agg.dpReduce;
        if (hidden > 0.0)
            summary.overlapHidden += hidden;
    }
    const double named = summary.forwardBackward + summary.dpReduce +
                         summary.embSync + summary.optimizer;
    summary.other = summary.total > named ? summary.total - named : 0.0;
    summary.valid = summary.spans > 0;
    return summary;
}

TraceSummary
summarizeTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        TraceSummary summary;
        return summary;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return summarizeTrace(text.str());
}

namespace
{

void
appendRow(std::string &out, const char *label, double seconds,
          double total)
{
    char buffer[128];
    const double share =
        total > 0.0 ? 100.0 * seconds / total : 0.0;
    std::snprintf(buffer, sizeof(buffer), "  %-16s %12.6f %9.2f%%\n",
                  label, seconds, share);
    out += buffer;
}

} // namespace

std::string
renderTraceSummary(const TraceSummary &summary)
{
    std::string out;
    char buffer[192];
    std::snprintf(buffer, sizeof(buffer),
                  "trace summary: %lld spans, %lld steps, "
                  "%lld serve waves\n",
                  static_cast<long long>(summary.spans),
                  static_cast<long long>(summary.steps),
                  static_cast<long long>(summary.serveWaves));
    out += buffer;
    if (summary.steps > 0 || summary.serveWaves == 0) {
        out += "  category              seconds   of step\n";
        appendRow(out, "compute", summary.forwardBackward,
                  summary.total);
        appendRow(out, "dpReduce", summary.dpReduce, summary.total);
        appendRow(out, "dpReduceBusy", summary.dpReduceBusy,
                  summary.total);
        appendRow(out, "overlapHidden", summary.overlapHidden,
                  summary.total);
        appendRow(out, "embSync", summary.embSync, summary.total);
        appendRow(out, "optimizer", summary.optimizer,
                  summary.total);
        appendRow(out, "other", summary.other, summary.total);
        appendRow(out, "total(step)", summary.total, summary.total);
    }
    if (summary.serveWaves > 0) {
        out += "  serve phase           seconds   of wave\n";
        appendRow(out, "prefill", summary.servePrefill,
                  summary.serveStep);
        appendRow(out, "decode", summary.serveDecode,
                  summary.serveStep);
        const double serve_other =
            summary.serveStep >
                    summary.servePrefill + summary.serveDecode
                ? summary.serveStep - summary.servePrefill -
                      summary.serveDecode
                : 0.0;
        appendRow(out, "scheduler", serve_other, summary.serveStep);
        appendRow(out, "total(wave)", summary.serveStep,
                  summary.serveStep);
        out += "  per-wave phase table:\n";
        out += "    wave   step(s)    prefill(s)  decode(s)"
               "  prefills  rows\n";
        const size_t shown =
            summary.waves.size() > 24 ? 24 : summary.waves.size();
        for (size_t w = 0; w < shown; ++w) {
            const ServeWave &wave = summary.waves[w];
            std::snprintf(buffer, sizeof(buffer),
                          "    %4lld %9.6f %11.6f %10.6f %9lld "
                          "%5lld\n",
                          static_cast<long long>(wave.id),
                          wave.stepSeconds, wave.prefillSeconds,
                          wave.decodeSeconds,
                          static_cast<long long>(wave.prefills),
                          static_cast<long long>(wave.decodeRows));
            out += buffer;
        }
        if (shown < summary.waves.size()) {
            std::snprintf(buffer, sizeof(buffer),
                          "    ... %lld more wave(s)\n",
                          static_cast<long long>(
                              summary.waves.size() - shown));
            out += buffer;
        }
    }
    if (!summary.commByVerb.empty()) {
        out += "  comm by phase/verb:\n";
        out += "    phase/verb                    spans     "
               "seconds   exactMB     wireMB\n";
        for (const auto &[key, roll] : summary.commByVerb) {
            std::snprintf(
                buffer, sizeof(buffer),
                "    %-28s %6lld %11.6f %9.3f %10.3f\n", key.c_str(),
                static_cast<long long>(roll.spans), roll.seconds,
                roll.exactBytes / (1024.0 * 1024.0),
                roll.wireBytes / (1024.0 * 1024.0));
            out += buffer;
        }
    }
    out += "  spans by category:\n";
    for (const auto &[cat, seconds] : summary.categorySeconds) {
        std::snprintf(buffer, sizeof(buffer),
                      "    %-18s %8lld spans %12.6f s\n", cat.c_str(),
                      static_cast<long long>(
                          summary.categorySpans.at(cat)),
                      seconds);
        out += buffer;
    }
    return out;
}

} // namespace obs
} // namespace optimus
