/**
 * @file
 * Perfetto-compatible span tracer with per-thread event buffers.
 *
 * Design (DESIGN.md §4e):
 *  - One global atomic enable flag. Every emit helper starts with a
 *    relaxed load of it, so a disabled build path costs one branch
 *    and ScopedSpan never reads the clock.
 *  - Each thread appends to its own ThreadBuffer (registered once
 *    under a mutex, then lock-free): tracing never serialises the
 *    pool. Buffers are only read by startTracing / stopTracing /
 *    traceEvents / writeTrace, which the caller must invoke while
 *    the pool is quiesced (no job or task in flight); the pool's
 *    own join/wait synchronisation then orders all prior appends
 *    before the read.
 *  - Spans take explicit begin/end timestamps from obs::nowNs() so
 *    callers can feed the *same* clock reads into both a trace span
 *    and a wall-time accumulator (StepPhaseTimes) — summed span
 *    durations then reconcile with the timers to rounding error.
 *  - Track ids: 0 is the thread that called startTracing() ("main"),
 *    1..N-1 are pool workers (set via setThreadTrack from
 *    workerLoop), other threads self-register from 1000 up.
 *
 * All name/category strings passed to the emit helpers must be
 * string literals (or otherwise outlive the trace): events store the
 * pointers, not copies.
 */

#ifndef OPTIMUS_OBS_TRACE_HH
#define OPTIMUS_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.hh"

namespace optimus
{
namespace obs
{

extern std::atomic<bool> g_traceEnabled;

/** True while a trace is being recorded (relaxed; hot-path gate). */
inline bool
tracingEnabled()
{
    return g_traceEnabled.load(std::memory_order_relaxed);
}

/**
 * One recorded event. phase follows the Chrome trace-event codes:
 * 'X' complete span, 'i' instant, 'C' counter (value in argValue0).
 */
struct TraceEvent
{
    char phase = 'X';
    const char *category = nullptr;
    const char *name = nullptr;
    int track = 0;
    int64_t beginNs = 0;
    int64_t endNs = 0;
    int64_t id = -1; // appended to the name as "name#id" when >= 0
    const char *argName0 = nullptr;
    int64_t argValue0 = 0;
    const char *argName1 = nullptr;
    int64_t argValue1 = 0;
};

/**
 * Clear all buffers, stamp the trace epoch, register the calling
 * thread as track 0 ("main"), and raise the enable flag. Call only
 * while the pool is quiesced.
 */
void startTracing();

/** Lower the enable flag; buffered events stay readable. */
void stopTracing();

/** Drop all buffered events (pool must be quiesced). */
void clearTrace();

/**
 * Name the calling thread's track. The runtime pool calls this from
 * workerLoop so worker w records on track w; other threads that
 * never call it are assigned tracks from 1000 up on first emit.
 */
void setThreadTrack(int track, const char *name);

/** nowNs() at the last startTracing(); trace timestamps are
 * exported relative to it. */
int64_t traceEpochNs();

/** Emit a complete span with explicit clock readings and up to two
 * integer args. No-op while tracing is disabled. */
void emitSpan(const char *category, const char *name, int64_t begin_ns,
              int64_t end_ns, int64_t id = -1,
              const char *arg_name0 = nullptr, int64_t arg_value0 = 0,
              const char *arg_name1 = nullptr, int64_t arg_value1 = 0);

/** Emit an instant (zero-duration) event at nowNs(). */
void emitInstant(const char *category, const char *name,
                 int64_t id = -1);

/** Emit a counter sample; Perfetto renders one track per name. */
void emitCounter(const char *name, int64_t value);

/** Snapshot every buffered event, ordered by (track, beginNs).
 * Pool must be quiesced. */
std::vector<TraceEvent> traceEvents();

/** Write all buffered events as Chrome trace-event JSON (one event
 * per line inside "traceEvents"). Returns false on I/O failure. */
bool writeTrace(const std::string &path);

/**
 * RAII span: reads the clock in the constructor only when tracing
 * is enabled, and emits on destruction. Cheap enough to leave in
 * hot paths — the disabled cost is one relaxed load and branch.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *category, const char *name, int64_t id = -1,
               const char *arg_name0 = nullptr, int64_t arg_value0 = 0)
        : category_(category), name_(name), id_(id),
          argName0_(arg_name0), argValue0_(arg_value0),
          beginNs_(tracingEnabled() ? nowNs() : 0)
    {}

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan()
    {
        if (beginNs_ != 0) {
            emitSpan(category_, name_, beginNs_, nowNs(), id_,
                     argName0_, argValue0_);
        }
    }

  private:
    const char *category_;
    const char *name_;
    int64_t id_;
    const char *argName0_;
    int64_t argValue0_;
    int64_t beginNs_;
};

} // namespace obs
} // namespace optimus

#endif // OPTIMUS_OBS_TRACE_HH
