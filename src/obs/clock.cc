#include "obs/clock.hh"

#include <chrono>

namespace optimus
{
namespace obs
{

int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace obs
} // namespace optimus
