/**
 * @file
 * The project's single sanctioned wall-clock: a monotonic nanosecond
 * timestamp. Every wall-time read in src/ outside src/obs and
 * src/util flows through nowNs() (enforced by optlint rule OBS01),
 * so phase timers, bucket busy-time, and trace spans all share one
 * time base — which is what lets tools/tracesum reconcile summed
 * span durations against StepPhaseTimes exactly.
 */

#ifndef OPTIMUS_OBS_CLOCK_HH
#define OPTIMUS_OBS_CLOCK_HH

#include <cstdint>

namespace optimus
{
namespace obs
{

/** Monotonic timestamp in nanoseconds (steady, never wall-seeded). */
int64_t nowNs();

/** Seconds between two nowNs() readings. */
inline double
secondsBetween(int64_t begin_ns, int64_t end_ns)
{
    return static_cast<double>(end_ns - begin_ns) * 1e-9;
}

} // namespace obs
} // namespace optimus

#endif // OPTIMUS_OBS_CLOCK_HH
