/**
 * @file
 * Compression-health probes and threshold alerts.
 *
 * Every lossy channel in the stack — PP backward channels, DP
 * PowerSGD buckets, the (exact) embedding sync, and the serving
 * boundary — can accumulate a CompressionHealth record while
 * probesEnabled() is on: wire-vs-exact ratio, relative
 * reconstruction error ‖g−ĝ‖/‖g‖, error-feedback residual norm,
 * and sampled compressed-vs-exact cosine similarity. Byte totals
 * are views over the same transport events CommTrace records, so
 * probe volumes reconcile with the trace exactly (integers, not
 * estimates).
 *
 * Determinism contract: probes are bitwise-neutral observation.
 * They read tensors the channel already produced (fed inputs,
 * reconstructions, residuals), accumulate in double in a fixed
 * per-channel order, and never write back into the computation —
 * a probed run is bitwise identical to an unprobed run at every
 * OPTIMUS_THREADS / OPTIMUS_SIMD.
 *
 * Overhead contract: the norm passes cost extra sweeps over
 * gradient-sized data, so they run on a sampled cadence — every
 * OPTIMUS_PROBE_INTERVAL-th step (default 16, 1 = every step) via
 * probeActive(). Byte and send tallies are O(1) per event and stay
 * on every step, so probe volumes always reconcile with CommTrace.
 *
 * Alerts: threshold crossings (relative error, gradient norm, loss
 * drift) raise rate-limited obs::Alert records into a fixed-
 * capacity AlertLog and bump the obs.alerts counter. Raising
 * allocates nothing, so the alert path is legal inside the
 * alloc_gate window.
 */

#ifndef OPTIMUS_OBS_PROBES_HH
#define OPTIMUS_OBS_PROBES_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace optimus
{
namespace obs
{

extern std::atomic<bool> g_probesEnabled;
extern std::atomic<bool> g_probeActive;

/** True while health probing is on (relaxed; hot-path gate). */
inline bool
probesEnabled()
{
    return g_probesEnabled.load(std::memory_order_relaxed);
}

/** Turn health probing on or off. */
void enableProbes(bool on);

/**
 * True when probes are on AND the current step is a sampled one —
 * the gate the expensive norm passes (‖g‖², ‖g−ĝ‖², cosine) check.
 * The cheap byte/send tallies stay on probesEnabled() so volumes
 * always reconcile with CommTrace exactly.
 */
inline bool
probeActive()
{
    return g_probeActive.load(std::memory_order_relaxed);
}

/** Steps between two sampled steps (OPTIMUS_PROBE_INTERVAL,
 *  default 16; 1 probes every step). */
int probeInterval();

/** Override the sampling interval (tests, tools). Clamped to ≥1. */
void setProbeInterval(int steps);

/**
 * Arm or disarm probeActive() for the step that is about to run:
 * called once per training-step / serve-iteration boundary with the
 * step counter; the step is sampled when step % probeInterval()
 * == 0. Keeping the norm passes on a sampled cadence bounds the
 * telemetry overhead regardless of model size.
 */
void probeStepBegin(int64_t step);

/**
 * Resolve the telemetry env knobs once per process:
 * OPTIMUS_TELEMETRY=1 enables metrics + probes together,
 * OPTIMUS_PROBES=1 enables probes alone, and the threshold knobs
 * (see ProbeThresholds) override the defaults. Idempotent; called
 * from the trainer and serve-engine constructors.
 */
void initTelemetryFromEnv();

/** Σ a[i]² in double, fixed order. */
double l2NormSq(const float *a, size_t n);

/** Σ (a[i] − b[i])² in double, fixed order. */
double l2DiffNormSq(const float *a, const float *b, size_t n);

/**
 * Accumulated health of one compression channel. Byte fields are
 * folded from the channel's transport events (exact == what an
 * uncompressed channel would send); norm fields accumulate squared
 * L2 norms so merging channels composes correctly.
 */
struct CompressionHealth
{
    /** Transport sends observed (compressed or not). */
    int64_t sends = 0;
    /** Sends that went through a lossy compressor. */
    int64_t compressedSends = 0;
    int64_t exactBytes = 0;
    int64_t wireBytes = 0;
    /** Σ ‖g‖² over compressed sends (error-fed input). */
    double inputNormSq = 0.0;
    /** Σ ‖g − ĝ‖² over compressed sends. */
    double errNormSq = 0.0;
    /** Current error-feedback residual ‖e‖² (last observation). */
    double residualNormSq = 0.0;
    /** Σ cos(g, ĝ) over sampled compressed sends. */
    double cosineSum = 0.0;
    int64_t cosineCount = 0;

    void merge(const CompressionHealth &other);

    /**
     * Per-window view: this (cumulative) health minus @p prev for
     * the accumulated fields. residualNormSq is state, not an
     * accumulation, so the current value carries over unchanged.
     */
    CompressionHealth delta(const CompressionHealth &prev) const;

    /** wire/exact byte ratio; 1 when the channel moved nothing. */
    double wireRatio() const;
    /** sqrt(errNormSq / inputNormSq); 0 when nothing compressed. */
    double relError() const;
    double residualNorm() const;
    /** Mean sampled cosine; 1 when nothing was sampled. */
    double meanCosine() const;
};

/** Alert taxonomy (see DESIGN.md §11). */
enum class AlertKind
{
    /** Channel relative reconstruction error above threshold. */
    RelError,
    /** Global gradient norm above threshold. */
    GradNorm,
    /** Loss rose above lossFactor × best-so-far. */
    LossDrift,
};

/** Stable display name of @p kind. */
const char *alertKindName(AlertKind kind);

/** One raised alert. The channel name is copied into a fixed
 *  buffer so raising never allocates. */
struct Alert
{
    int64_t step = 0;
    AlertKind kind = AlertKind::RelError;
    double value = 0.0;
    double threshold = 0.0;
    char channel[24] = {0};
};

/**
 * Probe thresholds, resolved from the environment once by
 * initTelemetryFromEnv() (tests may overwrite fields directly).
 * A threshold of 0 disables its monitor.
 */
struct ProbeThresholds
{
    /** OPTIMUS_PROBE_RELERR_MAX (default 0.95). */
    double relErrMax = 0.95;
    /** OPTIMUS_PROBE_GRADNORM_MAX (default 0 = off). */
    double gradNormMax = 0.0;
    /** OPTIMUS_PROBE_LOSS_FACTOR (default 0 = off): alert when
     *  loss exceeds factor × the best loss seen so far. */
    double lossFactor = 0.0;
    /** OPTIMUS_ALERT_INTERVAL (default 10): minimum steps between
     *  two alerts of the same (channel, kind). */
    int64_t alertIntervalSteps = 10;
};

/** The process-wide thresholds (mutable for tests). */
ProbeThresholds &probeThresholds();

/**
 * Fixed-capacity alert sink. raise() is allocation-free: the ring
 * and the rate-limit table are preallocated, and channel names are
 * copied into fixed buffers.
 */
class AlertLog
{
  public:
    /** Retained alerts (older ones are evicted). */
    static constexpr int64_t kCapacity = 64;
    /** Distinct (channel, kind) rate-limit slots. */
    static constexpr size_t kLimitSlots = 64;

    static AlertLog &instance();

    /**
     * Record an alert unless one for the same (channel, kind) was
     * raised within alertIntervalSteps. @return true when the
     * alert was recorded (rate-limited calls return false).
     */
    bool raise(const char *channel, AlertKind kind, int64_t step,
               double value, double threshold);

    /** Alerts recorded over the log's lifetime. */
    int64_t raisedTotal() const;

    /** Retained alerts, oldest first. */
    std::vector<Alert> snapshot() const;

    /** Drop alerts and rate-limit state. */
    void reset();

  private:
    AlertLog();

    struct LimitSlot
    {
        char channel[24] = {0};
        AlertKind kind = AlertKind::RelError;
        int64_t lastStep = 0;
        bool used = false;
    };

    mutable std::mutex mutex_;
    std::array<Alert, kCapacity> ring_;
    int64_t raised_ = 0;
    std::array<LimitSlot, kLimitSlots> limiter_;
};

} // namespace obs
} // namespace optimus

#endif // OPTIMUS_OBS_PROBES_HH
