/**
 * @file
 * Trace summarizer behind the tools/tracesum CLI: loads a Chrome
 * trace-event JSON produced by obs::writeTrace and folds the span
 * stream back into the paper's per-category step breakdown
 * (compute / dpReduce / embSync / optimizer / overlap-hidden).
 *
 * The trainer emits its phase spans from the same nowNs() readings
 * that feed StepPhaseTimes, and the reduce engine emits bucket spans
 * from the readings that feed busySeconds, so the summary totals
 * reconcile with the in-process timers to export rounding error
 * (<1%; timestamps are written with nanosecond precision).
 *
 * The parser targets obs::writeTrace output — one event object per
 * line — not arbitrary JSON.
 */

#ifndef OPTIMUS_OBS_TRACESUM_HH
#define OPTIMUS_OBS_TRACESUM_HH

#include <cstdint>
#include <map>
#include <string>

namespace optimus
{
namespace obs
{

struct TraceSummary
{
    bool valid = false;       // file read + at least one span parsed
    int64_t spans = 0;        // complete ('X') events parsed
    int64_t steps = 0;        // distinct trainer step ids seen

    // Seconds summed over all steps, from cat="phase" spans...
    double forwardBackward = 0.0; // compute (fwd+bwd replica loop)
    double dpReduce = 0.0;        // exposed reduce wait in the step
    double embSync = 0.0;
    double optimizer = 0.0;
    double total = 0.0;           // "step" spans

    // ...and from cat="reduce" bucket spans:
    double dpReduceBusy = 0.0;    // summed bucket work
    double overlapHidden = 0.0;   // sum_i max(0, busy_i - exposed_i)

    double other = 0.0;           // total minus the named phases

    // All spans grouped by category (seconds / count).
    std::map<std::string, double> categorySeconds;
    std::map<std::string, int64_t> categorySpans;
};

/** Summarize trace JSON text (obs::writeTrace format). */
TraceSummary summarizeTrace(const std::string &json_text);

/** Load a file and summarize it; valid=false if unreadable. */
TraceSummary summarizeTraceFile(const std::string &path);

/** Per-category table, one row per breakdown line. */
std::string renderTraceSummary(const TraceSummary &summary);

} // namespace obs
} // namespace optimus

#endif // OPTIMUS_OBS_TRACESUM_HH
