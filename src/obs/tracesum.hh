/**
 * @file
 * Trace summarizer behind the tools/tracesum CLI: loads a Chrome
 * trace-event JSON produced by obs::writeTrace and folds the span
 * stream back into the paper's per-category step breakdown
 * (compute / dpReduce / embSync / optimizer / overlap-hidden).
 *
 * The trainer emits its phase spans from the same nowNs() readings
 * that feed StepPhaseTimes, and the reduce engine emits bucket spans
 * from the readings that feed busySeconds, so the summary totals
 * reconcile with the in-process timers to export rounding error
 * (<1%; timestamps are written with nanosecond precision).
 *
 * The parser targets obs::writeTrace output — one event object per
 * line — not arbitrary JSON.
 */

#ifndef OPTIMUS_OBS_TRACESUM_HH
#define OPTIMUS_OBS_TRACESUM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace optimus
{
namespace obs
{

/** One serving scheduler round (cat="serve" spans of one wave). */
struct ServeWave
{
    int64_t id = 0;             // serve.step / serve.decode span id
    double stepSeconds = 0.0;   // serve.step wall time
    double prefillSeconds = 0.0; // serve.prefill spans in this wave
    double decodeSeconds = 0.0; // serve.decode wall time
    int64_t prefills = 0;       // prompts admitted this wave
    int64_t decodeRows = 0;     // sequences decoded this wave
};

/** Per-(phase, verb) rollup of the transport spans. */
struct CommRollup
{
    int64_t spans = 0;
    double seconds = 0.0;
    double exactBytes = 0.0;
    double wireBytes = 0.0;
};

struct TraceSummary
{
    bool valid = false;       // file read + at least one span parsed
    int64_t spans = 0;        // complete ('X') events parsed
    int64_t steps = 0;        // distinct trainer step ids seen

    // Seconds summed over all steps, from cat="phase" spans...
    double forwardBackward = 0.0; // compute (fwd+bwd replica loop)
    double dpReduce = 0.0;        // exposed reduce wait in the step
    double embSync = 0.0;
    double optimizer = 0.0;
    double total = 0.0;           // "step" spans

    // ...and from cat="reduce" bucket spans:
    double dpReduceBusy = 0.0;    // summed bucket work
    double overlapHidden = 0.0;   // sum_i max(0, busy_i - exposed_i)

    double other = 0.0;           // total minus the named phases

    // Serving-trace breakdown, from cat="serve" spans. serve.step
    // and serve.decode carry the scheduler iteration as their span
    // id; serve.prefill carries the sequence id, so prefills are
    // assigned to waves by time containment in the wave's
    // serve.step interval.
    int64_t serveWaves = 0;      // distinct serve.step ids
    double serveStep = 0.0;      // summed wave wall time
    double servePrefill = 0.0;
    double serveDecode = 0.0;
    std::vector<ServeWave> waves; // per-wave phase table, id order

    // Transport spans rolled up per "phase/verb" (categories
    // interStage/dpReduce/embSync/other; exactBytes/wireBytes from
    // the span args, reconciling with CommTrace volumes).
    std::map<std::string, CommRollup> commByVerb;

    // All spans grouped by category (seconds / count).
    std::map<std::string, double> categorySeconds;
    std::map<std::string, int64_t> categorySpans;
};

/** Summarize trace JSON text (obs::writeTrace format). */
TraceSummary summarizeTrace(const std::string &json_text);

/** Load a file and summarize it; valid=false if unreadable. */
TraceSummary summarizeTraceFile(const std::string &path);

/** Per-category table, one row per breakdown line. */
std::string renderTraceSummary(const TraceSummary &summary);

} // namespace obs
} // namespace optimus

#endif // OPTIMUS_OBS_TRACESUM_HH
