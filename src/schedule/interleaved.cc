#include "schedule/interleaved.hh"

#include <algorithm>

#include "util/logging.hh"

namespace optimus
{

namespace
{

/** Decode a rank-local virtual micro-batch id into (chunk, mb). */
void
decodeVirtualId(int vid, int ranks, int chunks, bool forward,
                int &chunk, int &micro_batch)
{
    const int group = ranks * chunks;
    const int in_group = vid % group;
    chunk = in_group / ranks;
    if (!forward)
        chunk = chunks - 1 - chunk;
    micro_batch = ranks * (vid / group) + vid % ranks;
}

} // namespace

InterleavedSchedule::InterleavedSchedule(int ranks, int chunks,
                                         int micro_batches)
    : ranks_(ranks), chunks_(chunks), microBatches_(micro_batches),
      perRank_(ranks)
{
    OPTIMUS_ASSERT(ranks >= 1);
    OPTIMUS_ASSERT(chunks >= 1);
    OPTIMUS_ASSERT(micro_batches >= 1);
    OPTIMUS_ASSERT(micro_batches % ranks == 0);
}

InterleavedSchedule
InterleavedSchedule::build(int ranks, int chunks, int micro_batches)
{
    InterleavedSchedule sched(ranks, chunks, micro_batches);
    const int total = micro_batches * chunks;
    for (int r = 0; r < ranks; ++r) {
        auto &ops = sched.perRank_[r];
        // Megatron warm-up depth: deeper for earlier ranks, plus a
        // full round per extra chunk.
        const int warmup = std::min(
            (ranks - r - 1) * 2 + (chunks - 1) * ranks, total);

        int chunk, mb;
        for (int vid = 0; vid < warmup; ++vid) {
            decodeVirtualId(vid, ranks, chunks, true, chunk, mb);
            ops.push_back({PipeOpKind::Forward, r, chunk, mb});
        }
        // Steady 1F1B on virtual micro-batches.
        for (int i = 0; i + warmup < total; ++i) {
            decodeVirtualId(warmup + i, ranks, chunks, true, chunk,
                            mb);
            ops.push_back({PipeOpKind::Forward, r, chunk, mb});
            decodeVirtualId(i, ranks, chunks, false, chunk, mb);
            ops.push_back({PipeOpKind::Backward, r, chunk, mb});
        }
        // Cool-down backwards.
        for (int vid = std::max(0, total - warmup); vid < total;
             ++vid) {
            decodeVirtualId(vid, ranks, chunks, false, chunk, mb);
            ops.push_back({PipeOpKind::Backward, r, chunk, mb});
        }
    }
    return sched;
}

const std::vector<VPipeOp> &
InterleavedSchedule::rankOps(int rank) const
{
    OPTIMUS_ASSERT(rank >= 0 && rank < ranks_);
    return perRank_[rank];
}

int64_t
InterleavedSchedule::opCount() const
{
    return static_cast<int64_t>(2) * ranks_ * chunks_ *
           microBatches_;
}

namespace
{

std::vector<VPipeOp>
tryGlobalOrder(const InterleavedSchedule &sched)
{
    const int p = sched.ranks();
    const int k_total = sched.virtualStages();
    const int m = sched.microBatches();
    std::vector<size_t> cursor(p, 0);
    std::vector<std::vector<bool>> fwd_done(
        k_total, std::vector<bool>(m, false));
    std::vector<std::vector<bool>> bwd_done(
        k_total, std::vector<bool>(m, false));

    std::vector<VPipeOp> order;
    order.reserve(sched.opCount());
    bool progressed = true;
    while (progressed &&
           static_cast<int64_t>(order.size()) < sched.opCount()) {
        progressed = false;
        for (int r = 0; r < p; ++r) {
            const auto &ops = sched.rankOps(r);
            if (cursor[r] >= ops.size())
                continue;
            const VPipeOp &op = ops[cursor[r]];
            const int k = op.virtualStage(p);
            bool ready;
            if (op.kind == PipeOpKind::Forward) {
                ready = k == 0 || fwd_done[k - 1][op.microBatch];
            } else {
                ready = fwd_done[k][op.microBatch] &&
                        (k == k_total - 1 ||
                         bwd_done[k + 1][op.microBatch]);
            }
            if (!ready)
                continue;
            if (op.kind == PipeOpKind::Forward)
                fwd_done[k][op.microBatch] = true;
            else
                bwd_done[k][op.microBatch] = true;
            order.push_back(op);
            ++cursor[r];
            progressed = true;
        }
    }
    if (static_cast<int64_t>(order.size()) != sched.opCount())
        return {};
    return order;
}

} // namespace

bool
InterleavedSchedule::validate() const
{
    return !tryGlobalOrder(*this).empty();
}

std::vector<VPipeOp>
InterleavedSchedule::globalOrder() const
{
    auto order = tryGlobalOrder(*this);
    if (order.empty())
        panic("interleaved schedule deadlocks "
              "(ranks=%d, chunks=%d, microBatches=%d)",
              ranks_, chunks_, microBatches_);
    return order;
}

} // namespace optimus
