/**
 * @file
 * Megatron-LM interleaved 1F1B scheduling (Narayanan et al., SC'21),
 * which the paper's implementation uses to shrink pipeline bubbles
 * (Section 8). Each of the P ranks hosts `chunks` non-contiguous
 * model chunks (virtual stages); virtual stage k = chunk * P + rank
 * runs on rank k mod P, so the warm-up bubble shrinks by roughly the
 * chunk count.
 *
 * The numerics engine does not need this schedule (message order per
 * channel is micro-batch order under both schedules, and training
 * math is schedule-invariant); it exists for the performance model.
 */

#ifndef OPTIMUS_SCHEDULE_INTERLEAVED_HH
#define OPTIMUS_SCHEDULE_INTERLEAVED_HH

#include <vector>

#include "schedule/schedule.hh"

namespace optimus
{

/** One op on one rank: a chunk's forward/backward of a micro-batch. */
struct VPipeOp
{
    PipeOpKind kind;
    int rank;
    int chunk;
    int microBatch;

    /** Global virtual-stage index (chunk * P + rank). */
    int virtualStage(int ranks) const { return chunk * ranks + rank; }

    bool operator==(const VPipeOp &other) const = default;
};

/** The interleaved 1F1B schedule for a (P, v, M) configuration. */
class InterleavedSchedule
{
  public:
    /**
     * Build the Megatron interleaved schedule.
     * @param ranks Pipeline ranks P.
     * @param chunks Model chunks per rank v (>= 1; 1 degenerates to
     *        plain 1F1B over P stages).
     * @param micro_batches Micro-batches M (must divide by P for
     *        the interleaved pattern, as in Megatron).
     */
    static InterleavedSchedule build(int ranks, int chunks,
                                     int micro_batches);

    int ranks() const { return ranks_; }
    int chunks() const { return chunks_; }
    int microBatches() const { return microBatches_; }

    /** Total virtual stages K = P * v. */
    int virtualStages() const { return ranks_ * chunks_; }

    /** Execution order for one rank. */
    const std::vector<VPipeOp> &rankOps(int rank) const;

    /**
     * Dependency feasibility: Forward(k, m) after Forward(k-1, m),
     * Backward(k, m) after Backward(k+1, m) and Forward(k, m),
     * per-rank program order respected.
     */
    bool validate() const;

    /** A valid global execution order (panics on deadlock). */
    std::vector<VPipeOp> globalOrder() const;

    int64_t opCount() const;

  private:
    InterleavedSchedule(int ranks, int chunks, int micro_batches);

    int ranks_;
    int chunks_;
    int microBatches_;
    std::vector<std::vector<VPipeOp>> perRank_;
};

} // namespace optimus

#endif // OPTIMUS_SCHEDULE_INTERLEAVED_HH
