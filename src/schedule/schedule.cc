#include "schedule/schedule.hh"

#include <algorithm>

#include "util/logging.hh"

namespace optimus
{

PipelineSchedule::PipelineSchedule(int stages, int micro_batches)
    : stages_(stages), microBatches_(micro_batches),
      perStage_(stages)
{
    OPTIMUS_ASSERT(stages >= 1);
    OPTIMUS_ASSERT(micro_batches >= 1);
}

PipelineSchedule
PipelineSchedule::oneFOneB(int stages, int micro_batches)
{
    PipelineSchedule sched(stages, micro_batches);
    for (int s = 0; s < stages; ++s) {
        auto &ops = sched.perStage_[s];
        const int warmup = warmupDepth(stages, micro_batches, s);
        int next_fwd = 0;
        int next_bwd = 0;
        for (int i = 0; i < warmup; ++i)
            ops.push_back({PipeOpKind::Forward, s, next_fwd++});
        // Steady state: alternate F then B while forwards remain.
        while (next_fwd < micro_batches) {
            ops.push_back({PipeOpKind::Forward, s, next_fwd++});
            ops.push_back({PipeOpKind::Backward, s, next_bwd++});
        }
        // Cool-down: remaining backwards.
        while (next_bwd < micro_batches)
            ops.push_back({PipeOpKind::Backward, s, next_bwd++});
    }
    return sched;
}

PipelineSchedule
PipelineSchedule::gpipe(int stages, int micro_batches)
{
    PipelineSchedule sched(stages, micro_batches);
    for (int s = 0; s < stages; ++s) {
        auto &ops = sched.perStage_[s];
        for (int m = 0; m < micro_batches; ++m)
            ops.push_back({PipeOpKind::Forward, s, m});
        for (int m = 0; m < micro_batches; ++m)
            ops.push_back({PipeOpKind::Backward, s, m});
    }
    return sched;
}

PipelineSchedule
PipelineSchedule::make(ScheduleKind kind, int stages, int micro_batches)
{
    switch (kind) {
      case ScheduleKind::OneFOneB:
        return oneFOneB(stages, micro_batches);
      case ScheduleKind::GPipe:
        return gpipe(stages, micro_batches);
    }
    panic("unknown schedule kind %d", static_cast<int>(kind));
}

const std::vector<PipeOp> &
PipelineSchedule::stageOps(int stage) const
{
    OPTIMUS_ASSERT(stage >= 0 && stage < stages_);
    return perStage_[stage];
}

int64_t
PipelineSchedule::opCount() const
{
    return static_cast<int64_t>(2) * stages_ * microBatches_;
}

namespace
{

/**
 * Greedy list scheduling: repeatedly issue the next op of any stage
 * whose dependencies are satisfied. Returns empty on deadlock.
 */
std::vector<PipeOp>
tryGlobalOrder(const PipelineSchedule &sched)
{
    const int p = sched.stages();
    const int m = sched.microBatches();
    std::vector<size_t> cursor(p, 0);
    // fwdDone[s][mb] / bwdDone[s][mb]
    std::vector<std::vector<bool>> fwd_done(
        p, std::vector<bool>(m, false));
    std::vector<std::vector<bool>> bwd_done(
        p, std::vector<bool>(m, false));

    std::vector<PipeOp> order;
    order.reserve(sched.opCount());
    bool progressed = true;
    while (progressed &&
           static_cast<int64_t>(order.size()) < sched.opCount()) {
        progressed = false;
        for (int s = 0; s < p; ++s) {
            const auto &ops = sched.stageOps(s);
            if (cursor[s] >= ops.size())
                continue;
            const PipeOp &op = ops[cursor[s]];
            bool ready;
            if (op.kind == PipeOpKind::Forward) {
                ready = s == 0 || fwd_done[s - 1][op.microBatch];
            } else {
                ready = fwd_done[s][op.microBatch] &&
                        (s == p - 1 || bwd_done[s + 1][op.microBatch]);
            }
            if (!ready)
                continue;
            if (op.kind == PipeOpKind::Forward)
                fwd_done[s][op.microBatch] = true;
            else
                bwd_done[s][op.microBatch] = true;
            order.push_back(op);
            ++cursor[s];
            progressed = true;
        }
    }
    if (static_cast<int64_t>(order.size()) != sched.opCount())
        return {};
    return order;
}

} // namespace

bool
PipelineSchedule::validate() const
{
    return !tryGlobalOrder(*this).empty();
}

std::vector<PipeOp>
PipelineSchedule::globalOrder() const
{
    auto order = tryGlobalOrder(*this);
    if (order.empty())
        panic("schedule deadlocks (stages=%d, microBatches=%d)",
              stages_, microBatches_);
    return order;
}

int
warmupDepth(int stages, int micro_batches, int stage)
{
    OPTIMUS_ASSERT(stage >= 0 && stage < stages);
    return std::min(stages - 1 - stage, micro_batches);
}

bool
isEpilogueBackward(int stages, int micro_batches, int stage,
                   int micro_batch)
{
    OPTIMUS_ASSERT(stage >= 1 && stage < stages);
    OPTIMUS_ASSERT(micro_batch >= 0 && micro_batch < micro_batches);
    const int receiver_warmup =
        warmupDepth(stages, micro_batches, stage - 1);
    return micro_batch >= receiver_warmup;
}

int
epilogueBackwardCount(int stages, int micro_batches, int stage)
{
    OPTIMUS_ASSERT(stage >= 1 && stage < stages);
    return micro_batches -
           std::min(warmupDepth(stages, micro_batches, stage - 1),
                    micro_batches);
}

ScheduleKind
parseScheduleKind(const std::string &text)
{
    if (text == "1f1b")
        return ScheduleKind::OneFOneB;
    if (text == "gpipe")
        return ScheduleKind::GPipe;
    fatal("unknown schedule kind '%s'", text.c_str());
}

} // namespace optimus
