/**
 * @file
 * Pipeline-parallel schedules as explicit per-stage operation
 * sequences, shared by the numerics engine (message ordering,
 * epilogue classification) and the discrete-event performance
 * simulator (timing).
 *
 * Epilogue classification (Section 5.2 of the paper): under 1F1B
 * the iteration has a forward-dominated warm-up ramp followed by a
 * backward-dominated body ("epilogue"). During the ramp, a
 * backward message from stage s overlaps the receiver's queued
 * warm-up forwards, so it is hidden; once the receiver has no
 * warm-up slack left, every backward message sits on the 1F1B
 * dependency cycle (stage s's backward -> message -> stage s-1's
 * backward -> ... -> stage s's next forward), i.e. on the critical
 * path. Stage s-1's warm-up depth is min(P - s, M), so all but the
 * *first* min(P - s, M) micro-batches of the channel are epilogue.
 * Epilogue-only compression compresses exactly those messages: the
 * ones whose latency is exposed. This matches Fig 10 of the paper,
 * where compressed backpropagation removes ~79% of the exposed
 * inter-stage time (everything except forward traffic), and Fig 5,
 * where lazy error propagation chains across consecutive
 * micro-batches.
 */

#ifndef OPTIMUS_SCHEDULE_SCHEDULE_HH
#define OPTIMUS_SCHEDULE_SCHEDULE_HH

#include <string>
#include <vector>

namespace optimus
{

/** Kinds of per-stage pipeline operations. */
enum class PipeOpKind
{
    Forward,
    Backward,
};

/** One forward or backward of one micro-batch on one stage. */
struct PipeOp
{
    PipeOpKind kind;
    int stage;
    int microBatch;

    bool operator==(const PipeOp &other) const = default;
};

/** Named pipeline schedule families. */
enum class ScheduleKind
{
    OneFOneB,
    GPipe,
};

/**
 * A complete schedule: for each stage, the exact order in which it
 * executes its forward and backward passes.
 */
class PipelineSchedule
{
  public:
    /**
     * Megatron/PipeDream-style 1F1B: stage s runs
     * min(P-1-s, M) warm-up forwards, then alternating 1F1B
     * steady-state, then cool-down backwards.
     */
    static PipelineSchedule oneFOneB(int stages, int micro_batches);

    /** GPipe: all forwards, then all backwards. */
    static PipelineSchedule gpipe(int stages, int micro_batches);

    /** Build by kind. */
    static PipelineSchedule make(ScheduleKind kind, int stages,
                                 int micro_batches);

    int stages() const { return stages_; }
    int microBatches() const { return microBatches_; }

    /** Execution order for one stage. */
    const std::vector<PipeOp> &stageOps(int stage) const;

    /**
     * Check dependency feasibility: there exists a global order
     * consistent with every per-stage order in which each
     * Forward(s, m) follows Forward(s-1, m) and each Backward(s, m)
     * follows Backward(s+1, m) and Forward(s, m).
     *
     * @return true when the schedule deadlock-free.
     */
    bool validate() const;

    /**
     * A valid global execution order (greedy list scheduling over
     * the per-stage sequences). panics if validate() fails.
     */
    std::vector<PipeOp> globalOrder() const;

    /** Total op count (2 * stages * microBatches). */
    int64_t opCount() const;

  private:
    PipelineSchedule(int stages, int micro_batches);

    int stages_;
    int microBatches_;
    std::vector<std::vector<PipeOp>> perStage_;
};

/**
 * Warm-up depth of @p stage under 1F1B: the number of forwards it
 * runs before its first backward, min(P - 1 - stage, M).
 */
int warmupDepth(int stages, int micro_batches, int stage);

/**
 * True when the backward message of @p micro_batch on the channel
 * stage -> stage-1 is part of the epilogue (the backward-dominated
 * body after the receiver's warm-up slack is spent) under 1F1B.
 * @pre 1 <= stage < stages
 */
bool isEpilogueBackward(int stages, int micro_batches, int stage,
                        int micro_batch);

/** Number of epilogue backward messages on channel stage->stage-1. */
int epilogueBackwardCount(int stages, int micro_batches, int stage);

/** Parse "1f1b" | "gpipe" (fatal on anything else). */
ScheduleKind parseScheduleKind(const std::string &text);

} // namespace optimus

#endif // OPTIMUS_SCHEDULE_SCHEDULE_HH
