/**
 * @file
 * Shared threaded execution runtime: a fixed-size thread pool with a
 * deterministic `parallelFor` primitive used by the GEMM kernels, the
 * element-wise NN layers, the compression kernels, and the replica
 * loop in Trainer3d.
 *
 * Determinism contract
 * --------------------
 * `parallelFor(begin, end, grain, fn)` decomposes [begin, end) into
 * chunks of exactly `grain` iterations (last chunk may be short).
 * Chunk boundaries depend ONLY on (begin, end, grain) — never on the
 * thread count — and chunks are assigned to workers statically
 * (round-robin by chunk index). Because every chunk performs the same
 * floating-point operations in the same order no matter which worker
 * runs it, any kernel whose chunks write disjoint outputs produces
 * bitwise-identical results for OPTIMUS_THREADS=1 and
 * OPTIMUS_THREADS=N. Reductions use `parallelReduceSum`, which sums
 * per-chunk partials in chunk-index order — again a function of the
 * chunking only, so equally thread-count-invariant.
 *
 * Nested parallelism: a `parallelFor` issued from inside a pool
 * worker (e.g. a GEMM called from a replica task) runs inline on the
 * calling worker. This keeps the pool deadlock-free and preserves the
 * chunk decomposition (and therefore the numerics) exactly.
 *
 * Pool size: `OPTIMUS_THREADS` if set (clamped to [1, 256]), else
 * `std::thread::hardware_concurrency()`. Read once at first use.
 */

#ifndef OPTIMUS_RUNTIME_RUNTIME_HH
#define OPTIMUS_RUNTIME_RUNTIME_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace optimus
{

/**
 * Non-owning reference to a chunk body fn(lo, hi) over [lo, hi).
 * Every parallel region blocks its caller until the last chunk
 * completed, so referencing the caller's lambda is safe — and,
 * unlike std::function, building one never heap-allocates no matter
 * how much the body captures, which is what keeps parallelFor off
 * the step path's allocation budget.
 */
class RangeFn
{
  public:
    template <typename F,
              typename = typename std::enable_if<!std::is_same<
                  typename std::decay<F>::type, RangeFn>::value>::type>
    RangeFn(const F &f)
        : obj_(&f), call_([](const void *o, int64_t lo, int64_t hi) {
              (*static_cast<const F *>(o))(lo, hi);
          })
    {}

    void operator()(int64_t lo, int64_t hi) const
    {
        call_(obj_, lo, hi);
    }

  private:
    const void *obj_;
    void (*call_)(const void *, int64_t, int64_t);
};

/** Non-owning reduction body: returns the partial over [lo, hi). */
class RangeSumFn
{
  public:
    template <typename F,
              typename = typename std::enable_if<!std::is_same<
                  typename std::decay<F>::type,
                  RangeSumFn>::value>::type>
    RangeSumFn(const F &f)
        : obj_(&f), call_([](const void *o, int64_t lo, int64_t hi) {
              return (*static_cast<const F *>(o))(lo, hi);
          })
    {}

    double operator()(int64_t lo, int64_t hi) const
    {
        return call_(obj_, lo, hi);
    }

  private:
    const void *obj_;
    double (*call_)(const void *, int64_t, int64_t);
};

class TaskGroup;
class Workspace;

/**
 * Fixed-size worker pool (singleton). Construction spawns
 * `threads() - 1` workers; the caller of a parallel region always
 * participates as worker 0, so `OPTIMUS_THREADS=1` spawns nothing
 * and every parallel region degenerates to a plain serial loop.
 */
class ThreadPool
{
  public:
    /** Process-wide pool, created on first use. */
    static ThreadPool &instance();

    /** Worker count (including the calling thread). */
    int threads() const { return threads_; }

    /**
     * Run fn over [begin, end) in chunks of `grain`, blocking until
     * every chunk completed. See the file comment for the
     * determinism contract. @pre grain >= 1
     */
    void parallelFor(int64_t begin, int64_t end, int64_t grain,
                     const RangeFn &fn);

    /**
     * Chunked deterministic reduction: partial sums are computed per
     * chunk (in parallel) and combined in chunk-index order.
     */
    double parallelReduceSum(int64_t begin, int64_t end, int64_t grain,
                             const RangeSumFn &fn);

    /** True when called from inside a pool worker task. */
    static bool inParallelRegion();

    /**
     * Enqueue one independent task belonging to @p group. Tasks are
     * popped FIFO by pool workers that are not currently executing
     * parallelFor chunks — including while a parallelFor job is in
     * flight, which is what lets bucketed gradient reduction overlap
     * the backward replica loop. On a serial pool (threads() == 1)
     * the task runs inline immediately. Task bodies execute with
     * inParallelRegion() true, so nested parallel regions run inline
     * and the determinism contract is preserved regardless of which
     * thread picks a task up.
     */
    void submit(TaskGroup &group, std::function<void()> fn);

    /**
     * Pop and execute one queued task on the calling thread.
     * @return false when the queue was empty.
     */
    bool runOneTask();

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

  private:
    ThreadPool();

    void workerLoop(int worker_id);
    void runChunks(int worker_id, int64_t num_chunks);
    static void finishTask(TaskGroup &group);

    /**
     * One queued task, the group awaiting its completion, and the
     * submitter's workspace scope (re-installed on whichever thread
     * runs the task, so tensors it builds land in the right arena).
     */
    struct PendingTask
    {
        std::function<void()> fn;
        TaskGroup *group = nullptr;
        Workspace *ws = nullptr;
    };

    /** Queue ops (mutex_ must be held). */
    void pushTask(PendingTask &&task);
    PendingTask popTask();

    int threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    /** Incremented per job; workers run the job whose id they see. */
    uint64_t jobEpoch_ = 0;
    int workersBusy_ = 0;
    bool shutdown_ = false;
    /**
     * FIFO task queue: a ring over a vector (head/count), so the
     * steady-state submit/pop cycle reuses slots instead of churning
     * deque nodes. Guarded by mutex_. Pre-sized at construction
     * (queue depth is schedule-dependent, so growth cannot be
     * trusted to happen during warmup); the pushTask ratchet is a
     * backstop.
     */
    std::vector<PendingTask> tasks_;
    size_t taskHead_ = 0;
    size_t taskCount_ = 0;

    /** Active job (valid while workersBusy_ > 0). */
    const RangeFn *jobFn_ = nullptr;
    int64_t jobBegin_ = 0;
    int64_t jobGrain_ = 1;
    int64_t jobEnd_ = 0;
    int64_t jobChunks_ = 0;
    /** Caller's workspace scope, mirrored onto workers per job. */
    Workspace *jobWs_ = nullptr;

    /** Serializes external callers (one parallel region at a time). */
    std::mutex runMutex_;
};

/**
 * Completion handle over a set of independent tasks submitted to the
 * pool's task queue. The producer/consumer order is deterministic
 * where it matters: tasks are popped FIFO, every task's *result* must
 * be independent of when and where it runs (the submitting code owns
 * that property — bucket reductions write disjoint state and fix
 * their chunk grids), and wait() drains the queue on the caller
 * before blocking, so a serial pool and a saturated pool both make
 * progress. A group is reusable: wait() leaves it empty and ready
 * for the next round of run() calls. Not reentrant — run()/wait()
 * are for code outside pool tasks (wait() from inside a task would
 * deadlock a single-worker pool).
 */
class TaskGroup
{
  public:
    TaskGroup() = default;

    /** @pre all submitted tasks completed (call wait() first). */
    ~TaskGroup() = default;

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Submit one task (inline on a serial pool). */
    void run(std::function<void()> fn);

    /**
     * Execute queued tasks on the calling thread until the queue is
     * empty, then block until every task of this group finished.
     */
    void wait();

    /** Tasks submitted over this group's lifetime (diagnostics). */
    int64_t submitted() const;

  private:
    friend class ThreadPool;

    mutable std::mutex mutex_;
    std::condition_variable done_;
    /** Tasks submitted but not yet completed (guarded by mutex_). */
    int64_t pending_ = 0;
    int64_t submitted_ = 0;
};

/**
 * RAII guard forcing every parallel region issued from the current
 * thread to run inline (single-threaded) while alive. The chunk
 * decomposition is unchanged, so results are bitwise identical to
 * pooled execution — this exists for single-thread baseline
 * measurements (bench_gemm) and tests.
 */
class SerialRegion
{
  public:
    SerialRegion();
    ~SerialRegion();

    SerialRegion(const SerialRegion &) = delete;
    SerialRegion &operator=(const SerialRegion &) = delete;

  private:
    bool saved_;
};

/** Convenience wrapper over ThreadPool::instance().parallelFor. */
void parallelFor(int64_t begin, int64_t end, int64_t grain,
                 const RangeFn &fn);

/** Convenience wrapper over ThreadPool::instance().parallelReduceSum. */
double parallelReduceSum(int64_t begin, int64_t end, int64_t grain,
                         const RangeSumFn &fn);

/** Pool width (1 means fully serial execution). */
int runtimeThreads();

/**
 * Thread-local workspace slot. The arena layer (tensor/arena.hh)
 * scopes tensor storage through this slot and the pool mirrors it
 * onto workers for the duration of a job or task — the slot lives
 * here, below the tensor library, so the pool can propagate it
 * without depending on the arena types. Returns the previous value.
 */
Workspace *exchangeCurrentWorkspaceSlot(Workspace *ws);

/** Current value of the thread-local workspace slot (may be null). */
Workspace *currentWorkspaceSlot();

} // namespace optimus

#endif // OPTIMUS_RUNTIME_RUNTIME_HH
