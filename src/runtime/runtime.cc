#include "runtime/runtime.hh"

#include <cstdlib>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace optimus
{

namespace
{

/** Marks threads that are currently executing a pool task. */
thread_local bool t_inWorker = false;

int
configuredThreads()
{
    if (const char *env = std::getenv("OPTIMUS_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1)
            return static_cast<int>(parsed > 256 ? 256 : parsed);
        warn("ignoring invalid OPTIMUS_THREADS='%s'", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

int64_t
chunkCount(int64_t begin, int64_t end, int64_t grain)
{
    const int64_t range = end - begin;
    return (range + grain - 1) / grain;
}

} // namespace

ThreadPool &
ThreadPool::instance()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool() : threads_(configuredThreads())
{
    workers_.reserve(threads_ - 1);
    for (int w = 1; w < threads_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

bool
ThreadPool::inParallelRegion()
{
    return t_inWorker;
}

void
ThreadPool::runChunks(int worker_id, int64_t num_chunks)
{
    // Static round-robin assignment: worker w owns chunks
    // w, w + T, w + 2T, ... Chunk boundaries are a pure function of
    // (begin, end, grain), so results never depend on T.
    for (int64_t c = worker_id; c < num_chunks; c += threads_) {
        const int64_t lo = jobBegin_ + c * jobGrain_;
        int64_t hi = lo + jobGrain_;
        if (hi > jobEnd_)
            hi = jobEnd_;
        (*jobFn_)(lo, hi);
    }
}

void
ThreadPool::workerLoop(int worker_id)
{
    t_inWorker = true;
    obs::setThreadTrack(worker_id, "pool worker");
    uint64_t seen_epoch = 0;
    while (true) {
        int64_t num_chunks = 0;
        bool have_job = false;
        PendingTask task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return shutdown_ || jobEpoch_ != seen_epoch ||
                       !tasks_.empty();
            });
            if (shutdown_)
                return;
            if (jobEpoch_ != seen_epoch) {
                // A parallelFor job outranks queued tasks: its
                // caller blocks until every worker checked in.
                seen_epoch = jobEpoch_;
                num_chunks = jobChunks_;
                have_job = true;
            } else {
                task = std::move(tasks_.front());
                tasks_.pop_front();
            }
        }
        if (have_job) {
            {
                obs::ScopedSpan span("runtime", "chunks");
                runChunks(worker_id, num_chunks);
            }
            std::lock_guard<std::mutex> lock(mutex_);
            if (--workersBusy_ == 0)
                done_.notify_one();
        } else {
            {
                obs::ScopedSpan span("runtime", "task");
                task.fn();
            }
            finishTask(*task.group);
        }
    }
}

void
ThreadPool::finishTask(TaskGroup &group)
{
    std::lock_guard<std::mutex> lock(group.mutex_);
    if (--group.pending_ == 0)
        group.done_.notify_all();
}

void
ThreadPool::submit(TaskGroup &group, std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> glock(group.mutex_);
        ++group.submitted_;
    }
    if (obs::metricsEnabled()) {
        static obs::Counter &submits =
            obs::MetricsRegistry::instance().counter(
                "runtime.tasks.submitted");
        submits.add(1);
    }
    if (threads_ == 1) {
        // Serial pool: no workers exist, run inline right here. The
        // task body still sees inParallelRegion() so its nested
        // parallel regions decompose identically to pooled runs.
        const bool saved = t_inWorker;
        t_inWorker = true;
        {
            obs::ScopedSpan span("runtime", "task");
            fn();
        }
        t_inWorker = saved;
        return;
    }
    {
        std::lock_guard<std::mutex> glock(group.mutex_);
        ++group.pending_;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(PendingTask{std::move(fn), &group});
    }
    wake_.notify_one();
}

bool
ThreadPool::runOneTask()
{
    PendingTask task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty())
            return false;
        task = std::move(tasks_.front());
        tasks_.pop_front();
    }
    const bool saved = t_inWorker;
    t_inWorker = true;
    {
        obs::ScopedSpan span("runtime", "task");
        task.fn();
    }
    t_inWorker = saved;
    finishTask(*task.group);
    return true;
}

void
TaskGroup::run(std::function<void()> fn)
{
    ThreadPool::instance().submit(*this, std::move(fn));
}

void
TaskGroup::wait()
{
    ThreadPool &pool = ThreadPool::instance();
    while (pool.runOneTask()) {
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return pending_ == 0; });
}

int64_t
TaskGroup::submitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return submitted_;
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t grain,
                        const RangeFn &fn)
{
    OPTIMUS_ASSERT(grain >= 1);
    if (end <= begin)
        return;

    if (obs::metricsEnabled()) {
        static obs::Counter &calls =
            obs::MetricsRegistry::instance().counter(
                "runtime.parallelFor.calls");
        calls.add(1);
    }

    // Serial pool, a nested call from a worker, or a range that
    // cannot fill more than one chunk: run inline. The chunk
    // decomposition is irrelevant to plain loops (only reductions
    // observe it, and parallelReduceSum chunks explicitly).
    const int64_t num_chunks = chunkCount(begin, end, grain);
    if (threads_ == 1 || t_inWorker || num_chunks == 1) {
        fn(begin, end);
        return;
    }

    // Only top-level pooled jobs get a span: nested and serial
    // calls take the inline path above, so traces stay readable.
    obs::ScopedSpan span("runtime", "parallelFor");

    std::lock_guard<std::mutex> run_lock(runMutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobFn_ = &fn;
        jobBegin_ = begin;
        jobEnd_ = end;
        jobGrain_ = grain;
        jobChunks_ = num_chunks;
        workersBusy_ = threads_ - 1;
        ++jobEpoch_;
    }
    wake_.notify_all();

    // The caller participates as worker 0.
    t_inWorker = true;
    runChunks(0, num_chunks);
    t_inWorker = false;

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return workersBusy_ == 0; });
}

double
ThreadPool::parallelReduceSum(int64_t begin, int64_t end, int64_t grain,
                              const RangeSumFn &fn)
{
    OPTIMUS_ASSERT(grain >= 1);
    if (end <= begin)
        return 0.0;

    const int64_t num_chunks = chunkCount(begin, end, grain);
    std::vector<double> partial(num_chunks, 0.0);
    // Same chunking whether this runs inline or on the pool, so the
    // final left-to-right combine is thread-count-invariant.
    parallelFor(0, num_chunks, 1, [&](int64_t c0, int64_t c1) {
        for (int64_t c = c0; c < c1; ++c) {
            const int64_t lo = begin + c * grain;
            const int64_t hi = lo + grain < end ? lo + grain : end;
            partial[c] = fn(lo, hi);
        }
    });
    double total = 0.0;
    for (double p : partial)
        total += p;
    return total;
}

SerialRegion::SerialRegion() : saved_(t_inWorker)
{
    t_inWorker = true;
}

SerialRegion::~SerialRegion()
{
    t_inWorker = saved_;
}

void
parallelFor(int64_t begin, int64_t end, int64_t grain,
            const RangeFn &fn)
{
    ThreadPool::instance().parallelFor(begin, end, grain, fn);
}

double
parallelReduceSum(int64_t begin, int64_t end, int64_t grain,
                  const RangeSumFn &fn)
{
    return ThreadPool::instance().parallelReduceSum(begin, end, grain,
                                                    fn);
}

int
runtimeThreads()
{
    return ThreadPool::instance().threads();
}

} // namespace optimus
