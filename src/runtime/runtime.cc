#include "runtime/runtime.hh"

#include <cstdlib>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace optimus
{

namespace
{

/** Marks threads that are currently executing a pool task. */
thread_local bool t_inWorker = false;

/** The thread's workspace scope (see exchangeCurrentWorkspaceSlot). */
thread_local Workspace *t_workspace = nullptr;

int
configuredThreads()
{
    if (const char *env = std::getenv("OPTIMUS_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1)
            return static_cast<int>(parsed > 256 ? 256 : parsed);
        warn("ignoring invalid OPTIMUS_THREADS='%s'", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

int64_t
chunkCount(int64_t begin, int64_t end, int64_t grain)
{
    const int64_t range = end - begin;
    return (range + grain - 1) / grain;
}

} // namespace

ThreadPool &
ThreadPool::instance()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool() : threads_(configuredThreads())
{
    // Pre-size the task ring: how deep the queue gets is a race
    // between submitters and draining workers, so ring growth is
    // NOT warmup-reproducible — a loaded machine can pile tasks
    // deeper in a steady-state step than any warmup step saw. 256
    // slots (~16 KiB) covers every workload in the tree; the
    // pushTask ratchet stays as a backstop for pathological depth.
    tasks_.resize(256);
    workers_.reserve(threads_ - 1);
    for (int w = 1; w < threads_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

bool
ThreadPool::inParallelRegion()
{
    return t_inWorker;
}

Workspace *
exchangeCurrentWorkspaceSlot(Workspace *ws)
{
    Workspace *prev = t_workspace;
    t_workspace = ws;
    return prev;
}

Workspace *
currentWorkspaceSlot()
{
    return t_workspace;
}

void
ThreadPool::pushTask(PendingTask &&task)
{
    if (taskCount_ == tasks_.size()) {
        // Warmup growth: unwrap the ring into a larger vector.
        // optlint:coldalloc — capacity ratchets, steady state reuses
        // the slots in place.
        std::vector<PendingTask> grown;
        grown.resize(tasks_.empty() ? 16 : tasks_.size() * 2);
        for (size_t i = 0; i < taskCount_; ++i)
            grown[i] =
                std::move(tasks_[(taskHead_ + i) % tasks_.size()]);
        tasks_ = std::move(grown);
        taskHead_ = 0;
    }
    tasks_[(taskHead_ + taskCount_) % tasks_.size()] =
        std::move(task);
    ++taskCount_;
}

ThreadPool::PendingTask
ThreadPool::popTask()
{
    PendingTask task = std::move(tasks_[taskHead_]);
    taskHead_ = (taskHead_ + 1) % tasks_.size();
    --taskCount_;
    return task;
}

void
ThreadPool::runChunks(int worker_id, int64_t num_chunks)
{
    // Static round-robin assignment: worker w owns chunks
    // w, w + T, w + 2T, ... Chunk boundaries are a pure function of
    // (begin, end, grain), so results never depend on T.
    for (int64_t c = worker_id; c < num_chunks; c += threads_) {
        const int64_t lo = jobBegin_ + c * jobGrain_;
        int64_t hi = lo + jobGrain_;
        if (hi > jobEnd_)
            hi = jobEnd_;
        (*jobFn_)(lo, hi);
    }
}

void
ThreadPool::workerLoop(int worker_id)
{
    t_inWorker = true;
    obs::setThreadTrack(worker_id, "pool worker");
    uint64_t seen_epoch = 0;
    while (true) {
        int64_t num_chunks = 0;
        bool have_job = false;
        Workspace *job_ws = nullptr;
        PendingTask task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return shutdown_ || jobEpoch_ != seen_epoch ||
                       taskCount_ > 0;
            });
            if (shutdown_)
                return;
            if (jobEpoch_ != seen_epoch) {
                // A parallelFor job outranks queued tasks: its
                // caller blocks until every worker checked in.
                seen_epoch = jobEpoch_;
                num_chunks = jobChunks_;
                job_ws = jobWs_;
                have_job = true;
            } else {
                task = popTask();
            }
        }
        if (have_job) {
            // Mirror the job caller's workspace scope so tensors
            // built inside chunk bodies land in the caller's arena.
            Workspace *saved = exchangeCurrentWorkspaceSlot(job_ws);
            {
                obs::ScopedSpan span("runtime", "chunks");
                runChunks(worker_id, num_chunks);
            }
            exchangeCurrentWorkspaceSlot(saved);
            std::lock_guard<std::mutex> lock(mutex_);
            if (--workersBusy_ == 0)
                done_.notify_one();
        } else {
            Workspace *saved = exchangeCurrentWorkspaceSlot(task.ws);
            {
                obs::ScopedSpan span("runtime", "task");
                task.fn();
            }
            exchangeCurrentWorkspaceSlot(saved);
            finishTask(*task.group);
        }
    }
}

void
ThreadPool::finishTask(TaskGroup &group)
{
    std::lock_guard<std::mutex> lock(group.mutex_);
    if (--group.pending_ == 0)
        group.done_.notify_all();
}

void
ThreadPool::submit(TaskGroup &group, std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> glock(group.mutex_);
        ++group.submitted_;
    }
    if (obs::metricsEnabled()) {
        static obs::Counter &submits =
            obs::MetricsRegistry::instance().counter(
                "runtime.tasks.submitted");
        submits.add(1);
    }
    if (threads_ == 1) {
        // Serial pool: no workers exist, run inline right here. The
        // task body still sees inParallelRegion() so its nested
        // parallel regions decompose identically to pooled runs.
        const bool saved = t_inWorker;
        t_inWorker = true;
        {
            obs::ScopedSpan span("runtime", "task");
            fn();
        }
        t_inWorker = saved;
        return;
    }
    {
        std::lock_guard<std::mutex> glock(group.mutex_);
        ++group.pending_;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pushTask(PendingTask{std::move(fn), &group, t_workspace});
    }
    wake_.notify_one();
}

bool
ThreadPool::runOneTask()
{
    PendingTask task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (taskCount_ == 0)
            return false;
        task = popTask();
    }
    const bool saved = t_inWorker;
    t_inWorker = true;
    Workspace *saved_ws = exchangeCurrentWorkspaceSlot(task.ws);
    {
        obs::ScopedSpan span("runtime", "task");
        task.fn();
    }
    exchangeCurrentWorkspaceSlot(saved_ws);
    t_inWorker = saved;
    finishTask(*task.group);
    return true;
}

void
TaskGroup::run(std::function<void()> fn)
{
    ThreadPool::instance().submit(*this, std::move(fn));
}

void
TaskGroup::wait()
{
    ThreadPool &pool = ThreadPool::instance();
    while (pool.runOneTask()) {
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return pending_ == 0; });
}

int64_t
TaskGroup::submitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return submitted_;
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t grain,
                        const RangeFn &fn)
{
    OPTIMUS_ASSERT(grain >= 1);
    if (end <= begin)
        return;

    if (obs::metricsEnabled()) {
        static obs::Counter &calls =
            obs::MetricsRegistry::instance().counter(
                "runtime.parallelFor.calls");
        calls.add(1);
    }

    // Serial pool, a nested call from a worker, or a range that
    // cannot fill more than one chunk: run inline. The chunk
    // decomposition is irrelevant to plain loops (only reductions
    // observe it, and parallelReduceSum chunks explicitly).
    const int64_t num_chunks = chunkCount(begin, end, grain);
    if (threads_ == 1 || t_inWorker || num_chunks == 1) {
        fn(begin, end);
        return;
    }

    // Only top-level pooled jobs get a span: nested and serial
    // calls take the inline path above, so traces stay readable.
    obs::ScopedSpan span("runtime", "parallelFor");

    std::lock_guard<std::mutex> run_lock(runMutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobFn_ = &fn;
        jobWs_ = t_workspace;
        jobBegin_ = begin;
        jobEnd_ = end;
        jobGrain_ = grain;
        jobChunks_ = num_chunks;
        workersBusy_ = threads_ - 1;
        ++jobEpoch_;
    }
    wake_.notify_all();

    // The caller participates as worker 0.
    t_inWorker = true;
    runChunks(0, num_chunks);
    t_inWorker = false;

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return workersBusy_ == 0; });
}

double
ThreadPool::parallelReduceSum(int64_t begin, int64_t end, int64_t grain,
                              const RangeSumFn &fn)
{
    OPTIMUS_ASSERT(grain >= 1);
    if (end <= begin)
        return 0.0;

    const int64_t num_chunks = chunkCount(begin, end, grain);
    // Partials live on the stack for every realistic chunk count; a
    // huge reduction falls back to a thread-local buffer whose
    // capacity ratchets during warmup. Either way the steady-state
    // step makes no heap call here.
    constexpr int64_t kStackPartials = 512;
    double stack_partial[kStackPartials];
    thread_local std::vector<double> t_partials;
    thread_local bool t_partialsBusy = false;
    double *partial = stack_partial;
    std::vector<double> nested_partial;
    bool own_tls = false;
    if (num_chunks > kStackPartials) {
        if (!t_partialsBusy) {
            // optlint:coldalloc — warmup capacity ratchet.
            if (static_cast<int64_t>(t_partials.size()) < num_chunks)
                t_partials.resize(num_chunks);
            partial = t_partials.data();
            t_partialsBusy = true;
            own_tls = true;
        } else {
            // A nested huge reduction on the same thread must not
            // resize the buffer the outer one is using.
            nested_partial.resize(num_chunks);
            partial = nested_partial.data();
        }
    }
    // Same chunking whether this runs inline or on the pool, so the
    // final left-to-right combine is thread-count-invariant.
    parallelFor(0, num_chunks, 1, [&](int64_t c0, int64_t c1) {
        for (int64_t c = c0; c < c1; ++c) {
            const int64_t lo = begin + c * grain;
            const int64_t hi = lo + grain < end ? lo + grain : end;
            partial[c] = fn(lo, hi);
        }
    });
    double total = 0.0;
    for (int64_t c = 0; c < num_chunks; ++c)
        total += partial[c];
    if (own_tls)
        t_partialsBusy = false;
    return total;
}

SerialRegion::SerialRegion() : saved_(t_inWorker)
{
    t_inWorker = true;
}

SerialRegion::~SerialRegion()
{
    t_inWorker = saved_;
}

void
parallelFor(int64_t begin, int64_t end, int64_t grain,
            const RangeFn &fn)
{
    ThreadPool::instance().parallelFor(begin, end, grain, fn);
}

double
parallelReduceSum(int64_t begin, int64_t end, int64_t grain,
                  const RangeSumFn &fn)
{
    return ThreadPool::instance().parallelReduceSum(begin, end, grain,
                                                    fn);
}

int
runtimeThreads()
{
    return ThreadPool::instance().threads();
}

} // namespace optimus
