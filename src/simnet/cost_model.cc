#include "simnet/cost_model.hh"

#include "util/logging.hh"

namespace optimus
{

double
p2pTime(double bytes, const LinkSpec &link)
{
    OPTIMUS_ASSERT(bytes >= 0.0);
    return link.latency + bytes / link.bandwidth;
}

double
ringAllReduceTraffic(double bytes, int ranks)
{
    OPTIMUS_ASSERT(ranks >= 1);
    if (ranks == 1)
        return 0.0;
    return 2.0 * bytes * (ranks - 1) / ranks;
}

double
ringAllReduceTime(double bytes, int ranks, const LinkSpec &link)
{
    OPTIMUS_ASSERT(ranks >= 1);
    if (ranks == 1)
        return 0.0;
    const int steps = 2 * (ranks - 1);
    return steps * link.latency +
           ringAllReduceTraffic(bytes, ranks) / link.bandwidth;
}

double
embSyncTrafficBaseline(double table_bytes, int dp_ways)
{
    OPTIMUS_ASSERT(dp_ways >= 1);
    return ringAllReduceTraffic(table_bytes, dp_ways) +
           ringAllReduceTraffic(table_bytes, 2);
}

double
embSyncTrafficFused(double table_bytes, int dp_ways)
{
    OPTIMUS_ASSERT(dp_ways >= 1);
    return ringAllReduceTraffic(table_bytes, 2 * dp_ways);
}

} // namespace optimus
