/**
 * @file
 * Alpha-beta communication cost models for the interconnects in the
 * paper's cluster (Table 1): NVLink intra-node for tensor
 * parallelism, InfiniBand HDR inter-node for pipeline and data
 * parallelism. Collective costs follow Thakur et al. (the paper's
 * [72]): a ring all-reduce moves 2V(R-1)/R bytes per rank.
 */

#ifndef OPTIMUS_SIMNET_COST_MODEL_HH
#define OPTIMUS_SIMNET_COST_MODEL_HH

#include <cstdint>

namespace optimus
{

/** One link class: achievable bandwidth and per-message latency. */
struct LinkSpec
{
    /** Achievable bytes per second (line rate x efficiency). */
    double bandwidth = 25e9;
    /** Per-message latency in seconds. */
    double latency = 5e-6;
};

/** Point-to-point transfer time for @p bytes over @p link. */
double p2pTime(double bytes, const LinkSpec &link);

/**
 * Per-rank traffic of a ring all-reduce of @p bytes over @p ranks:
 * 2V(R-1)/R (reduce-scatter + all-gather). Zero for a single rank.
 */
double ringAllReduceTraffic(double bytes, int ranks);

/**
 * Ring all-reduce completion time: 2(R-1) steps of V/R bytes, each
 * paying the link latency.
 */
double ringAllReduceTime(double bytes, int ranks,
                         const LinkSpec &link);

/**
 * Embedding-synchronization cost per Eq. 15 of the paper: the
 * baseline pays a D-rank all-reduce plus a 2-rank all-reduce of the
 * same table, total traffic V(3D-2)/D.
 */
double embSyncTrafficBaseline(double table_bytes, int dp_ways);

/**
 * Fused embedding-synchronization traffic per Eq. 16: one 2D-rank
 * all-reduce, total V(2D-1)/D.
 */
double embSyncTrafficFused(double table_bytes, int dp_ways);

/** The two link classes of a Megatron-style cluster. */
struct Interconnect
{
    LinkSpec intraNode; ///< NVLink (tensor parallelism)
    LinkSpec interNode; ///< InfiniBand (pipeline/data parallelism)
};

} // namespace optimus

#endif // OPTIMUS_SIMNET_COST_MODEL_HH
