#include "comm/transport.hh"

#include <algorithm>
#include <array>
#include <string>
#include <tuple>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/runtime.hh"
#include "simnet/cost_model.hh"
#include "util/logging.hh"

namespace optimus
{

namespace
{

/**
 * Element grain of the collective combine kernel. Fixed (never
 * derived from the thread count) so the chunk grid is a pure
 * function of the group layout, per the runtime's determinism
 * contract; same value the parallel/ kernels historically used.
 */
constexpr int64_t kCombineGrain = 4096;

/** Comparable projection of a CompressorSpec for commEventLess. */
std::tuple<int, int, double, uint64_t>
specKey(const CompressorSpec &spec)
{
    return {static_cast<int>(spec.kind), spec.rank, spec.topkFraction,
            spec.seed};
}

std::tuple<int64_t, int, int, int, int, int64_t, int64_t, int, int,
           int, std::tuple<int, int, double, uint64_t>>
eventKey(const CommEvent &e)
{
    return {e.iteration,
            static_cast<int>(e.phase),
            static_cast<int>(e.verb),
            e.ranks,
            e.groups,
            e.exactBytes,
            e.wireBytes,
            e.src,
            e.dst,
            e.replica,
            specKey(e.compressor)};
}

bool
eventSelected(const CommEvent &e, CommPhase phase, int64_t iteration)
{
    return e.phase == phase &&
           (iteration < 0 || e.iteration == iteration);
}

/**
 * Mean/sum all-reduce over one segmented group. Chunks are cut from
 * flat coordinates (grain-fixed, segment-agnostic); each element
 * accumulates its per-rank values in rank order in double and the
 * scaled float result is written back to every rank — the exact
 * arithmetic of the legacy parallel/ combine() and bucket kernels,
 * so results are bitwise identical to them at any OPTIMUS_THREADS.
 */
void
combineGroup(const CommGroup &group, ReduceOp op)
{
    OPTIMUS_ASSERT(group.ranks >= 1 && !group.segLens.empty());
    OPTIMUS_ASSERT(group.segOffsets.size() == group.segLens.size());
    const int ranks = group.ranks;
    const double scale =
        op == ReduceOp::Mean ? 1.0 / static_cast<double>(ranks) : 1.0;
    const auto &offsets = group.segOffsets;
    const size_t segments = offsets.size();

    parallelFor(0, group.totalElems, kCombineGrain,
                [&](int64_t lo, int64_t hi) {
                    size_t e = static_cast<size_t>(
                                   std::upper_bound(offsets.begin(),
                                                    offsets.end(),
                                                    lo) -
                                   offsets.begin()) -
                               1;
                    int64_t pos = lo;
                    while (pos < hi) {
                        const int64_t seg_end =
                            e + 1 < segments ? offsets[e + 1]
                                             : group.totalElems;
                        const int64_t stop =
                            seg_end < hi ? seg_end : hi;
                        const int64_t base = pos - offsets[e];
                        const auto &ptrs = group.segPtrs[e];
                        for (int64_t i = pos; i < stop; ++i) {
                            const int64_t k = base + (i - pos);
                            double acc = 0.0;
                            for (int d = 0; d < ranks; ++d)
                                acc += ptrs[d][k];
                            const float v =
                                static_cast<float>(acc * scale);
                            for (int d = 0; d < ranks; ++d)
                                ptrs[d][k] = v;
                        }
                        pos = stop;
                        ++e;
                    }
                });
}

} // namespace

const char *
commVerbName(CommVerb verb)
{
    switch (verb) {
      case CommVerb::P2pSend:
        return "p2pSend";
      case CommVerb::AllReduce:
        return "allReduce";
      case CommVerb::AllReduceCompressed:
        return "allReduceCompressed";
      case CommVerb::Broadcast:
        return "broadcast";
    }
    return "?";
}

const char *
commPhaseName(CommPhase phase)
{
    switch (phase) {
      case CommPhase::InterStage:
        return "interStage";
      case CommPhase::DpReduce:
        return "dpReduce";
      case CommPhase::EmbSync:
        return "embSync";
      case CommPhase::Other:
        return "other";
    }
    return "?";
}

bool
commEventLess(const CommEvent &a, const CommEvent &b)
{
    return eventKey(a) < eventKey(b);
}

double
commEventTraffic(const CommEvent &event)
{
    switch (event.verb) {
      case CommVerb::P2pSend:
        return static_cast<double>(event.wireBytes);
      case CommVerb::AllReduce:
      case CommVerb::AllReduceCompressed:
        // Per-rank ring traffic of one group; every rank belongs to
        // exactly one of the event's concurrent groups, so the
        // per-rank figure is independent of the multiplicity.
        return ringAllReduceTraffic(
            static_cast<double>(event.wireBytes), event.ranks);
      case CommVerb::Broadcast:
        // Ring/allgather-style broadcast: V(R-1)/R per rank.
        return event.ranks <= 1
                   ? 0.0
                   : static_cast<double>(event.wireBytes) *
                         (event.ranks - 1) / event.ranks;
    }
    return 0.0;
}

void
CommGroup::finalize()
{
    OPTIMUS_ASSERT(segPtrs.size() == segLens.size());
    segOffsets.resize(segLens.size());
    totalElems = 0;
    for (size_t e = 0; e < segLens.size(); ++e) {
        OPTIMUS_ASSERT(segLens[e] >= 0);
        OPTIMUS_ASSERT(static_cast<int>(segPtrs[e].size()) == ranks);
        segOffsets[e] = totalElems;
        totalElems += segLens[e];
    }
}

// optlint:coldfn — layout build; hot callers (ensureGroup, the
// engines' bind) cache the result and rebuild only on rewiring.
CommGroup
CommGroup::fromTensors(const std::vector<Tensor *> &tensors)
{
    OPTIMUS_ASSERT(!tensors.empty());
    CommGroup group;
    group.ranks = static_cast<int>(tensors.size());
    group.segPtrs.emplace_back();
    for (Tensor *t : tensors) {
        OPTIMUS_ASSERT(t != nullptr &&
                       t->size() == tensors[0]->size());
        group.segPtrs[0].push_back(t->data());
    }
    group.segLens.push_back(tensors[0]->size());
    group.finalize();
    return group;
}

CommVolume
CommTrace::volume(CommPhase phase, int64_t iteration) const
{
    CommVolume total;
    for (const CommEvent &e : events_) {
        if (eventSelected(e, phase, iteration)) {
            total.exactBytes += e.exactBytes;
            total.wireBytes += e.wireBytes;
        }
    }
    return total;
}

int64_t
CommTrace::count(CommPhase phase, int64_t iteration) const
{
    int64_t n = 0;
    for (const CommEvent &e : events_) {
        if (eventSelected(e, phase, iteration))
            ++n;
    }
    return n;
}

double
CommTrace::trafficBytes(CommPhase phase, int64_t iteration) const
{
    // Canonical order: double addition is order-sensitive, and the
    // append order of a concurrent run is not deterministic.
    double total = 0.0;
    for (const CommEvent &e : sorted()) {
        if (eventSelected(e, phase, iteration))
            total += commEventTraffic(e);
    }
    return total;
}

std::vector<CommEvent>
CommTrace::sorted() const
{
    std::vector<CommEvent> copy(events_);
    std::sort(copy.begin(), copy.end(), commEventLess);
    return copy;
}

CommEvent
Transport::allReduceTensors(CommPhase phase,
                            const std::vector<Tensor *> &tensors,
                            ReduceOp op)
{
    return allReduce(phase, CommGroup::fromTensors(tensors), op);
}

CommEvent
InProcessTransport::p2pSend(CommPhase phase, int src, int dst,
                            int replica, int64_t exact_bytes,
                            int64_t wire_bytes,
                            const CompressorSpec &compressor)
{
    CommEvent event;
    event.iteration = iteration();
    event.phase = phase;
    event.verb = CommVerb::P2pSend;
    event.src = src;
    event.dst = dst;
    event.replica = replica;
    event.ranks = 2;
    event.exactBytes = exact_bytes;
    event.wireBytes = wire_bytes;
    event.compressor = compressor;
    return event;
}

CommEvent
InProcessTransport::allReduce(CommPhase phase, const CommGroup &group,
                              ReduceOp op)
{
    combineGroup(group, op);
    CommEvent event;
    event.iteration = iteration();
    event.phase = phase;
    event.verb = CommVerb::AllReduce;
    event.ranks = group.ranks;
    event.exactBytes =
        static_cast<int64_t>(sizeof(float)) * group.totalElems;
    event.wireBytes = event.exactBytes;
    return event;
}

CommEvent
InProcessTransport::allReduceGrouped(
    CommPhase phase, const std::vector<CommGroup> &groups,
    ReduceOp op)
{
    OPTIMUS_ASSERT(!groups.empty());
    // The groups are disjoint and concurrent on real hardware; in
    // process their kernels run one after another, exactly matching
    // the legacy successive combine() calls.
    for (const CommGroup &group : groups) {
        OPTIMUS_ASSERT(group.ranks == groups[0].ranks);
        OPTIMUS_ASSERT(group.totalElems == groups[0].totalElems);
        combineGroup(group, op);
    }
    CommEvent event;
    event.iteration = iteration();
    event.phase = phase;
    event.verb = CommVerb::AllReduce;
    event.ranks = groups[0].ranks;
    event.groups = static_cast<int>(groups.size());
    event.exactBytes =
        static_cast<int64_t>(sizeof(float)) * groups[0].totalElems;
    event.wireBytes = event.exactBytes;
    return event;
}

CommEvent
InProcessTransport::allReduceCompressed(
    CommPhase phase, DistributedPowerSgd &dps,
    const std::vector<const Tensor *> &inputs, Tensor &mean_output)
{
    OPTIMUS_ASSERT(!inputs.empty());
    const int64_t wire = dps.reduce(inputs, mean_output);
    CommEvent event;
    event.iteration = iteration();
    event.phase = phase;
    event.verb = CommVerb::AllReduceCompressed;
    event.ranks = dps.workers();
    event.exactBytes =
        static_cast<int64_t>(sizeof(float)) * inputs[0]->size();
    event.wireBytes = wire;
    event.compressor.kind = CompressorKind::PowerSgd;
    event.compressor.rank = dps.rank();
    return event;
}

CommEvent
InProcessTransport::broadcast(CommPhase phase, CommGroup &group)
{
    OPTIMUS_ASSERT(group.ranks >= 1);
    parallelFor(0, group.totalElems, kCombineGrain,
                [&](int64_t lo, int64_t hi) {
                    const auto &offsets = group.segOffsets;
                    size_t e = static_cast<size_t>(
                                   std::upper_bound(offsets.begin(),
                                                    offsets.end(),
                                                    lo) -
                                   offsets.begin()) -
                               1;
                    int64_t pos = lo;
                    while (pos < hi) {
                        const int64_t seg_end =
                            e + 1 < offsets.size()
                                ? offsets[e + 1]
                                : group.totalElems;
                        const int64_t stop =
                            seg_end < hi ? seg_end : hi;
                        const int64_t base = pos - offsets[e];
                        const auto &ptrs = group.segPtrs[e];
                        for (int64_t i = pos; i < stop; ++i) {
                            const int64_t k = base + (i - pos);
                            const float v = ptrs[0][k];
                            for (int d = 1; d < group.ranks; ++d)
                                ptrs[d][k] = v;
                        }
                        pos = stop;
                        ++e;
                    }
                });
    CommEvent event;
    event.iteration = iteration();
    event.phase = phase;
    event.verb = CommVerb::Broadcast;
    event.src = 0;
    event.ranks = group.ranks;
    event.exactBytes =
        static_cast<int64_t>(sizeof(float)) * group.totalElems;
    event.wireBytes = event.exactBytes;
    return event;
}

CommEvent
RecordingTransport::record(const CommEvent &event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // optlint:coldalloc — event recording is instrumentation-only.
    trace_.append(event);
    return event;
}

CommEvent
RecordingTransport::p2pSend(CommPhase phase, int src, int dst,
                            int replica, int64_t exact_bytes,
                            int64_t wire_bytes,
                            const CompressorSpec &compressor)
{
    return record(inner_.p2pSend(phase, src, dst, replica,
                                 exact_bytes, wire_bytes,
                                 compressor));
}

CommEvent
RecordingTransport::allReduce(CommPhase phase, const CommGroup &group,
                              ReduceOp op)
{
    return record(inner_.allReduce(phase, group, op));
}

CommEvent
RecordingTransport::allReduceGrouped(
    CommPhase phase, const std::vector<CommGroup> &groups,
    ReduceOp op)
{
    return record(inner_.allReduceGrouped(phase, groups, op));
}

CommEvent
RecordingTransport::allReduceCompressed(
    CommPhase phase, DistributedPowerSgd &dps,
    const std::vector<const Tensor *> &inputs, Tensor &mean_output)
{
    return record(
        inner_.allReduceCompressed(phase, dps, inputs, mean_output));
}

CommEvent
RecordingTransport::broadcast(CommPhase phase, CommGroup &group)
{
    return record(inner_.broadcast(phase, group));
}

namespace
{

/** Per-phase metrics handles, resolved once per phase: registry
 * references are stable, so caching them keeps the per-event fold
 * at three relaxed adds plus one histogram observe. */
struct PhaseMetrics
{
    obs::Counter *events;
    obs::Counter *exactBytes;
    obs::Counter *wireBytes;
};

// optlint:coldfn — the handle table is a function-local static
// built exactly once; steady-state calls are an array index.
PhaseMetrics &
phaseMetrics(CommPhase phase)
{
    static std::array<PhaseMetrics, 4> all = [] {
        std::array<PhaseMetrics, 4> built{};
        auto &registry = obs::MetricsRegistry::instance();
        for (int p = 0; p < 4; ++p) {
            const std::string prefix =
                std::string("comm.") +
                commPhaseName(static_cast<CommPhase>(p));
            built[p].events = &registry.counter(prefix + ".events");
            built[p].exactBytes =
                &registry.counter(prefix + ".exactBytes");
            built[p].wireBytes =
                &registry.counter(prefix + ".wireBytes");
        }
        return built;
    }();
    return all[static_cast<int>(phase)];
}

} // namespace

CommEvent
TracingTransport::note(const CommEvent &event, int64_t begin_ns)
{
    if (obs::metricsEnabled()) {
        PhaseMetrics &metrics = phaseMetrics(event.phase);
        metrics.events->add(1);
        metrics.exactBytes->add(event.exactBytes);
        metrics.wireBytes->add(event.wireBytes);
        static obs::MetricHistogram &wire_hist =
            obs::MetricsRegistry::instance().histogram(
                "comm.event.wireBytes");
        wire_hist.observe(event.wireBytes);
    }
    if (begin_ns != 0 && obs::tracingEnabled()) {
        obs::emitSpan(commPhaseName(event.phase),
                      commVerbName(event.verb), begin_ns, obs::nowNs(),
                      -1, "exactBytes", event.exactBytes, "wireBytes",
                      event.wireBytes);
        const int64_t total =
            wireTotal_.fetch_add(event.wireBytes,
                                 std::memory_order_relaxed) +
            event.wireBytes;
        obs::emitCounter("comm.wireBytes", total);
    }
    return event;
}

CommEvent
TracingTransport::p2pSend(CommPhase phase, int src, int dst,
                          int replica, int64_t exact_bytes,
                          int64_t wire_bytes,
                          const CompressorSpec &compressor)
{
    const int64_t t0 = obs::tracingEnabled() ? obs::nowNs() : 0;
    return note(inner_.p2pSend(phase, src, dst, replica, exact_bytes,
                               wire_bytes, compressor),
                t0);
}

CommEvent
TracingTransport::allReduce(CommPhase phase, const CommGroup &group,
                            ReduceOp op)
{
    const int64_t t0 = obs::tracingEnabled() ? obs::nowNs() : 0;
    return note(inner_.allReduce(phase, group, op), t0);
}

CommEvent
TracingTransport::allReduceGrouped(
    CommPhase phase, const std::vector<CommGroup> &groups,
    ReduceOp op)
{
    const int64_t t0 = obs::tracingEnabled() ? obs::nowNs() : 0;
    return note(inner_.allReduceGrouped(phase, groups, op), t0);
}

CommEvent
TracingTransport::allReduceCompressed(
    CommPhase phase, DistributedPowerSgd &dps,
    const std::vector<const Tensor *> &inputs, Tensor &mean_output)
{
    const int64_t t0 = obs::tracingEnabled() ? obs::nowNs() : 0;
    return note(
        inner_.allReduceCompressed(phase, dps, inputs, mean_output),
        t0);
}

CommEvent
TracingTransport::broadcast(CommPhase phase, CommGroup &group)
{
    const int64_t t0 = obs::tracingEnabled() ? obs::nowNs() : 0;
    return note(inner_.broadcast(phase, group), t0);
}

Transport &
defaultTransport()
{
    static InProcessTransport transport;
    return transport;
}

} // namespace optimus
