/**
 * @file
 * The communication transport layer: every byte the training engine
 * moves — inter-stage backward sends, data-parallel gradient
 * all-reduces (exact or PowerSGD-compressed), and the embedding
 * synchronization collectives — goes through one `Transport`
 * interface speaking the verbs the paper talks about: `p2pSend`,
 * `allReduce`, `allReduceCompressed`, `broadcast`.
 *
 * Each verb performs the data movement *and* returns a completed
 * `CommEvent` describing it (iteration, phase, kind, logical ranks,
 * exact vs on-wire bytes, compressor spec). Components never
 * hand-maintain byte counters: they fold returned events into
 * `CommVolume` views, so all byte math lives here and the counters
 * components expose are provably derived from the event stream.
 *
 * `InProcessTransport` owns the combine kernel the trainer has
 * always used (double accumulation in rank order over a fixed chunk
 * grain), so routing a component through the transport is bitwise
 * neutral. `RecordingTransport` decorates any transport and appends
 * every event to a per-run `CommTrace`, which the simnet/pipesim
 * bridge replays through the alpha-beta cost model
 * (pipesim/trace_replay.hh) — the quality pillar's real traffic
 * priced by the performance pillar's links.
 */

#ifndef OPTIMUS_COMM_TRANSPORT_HH
#define OPTIMUS_COMM_TRANSPORT_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "compress/powersgd.hh"
#include "tensor/tensor.hh"

namespace optimus
{

/** The verb set of the transport interface. */
enum class CommVerb
{
    P2pSend,
    AllReduce,
    AllReduceCompressed,
    Broadcast,
};

/** Which training phase issued an operation (trace category). */
enum class CommPhase
{
    InterStage, ///< backward activation-gradient sends (Section 5)
    DpReduce,   ///< data-parallel gradient all-reduce (Section 7)
    EmbSync,    ///< tied-embedding synchronization (Section 6)
    Other,      ///< uncategorized (library helpers, tests)
};

/** Reduction operator of an exact all-reduce. */
enum class ReduceOp
{
    Mean,
    Sum,
};

const char *commVerbName(CommVerb verb);
const char *commPhaseName(CommPhase phase);

/**
 * One completed communication operation. `exactBytes` is the
 * uncompressed logical message size V of one collective group (or
 * one p2p payload); `wireBytes` is what actually crossed the wire
 * for that group. `groups` counts concurrent disjoint groups
 * executing the same collective (e.g. the baseline embedding sync
 * averages the first-stage and last-stage tables at once: one event
 * with ranks = D, groups = 2) — per-rank cost formulas depend on
 * (V, ranks) only, which is what makes trace-summed traffic land
 * exactly on the paper's closed forms (Eq 15/16).
 */
struct CommEvent
{
    int64_t iteration = 0;
    CommPhase phase = CommPhase::Other;
    CommVerb verb = CommVerb::AllReduce;
    /** Logical sender / receiver rank of a p2p send (else -1). */
    int src = -1;
    int dst = -1;
    /** Data-parallel replica issuing a p2p send (else -1). */
    int replica = -1;
    /** Ranks participating in one collective group (p2p: 2). */
    int ranks = 1;
    /** Concurrent disjoint groups covered by this event. */
    int groups = 1;
    int64_t exactBytes = 0;
    int64_t wireBytes = 0;
    /** Compressor that produced wireBytes (kind None when exact). */
    CompressorSpec compressor{};
};

/**
 * Strict weak order over every event field: the canonical trace
 * order. Concurrent recording makes the append order run-dependent;
 * consumers that sum event-derived doubles (traffic, modeled time)
 * iterate in canonical order so their results are deterministic.
 */
bool commEventLess(const CommEvent &a, const CommEvent &b);

/**
 * Per-rank alpha-beta traffic of one event in bytes: ring
 * all-reduce traffic 2V(R-1)/R for collectives (computed by the
 * same simnet function the analytic formulas use, so trace-summed
 * and closed-form traffic agree bit for bit), V for a p2p payload,
 * and allgather-style V(R-1)/R for a broadcast.
 */
double commEventTraffic(const CommEvent &event);

/** Integer byte totals folded from events (order-independent). */
struct CommVolume
{
    int64_t exactBytes = 0;
    int64_t wireBytes = 0;

    void add(const CommEvent &event)
    {
        exactBytes += event.exactBytes;
        wireBytes += event.wireBytes;
    }

    void merge(const CommVolume &other)
    {
        exactBytes += other.exactBytes;
        wireBytes += other.wireBytes;
    }
};

/**
 * One collective group: @p ranks logical ranks, each holding the
 * same segmented flat float vector. `segPtrs[e][d]` is rank d's
 * storage for segment e (`segLens[e]` floats). A bucket of packed
 * parameters is one group with one segment per parameter; a plain
 * per-tensor collective is one group with a single segment.
 */
struct CommGroup
{
    /** segPtrs[segment][rank]. */
    std::vector<std::vector<float *>> segPtrs;
    std::vector<int64_t> segLens;
    int ranks = 0;
    /** Prefix offsets + total, filled by finalize(). */
    std::vector<int64_t> segOffsets;
    int64_t totalElems = 0;

    /** Compute segOffsets/totalElems; call after filling segments. */
    void finalize();

    /** Single-segment group: one tensor per rank. */
    static CommGroup fromTensors(const std::vector<Tensor *> &tensors);
};

/** Append-only event log of one run (see RecordingTransport). */
class CommTrace
{
  public:
    // optlint:coldalloc — trace recording is instrumentation; the
    // steady-state trainer runs on the non-recording transport.
    void append(const CommEvent &event) { events_.push_back(event); }

    const std::vector<CommEvent> &events() const { return events_; }
    size_t size() const { return events_.size(); }
    void clear() { events_.clear(); }

    /**
     * Integer byte totals of one phase (all iterations, or one when
     * @p iteration >= 0). Integer sums are order-independent, so
     * this is deterministic no matter how concurrent recording
     * interleaved the appends.
     */
    CommVolume volume(CommPhase phase, int64_t iteration = -1) const;

    /** Event count of one phase (same filtering as volume()). */
    int64_t count(CommPhase phase, int64_t iteration = -1) const;

    /**
     * Per-rank alpha-beta traffic of one phase, summed in canonical
     * event order (deterministic; see commEventLess).
     */
    double trafficBytes(CommPhase phase, int64_t iteration = -1) const;

    /** Copy of the events in canonical order. */
    std::vector<CommEvent> sorted() const;

  private:
    std::vector<CommEvent> events_;
};

/**
 * The transport interface. Verbs perform the movement and return
 * the completed event; implementations must keep the arithmetic of
 * collective reductions bitwise deterministic (accumulate in double
 * over ranks in rank order; chunk grids a pure function of the
 * group layout).
 */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Stamp subsequent events with @p iteration (call between
     *  iterations, outside parallel regions). */
    virtual void setIteration(int64_t iteration) = 0;

    /**
     * Point-to-point payload movement from logical rank @p src to
     * @p dst. In-process the payload already lives at the receiver,
     * so this verb is pure accounting: the caller reports the exact
     * and on-wire sizes (and the compressor that produced them).
     */
    virtual CommEvent p2pSend(CommPhase phase, int src, int dst,
                              int replica, int64_t exact_bytes,
                              int64_t wire_bytes,
                              const CompressorSpec &compressor) = 0;

    /** Exact all-reduce over one collective group. */
    virtual CommEvent allReduce(CommPhase phase, const CommGroup &group,
                                ReduceOp op) = 0;

    /**
     * Exact all-reduce over several concurrent disjoint groups of
     * identical geometry (same ranks, same element count), reported
     * as one event with the group multiplicity.
     */
    virtual CommEvent
    allReduceGrouped(CommPhase phase,
                     const std::vector<CommGroup> &groups,
                     ReduceOp op) = 0;

    /**
     * Compressed mean all-reduce via the distributed PowerSGD
     * protocol (the two low-rank all-reduce phases run inside
     * @p dps); wire bytes are the protocol's logical payload.
     */
    virtual CommEvent
    allReduceCompressed(CommPhase phase, DistributedPowerSgd &dps,
                        const std::vector<const Tensor *> &inputs,
                        Tensor &mean_output) = 0;

    /** Replicate rank 0's segments to every other rank. */
    virtual CommEvent broadcast(CommPhase phase, CommGroup &group) = 0;

    /** Convenience: exact all-reduce of one tensor per rank. */
    CommEvent allReduceTensors(CommPhase phase,
                               const std::vector<Tensor *> &tensors,
                               ReduceOp op);
};

/**
 * The in-process transport: reproduces the trainer's historical
 * behavior bitwise. The collective kernel combines each element's
 * per-rank values in rank order in double and writes the scaled
 * result back to every rank, over a fixed element grain
 * (kCombineGrain) so the chunk grid is a pure function of the group
 * layout — the exact arithmetic of the former parallel/ combine()
 * and bucket kernels.
 */
class InProcessTransport : public Transport
{
  public:
    void setIteration(int64_t iteration) override
    {
        iteration_.store(iteration, std::memory_order_relaxed);
    }

    CommEvent p2pSend(CommPhase phase, int src, int dst, int replica,
                      int64_t exact_bytes, int64_t wire_bytes,
                      const CompressorSpec &compressor) override;
    CommEvent allReduce(CommPhase phase, const CommGroup &group,
                        ReduceOp op) override;
    CommEvent allReduceGrouped(CommPhase phase,
                               const std::vector<CommGroup> &groups,
                               ReduceOp op) override;
    CommEvent
    allReduceCompressed(CommPhase phase, DistributedPowerSgd &dps,
                        const std::vector<const Tensor *> &inputs,
                        Tensor &mean_output) override;
    CommEvent broadcast(CommPhase phase, CommGroup &group) override;

  private:
    int64_t iteration() const
    {
        return iteration_.load(std::memory_order_relaxed);
    }

    /** Relaxed atomic: set between iterations, read inside
     *  concurrently-issued verbs (replica loop, bucket tasks). */
    std::atomic<int64_t> iteration_{0};
};

/**
 * Decorator that appends every completed event to a CommTrace.
 * Verbs are issued concurrently (the replica loop, overlapped
 * bucket tasks), so appends are mutex-serialized; the append order
 * is therefore run-dependent, which is why trace consumers use the
 * order-independent integer sums or the canonical sorted order.
 */
class RecordingTransport : public Transport
{
  public:
    explicit RecordingTransport(Transport &inner) : inner_(inner) {}

    const CommTrace &trace() const { return trace_; }
    void clearTrace() { trace_.clear(); }

    void setIteration(int64_t iteration) override
    {
        inner_.setIteration(iteration);
    }

    CommEvent p2pSend(CommPhase phase, int src, int dst, int replica,
                      int64_t exact_bytes, int64_t wire_bytes,
                      const CompressorSpec &compressor) override;
    CommEvent allReduce(CommPhase phase, const CommGroup &group,
                        ReduceOp op) override;
    CommEvent allReduceGrouped(CommPhase phase,
                               const std::vector<CommGroup> &groups,
                               ReduceOp op) override;
    CommEvent
    allReduceCompressed(CommPhase phase, DistributedPowerSgd &dps,
                        const std::vector<const Tensor *> &inputs,
                        Tensor &mean_output) override;
    CommEvent broadcast(CommPhase phase, CommGroup &group) override;

  private:
    CommEvent record(const CommEvent &event);

    Transport &inner_;
    CommTrace trace_;
    std::mutex mutex_;
};

/**
 * Observability decorator (src/obs): when tracing is enabled, every
 * completed event becomes a trace span (category = the phase name,
 * name = the verb name, args = exact/wire bytes) plus a sample on
 * the cumulative "comm.wireBytes" counter track; when metrics are
 * enabled, events fold into per-phase event/byte counters and a
 * wire-size histogram in the global MetricsRegistry. When both are
 * off a verb costs one extra virtual call and two relaxed loads, so
 * the trainer installs it unconditionally as the outermost
 * decorator. Pure observation: events and data movement pass
 * through bitwise unchanged.
 */
class TracingTransport : public Transport
{
  public:
    explicit TracingTransport(Transport &inner) : inner_(inner) {}

    void setIteration(int64_t iteration) override
    {
        inner_.setIteration(iteration);
    }

    CommEvent p2pSend(CommPhase phase, int src, int dst, int replica,
                      int64_t exact_bytes, int64_t wire_bytes,
                      const CompressorSpec &compressor) override;
    CommEvent allReduce(CommPhase phase, const CommGroup &group,
                        ReduceOp op) override;
    CommEvent allReduceGrouped(CommPhase phase,
                               const std::vector<CommGroup> &groups,
                               ReduceOp op) override;
    CommEvent
    allReduceCompressed(CommPhase phase, DistributedPowerSgd &dps,
                        const std::vector<const Tensor *> &inputs,
                        Tensor &mean_output) override;
    CommEvent broadcast(CommPhase phase, CommGroup &group) override;

  private:
    /** Emit span/counter/metrics for a completed event and return
     * it unchanged. begin_ns is 0 when tracing was off at entry. */
    CommEvent note(const CommEvent &event, int64_t begin_ns);

    Transport &inner_;
    /** Running on-wire total behind the counter track. */
    std::atomic<int64_t> wireTotal_{0};
};

/**
 * Process-wide InProcessTransport, the fallback for components
 * constructed without an explicit transport (unit tests, library
 * helpers). Never records.
 */
Transport &defaultTransport();

} // namespace optimus

#endif // OPTIMUS_COMM_TRANSPORT_HH
