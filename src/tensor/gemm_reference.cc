#include "tensor/matmul.hh"

#include <cstring>

namespace optimus
{

/**
 * The seed's naive i-k-j kernel, preserved verbatim as the testing
 * oracle and the benchmark baseline. It lives in its own translation
 * unit compiled with the project's portable baseline flags (not the
 * -march=native options the blocked kernel gets), so bench_gemm's
 * "naive" column keeps measuring the kernel the seed actually
 * shipped. The original data-dependent `if (av == 0.0f) continue;`
 * branch is gone: it defeated vectorization and was a net loss on
 * dense inputs.
 */
void
gemmReference(float *c, const float *a, const float *b, int64_t m,
              int64_t k, int64_t n, bool accumulate)
{
    if (!accumulate)
        std::memset(c, 0, sizeof(float) * m * n);
    for (int64_t i = 0; i < m; ++i) {
        const float *arow = a + i * k;
        float *crow = c + i * n;
        for (int64_t p = 0; p < k; ++p) {
            const float av = arow[p];
            const float *brow = b + p * n;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

} // namespace optimus
