/**
 * @file
 * GEMM kernels for 2D tensors. Four explicit entry points cover the
 * transpose combinations the NN stack and PowerSGD need; all
 * accumulate with `beta`-style semantics chosen by the caller
 * (overwrite vs. accumulate).
 *
 * All entry points route through a shared cache-blocked kernel
 * (MC/KC/NC tiling with packed B panels and a register-tile
 * micro-kernel) whose row panels run on the execution runtime's
 * thread pool (see runtime/runtime.hh). Transposed operands are
 * handled by packing strided panels — no full transposed() copy is
 * ever made. Results are bitwise reproducible for any
 * OPTIMUS_THREADS setting because the panel decomposition depends
 * only on the problem shape.
 */

#ifndef OPTIMUS_TENSOR_MATMUL_HH
#define OPTIMUS_TENSOR_MATMUL_HH

#include "tensor/tensor.hh"

namespace optimus
{

/**
 * C = A * B for 2D tensors; returns a new [A.rows, B.cols] tensor.
 * @pre A.cols == B.rows
 */
Tensor matmul(const Tensor &a, const Tensor &b);

/** C = A^T * B; returns [A.cols, B.cols]. */
Tensor matmulTN(const Tensor &a, const Tensor &b);

/** C = A * B^T; returns [A.rows, B.rows]. */
Tensor matmulNT(const Tensor &a, const Tensor &b);

/** C += A * B into an existing tensor. @pre shapes agree */
void matmulAcc(Tensor &c, const Tensor &a, const Tensor &b);

/** C += A^T * B. @pre shapes agree */
void matmulAccTN(Tensor &c, const Tensor &a, const Tensor &b);

/** C += A * B^T. @pre shapes agree */
void matmulAccNT(Tensor &c, const Tensor &a, const Tensor &b);

/**
 * Raw kernel: C[m x n] (+)= A[m x k] * B[k x n], row-major.
 * When @p accumulate is false, C is overwritten.
 */
void gemm(float *c, const float *a, const float *b, int64_t m,
          int64_t k, int64_t n, bool accumulate);

/**
 * Naive single-threaded i-k-j triple loop kept as the testing and
 * benchmarking oracle for the blocked kernel. Same contract as
 * gemm().
 */
void gemmReference(float *c, const float *a, const float *b,
                   int64_t m, int64_t k, int64_t n, bool accumulate);

} // namespace optimus

#endif // OPTIMUS_TENSOR_MATMUL_HH
