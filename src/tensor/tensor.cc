#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "tensor/arena.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace optimus
{

namespace
{

int64_t
shapeProduct(const ShapeVec &shape)
{
    int64_t product = 1;
    for (int64_t d : shape) {
        OPTIMUS_ASSERT(d >= 0);
        product *= d;
    }
    return product;
}

#ifdef OPTIMUS_BOUNDS_CHECK
/**
 * Checked builds enforce full shape agreement for elementwise ops,
 * not just element-count agreement — adding a [2, 8] into a [4, 4]
 * is almost certainly a plumbing bug even though the sizes match.
 */
void
checkSameShape(const Tensor &a, const Tensor &b, const char *op)
{
    if (a.shape() != b.shape())
        panic("Tensor::%s shape mismatch: %s vs %s", op,
              a.shapeString().c_str(), b.shapeString().c_str());
}
#define OPTIMUS_CHECK_SHAPE(a, b, op) checkSameShape((a), (b), (op))
#else
#define OPTIMUS_CHECK_SHAPE(a, b, op) ((void)0)
#endif

} // namespace

ShapeVec::ShapeVec(std::initializer_list<int64_t> dims)
{
    OPTIMUS_ASSERT(static_cast<int>(dims.size()) <= kMaxRank);
    for (int64_t d : dims)
        dims_[rank_++] = d;
}

ShapeVec::ShapeVec(const std::vector<int64_t> &dims)
{
    OPTIMUS_ASSERT(static_cast<int>(dims.size()) <= kMaxRank);
    for (int64_t d : dims)
        dims_[rank_++] = d;
}

void
ShapeVec::push_back(int64_t d)
{
    OPTIMUS_ASSERT(rank_ < kMaxRank);
    dims_[rank_++] = d;
}

bool
ShapeVec::operator==(const ShapeVec &other) const
{
    if (rank_ != other.rank_)
        return false;
    for (int i = 0; i < rank_; ++i) {
        if (dims_[i] != other.dims_[i])
            return false;
    }
    return true;
}

void
Tensor::allocateStorage(int64_t n)
{
    size_ = n;
    if (n == 0) {
        data_ = nullptr;
        cap_ = 0;
        ws_ = nullptr;
        return;
    }
    ws_ = currentWorkspace();
    if (ws_) {
        data_ = ws_->allocate(n, cap_);
        return;
    }
    // Heap path (no scope, or OPTIMUS_ARENA=0): 64-byte aligned like
    // the arena blocks, rounded up as aligned_alloc requires.
    const int64_t bytes =
        (n * int64_t(sizeof(float)) + 63) & ~int64_t(63);
    // optlint:coldalloc — counted by mem::heapAllocs; the alloc_gate
    // proves the step path never reaches this in steady state.
    data_ = static_cast<float *>(std::aligned_alloc(64, bytes));
    OPTIMUS_ASSERT(data_ != nullptr);
    cap_ = bytes / int64_t(sizeof(float));
    mem::noteHeapAlloc(bytes);
}

void
Tensor::releaseStorage()
{
    if (data_) {
        if (ws_)
            ws_->release(data_, cap_);
        else {
            std::free(data_);
            mem::noteHeapFree(cap_ * int64_t(sizeof(float)));
        }
    }
    data_ = nullptr;
    size_ = 0;
    cap_ = 0;
    ws_ = nullptr;
}

Tensor::Tensor() = default;

Tensor::Tensor(ShapeVec shape) : shape_(shape)
{
    allocateStorage(shapeProduct(shape_));
    if (size_ > 0)
        std::memset(data_, 0, size_ * sizeof(float));
}

Tensor::Tensor(const Tensor &other) : shape_(other.shape_)
{
    allocateStorage(other.size_);
    if (size_ > 0)
        std::memcpy(data_, other.data_, size_ * sizeof(float));
}

Tensor::Tensor(Tensor &&other) noexcept
    : shape_(other.shape_), data_(other.data_), size_(other.size_),
      cap_(other.cap_), ws_(other.ws_)
{
    other.shape_ = ShapeVec();
    other.data_ = nullptr;
    other.size_ = 0;
    other.cap_ = 0;
    other.ws_ = nullptr;
}

Tensor &
Tensor::operator=(const Tensor &other)
{
    if (this == &other)
        return *this;
    shape_ = other.shape_;
    // In-place reuse: the block already granted is large enough, so
    // keep it (this is the steady-state path for every persistent
    // tensor that is reassigned each step).
    if (other.size_ > cap_ || (other.size_ > 0 && data_ == nullptr)) {
        releaseStorage();
        allocateStorage(other.size_);
    } else {
        size_ = other.size_;
    }
    if (size_ > 0)
        std::memcpy(data_, other.data_, size_ * sizeof(float));
    return *this;
}

Tensor &
Tensor::operator=(Tensor &&other) noexcept
{
    if (this == &other)
        return *this;
    releaseStorage();
    shape_ = other.shape_;
    data_ = other.data_;
    size_ = other.size_;
    cap_ = other.cap_;
    ws_ = other.ws_;
    other.shape_ = ShapeVec();
    other.data_ = nullptr;
    other.size_ = 0;
    other.cap_ = 0;
    other.ws_ = nullptr;
    return *this;
}

Tensor::~Tensor()
{
    releaseStorage();
}

Tensor
Tensor::zeros(int64_t n)
{
    return Tensor({n});
}

Tensor
Tensor::zeros(int64_t rows, int64_t cols)
{
    return Tensor({rows, cols});
}

Tensor
Tensor::zeros(int64_t d0, int64_t d1, int64_t d2)
{
    return Tensor({d0, d1, d2});
}

Tensor
Tensor::full(ShapeVec shape, float value)
{
    Tensor t(shape);
    t.fill(value);
    return t;
}

Tensor
Tensor::randn(ShapeVec shape, Rng &rng, float mean, float stddev)
{
    Tensor t(shape);
    for (int64_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.normal(mean, stddev));
    return t;
}

Tensor
Tensor::randUniform(ShapeVec shape, Rng &rng, float lo, float hi)
{
    Tensor t(shape);
    for (int64_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

Tensor
Tensor::fromValues(ShapeVec shape, const std::vector<float> &values)
{
    OPTIMUS_ASSERT(shapeProduct(shape) ==
                   static_cast<int64_t>(values.size()));
    Tensor t(shape);
    if (t.size_ > 0)
        std::memcpy(t.data_, values.data(),
                    t.size_ * sizeof(float));
    return t;
}

[[noreturn]] void
Tensor::boundsFail(int64_t i) const
{
    panic("Tensor index %lld out of range [0, %lld) for shape %s",
          static_cast<long long>(i), static_cast<long long>(size()),
          shapeString().c_str());
}

int64_t
Tensor::dim(int d) const
{
    const int r = rank();
    if (d < 0)
        d += r;
    OPTIMUS_ASSERT(d >= 0 && d < r);
    return shape_[d];
}

int64_t
Tensor::rows() const
{
    OPTIMUS_ASSERT(rank() == 2);
    return shape_[0];
}

int64_t
Tensor::cols() const
{
    OPTIMUS_ASSERT(rank() == 2);
    return shape_[1];
}

float &
Tensor::at(int64_t r, int64_t c)
{
    OPTIMUS_ASSERT(rank() == 2);
    OPTIMUS_ASSERT(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[r * shape_[1] + c];
}

float
Tensor::at(int64_t r, int64_t c) const
{
    OPTIMUS_ASSERT(rank() == 2);
    OPTIMUS_ASSERT(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[r * shape_[1] + c];
}

Tensor
Tensor::reshaped(ShapeVec new_shape) const
{
    OPTIMUS_ASSERT(shapeProduct(new_shape) == size());
    Tensor t = *this;
    t.shape_ = new_shape;
    return t;
}

void
Tensor::fill(float value)
{
    std::fill(data_, data_ + size_, value);
}

void
Tensor::add(const Tensor &other)
{
    OPTIMUS_ASSERT(size() == other.size());
    OPTIMUS_CHECK_SHAPE(*this, other, "add");
    const float *src = other.data();
    float *dst = data();
    const int64_t n = size();
    for (int64_t i = 0; i < n; ++i)
        dst[i] += src[i];
}

void
Tensor::sub(const Tensor &other)
{
    OPTIMUS_ASSERT(size() == other.size());
    OPTIMUS_CHECK_SHAPE(*this, other, "sub");
    const float *src = other.data();
    float *dst = data();
    const int64_t n = size();
    for (int64_t i = 0; i < n; ++i)
        dst[i] -= src[i];
}

void
Tensor::scale(float s)
{
    float *dst = data_;
    const int64_t n = size_;
    for (int64_t i = 0; i < n; ++i)
        dst[i] *= s;
}

void
Tensor::addScaled(const Tensor &other, float alpha)
{
    OPTIMUS_ASSERT(size() == other.size());
    OPTIMUS_CHECK_SHAPE(*this, other, "addScaled");
    const float *src = other.data();
    float *dst = data();
    const int64_t n = size();
    for (int64_t i = 0; i < n; ++i)
        dst[i] += alpha * src[i];
}

void
Tensor::addProduct(const Tensor &a, const Tensor &b)
{
    OPTIMUS_ASSERT(size() == a.size() && size() == b.size());
    OPTIMUS_CHECK_SHAPE(*this, a, "addProduct");
    OPTIMUS_CHECK_SHAPE(*this, b, "addProduct");
    const float *pa = a.data();
    const float *pb = b.data();
    float *dst = data();
    const int64_t n = size();
    for (int64_t i = 0; i < n; ++i)
        dst[i] += pa[i] * pb[i];
}

double
Tensor::sum() const
{
    double total = 0.0;
    for (int64_t i = 0; i < size_; ++i)
        total += data_[i];
    return total;
}

float
Tensor::maxAbs() const
{
    float best = 0.0f;
    for (int64_t i = 0; i < size_; ++i) {
        const float a = std::fabs(data_[i]);
        if (a > best)
            best = a;
    }
    return best;
}

double
Tensor::norm() const
{
    double sum_sq = 0.0;
    for (int64_t i = 0; i < size_; ++i)
        sum_sq += static_cast<double>(data_[i]) * data_[i];
    return std::sqrt(sum_sq);
}

Tensor
Tensor::sliceRows(int64_t begin, int64_t end) const
{
    OPTIMUS_ASSERT(rank() == 2);
    OPTIMUS_ASSERT(begin >= 0 && begin <= end && end <= rows());
    const int64_t c = cols();
    Tensor out({end - begin, c});
    std::copy(data_ + begin * c, data_ + end * c, out.data());
    return out;
}

void
Tensor::setRows(int64_t row, const Tensor &src)
{
    OPTIMUS_ASSERT(rank() == 2 && src.rank() == 2);
    OPTIMUS_ASSERT(cols() == src.cols());
    OPTIMUS_ASSERT(row >= 0 && row + src.rows() <= rows());
    std::copy(src.data(), src.data() + src.size(),
              data_ + row * cols());
}

Tensor
Tensor::transposed() const
{
    OPTIMUS_ASSERT(rank() == 2);
    const int64_t r = rows(), c = cols();
    Tensor out({c, r});
    for (int64_t i = 0; i < r; ++i) {
        for (int64_t j = 0; j < c; ++j)
            out.data()[j * r + i] = data_[i * c + j];
    }
    return out;
}

bool
Tensor::allClose(const Tensor &other, float tol) const
{
    if (size() != other.size())
        return false;
    for (int64_t i = 0; i < size(); ++i) {
        if (std::fabs(data_[i] - other.data_[i]) > tol)
            return false;
    }
    return true;
}

// optlint:coldfn — diagnostic formatter; reached only from
// assertion-failure and logging paths, never the steady step.
std::string
Tensor::shapeString() const
{
    std::string s = "[";
    for (int i = 0; i < rank(); ++i) {
        if (i > 0)
            s += ", ";
        s += std::to_string(shape_[i]);
    }
    s += "]";
    return s;
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    Tensor c = a;
    c.add(b);
    return c;
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    Tensor c = a;
    c.sub(b);
    return c;
}

} // namespace optimus
