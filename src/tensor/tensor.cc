#include "tensor/tensor.hh"

#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/logging.hh"
#include "util/random.hh"

namespace optimus
{

namespace
{

int64_t
shapeProduct(const std::vector<int64_t> &shape)
{
    int64_t product = 1;
    for (int64_t d : shape) {
        OPTIMUS_ASSERT(d >= 0);
        product *= d;
    }
    return product;
}

#ifdef OPTIMUS_BOUNDS_CHECK
/**
 * Checked builds enforce full shape agreement for elementwise ops,
 * not just element-count agreement — adding a [2, 8] into a [4, 4]
 * is almost certainly a plumbing bug even though the sizes match.
 */
void
checkSameShape(const Tensor &a, const Tensor &b, const char *op)
{
    if (a.shape() != b.shape())
        panic("Tensor::%s shape mismatch: %s vs %s", op,
              a.shapeString().c_str(), b.shapeString().c_str());
}
#define OPTIMUS_CHECK_SHAPE(a, b, op) checkSameShape((a), (b), (op))
#else
#define OPTIMUS_CHECK_SHAPE(a, b, op) ((void)0)
#endif

} // namespace

Tensor::Tensor() = default;

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), data_(shapeProduct(shape_), 0.0f)
{
}

Tensor
Tensor::zeros(int64_t n)
{
    return Tensor({n});
}

Tensor
Tensor::zeros(int64_t rows, int64_t cols)
{
    return Tensor({rows, cols});
}

Tensor
Tensor::zeros(int64_t d0, int64_t d1, int64_t d2)
{
    return Tensor({d0, d1, d2});
}

Tensor
Tensor::full(std::vector<int64_t> shape, float value)
{
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor
Tensor::randn(std::vector<int64_t> shape, Rng &rng, float mean,
              float stddev)
{
    Tensor t(std::move(shape));
    for (int64_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.normal(mean, stddev));
    return t;
}

Tensor
Tensor::randUniform(std::vector<int64_t> shape, Rng &rng, float lo,
                    float hi)
{
    Tensor t(std::move(shape));
    for (int64_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

Tensor
Tensor::fromValues(std::vector<int64_t> shape, std::vector<float> values)
{
    OPTIMUS_ASSERT(shapeProduct(shape) ==
                   static_cast<int64_t>(values.size()));
    Tensor t;
    t.shape_ = std::move(shape);
    t.data_ = std::move(values);
    return t;
}

[[noreturn]] void
Tensor::boundsFail(int64_t i) const
{
    panic("Tensor index %lld out of range [0, %lld) for shape %s",
          static_cast<long long>(i), static_cast<long long>(size()),
          shapeString().c_str());
}

int64_t
Tensor::dim(int d) const
{
    const int r = rank();
    if (d < 0)
        d += r;
    OPTIMUS_ASSERT(d >= 0 && d < r);
    return shape_[d];
}

int64_t
Tensor::rows() const
{
    OPTIMUS_ASSERT(rank() == 2);
    return shape_[0];
}

int64_t
Tensor::cols() const
{
    OPTIMUS_ASSERT(rank() == 2);
    return shape_[1];
}

float &
Tensor::at(int64_t r, int64_t c)
{
    OPTIMUS_ASSERT(rank() == 2);
    OPTIMUS_ASSERT(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[r * shape_[1] + c];
}

float
Tensor::at(int64_t r, int64_t c) const
{
    OPTIMUS_ASSERT(rank() == 2);
    OPTIMUS_ASSERT(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[r * shape_[1] + c];
}

Tensor
Tensor::reshaped(std::vector<int64_t> new_shape) const
{
    OPTIMUS_ASSERT(shapeProduct(new_shape) == size());
    Tensor t = *this;
    t.shape_ = std::move(new_shape);
    return t;
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Tensor::add(const Tensor &other)
{
    OPTIMUS_ASSERT(size() == other.size());
    OPTIMUS_CHECK_SHAPE(*this, other, "add");
    const float *src = other.data();
    float *dst = data();
    const int64_t n = size();
    for (int64_t i = 0; i < n; ++i)
        dst[i] += src[i];
}

void
Tensor::sub(const Tensor &other)
{
    OPTIMUS_ASSERT(size() == other.size());
    OPTIMUS_CHECK_SHAPE(*this, other, "sub");
    const float *src = other.data();
    float *dst = data();
    const int64_t n = size();
    for (int64_t i = 0; i < n; ++i)
        dst[i] -= src[i];
}

void
Tensor::scale(float s)
{
    for (auto &v : data_)
        v *= s;
}

void
Tensor::addScaled(const Tensor &other, float alpha)
{
    OPTIMUS_ASSERT(size() == other.size());
    OPTIMUS_CHECK_SHAPE(*this, other, "addScaled");
    const float *src = other.data();
    float *dst = data();
    const int64_t n = size();
    for (int64_t i = 0; i < n; ++i)
        dst[i] += alpha * src[i];
}

void
Tensor::addProduct(const Tensor &a, const Tensor &b)
{
    OPTIMUS_ASSERT(size() == a.size() && size() == b.size());
    OPTIMUS_CHECK_SHAPE(*this, a, "addProduct");
    OPTIMUS_CHECK_SHAPE(*this, b, "addProduct");
    const float *pa = a.data();
    const float *pb = b.data();
    float *dst = data();
    const int64_t n = size();
    for (int64_t i = 0; i < n; ++i)
        dst[i] += pa[i] * pb[i];
}

double
Tensor::sum() const
{
    double total = 0.0;
    for (float v : data_)
        total += v;
    return total;
}

float
Tensor::maxAbs() const
{
    float best = 0.0f;
    for (float v : data_) {
        const float a = std::fabs(v);
        if (a > best)
            best = a;
    }
    return best;
}

double
Tensor::norm() const
{
    double sum_sq = 0.0;
    for (float v : data_)
        sum_sq += static_cast<double>(v) * v;
    return std::sqrt(sum_sq);
}

Tensor
Tensor::sliceRows(int64_t begin, int64_t end) const
{
    OPTIMUS_ASSERT(rank() == 2);
    OPTIMUS_ASSERT(begin >= 0 && begin <= end && end <= rows());
    const int64_t c = cols();
    Tensor out({end - begin, c});
    std::copy(data_.begin() + begin * c, data_.begin() + end * c,
              out.data());
    return out;
}

void
Tensor::setRows(int64_t row, const Tensor &src)
{
    OPTIMUS_ASSERT(rank() == 2 && src.rank() == 2);
    OPTIMUS_ASSERT(cols() == src.cols());
    OPTIMUS_ASSERT(row >= 0 && row + src.rows() <= rows());
    std::copy(src.data(), src.data() + src.size(),
              data_.begin() + row * cols());
}

Tensor
Tensor::transposed() const
{
    OPTIMUS_ASSERT(rank() == 2);
    const int64_t r = rows(), c = cols();
    Tensor out({c, r});
    for (int64_t i = 0; i < r; ++i) {
        for (int64_t j = 0; j < c; ++j)
            out.data()[j * r + i] = data_[i * c + j];
    }
    return out;
}

bool
Tensor::allClose(const Tensor &other, float tol) const
{
    if (size() != other.size())
        return false;
    for (int64_t i = 0; i < size(); ++i) {
        if (std::fabs(data_[i] - other.data_[i]) > tol)
            return false;
    }
    return true;
}

std::string
Tensor::shapeString() const
{
    std::string s = "[";
    for (int i = 0; i < rank(); ++i) {
        if (i > 0)
            s += ", ";
        s += std::to_string(shape_[i]);
    }
    s += "]";
    return s;
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    Tensor c = a;
    c.add(b);
    return c;
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    Tensor c = a;
    c.sub(b);
    return c;
}

} // namespace optimus
