/**
 * @file
 * Shared plumbing for the SIMD translation units (simd.cc and
 * gemm_kernels.cc): the x86 feature gate, the per-tier function
 * target attributes, and the horizontal-reduction helpers that fix
 * the intra-register lane-combination order.
 *
 * The kernels are compiled with per-function `target` attributes
 * instead of file-level `-mavx*` flags, so a fully portable build
 * (-DOPTIMUS_NATIVE=OFF, the CI configuration) still contains every
 * tier and the choice is made purely at runtime by simd::tier().
 *
 * Raw intrinsics are sanctioned ONLY in the files that include this
 * header (lint rule SIM01).
 */

#ifndef OPTIMUS_TENSOR_SIMD_INTERNAL_HH
#define OPTIMUS_TENSOR_SIMD_INTERNAL_HH

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define OPTIMUS_SIMD_X86 1
#else
#define OPTIMUS_SIMD_X86 0
#endif

#if OPTIMUS_SIMD_X86

#include <immintrin.h>

/** AVX2 kernel tier: 8-wide float, FMA, POPCNT for mask counts. */
#define OPTIMUS_TARGET_AVX2 __attribute__((target("avx2,fma,popcnt")))
/** AVX-512 kernel tier: foundation subset only (no DQ/BW/VL). */
#define OPTIMUS_TARGET_AVX512 __attribute__((target("avx512f,popcnt")))

namespace optimus
{
namespace simd
{

/**
 * The shared horizontal reduction: sum the double lanes of an
 * accumulator register pairwise, in one documented order. Every
 * reduction kernel funnels through these two helpers, so a tier's
 * result depends only on its chunk grid and lane count — never on
 * the thread count or any library reduction order.
 *
 * 4 lanes: (l0 + l1) + (l2 + l3).
 */
OPTIMUS_TARGET_AVX2 inline double
hsum4d(__m256d v)
{
    alignas(32) double l[4];
    _mm256_store_pd(l, v);
    return (l[0] + l[1]) + (l[2] + l[3]);
}

/** 8 lanes: ((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7)). */
OPTIMUS_TARGET_AVX512 inline double
hsum8d(__m512d v)
{
    alignas(64) double l[8];
    _mm512_store_pd(l, v);
    return ((l[0] + l[1]) + (l[2] + l[3])) +
           ((l[4] + l[5]) + (l[6] + l[7]));
}

} // namespace simd
} // namespace optimus

#endif // OPTIMUS_SIMD_X86

#endif // OPTIMUS_TENSOR_SIMD_INTERNAL_HH
