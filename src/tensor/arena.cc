#include "tensor/arena.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace optimus
{

namespace
{

/** Smallest class: one cache line of floats. */
constexpr int64_t kMinClassBytes = 64;
/** Classes kMinClassBytes << 0 .. << (kNumClasses-1): 64B .. 2GB. */
constexpr int kNumClasses = 26;
/** Default slab; classes larger than this get a dedicated slab. */
constexpr int64_t kSlabBytes = int64_t(1) << 20;

/** The thread's innermost scope (raw; gate applied on read). */
thread_local Workspace *t_currentWs = nullptr;

// Process-wide tallies — always on, so they are plain relaxed
// atomics here instead of obs::metrics counters (which sit behind
// the metricsEnabled() gate and may be reset by tests).
std::atomic<int64_t> g_heapAllocs{0};
std::atomic<int64_t> g_arenaHits{0};
std::atomic<int64_t> g_heapFallbacks{0};
std::atomic<int64_t> g_liveBytes{0};
std::atomic<int64_t> g_peakBytes{0};

int64_t
classBytes(int cls)
{
    return kMinClassBytes << cls;
}

} // namespace

int
Workspace::classOf(int64_t bytes)
{
    int cls = 0;
    while (classBytes(cls) < bytes)
        ++cls;
    OPTIMUS_ASSERT(cls < kNumClasses);
    return cls;
}

Workspace::Workspace(const char *name)
    : name_(name), freeHeads_(kNumClasses, nullptr)
{
    static_assert(kMinClassBytes >= sizeof(float *),
                  "free blocks must fit their intrusive link");
}

Workspace::~Workspace()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (stats_.outstanding != 0) {
        // Tensors still holding blocks would release into freed
        // memory; leaking the slabs is the survivable failure mode,
        // but it is always an ownership bug worth reporting.
        warn("workspace '%s' destroyed with %lld blocks outstanding",
             name_, static_cast<long long>(stats_.outstanding));
        return;
    }
    for (Slab &s : slabs_)
        std::free(s.base);
}

// The arena's own heap growth is warmup-only and audited
// (stats_.heapFallbacks / mem.heapAllocs); steady-state calls are
// served from free lists and bump carving. The runtime alloc_gate
// enforces what the static declaration asserts.
// optlint:coldfn — warmup-audited arena growth (see above).
float *
Workspace::allocate(int64_t min_elems, int64_t &cap_elems)
{
    const int64_t bytes =
        min_elems > 0 ? min_elems * int64_t(sizeof(float)) : 1;
    const int cls = classOf(bytes);
    const int64_t want = classBytes(cls);
    cap_elems = want / int64_t(sizeof(float));

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.outstanding;

    if (float *p = freeHeads_[cls]) {
        // Pop the intrusive LIFO head (same recycling order as the
        // old vector's pop_back).
        std::memcpy(&freeHeads_[cls], p, sizeof(float *));
        ++stats_.arenaHits;
        mem::noteArenaHit();
        return p;
    }

    // Carve from the slabs already acquired (still heap-free).
    for (; activeSlab_ < static_cast<int64_t>(slabs_.size());
         ++activeSlab_) {
        Slab &s = slabs_[activeSlab_];
        if (s.used + want <= s.cap) {
            float *p = reinterpret_cast<float *>(s.base + s.used);
            s.used += want;
            ++stats_.arenaHits;
            mem::noteArenaHit();
            return p;
        }
    }

    // Grow: one heap call, the event the steady-state contract
    // forbids. optlint:coldalloc — this is the audited warmup path
    // the workspace layer exists to confine.
    const int64_t slab_cap = want > kSlabBytes ? want : kSlabBytes;
    Slab s;
    s.base = static_cast<char *>(std::aligned_alloc(64, slab_cap));
    OPTIMUS_ASSERT(s.base != nullptr);
    s.cap = slab_cap;
    s.used = want;
    slabs_.push_back(s);
    activeSlab_ = static_cast<int64_t>(slabs_.size()) - 1;
    ++stats_.heapFallbacks;
    // optlint:allow(COM01) memory-footprint tally, not comm traffic.
    stats_.slabBytes += slab_cap;
    mem::noteFallback(slab_cap);
    return reinterpret_cast<float *>(s.base);
}

void
Workspace::release(float *p, int64_t cap_elems)
{
    const int cls = classOf(cap_elems * int64_t(sizeof(float)));
    std::lock_guard<std::mutex> lock(mutex_);
    OPTIMUS_ASSERT(stats_.outstanding > 0);
    --stats_.outstanding;
    // Intrusive push: the released block stores the old head in its
    // first bytes. No container, no possible allocation.
    std::memcpy(p, &freeHeads_[cls], sizeof(float *));
    freeHeads_[cls] = p;
}

bool
Workspace::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (stats_.outstanding != 0)
        return false;
    for (float *&head : freeHeads_)
        head = nullptr;
    for (Slab &s : slabs_)
        s.used = 0;
    activeSlab_ = 0;
    return true;
}

WorkspaceStats
Workspace::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

WorkspaceScope::WorkspaceScope(Workspace *ws) : saved_(t_currentWs)
{
    t_currentWs = ws;
}

WorkspaceScope::~WorkspaceScope()
{
    t_currentWs = saved_;
}

Workspace *
currentWorkspace()
{
    return arenaEnabled() ? t_currentWs : nullptr;
}

Workspace *
exchangeCurrentWorkspace(Workspace *ws)
{
    Workspace *prev = t_currentWs;
    t_currentWs = ws;
    return prev;
}

bool
arenaEnabled()
{
    static const bool enabled = [] {
        if (const char *env = std::getenv("OPTIMUS_ARENA")) {
            if (env[0] == '0' && env[1] == '\0')
                return false;
            if (env[0] != '1' || env[1] != '\0')
                warn("ignoring invalid OPTIMUS_ARENA='%s'", env);
        }
        return true;
    }();
    return enabled;
}

namespace mem
{

int64_t
heapAllocs()
{
    return g_heapAllocs.load(std::memory_order_relaxed);
}

int64_t
arenaHits()
{
    return g_arenaHits.load(std::memory_order_relaxed);
}

int64_t
heapFallbacks()
{
    return g_heapFallbacks.load(std::memory_order_relaxed);
}

int64_t
peakBytes()
{
    return g_peakBytes.load(std::memory_order_relaxed);
}

void
noteLive(int64_t delta_bytes)
{
    const int64_t live =
        g_liveBytes.fetch_add(delta_bytes,
                              std::memory_order_relaxed) +
        delta_bytes;
    int64_t peak = g_peakBytes.load(std::memory_order_relaxed);
    while (live > peak &&
           !g_peakBytes.compare_exchange_weak(
               peak, live, std::memory_order_relaxed)) {
    }
}

void
noteHeapAlloc(int64_t bytes)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    noteLive(bytes);
}

void
noteHeapFree(int64_t bytes)
{
    noteLive(-bytes);
}

void
noteArenaHit()
{
    g_arenaHits.fetch_add(1, std::memory_order_relaxed);
}

void
noteFallback(int64_t slab_bytes)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    g_heapFallbacks.fetch_add(1, std::memory_order_relaxed);
    noteLive(slab_bytes);
}

void
publishMetrics()
{
    if (obs::metricsEnabled()) {
        // Registry references are stable (resetValues() only zeroes
        // slots), so resolve the handles once: the name lookups
        // build std::string temporaries whose longest key exceeds
        // small-string capacity — a per-step heap allocation the
        // publish call itself must not make.
        struct Handles
        {
            obs::Gauge *hits;
            obs::Gauge *fallbacks;
            obs::Gauge *allocs;
            obs::Gauge *peak;
        };
        static Handles h = [] {
            obs::MetricsRegistry &reg =
                obs::MetricsRegistry::instance();
            return Handles{&reg.gauge("mem.arenaHits"),
                           &reg.gauge("mem.heapFallbacks"),
                           &reg.gauge("mem.heapAllocs"),
                           &reg.gauge("mem.peakBytes")};
        }();
        h.hits->set(arenaHits());
        h.fallbacks->set(heapFallbacks());
        h.allocs->set(heapAllocs());
        h.peak->set(peakBytes());
    }
    if (obs::tracingEnabled())
        obs::emitCounter("mem.heapAllocs", heapAllocs());
}

} // namespace mem

} // namespace optimus
