/**
 * @file
 * SIMD GEMM panel kernels behind the blocked driver in matmul.cc.
 *
 * The driver owns cache blocking, B packing, and the parallelFor
 * decomposition; a *panel kernel* computes one row range
 * [i0, i1) of C (+)= op(A) * Bpack for the current (jc, pc) block.
 * Each dispatch tier supplies a GemmKernel descriptor: its panel
 * function plus the register-tile column width the driver must pad
 * the packed-B rows to. The scalar panel lives in matmul.cc (it is
 * the pre-dispatch kernel, unchanged); the AVX2 and AVX-512 panels
 * live in gemm_kernels.cc — the only file besides simd.cc allowed
 * to use raw intrinsics (lint rule SIM01).
 *
 * Determinism: a panel kernel's row grouping, packing, and
 * accumulator tiling depend only on (i0, i1, ctx shape), and the
 * driver's chunk grid is a pure function of the problem shape, so
 * every tier is bitwise deterministic at any OPTIMUS_THREADS.
 */

#ifndef OPTIMUS_TENSOR_GEMM_KERNELS_HH
#define OPTIMUS_TENSOR_GEMM_KERNELS_HH

#include <cstdint>

namespace optimus
{

/**
 * Depth of one packed k block (the driver's KC). Panel kernels size
 * their on-stack packed-A scratch as rows * kGemmMaxKc, so the
 * driver must never hand them a ctx.kc above this.
 */
constexpr int64_t kGemmMaxKc = 256;

/** Per-(jc, pc) state shared by every row-panel task. */
struct GemmBlockCtx
{
    float *c;
    const float *a;
    int64_t m, k, n;
    bool transA;
    int64_t pc, kc, jc, nc;
    const float *bpack;
    int64_t ncPad;
};

/** Computes C rows [i0, i1) (+)= op(A) * Bpack for one block. */
using GemmPanelFn = void (*)(const GemmBlockCtx &ctx, int64_t i0,
                             int64_t i1);

/** One dispatch tier's GEMM entry. */
struct GemmKernel
{
    /** Tier name, matches simd::tierName. */
    const char *name;
    /** Register-tile column width; the driver pads packed-B rows to
     * a multiple of this (pad columns are zero and never stored). */
    int64_t panelWidth;
    /**
     * Row grain for the driver's parallelFor — a multiple of the
     * micro-kernel row count MR, so interior chunks never hit the
     * short-row tail path. Also the unit of the thread
     * decomposition, which stays a pure shape function.
     */
    int64_t rowGrain;
    /**
     * Column block (the driver's NC). The SIMD tiers use wide
     * blocks so each A row group is packed once per pc block and
     * the packed B panel is streamed from L2.
     */
    int64_t colBlock;
    /** Panel function; null on builds without this tier's ISA
     * (never reached — simd::tier() caps at Scalar there). */
    GemmPanelFn panel;
};

/** 6x16 ymm FMA panel kernel (AVX2 tier). */
const GemmKernel &gemmKernelAvx2();

/** 14x32 zmm FMA panel kernel (AVX-512 tier). */
const GemmKernel &gemmKernelAvx512();

} // namespace optimus

#endif // OPTIMUS_TENSOR_GEMM_KERNELS_HH
