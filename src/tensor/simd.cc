#include "tensor/simd.hh"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "tensor/simd_internal.hh"
#include "util/logging.hh"

/*
 * Per-tier vector primitives. Layout of this file:
 *
 *   1. tier detection / OPTIMUS_SIMD resolution / setTier
 *   2. Scalar kernels — verbatim the loops the compression code
 *      used before dispatch existed (bit-exact baseline)
 *   3. AVX2 kernels (8-wide, target attribute, no -mavx2 needed)
 *   4. AVX-512 kernels (16-wide, avx512f subset only)
 *   5. public dispatch wrappers
 *
 * Determinism: every reduction keeps a fixed number of double-lane
 * accumulators, combines adjacent accumulator pairs lanewise, and
 * funnels the final register through hsum4d/hsum8d
 * (simd_internal.hh), then appends the scalar tail in element order.
 * Nothing here depends on OPTIMUS_THREADS — callers parallelize over
 * shape-derived chunk grids and invoke these on each chunk.
 *
 * This translation unit is compiled with -ffp-contract=off (see
 * tensor/CMakeLists.txt) so the scalar loops and tails can never be
 * FMA-contracted; fused operations appear only where an explicit
 * intrinsic asks for them. That keeps the "lane-exact across tiers"
 * guarantees of simd.hh true in every build configuration.
 */

namespace optimus
{
namespace simd
{

// ----------------------------------------------------------------
// Tier detection and selection
// ----------------------------------------------------------------

namespace
{

Tier
detectCap()
{
#if OPTIMUS_SIMD_X86
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("popcnt"))
        return Tier::Avx512;
    if (__builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("fma") &&
        __builtin_cpu_supports("popcnt"))
        return Tier::Avx2;
#endif
    return Tier::Scalar;
}

/** Active tier; -1 until first resolution. */
std::atomic<int> g_tier{-1};

Tier
resolveFromEnv()
{
    const Tier best = cap();
    const char *env = std::getenv("OPTIMUS_SIMD");
    if (env == nullptr || *env == '\0')
        return best;
    Tier want;
    if (!parseTier(env, want))
    {
        warn("OPTIMUS_SIMD=%s is not scalar|avx2|avx512|auto; "
             "using %s",
             env, tierName(best));
        return best;
    }
    if (!supported(want))
    {
        warn("OPTIMUS_SIMD=%s not supported by this CPU; clamping "
             "to %s",
             env, tierName(best));
        return best;
    }
    return want;
}

} // namespace

Tier
cap()
{
    static const Tier t = detectCap();
    return t;
}

bool
supported(Tier t)
{
    return static_cast<int>(t) <= static_cast<int>(cap());
}

Tier
tier()
{
    int t = g_tier.load(std::memory_order_relaxed);
    if (t < 0)
    {
        const Tier resolved = resolveFromEnv();
        g_tier.store(static_cast<int>(resolved),
                     std::memory_order_relaxed);
        return resolved;
    }
    return static_cast<Tier>(t);
}

void
setTier(Tier t)
{
    if (!supported(t))
    {
        warn("setTier(%s) not supported by this CPU; clamping to %s",
             tierName(t), tierName(cap()));
        t = cap();
    }
    g_tier.store(static_cast<int>(t), std::memory_order_relaxed);
}

const char *
tierName(Tier t)
{
    switch (t)
    {
    case Tier::Avx512:
        return "avx512";
    case Tier::Avx2:
        return "avx2";
    case Tier::Scalar:
    default:
        return "scalar";
    }
}

bool
parseTier(const char *name, Tier &out)
{
    if (name == nullptr)
        return false;
    if (std::strcmp(name, "scalar") == 0)
        out = Tier::Scalar;
    else if (std::strcmp(name, "avx2") == 0)
        out = Tier::Avx2;
    else if (std::strcmp(name, "avx512") == 0)
        out = Tier::Avx512;
    else if (std::strcmp(name, "auto") == 0)
        out = cap();
    else
        return false;
    return true;
}

// ----------------------------------------------------------------
// Scalar kernels — the pre-dispatch loops, bit for bit
// ----------------------------------------------------------------

namespace
{

double
dotScalar(const float *x, const float *y, int64_t n)
{
    double s = 0.0;
    for (int64_t i = 0; i < n; ++i)
        s += static_cast<double>(x[i]) * y[i];
    return s;
}

void
subScaledScalar(float *y, const float *x, float a, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        y[i] -= a * x[i];
}

void
scaleScalar(float *x, float a, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        x[i] *= a;
}

void
absScalar(float *dst, const float *src, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        dst[i] = std::fabs(src[i]);
}

void
absDivScalar(float *dst, const float *src, float scale, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        dst[i] = std::fabs(src[i]) / scale;
}

void
signedSumsScalar(const float *src, int64_t n, double &pos_sum,
                 double &neg_sum, int64_t &pos_count,
                 int64_t &neg_count)
{
    double ps = 0.0;
    double ns = 0.0;
    int64_t pc = 0;
    int64_t nc = 0;
    for (int64_t i = 0; i < n; ++i)
    {
        if (src[i] >= 0.0f)
        {
            ps += static_cast<double>(src[i]);
            ++pc;
        }
        else
        {
            ns += static_cast<double>(src[i]);
            ++nc;
        }
    }
    pos_sum = ps;
    neg_sum = ns;
    pos_count = pc;
    neg_count = nc;
}

void
selectBySignScalar(float *dst, const float *src, float pos,
                   float neg, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        dst[i] = src[i] >= 0.0f ? pos : neg;
}

int64_t
keepAboveScalar(float *dst, const float *src, const float *mag,
                float thresh, int64_t n)
{
    int64_t kept = 0;
    for (int64_t i = 0; i < n; ++i)
    {
        if (mag[i] > thresh)
        {
            dst[i] = src[i];
            ++kept;
        }
    }
    return kept;
}

#if OPTIMUS_SIMD_X86

// ----------------------------------------------------------------
// AVX2 kernels (8 floats / 4 doubles per register)
// ----------------------------------------------------------------

OPTIMUS_TARGET_AVX2 double
dotAvx2(const float *x, const float *y, int64_t n)
{
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    __m256d acc2 = _mm256_setzero_pd();
    __m256d acc3 = _mm256_setzero_pd();
    int64_t i = 0;
    for (; i + 16 <= n; i += 16)
    {
        acc0 = _mm256_fmadd_pd(
            _mm256_cvtps_pd(_mm_loadu_ps(x + i)),
            _mm256_cvtps_pd(_mm_loadu_ps(y + i)), acc0);
        acc1 = _mm256_fmadd_pd(
            _mm256_cvtps_pd(_mm_loadu_ps(x + i + 4)),
            _mm256_cvtps_pd(_mm_loadu_ps(y + i + 4)), acc1);
        acc2 = _mm256_fmadd_pd(
            _mm256_cvtps_pd(_mm_loadu_ps(x + i + 8)),
            _mm256_cvtps_pd(_mm_loadu_ps(y + i + 8)), acc2);
        acc3 = _mm256_fmadd_pd(
            _mm256_cvtps_pd(_mm_loadu_ps(x + i + 12)),
            _mm256_cvtps_pd(_mm_loadu_ps(y + i + 12)), acc3);
    }
    double s = hsum4d(_mm256_add_pd(_mm256_add_pd(acc0, acc1),
                                    _mm256_add_pd(acc2, acc3)));
    for (; i < n; ++i)
        s += static_cast<double>(x[i]) * y[i];
    return s;
}

OPTIMUS_TARGET_AVX2 void
subScaledAvx2(float *y, const float *x, float a, int64_t n)
{
    const __m256 av = _mm256_set1_ps(a);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
    {
        const __m256 prod =
            _mm256_mul_ps(av, _mm256_loadu_ps(x + i));
        _mm256_storeu_ps(
            y + i, _mm256_sub_ps(_mm256_loadu_ps(y + i), prod));
    }
    for (; i < n; ++i)
        y[i] -= a * x[i];
}

OPTIMUS_TARGET_AVX2 void
scaleAvx2(float *x, float a, int64_t n)
{
    const __m256 av = _mm256_set1_ps(a);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(x + i,
                         _mm256_mul_ps(av, _mm256_loadu_ps(x + i)));
    for (; i < n; ++i)
        x[i] *= a;
}

/** Sign-bit clear mask — fabs as a bit operation, like the FPU. */
OPTIMUS_TARGET_AVX2 inline __m256
absMask256()
{
    return _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
}

OPTIMUS_TARGET_AVX2 void
absAvx2(float *dst, const float *src, int64_t n)
{
    const __m256 mask = absMask256();
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(
            dst + i, _mm256_and_ps(mask, _mm256_loadu_ps(src + i)));
    for (; i < n; ++i)
        dst[i] = std::fabs(src[i]);
}

OPTIMUS_TARGET_AVX2 void
absDivAvx2(float *dst, const float *src, float scale, int64_t n)
{
    const __m256 mask = absMask256();
    const __m256 sv = _mm256_set1_ps(scale);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
    {
        const __m256 av =
            _mm256_and_ps(mask, _mm256_loadu_ps(src + i));
        _mm256_storeu_ps(dst + i, _mm256_div_ps(av, sv));
    }
    for (; i < n; ++i)
        dst[i] = std::fabs(src[i]) / scale;
}

OPTIMUS_TARGET_AVX2 void
signedSumsAvx2(const float *src, int64_t n, double &pos_sum,
               double &neg_sum, int64_t &pos_count,
               int64_t &neg_count)
{
    const __m256 zero = _mm256_setzero_ps();
    __m256d pacc0 = _mm256_setzero_pd();
    __m256d pacc1 = _mm256_setzero_pd();
    __m256d nacc0 = _mm256_setzero_pd();
    __m256d nacc1 = _mm256_setzero_pd();
    int64_t pc = 0;
    int64_t nc = 0;
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
    {
        const __m256 v = _mm256_loadu_ps(src + i);
        const __m256 ge = _mm256_cmp_ps(v, zero, _CMP_GE_OQ);
        // Masked-out lanes become +0.0, the additive identity for
        // every value these accumulators can hold.
        const __m256 pos = _mm256_and_ps(ge, v);
        const __m256 neg = _mm256_andnot_ps(ge, v);
        pacc0 = _mm256_add_pd(
            pacc0, _mm256_cvtps_pd(_mm256_castps256_ps128(pos)));
        pacc1 = _mm256_add_pd(
            pacc1, _mm256_cvtps_pd(_mm256_extractf128_ps(pos, 1)));
        nacc0 = _mm256_add_pd(
            nacc0, _mm256_cvtps_pd(_mm256_castps256_ps128(neg)));
        nacc1 = _mm256_add_pd(
            nacc1, _mm256_cvtps_pd(_mm256_extractf128_ps(neg, 1)));
        const int bits = _mm256_movemask_ps(ge);
        const int64_t ones =
            _mm_popcnt_u32(static_cast<unsigned>(bits));
        pc += ones;
        nc += 8 - ones;
    }
    double ps = hsum4d(_mm256_add_pd(pacc0, pacc1));
    double ns = hsum4d(_mm256_add_pd(nacc0, nacc1));
    for (; i < n; ++i)
    {
        if (src[i] >= 0.0f)
        {
            ps += static_cast<double>(src[i]);
            ++pc;
        }
        else
        {
            ns += static_cast<double>(src[i]);
            ++nc;
        }
    }
    pos_sum = ps;
    neg_sum = ns;
    pos_count = pc;
    neg_count = nc;
}

OPTIMUS_TARGET_AVX2 void
selectBySignAvx2(float *dst, const float *src, float pos, float neg,
                 int64_t n)
{
    const __m256 zero = _mm256_setzero_ps();
    const __m256 pv = _mm256_set1_ps(pos);
    const __m256 nv = _mm256_set1_ps(neg);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
    {
        const __m256 ge = _mm256_cmp_ps(_mm256_loadu_ps(src + i),
                                        zero, _CMP_GE_OQ);
        _mm256_storeu_ps(dst + i, _mm256_blendv_ps(nv, pv, ge));
    }
    for (; i < n; ++i)
        dst[i] = src[i] >= 0.0f ? pos : neg;
}

OPTIMUS_TARGET_AVX2 int64_t
keepAboveAvx2(float *dst, const float *src, const float *mag,
              float thresh, int64_t n)
{
    const __m256 tv = _mm256_set1_ps(thresh);
    int64_t kept = 0;
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
    {
        const __m256 gt = _mm256_cmp_ps(_mm256_loadu_ps(mag + i),
                                        tv, _CMP_GT_OQ);
        const int bits = _mm256_movemask_ps(gt);
        if (bits == 0)
            continue;
        _mm256_maskstore_ps(dst + i, _mm256_castps_si256(gt),
                            _mm256_loadu_ps(src + i));
        kept += _mm_popcnt_u32(static_cast<unsigned>(bits));
    }
    for (; i < n; ++i)
    {
        if (mag[i] > thresh)
        {
            dst[i] = src[i];
            ++kept;
        }
    }
    return kept;
}

// ----------------------------------------------------------------
// AVX-512 kernels (16 floats / 8 doubles per register)
// ----------------------------------------------------------------

OPTIMUS_TARGET_AVX512 double
dotAvx512(const float *x, const float *y, int64_t n)
{
    __m512d acc0 = _mm512_setzero_pd();
    __m512d acc1 = _mm512_setzero_pd();
    __m512d acc2 = _mm512_setzero_pd();
    __m512d acc3 = _mm512_setzero_pd();
    int64_t i = 0;
    for (; i + 32 <= n; i += 32)
    {
        acc0 = _mm512_fmadd_pd(
            _mm512_cvtps_pd(_mm256_loadu_ps(x + i)),
            _mm512_cvtps_pd(_mm256_loadu_ps(y + i)), acc0);
        acc1 = _mm512_fmadd_pd(
            _mm512_cvtps_pd(_mm256_loadu_ps(x + i + 8)),
            _mm512_cvtps_pd(_mm256_loadu_ps(y + i + 8)), acc1);
        acc2 = _mm512_fmadd_pd(
            _mm512_cvtps_pd(_mm256_loadu_ps(x + i + 16)),
            _mm512_cvtps_pd(_mm256_loadu_ps(y + i + 16)), acc2);
        acc3 = _mm512_fmadd_pd(
            _mm512_cvtps_pd(_mm256_loadu_ps(x + i + 24)),
            _mm512_cvtps_pd(_mm256_loadu_ps(y + i + 24)), acc3);
    }
    double s = hsum8d(_mm512_add_pd(_mm512_add_pd(acc0, acc1),
                                    _mm512_add_pd(acc2, acc3)));
    for (; i < n; ++i)
        s += static_cast<double>(x[i]) * y[i];
    return s;
}

OPTIMUS_TARGET_AVX512 void
subScaledAvx512(float *y, const float *x, float a, int64_t n)
{
    const __m512 av = _mm512_set1_ps(a);
    int64_t i = 0;
    for (; i + 16 <= n; i += 16)
    {
        const __m512 prod =
            _mm512_mul_ps(av, _mm512_loadu_ps(x + i));
        _mm512_storeu_ps(
            y + i, _mm512_sub_ps(_mm512_loadu_ps(y + i), prod));
    }
    for (; i < n; ++i)
        y[i] -= a * x[i];
}

OPTIMUS_TARGET_AVX512 void
scaleAvx512(float *x, float a, int64_t n)
{
    const __m512 av = _mm512_set1_ps(a);
    int64_t i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(x + i,
                         _mm512_mul_ps(av, _mm512_loadu_ps(x + i)));
    for (; i < n; ++i)
        x[i] *= a;
}

OPTIMUS_TARGET_AVX512 void
absAvx512(float *dst, const float *src, int64_t n)
{
    int64_t i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(dst + i,
                         _mm512_abs_ps(_mm512_loadu_ps(src + i)));
    for (; i < n; ++i)
        dst[i] = std::fabs(src[i]);
}

OPTIMUS_TARGET_AVX512 void
absDivAvx512(float *dst, const float *src, float scale, int64_t n)
{
    const __m512 sv = _mm512_set1_ps(scale);
    int64_t i = 0;
    for (; i + 16 <= n; i += 16)
    {
        const __m512 av = _mm512_abs_ps(_mm512_loadu_ps(src + i));
        _mm512_storeu_ps(dst + i, _mm512_div_ps(av, sv));
    }
    for (; i < n; ++i)
        dst[i] = std::fabs(src[i]) / scale;
}

OPTIMUS_TARGET_AVX512 void
signedSumsAvx512(const float *src, int64_t n, double &pos_sum,
                 double &neg_sum, int64_t &pos_count,
                 int64_t &neg_count)
{
    const __m512 zero = _mm512_setzero_ps();
    __m512d pacc0 = _mm512_setzero_pd();
    __m512d pacc1 = _mm512_setzero_pd();
    __m512d nacc0 = _mm512_setzero_pd();
    __m512d nacc1 = _mm512_setzero_pd();
    int64_t pc = 0;
    int64_t nc = 0;
    int64_t i = 0;
    for (; i + 16 <= n; i += 16)
    {
        const __m512 v = _mm512_loadu_ps(src + i);
        const __mmask16 ge =
            _mm512_cmp_ps_mask(v, zero, _CMP_GE_OQ);
        const __m512 pos = _mm512_maskz_mov_ps(ge, v);
        const __m512 neg =
            _mm512_maskz_mov_ps(static_cast<__mmask16>(~ge), v);
        pacc0 = _mm512_add_pd(
            pacc0, _mm512_cvtps_pd(_mm512_castps512_ps256(pos)));
        pacc1 = _mm512_add_pd(
            pacc1, _mm512_cvtps_pd(_mm512_castps512_ps256(
                       _mm512_shuffle_f32x4(pos, pos, 0xee))));
        nacc0 = _mm512_add_pd(
            nacc0, _mm512_cvtps_pd(_mm512_castps512_ps256(neg)));
        nacc1 = _mm512_add_pd(
            nacc1, _mm512_cvtps_pd(_mm512_castps512_ps256(
                       _mm512_shuffle_f32x4(neg, neg, 0xee))));
        const int64_t ones =
            _mm_popcnt_u32(static_cast<unsigned short>(ge));
        pc += ones;
        nc += 16 - ones;
    }
    double ps = hsum8d(_mm512_add_pd(pacc0, pacc1));
    double ns = hsum8d(_mm512_add_pd(nacc0, nacc1));
    for (; i < n; ++i)
    {
        if (src[i] >= 0.0f)
        {
            ps += static_cast<double>(src[i]);
            ++pc;
        }
        else
        {
            ns += static_cast<double>(src[i]);
            ++nc;
        }
    }
    pos_sum = ps;
    neg_sum = ns;
    pos_count = pc;
    neg_count = nc;
}

OPTIMUS_TARGET_AVX512 void
selectBySignAvx512(float *dst, const float *src, float pos,
                   float neg, int64_t n)
{
    const __m512 zero = _mm512_setzero_ps();
    const __m512 pv = _mm512_set1_ps(pos);
    const __m512 nv = _mm512_set1_ps(neg);
    int64_t i = 0;
    for (; i + 16 <= n; i += 16)
    {
        const __mmask16 ge = _mm512_cmp_ps_mask(
            _mm512_loadu_ps(src + i), zero, _CMP_GE_OQ);
        _mm512_storeu_ps(dst + i, _mm512_mask_blend_ps(ge, nv, pv));
    }
    for (; i < n; ++i)
        dst[i] = src[i] >= 0.0f ? pos : neg;
}

OPTIMUS_TARGET_AVX512 int64_t
keepAboveAvx512(float *dst, const float *src, const float *mag,
                float thresh, int64_t n)
{
    const __m512 tv = _mm512_set1_ps(thresh);
    int64_t kept = 0;
    int64_t i = 0;
    for (; i + 16 <= n; i += 16)
    {
        const __mmask16 gt = _mm512_cmp_ps_mask(
            _mm512_loadu_ps(mag + i), tv, _CMP_GT_OQ);
        if (gt == 0)
            continue;
        _mm512_mask_storeu_ps(dst + i, gt,
                              _mm512_loadu_ps(src + i));
        kept += _mm_popcnt_u32(gt);
    }
    for (; i < n; ++i)
    {
        if (mag[i] > thresh)
        {
            dst[i] = src[i];
            ++kept;
        }
    }
    return kept;
}

#endif // OPTIMUS_SIMD_X86

// ----------------------------------------------------------------
// Strided kernels (portable). Each dot replica mirrors one tier's
// register/lane accumulation structure exactly: kRegs accumulator
// registers of kLanes double lanes each, filled round-robin over a
// kRegs*kLanes element block, registers combined lane-wise as
// (r0+r1)+(r2+r3), lanes combined by the hsum4d/hsum8d pairwise
// order, scalar tail in element order. Because a float*float
// product is exact in double, `acc += (double)x * y` is bit-equal
// to the vector kernels' fmadd — so each replica matches its tier's
// contiguous kernel bit for bit on the same element sequence.
// ----------------------------------------------------------------

double
dotStridedScalar(const float *x, int64_t xs, const float *y,
                 int64_t ys, int64_t n)
{
    double s = 0.0;
    for (int64_t i = 0; i < n; ++i)
        s += static_cast<double>(x[i * xs]) * y[i * ys];
    return s;
}

/** The AVX2 dot order: 4 registers x 4 double lanes, 16/block. */
double
dotStridedAvx2Order(const float *x, int64_t xs, const float *y,
                    int64_t ys, int64_t n)
{
    double acc[4][4] = {};
    int64_t i = 0;
    for (; i + 16 <= n; i += 16)
    {
        for (int r = 0; r < 4; ++r)
            for (int l = 0; l < 4; ++l)
            {
                const int64_t e = i + 4 * r + l;
                acc[r][l] += static_cast<double>(x[e * xs]) *
                             y[e * ys];
            }
    }
    double lane[4];
    for (int l = 0; l < 4; ++l)
        lane[l] = (acc[0][l] + acc[1][l]) + (acc[2][l] + acc[3][l]);
    double s = (lane[0] + lane[1]) + (lane[2] + lane[3]);
    for (; i < n; ++i)
        s += static_cast<double>(x[i * xs]) * y[i * ys];
    return s;
}

/** The AVX-512 dot order: 4 registers x 8 double lanes, 32/block. */
double
dotStridedAvx512Order(const float *x, int64_t xs, const float *y,
                      int64_t ys, int64_t n)
{
    double acc[4][8] = {};
    int64_t i = 0;
    for (; i + 32 <= n; i += 32)
    {
        for (int r = 0; r < 4; ++r)
            for (int l = 0; l < 8; ++l)
            {
                const int64_t e = i + 8 * r + l;
                acc[r][l] += static_cast<double>(x[e * xs]) *
                             y[e * ys];
            }
    }
    double lane[8];
    for (int l = 0; l < 8; ++l)
        lane[l] = (acc[0][l] + acc[1][l]) + (acc[2][l] + acc[3][l]);
    double s = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
               ((lane[4] + lane[5]) + (lane[6] + lane[7]));
    for (; i < n; ++i)
        s += static_cast<double>(x[i * xs]) * y[i * ys];
    return s;
}

} // namespace

// ----------------------------------------------------------------
// Public dispatch wrappers
// ----------------------------------------------------------------

double
dotDouble(Tier t, const float *x, const float *y, int64_t n)
{
#if OPTIMUS_SIMD_X86
    if (t == Tier::Avx512)
        return dotAvx512(x, y, n);
    if (t == Tier::Avx2)
        return dotAvx2(x, y, n);
#endif
    (void)t;
    return dotScalar(x, y, n);
}

void
subScaled(Tier t, float *y, const float *x, float a, int64_t n)
{
#if OPTIMUS_SIMD_X86
    if (t == Tier::Avx512)
        return subScaledAvx512(y, x, a, n);
    if (t == Tier::Avx2)
        return subScaledAvx2(y, x, a, n);
#endif
    (void)t;
    subScaledScalar(y, x, a, n);
}

void
scaleInPlace(Tier t, float *x, float a, int64_t n)
{
#if OPTIMUS_SIMD_X86
    if (t == Tier::Avx512)
        return scaleAvx512(x, a, n);
    if (t == Tier::Avx2)
        return scaleAvx2(x, a, n);
#endif
    (void)t;
    scaleScalar(x, a, n);
}

void
absVals(Tier t, float *dst, const float *src, int64_t n)
{
#if OPTIMUS_SIMD_X86
    if (t == Tier::Avx512)
        return absAvx512(dst, src, n);
    if (t == Tier::Avx2)
        return absAvx2(dst, src, n);
#endif
    (void)t;
    absScalar(dst, src, n);
}

void
absDiv(Tier t, float *dst, const float *src, float scale, int64_t n)
{
#if OPTIMUS_SIMD_X86
    if (t == Tier::Avx512)
        return absDivAvx512(dst, src, scale, n);
    if (t == Tier::Avx2)
        return absDivAvx2(dst, src, scale, n);
#endif
    (void)t;
    absDivScalar(dst, src, scale, n);
}

void
signedSums(Tier t, const float *src, int64_t n, double &pos_sum,
           double &neg_sum, int64_t &pos_count, int64_t &neg_count)
{
#if OPTIMUS_SIMD_X86
    if (t == Tier::Avx512)
        return signedSumsAvx512(src, n, pos_sum, neg_sum, pos_count,
                                neg_count);
    if (t == Tier::Avx2)
        return signedSumsAvx2(src, n, pos_sum, neg_sum, pos_count,
                              neg_count);
#endif
    (void)t;
    signedSumsScalar(src, n, pos_sum, neg_sum, pos_count,
                     neg_count);
}

void
selectBySign(Tier t, float *dst, const float *src, float pos,
             float neg, int64_t n)
{
#if OPTIMUS_SIMD_X86
    if (t == Tier::Avx512)
        return selectBySignAvx512(dst, src, pos, neg, n);
    if (t == Tier::Avx2)
        return selectBySignAvx2(dst, src, pos, neg, n);
#endif
    (void)t;
    selectBySignScalar(dst, src, pos, neg, n);
}

int64_t
keepAbove(Tier t, float *dst, const float *src, const float *mag,
          float thresh, int64_t n)
{
#if OPTIMUS_SIMD_X86
    if (t == Tier::Avx512)
        return keepAboveAvx512(dst, src, mag, thresh, n);
    if (t == Tier::Avx2)
        return keepAboveAvx2(dst, src, mag, thresh, n);
#endif
    (void)t;
    return keepAboveScalar(dst, src, mag, thresh, n);
}

double
dotDoubleStrided(Tier t, const float *x, int64_t xstride,
                 const float *y, int64_t ystride, int64_t n)
{
    if (t == Tier::Avx512)
        return dotStridedAvx512Order(x, xstride, y, ystride, n);
    if (t == Tier::Avx2)
        return dotStridedAvx2Order(x, xstride, y, ystride, n);
    return dotStridedScalar(x, xstride, y, ystride, n);
}

void
subScaledStrided(Tier t, float *y, int64_t ystride, const float *x,
                 int64_t xstride, float a, int64_t n)
{
    // One multiply and one subtract per element — bit-identical to
    // every contiguous tier on the same values, so no per-tier
    // bodies are needed.
    (void)t;
    for (int64_t i = 0; i < n; ++i)
        y[i * ystride] -= a * x[i * xstride];
}

void
scaleStrided(Tier t, float *x, int64_t stride, float a, int64_t n)
{
    (void)t;
    for (int64_t i = 0; i < n; ++i)
        x[i * stride] *= a;
}

} // namespace simd
} // namespace optimus
