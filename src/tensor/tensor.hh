/**
 * @file
 * Dense row-major float tensor. The library is 2D-centric (weight
 * matrices, activation matrices of shape [tokens, features]) but the
 * shape is a general dimension vector so sequence batches can carry
 * [batch, seq, features] metadata when convenient.
 *
 * Design notes: storage is always contiguous row-major; views are
 * not supported (slices copy). That keeps aliasing out of the
 * hand-written backprop code, which is the error-prone part of this
 * project, at a small memory cost acceptable for laptop-scale models.
 *
 * Storage lives either on the global heap or in the workspace arena
 * active at construction time (see arena.hh): a tensor built under a
 * `WorkspaceScope` draws a size-class block from that workspace and
 * returns it on destruction, so steady-state training steps recycle
 * buffers instead of calling the allocator. Copy-assignment reuses
 * the destination's block in place whenever its capacity suffices —
 * that is what keeps persistent tensors (optimizer state, PowerSGD
 * Q, error-feedback residuals) allocation-free after warmup. The
 * shape itself is an inline small-vector (`ShapeVec`), so tensor
 * metadata never touches the heap at all.
 */

#ifndef OPTIMUS_TENSOR_TENSOR_HH
#define OPTIMUS_TENSOR_TENSOR_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace optimus
{

class Rng;
class Workspace;

/**
 * Inline fixed-capacity shape vector (rank <= kMaxRank). Keeps
 * tensor construction heap-free; converts from std::vector for the
 * cold call sites that build shapes dynamically.
 */
class ShapeVec
{
  public:
    static constexpr int kMaxRank = 4;

    ShapeVec() = default;
    ShapeVec(std::initializer_list<int64_t> dims);
    ShapeVec(const std::vector<int64_t> &dims);

    int size() const { return rank_; }
    bool empty() const { return rank_ == 0; }

    int64_t operator[](int i) const { return dims_[i]; }
    int64_t &operator[](int i) { return dims_[i]; }

    const int64_t *begin() const { return dims_; }
    const int64_t *end() const { return dims_ + rank_; }

    void push_back(int64_t d);

    bool operator==(const ShapeVec &other) const;
    bool operator!=(const ShapeVec &other) const
    {
        return !(*this == other);
    }

  private:
    int rank_ = 0;
    int64_t dims_[kMaxRank] = {};
};

/** Contiguous row-major float tensor with value semantics. */
class Tensor
{
  public:
    /** Empty (0-element, rank-0) tensor. */
    Tensor();

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(ShapeVec shape);

    Tensor(const Tensor &other);
    Tensor(Tensor &&other) noexcept;
    /** Reuses own storage in place when capacity suffices. */
    Tensor &operator=(const Tensor &other);
    Tensor &operator=(Tensor &&other) noexcept;
    ~Tensor();

    /** Convenience 1D / 2D / 3D constructors (zero-initialized). */
    static Tensor zeros(int64_t n);
    static Tensor zeros(int64_t rows, int64_t cols);
    static Tensor zeros(int64_t d0, int64_t d1, int64_t d2);

    /** Tensor filled with a constant. */
    static Tensor full(ShapeVec shape, float value);

    /** I.i.d. normal entries with the given mean/stddev. */
    static Tensor randn(ShapeVec shape, Rng &rng, float mean = 0.0f,
                        float stddev = 1.0f);

    /** I.i.d. uniform entries in [lo, hi). */
    static Tensor randUniform(ShapeVec shape, Rng &rng, float lo,
                              float hi);

    /** Build from explicit values (shape product must match size). */
    static Tensor fromValues(ShapeVec shape,
                             const std::vector<float> &values);

    /** Total number of elements. */
    int64_t size() const { return size_; }

    /** Number of dimensions. */
    int rank() const { return shape_.size(); }

    /** Shape vector. */
    const ShapeVec &shape() const { return shape_; }

    /** Extent of dimension @p dim (supports negative indexing). */
    int64_t dim(int dim) const;

    /** Rows/cols accessors. @pre rank() == 2 */
    int64_t rows() const;
    int64_t cols() const;

    /** Raw storage access. */
    float *data() { return data_; }
    const float *data() const { return data_; }

    /**
     * Flat element access. Under OPTIMUS_BOUNDS_CHECK (default in
     * Debug and sanitized builds) an out-of-range index panics with
     * the offending index and shape instead of touching memory past
     * the buffer; Release builds keep the unchecked fast path.
     */
    float &operator[](int64_t i)
    {
#ifdef OPTIMUS_BOUNDS_CHECK
        if (i < 0 || i >= size())
            boundsFail(i);
#endif
        return data_[i];
    }
    float operator[](int64_t i) const
    {
#ifdef OPTIMUS_BOUNDS_CHECK
        if (i < 0 || i >= size())
            boundsFail(i);
#endif
        return data_[i];
    }

    /** 2D element access. @pre rank() == 2 */
    float &at(int64_t r, int64_t c);
    float at(int64_t r, int64_t c) const;

    /**
     * Reinterpret the same storage with a new shape (copying
     * metadata only). @pre product(new_shape) == size()
     */
    Tensor reshaped(ShapeVec new_shape) const;

    /** In-place fill with a constant. */
    void fill(float value);

    /** In-place zero. */
    void setZero() { fill(0.0f); }

    /** this += other (shapes must match in size). */
    void add(const Tensor &other);

    /** this -= other. */
    void sub(const Tensor &other);

    /** this *= scalar. */
    void scale(float s);

    /** this += alpha * other (axpy). */
    void addScaled(const Tensor &other, float alpha);

    /** Elementwise product accumulate: this += a (.*) b. */
    void addProduct(const Tensor &a, const Tensor &b);

    /** Sum of all elements (double accumulation). */
    double sum() const;

    /** Maximum absolute element (0 for empty). */
    float maxAbs() const;

    /** L2 norm of the flattened tensor. */
    double norm() const;

    /**
     * Extract rows [begin, end) of a 2D tensor into a new tensor.
     * @pre rank() == 2, 0 <= begin <= end <= rows()
     */
    Tensor sliceRows(int64_t begin, int64_t end) const;

    /** Copy @p src into rows starting at @p row. @pre shapes agree */
    void setRows(int64_t row, const Tensor &src);

    /** Transpose of a 2D tensor (copying). */
    Tensor transposed() const;

    /** True if all elements differ by at most @p tol. */
    bool allClose(const Tensor &other, float tol = 1e-5f) const;

    /** Human-readable shape like "[4, 16]". */
    std::string shapeString() const;

  private:
    /** Cold failure path for the checked operator[]. */
    [[noreturn]] void boundsFail(int64_t i) const;

    /** Acquire storage for @p n elements (uninitialized). */
    void allocateStorage(int64_t n);
    /** Return storage to its workspace or the heap. */
    void releaseStorage();

    ShapeVec shape_;
    float *data_ = nullptr;
    int64_t size_ = 0;
    /** Granted block capacity in elements (>= size_). */
    int64_t cap_ = 0;
    /** Owning workspace, or nullptr for heap-backed storage. */
    Workspace *ws_ = nullptr;
};

/** c = a + b (allocating). */
Tensor add(const Tensor &a, const Tensor &b);

/** c = a - b (allocating). */
Tensor sub(const Tensor &a, const Tensor &b);

} // namespace optimus

#endif // OPTIMUS_TENSOR_TENSOR_HH
