/**
 * @file
 * Runtime SIMD dispatch for the dense and compression hot paths.
 *
 * Every vectorized kernel in the tree (the GEMM micro-kernels in
 * gemm_kernels.cc and the compression primitives implemented in
 * simd.cc) is selected through a `simd::Tier`:
 *
 *   Scalar — the portable kernels the tree shipped with; always
 *            available and the bit-exact baseline.
 *   Avx2   — 8-wide float kernels (AVX2 + FMA + POPCNT).
 *   Avx512 — 16-wide float kernels (AVX-512F).
 *
 * The active tier is resolved once, at first use, from the CPU
 * (via `__builtin_cpu_supports`) and the `OPTIMUS_SIMD` environment
 * variable (`scalar|avx2|avx512|auto`); requesting a tier the CPU
 * lacks warns and clamps to the best supported one, exactly like an
 * oversized `OPTIMUS_THREADS`. Tests and benches may switch tiers
 * mid-process with `setTier()` (kernels read the tier per call).
 *
 * Determinism contract (see DESIGN.md section 8): every kernel is
 * bitwise deterministic *per tier* at any `OPTIMUS_THREADS` setting,
 * because the parallel chunk grids are functions of the problem
 * shape only and each chunk's lane/accumulator order is fixed by the
 * kernel. Reductions accumulate into a fixed number of double lanes
 * and combine them in one documented order (the shared
 * horizontal-reduction helper in simd.cc), so a tier never depends
 * on thread count — but two different tiers legitimately round
 * differently and agree only to tolerance. The Scalar tier
 * reproduces the pre-dispatch tree bit-for-bit.
 *
 * This header is intrinsics-free on purpose: raw `_mm*` usage is
 * confined to simd.cc and gemm_kernels.cc (lint rule SIM01).
 */

#ifndef OPTIMUS_TENSOR_SIMD_HH
#define OPTIMUS_TENSOR_SIMD_HH

#include <cstdint>

namespace optimus
{
namespace simd
{

/** Dispatch tiers, ordered from narrowest to widest. */
enum class Tier
{
    Scalar = 0,
    Avx2 = 1,
    Avx512 = 2,
};

/** Widest tier this CPU supports (cached after first call). */
Tier cap();

/** True when @p t is available on this CPU. */
bool supported(Tier t);

/**
 * The active tier: `OPTIMUS_SIMD` override (clamped to cap(), with
 * a warning when clamping or unparsable) or cap() when unset/auto.
 * Resolved once; later `setTier()` calls replace it.
 */
Tier tier();

/**
 * Force the active tier (testing/bench hook — this is how one
 * process measures every tier). Clamps to cap() with a warning,
 * like the environment override. Not meant to be called
 * concurrently with running kernels.
 */
void setTier(Tier t);

/** Lower-case tier name ("scalar", "avx2", "avx512"). */
const char *tierName(Tier t);

/**
 * Parse a tier name (the `OPTIMUS_SIMD` syntax; "auto" maps to
 * cap()). @return false when @p name is not a known spelling.
 */
bool parseTier(const char *name, Tier &out);

// ---------------------------------------------------------------
// Tier-dispatched vector primitives (contiguous spans). The Scalar
// implementations are the exact loops the compression kernels used
// before dispatch existed; see simd.cc for the per-tier lane
// orders. All are safe for any n >= 0 and never read past x[n-1].
// ---------------------------------------------------------------

/**
 * Double-precision dot product of two float spans. Scalar: one
 * running double in element order. SIMD tiers: fixed double-lane
 * accumulators combined by the shared horizontal-reduction helper,
 * then the scalar tail in element order.
 */
double dotDouble(Tier t, const float *x, const float *y, int64_t n);

/** y[i] -= a * x[i] (one multiply, one subtract per lane — every
 * tier rounds identically to the scalar loop). */
void subScaled(Tier t, float *y, const float *x, float a, int64_t n);

/** x[i] *= a (lane-exact across tiers). */
void scaleInPlace(Tier t, float *x, float a, int64_t n);

/** dst[i] = |src[i]| (lane-exact across tiers). */
void absVals(Tier t, float *dst, const float *src, int64_t n);

/** dst[i] = |src[i]| / scale — IEEE division, so every tier matches
 * the scalar loop bit-for-bit. @pre scale != 0 */
void absDiv(Tier t, float *dst, const float *src, float scale,
            int64_t n);

/**
 * Signed partition sums for the one-bit quantizer: accumulates
 * src[i] into @p pos_sum / @p neg_sum (double) and counts each side,
 * splitting on src[i] >= 0. Per-tier fixed accumulation order.
 */
void signedSums(Tier t, const float *src, int64_t n, double &pos_sum,
                double &neg_sum, int64_t &pos_count,
                int64_t &neg_count);

/** dst[i] = src[i] >= 0 ? pos : neg (lane-exact across tiers). */
void selectBySign(Tier t, float *dst, const float *src, float pos,
                  float neg, int64_t n);

/**
 * Top-k keep pass: for every i with mag[i] > thresh, store
 * dst[i] = src[i] (dst elsewhere untouched). @return the number of
 * kept elements. Strictly-greater on purpose: ties at the threshold
 * are filled afterwards in index order, making the kept set
 * independent of any library partition order.
 */
int64_t keepAbove(Tier t, float *dst, const float *src,
                  const float *mag, float thresh, int64_t n);

// ---------------------------------------------------------------
// Strided variants (gather-free column walks over row-major
// matrices; element i of a span lives at p[i * stride]). Contract:
// at every tier, each strided kernel produces bit-for-bit the value
// the matching contiguous kernel produces on a gathered copy of the
// same span — the dot replicas reproduce the tier's register/lane
// accumulation structure in portable code (a float*float product is
// exact in double, so `acc += (double)x * y` equals the fused
// multiply-add the vector kernels issue), and the elementwise
// kernels round once per element exactly like every contiguous
// tier. This is what lets the PowerSGD Gram-Schmidt drop its
// gather/scatter copies without moving a single bit (see
// DESIGN.md section 8).
// ---------------------------------------------------------------

/** Strided dotDouble: sum over x[i*xstride] * y[i*ystride]. */
double dotDoubleStrided(Tier t, const float *x, int64_t xstride,
                        const float *y, int64_t ystride, int64_t n);

/** Strided subScaled: y[i*ystride] -= a * x[i*xstride]. */
void subScaledStrided(Tier t, float *y, int64_t ystride,
                      const float *x, int64_t xstride, float a,
                      int64_t n);

/** Strided scaleInPlace: x[i*stride] *= a. */
void scaleStrided(Tier t, float *x, int64_t stride, float a,
                  int64_t n);

} // namespace simd
} // namespace optimus

#endif // OPTIMUS_TENSOR_SIMD_HH
