#include "tensor/gemm_kernels.hh"

#include <algorithm>
#include <cstring>

#include "tensor/simd_internal.hh"

/*
 * AVX2 and AVX-512 GEMM panel kernels (see gemm_kernels.hh for the
 * driver/panel split). Both follow the same shape as the scalar
 * panel in matmul.cc:
 *
 *   - pack the group's A rows into contiguous, MR-interleaved
 *     scratch (apack[p*MR + r]) so the k loop broadcasts from one
 *     cache line regardless of transA;
 *   - run an MR x JW register-tile micro-kernel per column tile:
 *     accumulators start at zero and are added to C once per pc
 *     block, so each C element sees K/KC + 1 memory-order additions
 *     at any thread count;
 *   - ragged right edges (cols < JW) spill the accumulators to a
 *     stack tile and add the live columns scalarly, exactly like
 *     the scalar micro-kernel's tail path.
 *
 * Tile choices (one broadcast + two B registers + MR*2
 * accumulators): AVX-512 uses MR=14 (31 of 32 zmm), AVX2 uses MR=6
 * (15 of 16 ymm). The micro-kernels are templates with unroll
 * pragmas — written as plain arrays GCC 12 spills the accumulator
 * tile at -O3, costing ~10x.
 */

namespace optimus
{

namespace
{

/**
 * Pack rows [i, i+MR) of op(A) depth-major: apack[p*MR + r]. For
 * transposed A the logical rows are contiguous columns, so each
 * depth step is one memcpy; otherwise each A row is walked once.
 */
template <int MR>
inline void
packA(const GemmBlockCtx &ctx, int64_t i, float *apack)
{
    if (!ctx.transA) {
        for (int r = 0; r < MR; ++r) {
            const float *src = ctx.a + (i + r) * ctx.k + ctx.pc;
            for (int64_t p = 0; p < ctx.kc; ++p)
                apack[p * MR + r] = src[p];
        }
    } else {
        for (int64_t p = 0; p < ctx.kc; ++p)
            std::memcpy(apack + p * MR,
                        ctx.a + (ctx.pc + p) * ctx.m + i,
                        sizeof(float) * MR);
    }
}

#if OPTIMUS_SIMD_X86

// ----------------------------------------------------------------
// AVX-512 tier: MR x 32 zmm tile
// ----------------------------------------------------------------

constexpr int64_t kJw512 = 32;

template <int MR>
OPTIMUS_TARGET_AVX512 void
micro512(float *c, int64_t ldc, const float *apack,
         const float *bp0, int64_t kc, int64_t nc_pad, int64_t cols)
{
    __m512 q[MR][2];
#pragma GCC unroll 14
    for (int r = 0; r < MR; ++r) {
        q[r][0] = _mm512_setzero_ps();
        q[r][1] = _mm512_setzero_ps();
    }
    const float *bp = bp0;
    const float *ap = apack;
    for (int64_t p = 0; p < kc; ++p, bp += nc_pad, ap += MR) {
        _mm_prefetch(reinterpret_cast<const char *>(bp + 4 * nc_pad),
                     _MM_HINT_T0);
        const __m512 b0 = _mm512_loadu_ps(bp);
        const __m512 b1 = _mm512_loadu_ps(bp + 16);
#pragma GCC unroll 14
        for (int r = 0; r < MR; ++r) {
            const __m512 x = _mm512_set1_ps(ap[r]);
            q[r][0] = _mm512_fmadd_ps(x, b0, q[r][0]);
            q[r][1] = _mm512_fmadd_ps(x, b1, q[r][1]);
        }
    }
    if (cols == kJw512) {
        for (int r = 0; r < MR; ++r) {
            float *cr = c + r * ldc;
            _mm512_storeu_ps(
                cr, _mm512_add_ps(_mm512_loadu_ps(cr), q[r][0]));
            _mm512_storeu_ps(cr + 16,
                             _mm512_add_ps(_mm512_loadu_ps(cr + 16),
                                           q[r][1]));
        }
    } else {
        alignas(64) float tmp[kJw512];
        for (int r = 0; r < MR; ++r) {
            _mm512_store_ps(tmp, q[r][0]);
            _mm512_store_ps(tmp + 16, q[r][1]);
            float *cr = c + r * ldc;
            for (int64_t v = 0; v < cols; ++v)
                cr[v] += tmp[v];
        }
    }
}

template <int MR>
inline void
rowGroup512(const GemmBlockCtx &ctx, int64_t i, float *apack)
{
    packA<MR>(ctx, i, apack);
    for (int64_t j0 = 0; j0 < ctx.nc; j0 += kJw512) {
        const int64_t cols =
            std::min<int64_t>(kJw512, ctx.nc - j0);
        micro512<MR>(ctx.c + i * ctx.n + ctx.jc + j0, ctx.n, apack,
                     ctx.bpack + j0, ctx.kc, ctx.ncPad, cols);
    }
}

void
panelAvx512(const GemmBlockCtx &ctx, int64_t i0, int64_t i1)
{
    alignas(64) float apack[14 * kGemmMaxKc];
    int64_t i = i0;
    for (; i + 14 <= i1; i += 14)
        rowGroup512<14>(ctx, i, apack);
    for (; i + 8 <= i1; i += 8)
        rowGroup512<8>(ctx, i, apack);
    for (; i + 4 <= i1; i += 4)
        rowGroup512<4>(ctx, i, apack);
    for (; i + 2 <= i1; i += 2)
        rowGroup512<2>(ctx, i, apack);
    for (; i < i1; ++i)
        rowGroup512<1>(ctx, i, apack);
}

// ----------------------------------------------------------------
// AVX2 tier: MR x 16 ymm tile
// ----------------------------------------------------------------

constexpr int64_t kJw256 = 16;

template <int MR>
OPTIMUS_TARGET_AVX2 void
micro256(float *c, int64_t ldc, const float *apack,
         const float *bp0, int64_t kc, int64_t nc_pad, int64_t cols)
{
    __m256 q[MR][2];
#pragma GCC unroll 6
    for (int r = 0; r < MR; ++r) {
        q[r][0] = _mm256_setzero_ps();
        q[r][1] = _mm256_setzero_ps();
    }
    const float *bp = bp0;
    const float *ap = apack;
    for (int64_t p = 0; p < kc; ++p, bp += nc_pad, ap += MR) {
        _mm_prefetch(reinterpret_cast<const char *>(bp + 4 * nc_pad),
                     _MM_HINT_T0);
        const __m256 b0 = _mm256_loadu_ps(bp);
        const __m256 b1 = _mm256_loadu_ps(bp + 8);
#pragma GCC unroll 6
        for (int r = 0; r < MR; ++r) {
            const __m256 x = _mm256_set1_ps(ap[r]);
            q[r][0] = _mm256_fmadd_ps(x, b0, q[r][0]);
            q[r][1] = _mm256_fmadd_ps(x, b1, q[r][1]);
        }
    }
    if (cols == kJw256) {
        for (int r = 0; r < MR; ++r) {
            float *cr = c + r * ldc;
            _mm256_storeu_ps(
                cr, _mm256_add_ps(_mm256_loadu_ps(cr), q[r][0]));
            _mm256_storeu_ps(cr + 8,
                             _mm256_add_ps(_mm256_loadu_ps(cr + 8),
                                           q[r][1]));
        }
    } else {
        alignas(32) float tmp[kJw256];
        for (int r = 0; r < MR; ++r) {
            _mm256_store_ps(tmp, q[r][0]);
            _mm256_store_ps(tmp + 8, q[r][1]);
            float *cr = c + r * ldc;
            for (int64_t v = 0; v < cols; ++v)
                cr[v] += tmp[v];
        }
    }
}

template <int MR>
inline void
rowGroup256(const GemmBlockCtx &ctx, int64_t i, float *apack)
{
    packA<MR>(ctx, i, apack);
    for (int64_t j0 = 0; j0 < ctx.nc; j0 += kJw256) {
        const int64_t cols =
            std::min<int64_t>(kJw256, ctx.nc - j0);
        micro256<MR>(ctx.c + i * ctx.n + ctx.jc + j0, ctx.n, apack,
                     ctx.bpack + j0, ctx.kc, ctx.ncPad, cols);
    }
}

void
panelAvx2(const GemmBlockCtx &ctx, int64_t i0, int64_t i1)
{
    alignas(32) float apack[6 * kGemmMaxKc];
    int64_t i = i0;
    for (; i + 6 <= i1; i += 6)
        rowGroup256<6>(ctx, i, apack);
    for (; i + 4 <= i1; i += 4)
        rowGroup256<4>(ctx, i, apack);
    for (; i + 2 <= i1; i += 2)
        rowGroup256<2>(ctx, i, apack);
    for (; i < i1; ++i)
        rowGroup256<1>(ctx, i, apack);
}

#endif // OPTIMUS_SIMD_X86

} // namespace

const GemmKernel &
gemmKernelAvx2()
{
#if OPTIMUS_SIMD_X86
    static const GemmKernel k{"avx2", kJw256, 48, 512, panelAvx2};
#else
    static const GemmKernel k{"avx2", 16, 48, 512, nullptr};
#endif
    return k;
}

const GemmKernel &
gemmKernelAvx512()
{
#if OPTIMUS_SIMD_X86
    static const GemmKernel k{"avx512", kJw512, 56, 512,
                              panelAvx512};
#else
    static const GemmKernel k{"avx512", 32, 56, 512, nullptr};
#endif
    return k;
}

} // namespace optimus
