/**
 * @file
 * Workspace arenas: the steady-state memory plan for the training
 * step. A `Workspace` is a size-class recycling arena that Tensor
 * storage is drawn from whenever a `WorkspaceScope` is active on the
 * allocating thread, instead of the global heap.
 *
 * Lifecycle (DESIGN.md section 9): allocation requests round up to a
 * power-of-two size class. A request is served, in order, from
 *
 *   1. the class free list (a block released by a destroyed or
 *      reassigned tensor of the same class) — an *arena hit*;
 *   2. the bump pointer of the current slab — also a hit, since no
 *      heap call is made;
 *   3. a fresh slab from the heap — a *heap fallback*, the event the
 *      zero-allocation contract counts. Warmup (step 1) is all
 *      fallbacks; steady state must have none.
 *
 * Released blocks go back to their class free list and are never
 * returned to the heap until the workspace dies, so a workspace's
 * footprint is the high-water mark of the step that owns it —
 * exactly the statically-planned activation memory treatment the
 * Megatron line of work applies, in recycling form. `reset()`
 * rewinds the slabs only when no block is outstanding; with live
 * tensors (persistent compressor state, parked activations) it
 * degrades to pure free-list recycling, which is still heap-free.
 *
 * Scoping: `WorkspaceScope` installs a workspace in a thread-local
 * slot read by Tensor's storage path. The runtime propagates the
 * installing thread's scope to pool workers for the duration of a
 * parallelFor job or queued task, so tensors constructed inside
 * parallel bodies land in the caller's arena. `OPTIMUS_ARENA=0`
 * makes every scope a no-op (all tensors heap-backed) — the A/B
 * switch the bitwise-identity tests flip.
 *
 * Observability is always on (plain relaxed atomics, no lock): the
 * process-wide tallies behind `mem::heapAllocs()` etc. feed the
 * obs::metrics registry and the `mem.heapAllocs` trace counter track
 * via `mem::publishMetrics()` at step boundaries, and the alloc_gate
 * test enforces the steady-state zero directly.
 */

#ifndef OPTIMUS_TENSOR_ARENA_HH
#define OPTIMUS_TENSOR_ARENA_HH

#include <cstdint>
#include <mutex>
#include <vector>

namespace optimus
{

/** Point-in-time allocation tallies (see mem:: for the globals). */
struct WorkspaceStats
{
    /** Requests served without touching the heap. */
    int64_t arenaHits = 0;
    /** Requests that had to grow the workspace (slab malloc). */
    int64_t heapFallbacks = 0;
    /** Heap bytes ever acquired by this workspace. */
    int64_t slabBytes = 0;
    /** Blocks currently handed out (not yet released). */
    int64_t outstanding = 0;
};

/**
 * Size-class recycling arena. Thread-safe: one mutex guards the
 * free lists and bump pointer (tensor construction/destruction is
 * coarse next to the kernels that run between them). Blocks are
 * 64-byte aligned. The workspace must outlive every tensor holding
 * one of its blocks.
 */
class Workspace
{
  public:
    /** @p name tags diagnostics; must be a string literal. */
    explicit Workspace(const char *name = "ws");
    ~Workspace();

    Workspace(const Workspace &) = delete;
    Workspace &operator=(const Workspace &) = delete;

    /**
     * Hand out a block of at least @p min_elems floats. The class
     * capacity actually granted (>= min_elems) is written to
     * @p cap_elems; release() must be called with that capacity.
     */
    float *allocate(int64_t min_elems, int64_t &cap_elems);

    /** Return a block of class capacity @p cap_elems to its list. */
    void release(float *p, int64_t cap_elems);

    /**
     * Rewind to an empty arena (all slabs reusable from their bump
     * pointers, free lists cleared) — only possible when nothing is
     * outstanding. Otherwise keeps recycling through the free lists,
     * which is still allocation-free. @return true when rewound.
     */
    bool reset();

    WorkspaceStats stats() const;
    const char *name() const { return name_; }

  private:
    struct Slab
    {
        char *base = nullptr;
        int64_t cap = 0;
        int64_t used = 0;
    };

    /** Size class for a byte count: pow2, >= kMinClassBytes. */
    static int classOf(int64_t bytes);

    const char *name_;
    mutable std::mutex mutex_;
    std::vector<Slab> slabs_;
    /** Index of the slab currently being carved. */
    int64_t activeSlab_ = 0;
    /**
     * freeHeads_[c] heads an intrusive LIFO list of released blocks
     * of class c: the next pointer lives in the free block's first
     * bytes (every class holds at least a cache line). Intrusive on
     * purpose — recycling must never allocate, and a vector-backed
     * list would ratchet its capacity on whatever free-depth the
     * schedule happened to produce, a heap call the steady-state
     * contract forbids.
     */
    std::vector<float *> freeHeads_;
    WorkspaceStats stats_;
};

/**
 * RAII thread-local scope: while alive, Tensor storage on this
 * thread (and on pool workers executing this thread's parallel
 * bodies) is drawn from @p ws. Scopes nest; the innermost wins.
 */
class WorkspaceScope
{
  public:
    explicit WorkspaceScope(Workspace *ws);
    ~WorkspaceScope();

    WorkspaceScope(const WorkspaceScope &) = delete;
    WorkspaceScope &operator=(const WorkspaceScope &) = delete;

  private:
    Workspace *saved_;
};

/**
 * The workspace Tensor storage should use on this thread, or nullptr
 * for the heap (no scope active, or OPTIMUS_ARENA=0).
 */
Workspace *currentWorkspace();

/**
 * Install @p ws as the thread's scope and return the previous one —
 * the runtime uses this pair to propagate the submitting thread's
 * scope onto pool workers. Unlike WorkspaceScope, this bypasses the
 * OPTIMUS_ARENA gate check on read (the gate applies at
 * currentWorkspace()).
 */
Workspace *exchangeCurrentWorkspace(Workspace *ws);

/** True unless OPTIMUS_ARENA=0 disabled arenas (read once). */
bool arenaEnabled();

namespace mem
{

/**
 * Process-wide allocation tallies (always on; relaxed atomics).
 * heapAllocs counts every heap acquisition made for tensor storage:
 * arena slab growth plus unscoped (heap-backed) tensor allocations.
 * The steady-state contract is that a full training step adds zero.
 */
int64_t heapAllocs();
/** Workspace requests served without the heap. */
int64_t arenaHits();
/** Workspace requests that grew a slab. */
int64_t heapFallbacks();
/** High-water mark of live tensor-storage bytes (arena + heap). */
int64_t peakBytes();

/** Internal: tensor.cc accounting hooks. */
void noteHeapAlloc(int64_t bytes);
void noteHeapFree(int64_t bytes);
void noteArenaHit();
void noteFallback(int64_t slab_bytes);
void noteLive(int64_t delta_bytes);

/**
 * Fold the tallies into obs::metrics (gauges mem.arenaHits,
 * mem.heapFallbacks, mem.heapAllocs, mem.peakBytes) and emit the
 * mem.heapAllocs trace counter track. Called at step boundaries.
 */
void publishMetrics();

} // namespace mem

} // namespace optimus

#endif // OPTIMUS_TENSOR_ARENA_HH
