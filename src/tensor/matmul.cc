#include "tensor/matmul.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "runtime/runtime.hh"
#include "tensor/arena.hh"
#include "tensor/gemm_kernels.hh"
#include "tensor/simd.hh"
#include "util/logging.hh"

namespace optimus
{

namespace
{

/**
 * Cache-blocking parameters (in floats). The packed B block
 * (KC x NC) is shared read-only by every row-panel task and stays
 * cache-resident across the whole M sweep; each task's A rows and C
 * tile live in L1. MC is also the parallelFor grain, so the parallel
 * decomposition is a pure function of the problem shape.
 */
constexpr int64_t MC = 64;
constexpr int64_t KC = 256;
constexpr int64_t NC = 128;
// The SIMD panel kernels size their packed-A scratch from the
// shared constant; the driver must block k identically.
static_assert(KC == kGemmMaxKc, "k blocking out of sync");
/** Column width of the register accumulator tile. */
constexpr int64_t JW = 32;

/**
 * GCC/Clang vector extension: 16 floats. Lowered to one zmm with
 * AVX-512, to ymm/xmm pairs on narrower ISAs — portable either way,
 * and unlike a plain float array the accumulators reliably stay in
 * registers across the k loop (the autovectorizer spills arrays,
 * costing ~10x).
 */
typedef float Vec __attribute__((vector_size(64), aligned(4)));
constexpr int64_t VL = 16;

inline Vec
vload(const float *p)
{
    Vec v;
    __builtin_memcpy(&v, p, sizeof(Vec));
    return v;
}

inline void
vstore(float *p, Vec v)
{
    __builtin_memcpy(p, &v, sizeof(Vec));
}

/**
 * ROWS x JW register-tile micro-kernel: accumulates
 * A(rows, pc:pc+kc) * Bpack(:, j0:j0+JW) into C. Accumulators start
 * at zero and are added to C once per pc block, so each C element
 * sees K/KC + 1 memory-order additions regardless of thread count.
 * When @p cols < JW (ragged right edge) the pad lanes — fed only
 * zeros from the padded B pack — are simply not stored.
 */
template <int ROWS>
inline void
microKernel(float *const *crows, const float *const *arows,
            const float *bp0, int64_t kc, int64_t nc_pad,
            int64_t cols)
{
    Vec q[ROWS][2] = {};
    const float *bp = bp0;
    for (int64_t p = 0; p < kc; ++p, bp += nc_pad) {
        const Vec b0 = vload(bp);
        const Vec b1 = vload(bp + VL);
        for (int r = 0; r < ROWS; ++r) {
            const Vec x = Vec{} + arows[r][p];
            q[r][0] += x * b0;
            q[r][1] += x * b1;
        }
    }
    if (cols == JW) {
        for (int r = 0; r < ROWS; ++r) {
            vstore(crows[r], vload(crows[r]) + q[r][0]);
            vstore(crows[r] + VL, vload(crows[r] + VL) + q[r][1]);
        }
    } else {
        float tmp[JW];
        for (int r = 0; r < ROWS; ++r) {
            vstore(tmp, q[r][0]);
            vstore(tmp + VL, q[r][1]);
            for (int64_t v = 0; v < cols; ++v)
                crows[r][v] += tmp[v];
        }
    }
}

/**
 * Run the micro-kernel on rows [i, i+ROWS) across the full jc block.
 * When A is logically transposed its elements are strided by m in
 * memory, so the rows are first packed into the caller's contiguous
 * scratch buffer.
 */
template <int ROWS>
inline void
processRowGroup(const GemmBlockCtx &ctx, int64_t i, float *apack)
{
    const float *arows[ROWS];
    float *crows[ROWS];
    if (!ctx.transA) {
        for (int r = 0; r < ROWS; ++r)
            arows[r] = ctx.a + (i + r) * ctx.k + ctx.pc;
    } else {
        for (int64_t p = 0; p < ctx.kc; ++p) {
            const float *src = ctx.a + (ctx.pc + p) * ctx.m + i;
            for (int r = 0; r < ROWS; ++r)
                apack[r * ctx.kc + p] = src[r];
        }
        for (int r = 0; r < ROWS; ++r)
            arows[r] = apack + r * ctx.kc;
    }
    for (int64_t j0 = 0; j0 < ctx.nc; j0 += JW) {
        const int64_t cols = std::min<int64_t>(JW, ctx.nc - j0);
        for (int r = 0; r < ROWS; ++r)
            crows[r] = ctx.c + (i + r) * ctx.n + ctx.jc + j0;
        microKernel<ROWS>(crows, arows, ctx.bpack + j0, ctx.kc,
                          ctx.ncPad, cols);
    }
}

/**
 * Blocked GEMM core: C[m x n] (+)= op(A) * op(B) with op in
 * {identity, transpose}, never materializing a transposed copy.
 * Physical layouts: A is [m x k] ([k x m] when trans_a), B is
 * [k x n] ([n x k] when trans_b), C is [m x n], all row-major.
 *
 * The active simd::Tier is read once per call: it selects the panel
 * kernel run inside each row task and the width the packed-B rows
 * are padded to. The scalar panel below is the pre-dispatch kernel,
 * unchanged, so OPTIMUS_SIMD=scalar is bit-exact with the old tree.
 */
// optlint:hot — steady-state step path (zero-allocation contract).
void
gemmBlocked(float *c, const float *a, const float *b, int64_t m,
            int64_t k, int64_t n, bool trans_a, bool trans_b,
            bool accumulate)
{
    if (!accumulate)
        std::memset(c, 0, sizeof(float) * m * n);
    if (m <= 0 || n <= 0 || k <= 0)
        return;

    const simd::Tier tier = simd::tier();
    const GemmKernel *mk = nullptr;
    if (tier == simd::Tier::Avx512)
        mk = &gemmKernelAvx512();
    else if (tier == simd::Tier::Avx2)
        mk = &gemmKernelAvx2();
    const int64_t jw = mk ? mk->panelWidth : JW;
    const int64_t mc = mk ? mk->rowGrain : MC;
    const int64_t ncb = mk ? mk->colBlock : NC;

    const int64_t kc_max = std::min(k, KC);
    const int64_t nc_pad_max =
        ((std::min(n, ncb) + jw - 1) / jw) * jw;
    // Packed-B scratch. Under an active workspace scope it is drawn
    // from the arena and recycles across calls no matter which pool
    // worker executes this frame — a thread_local here would ratchet
    // per thread, and which worker runs a reduce-engine bucket task
    // is scheduling-dependent, so a cold worker could allocate in an
    // armed steady-state step. Unscoped callers keep the per-thread
    // buffer (every block is fully rewritten before use, and a GEMM
    // never nests inside another GEMM on one thread).
    Workspace *const ws = currentWorkspace();
    thread_local std::vector<float> t_bpack; // optlint:coldalloc
    float *bpack;
    int64_t bpack_cap = 0;
    if (ws != nullptr) {
        bpack = ws->allocate(kc_max * nc_pad_max, bpack_cap);
    } else {
        // optlint:coldalloc — warmup capacity ratchet.
        if (static_cast<int64_t>(t_bpack.size()) <
            kc_max * nc_pad_max)
            t_bpack.resize(kc_max * nc_pad_max);
        bpack = t_bpack.data();
    }

    for (int64_t jc = 0; jc < n; jc += ncb) {
        const int64_t nc = std::min(ncb, n - jc);
        const int64_t nc_pad = ((nc + jw - 1) / jw) * jw;
        for (int64_t pc = 0; pc < k; pc += KC) {
            const int64_t kc = std::min(KC, k - pc);

            // Pack B(pc:pc+kc, jc:jc+nc) p-major with rows padded to
            // the register-tile width; pad columns are zero and feed
            // accumulators that are never stored.
            float *bp = bpack;
            if (nc_pad != nc)
                std::memset(bp, 0,
                            sizeof(float) * kc * nc_pad);
            if (!trans_b) {
                for (int64_t p = 0; p < kc; ++p)
                    std::memcpy(bp + p * nc_pad,
                                b + (pc + p) * n + jc,
                                sizeof(float) * nc);
            } else {
                for (int64_t j = 0; j < nc; ++j) {
                    const float *src = b + (jc + j) * k + pc;
                    for (int64_t p = 0; p < kc; ++p)
                        bp[p * nc_pad + j] = src[p];
                }
            }

            GemmBlockCtx ctx{c,  a,  m,  k,     n,  trans_a,
                             pc, kc, jc, nc,    bp, nc_pad};
            parallelFor(0, m, mc,
                        [&ctx, mk](int64_t i0, int64_t i1) {
                if (mk != nullptr) {
                    mk->panel(ctx, i0, i1);
                    return;
                }
                float apack[8 * KC];
                int64_t i = i0;
                for (; i + 8 <= i1; i += 8)
                    processRowGroup<8>(ctx, i, apack);
                for (; i + 4 <= i1; i += 4)
                    processRowGroup<4>(ctx, i, apack);
                for (; i + 2 <= i1; i += 2)
                    processRowGroup<2>(ctx, i, apack);
                for (; i < i1; ++i)
                    processRowGroup<1>(ctx, i, apack);
            });
        }
    }
    if (ws != nullptr)
        ws->release(bpack, bpack_cap);
}

} // namespace

void
gemm(float *c, const float *a, const float *b, int64_t m, int64_t k,
     int64_t n, bool accumulate)
{
    gemmBlocked(c, a, b, m, k, n, false, false, accumulate);
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    OPTIMUS_ASSERT(a.rank() == 2 && b.rank() == 2);
    OPTIMUS_ASSERT(a.cols() == b.rows());
    Tensor c({a.rows(), b.cols()});
    gemmBlocked(c.data(), a.data(), b.data(), a.rows(), a.cols(),
                b.cols(), false, false, true);
    return c;
}

Tensor
matmulTN(const Tensor &a, const Tensor &b)
{
    OPTIMUS_ASSERT(a.rank() == 2 && b.rank() == 2);
    OPTIMUS_ASSERT(a.rows() == b.rows());
    Tensor c({a.cols(), b.cols()});
    gemmBlocked(c.data(), a.data(), b.data(), a.cols(), a.rows(),
                b.cols(), true, false, true);
    return c;
}

Tensor
matmulNT(const Tensor &a, const Tensor &b)
{
    OPTIMUS_ASSERT(a.rank() == 2 && b.rank() == 2);
    OPTIMUS_ASSERT(a.cols() == b.cols());
    Tensor c({a.rows(), b.rows()});
    gemmBlocked(c.data(), a.data(), b.data(), a.rows(), a.cols(),
                b.rows(), false, true, true);
    return c;
}

void
matmulAcc(Tensor &c, const Tensor &a, const Tensor &b)
{
    OPTIMUS_ASSERT(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
    OPTIMUS_ASSERT(a.cols() == b.rows());
    OPTIMUS_ASSERT(c.rows() == a.rows() && c.cols() == b.cols());
    gemmBlocked(c.data(), a.data(), b.data(), a.rows(), a.cols(),
                b.cols(), false, false, true);
}

void
matmulAccTN(Tensor &c, const Tensor &a, const Tensor &b)
{
    OPTIMUS_ASSERT(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
    OPTIMUS_ASSERT(a.rows() == b.rows());
    OPTIMUS_ASSERT(c.rows() == a.cols() && c.cols() == b.cols());
    gemmBlocked(c.data(), a.data(), b.data(), a.cols(), a.rows(),
                b.cols(), true, false, true);
}

void
matmulAccNT(Tensor &c, const Tensor &a, const Tensor &b)
{
    OPTIMUS_ASSERT(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
    OPTIMUS_ASSERT(a.cols() == b.cols());
    OPTIMUS_ASSERT(c.rows() == a.rows() && c.cols() == b.rows());
    gemmBlocked(c.data(), a.data(), b.data(), a.rows(), a.cols(),
                b.rows(), false, true, true);
}

} // namespace optimus
