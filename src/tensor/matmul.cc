#include "tensor/matmul.hh"

#include <cstring>

#include "util/logging.hh"

namespace optimus
{

void
gemm(float *c, const float *a, const float *b, int64_t m, int64_t k,
     int64_t n, bool accumulate)
{
    if (!accumulate)
        std::memset(c, 0, sizeof(float) * m * n);
    for (int64_t i = 0; i < m; ++i) {
        const float *arow = a + i * k;
        float *crow = c + i * n;
        for (int64_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f)
                continue;
            const float *brow = b + p * n;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    OPTIMUS_ASSERT(a.rank() == 2 && b.rank() == 2);
    OPTIMUS_ASSERT(a.cols() == b.rows());
    Tensor c({a.rows(), b.cols()});
    gemm(c.data(), a.data(), b.data(), a.rows(), a.cols(), b.cols(),
         false);
    return c;
}

Tensor
matmulTN(const Tensor &a, const Tensor &b)
{
    OPTIMUS_ASSERT(a.rank() == 2 && b.rank() == 2);
    OPTIMUS_ASSERT(a.rows() == b.rows());
    Tensor at = a.transposed();
    Tensor c({a.cols(), b.cols()});
    gemm(c.data(), at.data(), b.data(), a.cols(), a.rows(), b.cols(),
         false);
    return c;
}

Tensor
matmulNT(const Tensor &a, const Tensor &b)
{
    OPTIMUS_ASSERT(a.rank() == 2 && b.rank() == 2);
    OPTIMUS_ASSERT(a.cols() == b.cols());
    Tensor bt = b.transposed();
    Tensor c({a.rows(), b.rows()});
    gemm(c.data(), a.data(), bt.data(), a.rows(), a.cols(), b.rows(),
         false);
    return c;
}

void
matmulAcc(Tensor &c, const Tensor &a, const Tensor &b)
{
    OPTIMUS_ASSERT(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
    OPTIMUS_ASSERT(a.cols() == b.rows());
    OPTIMUS_ASSERT(c.rows() == a.rows() && c.cols() == b.cols());
    gemm(c.data(), a.data(), b.data(), a.rows(), a.cols(), b.cols(),
         true);
}

void
matmulAccTN(Tensor &c, const Tensor &a, const Tensor &b)
{
    OPTIMUS_ASSERT(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
    OPTIMUS_ASSERT(a.rows() == b.rows());
    OPTIMUS_ASSERT(c.rows() == a.cols() && c.cols() == b.cols());
    Tensor at = a.transposed();
    gemm(c.data(), at.data(), b.data(), a.cols(), a.rows(), b.cols(),
         true);
}

void
matmulAccNT(Tensor &c, const Tensor &a, const Tensor &b)
{
    OPTIMUS_ASSERT(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
    OPTIMUS_ASSERT(a.cols() == b.cols());
    OPTIMUS_ASSERT(c.rows() == a.rows() && c.cols() == b.rows());
    Tensor bt = b.transposed();
    gemm(c.data(), a.data(), bt.data(), a.rows(), a.cols(), b.rows(),
         true);
}

} // namespace optimus
