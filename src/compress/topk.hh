/**
 * @file
 * Top-k magnitude sparsification, the baseline the paper shows is
 * unsuitable for point-to-point inter-stage traffic (Fig 3,
 * 'Opt-CC (TopK)' bar). Keeps the k largest-magnitude elements and
 * transmits (index, value) pairs.
 */

#ifndef OPTIMUS_COMPRESS_TOPK_HH
#define OPTIMUS_COMPRESS_TOPK_HH

#include <cstdint>
#include <vector>

#include "compress/compressor.hh"

namespace optimus
{

/** Keep the top `fraction` of elements by absolute value. */
class TopKCompressor : public Compressor
{
  public:
    /** @param fraction Kept element fraction in (0, 1]. */
    explicit TopKCompressor(double fraction);

    int64_t compress(const Tensor &input, Tensor &output) override;
    std::string name() const override;
    int64_t payloadBytes(int64_t rows, int64_t cols) const override;

    double fraction() const { return fraction_; }

    /** Number of kept elements for a tensor of @p n elements. */
    int64_t keptCount(int64_t n) const;

  private:
    double fraction_;
    /** Selection scratch; capacities ratchet during warmup so the
     * steady-state step never allocates here. */
    std::vector<int64_t> order_;
    std::vector<float> mag_;
    std::vector<float> sel_;
};

} // namespace optimus

#endif // OPTIMUS_COMPRESS_TOPK_HH
