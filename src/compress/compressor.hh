/**
 * @file
 * Abstract interface for lossy gradient compressors. A compressor
 * models the whole compress -> transmit -> decompress path of one
 * tensor stream: the caller provides the exact tensor, receives the
 * receiver-side reconstruction, and is told the payload size in
 * bytes so the performance model can account for the saved traffic.
 *
 * Compressors may be stateful per stream (PowerSGD warm-starts its
 * power-iteration vector from the previous message), so one instance
 * is created per communication channel.
 */

#ifndef OPTIMUS_COMPRESS_COMPRESSOR_HH
#define OPTIMUS_COMPRESS_COMPRESSOR_HH

#include <cstdint>
#include <memory>
#include <string>

#include "tensor/tensor.hh"

namespace optimus
{

/** Lossy compress/decompress channel for one tensor stream. */
class Compressor
{
  public:
    virtual ~Compressor() = default;

    /**
     * Compress @p input and write the receiver-side reconstruction
     * into @p output (resized/shaped to match @p input).
     *
     * @return payload size in bytes that would cross the wire.
     */
    virtual int64_t compress(const Tensor &input, Tensor &output) = 0;

    /** Short identifier such as "powersgd(r=16)". */
    virtual std::string name() const = 0;

    /**
     * Payload bytes for a [rows x cols] message, without compressing
     * anything (used by the performance model).
     */
    virtual int64_t payloadBytes(int64_t rows, int64_t cols) const = 0;

    /** Drop any warm-start / residual state. */
    virtual void reset() {}

    /**
     * Bytes of persistent compressor state (warm-start matrices
     * etc.), for the memory-overhead accounting of Fig 12.
     */
    virtual int64_t stateBytes() const { return 0; }
};

/** Identity "compressor": output == input, full fp32 payload. */
class IdentityCompressor : public Compressor
{
  public:
    int64_t compress(const Tensor &input, Tensor &output) override;
    std::string name() const override { return "identity"; }
    int64_t payloadBytes(int64_t rows, int64_t cols) const override;
};

/** Supported compression algorithms. */
enum class CompressorKind
{
    None,
    PowerSgd,
    TopK,
    Ternary,
    OneBit,
};

/** Parameters needed to instantiate any compressor kind. */
struct CompressorSpec
{
    CompressorKind kind = CompressorKind::None;
    /** Low-rank approximation rank (PowerSgd). */
    int rank = 16;
    /** Kept fraction of elements (TopK), in (0, 1]. */
    double topkFraction = 0.01;
    /** Seed for stochastic compressors / warm starts. */
    uint64_t seed = 1;

    /** Short description like "powersgd(r=16)". */
    std::string describe() const;
};

/**
 * Instantiate a compressor for the given spec. @p kind None yields
 * an IdentityCompressor.
 */
std::unique_ptr<Compressor> makeCompressor(const CompressorSpec &spec);

/** Parse "none|powersgd|topk|ternary|onebit" (fatal on error). */
CompressorKind parseCompressorKind(const std::string &text);

} // namespace optimus

#endif // OPTIMUS_COMPRESS_COMPRESSOR_HH
