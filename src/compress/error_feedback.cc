#include "compress/error_feedback.hh"

#include "util/logging.hh"

namespace optimus
{

ErrorFeedbackCompressor::ErrorFeedbackCompressor(
    std::unique_ptr<Compressor> inner)
    : inner_(std::move(inner))
{
    OPTIMUS_ASSERT(inner_ != nullptr);
}

int64_t
ErrorFeedbackCompressor::compress(const Tensor &input, Tensor &output)
{
    Tensor fed = input;
    if (residual_.size() == input.size())
        fed.add(residual_);
    const int64_t bytes = inner_->compress(fed, output);
    residual_ = fed;
    residual_.sub(output);
    return bytes;
}

std::string
ErrorFeedbackCompressor::name() const
{
    return "ef+" + inner_->name();
}

int64_t
ErrorFeedbackCompressor::payloadBytes(int64_t rows, int64_t cols) const
{
    return inner_->payloadBytes(rows, cols);
}

void
ErrorFeedbackCompressor::reset()
{
    residual_ = Tensor();
    inner_->reset();
}

LazyErrorBuffer::LazyErrorBuffer(std::unique_ptr<Compressor> inner,
                                 bool enabled)
    : inner_(std::move(inner)), enabled_(enabled)
{
    OPTIMUS_ASSERT(inner_ != nullptr);
}

int64_t
LazyErrorBuffer::send(const Tensor &input, Tensor &output)
{
    Tensor fed = input;
    if (enabled_ && error_.size() == input.size())
        fed.add(error_);
    const int64_t bytes = inner_->compress(fed, output);
    if (enabled_) {
        error_ = fed;
        error_.sub(output);
    }
    return bytes;
}

void
LazyErrorBuffer::reset()
{
    error_ = Tensor();
    inner_->reset();
}

} // namespace optimus
