#include "compress/error_feedback.hh"

#include "util/logging.hh"

namespace optimus
{

ErrorFeedbackCompressor::ErrorFeedbackCompressor(
    std::unique_ptr<Compressor> inner)
    : inner_(std::move(inner))
{
    OPTIMUS_ASSERT(inner_ != nullptr);
}

// optlint:hot — steady-state step path (zero-allocation contract).
int64_t
ErrorFeedbackCompressor::compress(const Tensor &input, Tensor &output)
{
    Tensor fed = input;
    if (residual_.shape() == input.shape()) {
        fed.add(residual_);
    } else if (residual_.size() != 0) {
        // A shape change mid-stream means the caller rewired the
        // channel; folding a stale residual into an unrelated tensor
        // (even one of coincidentally equal size) would silently
        // corrupt the gradient stream, so drop it and restart.
        warn("error feedback: residual %s dropped for input %s",
             residual_.shapeString().c_str(),
             input.shapeString().c_str());
    }
    const int64_t bytes = inner_->compress(fed, output);
    residual_ = fed;
    residual_.sub(output);
    return bytes;
}

std::string
ErrorFeedbackCompressor::name() const
{
    return "ef+" + inner_->name();
}

int64_t
ErrorFeedbackCompressor::payloadBytes(int64_t rows, int64_t cols) const
{
    return inner_->payloadBytes(rows, cols);
}

void
ErrorFeedbackCompressor::reset()
{
    residual_ = Tensor();
    inner_->reset();
}

LazyErrorBuffer::LazyErrorBuffer(std::unique_ptr<Compressor> inner,
                                 bool enabled)
    : inner_(std::move(inner)), enabled_(enabled)
{
    OPTIMUS_ASSERT(inner_ != nullptr);
}

int64_t
LazyErrorBuffer::send(const Tensor &input, Tensor &output)
{
    Tensor fed = input;
    if (enabled_) {
        if (error_.shape() == input.shape()) {
            fed.add(error_);
        } else if (error_.size() != 0) {
            // Same stale-state policy as ErrorFeedbackCompressor.
            warn("lazy error buffer: error %s dropped for input %s",
                 error_.shapeString().c_str(),
                 input.shapeString().c_str());
        }
    }
    const int64_t bytes = inner_->compress(fed, output);
    if (enabled_) {
        error_ = fed;
        error_.sub(output);
    }
    return bytes;
}

void
LazyErrorBuffer::reset()
{
    error_ = Tensor();
    inner_->reset();
}

} // namespace optimus
