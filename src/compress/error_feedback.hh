/**
 * @file
 * Error-feedback wrappers around lossy compressors.
 *
 * ErrorFeedbackCompressor implements the classic residual scheme
 * (add the previous message's compression error to the next message
 * before compressing). Optimus-CC uses this mechanism in two places
 * with very different semantics:
 *
 *  - Data-parallel gradient compression: the residual is applied to
 *    the *next iteration's* gradient, i.e. after a weight update has
 *    already happened, producing the staleness effect the paper
 *    blames for the quality drop (Section 7).
 *
 *  - Lazy error propagation (Section 5.1): the residual is applied
 *    to the *next micro-batch's* activation gradient within the same
 *    mini-batch, before any weight update, so no staleness occurs.
 *    LazyErrorBuffer is a thin alias capturing those semantics plus
 *    the instrumentation hooks used for Fig 11.
 */

#ifndef OPTIMUS_COMPRESS_ERROR_FEEDBACK_HH
#define OPTIMUS_COMPRESS_ERROR_FEEDBACK_HH

#include <memory>

#include "compress/compressor.hh"

namespace optimus
{

/** Residual error-feedback wrapper around any Compressor. */
class ErrorFeedbackCompressor : public Compressor
{
  public:
    /** Takes ownership of the inner compressor. */
    explicit ErrorFeedbackCompressor(std::unique_ptr<Compressor> inner);

    /**
     * Compresses (input + residual) and stores the new residual
     * (input + residual - output). If the input's shape differs
     * from the stored residual's, the stale residual is dropped
     * (with a warning) and feedback restarts from this message.
     */
    int64_t compress(const Tensor &input, Tensor &output) override;

    std::string name() const override;
    int64_t payloadBytes(int64_t rows, int64_t cols) const override;

    /** Clear both the residual and the inner compressor's state. */
    void reset() override;

    /** Current residual (empty before the first message). */
    const Tensor &residual() const { return residual_; }

    /** Inner compressor access (e.g., to query its rank). */
    Compressor &inner() { return *inner_; }

  private:
    std::unique_ptr<Compressor> inner_;
    Tensor residual_;
};

/**
 * Lazy error propagation buffer for one inter-stage channel. The
 * mechanism is residual error feedback across micro-batches; the
 * class additionally records the per-message statistics (error mean,
 * error vector, previous input) needed to verify the paper's Eq. 14
 * independence conditions (Fig 11).
 */
class LazyErrorBuffer
{
  public:
    /**
     * @param inner Lossy compressor for this channel (owned).
     * @param enabled When false, behaves as plain compression with
     *        no error carry-over ('CB (Non-LEP)' in Table 4).
     */
    LazyErrorBuffer(std::unique_ptr<Compressor> inner, bool enabled);

    /**
     * Process one micro-batch's activation gradient: adds the stored
     * error (when enabled), compresses, stores the new error. A
     * shape change drops the stale error (with a warning).
     *
     * @param input Exact activation gradient for this micro-batch.
     * @param output Receiver-side reconstruction.
     * @return payload bytes.
     */
    int64_t send(const Tensor &input, Tensor &output);

    /** True when lazy error propagation is active. */
    bool enabled() const { return enabled_; }

    /** Stored error from the last message (empty initially). */
    const Tensor &storedError() const { return error_; }

    /** Clear the stored error and the compressor's warm state. */
    void reset();

    /** Inner compressor access. */
    Compressor &inner() { return *inner_; }

  private:
    std::unique_ptr<Compressor> inner_;
    bool enabled_;
    Tensor error_;
};

} // namespace optimus

#endif // OPTIMUS_COMPRESS_ERROR_FEEDBACK_HH
