/**
 * @file
 * Quantization-based gradient compressors: TernGrad-style stochastic
 * ternarization and 1-bit sign quantization with per-sign scales
 * (as in signSGD / 1-bit Adam). Included as comparison baselines for
 * the compression-method design space the paper surveys (Section 2.3).
 */

#ifndef OPTIMUS_COMPRESS_QUANTIZE_HH
#define OPTIMUS_COMPRESS_QUANTIZE_HH

#include "compress/compressor.hh"
#include "util/random.hh"

namespace optimus
{

/**
 * TernGrad: each element becomes s * max|g| with s in {-1, 0, +1},
 * where P(s != 0) = |g| / max|g| (unbiased stochastic rounding).
 */
class TernaryCompressor : public Compressor
{
  public:
    explicit TernaryCompressor(uint64_t seed = 1);

    int64_t compress(const Tensor &input, Tensor &output) override;
    std::string name() const override { return "ternary"; }
    int64_t payloadBytes(int64_t rows, int64_t cols) const override;
    void reset() override;

  private:
    uint64_t seed_;
    Rng rng_;
};

/**
 * 1-bit quantization: transmit sign bits plus the mean magnitude of
 * the positive and negative partitions (two scales), reconstructing
 * sign(g) * scale(sign).
 */
class OneBitCompressor : public Compressor
{
  public:
    OneBitCompressor() = default;

    int64_t compress(const Tensor &input, Tensor &output) override;
    std::string name() const override { return "onebit"; }
    int64_t payloadBytes(int64_t rows, int64_t cols) const override;
};

} // namespace optimus

#endif // OPTIMUS_COMPRESS_QUANTIZE_HH
