#include "compress/topk.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <numeric>
#include <vector>

#include "obs/trace.hh"
#include "tensor/simd.hh"
#include "util/logging.hh"

namespace optimus
{

TopKCompressor::TopKCompressor(double fraction)
    : fraction_(fraction)
{
    OPTIMUS_ASSERT(fraction > 0.0 && fraction <= 1.0);
}

int64_t
TopKCompressor::keptCount(int64_t n) const
{
    int64_t k = static_cast<int64_t>(std::ceil(fraction_ * n));
    if (k < 1)
        k = 1;
    if (k > n)
        k = n;
    return k;
}

// optlint:hot — steady-state step path (zero-allocation contract).
int64_t
TopKCompressor::compress(const Tensor &input, Tensor &output)
{
    const int64_t n = input.size();
    const int64_t k = keptCount(n);
    obs::ScopedSpan span("compress", "topk.compress", -1, "elems", n);

    const float *src = input.data();
    output = Tensor(input.shape());
    float *dst = output.data();
    const simd::Tier tier = simd::tier();

    if (tier == simd::Tier::Scalar) {
        // Pre-dispatch selection, kept verbatim: OPTIMUS_SIMD=scalar
        // must reproduce the old tree bit for bit, including how
        // nth_element happened to break magnitude ties.
        // optlint:coldalloc — warmup capacity ratchet.
        order_.resize(n);
        std::vector<int64_t> &order = order_;
        std::iota(order.begin(), order.end(), 0);
        // fraction == 1.0 keeps every element; the O(n) selection
        // would only shuffle `order` for nothing.
        if (k < n) {
            std::nth_element(order.begin(), order.begin() + (k - 1),
                             order.end(),
                             [src](int64_t a, int64_t b) {
                                 return std::fabs(src[a]) >
                                        std::fabs(src[b]);
                             });
        }
        for (int64_t i = 0; i < k; ++i)
            dst[order[i]] = src[order[i]];
    } else if (k >= n) {
        std::memcpy(dst, src, sizeof(float) * n);
    } else {
        // SIMD tiers: select by magnitude threshold. nth_element
        // only has to produce the k-th largest magnitude (a value,
        // identical however the partition shakes out); the keep pass
        // takes everything strictly above it and the remaining slots
        // are filled with threshold ties in index order — a
        // deterministic kept set, unlike the scalar path's
        // partition-order ties.
        // Lane-width preference: the AVX-512 abs/keep passes
        // measure consistently behind AVX2 on this kernel (94.5 vs
        // 95.1 Melem/s baseline, reproduced locally) — both are
        // memory-bound streams whose masked stores fire on ~1% of
        // blocks, so the wider registers buy nothing and pay the
        // 512-bit port/frequency cost. Both tiers compute the same
        // exact values, so preferring the AVX2 lanes cannot change
        // a single output bit (DESIGN.md section 8).
        const simd::Tier lanes = tier == simd::Tier::Avx512
                                     ? simd::Tier::Avx2
                                     : tier;
        // optlint:coldalloc — warmup capacity ratchet.
        mag_.resize(n);
        std::vector<float> &mag = mag_;
        simd::absVals(lanes, mag.data(), src, n);
        sel_ = mag_;
        std::vector<float> &sel = sel_;
        std::nth_element(sel.begin(), sel.begin() + (k - 1),
                         sel.end(), std::greater<float>());
        const float thresh = sel[k - 1];
        int64_t kept =
            simd::keepAbove(lanes, dst, src, mag.data(), thresh, n);
        for (int64_t i = 0; i < n && kept < k; ++i) {
            if (mag[i] == thresh) {
                dst[i] = src[i];
                ++kept;
            }
        }
    }
    return payloadBytes(input.rank() == 2 ? input.rows() : 1,
                        input.rank() == 2 ? input.cols() : n);
}

std::string
TopKCompressor::name() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "topk(%.3f)", fraction_);
    return buf;
}

int64_t
TopKCompressor::payloadBytes(int64_t rows, int64_t cols) const
{
    const int64_t k = keptCount(rows * cols);
    // 4-byte value + 4-byte index per kept element.
    return k * 8;
}

} // namespace optimus
