#include "compress/topk.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "obs/trace.hh"
#include "util/logging.hh"

namespace optimus
{

TopKCompressor::TopKCompressor(double fraction)
    : fraction_(fraction)
{
    OPTIMUS_ASSERT(fraction > 0.0 && fraction <= 1.0);
}

int64_t
TopKCompressor::keptCount(int64_t n) const
{
    int64_t k = static_cast<int64_t>(std::ceil(fraction_ * n));
    if (k < 1)
        k = 1;
    if (k > n)
        k = n;
    return k;
}

int64_t
TopKCompressor::compress(const Tensor &input, Tensor &output)
{
    const int64_t n = input.size();
    const int64_t k = keptCount(n);
    obs::ScopedSpan span("compress", "topk.compress", -1, "elems", n);

    std::vector<int64_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    const float *src = input.data();
    // fraction == 1.0 keeps every element; the O(n) selection would
    // only shuffle `order` for nothing.
    if (k < n) {
        std::nth_element(order.begin(), order.begin() + (k - 1),
                         order.end(), [src](int64_t a, int64_t b) {
                             return std::fabs(src[a]) >
                                    std::fabs(src[b]);
                         });
    }

    output = Tensor(input.shape());
    float *dst = output.data();
    for (int64_t i = 0; i < k; ++i)
        dst[order[i]] = src[order[i]];
    return payloadBytes(input.rank() == 2 ? input.rows() : 1,
                        input.rank() == 2 ? input.cols() : n);
}

std::string
TopKCompressor::name() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "topk(%.3f)", fraction_);
    return buf;
}

int64_t
TopKCompressor::payloadBytes(int64_t rows, int64_t cols) const
{
    const int64_t k = keptCount(rows * cols);
    // 4-byte value + 4-byte index per kept element.
    return k * 8;
}

} // namespace optimus
