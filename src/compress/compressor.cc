#include "compress/compressor.hh"

#include <cstdio>

#include "compress/powersgd.hh"
#include "compress/quantize.hh"
#include "compress/topk.hh"
#include "util/logging.hh"

namespace optimus
{

int64_t
IdentityCompressor::compress(const Tensor &input, Tensor &output)
{
    output = input;
    return payloadBytes(input.rank() == 2 ? input.rows() : 1,
                        input.rank() == 2 ? input.cols()
                                          : input.size());
}

int64_t
IdentityCompressor::payloadBytes(int64_t rows, int64_t cols) const
{
    return static_cast<int64_t>(sizeof(float)) * rows * cols;
}

std::string
CompressorSpec::describe() const
{
    char buf[64];
    switch (kind) {
      case CompressorKind::None:
        return "none";
      case CompressorKind::PowerSgd:
        std::snprintf(buf, sizeof(buf), "powersgd(r=%d)", rank);
        return buf;
      case CompressorKind::TopK:
        std::snprintf(buf, sizeof(buf), "topk(%.3f)", topkFraction);
        return buf;
      case CompressorKind::Ternary:
        return "ternary";
      case CompressorKind::OneBit:
        return "onebit";
    }
    return "?";
}

std::unique_ptr<Compressor>
makeCompressor(const CompressorSpec &spec)
{
    switch (spec.kind) {
      case CompressorKind::None:
        return std::make_unique<IdentityCompressor>();
      case CompressorKind::PowerSgd:
        return std::make_unique<PowerSgdCompressor>(spec.rank,
                                                    spec.seed);
      case CompressorKind::TopK:
        return std::make_unique<TopKCompressor>(spec.topkFraction);
      case CompressorKind::Ternary:
        return std::make_unique<TernaryCompressor>(spec.seed);
      case CompressorKind::OneBit:
        return std::make_unique<OneBitCompressor>();
    }
    panic("unknown compressor kind %d", static_cast<int>(spec.kind));
}

CompressorKind
parseCompressorKind(const std::string &text)
{
    if (text == "none")
        return CompressorKind::None;
    if (text == "powersgd")
        return CompressorKind::PowerSgd;
    if (text == "topk")
        return CompressorKind::TopK;
    if (text == "ternary")
        return CompressorKind::Ternary;
    if (text == "onebit")
        return CompressorKind::OneBit;
    fatal("unknown compressor kind '%s'", text.c_str());
}

} // namespace optimus
