/**
 * @file
 * PowerSGD low-rank gradient compression (Vogels et al., NeurIPS'19),
 * the algorithm Optimus-CC adopts for both compressed backpropagation
 * and data-parallel gradient compression.
 *
 * A [rows x cols] matrix M is approximated as P * Q^T where P is
 * [rows x r] and Q is [cols x r]. A single power iteration suffices
 * because Q is warm-started from the previous message of the same
 * stream:
 *
 *   P = M * Q_prev;  P_hat = orthonormalize(P);  Q = M^T * P_hat;
 *   M_approx = P_hat * Q^T
 *
 * Payload is (rows + cols) * r floats instead of rows * cols.
 */

#ifndef OPTIMUS_COMPRESS_POWERSGD_HH
#define OPTIMUS_COMPRESS_POWERSGD_HH

#include <vector>

#include "compress/compressor.hh"
#include "util/random.hh"

namespace optimus
{

/**
 * In-place modified Gram-Schmidt orthonormalization of the columns
 * of @p m. Degenerate (near-zero) columns are replaced with zero
 * vectors rather than being renormalized, matching the reference
 * PowerSGD implementation's tolerance for rank deficiency.
 */
void orthonormalizeColumns(Tensor &m);

/** Single-stream PowerSGD channel with warm-started Q. */
class PowerSgdCompressor : public Compressor
{
  public:
    /**
     * @param rank Approximation rank r (clamped to min(rows, cols)
     *        at compression time).
     * @param seed Seed for the initial random Q.
     */
    explicit PowerSgdCompressor(int rank, uint64_t seed = 1);

    int64_t compress(const Tensor &input, Tensor &output) override;
    std::string name() const override;
    int64_t payloadBytes(int64_t rows, int64_t cols) const override;
    void reset() override;
    int64_t stateBytes() const override;

    /** Configured rank. */
    int rank() const { return rank_; }

    /** Warm-start matrix from the previous message (empty first). */
    const Tensor &warmQ() const { return q_; }

  private:
    int rank_;
    uint64_t seed_;
    Rng rng_;
    Tensor q_;
};

/**
 * The *distributed* PowerSGD mean-reduction protocol used for
 * data-parallel gradient compression across D workers. Unlike a
 * per-worker lossy channel, the all-reduces happen inside the
 * algorithm:
 *
 *   each worker d:  P_d = M_d * Q
 *   all-reduce:     P   = sum_d P_d            (r * rows floats)
 *   everyone:       P_hat = orthonormalize(P)
 *   each worker d:  Q_d = M_d^T * P_hat
 *   all-reduce:     Q   = (1/D) sum_d Q_d      (r * cols floats)
 *   everyone:       mean(M) ~= P_hat * Q^T
 *
 * All workers reconstruct the *same* approximation, so replicas stay
 * bit-identical -- the property that lets Optimus-CC compress DP
 * traffic without replica divergence.
 */
class DistributedPowerSgd
{
  public:
    /**
     * @param workers Number of data-parallel workers D.
     * @param rank Approximation rank.
     * @param seed Seed for the shared initial Q.
     */
    DistributedPowerSgd(int workers, int rank, uint64_t seed = 1);

    /**
     * Run one compressed mean-all-reduce over per-worker matrices.
     *
     * @param inputs One [rows x cols] gradient per worker.
     * @param mean_output Common reconstruction of the mean gradient.
     * @return total bytes crossing the inter-node network for the
     *         two all-reduce phases (ring-all-reduce volume is
     *         accounted by the perf model; this is the logical
     *         message size (rows + cols) * r * 4 per direction).
     */
    int64_t reduce(const std::vector<const Tensor *> &inputs,
                   Tensor &mean_output);

    /** Payload bytes for the perf model (both phases). */
    int64_t payloadBytes(int64_t rows, int64_t cols) const;

    /** Drop warm-start state. */
    void reset();

    /** Bytes of the shared warm-start matrix. */
    int64_t stateBytes() const;

    int rank() const { return rank_; }
    int workers() const { return workers_; }

  private:
    int workers_;
    int rank_;
    uint64_t seed_;
    Rng rng_;
    Tensor q_;
    /**
     * Persistent P/Q accumulation scratch, zeroed and reused across
     * reduce() calls so the steady state allocates nothing. Starting
     * from a zeroed buffer and accumulating is bitwise identical to
     * the old freshly-allocated tensors (which were zeroed too).
     */
    Tensor pScratch_;
    Tensor qScratch_;
};

} // namespace optimus

#endif // OPTIMUS_COMPRESS_POWERSGD_HH
