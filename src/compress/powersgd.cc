#include "compress/powersgd.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "obs/trace.hh"
#include "runtime/runtime.hh"
#include "tensor/matmul.hh"
#include "tensor/simd.hh"
#include "util/logging.hh"

namespace optimus
{

namespace
{

/**
 * Row-reduction grain for the Gram-Schmidt dot products. Fixed so
 * the chunked double-precision partial sums — combined in chunk
 * order — are reproducible at any thread count.
 */
constexpr int64_t kOrthoGrain = 2048;

} // namespace

// optlint:hot
void
orthonormalizeColumns(Tensor &m)
{
    OPTIMUS_ASSERT(m.rank() == 2);
    const int64_t rows = m.rows();
    const int64_t cols = m.cols();
    float *data = m.data();
    const simd::Tier tier = simd::tier();

    // Gather-free: the matrix is row-major, so column j is the span
    // data[j], data[j + cols], ... — walked in place through the
    // strided simd:: kernels. Per tier, each strided kernel is
    // bit-identical to gathering the column contiguous and running
    // the contiguous kernel (the strided dot replicates the tier's
    // exact lane order), so dropping the gather/scatter copies — and
    // the rows*cols staging buffer — moves no bits at any tier and
    // keeps the Scalar tier pinned to the pre-dispatch history.
    auto colDot = [&](const float *x, const float *y) {
        return parallelReduceSum(
            0, rows, kOrthoGrain, [&](int64_t lo, int64_t hi) {
                return simd::dotDoubleStrided(
                    tier, x + lo * cols, cols, y + lo * cols, cols,
                    hi - lo);
            });
    };

    for (int64_t j = 0; j < cols; ++j) {
        float *cj = data + j;
        const double norm_before_sq = colDot(cj, cj);
        // Subtract projections onto previous columns (modified
        // Gram-Schmidt: re-read the updated column each time).
        for (int64_t p = 0; p < j; ++p) {
            const float *cp = data + p;
            const double proj = colDot(cj, cp);
            parallelFor(0, rows, kOrthoGrain,
                        [&](int64_t lo, int64_t hi) {
                            simd::subScaledStrided(
                                tier, cj + lo * cols, cols,
                                cp + lo * cols, cols,
                                static_cast<float>(proj), hi - lo);
                        });
        }
        const double norm_sq = colDot(cj, cj);
        const double norm = std::sqrt(norm_sq);
        // A column that lost (almost) all of its norm to the
        // projections is linearly dependent on earlier columns;
        // renormalizing it would amplify float noise into a random
        // direction, so zero it instead.
        if (norm < 1e-8 || norm_sq < 1e-10 * norm_before_sq) {
            for (int64_t i = 0; i < rows; ++i)
                cj[i * cols] = 0.0f;
        } else {
            const float inv = static_cast<float>(1.0 / norm);
            parallelFor(0, rows, kOrthoGrain,
                        [&](int64_t lo, int64_t hi) {
                            simd::scaleStrided(tier, cj + lo * cols,
                                               cols, inv, hi - lo);
                        });
        }
    }
}

namespace
{

/** Clamp the configured rank to the matrix dimensions. */
int
effectiveRank(int rank, int64_t rows, int64_t cols)
{
    const int64_t limit = std::min(rows, cols);
    return static_cast<int>(std::min<int64_t>(rank, limit));
}

/** Ensure q is [cols x r]; (re)initialize randomly when stale. */
void
ensureWarmQ(Tensor &q, int64_t cols, int r, Rng &rng)
{
    if (q.rank() == 2 && q.rows() == cols && q.cols() == r)
        return;
    q = Tensor::randn({cols, r}, rng);
    orthonormalizeColumns(q);
}

/** Ensure scratch is a zeroed [rows x cols] tensor, reusing storage. */
void
ensureZeroed(Tensor &scratch, int64_t rows, int64_t cols)
{
    if (scratch.rank() == 2 && scratch.rows() == rows &&
        scratch.cols() == cols) {
        scratch.setZero();
        return;
    }
    scratch = Tensor({rows, cols});
}

} // namespace

PowerSgdCompressor::PowerSgdCompressor(int rank, uint64_t seed)
    : rank_(rank), seed_(seed), rng_(seed)
{
    OPTIMUS_ASSERT(rank >= 1);
}

int64_t
PowerSgdCompressor::compress(const Tensor &input, Tensor &output)
{
    OPTIMUS_ASSERT(input.rank() == 2);
    const int64_t rows = input.rows();
    const int64_t cols = input.cols();
    obs::ScopedSpan span("compress", "powersgd.compress", -1,
                         "elems", input.size());
    const int r = effectiveRank(rank_, rows, cols);

    ensureWarmQ(q_, cols, r, rng_);

    // Single power iteration against the warm-started Q.
    Tensor p = matmul(input, q_);        // [rows x r]
    orthonormalizeColumns(p);
    q_ = matmulTN(input, p);             // [cols x r] = M^T * P_hat

    // Receiver-side reconstruction: P_hat * Q^T.
    output = matmulNT(p, q_);            // [rows x cols]
    return payloadBytes(rows, cols);
}

std::string
PowerSgdCompressor::name() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "powersgd(r=%d)", rank_);
    return buf;
}

int64_t
PowerSgdCompressor::payloadBytes(int64_t rows, int64_t cols) const
{
    const int r = effectiveRank(rank_, rows, cols);
    return static_cast<int64_t>(sizeof(float)) * r * (rows + cols);
}

void
PowerSgdCompressor::reset()
{
    q_ = Tensor();
    rng_.seed(seed_);
}

int64_t
PowerSgdCompressor::stateBytes() const
{
    return static_cast<int64_t>(sizeof(float)) * q_.size();
}

DistributedPowerSgd::DistributedPowerSgd(int workers, int rank,
                                         uint64_t seed)
    : workers_(workers), rank_(rank), seed_(seed), rng_(seed)
{
    OPTIMUS_ASSERT(workers >= 1);
    OPTIMUS_ASSERT(rank >= 1);
}

int64_t
DistributedPowerSgd::reduce(const std::vector<const Tensor *> &inputs,
                            Tensor &mean_output)
{
    OPTIMUS_ASSERT(static_cast<int>(inputs.size()) == workers_);
    OPTIMUS_ASSERT(inputs[0] != nullptr && inputs[0]->rank() == 2);
    const int64_t rows = inputs[0]->rows();
    const int64_t cols = inputs[0]->cols();
    obs::ScopedSpan span("compress", "powersgd.reduce", -1, "elems",
                         inputs[0]->size());
    for (const Tensor *t : inputs) {
        OPTIMUS_ASSERT(t != nullptr && t->rank() == 2);
        OPTIMUS_ASSERT(t->rows() == rows && t->cols() == cols);
    }
    const int r = effectiveRank(rank_, rows, cols);

    ensureWarmQ(q_, cols, r, rng_);

    // Phase 1: local P_d = M_d * Q, then all-reduce(sum).
    ensureZeroed(pScratch_, rows, r);
    for (const Tensor *t : inputs)
        matmulAcc(pScratch_, *t, q_);
    orthonormalizeColumns(pScratch_);

    // Phase 2: local Q_d = M_d^T * P_hat, then all-reduce(mean).
    ensureZeroed(qScratch_, cols, r);
    for (const Tensor *t : inputs)
        matmulAccTN(qScratch_, *t, pScratch_);
    qScratch_.scale(1.0f / static_cast<float>(workers_));
    q_ = qScratch_;

    ensureZeroed(mean_output, rows, cols);
    matmulAccNT(mean_output, pScratch_, q_);
    return payloadBytes(rows, cols);
}

int64_t
DistributedPowerSgd::payloadBytes(int64_t rows, int64_t cols) const
{
    const int r = effectiveRank(rank_, rows, cols);
    return static_cast<int64_t>(sizeof(float)) * r * (rows + cols);
}

void
DistributedPowerSgd::reset()
{
    q_ = Tensor();
    pScratch_ = Tensor();
    qScratch_ = Tensor();
    rng_.seed(seed_);
}

int64_t
DistributedPowerSgd::stateBytes() const
{
    return static_cast<int64_t>(sizeof(float)) * q_.size();
}

} // namespace optimus
