#include "compress/quantize.hh"

#include <algorithm>
#include <cmath>

#include "tensor/simd.hh"

namespace optimus
{

TernaryCompressor::TernaryCompressor(uint64_t seed)
    : seed_(seed), rng_(seed)
{
}

// optlint:hot — steady-state step path (zero-allocation contract).
int64_t
TernaryCompressor::compress(const Tensor &input, Tensor &output)
{
    const int64_t n = input.size();
    output = Tensor(input.shape());
    const float scale = input.maxAbs();
    if (scale > 0.0f) {
        const float *src = input.data();
        float *dst = output.data();
        const simd::Tier tier = simd::tier();
        // Two passes per block: the acceptance probabilities
        // |x|/scale are IEEE divisions — bitwise identical in every
        // tier — and the RNG is still drawn once per element in
        // index order, so the ternary output is bit-exact across
        // tiers, not just within one.
        constexpr int64_t kBlock = 4096;
        float p[kBlock];
        for (int64_t base = 0; base < n; base += kBlock) {
            const int64_t len = std::min(kBlock, n - base);
            simd::absDiv(tier, p, src + base, scale, len);
            for (int64_t i = 0; i < len; ++i) {
                if (rng_.uniform() < p[i])
                    dst[base + i] =
                        src[base + i] > 0.0f ? scale : -scale;
            }
        }
    }
    return payloadBytes(1, n);
}

int64_t
TernaryCompressor::payloadBytes(int64_t rows, int64_t cols) const
{
    // 2 bits per element plus one fp32 scale.
    return (rows * cols * 2 + 7) / 8 + 4;
}

void
TernaryCompressor::reset()
{
    rng_.seed(seed_);
}

// optlint:hot — steady-state step path (zero-allocation contract).
int64_t
OneBitCompressor::compress(const Tensor &input, Tensor &output)
{
    const int64_t n = input.size();
    output = Tensor(input.shape());

    double pos_sum = 0.0, neg_sum = 0.0;
    int64_t pos_count = 0, neg_count = 0;
    const float *src = input.data();
    const simd::Tier tier = simd::tier();
    simd::signedSums(tier, src, n, pos_sum, neg_sum, pos_count,
                     neg_count);
    const float pos_scale =
        pos_count > 0 ? static_cast<float>(pos_sum / pos_count) : 0.0f;
    const float neg_scale =
        neg_count > 0 ? static_cast<float>(neg_sum / neg_count) : 0.0f;

    float *dst = output.data();
    simd::selectBySign(tier, dst, src, pos_scale, neg_scale, n);
    return payloadBytes(1, n);
}

int64_t
OneBitCompressor::payloadBytes(int64_t rows, int64_t cols) const
{
    // 1 bit per element plus two fp32 scales.
    return (rows * cols + 7) / 8 + 8;
}

} // namespace optimus
