#include "core/presets.hh"

namespace optimus
{
namespace presets
{

namespace
{

/** Quality-side CB config at the miniature-model scale. */
CbConfig
qualityCb(bool lep, bool epilogue_only)
{
    CbConfig cb;
    cb.enabled = true;
    cb.lazyErrorPropagation = lep;
    cb.epilogueOnly = epilogue_only;
    cb.spec.kind = CompressorKind::PowerSgd;
    cb.spec.rank = 4;
    return cb;
}

/** Quality-side DP compression at the miniature-model scale. */
DpCompressionConfig
qualityDp(double stage_fraction)
{
    DpCompressionConfig dp;
    dp.enabled = true;
    dp.stageFraction = stage_fraction;
    dp.errorFeedback = true;
    dp.spec.kind = CompressorKind::PowerSgd;
    dp.spec.rank = 4;
    return dp;
}

} // namespace

TechniquePreset
baseline()
{
    TechniquePreset preset;
    preset.name = "Baseline";
    preset.perf = OptimusCcPolicy::baseline();
    return preset;
}

TechniquePreset
cb()
{
    TechniquePreset preset;
    preset.name = "CB";
    preset.cb = qualityCb(true, true);
    preset.perf = OptimusCcPolicy::cbOnly();
    return preset;
}

TechniquePreset
cbFe()
{
    TechniquePreset preset = cb();
    preset.name = "CB+FE";
    preset.fusedEmbeddingSync = true;
    preset.perf = OptimusCcPolicy::cbFe();
    return preset;
}

TechniquePreset
cbFeSc()
{
    TechniquePreset preset = cbFe();
    preset.name = "CB+FE+SC";
    preset.dp = qualityDp(0.75);
    preset.perf = OptimusCcPolicy::cbFeSc();
    return preset;
}

TechniquePreset
naiveDp()
{
    TechniquePreset preset;
    preset.name = "naive DP";
    preset.dp = qualityDp(1.0);
    preset.perf = OptimusCcPolicy::baseline();
    preset.perf.sc = true;
    preset.perf.scStageFraction = 1.0;
    return preset;
}

TechniquePreset
naiveCb()
{
    TechniquePreset preset;
    preset.name = "naive CB";
    preset.cb = qualityCb(false, false);
    preset.perf = OptimusCcPolicy::cbOnly();
    preset.perf.cbEpilogueOnly = false;
    return preset;
}

TechniquePreset
cbNoLep()
{
    TechniquePreset preset;
    preset.name = "CB (Non-LEP)";
    preset.cb = qualityCb(false, true);
    preset.perf = OptimusCcPolicy::cbOnly();
    return preset;
}

TechniquePreset
cbTopk()
{
    TechniquePreset preset;
    preset.name = "Opt-CC (TopK)";
    preset.cb = qualityCb(true, true);
    preset.cb.spec.kind = CompressorKind::TopK;
    // Match the low-rank payload: rank-4 PowerSGD on an
    // [m x n] message keeps ~4(m+n)/(mn) of the volume; for the
    // miniature shapes that is roughly 25%.
    preset.cb.spec.topkFraction = 0.25;
    preset.perf = OptimusCcPolicy::cbOnly();
    return preset;
}

std::vector<TechniquePreset>
ablationLadder()
{
    return {baseline(), cb(), cbFe(), cbFeSc()};
}

} // namespace presets
} // namespace optimus
