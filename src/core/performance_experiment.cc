#include "core/performance_experiment.hh"

#include "util/logging.hh"

namespace optimus
{

PerformanceRow
runPerformanceRow(const HardwareConfig &hw, const GptModelSpec &model,
                  const ParallelConfig &parallel,
                  const TrainingPlan &plan,
                  const TechniquePreset &preset)
{
    MappedWorkload workload(hw, model, parallel, plan);
    const PipeCostSpec spec = buildCostSpec(workload, preset.perf);

    PerformanceRow row;
    row.config = preset.name;
    row.breakdown = computeBreakdown(spec);
    row.iterationSeconds = row.breakdown.total;
    row.trainingDays =
        row.iterationSeconds * plan.iterations / 86400.0;
    return row;
}

std::vector<PerformanceRow>
runPerformanceAblation(const HardwareConfig &hw,
                       const GptModelSpec &model,
                       const ParallelConfig &parallel,
                       const TrainingPlan &plan,
                       const std::vector<TechniquePreset> &presets)
{
    OPTIMUS_ASSERT(!presets.empty());
    std::vector<PerformanceRow> rows;
    rows.reserve(presets.size());
    for (const auto &preset : presets)
        rows.push_back(
            runPerformanceRow(hw, model, parallel, plan, preset));
    for (auto &row : rows) {
        row.speedup =
            rows[0].iterationSeconds / row.iterationSeconds - 1.0;
    }
    return rows;
}

ReplayResult
replayRecordedTrace(const CommTrace &trace, const HardwareConfig &hw,
                    const GptModelSpec &model,
                    const ParallelConfig &parallel,
                    const TrainingPlan &plan)
{
    MappedWorkload workload(hw, model, parallel, plan);
    return TraceReplayer(workload).replay(trace);
}

} // namespace optimus
