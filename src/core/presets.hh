/**
 * @file
 * Named technique combinations matching the paper's evaluation
 * columns. Each preset carries both the *quality-side* settings
 * (what the real training engine compresses, and how) and the
 * *performance-side* policy (what the timing simulator models), so
 * an experiment can report both halves of every table consistently.
 */

#ifndef OPTIMUS_CORE_PRESETS_HH
#define OPTIMUS_CORE_PRESETS_HH

#include <string>
#include <vector>

#include "parallel/channels.hh"
#include "parallel/data_parallel.hh"
#include "pipesim/pipe_model.hh"

namespace optimus
{

/** One named configuration of Optimus-CC techniques. */
struct TechniquePreset
{
    std::string name;
    CbConfig cb;
    DpCompressionConfig dp;
    bool fusedEmbeddingSync = false;
    OptimusCcPolicy perf;
};

/**
 * The standard preset catalogue. Quality-side compression ranks are
 * sized for the miniature model (hidden ~32): rank 4 keeps PowerSGD
 * in the regime where it captures most of the gradient energy per
 * message (as the paper's rank 16 does on [8192 x 3072] messages)
 * while still cutting the payload ~4x; perf-side ranks use the
 * paper's settings (CB rank 16, DP rank 128).
 */
namespace presets
{

/** Megatron-LM without compression. */
TechniquePreset baseline();

/** Compressed backpropagation (LEP + epilogue-only). */
TechniquePreset cb();

/** CB + fused embedding synchronization. */
TechniquePreset cbFe();

/** CB + FE + selective stage compression (the full system). */
TechniquePreset cbFeSc();

/** Naive PowerSGD on DP traffic only (Fig 3 'naive DP'). */
TechniquePreset naiveDp();

/** Naive inter-stage compression: no LEP, no epilogue policy
 *  (Fig 3 'naive CB'). */
TechniquePreset naiveCb();

/** CB without lazy error propagation (Table 4 'CB (Non-LEP)'). */
TechniquePreset cbNoLep();

/** Inter-stage compression with top-k instead of low-rank
 *  (Fig 3 'Opt-CC (TopK)'). */
TechniquePreset cbTopk();

/** All presets used by the Table 2 / Table 3 ablation. */
std::vector<TechniquePreset> ablationLadder();

} // namespace presets

} // namespace optimus

#endif // OPTIMUS_CORE_PRESETS_HH
