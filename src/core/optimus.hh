/**
 * @file
 * Umbrella header for the Optimus-CC reproduction library.
 *
 * The library has two pillars:
 *
 *  1. A real (CPU, miniature-scale, distribution-faithful) training
 *     stack that implements the paper's three techniques on actual
 *     tensors: compressed backpropagation with lazy error
 *     propagation and epilogue-only compression, fused embedding
 *     synchronization, and selective stage compression
 *     (parallel/trainer3d.hh via core/quality_experiment.hh).
 *
 *  2. A paper-scale performance model: GPT-2.5B..175B mapped onto a
 *     128-GPU A100 cluster with a deterministic 1F1B pipeline
 *     simulator (pipesim/pipe_model.hh via
 *     core/performance_experiment.hh).
 *
 * Quick start:
 * @code
 *   QualityRunConfig qc;
 *   auto result = runQualityExperiment(qc, presets::cbFe());
 *   // result.finalPerplexity ~ the uncompressed baseline's
 *
 *   auto rows = runPerformanceAblation(
 *       HardwareConfig::a100Cluster(), GptModelSpec::gpt8_3b(),
 *       ParallelConfig{}, TrainingPlan{}, presets::ablationLadder());
 * @endcode
 */

#ifndef OPTIMUS_CORE_OPTIMUS_HH
#define OPTIMUS_CORE_OPTIMUS_HH

#include "core/performance_experiment.hh"
#include "core/presets.hh"
#include "core/quality_experiment.hh"
#include "core/version.hh"

#endif // OPTIMUS_CORE_OPTIMUS_HH
