/**
 * @file
 * The performance-pillar experiment runner: evaluates technique
 * presets on the paper-scale cluster/pipeline simulator and emits
 * the rows of Table 2, the Fig 3/10 breakdowns, and the Fig 13/14/16
 * sweeps.
 */

#ifndef OPTIMUS_CORE_PERFORMANCE_EXPERIMENT_HH
#define OPTIMUS_CORE_PERFORMANCE_EXPERIMENT_HH

#include <string>
#include <vector>

#include "core/presets.hh"
#include "pipesim/trace_replay.hh"

namespace optimus
{

/** One row of a Table 2-style performance comparison. */
struct PerformanceRow
{
    std::string config;
    double iterationSeconds = 0.0;
    double trainingDays = 0.0;
    /** Speedup over the first (baseline) row: T_base/T - 1. */
    double speedup = 0.0;
    IterationBreakdown breakdown;
};

/**
 * Run the preset ladder on one (hardware, model, layout, plan) and
 * return one row per preset; row 0 is the speedup reference.
 */
std::vector<PerformanceRow>
runPerformanceAblation(const HardwareConfig &hw,
                       const GptModelSpec &model,
                       const ParallelConfig &parallel,
                       const TrainingPlan &plan,
                       const std::vector<TechniquePreset> &presets);

/** Convenience: the Table 1 cluster and plan. */
PerformanceRow
runPerformanceRow(const HardwareConfig &hw, const GptModelSpec &model,
                  const ParallelConfig &parallel,
                  const TrainingPlan &plan,
                  const TechniquePreset &preset);

/**
 * Replay a trace recorded from the real trainer (see
 * Trainer3dConfig::traceCommunication) through the cluster's link
 * classes and alpha-beta cost model — the bridge from the quality
 * pillar's real traffic to the performance pillar's timing.
 */
ReplayResult replayRecordedTrace(const CommTrace &trace,
                                 const HardwareConfig &hw,
                                 const GptModelSpec &model,
                                 const ParallelConfig &parallel,
                                 const TrainingPlan &plan);

} // namespace optimus

#endif // OPTIMUS_CORE_PERFORMANCE_EXPERIMENT_HH
