#include "core/auto_tuner.hh"

#include <algorithm>

#include "util/logging.hh"

namespace optimus
{

TuneResult
autoTuneSelectiveCompression(const MappedWorkload &workload,
                             const QualityRunConfig &quality,
                             const TuneRequest &request)
{
    OPTIMUS_ASSERT(!request.stageFractions.empty());
    OPTIMUS_ASSERT(!request.ranks.empty());
    OPTIMUS_ASSERT(request.rankScale >= 1);

    const double baseline_days =
        trainingDays(workload, OptimusCcPolicy::baseline());

    TuneResult result;
    for (double fraction : request.stageFractions) {
        for (int rank : request.ranks) {
            TuneCandidate candidate;
            candidate.stageFraction = fraction;
            candidate.rank = rank;

            // Speed axis: paper-scale simulator.
            OptimusCcPolicy policy = OptimusCcPolicy::baseline();
            policy.sc = fraction > 0.0;
            policy.scStageFraction = fraction;
            policy.dpRank = rank;
            candidate.speedup =
                baseline_days / trainingDays(workload, policy) - 1.0;

            // Quality axis: reduced-gradient error on the real
            // engine at the scaled-down rank.
            TechniquePreset preset;
            preset.name = "tune";
            preset.dp.enabled = fraction > 0.0;
            preset.dp.stageFraction = fraction;
            preset.dp.spec.kind = CompressorKind::PowerSgd;
            preset.dp.spec.rank =
                std::max(1, rank / request.rankScale);
            candidate.gradientError = gradientApproximationError(
                quality, preset, request.trials);

            result.candidates.push_back(candidate);
        }
    }

    // Pareto frontier: a candidate is dominated when another has
    // both more speedup and less error.
    for (auto &c : result.candidates) {
        c.onFrontier = std::none_of(
            result.candidates.begin(), result.candidates.end(),
            [&c](const TuneCandidate &other) {
                return other.speedup > c.speedup &&
                       other.gradientError < c.gradientError;
            });
    }

    result.best.speedup = -1.0;
    for (const auto &c : result.candidates) {
        if (c.gradientError <= request.maxGradientError &&
            c.speedup > result.best.speedup) {
            result.best = c;
            result.foundFeasible = true;
        }
    }
    return result;
}

} // namespace optimus
