#include "core/quality_experiment.hh"

#include <cmath>

#include "data/zeroshot.hh"
#include "obs/metrics.hh"
#include "util/logging.hh"

namespace optimus
{

double
QualityResult::interStageSaving() const
{
    if (interStageBytesExact <= 0)
        return 0.0;
    return 1.0 - static_cast<double>(interStageBytes) /
                     static_cast<double>(interStageBytesExact);
}

QualityResult
runQualityExperiment(const QualityRunConfig &config,
                     const TechniquePreset &preset)
{
    OPTIMUS_ASSERT(config.iterations >= 1);
    OPTIMUS_ASSERT(config.model.vocab == config.corpus.vocab);

    Trainer3dConfig tc;
    tc.model = config.model;
    tc.dataParallel = config.dataParallel;
    tc.pipelineStages = config.pipelineStages;
    tc.microBatches = config.microBatches;
    tc.microBatchSize = config.microBatchSize;
    tc.learningRate = config.learningRate;
    tc.cb = preset.cb;
    tc.dp = preset.dp;
    tc.fusedEmbeddingSync = preset.fusedEmbeddingSync;
    tc.instrumentChannels = config.instrument;
    tc.reduceMode = config.reduceMode;
    tc.bucketBytes = config.bucketBytes;
    tc.traceCommunication = config.traceCommunication;
    tc.tracePath = config.tracePath;

    if (config.collectMetrics) {
        obs::MetricsRegistry::instance().resetValues();
        obs::enableMetrics(true);
    }

    Trainer3d trainer(tc);
    SyntheticCorpus corpus(config.corpus);
    LmDataset train(corpus.train(), config.model.seqLen);
    LmDataset val(corpus.validation(), config.model.seqLen);

    QualityResult result;
    result.presetName = preset.name;

    Rng data_rng(config.dataSeed);
    const int tail_begin = config.iterations * 9 / 10;
    int tail_count = 0;
    for (int it = 0; it < config.iterations; ++it) {
        const IterationStats stats =
            trainer.trainIteration(train, data_rng);
        // optlint:allow(COM01) event-derived per-iteration fold.
        result.interStageBytes += stats.interStageBytes;
        // optlint:allow(COM01) same event-derived fold.
        result.interStageBytesExact += stats.interStageBytesExact;
        result.dpBytes = stats.dpVolume.actualBytes;
        result.dpBytesExact = stats.dpVolume.exactBytes;
        if (it >= tail_begin) {
            result.tailTrainLoss += stats.loss;
            ++tail_count;
        }
        if (config.evalEvery > 0 &&
            ((it + 1) % config.evalEvery == 0 || it == 0)) {
            result.pplCurve.emplace_back(
                it + 1, trainer.validatePerplexity(val));
        }
    }
    if (tail_count > 0)
        result.tailTrainLoss /= tail_count;

    result.finalPerplexity = trainer.validatePerplexity(val);
    if (config.evalEvery > 0 &&
        (result.pplCurve.empty() ||
         result.pplCurve.back().first != config.iterations)) {
        result.pplCurve.emplace_back(config.iterations,
                                     result.finalPerplexity);
    }

    if (config.zeroShotExamples > 0) {
        ZeroShotSuiteConfig suite;
        suite.examplesPerTask = config.zeroShotExamples;
        suite.seed = 99;
        const auto tasks = makeStandardZeroShotTasks(
            corpus.validation(), config.model.seqLen,
            config.model.vocab, suite);
        for (const auto &task : tasks)
            result.zeroShot[task.name()] =
                task.evaluate(trainer.scorer());
    }

    if (config.instrument) {
        for (int d = 0; d < config.dataParallel; ++d) {
            for (int s = 1; s < config.pipelineStages; ++s) {
                const auto &stats =
                    trainer.channel(d, s).sendStats();
                result.channelStats.insert(result.channelStats.end(),
                                           stats.begin(),
                                           stats.end());
            }
        }
    }

    result.lepBufferBytes = trainer.lepBufferBytes();
    result.compressorStateBytes = trainer.compressorStateBytes();
    result.parameterBytes = trainer.parameterBytes();

    if (const CommTrace *trace = trainer.trace()) {
        result.traceEvents = static_cast<int64_t>(trace->size());
        result.traceInterStage =
            trace->volume(CommPhase::InterStage);
        result.traceDp = trace->volume(CommPhase::DpReduce);
        result.traceEmb = trace->volume(CommPhase::EmbSync);
    }
    if (config.collectMetrics) {
        obs::enableMetrics(false);
        result.metrics =
            obs::MetricsRegistry::instance().counterSnapshot();
    }
    return result;
}

double
perplexityFloor(const QualityRunConfig &config)
{
    SyntheticCorpus corpus(config.corpus);
    return std::exp(corpus.entropyFloor());
}

double
gradientApproximationError(const QualityRunConfig &config,
                           const TechniquePreset &preset, int trials)
{
    OPTIMUS_ASSERT(trials >= 1);

    Trainer3dConfig tc;
    tc.model = config.model;
    tc.dataParallel = config.dataParallel;
    tc.pipelineStages = config.pipelineStages;
    tc.microBatches = config.microBatches;
    tc.microBatchSize = config.microBatchSize;
    tc.applyUpdates = false; // keep the accumulated gradients
    tc.reduceMode = config.reduceMode;
    tc.bucketBytes = config.bucketBytes;

    Trainer3dConfig tc_exact = tc;
    tc_exact.cb = CbConfig{};
    tc_exact.dp = DpCompressionConfig{};

    Trainer3dConfig tc_compressed = tc;
    tc_compressed.cb = preset.cb;
    tc_compressed.dp = preset.dp;
    tc_compressed.fusedEmbeddingSync = preset.fusedEmbeddingSync;

    SyntheticCorpus corpus(config.corpus);
    LmDataset train(corpus.train(), config.model.seqLen);

    double total_rel_err = 0.0;
    int measured = 0;
    for (int trial = 0; trial < trials; ++trial) {
        // Fresh trainers per trial so gradients start from zero;
        // vary the model seed so the measurement is not tied to one
        // initialization.
        tc_exact.model.seed = config.model.seed + trial;
        tc_compressed.model.seed = config.model.seed + trial;
        Trainer3d exact(tc_exact);
        Trainer3d compressed(tc_compressed);

        // Identical data order.
        Rng rng_a(config.dataSeed + trial);
        Rng rng_b(config.dataSeed + trial);
        exact.trainIteration(train, rng_a);
        compressed.trainIteration(train, rng_b);

        // Compare the reduced gradients of replica 0, stage by
        // stage (parameter lists align by construction).
        double num_sq = 0.0, den_sq = 0.0;
        for (int p = 0; p < tc.pipelineStages; ++p) {
            const auto ga = exact.stage(0, p).params();
            const auto gb = compressed.stage(0, p).params();
            OPTIMUS_ASSERT(ga.size() == gb.size());
            for (size_t j = 0; j < ga.size(); ++j) {
                const Tensor &a = ga[j]->grad;
                const Tensor &b = gb[j]->grad;
                OPTIMUS_ASSERT(a.size() == b.size());
                for (int64_t i = 0; i < a.size(); ++i) {
                    const double d = static_cast<double>(a[i]) - b[i];
                    num_sq += d * d;
                    den_sq += static_cast<double>(a[i]) * a[i];
                }
            }
        }
        if (den_sq > 0.0) {
            total_rel_err += std::sqrt(num_sq / den_sq);
            ++measured;
        }
    }
    OPTIMUS_ASSERT(measured > 0);
    return total_rel_err / measured;
}

} // namespace optimus
