/**
 * @file
 * Library version constants.
 */

#ifndef OPTIMUS_CORE_VERSION_HH
#define OPTIMUS_CORE_VERSION_HH

namespace optimus
{

constexpr int kVersionMajor = 1;
constexpr int kVersionMinor = 0;
constexpr int kVersionPatch = 0;
constexpr const char *kVersionString = "1.0.0";

} // namespace optimus

#endif // OPTIMUS_CORE_VERSION_HH
