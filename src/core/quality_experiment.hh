/**
 * @file
 * The quality-pillar experiment runner: trains the miniature GPT
 * with the real 3D-parallel engine under a technique preset and
 * reports the metrics the paper's tables and figures are built
 * from -- validation perplexity (curve and final), zero-shot probe
 * accuracies, communication volumes, and the Fig 11 channel
 * statistics.
 */

#ifndef OPTIMUS_CORE_QUALITY_EXPERIMENT_HH
#define OPTIMUS_CORE_QUALITY_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "data/corpus.hh"
#include "parallel/trainer3d.hh"

namespace optimus
{

/** Scale and schedule of one quality run. */
struct QualityRunConfig
{
    /** Miniature model (defaults chosen for ~seconds-per-run). */
    GptConfig model{24, 32, 4, 4, 8, 0.02f, 77};
    int dataParallel = 2;
    int pipelineStages = 2;
    int microBatches = 4;
    int microBatchSize = 4;
    float learningRate = 5e-3f;
    int iterations = 300;
    /** Validation cadence for the PPL curve (0 = final only). */
    int evalEvery = 0;
    CorpusConfig corpus{24, 20000, 4, 0.55, 0.3, 0.05, 5};
    uint64_t dataSeed = 55;
    /** Collect Fig 11 channel statistics. */
    bool instrument = false;
    /** Zero-shot probe examples per task (0 = skip zero-shot). */
    int zeroShotExamples = 0;
    /**
     * DP reduce scheduling. All modes are bitwise identical (see
     * reduce_engine.hh), so quality results never depend on this;
     * it exists so quality runs exercise the production path.
     */
    DpReduceMode reduceMode = DpReduceMode::Overlapped;
    /** Bucket capacity for the bucketed reduce modes. */
    int64_t bucketBytes = 256 * 1024;
    /**
     * Record the run's communication into a CommTrace and fold the
     * per-phase totals into the result (pure observation; results
     * are bitwise identical either way).
     */
    bool traceCommunication = false;
    /**
     * Collect the obs:: metrics registry over the run and snapshot
     * it into QualityResult::metrics (sorted names, integer values;
     * deterministic at any OPTIMUS_THREADS). Resets the registry's
     * values at the start of the run.
     */
    bool collectMetrics = false;
    /**
     * Span-trace output path, plumbed to Trainer3dConfig::tracePath
     * (written when the run's trainer is destroyed).
     */
    std::string tracePath;
};

/** Everything a quality run measures. */
struct QualityResult
{
    std::string presetName;
    double finalPerplexity = 0.0;
    /** (iteration, validation PPL) samples. */
    std::vector<std::pair<int, double>> pplCurve;
    /** Task name -> accuracy (when zeroShotExamples > 0). */
    std::map<std::string, double> zeroShot;
    /** Inter-stage backward bytes: sent vs uncompressed. */
    int64_t interStageBytes = 0;
    int64_t interStageBytesExact = 0;
    /** DP gradient bytes: sent vs uncompressed (last iteration). */
    int64_t dpBytes = 0;
    int64_t dpBytesExact = 0;
    /** Fig 11 per-send channel statistics (instrumented runs). */
    std::vector<ChannelSendStats> channelStats;
    /** Fig 12-style measured buffer bytes. */
    int64_t lepBufferBytes = 0;
    int64_t compressorStateBytes = 0;
    int64_t parameterBytes = 0;
    /** Mean training loss of the last 10% of iterations. */
    double tailTrainLoss = 0.0;
    /** Trace summary (traceCommunication runs only). */
    int64_t traceEvents = 0;
    CommVolume traceInterStage;
    CommVolume traceDp;
    CommVolume traceEmb;
    /** Metrics-registry snapshot (collectMetrics runs only). */
    std::map<std::string, int64_t> metrics;

    /** Volume reduction of inter-stage traffic, in [0, 1). */
    double interStageSaving() const;
};

/** Train under @p preset and measure. */
QualityResult runQualityExperiment(const QualityRunConfig &config,
                                   const TechniquePreset &preset);

/**
 * Entropy floor of the run's corpus as a perplexity (the best any
 * model could reach), for annotating results.
 */
double perplexityFloor(const QualityRunConfig &config);

/**
 * Direct measurement of Section 5.1's claim: how well does the
 * accumulated weight gradient under compressed backpropagation
 * approximate the exact gradient (Eq. 10 vs Eq. 7)?
 *
 * Two trainers with identical initial weights process the same
 * mini-batch (for several independent mini-batches), one exactly
 * and one under @p preset's compression; the reported value is the
 * mean relative L2 error of the accumulated gradients,
 * ||G* - G|| / ||G||, averaged over parameters and trials.
 *
 * @param trials Number of independent mini-batches measured.
 */
double gradientApproximationError(const QualityRunConfig &config,
                                  const TechniquePreset &preset,
                                  int trials = 4);

} // namespace optimus

#endif // OPTIMUS_CORE_QUALITY_EXPERIMENT_HH
