/**
 * @file
 * Automatic co-tuning of selective stage compression and the
 * compression rank -- the paper's stated future work ("an even
 * better trade-off can be achieved by automatically choosing the
 * right combination of the compression rank and the number of
 * stages", Section 9.4).
 *
 * Each candidate (stage fraction, rank) is scored on both axes the
 * paper's Fig 13 plots: projected speedup from the paper-scale
 * cluster simulator, and a quality proxy measured on the real
 * miniature engine -- the relative error of the reduced gradient
 * under that compression setting (cheap, deterministic, and
 * monotone in compression aggressiveness, unlike a noisy end-task
 * PPL). The tuner returns the Pareto frontier and the fastest
 * candidate within a gradient-error budget.
 */

#ifndef OPTIMUS_CORE_AUTO_TUNER_HH
#define OPTIMUS_CORE_AUTO_TUNER_HH

#include <vector>

#include "core/quality_experiment.hh"

namespace optimus
{

/** One evaluated (stage fraction, rank) combination. */
struct TuneCandidate
{
    double stageFraction = 0.0;
    /** Paper-scale DP compression rank. */
    int rank = 128;
    /** Speedup over the uncompressed baseline (perf simulator). */
    double speedup = 0.0;
    /** Relative reduced-gradient error (miniature engine). */
    double gradientError = 0.0;
    /** True when no other candidate dominates this one. */
    bool onFrontier = false;
};

/** Search space and budget for one tuning run. */
struct TuneRequest
{
    /** Stage fractions to try. */
    std::vector<double> stageFractions{0.25, 0.5, 0.75, 1.0};
    /** Paper-scale ranks to try. */
    std::vector<int> ranks{64, 128, 256};
    /**
     * Paper-scale rank corresponding to miniature rank 1 (the
     * miniature matrices are ~32x narrower than GPT-2.5B's).
     */
    int rankScale = 32;
    /** Largest acceptable gradient error. */
    double maxGradientError = 0.5;
    /** Trials for each gradient-error measurement. */
    int trials = 2;
};

/** Tuning output. */
struct TuneResult
{
    std::vector<TuneCandidate> candidates;
    /** Fastest candidate within the error budget (speedup < 0 when
     *  no candidate qualifies). */
    TuneCandidate best;
    bool foundFeasible = false;
};

/**
 * Evaluate the grid and pick the best combination.
 *
 * @param workload Paper-scale mapping for the speed axis.
 * @param quality Miniature-run configuration for the quality axis.
 * @param request Search space and budget.
 */
TuneResult autoTuneSelectiveCompression(const MappedWorkload &workload,
                                        const QualityRunConfig &quality,
                                        const TuneRequest &request);

} // namespace optimus

#endif // OPTIMUS_CORE_AUTO_TUNER_HH
