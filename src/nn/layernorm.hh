/**
 * @file
 * Row-wise layer normalization with learned gain/bias. The paper's
 * Eq. 14 argument leans on normalization keeping activation averages
 * near zero, which the Fig 11 reproduction verifies empirically.
 */

#ifndef OPTIMUS_NN_LAYERNORM_HH
#define OPTIMUS_NN_LAYERNORM_HH

#include "nn/layer.hh"
#include "util/reuse_ring.hh"

namespace optimus
{

/** y = gamma * (x - mean(x)) / sqrt(var(x) + eps) + beta, per row. */
class LayerNorm : public Layer
{
  public:
    /**
     * @param label Parameter name prefix.
     * @param features Normalized feature count.
     * @param eps Variance floor.
     */
    LayerNorm(const std::string &label, int64_t features,
              float eps = 1e-5f);

    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &dy) override;
    std::vector<ParamPtr> params() const override;
    std::string name() const override;
    void clearStash() override { stash_.clear(); }
    size_t stashDepth() const override { return stash_.size(); }

  private:
    struct Stash
    {
        Tensor normalized; // x_hat, needed for dgamma and dx
        std::vector<float> invStd;
    };

    /** Stashless per-row normalization (Infer mode; stateless). */
    Tensor forwardInfer(const Tensor &x) const;

    ParamPtr gamma_;
    ParamPtr beta_;
    float eps_;
    ReuseRing<Stash> stash_;
};

} // namespace optimus

#endif // OPTIMUS_NN_LAYERNORM_HH
