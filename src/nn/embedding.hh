/**
 * @file
 * Token + position embedding and the tied-weight output head.
 *
 * GPT shares the token-embedding matrix between the input lookup
 * (first pipeline stage) and the output projection (last pipeline
 * stage). Under pipeline parallelism these become two *copies* on
 * different devices whose gradients must be synchronized -- exactly
 * the "embedding synchronization" traffic Optimus-CC's fused
 * embedding synchronization (Section 6) targets. Under monolithic
 * execution both layers can share one Param, and gradient
 * contributions accumulate naturally.
 */

#ifndef OPTIMUS_NN_EMBEDDING_HH
#define OPTIMUS_NN_EMBEDDING_HH

#include <cstdint>

#include "nn/layer.hh"
#include "util/random.hh"
#include "util/reuse_ring.hh"

namespace optimus
{

/**
 * Input embedding: tokens -> [batch*seq x hidden] activations, the
 * sum of a token embedding row and a learned position embedding row.
 * Not a Layer (its input is token ids, not a float tensor); the
 * pipeline engine calls it explicitly on the first stage.
 */
class EmbeddingLayer
{
  public:
    /**
     * @param label Parameter name prefix.
     * @param vocab Vocabulary size.
     * @param hidden Embedding width.
     * @param max_seq Maximum sequence length (position table size).
     * @param rng Init stream.
     * @param init_std Embedding init standard deviation.
     */
    EmbeddingLayer(const std::string &label, int64_t vocab,
                   int64_t hidden, int64_t max_seq, Rng &rng,
                   float init_std = 0.02f);

    /**
     * Look up a [batch x seq] token grid (row-major vector of ids).
     * @return [batch*seq x hidden] activations.
     */
    Tensor forward(const std::vector<int32_t> &tokens, int64_t batch,
                   int64_t seq);

    /**
     * Stashless lookup of @p n consecutive positions of one
     * sequence starting at position @p pos0 (the serving path:
     * prefill embeds the prompt at pos0 = 0, decode embeds the
     * newest token at pos0 = len - 1). Same per-row arithmetic as
     * forward(); never touches the stash.
     * @return [n x hidden] activations.
     */
    Tensor embedRows(const int32_t *tokens, int64_t n,
                     int64_t pos0) const;

    /** Scatter-accumulate gradients for the oldest stashed batch. */
    void backward(const Tensor &dy);

    std::vector<ParamPtr> params() const;
    void clearStash() { stash_.clear(); }
    size_t stashDepth() const { return stash_.size(); }

    /** Token embedding table [vocab x hidden] (shared for tying). */
    ParamPtr tokenTable() const { return token_; }

    /** Position embedding table [max_seq x hidden]. */
    ParamPtr positionTable() const { return position_; }

    int64_t vocab() const { return token_->value.rows(); }
    int64_t hidden() const { return token_->value.cols(); }

  private:
    struct Stash
    {
        std::vector<int32_t> tokens;
        int64_t batch;
        int64_t seq;
    };

    ParamPtr token_;
    ParamPtr position_;
    ReuseRing<Stash> stash_;
};

/**
 * Output projection onto the vocabulary using the (tied) token
 * embedding table: logits = H * E^T. Holds a ParamPtr that is either
 * the very same object as the input embedding's table (monolithic /
 * single-stage execution) or a stage-local copy that the embedding
 * synchronization step keeps consistent (pipeline parallelism).
 */
class OutputHead : public Layer
{
  public:
    /** @param token_table [vocab x hidden] embedding parameter. */
    explicit OutputHead(ParamPtr token_table);

    Tensor forward(const Tensor &h) override;
    Tensor backward(const Tensor &dlogits) override;
    std::vector<ParamPtr> params() const override;
    std::string name() const override { return "output_head"; }
    void clearStash() override { stash_.clear(); }
    size_t stashDepth() const override { return stash_.size(); }

    ParamPtr tokenTable() const { return token_; }

  private:
    ParamPtr token_;
    ReuseRing<Tensor> stash_;
};

} // namespace optimus

#endif // OPTIMUS_NN_EMBEDDING_HH
