/**
 * @file
 * Pre-norm transformer block (GPT-2 style):
 *   x -> x + attn(ln1(x)) -> r + mlp(ln2(r))
 * with mlp = Linear(h, 4h) -> GELU -> Linear(4h, h).
 */

#ifndef OPTIMUS_NN_BLOCK_HH
#define OPTIMUS_NN_BLOCK_HH

#include <memory>

#include "nn/activation.hh"
#include "nn/attention.hh"
#include "nn/layer.hh"
#include "nn/layernorm.hh"
#include "nn/linear.hh"

namespace optimus
{

/** One residual transformer block. */
class TransformerBlock : public Layer
{
  public:
    /**
     * @param label Parameter name prefix (e.g. "block3").
     * @param hidden Model width.
     * @param heads Attention heads.
     * @param seq_len Fixed sequence length.
     * @param rng Init stream.
     * @param init_std Weight init standard deviation.
     */
    TransformerBlock(const std::string &label, int64_t hidden,
                     int64_t heads, int64_t seq_len, Rng &rng,
                     float init_std = 0.02f);

    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &dy) override;
    std::vector<ParamPtr> params() const override;
    std::string name() const override { return label_; }
    void clearStash() override;
    size_t stashDepth() const override;
    void setMode(Mode mode) override;

    /**
     * Incremental forward (Infer mode only): the block's usual
     * pre-norm residual dataflow with attention routed through
     * @p cache (one cache per block per sequence).
     * @return [R x hidden] activations for the new rows.
     */
    Tensor forwardCached(const Tensor &x, KvCache &cache);

  private:
    std::string label_;
    std::unique_ptr<LayerNorm> ln1_;
    std::unique_ptr<MultiHeadAttention> attn_;
    std::unique_ptr<LayerNorm> ln2_;
    std::unique_ptr<Linear> fc1_;
    std::unique_ptr<Gelu> gelu_;
    std::unique_ptr<Linear> fc2_;
};

} // namespace optimus

#endif // OPTIMUS_NN_BLOCK_HH
