/**
 * @file
 * Trainable parameter: a value tensor and its gradient accumulator.
 * Layers hold parameters via shared_ptr so weight tying (the GPT
 * embedding reused by the output head) is expressed naturally: both
 * layers reference the same Param and their gradient contributions
 * accumulate into the same tensor. Optimizers deduplicate by
 * pointer identity.
 */

#ifndef OPTIMUS_NN_PARAM_HH
#define OPTIMUS_NN_PARAM_HH

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace optimus
{

/** One trainable tensor plus its gradient. */
struct Param
{
    /** @param n Diagnostic name. @param v Initial value. */
    Param(std::string n, Tensor v)
        : name(std::move(n)), value(std::move(v)),
          grad(value.shape())
    {
    }

    std::string name;
    Tensor value;
    Tensor grad;

    /** Number of scalar parameters. */
    int64_t size() const { return value.size(); }

    /** Zero the gradient accumulator. */
    void zeroGrad() { grad.setZero(); }
};

using ParamPtr = std::shared_ptr<Param>;

/** Zero the gradients of a parameter set. */
void zeroGrads(const std::vector<ParamPtr> &params);

/** Total scalar count of a parameter set (no dedup). */
int64_t paramCount(const std::vector<ParamPtr> &params);

/**
 * Deduplicate a parameter list by pointer identity, preserving first
 * occurrence order (tied weights appear once).
 */
std::vector<ParamPtr> dedupParams(const std::vector<ParamPtr> &params);

} // namespace optimus

#endif // OPTIMUS_NN_PARAM_HH
