/**
 * @file
 * Layer interface for the hand-written backprop stack.
 *
 * Pipelined execution (1F1B) keeps several micro-batches in flight:
 * a stage may run up to `pipeline depth` forward passes before the
 * first matching backward arrives. Layers therefore keep their
 * saved-for-backward activations in a FIFO: forward() pushes a
 * stash, backward() pops the oldest. Both 1F1B and monolithic
 * execution issue backwards in the same micro-batch order as
 * forwards, so FIFO order is always correct.
 */

#ifndef OPTIMUS_NN_LAYER_HH
#define OPTIMUS_NN_LAYER_HH

#include <string>
#include <vector>

#include "nn/param.hh"
#include "tensor/tensor.hh"

namespace optimus
{

/** Differentiable module mapping [N x in] -> [N x out]. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Run the forward pass, saving whatever backward will need onto
     * the stash FIFO.
     */
    virtual Tensor forward(const Tensor &x) = 0;

    /**
     * Consume the oldest stash entry; accumulate parameter
     * gradients; return the gradient w.r.t. the layer input.
     */
    virtual Tensor backward(const Tensor &dy) = 0;

    /** Trainable parameters (tied params may repeat across layers). */
    virtual std::vector<ParamPtr> params() const = 0;

    /** Diagnostic name. */
    virtual std::string name() const = 0;

    /** Drop all stashed activations (e.g., between evaluations). */
    virtual void clearStash() = 0;

    /** Number of stashed (awaiting-backward) micro-batches. */
    virtual size_t stashDepth() const = 0;
};

} // namespace optimus

#endif // OPTIMUS_NN_LAYER_HH
