/**
 * @file
 * Layer interface for the hand-written backprop stack.
 *
 * Pipelined execution (1F1B) keeps several micro-batches in flight:
 * a stage may run up to `pipeline depth` forward passes before the
 * first matching backward arrives. Layers therefore keep their
 * saved-for-backward activations in a FIFO: forward() pushes a
 * stash, backward() pops the oldest. Both 1F1B and monolithic
 * execution issue backwards in the same micro-batch order as
 * forwards, so FIFO order is always correct.
 *
 * Execution modes
 * ---------------
 * Every layer runs in an explicit mode (DESIGN.md section 10):
 *
 *  - `Mode::Train` (the default) is the historical behavior:
 *    forward() stashes whatever backward will need, bit-for-bit
 *    unchanged from before the mode split existed.
 *  - `Mode::Infer` is the forward-only serving path: forward()
 *    never touches the stash (the stash storage is never even
 *    constructed), holds no mutable layer state, and computes every
 *    activation row with *row-independent* arithmetic — the result
 *    of a row depends only on that row's input, never on how many
 *    other rows share the batch. Row independence is what makes
 *    incremental KV-cache decode bitwise-equal to full-sequence
 *    recompute and continuous batching invariant under request
 *    interleaving. Infer-mode forwards are therefore safe to call
 *    concurrently on one shared layer instance (one model copy
 *    serves every in-flight sequence). backward() in Infer mode is
 *    a contract violation and panics.
 */

#ifndef OPTIMUS_NN_LAYER_HH
#define OPTIMUS_NN_LAYER_HH

#include <string>
#include <vector>

#include "nn/param.hh"
#include "tensor/tensor.hh"

namespace optimus
{

/** Execution mode of the layer stack (see the file comment). */
enum class Mode
{
    Train, ///< forward stashes for backward (training pipelines)
    Infer, ///< forward-only: stateless, row-independent, no stash
};

/** Differentiable module mapping [N x in] -> [N x out]. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Switch execution mode. Composite layers override to
     * propagate to children. Call only between passes (never while
     * a forward/backward is in flight, and never with a non-empty
     * stash — switch modes after clearStash()).
     */
    virtual void setMode(Mode mode) { mode_ = mode; }

    /** Current execution mode. */
    Mode mode() const { return mode_; }

    /**
     * Run the forward pass, saving whatever backward will need onto
     * the stash FIFO.
     */
    virtual Tensor forward(const Tensor &x) = 0;

    /**
     * Consume the oldest stash entry; accumulate parameter
     * gradients; return the gradient w.r.t. the layer input.
     */
    virtual Tensor backward(const Tensor &dy) = 0;

    /** Trainable parameters (tied params may repeat across layers). */
    virtual std::vector<ParamPtr> params() const = 0;

    /** Diagnostic name. */
    virtual std::string name() const = 0;

    /** Drop all stashed activations (e.g., between evaluations). */
    virtual void clearStash() = 0;

    /** Number of stashed (awaiting-backward) micro-batches. */
    virtual size_t stashDepth() const = 0;

  private:
    Mode mode_ = Mode::Train;
};

} // namespace optimus

#endif // OPTIMUS_NN_LAYER_HH
