/**
 * @file
 * Optimizers over Param sets: SGD with momentum and Adam. Parameter
 * lists are deduplicated by pointer so tied weights update once.
 */

#ifndef OPTIMUS_NN_OPTIMIZER_HH
#define OPTIMUS_NN_OPTIMIZER_HH

#include <vector>

#include "nn/param.hh"

namespace optimus
{

/** Base optimizer interface. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<ParamPtr> params);
    virtual ~Optimizer() = default;

    /** Apply one update from the accumulated gradients. */
    virtual void step() = 0;

    /** Zero all gradient accumulators. */
    void zeroGrad();

    /** Scale all gradients by a constant (micro-batch averaging). */
    void scaleGrad(float factor);

    /** Managed (deduplicated) parameters. */
    const std::vector<ParamPtr> &params() const { return params_; }

  protected:
    std::vector<ParamPtr> params_;
};

/** SGD with classical momentum: v = m*v + g; w -= lr * v. */
class SgdOptimizer : public Optimizer
{
  public:
    SgdOptimizer(std::vector<ParamPtr> params, float lr,
                 float momentum = 0.0f);

    void step() override;

    float learningRate() const { return lr_; }
    void setLearningRate(float lr) { lr_ = lr; }

  private:
    float lr_;
    float momentum_;
    std::vector<Tensor> velocity_;
};

/** Adam (Kingma & Ba) with bias correction. */
class AdamOptimizer : public Optimizer
{
  public:
    AdamOptimizer(std::vector<ParamPtr> params, float lr,
                  float beta1 = 0.9f, float beta2 = 0.999f,
                  float eps = 1e-8f);

    void step() override;

    float learningRate() const { return lr_; }
    void setLearningRate(float lr) { lr_ = lr; }

  private:
    float lr_;
    float beta1_;
    float beta2_;
    float eps_;
    int64_t t_;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
};

} // namespace optimus

#endif // OPTIMUS_NN_OPTIMIZER_HH
