/**
 * @file
 * Elementwise activation layers (GELU, the GPT MLP nonlinearity,
 * plus ReLU for tests).
 */

#ifndef OPTIMUS_NN_ACTIVATION_HH
#define OPTIMUS_NN_ACTIVATION_HH

#include "nn/layer.hh"
#include "util/reuse_ring.hh"

namespace optimus
{

/** GELU with the tanh approximation used by GPT-2/Megatron. */
class Gelu : public Layer
{
  public:
    Gelu() = default;

    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &dy) override;
    std::vector<ParamPtr> params() const override { return {}; }
    std::string name() const override { return "gelu"; }
    void clearStash() override { stash_.clear(); }
    size_t stashDepth() const override { return stash_.size(); }

    /** Scalar forms (used by tests). */
    static float value(float x);
    static float derivative(float x);

  private:
    ReuseRing<Tensor> stash_;
};

/** ReLU (parameter-free), used in unit tests and the MLP toy model. */
class Relu : public Layer
{
  public:
    Relu() = default;

    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &dy) override;
    std::vector<ParamPtr> params() const override { return {}; }
    std::string name() const override { return "relu"; }
    void clearStash() override { stash_.clear(); }
    size_t stashDepth() const override { return stash_.size(); }

  private:
    ReuseRing<Tensor> stash_;
};

} // namespace optimus

#endif // OPTIMUS_NN_ACTIVATION_HH
