#include "nn/attention.hh"

#include <cmath>

#include "runtime/runtime.hh"
#include "tensor/matmul.hh"
#include "util/logging.hh"

namespace optimus
{

MultiHeadAttention::MultiHeadAttention(const std::string &label,
                                       int64_t hidden, int64_t heads,
                                       int64_t seq_len, Rng &rng,
                                       float init_std)
    : hidden_(hidden), heads_(heads), seqLen_(seq_len),
      qkv_(std::make_unique<Linear>(label + ".qkv", hidden, 3 * hidden,
                                    rng, init_std)),
      proj_(std::make_unique<Linear>(label + ".proj", hidden, hidden,
                                     rng, init_std))
{
    OPTIMUS_ASSERT(hidden % heads == 0);
    OPTIMUS_ASSERT(seq_len >= 1);
}

Tensor
MultiHeadAttention::extractBlock(const Tensor &src, int64_t row0,
                                 int64_t col0, int64_t rows,
                                 int64_t cols)
{
    Tensor out({rows, cols});
    const int64_t stride = src.cols();
    const float *sd = src.data() + row0 * stride + col0;
    float *od = out.data();
    for (int64_t i = 0; i < rows; ++i) {
        for (int64_t j = 0; j < cols; ++j)
            od[i * cols + j] = sd[i * stride + j];
    }
    return out;
}

void
MultiHeadAttention::accumulateBlock(Tensor &dst, const Tensor &block,
                                    int64_t row0, int64_t col0)
{
    const int64_t stride = dst.cols();
    const int64_t rows = block.rows();
    const int64_t cols = block.cols();
    float *dd = dst.data() + row0 * stride + col0;
    const float *bd = block.data();
    for (int64_t i = 0; i < rows; ++i) {
        for (int64_t j = 0; j < cols; ++j)
            dd[i * stride + j] += bd[i * cols + j];
    }
}

Tensor
MultiHeadAttention::forward(const Tensor &x)
{
    OPTIMUS_ASSERT(x.rank() == 2 && x.cols() == hidden_);
    const int64_t n = x.rows();
    OPTIMUS_ASSERT(n % seqLen_ == 0);
    const int64_t batch = n / seqLen_;
    const int64_t dh = headDim();
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    // Assign into the ring slot: the qkv tensor and every probs
    // slot recycle their blocks through the workspace in place.
    Stash &st = stash_.pushSlot();
    st.batch = batch;
    st.qkv = qkv_->forward(x); // [N x 3h]
    // optlint:coldalloc — warmup capacity ratchet.
    st.probs.resize(batch * heads_);

    // Each (batch, head) pair reads its own q/k/v slices and writes
    // a disjoint ctx block and probs slot, so the flattened pairs
    // run concurrently with bitwise-identical results.
    Tensor ctx({n, hidden_});
    parallelFor(0, batch * heads_, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t t = lo; t < hi; ++t) {
            const int64_t b = t / heads_;
            const int64_t hd = t % heads_;
            const int64_t row0 = b * seqLen_;
            Tensor q = extractBlock(st.qkv, row0, hd * dh, seqLen_,
                                    dh);
            Tensor k = extractBlock(st.qkv, row0, hidden_ + hd * dh,
                                    seqLen_, dh);
            Tensor v = extractBlock(st.qkv, row0,
                                    2 * hidden_ + hd * dh, seqLen_,
                                    dh);

            Tensor scores = matmulNT(q, k); // [S x S]
            scores.scale(scale);

            // Causal mask + row softmax (masked entries stay 0).
            float *sd = scores.data();
            for (int64_t i = 0; i < seqLen_; ++i) {
                float *row = sd + i * seqLen_;
                float max_val = row[0];
                for (int64_t j = 1; j <= i; ++j) {
                    if (row[j] > max_val)
                        max_val = row[j];
                }
                double denom = 0.0;
                for (int64_t j = 0; j <= i; ++j) {
                    row[j] = std::exp(row[j] - max_val);
                    denom += row[j];
                }
                const float inv =
                    static_cast<float>(1.0 / denom);
                for (int64_t j = 0; j <= i; ++j)
                    row[j] *= inv;
                for (int64_t j = i + 1; j < seqLen_; ++j)
                    row[j] = 0.0f;
            }

            Tensor head_ctx = matmul(scores, v); // [S x dh]
            accumulateBlock(ctx, head_ctx, row0, hd * dh);
            st.probs[t] = std::move(scores);
        }
    });
    return proj_->forward(ctx);
}

Tensor
MultiHeadAttention::backward(const Tensor &dy)
{
    OPTIMUS_ASSERT(!stash_.empty());
    const Stash &st = stash_.front();

    const int64_t batch = st.batch;
    const int64_t n = batch * seqLen_;
    const int64_t dh = headDim();
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    Tensor dctx = proj_->backward(dy); // [N x h]
    OPTIMUS_ASSERT(dctx.rows() == n);

    // Mirrors the forward pass: disjoint dqkv blocks per
    // (batch, head) pair.
    Tensor dqkv({n, 3 * hidden_});
    parallelFor(0, batch * heads_, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t t = lo; t < hi; ++t) {
            const int64_t b = t / heads_;
            const int64_t hd = t % heads_;
            const int64_t row0 = b * seqLen_;
            const Tensor &probs = st.probs[t];
            Tensor q = extractBlock(st.qkv, row0, hd * dh, seqLen_, dh);
            Tensor k = extractBlock(st.qkv, row0, hidden_ + hd * dh,
                                    seqLen_, dh);
            Tensor v = extractBlock(st.qkv, row0, 2 * hidden_ + hd * dh,
                                    seqLen_, dh);
            Tensor dhead = extractBlock(dctx, row0, hd * dh, seqLen_,
                                        dh);

            Tensor dv = matmulTN(probs, dhead);   // [S x dh]
            Tensor dprobs = matmulNT(dhead, v);   // [S x S]

            // Softmax backward per row:
            // dscore_ij = p_ij * (dprobs_ij - sum_k p_ik dprobs_ik);
            // masked entries have p == 0, so they contribute nothing.
            Tensor dscores({seqLen_, seqLen_});
            const float *pd = probs.data();
            const float *dpd = dprobs.data();
            float *dsd = dscores.data();
            for (int64_t i = 0; i < seqLen_; ++i) {
                double dot_val = 0.0;
                for (int64_t j = 0; j <= i; ++j)
                    dot_val += static_cast<double>(pd[i * seqLen_ + j]) *
                               dpd[i * seqLen_ + j];
                for (int64_t j = 0; j <= i; ++j) {
                    dsd[i * seqLen_ + j] = pd[i * seqLen_ + j] *
                        (dpd[i * seqLen_ + j] -
                         static_cast<float>(dot_val));
                }
            }
            dscores.scale(scale);

            Tensor dq = matmul(dscores, k);   // [S x dh]
            Tensor dk = matmulTN(dscores, q); // [S x dh]

            accumulateBlock(dqkv, dq, row0, hd * dh);
            accumulateBlock(dqkv, dk, row0, hidden_ + hd * dh);
            accumulateBlock(dqkv, dv, row0, 2 * hidden_ + hd * dh);
        }
    });
    Tensor dx = qkv_->backward(dqkv);
    stash_.popFront();
    return dx;
}

std::vector<ParamPtr>
MultiHeadAttention::params() const
{
    std::vector<ParamPtr> all = qkv_->params();
    for (const auto &p : proj_->params())
        all.push_back(p);
    return all;
}

std::string
MultiHeadAttention::name() const
{
    return "attention(h=" + std::to_string(hidden_) + ")";
}

void
MultiHeadAttention::clearStash()
{
    stash_.clear();
    qkv_->clearStash();
    proj_->clearStash();
}

} // namespace optimus
