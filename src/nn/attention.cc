#include "nn/attention.hh"

#include <cmath>

#include "runtime/runtime.hh"
#include "tensor/matmul.hh"
#include "tensor/simd.hh"
#include "util/logging.hh"

namespace optimus
{

void
KvCache::ensure(int64_t capacity, int64_t hidden)
{
    if (k.rank() != 2 || k.rows() < capacity || k.cols() != hidden) {
        k = Tensor({capacity, hidden});
        v = Tensor({capacity, hidden});
    }
    len = 0;
}

MultiHeadAttention::MultiHeadAttention(const std::string &label,
                                       int64_t hidden, int64_t heads,
                                       int64_t seq_len, Rng &rng,
                                       float init_std)
    : hidden_(hidden), heads_(heads), seqLen_(seq_len),
      qkv_(std::make_unique<Linear>(label + ".qkv", hidden, 3 * hidden,
                                    rng, init_std)),
      proj_(std::make_unique<Linear>(label + ".proj", hidden, hidden,
                                     rng, init_std))
{
    OPTIMUS_ASSERT(hidden % heads == 0);
    OPTIMUS_ASSERT(seq_len >= 1);
}

Tensor
MultiHeadAttention::extractBlock(const Tensor &src, int64_t row0,
                                 int64_t col0, int64_t rows,
                                 int64_t cols)
{
    Tensor out({rows, cols});
    const int64_t stride = src.cols();
    const float *sd = src.data() + row0 * stride + col0;
    float *od = out.data();
    for (int64_t i = 0; i < rows; ++i) {
        for (int64_t j = 0; j < cols; ++j)
            od[i * cols + j] = sd[i * stride + j];
    }
    return out;
}

void
MultiHeadAttention::accumulateBlock(Tensor &dst, const Tensor &block,
                                    int64_t row0, int64_t col0)
{
    const int64_t stride = dst.cols();
    const int64_t rows = block.rows();
    const int64_t cols = block.cols();
    float *dd = dst.data() + row0 * stride + col0;
    const float *bd = block.data();
    for (int64_t i = 0; i < rows; ++i) {
        for (int64_t j = 0; j < cols; ++j)
            dd[i * stride + j] += bd[i * cols + j];
    }
}

void
MultiHeadAttention::setMode(Mode mode)
{
    Layer::setMode(mode);
    qkv_->setMode(mode);
    proj_->setMode(mode);
}

// optlint:hot — serving decode path (zero-allocation contract).
Tensor
MultiHeadAttention::forwardCached(const Tensor &x, KvCache &cache)
{
    OPTIMUS_ASSERT(mode() == Mode::Infer);
    OPTIMUS_ASSERT(x.rank() == 2 && x.cols() == hidden_);
    const int64_t r_count = x.rows();
    const int64_t base = cache.len;
    OPTIMUS_ASSERT(base + r_count <= cache.capacity());
    const int64_t dh = headDim();
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    Tensor qkv = qkv_->forward(x); // [R x 3h], row-wise in Infer
    // Append the new keys/values (heads concatenated — the same
    // column layout as the qkv k/v slices).
    const float *qd = qkv.data();
    float *kd = cache.k.data();
    float *vd = cache.v.data();
    for (int64_t r = 0; r < r_count; ++r) {
        const float *src = qd + r * 3 * hidden_;
        float *krow = kd + (base + r) * hidden_;
        float *vrow = vd + (base + r) * hidden_;
        for (int64_t j = 0; j < hidden_; ++j) {
            krow[j] = src[hidden_ + j];
            vrow[j] = src[2 * hidden_ + j];
        }
    }
    cache.len = base + r_count;

    // Row t of the score scratch holds the (base + r + 1) attention
    // weights of pair t = r * heads + head. Every kernel below is a
    // pure function of the row's position p, never of r_count, so
    // prefill and decode produce identical bits position by
    // position.
    Tensor probs({r_count * heads_, base + r_count});
    const int64_t pstride = probs.cols();
    Tensor ctx({r_count, hidden_});
    const simd::Tier tier = simd::tier();
    float *pd = probs.data();
    float *cd = ctx.data();
    parallelFor(0, r_count * heads_, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t t = lo; t < hi; ++t) {
            const int64_t r = t / heads_;
            const int64_t hd = t % heads_;
            const int64_t p = base + r;
            const float *qrow = qd + r * 3 * hidden_ + hd * dh;
            float *s = pd + t * pstride;
            for (int64_t j = 0; j <= p; ++j) {
                s[j] = static_cast<float>(simd::dotDouble(
                           tier, qrow,
                           kd + j * hidden_ + hd * dh, dh)) *
                    scale;
            }
            // Causal softmax over [0, p] — the training kernel's
            // masked row softmax, minus the zeroed future entries.
            float max_val = s[0];
            for (int64_t j = 1; j <= p; ++j) {
                if (s[j] > max_val)
                    max_val = s[j];
            }
            double denom = 0.0;
            for (int64_t j = 0; j <= p; ++j) {
                s[j] = std::exp(s[j] - max_val);
                denom += s[j];
            }
            const float inv = static_cast<float>(1.0 / denom);
            for (int64_t j = 0; j <= p; ++j)
                s[j] *= inv;
            // Context: j-ascending accumulation over cached values.
            float *out = cd + r * hidden_ + hd * dh;
            for (int64_t c = 0; c < dh; ++c)
                out[c] = 0.0f;
            for (int64_t j = 0; j <= p; ++j) {
                const float pj = s[j];
                const float *vrow = vd + j * hidden_ + hd * dh;
                for (int64_t c = 0; c < dh; ++c)
                    out[c] += pj * vrow[c];
            }
        }
    });
    return proj_->forward(ctx);
}

Tensor
MultiHeadAttention::forward(const Tensor &x)
{
    OPTIMUS_ASSERT(x.rank() == 2 && x.cols() == hidden_);
    if (mode() == Mode::Infer) {
        // Full-sequence recompute over one sequence: the same row
        // kernels as incremental decode, against a local scratch
        // cache (no member state, so concurrent calls are safe).
        OPTIMUS_ASSERT(x.rows() >= 1 && x.rows() <= seqLen_);
        KvCache scratch;
        scratch.ensure(x.rows(), hidden_);
        return forwardCached(x, scratch);
    }
    const int64_t n = x.rows();
    OPTIMUS_ASSERT(n % seqLen_ == 0);
    const int64_t batch = n / seqLen_;
    const int64_t dh = headDim();
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    // Assign into the ring slot: the qkv tensor and every probs
    // slot recycle their blocks through the workspace in place.
    Stash &st = stash_.pushSlot();
    st.batch = batch;
    st.qkv = qkv_->forward(x); // [N x 3h]
    // optlint:coldalloc — warmup capacity ratchet.
    st.probs.resize(batch * heads_);

    // Each (batch, head) pair reads its own q/k/v slices and writes
    // a disjoint ctx block and probs slot, so the flattened pairs
    // run concurrently with bitwise-identical results.
    Tensor ctx({n, hidden_});
    parallelFor(0, batch * heads_, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t t = lo; t < hi; ++t) {
            const int64_t b = t / heads_;
            const int64_t hd = t % heads_;
            const int64_t row0 = b * seqLen_;
            Tensor q = extractBlock(st.qkv, row0, hd * dh, seqLen_,
                                    dh);
            Tensor k = extractBlock(st.qkv, row0, hidden_ + hd * dh,
                                    seqLen_, dh);
            Tensor v = extractBlock(st.qkv, row0,
                                    2 * hidden_ + hd * dh, seqLen_,
                                    dh);

            Tensor scores = matmulNT(q, k); // [S x S]
            scores.scale(scale);

            // Causal mask + row softmax (masked entries stay 0).
            float *sd = scores.data();
            for (int64_t i = 0; i < seqLen_; ++i) {
                float *row = sd + i * seqLen_;
                float max_val = row[0];
                for (int64_t j = 1; j <= i; ++j) {
                    if (row[j] > max_val)
                        max_val = row[j];
                }
                double denom = 0.0;
                for (int64_t j = 0; j <= i; ++j) {
                    row[j] = std::exp(row[j] - max_val);
                    denom += row[j];
                }
                const float inv =
                    static_cast<float>(1.0 / denom);
                for (int64_t j = 0; j <= i; ++j)
                    row[j] *= inv;
                for (int64_t j = i + 1; j < seqLen_; ++j)
                    row[j] = 0.0f;
            }

            Tensor head_ctx = matmul(scores, v); // [S x dh]
            accumulateBlock(ctx, head_ctx, row0, hd * dh);
            st.probs[t] = std::move(scores);
        }
    });
    return proj_->forward(ctx);
}

Tensor
MultiHeadAttention::backward(const Tensor &dy)
{
    OPTIMUS_ASSERT(mode() == Mode::Train);
    OPTIMUS_ASSERT(!stash_.empty());
    const Stash &st = stash_.front();

    const int64_t batch = st.batch;
    const int64_t n = batch * seqLen_;
    const int64_t dh = headDim();
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    Tensor dctx = proj_->backward(dy); // [N x h]
    OPTIMUS_ASSERT(dctx.rows() == n);

    // Mirrors the forward pass: disjoint dqkv blocks per
    // (batch, head) pair.
    Tensor dqkv({n, 3 * hidden_});
    parallelFor(0, batch * heads_, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t t = lo; t < hi; ++t) {
            const int64_t b = t / heads_;
            const int64_t hd = t % heads_;
            const int64_t row0 = b * seqLen_;
            const Tensor &probs = st.probs[t];
            Tensor q = extractBlock(st.qkv, row0, hd * dh, seqLen_, dh);
            Tensor k = extractBlock(st.qkv, row0, hidden_ + hd * dh,
                                    seqLen_, dh);
            Tensor v = extractBlock(st.qkv, row0, 2 * hidden_ + hd * dh,
                                    seqLen_, dh);
            Tensor dhead = extractBlock(dctx, row0, hd * dh, seqLen_,
                                        dh);

            Tensor dv = matmulTN(probs, dhead);   // [S x dh]
            Tensor dprobs = matmulNT(dhead, v);   // [S x S]

            // Softmax backward per row:
            // dscore_ij = p_ij * (dprobs_ij - sum_k p_ik dprobs_ik);
            // masked entries have p == 0, so they contribute nothing.
            Tensor dscores({seqLen_, seqLen_});
            const float *pd = probs.data();
            const float *dpd = dprobs.data();
            float *dsd = dscores.data();
            for (int64_t i = 0; i < seqLen_; ++i) {
                double dot_val = 0.0;
                for (int64_t j = 0; j <= i; ++j)
                    dot_val += static_cast<double>(pd[i * seqLen_ + j]) *
                               dpd[i * seqLen_ + j];
                for (int64_t j = 0; j <= i; ++j) {
                    dsd[i * seqLen_ + j] = pd[i * seqLen_ + j] *
                        (dpd[i * seqLen_ + j] -
                         static_cast<float>(dot_val));
                }
            }
            dscores.scale(scale);

            Tensor dq = matmul(dscores, k);   // [S x dh]
            Tensor dk = matmulTN(dscores, q); // [S x dh]

            accumulateBlock(dqkv, dq, row0, hd * dh);
            accumulateBlock(dqkv, dk, row0, hidden_ + hd * dh);
            accumulateBlock(dqkv, dv, row0, 2 * hidden_ + hd * dh);
        }
    });
    Tensor dx = qkv_->backward(dqkv);
    stash_.popFront();
    return dx;
}

std::vector<ParamPtr>
MultiHeadAttention::params() const
{
    std::vector<ParamPtr> all = qkv_->params();
    for (const auto &p : proj_->params())
        all.push_back(p);
    return all;
}

std::string
MultiHeadAttention::name() const
{
    return "attention(h=" + std::to_string(hidden_) + ")";
}

void
MultiHeadAttention::clearStash()
{
    stash_.clear();
    qkv_->clearStash();
    proj_->clearStash();
}

} // namespace optimus
