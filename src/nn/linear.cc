#include "nn/linear.hh"

#include "runtime/runtime.hh"
#include "tensor/matmul.hh"
#include "util/logging.hh"

namespace optimus
{

Linear::Linear(const std::string &label, int64_t in, int64_t out,
               Rng &rng, float init_std)
    : weight_(std::make_shared<Param>(
          label + ".weight",
          Tensor::randn({in, out}, rng, 0.0f, init_std))),
      bias_(std::make_shared<Param>(label + ".bias",
                                    Tensor::zeros(out)))
{
}

Linear::Linear(ParamPtr weight, ParamPtr bias)
    : weight_(std::move(weight)), bias_(std::move(bias))
{
    OPTIMUS_ASSERT(weight_ != nullptr && bias_ != nullptr);
    OPTIMUS_ASSERT(weight_->value.rank() == 2);
    OPTIMUS_ASSERT(bias_->value.size() == weight_->value.cols());
}

// optlint:hot — steady-state step path (zero-allocation contract).
Tensor
Linear::forward(const Tensor &x)
{
    OPTIMUS_ASSERT(x.rank() == 2 && x.cols() == inFeatures());
    if (mode() == Mode::Infer)
        return forwardInfer(x);
    Tensor y = matmul(x, weight_->value);
    const int64_t rows = y.rows();
    const int64_t out = y.cols();
    const float *b = bias_->value.data();
    float *yd = y.data();
    for (int64_t i = 0; i < rows; ++i) {
        for (int64_t j = 0; j < out; ++j)
            yd[i * out + j] += b[j];
    }
    stash_.pushSlot() = x;
    return y;
}

// optlint:hot — serving decode path (zero-allocation contract).
Tensor
Linear::forwardInfer(const Tensor &x) const
{
    const int64_t rows = x.rows();
    const int64_t in = inFeatures();
    const int64_t out = outFeatures();
    Tensor y({rows, out});
    const float *xd = x.data();
    const float *w = weight_->value.data();
    const float *b = bias_->value.data();
    float *yd = y.data();
    // Row-independent matvec: y_i = b, then a k-ascending axpy per
    // input feature. Each output row's arithmetic is a pure function
    // of its own input row, so the bits never depend on the batch.
    parallelFor(0, rows, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            const float *xr = xd + i * in;
            float *yr = yd + i * out;
            for (int64_t j = 0; j < out; ++j)
                yr[j] = b[j];
            for (int64_t k = 0; k < in; ++k) {
                const float xv = xr[k];
                const float *wr = w + k * out;
                for (int64_t j = 0; j < out; ++j)
                    yr[j] += xv * wr[j];
            }
        }
    });
    return y;
}

// optlint:hot — steady-state step path (zero-allocation contract).
Tensor
Linear::backward(const Tensor &dy)
{
    OPTIMUS_ASSERT(mode() == Mode::Train);
    OPTIMUS_ASSERT(!stash_.empty());
    const Tensor &x = stash_.front();
    OPTIMUS_ASSERT(dy.rank() == 2 && dy.cols() == outFeatures());
    OPTIMUS_ASSERT(dy.rows() == x.rows());

    // dW += X^T * dY;  db += column sums of dY;  dX = dY * W^T.
    matmulAccTN(weight_->grad, x, dy);
    const int64_t rows = dy.rows();
    const int64_t out = dy.cols();
    const float *dyd = dy.data();
    float *dbd = bias_->grad.data();
    for (int64_t i = 0; i < rows; ++i) {
        for (int64_t j = 0; j < out; ++j)
            dbd[j] += dyd[i * out + j];
    }
    Tensor dx = matmulNT(dy, weight_->value);
    stash_.popFront();
    return dx;
}

std::vector<ParamPtr>
Linear::params() const
{
    return {weight_, bias_};
}

std::string
Linear::name() const
{
    return "linear(" + weight_->name + ")";
}

} // namespace optimus
